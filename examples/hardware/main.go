// Hardware: plan the same model on two different GPUs and compare the
// strategy mixes TSPLIT chooses — the paper's Fig. 14(b): the slower
// GTX 1080Ti makes recomputation relatively more expensive, so the
// planner shifts bytes toward swapping.
//
//	go run ./examples/hardware
package main

import (
	"fmt"
	"log"

	"tsplit"
)

func main() {
	const model, batch = "vgg16", 192
	for _, dev := range []tsplit.Device{tsplit.TitanRTX, tsplit.GTX1080Ti} {
		w, err := tsplit.Load(model, tsplit.ModelConfig{BatchSize: batch}, dev)
		if err != nil {
			log.Fatal(err)
		}
		plan, rep, err := w.AutoPlan(tsplit.PlanOptions{})
		if err != nil {
			log.Fatalf("%s: %v", dev.Name, err)
		}
		c := plan.Counts()
		fmt.Printf("%s  (ideal %.0f img/s)\n", dev, float64(batch)/w.IdealTime())
		fmt.Printf("  swap      %6.2f GiB across %d tensors\n", float64(c.SwapBytes)/(1<<30), c.Swap)
		fmt.Printf("  recompute %6.2f GiB across %d tensors\n", float64(c.RecomputeBytes)/(1<<30), c.Recompute)
		fmt.Printf("  split     %d operators\n", c.SplitOps)
		fmt.Printf("  measured  %.1f img/s, peak %.1f GiB, PCIe %.0f%%\n",
			rep.Throughput, rep.PeakGiB, rep.PCIeUtilization*100)
		fmt.Println()
	}
}
