// Largebatch: explore how far each memory-management policy can push
// VGG-16's batch size on a 24 GB Titan RTX, and what it costs in
// throughput — the sample-scale story of the paper's Table IV and
// Fig. 12.
//
//	go run ./examples/largebatch
package main

import (
	"fmt"
	"log"

	"tsplit"
)

func main() {
	const model = "vgg16"
	dev := tsplit.TitanRTX
	policies := []string{"base", "vdnn-all", "checkpoints", "superneurons"}

	fmt.Printf("%s on %s\n\n", model, dev)
	fmt.Printf("%-14s %8s %12s %10s %8s %8s\n", "policy", "batch", "images/s", "overhead", "peakGiB", "pcie%")
	for _, batch := range []int{64, 192, 320, 448} {
		w, err := tsplit.Load(model, tsplit.ModelConfig{BatchSize: batch}, dev)
		if err != nil {
			log.Fatal(err)
		}
		for _, pol := range policies {
			plan, err := w.PlanBaseline(pol)
			if err != nil {
				fmt.Printf("%-14s %8d %12s\n", pol, batch, "n/a")
				continue
			}
			rep, err := w.Run(plan)
			if err != nil {
				fmt.Printf("%-14s %8d %12s\n", pol, batch, "OOM")
				continue
			}
			fmt.Printf("%-14s %8d %12.1f %9.1f%% %8.1f %7.1f%%\n",
				pol, batch, rep.Throughput, rep.Overhead*100, rep.PeakGiB, rep.PCIeUtilization*100)
		}
		// TSPLIT plans against the same device.
		plan, rep, err := w.AutoPlan(tsplit.PlanOptions{})
		if err != nil {
			fmt.Printf("%-14s %8d %12s\n", "tsplit", batch, "OOM")
		} else {
			fmt.Printf("%-14s %8d %12.1f %9.1f%% %8.1f %7.1f%%  (%s)\n",
				"tsplit", batch, rep.Throughput, rep.Overhead*100, rep.PeakGiB, rep.PCIeUtilization*100, plan)
		}
		fmt.Println()
	}
}
