// Quickstart: train a small convolutional network on synthetic data
// with REAL float32 arithmetic, twice — once unconstrained, once under
// a tight device-memory budget with a TSPLIT plan (swap + recompute +
// tensor splitting) — and verify that the losses match while the
// memory footprint shrinks.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tsplit/internal/core"
	"tsplit/internal/graph"
	"tsplit/internal/hostexec"
	"tsplit/internal/nn"
	"tsplit/internal/profiler"
	"tsplit/internal/tensor"

	"tsplit"
)

// buildCNN builds a LeNet-style classifier for 16×16 synthetic images.
func buildCNN(batch int) (*graph.Graph, *graph.Tensor, *graph.Tensor) {
	g := graph.New()
	images := g.Input("images", tensor.NewShape(batch, 1, 16, 16), tensor.Float32)
	labels := g.Input("labels", tensor.NewShape(batch), tensor.Int32)
	x := g.ReLU("c1.relu", g.Conv2D("c1", images, 8, 3, 1, 1))
	x = g.MaxPool("p1", x, 2, 2, 0)
	x = g.ReLU("c2.relu", g.Conv2D("c2", x, 16, 3, 1, 1))
	x = g.MaxPool("p2", x, 2, 2, 0)
	flat := g.Reshape("flat", x, tensor.NewShape(batch, 16*4*4))
	h := g.ReLU("fc1.relu", g.Dense("fc1", flat, 64))
	logits := g.Dense("fc2", h, 4)
	g.CrossEntropyLoss("loss", logits, labels)
	if err := g.Differentiate(graph.Momentum); err != nil {
		log.Fatal(err)
	}
	return g, images, labels
}

// synthBatch makes a linearly separable-ish synthetic batch: the class
// sets the quadrant that lights up.
func synthBatch(batch int, r interface{ Intn(int) int }, imgT *graph.Tensor) (*nn.Buffer, []int) {
	img := nn.NewBuffer(imgT.Shape)
	labels := make([]int, batch)
	for b := 0; b < batch; b++ {
		cls := r.Intn(4)
		labels[b] = cls
		oh, ow := (cls/2)*8, (cls%2)*8
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				img.Set(1, b, 0, oh+i, ow+j)
			}
		}
	}
	return img, labels
}

func main() {
	const batch = 32
	g, imgT, _ := buildCNN(batch)
	sched, err := graph.BuildSchedule(g)
	if err != nil {
		log.Fatal(err)
	}
	lv := graph.AnalyzeLiveness(g, sched)
	fmt.Printf("model: %d ops, unmanaged peak %.2f MiB\n", len(g.Ops), float64(lv.Peak)/(1<<20))

	// Plan against a budget of ~65% of the unmanaged peak.
	budget := lv.Peak * 65 / 100
	prof := profiler.New(tsplit.TitanRTX, sched)
	planner := core.NewPlanner(g, sched, lv, prof, tsplit.TitanRTX, core.Options{
		// Plan with ~20% headroom: the host engine charges transient
		// buffers (e.g. gradient staging) that the planner's analytic
		// model does not itemize.
		Capacity:             budget * 85 / 100,
		FragmentationReserve: -1,
	})
	plan, err := planner.Plan()
	if err != nil {
		log.Fatalf("planning under %.2f MiB: %v", float64(budget)/(1<<20), err)
	}
	fmt.Printf("plan under %.2f MiB: %v\n", float64(budget)/(1<<20), plan)

	// Train twice with identical seeds: unconstrained vs planned.
	basePlan := core.NewPlan("base", tsplit.TitanRTX)
	free := hostexec.New(g, sched, basePlan, 42)
	tight := hostexec.New(g, sched, plan, 42)
	tight.Capacity = budget

	r := nn.NewRNG(7)
	fmt.Println("step   loss(unconstrained)  loss(tsplit-planned)")
	for step := 1; step <= 8; step++ {
		img, labels := synthBatch(batch, r, imgT)
		l1, err := free.Step(map[*graph.Tensor]*nn.Buffer{imgT: img.Clone()}, labels)
		if err != nil {
			log.Fatal(err)
		}
		l2, err := tight.Step(map[*graph.Tensor]*nn.Buffer{imgT: img}, labels)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d   %.6f             %.6f\n", step, l1, l2)
	}
	fmt.Printf("\npeak device bytes: unconstrained %.2f MiB, planned %.2f MiB (budget %.2f MiB)\n",
		float64(free.PeakBytes)/(1<<20), float64(tight.PeakBytes)/(1<<20), float64(budget)/(1<<20))
	fmt.Printf("memory ops under the plan: %d swaps, %d recomputed operators\n", tight.Swaps, tight.Recomputes)
}
