// Transformer: scale BERT-Large along the parameter dimension (hidden
// size ×k, the paper's Fig. 1 / Table V axis) and watch the memory
// wall move: convolution-centric policies cannot help at all (the ×
// entries of Table IV), while TSPLIT splits the attention-score and
// vocabulary-projection operators that dominate the footprint.
//
//	go run ./examples/transformer
package main

import (
	"fmt"
	"log"
	"sort"

	"tsplit"
)

func main() {
	dev := tsplit.TitanRTX
	fmt.Printf("BERT-Large (batch 16, seq 128) on %s\n\n", dev)
	fmt.Printf("%-8s %-8s %12s %14s %14s\n", "scale k", "hidden", "peak GiB", "vdnn-conv", "tsplit")
	for _, k := range []float64{1, 2, 3, 4} {
		w, err := tsplit.Load("bert-large", tsplit.ModelConfig{BatchSize: 16, ParamScale: k}, dev)
		if err != nil {
			log.Fatal(err)
		}
		hidden := w.G.Params[0].Shape[1]
		peak := float64(w.BaselinePeakBytes()) / (1 << 30)

		conv := "x (no conv layers)"
		if _, err := w.PlanBaseline("vdnn-conv"); err == nil {
			conv = "ok"
		}
		status := "OOM"
		if _, rep, err := w.AutoPlan(tsplit.PlanOptions{}); err == nil {
			status = fmt.Sprintf("%.1f seq/s", rep.Throughput)
		}
		fmt.Printf("%-8.1f %-8d %12.1f %14s %14s\n", k, hidden, peak, conv, status)
	}

	// Show what the planner actually split at scale 4 (over the 24 GB
	// capacity: splitting is load-bearing here).
	w, err := tsplit.Load("bert-large", tsplit.ModelConfig{BatchSize: 16, ParamScale: 4}, dev)
	if err != nil {
		log.Fatal(err)
	}
	plan, _, err := w.AutoPlan(tsplit.PlanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplan at k=4: %v\n", plan)
	var names []string
	for _, sp := range plan.Splits {
		names = append(names, fmt.Sprintf("  %-28s p_num=%-3d dim=%-7s in=%v", sp.Op.Name, sp.PNum, sp.Dim, sp.InOpt))
	}
	sort.Strings(names)
	for i, n := range names {
		if i >= 12 {
			fmt.Printf("  ... and %d more\n", len(names)-i)
			break
		}
		fmt.Println(n)
	}
}
