// Package nn is a real float32 execution engine for the dataflow
// graphs of this repository: dense and convolution kernels with their
// gradients, pooling, softmax cross-entropy, and buffer split/merge
// primitives.
//
// The discrete-event simulator measures *time* at data-center scale;
// this package supplies *values* at laptop scale, so the correctness
// of TSPLIT's memory machinery is verified with real numbers: a model
// trained under an aggressive memory plan (swap, recompute, split)
// must produce bit-identical losses to the unconstrained run, and a
// split matmul/convolution must equal its unsplit counterpart.
package nn

import (
	"fmt"
	"math"

	"tsplit/internal/tensor"
)

// Buffer is a dense float32 tensor value in row-major layout.
type Buffer struct {
	Shape tensor.Shape
	Data  []float32
}

// NewBuffer allocates a zeroed buffer of the given shape.
func NewBuffer(shape tensor.Shape) *Buffer {
	return &Buffer{Shape: shape.Clone(), Data: make([]float32, shape.NumElements())}
}

// NewBufferFrom wraps existing data (length must match the shape).
func NewBufferFrom(shape tensor.Shape, data []float32) *Buffer {
	if int64(len(data)) != shape.NumElements() {
		panic(fmt.Sprintf("nn: data length %d != shape %v", len(data), shape))
	}
	return &Buffer{Shape: shape.Clone(), Data: data}
}

// Clone deep-copies the buffer.
func (b *Buffer) Clone() *Buffer {
	c := NewBuffer(b.Shape)
	copy(c.Data, b.Data)
	return c
}

// Bytes returns the storage size of the buffer.
func (b *Buffer) Bytes() int64 { return int64(len(b.Data)) * 4 }

// At returns the element at the given indices (row-major).
func (b *Buffer) At(idx ...int) float32 {
	return b.Data[b.offset(idx)]
}

// Set writes the element at the given indices.
func (b *Buffer) Set(v float32, idx ...int) {
	b.Data[b.offset(idx)] = v
}

func (b *Buffer) offset(idx []int) int {
	if len(idx) != b.Shape.Rank() {
		panic(fmt.Sprintf("nn: index rank %d != shape %v", len(idx), b.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= b.Shape[i] {
			panic(fmt.Sprintf("nn: index %v out of range for %v", idx, b.Shape))
		}
		off = off*b.Shape[i] + x
	}
	return off
}

// RNG is a small deterministic generator (SplitMix64) so examples and
// tests are reproducible without seeding globals.
type RNG struct{ state uint64 }

// NewRNG returns a deterministic generator.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

func (r *RNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("nn: Intn with non-positive n")
	}
	return int(r.next() % uint64(n))
}

// Normal returns a standard normal sample (Box-Muller).
func (r *RNG) Normal() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// FillXavier initializes b with Xavier/Glorot scaling for a layer with
// the given fan-in and fan-out.
func FillXavier(b *Buffer, fanIn, fanOut int, r *RNG) {
	scale := math.Sqrt(2.0 / float64(fanIn+fanOut))
	for i := range b.Data {
		b.Data[i] = float32(r.Normal() * scale)
	}
}

// FillUniform initializes b uniformly in [-a, a].
func FillUniform(b *Buffer, a float64, r *RNG) {
	for i := range b.Data {
		b.Data[i] = float32((2*r.Float64() - 1) * a)
	}
}

// SplitAxis0 carves the buffer into pnum parts along axis 0, matching
// tensor.Split's front-loaded distribution. Parts are views copied out
// (callers own them).
func SplitAxis0(b *Buffer, pnum int) ([]*Buffer, error) {
	shapes, err := tensor.Split(b.Shape, 0, pnum)
	if err != nil {
		return nil, err
	}
	rowSize := 1
	for _, d := range b.Shape[1:] {
		rowSize *= d
	}
	parts := make([]*Buffer, pnum)
	off := 0
	for i, sh := range shapes {
		n := sh[0] * rowSize
		parts[i] = NewBufferFrom(sh, append([]float32(nil), b.Data[off:off+n]...))
		off += n
	}
	return parts, nil
}

// MergeAxis0 concatenates parts along axis 0 (inverse of SplitAxis0).
func MergeAxis0(parts []*Buffer) (*Buffer, error) {
	shapes := make([]tensor.Shape, len(parts))
	for i, p := range parts {
		shapes[i] = p.Shape
	}
	shape, err := tensor.Merge(shapes, 0)
	if err != nil {
		return nil, err
	}
	out := NewBuffer(shape)
	off := 0
	for _, p := range parts {
		copy(out.Data[off:], p.Data)
		off += len(p.Data)
	}
	return out, nil
}

// SumInto accumulates src into dst element-wise (reduction merge).
func SumInto(dst, src *Buffer) {
	if !dst.Shape.Equal(src.Shape) {
		panic(fmt.Sprintf("nn: SumInto shape mismatch %v vs %v", dst.Shape, src.Shape))
	}
	for i, v := range src.Data {
		dst.Data[i] += v
	}
}

// MaxAbsDiff returns the largest absolute element difference, for
// numeric comparisons in tests.
func MaxAbsDiff(a, b *Buffer) float64 {
	if !a.Shape.Equal(b.Shape) {
		return math.Inf(1)
	}
	var m float64
	for i := range a.Data {
		if d := math.Abs(float64(a.Data[i] - b.Data[i])); d > m {
			m = d
		}
	}
	return m
}
