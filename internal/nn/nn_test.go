package nn

import (
	"math"
	"testing"
	"testing/quick"

	"tsplit/internal/graph"
	"tsplit/internal/tensor"
)

func randBuf(shape tensor.Shape, seed uint64) *Buffer {
	b := NewBuffer(shape)
	r := NewRNG(seed)
	FillUniform(b, 1, r)
	return b
}

func TestMatMulKnownValues(t *testing.T) {
	x := NewBufferFrom(tensor.NewShape(2, 2), []float32{1, 2, 3, 4})
	w := NewBufferFrom(tensor.NewShape(2, 2), []float32{5, 6, 7, 8})
	bias := NewBufferFrom(tensor.NewShape(2), []float32{1, -1})
	y := MatMul(x, w, bias)
	want := []float32{1*5 + 2*7 + 1, 1*6 + 2*8 - 1, 3*5 + 4*7 + 1, 3*6 + 4*8 - 1}
	for i, v := range want {
		if y.Data[i] != v {
			t.Fatalf("y[%d] = %g, want %g", i, y.Data[i], v)
		}
	}
}

// numericGrad checks an analytic gradient against finite differences.
func numericGrad(t *testing.T, f func(*Buffer) float64, x *Buffer, analytic *Buffer, tol float64) {
	t.Helper()
	const eps = 1e-3
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		up := f(x)
		x.Data[i] = orig - eps
		down := f(x)
		x.Data[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-float64(analytic.Data[i])) > tol {
			t.Fatalf("grad[%d]: numeric %g vs analytic %g", i, num, analytic.Data[i])
		}
	}
}

func TestMatMulGradNumeric(t *testing.T) {
	x := randBuf(tensor.NewShape(3, 4), 1)
	w := randBuf(tensor.NewShape(4, 2), 2)
	dy := randBuf(tensor.NewShape(3, 2), 3)
	dx, dw, _ := MatMulGrad(x, w, dy)
	loss := func(xx *Buffer) float64 {
		y := MatMul(xx, w, nil)
		var s float64
		for i := range y.Data {
			s += float64(y.Data[i] * dy.Data[i])
		}
		return s
	}
	numericGrad(t, loss, x, dx, 1e-2)
	lossW := func(ww *Buffer) float64 {
		y := MatMul(x, ww, nil)
		var s float64
		for i := range y.Data {
			s += float64(y.Data[i] * dy.Data[i])
		}
		return s
	}
	numericGrad(t, lossW, w, dw, 1e-2)
}

func TestConv2DGradNumeric(t *testing.T) {
	at := graph.Attrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	x := randBuf(tensor.NewShape(1, 2, 4, 4), 4)
	w := randBuf(tensor.NewShape(2, 2, 3, 3), 5)
	dy := randBuf(tensor.NewShape(1, 2, 4, 4), 6)
	dx, dw, _ := Conv2DGrad(x, w, dy, at)
	loss := func(xx *Buffer) float64 {
		y := Conv2D(xx, w, nil, at)
		var s float64
		for i := range y.Data {
			s += float64(y.Data[i] * dy.Data[i])
		}
		return s
	}
	numericGrad(t, loss, x, dx, 2e-2)
	lossW := func(ww *Buffer) float64 {
		y := Conv2D(x, ww, nil, at)
		var s float64
		for i := range y.Data {
			s += float64(y.Data[i] * dy.Data[i])
		}
		return s
	}
	numericGrad(t, lossW, w, dw, 2e-2)
}

func TestReLUAndGrad(t *testing.T) {
	x := NewBufferFrom(tensor.NewShape(4), []float32{-1, 0, 2, -3})
	y := ReLU(x)
	if y.Data[0] != 0 || y.Data[2] != 2 {
		t.Fatal("relu wrong")
	}
	dy := NewBufferFrom(tensor.NewShape(4), []float32{1, 1, 1, 1})
	dx := ReLUGrad(x, dy)
	if dx.Data[0] != 0 || dx.Data[2] != 1 {
		t.Fatal("relu grad wrong")
	}
}

func TestMaxPoolAndGrad(t *testing.T) {
	at := graph.Attrs{KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}
	x := NewBufferFrom(tensor.NewShape(1, 1, 2, 2), []float32{1, 5, 3, 2})
	y := MaxPool(x, at)
	if y.Data[0] != 5 {
		t.Fatalf("maxpool = %g", y.Data[0])
	}
	dy := NewBufferFrom(tensor.NewShape(1, 1, 1, 1), []float32{7})
	dx := MaxPoolGrad(x, y, dy, at)
	want := []float32{0, 7, 0, 0}
	for i := range want {
		if dx.Data[i] != want[i] {
			t.Fatalf("dx = %v", dx.Data)
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	x := randBuf(tensor.NewShape(5, 7), 8)
	y := Softmax(x)
	for r := 0; r < 5; r++ {
		var s float64
		for c := 0; c < 7; c++ {
			s += float64(y.Data[r*7+c])
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("row %d sums to %g", r, s)
		}
	}
}

func TestCrossEntropyGradNumeric(t *testing.T) {
	logits := randBuf(tensor.NewShape(3, 4), 9)
	labels := []int{1, 3, 0}
	d := CrossEntropyGrad(logits, labels)
	loss := func(l *Buffer) float64 { return CrossEntropy(l, labels) }
	numericGrad(t, loss, logits, d, 1e-3)
}

func TestSGDStepWithMomentum(t *testing.T) {
	w := NewBufferFrom(tensor.NewShape(2), []float32{1, 1})
	dw := NewBufferFrom(tensor.NewShape(2), []float32{1, 2})
	v := NewBuffer(tensor.NewShape(2))
	SGDStep(w, dw, v, 0.1, 0.9)
	if w.Data[0] != 0.9 || w.Data[1] != 0.8 {
		t.Fatalf("w = %v", w.Data)
	}
	SGDStep(w, dw, v, 0.1, 0.9)
	// v = 0.9*1 + 1 = 1.9 -> w = 0.9 - 0.19
	if math.Abs(float64(w.Data[0])-0.71) > 1e-6 {
		t.Fatalf("momentum step wrong: %v", w.Data)
	}
}

func TestSplitMergeRoundTrip(t *testing.T) {
	b := randBuf(tensor.NewShape(7, 3), 10)
	parts, err := SplitAxis0(b, 3)
	if err != nil {
		t.Fatal(err)
	}
	back, err := MergeAxis0(parts)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(b, back) != 0 {
		t.Fatal("round trip not exact")
	}
}

// The central sTensor property: computing on micro-tensors and merging
// equals the unsplit computation, exactly, for batch-parallel
// operators — and weight gradients sum-merge across micro-batches.
func TestSplitMatMulEqualsWhole(t *testing.T) {
	x := randBuf(tensor.NewShape(8, 5), 11)
	w := randBuf(tensor.NewShape(5, 3), 12)
	bias := randBuf(tensor.NewShape(3), 13)
	whole := MatMul(x, w, bias)
	for _, pn := range []int{2, 4, 8} {
		parts, _ := SplitAxis0(x, pn)
		var outs []*Buffer
		for _, p := range parts {
			outs = append(outs, MatMul(p, w, bias))
		}
		merged, _ := MergeAxis0(outs)
		if MaxAbsDiff(whole, merged) != 0 {
			t.Fatalf("p=%d split matmul differs", pn)
		}
	}
}

func TestSplitConvEqualsWhole(t *testing.T) {
	at := graph.Attrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	x := randBuf(tensor.NewShape(6, 2, 5, 5), 14)
	w := randBuf(tensor.NewShape(3, 2, 3, 3), 15)
	whole := Conv2D(x, w, nil, at)
	parts, _ := SplitAxis0(x, 3)
	var outs []*Buffer
	for _, p := range parts {
		outs = append(outs, Conv2D(p, w, nil, at))
	}
	merged, _ := MergeAxis0(outs)
	if MaxAbsDiff(whole, merged) != 0 {
		t.Fatal("split conv differs")
	}
}

func TestSplitWeightGradSumMerges(t *testing.T) {
	x := randBuf(tensor.NewShape(8, 5), 16)
	w := randBuf(tensor.NewShape(5, 3), 17)
	dy := randBuf(tensor.NewShape(8, 3), 18)
	_, dwWhole, dbWhole := MatMulGrad(x, w, dy)
	xp, _ := SplitAxis0(x, 4)
	dyp, _ := SplitAxis0(dy, 4)
	dwSum := NewBuffer(w.Shape)
	dbSum := NewBuffer(tensor.NewShape(3))
	for k := 0; k < 4; k++ {
		_, dw, db := MatMulGrad(xp[k], w, dyp[k])
		SumInto(dwSum, dw)
		SumInto(dbSum, db)
	}
	if MaxAbsDiff(dwWhole, dwSum) > 1e-5 {
		t.Fatal("weight gradient does not sum-merge")
	}
	if MaxAbsDiff(dbWhole, dbSum) > 1e-5 {
		t.Fatal("bias gradient does not sum-merge")
	}
}

// Property over random shapes and split counts.
func TestQuickSplitReLUEqualsWhole(t *testing.T) {
	f := func(rows, cols uint8, pn uint8, seed uint64) bool {
		r := int(rows%31) + 2
		c := int(cols%7) + 1
		p := int(pn)%r + 1
		x := randBuf(tensor.NewShape(r, c), seed)
		whole := ReLU(x)
		parts, err := SplitAxis0(x, p)
		if err != nil {
			return false
		}
		var outs []*Buffer
		for _, pp := range parts {
			outs = append(outs, ReLU(pp))
		}
		merged, err := MergeAxis0(outs)
		return err == nil && MaxAbsDiff(whole, merged) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(5), NewRNG(5)
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("rng not deterministic")
		}
	}
	if NewRNG(5).Intn(10) != NewRNG(5).Intn(10) {
		t.Fatal("Intn not deterministic")
	}
}

func TestBufferAtSet(t *testing.T) {
	b := NewBuffer(tensor.NewShape(2, 3))
	b.Set(7, 1, 2)
	if b.At(1, 2) != 7 || b.Data[5] != 7 {
		t.Fatal("indexing wrong")
	}
}
