package nn

import (
	"math"
	"testing"

	"tsplit/internal/tensor"
)

func TestLayerNormStats(t *testing.T) {
	x := randBuf(tensor.NewShape(3, 8), 21)
	gamma := NewBuffer(tensor.NewShape(8))
	beta := NewBuffer(tensor.NewShape(8))
	for i := range gamma.Data {
		gamma.Data[i] = 1
	}
	y := LayerNorm(x, gamma, beta)
	for r := 0; r < 3; r++ {
		var mu, va float64
		for j := 0; j < 8; j++ {
			mu += float64(y.At(r, j))
		}
		mu /= 8
		for j := 0; j < 8; j++ {
			d := float64(y.At(r, j)) - mu
			va += d * d
		}
		va /= 8
		if math.Abs(mu) > 1e-5 || math.Abs(va-1) > 1e-3 {
			t.Fatalf("row %d normalized to mean %g var %g", r, mu, va)
		}
	}
}

func TestLayerNormGradNumeric(t *testing.T) {
	x := randBuf(tensor.NewShape(2, 6), 22)
	gamma := randBuf(tensor.NewShape(6), 23)
	beta := randBuf(tensor.NewShape(6), 24)
	dy := randBuf(tensor.NewShape(2, 6), 25)
	dx, dgamma, _ := LayerNormGrad(x, gamma, dy)
	loss := func(xx *Buffer) float64 {
		y := LayerNorm(xx, gamma, beta)
		var s float64
		for i := range y.Data {
			s += float64(y.Data[i] * dy.Data[i])
		}
		return s
	}
	numericGrad(t, loss, x, dx, 2e-2)
	lossG := func(g *Buffer) float64 {
		y := LayerNorm(x, g, beta)
		var s float64
		for i := range y.Data {
			s += float64(y.Data[i] * dy.Data[i])
		}
		return s
	}
	numericGrad(t, lossG, gamma, dgamma, 2e-2)
}

func TestGELUGradNumeric(t *testing.T) {
	x := randBuf(tensor.NewShape(10), 26)
	dy := randBuf(tensor.NewShape(10), 27)
	dx := GELUGrad(x, dy)
	loss := func(xx *Buffer) float64 {
		y := GELU(xx)
		var s float64
		for i := range y.Data {
			s += float64(y.Data[i] * dy.Data[i])
		}
		return s
	}
	numericGrad(t, loss, x, dx, 1e-2)
}

func TestGELUShape(t *testing.T) {
	if gelu(0) != 0 {
		t.Fatal("gelu(0) != 0")
	}
	if gelu(10) < 9.99 {
		t.Fatal("gelu(large) should approach identity")
	}
	if gelu(-10) > -1e-3 && gelu(-10) < -1 {
		t.Fatal("gelu(very negative) should approach 0")
	}
}
