package nn

import (
	"fmt"
	"math"

	"tsplit/internal/graph"
	"tsplit/internal/tensor"
)

// MatMul computes y = x·w (+ bias per output column when bias is
// non-nil) for x [N, K], w [K, M].
func MatMul(x, w, bias *Buffer) *Buffer {
	n, k := x.Shape[0], x.Shape[1]
	k2, m := w.Shape[0], w.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("nn: matmul inner dim %d != %d", k, k2))
	}
	y := NewBuffer(tensor.NewShape(n, m))
	for i := 0; i < n; i++ {
		xi := x.Data[i*k : (i+1)*k]
		yi := y.Data[i*m : (i+1)*m]
		for kk := 0; kk < k; kk++ {
			a := xi[kk]
			if a == 0 {
				continue
			}
			wr := w.Data[kk*m : (kk+1)*m]
			for j := 0; j < m; j++ {
				yi[j] += a * wr[j]
			}
		}
		if bias != nil {
			for j := 0; j < m; j++ {
				yi[j] += bias.Data[j]
			}
		}
	}
	return y
}

// MatMulGrad returns dx, dw, db for y = x·w + b given upstream dy.
func MatMulGrad(x, w, dy *Buffer) (dx, dw, db *Buffer) {
	n, k := x.Shape[0], x.Shape[1]
	m := w.Shape[1]
	dx = NewBuffer(x.Shape)
	dw = NewBuffer(w.Shape)
	db = NewBuffer(tensor.NewShape(m))
	for i := 0; i < n; i++ {
		xi := x.Data[i*k : (i+1)*k]
		dyi := dy.Data[i*m : (i+1)*m]
		dxi := dx.Data[i*k : (i+1)*k]
		for kk := 0; kk < k; kk++ {
			wr := w.Data[kk*m : (kk+1)*m]
			dwr := dw.Data[kk*m : (kk+1)*m]
			var acc float32
			a := xi[kk]
			for j := 0; j < m; j++ {
				acc += dyi[j] * wr[j]
				dwr[j] += a * dyi[j]
			}
			dxi[kk] = acc
		}
		for j := 0; j < m; j++ {
			db.Data[j] += dyi[j]
		}
	}
	return dx, dw, db
}

// ReLU applies max(0, x).
func ReLU(x *Buffer) *Buffer {
	y := NewBuffer(x.Shape)
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
		}
	}
	return y
}

// ReLUGrad masks dy by x > 0.
func ReLUGrad(x, dy *Buffer) *Buffer {
	dx := NewBuffer(x.Shape)
	for i, v := range x.Data {
		if v > 0 {
			dx.Data[i] = dy.Data[i]
		}
	}
	return dx
}

// Add returns the element-wise sum.
func Add(a, b *Buffer) *Buffer {
	if !a.Shape.Equal(b.Shape) {
		panic(fmt.Sprintf("nn: add shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	y := a.Clone()
	SumInto(y, b)
	return y
}

// conv2DDims extracts geometry from op attrs and shapes.
func conv2DDims(x, w *Buffer, at graph.Attrs) (n, c, h, wd, oc, oh, ow int) {
	n, c, h, wd = x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oc = w.Shape[0]
	oh = (h+2*at.PadH-at.KernelH)/at.StrideH + 1
	ow = (wd+2*at.PadW-at.KernelW)/at.StrideW + 1
	return
}

// Conv2D computes a direct 2-D convolution for NCHW x and OIHW w,
// with optional per-channel bias.
func Conv2D(x, w, bias *Buffer, at graph.Attrs) *Buffer {
	n, c, h, wd, oc, oh, ow := conv2DDims(x, w, at)
	y := NewBuffer(tensor.NewShape(n, oc, oh, ow))
	for b := 0; b < n; b++ {
		for o := 0; o < oc; o++ {
			var bv float32
			if bias != nil {
				bv = bias.Data[o]
			}
			for i := 0; i < oh; i++ {
				for j := 0; j < ow; j++ {
					acc := bv
					for ci := 0; ci < c; ci++ {
						for ki := 0; ki < at.KernelH; ki++ {
							hi := i*at.StrideH + ki - at.PadH
							if hi < 0 || hi >= h {
								continue
							}
							for kj := 0; kj < at.KernelW; kj++ {
								wj := j*at.StrideW + kj - at.PadW
								if wj < 0 || wj >= wd {
									continue
								}
								acc += x.At(b, ci, hi, wj) * w.At(o, ci, ki, kj)
							}
						}
					}
					y.Set(acc, b, o, i, j)
				}
			}
		}
	}
	return y
}

// Conv2DGrad returns dx, dw, db for the direct convolution.
func Conv2DGrad(x, w, dy *Buffer, at graph.Attrs) (dx, dw, db *Buffer) {
	n, c, h, wd, oc, oh, ow := conv2DDims(x, w, at)
	dx = NewBuffer(x.Shape)
	dw = NewBuffer(w.Shape)
	db = NewBuffer(tensor.NewShape(oc))
	for b := 0; b < n; b++ {
		for o := 0; o < oc; o++ {
			for i := 0; i < oh; i++ {
				for j := 0; j < ow; j++ {
					g := dy.At(b, o, i, j)
					if g == 0 {
						continue
					}
					db.Data[o] += g
					for ci := 0; ci < c; ci++ {
						for ki := 0; ki < at.KernelH; ki++ {
							hi := i*at.StrideH + ki - at.PadH
							if hi < 0 || hi >= h {
								continue
							}
							for kj := 0; kj < at.KernelW; kj++ {
								wj := j*at.StrideW + kj - at.PadW
								if wj < 0 || wj >= wd {
									continue
								}
								dx.Set(dx.At(b, ci, hi, wj)+g*w.At(o, ci, ki, kj), b, ci, hi, wj)
								dw.Set(dw.At(o, ci, ki, kj)+g*x.At(b, ci, hi, wj), o, ci, ki, kj)
							}
						}
					}
				}
			}
		}
	}
	return dx, dw, db
}

// MaxPool applies max pooling to NCHW x.
func MaxPool(x *Buffer, at graph.Attrs) *Buffer {
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := (h+2*at.PadH-at.KernelH)/at.StrideH + 1
	ow := (wd+2*at.PadW-at.KernelW)/at.StrideW + 1
	y := NewBuffer(tensor.NewShape(n, c, oh, ow))
	for b := 0; b < n; b++ {
		for ci := 0; ci < c; ci++ {
			for i := 0; i < oh; i++ {
				for j := 0; j < ow; j++ {
					best := float32(math.Inf(-1))
					for ki := 0; ki < at.KernelH; ki++ {
						hi := i*at.StrideH + ki - at.PadH
						if hi < 0 || hi >= h {
							continue
						}
						for kj := 0; kj < at.KernelW; kj++ {
							wj := j*at.StrideW + kj - at.PadW
							if wj < 0 || wj >= wd {
								continue
							}
							if v := x.At(b, ci, hi, wj); v > best {
								best = v
							}
						}
					}
					y.Set(best, b, ci, i, j)
				}
			}
		}
	}
	return y
}

// MaxPoolGrad routes dy to the argmax positions of x.
func MaxPoolGrad(x, y, dy *Buffer, at graph.Attrs) *Buffer {
	n, c := x.Shape[0], x.Shape[1]
	h, wd := x.Shape[2], x.Shape[3]
	oh, ow := y.Shape[2], y.Shape[3]
	dx := NewBuffer(x.Shape)
	for b := 0; b < n; b++ {
		for ci := 0; ci < c; ci++ {
			for i := 0; i < oh; i++ {
				for j := 0; j < ow; j++ {
					max := y.At(b, ci, i, j)
					g := dy.At(b, ci, i, j)
				route:
					for ki := 0; ki < at.KernelH; ki++ {
						hi := i*at.StrideH + ki - at.PadH
						if hi < 0 || hi >= h {
							continue
						}
						for kj := 0; kj < at.KernelW; kj++ {
							wj := j*at.StrideW + kj - at.PadW
							if wj < 0 || wj >= wd {
								continue
							}
							if x.At(b, ci, hi, wj) == max {
								dx.Set(dx.At(b, ci, hi, wj)+g, b, ci, hi, wj)
								break route
							}
						}
					}
				}
			}
		}
	}
	return dx
}

// Softmax normalizes the last axis.
func Softmax(x *Buffer) *Buffer {
	rank := x.Shape.Rank()
	m := x.Shape[rank-1]
	rows := int(x.Shape.NumElements()) / m
	y := NewBuffer(x.Shape)
	for r := 0; r < rows; r++ {
		row := x.Data[r*m : (r+1)*m]
		out := y.Data[r*m : (r+1)*m]
		max := row[0]
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - max))
			out[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range out {
			out[j] *= inv
		}
	}
	return y
}

// CrossEntropy computes the mean softmax cross-entropy of logits
// [N, C] against int labels (given as float32 indices in labels.Data).
func CrossEntropy(logits *Buffer, labels []int) float64 {
	n, c := logits.Shape[0], logits.Shape[1]
	sm := Softmax(logits)
	var loss float64
	for i := 0; i < n; i++ {
		p := float64(sm.Data[i*c+labels[i]])
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
	}
	return loss / float64(n)
}

// CrossEntropyGrad returns d(loss)/d(logits) for the mean softmax
// cross-entropy: (softmax - onehot)/N.
func CrossEntropyGrad(logits *Buffer, labels []int) *Buffer {
	n, c := logits.Shape[0], logits.Shape[1]
	d := Softmax(logits)
	inv := float32(1.0 / float64(n))
	for i := 0; i < n; i++ {
		d.Data[i*c+labels[i]] -= 1
		for j := 0; j < c; j++ {
			d.Data[i*c+j] *= inv
		}
	}
	return d
}

// SGDStep applies w -= lr*dw in place; with momentum buffers
// (v = mu*v + dw; w -= lr*v) when v is non-nil.
func SGDStep(w, dw, v *Buffer, lr, mu float32) {
	if v == nil {
		for i := range w.Data {
			w.Data[i] -= lr * dw.Data[i]
		}
		return
	}
	for i := range w.Data {
		v.Data[i] = mu*v.Data[i] + dw.Data[i]
		w.Data[i] -= lr * v.Data[i]
	}
}
