package nn

import (
	"math"

	"tsplit/internal/tensor"
)

// lnEps is the layer-norm variance epsilon.
const lnEps = 1e-5

// rowsOf views a buffer as [rows, d] over its last axis.
func rowsOf(b *Buffer) (rows, d int) {
	d = b.Shape[b.Shape.Rank()-1]
	rows = int(b.Shape.NumElements()) / d
	return rows, d
}

// LayerNorm normalizes the last axis with learnable gain and bias:
// y = gamma * (x - mean) / sqrt(var + eps) + beta.
func LayerNorm(x, gamma, beta *Buffer) *Buffer {
	rows, d := rowsOf(x)
	y := NewBuffer(x.Shape)
	for r := 0; r < rows; r++ {
		row := x.Data[r*d : (r+1)*d]
		out := y.Data[r*d : (r+1)*d]
		var mu float64
		for _, v := range row {
			mu += float64(v)
		}
		mu /= float64(d)
		var va float64
		for _, v := range row {
			dv := float64(v) - mu
			va += dv * dv
		}
		va /= float64(d)
		inv := 1 / math.Sqrt(va+lnEps)
		for j, v := range row {
			xhat := (float64(v) - mu) * inv
			out[j] = float32(xhat)*gamma.Data[j] + beta.Data[j]
		}
	}
	return y
}

// LayerNormGrad returns dx, dgamma, dbeta for LayerNorm.
func LayerNormGrad(x, gamma, dy *Buffer) (dx, dgamma, dbeta *Buffer) {
	rows, d := rowsOf(x)
	dx = NewBuffer(x.Shape)
	dgamma = NewBuffer(tensor.NewShape(d))
	dbeta = NewBuffer(tensor.NewShape(d))
	for r := 0; r < rows; r++ {
		row := x.Data[r*d : (r+1)*d]
		dyr := dy.Data[r*d : (r+1)*d]
		dxr := dx.Data[r*d : (r+1)*d]
		var mu float64
		for _, v := range row {
			mu += float64(v)
		}
		mu /= float64(d)
		var va float64
		for _, v := range row {
			dv := float64(v) - mu
			va += dv * dv
		}
		va /= float64(d)
		inv := 1 / math.Sqrt(va+lnEps)

		// dxhat = dy * gamma; dx = inv*(dxhat - mean(dxhat) - xhat*mean(dxhat*xhat)).
		var mDxhat, mDxhatXhat float64
		xhat := make([]float64, d)
		dxhat := make([]float64, d)
		for j, v := range row {
			xhat[j] = (float64(v) - mu) * inv
			dxhat[j] = float64(dyr[j]) * float64(gamma.Data[j])
			mDxhat += dxhat[j]
			mDxhatXhat += dxhat[j] * xhat[j]
			dgamma.Data[j] += float32(float64(dyr[j]) * xhat[j])
			dbeta.Data[j] += dyr[j]
		}
		mDxhat /= float64(d)
		mDxhatXhat /= float64(d)
		for j := range dxr {
			dxr[j] = float32(inv * (dxhat[j] - mDxhat - xhat[j]*mDxhatXhat))
		}
	}
	return dx, dgamma, dbeta
}

// GELU applies the Gaussian error linear unit (tanh approximation).
func GELU(x *Buffer) *Buffer {
	y := NewBuffer(x.Shape)
	for i, v := range x.Data {
		y.Data[i] = float32(gelu(float64(v)))
	}
	return y
}

const geluC = 0.7978845608028654 // sqrt(2/pi)

func gelu(x float64) float64 {
	return 0.5 * x * (1 + math.Tanh(geluC*(x+0.044715*x*x*x)))
}

// GELUGrad masks dy by the analytic derivative of the tanh-approximate
// GELU.
func GELUGrad(x, dy *Buffer) *Buffer {
	dx := NewBuffer(x.Shape)
	for i, v := range x.Data {
		xv := float64(v)
		u := geluC * (xv + 0.044715*xv*xv*xv)
		t := math.Tanh(u)
		du := geluC * (1 + 3*0.044715*xv*xv)
		g := 0.5*(1+t) + 0.5*xv*(1-t*t)*du
		dx.Data[i] = dy.Data[i] * float32(g)
	}
	return dx
}
