package experiments

import (
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"tsplit/internal/device"
	"tsplit/internal/obs"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 3, 100} {
		var hits atomic.Int64
		seen := make([]atomic.Bool, n)
		forEach(n, func(i int) {
			if seen[i].Swap(true) {
				t.Errorf("n=%d: index %d visited twice", n, i)
			}
			hits.Add(1)
		})
		if int(hits.Load()) != n {
			t.Fatalf("n=%d: %d calls", n, hits.Load())
		}
	}
}

func TestFirstError(t *testing.T) {
	if firstError([]error{nil, nil}) != nil {
		t.Fatal("nil slice should give nil")
	}
	a, b := errors.New("a"), errors.New("b")
	if got := firstError([]error{nil, a, b}); got != a {
		t.Fatalf("firstError = %v, want lowest-index error", got)
	}
}

// TestForEachObserved checks the per-cell instrumentation: with a
// Registry installed as Obs, a fan-out records one cell count and one
// duration sample per index, concurrently (run under -race).
func TestForEachObserved(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	reg := obs.NewRegistry()
	Obs = reg
	defer func() { Obs = nil }()

	const n = 64
	var hits atomic.Int64
	forEach(n, func(i int) { hits.Add(1) })
	if hits.Load() != n {
		t.Fatalf("%d calls for %d cells", hits.Load(), n)
	}
	if got := reg.Counter("tsplit_experiments_cells_total"); got != n {
		t.Fatalf("cells_total = %d, want %d", got, n)
	}
	h := reg.Histogram("tsplit_experiments_cell_seconds")
	if h.Count != n {
		t.Fatalf("cell_seconds count = %d, want %d", h.Count, n)
	}
}

// TestConcurrentSweepsDeterministic forces real fan-out (the container
// may have GOMAXPROCS=1, where forEach degenerates to a sequential
// loop) and checks that a table and a figure assembled from concurrent
// cells are identical across runs — i.e. independent of goroutine
// completion order.
func TestConcurrentSweepsDeterministic(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	small := device.TitanRTX
	small.MemBytes = 6 << 30

	t1 := Table4MaxSampleScale(small, 48)
	t2 := Table4MaxSampleScale(small, 48)
	if !reflect.DeepEqual(t1, t2) {
		t.Fatalf("Table IV not deterministic:\n%s\nvs\n%s", t1.Render(), t2.Render())
	}
	if t1.Get("vgg16", "base") <= 0 {
		t.Fatal("base cannot train vgg16 at all")
	}

	rows1, err := Fig2bOverheadPCIe(device.TitanRTX, "superneurons")
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := Fig2bOverheadPCIe(device.TitanRTX, "superneurons")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows1, rows2) {
		t.Fatal("Fig. 2(b) rows not deterministic")
	}
}
