package experiments

import (
	"fmt"
	"strings"

	"tsplit/internal/costmodel"
	"tsplit/internal/device"
	"tsplit/internal/graph"
	"tsplit/internal/models"
	"tsplit/internal/sim"
)

// ThroughputSeries is one line of a throughput figure: samples/second
// per batch size for one policy (0 = infeasible at that batch).
type ThroughputSeries struct {
	Policy string
	Batch  []int
	Thr    []float64
}

// ThroughputFigure is the Fig. 12 / 13 / 15 data: throughput per
// (model, policy, batch).
type ThroughputFigure struct {
	Title  string
	Dev    device.Device
	Series map[string][]ThroughputSeries // by model
}

// fig12Batches matches the paper's per-model sample-size sweeps.
var fig12Batches = map[string][]int{
	"vgg16":       {64, 128, 256, 384},
	"resnet50":    {64, 128, 256, 512},
	"inceptionv4": {64, 128, 256, 512},
	"transformer": {32, 64, 128, 256},
}

// fig12Models are the four workloads of Figs. 12/13/15.
var fig12Models = []string{"vgg16", "resnet50", "inceptionv4", "transformer"}

// throughputFigure sweeps batch sizes for the given policies. Each
// (model, policy) series prepares and simulates its own workloads, so
// the series run concurrently and are stitched back in legend order.
func throughputFigure(title string, dev device.Device, policies []string, cfg models.Config) *ThroughputFigure {
	f := &ThroughputFigure{Title: title, Dev: dev, Series: map[string][]ThroughputSeries{}}
	type cell struct {
		model  string
		policy string
	}
	cells := make([]cell, 0, len(fig12Models)*len(policies))
	for _, m := range fig12Models {
		for _, pol := range policies {
			cells = append(cells, cell{m, pol})
		}
	}
	results := make([]ThroughputSeries, len(cells))
	forEach(len(cells), func(k int) {
		m, pol := cells[k].model, cells[k].policy
		batches := fig12Batches[m]
		s := ThroughputSeries{Policy: pol, Batch: batches, Thr: make([]float64, len(batches))}
		if applicable(m, pol) {
			for i, b := range batches {
				c := cfg
				c.BatchSize = b
				p, err := Prepare(m, c, dev)
				if err != nil {
					continue
				}
				s.Thr[i] = RunPolicy(p, pol, 0).Throughput(b)
			}
		}
		results[k] = s
	})
	for k, c := range cells {
		f.Series[c.model] = append(f.Series[c.model], results[k])
	}
	return f
}

// fig12Policies matches the paper's Fig. 12 legend.
var fig12Policies = []string{"vdnn-conv", "vdnn-all", "checkpoints", "superneurons", "tsplit"}

// Fig12ThroughputRTX reproduces paper Fig. 12: throughput vs sample
// size on the Titan RTX. The paper plots speedup over vDNN; Render
// normalizes accordingly.
func Fig12ThroughputRTX() *ThroughputFigure {
	return throughputFigure("Fig. 12: throughput vs sample size (TITAN RTX)", device.TitanRTX, fig12Policies, models.Config{})
}

// Fig13Throughput1080Ti reproduces paper Fig. 13 on the GTX 1080Ti
// (~70% of the RTX's FP32 throughput, 11 GB).
func Fig13Throughput1080Ti() *ThroughputFigure {
	return throughputFigure("Fig. 13: throughput vs sample size (GTX 1080Ti)", device.GTX1080Ti, fig12Policies, models.Config{})
}

// Fig15ThroughputVsOffload reproduces paper Fig. 15: throughput
// against the PyTorch offload baselines (Adam optimizer).
func Fig15ThroughputVsOffload() *ThroughputFigure {
	return throughputFigure("Fig. 15: throughput vs offload baselines (TITAN RTX)",
		device.TitanRTX, []string{"zero-offload", "fairscale-offload", "tsplit-offload"},
		models.Config{Optimizer: graph.Adam})
}

// Render draws the figure as per-model tables of throughput and
// speedup over the first policy that is feasible at each batch.
func (f *ThroughputFigure) Render() string {
	var b strings.Builder
	fmt.Fprintln(&b, f.Title)
	for _, m := range fig12Models {
		series := f.Series[m]
		if len(series) == 0 {
			continue
		}
		fmt.Fprintf(&b, "-- %s (samples/s)\n", m)
		fmt.Fprintf(&b, "%-18s", "policy\\batch")
		for _, bt := range series[0].Batch {
			fmt.Fprintf(&b, "%10d", bt)
		}
		fmt.Fprintln(&b)
		for _, s := range series {
			fmt.Fprintf(&b, "%-18s", s.Policy)
			for _, v := range s.Thr {
				if v == 0 {
					fmt.Fprintf(&b, "%10s", "x")
				} else {
					fmt.Fprintf(&b, "%10.1f", v)
				}
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String()
}

// TimelineFigure is the Fig. 2(a) data: the memory footprint over time
// for two policies on the same workload.
type TimelineFigure struct {
	Model    string
	Batch    int
	Policies []string
	Lines    map[string][]sim.TimelinePoint
	Peaks    map[string]int64
}

// Fig2aMemoryTimeline reproduces paper Fig. 2(a): SuperNeurons'
// repeated memory peaks vs TSPLIT's flattened footprint on VGG-16.
func Fig2aMemoryTimeline(dev device.Device, batch int) (*TimelineFigure, error) {
	fig := &TimelineFigure{
		Model: "vgg16", Batch: batch,
		Policies: []string{"superneurons", "tsplit"},
		Lines:    map[string][]sim.TimelinePoint{},
		Peaks:    map[string]int64{},
	}
	p, err := Prepare("vgg16", models.Config{BatchSize: batch}, dev)
	if err != nil {
		return nil, err
	}
	for _, pol := range fig.Policies {
		r := RunPolicyTimeline(p, pol, 0)
		if !r.Feasible {
			return nil, fmt.Errorf("experiments: %s infeasible for fig2a: %s", pol, r.Reason)
		}
		fig.Lines[pol] = r.Res.Timeline
		fig.Peaks[pol] = r.Res.PeakBytes
	}
	return fig, nil
}

// Render draws peak summaries and a coarse sparkline per policy.
func (f *TimelineFigure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2(a): memory footprint over time, %s batch %d\n", f.Model, f.Batch)
	levels := []rune(" .:-=+*#%@")
	for _, pol := range f.Policies {
		line := f.Lines[pol]
		peak := f.Peaks[pol]
		fmt.Fprintf(&b, "%-14s peak %6.1f GiB |", pol, float64(peak)/(1<<30))
		// Downsample to 80 columns.
		cols := 80
		for c := 0; c < cols; c++ {
			idx := c * len(line) / cols
			var v int64
			if idx < len(line) {
				v = line[idx].MemUsed
			}
			l := int(float64(v) / float64(peak) * float64(len(levels)-1))
			if l < 0 {
				l = 0
			}
			if l >= len(levels) {
				l = len(levels) - 1
			}
			b.WriteRune(levels[l])
		}
		fmt.Fprintln(&b, "|")
	}
	return b.String()
}

// OverheadRow is one model of Fig. 2(b): a policy's slowdown over the
// ideal (infinite-memory) execution and its PCIe utilization.
type OverheadRow struct {
	Model       string
	Batch       int
	OverheadPct float64
	PCIePct     float64
}

// fig2bBatches puts each CNN under real memory pressure on the RTX.
var fig2bBatches = map[string]int{
	"vgg16": 256, "vgg19": 256, "resnet50": 384, "resnet101": 256, "inceptionv4": 384,
}

// Fig2bOverheadPCIe reproduces paper Fig. 2(b): SuperNeurons'
// performance overhead (25~45% in the paper) and PCIe utilization
// (~45.6% average) across the five CNN models under memory
// over-subscription.
func Fig2bOverheadPCIe(dev device.Device, policy string) ([]OverheadRow, error) {
	mods := []string{"vgg16", "vgg19", "resnet50", "resnet101", "inceptionv4"}
	rows := make([]OverheadRow, len(mods))
	errs := make([]error, len(mods))
	forEach(len(mods), func(i int) {
		m := mods[i]
		batch := fig2bBatches[m]
		p, err := Prepare(m, models.Config{BatchSize: batch}, dev)
		if err != nil {
			errs[i] = err
			return
		}
		r := RunPolicy(p, policy, 0)
		if !r.Feasible {
			rows[i] = OverheadRow{Model: m, Batch: batch}
			return
		}
		ideal := p.Prof.Total()
		rows[i] = OverheadRow{
			Model: m, Batch: batch,
			OverheadPct: 100 * (r.Res.Time - ideal) / ideal,
			PCIePct:     100 * r.Res.PCIeUtilization,
		}
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderOverhead draws Fig. 2(b) rows.
func RenderOverhead(policy string, rows []OverheadRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2(b): %s overhead and PCIe utilization\n", policy)
	var sumP float64
	n := 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s batch %4d  overhead %6.1f%%  pcie %5.1f%%\n", r.Model, r.Batch, r.OverheadPct, r.PCIePct)
		if r.PCIePct > 0 {
			sumP += r.PCIePct
			n++
		}
	}
	if n > 0 {
		fmt.Fprintf(&b, "mean PCIe utilization: %.1f%%\n", sumP/float64(n))
	}
	return b.String()
}

// SplitCurve is one operator's execution time vs partition count
// (paper Fig. 5).
type SplitCurve struct {
	Op    string
	PNums []int
	Times []float64 // total execution time across micro-operators
}

// Fig5OpSplitCurves reproduces paper Fig. 5: how operator execution
// time changes with the partition number, per operator type.
func Fig5OpSplitCurves(dev device.Device, batch int) ([]SplitCurve, error) {
	g, err := models.Build("vgg16", models.Config{BatchSize: batch, ForwardOnly: true})
	if err != nil {
		return nil, err
	}
	cm := costmodel.New(dev)
	pnums := []int{1, 2, 4, 8, 16, 32, 64}
	var curves []SplitCurve
	want := map[string]bool{"b1.conv2": true, "b3.conv2": true, "b5.conv1": true, "b1.pool": true, "fc1": true}
	for _, op := range g.Ops {
		if !want[op.Name] {
			continue
		}
		c := SplitCurve{Op: fmt.Sprintf("%s(%s)", op.Name, op.Kind), PNums: pnums}
		for _, p := range pnums {
			_, total := cm.SplitTimes(op, p)
			c.Times = append(c.Times, total)
		}
		curves = append(curves, c)
	}
	return curves, nil
}

// RenderFig5 draws the partition-time curves (normalized to p=1).
func RenderFig5(curves []SplitCurve) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig. 5: operator time vs partition count (normalized to unsplit)")
	for _, c := range curves {
		fmt.Fprintf(&b, "%-22s", c.Op)
		for i, p := range c.PNums {
			fmt.Fprintf(&b, "  p%-3d %5.2fx", p, c.Times[i]/c.Times[0])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
