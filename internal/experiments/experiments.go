// Package experiments reproduces the paper's evaluation (Sec. VI):
// it prepares workloads, runs every memory-management policy on the
// simulated devices, searches maximum trainable scales, and renders
// the tables and figure series the paper reports. Both the
// cmd/tsplit-bench binary and the repository's bench_test.go are thin
// wrappers over this package.
package experiments

import (
	"fmt"
	"strings"

	"tsplit/internal/baselines"
	"tsplit/internal/core"
	"tsplit/internal/device"
	"tsplit/internal/graph"
	"tsplit/internal/models"
	"tsplit/internal/profiler"
	"tsplit/internal/sim"
)

// Prepared bundles everything derived from one (model, config, device)
// triple: the training graph, its schedule, liveness, and profile.
type Prepared struct {
	Model string
	Cfg   models.Config
	Dev   device.Device
	G     *graph.Graph
	Sched *graph.Schedule
	Lv    *graph.Liveness
	Prof  *profiler.Profile
}

// Prepare builds and profiles a workload.
func Prepare(model string, cfg models.Config, dev device.Device) (*Prepared, error) {
	g, err := models.Build(model, cfg)
	if err != nil {
		return nil, err
	}
	sched, err := graph.BuildSchedule(g)
	if err != nil {
		return nil, err
	}
	lv := graph.AnalyzeLiveness(g, sched)
	return &Prepared{
		Model: model, Cfg: cfg, Dev: dev,
		G: g, Sched: sched, Lv: lv,
		Prof: profiler.New(dev, sched),
	}, nil
}

// Policies lists every policy the evaluation compares, in table order.
// "tsplit-nosplit" is the Fig. 14(a) ablation.
var Policies = append(append([]string{}, baselines.Names...), "tsplit", "tsplit-nosplit")

// PolicyResult is the outcome of one (workload, policy) run.
type PolicyResult struct {
	Policy   string
	Feasible bool
	// Reason explains infeasibility (planner failure, OOM, unsupported
	// model).
	Reason string
	Plan   *core.Plan
	Res    sim.Result
}

// Throughput returns samples/second, or 0 when infeasible.
func (r PolicyResult) Throughput(batch int) float64 {
	if !r.Feasible {
		return 0
	}
	return r.Res.Throughput(batch)
}

// PlanPolicy produces the plan for a policy without simulating.
func PlanPolicy(p *Prepared, policy string, capacity int64) (*core.Plan, error) {
	return planPolicyReserve(p, policy, capacity, 0)
}

func planPolicyReserve(p *Prepared, policy string, capacity, reserve int64) (*core.Plan, error) {
	switch policy {
	case "tsplit", "tsplit-nosplit", "tsplit-offload":
		opts := core.Options{
			Capacity:             capacity,
			DisableSplit:         policy == "tsplit-nosplit",
			OffloadOptimizer:     policy == "tsplit-offload",
			FragmentationReserve: reserve,
		}
		pl := core.NewPlanner(p.G, p.Sched, p.Lv, p.Prof, p.Dev, opts)
		return pl.Plan()
	default:
		b, ok := baselines.Registry[policy]
		if !ok {
			return nil, fmt.Errorf("experiments: unknown policy %q", policy)
		}
		return b(baselines.Inputs{G: p.G, Sched: p.Sched, Lv: p.Lv, Prof: p.Prof, Dev: p.Dev})
	}
}

// simPool recycles simulator arenas across every simulation this
// package runs. The sweeps are sharded over forEach workers; each
// worker borrows an arena per cell and returns it after, so a sweep
// reaches steady state after one cell per worker and stops allocating
// simulator state entirely. Results are byte-identical to fresh
// simulators, so the ordered per-index fold is untouched.
var simPool = sim.NewSimPool()

// Simulate runs one simulation on a pooled arena and returns its
// result. Exported so the bench harness and serve layer exercise the
// same pooled path the sweeps use.
func Simulate(p *Prepared, plan *core.Plan, opts sim.Options) (sim.Result, error) {
	s := simPool.Get(p.G, p.Sched, p.Lv, plan, p.Dev, opts)
	res, err := s.Run()
	simPool.Put(s)
	return res, err
}

// simOptions returns the runtime configuration a policy uses:
// SuperNeurons and TSPLIT run the LRU-hybrid recomputation cache
// (paper Sec. V-D: TSPLIT "adopts an LRU-based recomputation
// optimization"); the remaining policies use the memory-centric
// strategy.
func simOptions(policy string, capacity int64, timeline bool) sim.Options {
	o := sim.Options{Capacity: capacity, CollectTimeline: timeline}
	switch policy {
	case "superneurons", "tsplit", "tsplit-nosplit", "tsplit-offload":
		o.Recompute = sim.LRURecompute
	}
	return o
}

// RunPolicy plans and simulates one policy on a prepared workload.
// capacity 0 uses the device's full memory.
func RunPolicy(p *Prepared, policy string, capacity int64) PolicyResult {
	return runPolicy(p, policy, capacity, false)
}

// RunPolicyTimeline is RunPolicy with execution-trace collection
// (Fig. 2(a)).
func RunPolicyTimeline(p *Prepared, policy string, capacity int64) PolicyResult {
	return runPolicy(p, policy, capacity, true)
}

func runPolicy(p *Prepared, policy string, capacity int64, timeline bool) PolicyResult {
	r := PolicyResult{Policy: policy}
	// TSPLIT iterates plan -> trial execution: when the run-time
	// validation hits fragmentation the planner retries against a
	// larger reserve (the real system's profile-and-replan loop).
	reserves := []int64{0}
	if strings.HasPrefix(policy, "tsplit") {
		cap := capacity
		if cap == 0 {
			cap = p.Dev.MemBytes
		}
		// The final -1 disables the reserve entirely: when resident
		// parameters leave no slack, a reserve-free plan is the only
		// feasible one and the runtime validation still gates it.
		reserves = []int64{0, cap * 6 / 100, cap * 13 / 100, cap * 21 / 100, -1}
	}
	for _, rv := range reserves {
		plan, err := planPolicyReserve(p, policy, capacity, rv)
		if err != nil {
			r.Reason = err.Error()
			continue
		}
		r.Plan = plan
		res, err := Simulate(p, plan, simOptions(policy, capacity, timeline))
		if err != nil {
			r.Reason = err.Error()
			continue
		}
		r.Feasible = true
		r.Res = res
		return r
	}
	return r
}

// Feasible reports whether a (model, config, policy) trains on the
// device.
func Feasible(model string, cfg models.Config, dev device.Device, policy string, capacity int64) bool {
	p, err := Prepare(model, cfg, dev)
	if err != nil {
		return false
	}
	return RunPolicy(p, policy, capacity).Feasible
}
