package experiments

import (
	"strings"
	"testing"

	"tsplit/internal/device"
	"tsplit/internal/models"
)

func TestRunPolicyBase(t *testing.T) {
	p, err := Prepare("vgg16", models.Config{BatchSize: 16}, device.TitanRTX)
	if err != nil {
		t.Fatal(err)
	}
	r := RunPolicy(p, "base", 0)
	if !r.Feasible {
		t.Fatalf("base infeasible: %s", r.Reason)
	}
	if r.Throughput(16) <= 0 {
		t.Fatal("no throughput")
	}
}

func TestRunPolicyUnknown(t *testing.T) {
	p, _ := Prepare("vgg16", models.Config{BatchSize: 8}, device.TitanRTX)
	r := RunPolicy(p, "nope", 0)
	if r.Feasible || r.Reason == "" {
		t.Fatal("unknown policy must be infeasible with a reason")
	}
}

func TestFeasibleRespectsCapacity(t *testing.T) {
	cfg := models.Config{BatchSize: 64}
	if !Feasible("vgg16", cfg, device.TitanRTX, "base", 0) {
		t.Fatal("vgg16 batch 64 should fit a 24 GB device")
	}
	tiny := device.TitanRTX
	tiny.MemBytes = 1 << 30
	if Feasible("vgg16", cfg, tiny, "base", 0) {
		t.Fatal("vgg16 batch 64 cannot fit 1 GiB unmanaged")
	}
}

func TestSearchMax(t *testing.T) {
	// Monotone predicate: feasible up to 37.
	got := searchMax(func(n int) bool { return n <= 37 }, 256)
	if got != 37 {
		t.Fatalf("searchMax = %d, want 37", got)
	}
	if searchMax(func(n int) bool { return false }, 256) != 0 {
		t.Fatal("all-infeasible should be 0")
	}
	if searchMax(func(n int) bool { return true }, 64) != 64 {
		t.Fatal("all-feasible should hit the bound")
	}
}

func TestMaxSampleScaleOrdering(t *testing.T) {
	// On a deliberately small device the policy ordering must hold:
	// tsplit >= superneurons >= base.
	small := device.TitanRTX
	small.MemBytes = 6 << 30
	base := MaxSampleScale("vgg16", "base", small, models.Config{}, 256)
	sn := MaxSampleScale("vgg16", "superneurons", small, models.Config{}, 256)
	ts := MaxSampleScale("vgg16", "tsplit", small, models.Config{}, 256)
	if base <= 0 {
		t.Fatal("base cannot train at all")
	}
	if sn < base {
		t.Fatalf("superneurons (%d) below base (%d)", sn, base)
	}
	if ts < sn {
		t.Fatalf("tsplit (%d) below superneurons (%d)", ts, sn)
	}
}

func TestTable2Renders(t *testing.T) {
	buckets, err := Table2TensorSizes(8, 128)
	if err != nil {
		t.Fatal(err)
	}
	var pct float64
	for _, b := range buckets {
		pct += b.Percent
	}
	if pct < 99.9 || pct > 100.1 {
		t.Fatalf("bucket percentages sum to %g", pct)
	}
	if !strings.Contains(RenderTable2(buckets), "> 500MB") {
		t.Fatal("render missing buckets")
	}
}

func TestFig5Curves(t *testing.T) {
	curves, err := Fig5OpSplitCurves(device.TitanRTX, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) == 0 {
		t.Fatal("no curves")
	}
	for _, c := range curves {
		for i := 1; i < len(c.Times); i++ {
			if c.Times[i] < c.Times[0]*0.999 {
				t.Fatalf("%s: splitting made it faster?", c.Op)
			}
		}
	}
	if RenderFig5(curves) == "" {
		t.Fatal("empty render")
	}
}

func TestFig1Grid(t *testing.T) {
	grid, caps, err := Fig1BERTMemoryScale()
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) == 0 || len(caps) == 0 {
		t.Fatal("empty fig1")
	}
	// Memory grows with batch at fixed scale.
	var b4, b64 float64
	for _, pt := range grid {
		if pt.ParamScale == 1.0 && pt.Batch == 4 {
			b4 = pt.PeakGiB
		}
		if pt.ParamScale == 1.0 && pt.Batch == 64 {
			b64 = pt.PeakGiB
		}
	}
	if b64 <= b4 {
		t.Fatal("memory must grow with the sample scale")
	}
	if RenderFig1(grid, caps) == "" {
		t.Fatal("empty render")
	}
}

func TestFig2aTimeline(t *testing.T) {
	fig, err := Fig2aMemoryTimeline(device.TitanRTX, 192)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Lines["superneurons"]) == 0 || len(fig.Lines["tsplit"]) == 0 {
		t.Fatal("missing timelines")
	}
	if fig.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestScaleTableRender(t *testing.T) {
	tbl := &ScaleTable{
		Title:    "test",
		Models:   []string{"m"},
		Policies: []string{"a", "b"},
		Cells:    map[string]map[string]int{"m": {"a": 3, "b": -1}},
	}
	out := tbl.Render()
	if !strings.Contains(out, "3") || !strings.Contains(out, "x") {
		t.Fatalf("render missing cells: %s", out)
	}
	if tbl.Get("m", "a") != 3 {
		t.Fatal("Get wrong")
	}
}

func TestApplicable(t *testing.T) {
	if applicable("transformer", "vdnn-conv") || applicable("transformer", "superneurons") {
		t.Fatal("conv policies must be inapplicable to the transformer")
	}
	if !applicable("vgg16", "vdnn-conv") || !applicable("transformer", "vdnn-all") {
		t.Fatal("applicable cases wrong")
	}
}

func TestFig14bStrategyMix(t *testing.T) {
	rows, err := Fig14bStrategyMix(160)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if RenderFig14b(rows) == "" {
		t.Fatal("empty render")
	}
}
