package experiments

import (
	"fmt"
	"strings"

	"tsplit/internal/device"
	"tsplit/internal/graph"
	"tsplit/internal/models"
)

// EvalModels are the paper's six benchmark models (Sec. VI-A).
var EvalModels = []string{"vgg16", "vgg19", "resnet50", "resnet101", "inceptionv4", "transformer"}

// ScaleTable is the result of a max-scale sweep (paper Tables IV-VII):
// Cells[model][policy] = max scale, 0 = cannot train at scale 1,
// -1 = policy not applicable (the paper's ×).
type ScaleTable struct {
	Title    string
	Models   []string
	Policies []string
	Cells    map[string]map[string]int
}

// Get returns the cell for (model, policy).
func (t *ScaleTable) Get(model, policy string) int { return t.Cells[model][policy] }

// Render draws the table in the paper's layout.
func (t *ScaleTable) Render() string {
	var b strings.Builder
	fmt.Fprintln(&b, t.Title)
	fmt.Fprintf(&b, "%-12s", "Model")
	for _, p := range t.Policies {
		fmt.Fprintf(&b, "%18s", p)
	}
	fmt.Fprintln(&b)
	for _, m := range t.Models {
		fmt.Fprintf(&b, "%-12s", m)
		for _, p := range t.Policies {
			v := t.Cells[m][p]
			if v < 0 {
				fmt.Fprintf(&b, "%18s", "x")
			} else {
				fmt.Fprintf(&b, "%18d", v)
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// scalePolicies is the paper's Table IV/V policy set.
var scalePolicies = []string{"base", "vdnn-conv", "vdnn-all", "checkpoints", "superneurons", "tsplit"}

// offloadPolicies is the Table VI/VII policy set: the PyTorch
// comparison composes TSPLIT's activation planning with CPU-side
// optimizer updates (Sec. VI-D).
var offloadPolicies = []string{"zero-offload", "fairscale-offload", "tsplit-offload"}

// applicable reports whether a policy can support a model at all
// (vDNN-conv and SuperNeurons need convolutions — the paper's ×).
func applicable(model, policy string) bool {
	if model != "transformer" && model != "bert-large" {
		return true
	}
	return policy != "vdnn-conv" && policy != "superneurons"
}

// maxScaleTable runs one scale sweep. The (model, policy) cells are
// independent — every search prepares its own workload — so they run
// concurrently; results land in per-cell slots and the table is
// assembled in the sequential order afterwards.
func maxScaleTable(title string, policies []string, dev device.Device, hi int, search func(model, policy string, hi int) int) *ScaleTable {
	t := &ScaleTable{Title: title, Models: EvalModels, Policies: policies, Cells: map[string]map[string]int{}}
	type cell struct{ model, policy string }
	cells := make([]cell, 0, len(EvalModels)*len(policies))
	for _, m := range EvalModels {
		for _, p := range policies {
			cells = append(cells, cell{m, p})
		}
	}
	results := make([]int, len(cells))
	forEach(len(cells), func(i int) {
		c := cells[i]
		if !applicable(c.model, c.policy) {
			results[i] = -1
			return
		}
		results[i] = search(c.model, c.policy, hi)
	})
	for i, c := range cells {
		if t.Cells[c.model] == nil {
			t.Cells[c.model] = map[string]int{}
		}
		t.Cells[c.model][c.policy] = results[i]
	}
	return t
}

// Table4MaxSampleScale reproduces paper Table IV: the largest batch
// size each policy trains per model on the Titan RTX. hi bounds the
// search (0 = 4096; tests pass smaller bounds).
func Table4MaxSampleScale(dev device.Device, hi int) *ScaleTable {
	return maxScaleTable(
		fmt.Sprintf("Table IV: max sample scale on %s", dev.Name),
		scalePolicies, dev, hi,
		func(model, policy string, hi int) int {
			return MaxSampleScale(model, policy, dev, models.Config{}, hi)
		})
}

// Table5MaxParamScale reproduces paper Table V: the largest
// parameter-scale multiplier (channels / hidden ×k) trainable at
// batch 16.
func Table5MaxParamScale(dev device.Device, hi int) *ScaleTable {
	return maxScaleTable(
		fmt.Sprintf("Table V: max parameter scale (batch 16) on %s", dev.Name),
		scalePolicies, dev, hi,
		func(model, policy string, hi int) int {
			return MaxParamScale(model, policy, dev, models.Config{BatchSize: 16}, hi)
		})
}

// Table6MaxSampleVsOffload reproduces paper Table VI: sample scale
// against the PyTorch offload baselines (Adam optimizer states give
// ZeRO-Offload something to offload, as in the paper's setting).
func Table6MaxSampleVsOffload(dev device.Device, hi int) *ScaleTable {
	return maxScaleTable(
		fmt.Sprintf("Table VI: max sample scale vs offload baselines on %s", dev.Name),
		offloadPolicies, dev, hi,
		func(model, policy string, hi int) int {
			return MaxSampleScale(model, policy, dev, models.Config{Optimizer: graph.Adam}, hi)
		})
}

// Table7MaxParamVsOffload reproduces paper Table VII: parameter scale
// against the offload baselines.
func Table7MaxParamVsOffload(dev device.Device, hi int) *ScaleTable {
	return maxScaleTable(
		fmt.Sprintf("Table VII: max parameter scale (batch 16) vs offload baselines on %s", dev.Name),
		offloadPolicies, dev, hi,
		func(model, policy string, hi int) int {
			return MaxParamScale(model, policy, dev, models.Config{BatchSize: 16, Optimizer: graph.Adam}, hi)
		})
}

// SizeBucket is one row of the paper's Table II tensor-size histogram.
type SizeBucket struct {
	Label   string
	Lo, Hi  int64 // bytes, Hi 0 = unbounded
	Count   int
	Percent float64
}

// Table2TensorSizes reproduces paper Table II: the distribution of
// tensor sizes in BERT-Large, demonstrating how many >500 MB tensors a
// large model carries.
func Table2TensorSizes(batch, seqLen int) ([]SizeBucket, error) {
	g, err := models.Build("bert-large", models.Config{BatchSize: batch, SeqLen: seqLen})
	if err != nil {
		return nil, err
	}
	const MB = 1 << 20
	buckets := []SizeBucket{
		{Label: "< 1MB", Lo: 0, Hi: 1 * MB},
		{Label: "1 ~ 10MB", Lo: 1 * MB, Hi: 10 * MB},
		{Label: "10 ~ 50MB", Lo: 10 * MB, Hi: 50 * MB},
		{Label: "50 ~ 100MB", Lo: 50 * MB, Hi: 100 * MB},
		{Label: "100 ~ 500MB", Lo: 100 * MB, Hi: 500 * MB},
		{Label: "> 500MB", Lo: 500 * MB, Hi: 0},
	}
	total := 0
	for _, t := range g.Tensors {
		total++
		b := t.Bytes()
		for i := range buckets {
			if b >= buckets[i].Lo && (buckets[i].Hi == 0 || b < buckets[i].Hi) {
				buckets[i].Count++
				break
			}
		}
	}
	for i := range buckets {
		if total > 0 {
			buckets[i].Percent = 100 * float64(buckets[i].Count) / float64(total)
		}
	}
	return buckets, nil
}

// RenderTable2 draws the Table II histogram.
func RenderTable2(buckets []SizeBucket) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table II: tensor size distribution in BERT-Large")
	for _, bk := range buckets {
		fmt.Fprintf(&b, "%-12s %6.2f%% (%d tensors)\n", bk.Label, bk.Percent, bk.Count)
	}
	return b.String()
}
