package experiments

import (
	"fmt"
	"strings"

	"tsplit/internal/device"
	"tsplit/internal/graph"
	"tsplit/internal/models"
)

// MemoryScalePoint is one cell of the paper's Fig. 1: the training
// memory requirement of BERT-Large at a (sample scale, parameter
// scale) point.
type MemoryScalePoint struct {
	Batch      int
	ParamScale float64
	Hidden     int
	PeakGiB    float64
}

// Fig1BERTMemoryScale reproduces paper Fig. 1: BERT-Large training
// memory over the sample × parameter scale grid, plus the maximum
// trainable scale product for each mainstream GPU (the figure's black
// capacity lines).
func Fig1BERTMemoryScale() ([]MemoryScalePoint, map[string]int64, error) {
	batches := []int{4, 8, 16, 32, 64}
	scales := []float64{0.75, 1.0, 1.25, 1.5, 2.0}
	type cell struct {
		batch int
		scale float64
	}
	var cells []cell
	for _, b := range batches {
		for _, k := range scales {
			cells = append(cells, cell{b, k})
		}
	}
	grid := make([]MemoryScalePoint, len(cells))
	errs := make([]error, len(cells))
	forEach(len(cells), func(i int) {
		b, k := cells[i].batch, cells[i].scale
		g, err := models.Build("bert-large", models.Config{BatchSize: b, ParamScale: k})
		if err != nil {
			errs[i] = err
			return
		}
		sched, err := graph.BuildSchedule(g)
		if err != nil {
			errs[i] = err
			return
		}
		lv := graph.AnalyzeLiveness(g, sched)
		hidden := 0
		if len(g.Params) > 0 {
			hidden = g.Params[0].Shape[1] // embedding table [vocab, hidden]
		}
		grid[i] = MemoryScalePoint{
			Batch: b, ParamScale: k, Hidden: hidden,
			PeakGiB: float64(lv.Peak) / (1 << 30),
		}
	})
	if err := firstError(errs); err != nil {
		return nil, nil, err
	}
	caps := map[string]int64{}
	for _, d := range device.All {
		caps[d.Name] = d.MemBytes
	}
	return grid, caps, nil
}

// RenderFig1 draws the memory grid with per-GPU trainability marks.
func RenderFig1(grid []MemoryScalePoint, caps map[string]int64) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig. 1: BERT-Large memory requirement (GiB) vs model scale")
	fmt.Fprintf(&b, "%-8s %-8s %-8s %10s   trainable on\n", "batch", "k", "hidden", "peak GiB")
	for _, pt := range grid {
		fmt.Fprintf(&b, "%-8d %-8.2f %-8d %10.1f   ", pt.Batch, pt.ParamScale, pt.Hidden, pt.PeakGiB)
		var fits []string
		for _, d := range device.All {
			if int64(pt.PeakGiB*(1<<30)) <= caps[d.Name] {
				fits = append(fits, d.Name)
			}
		}
		if len(fits) == 0 {
			fmt.Fprint(&b, "none")
		} else {
			fmt.Fprint(&b, strings.Join(fits, ", "))
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// ThroughputConstrainedScale is one bar of paper Fig. 14(a): the
// maximum trainable sample size while sustaining at least x% of the
// Base throughput.
type ThroughputConstrainedScale struct {
	Model   string
	Policy  string
	Pct     int
	MaxSize int
}

// Fig14aScaleUnderThroughput reproduces paper Fig. 14(a): max sample
// size under 60% / 50% of Base throughput, comparing SuperNeurons,
// TSPLIT w/o Split and TSPLIT on VGG-16 and ResNet-101.
func Fig14aScaleUnderThroughput(dev device.Device, hi int) ([]ThroughputConstrainedScale, error) {
	if hi == 0 {
		hi = 2048
	}
	mods := []string{"vgg16", "resnet101"}
	pols := []string{"superneurons", "tsplit-nosplit", "tsplit"}
	// Per-model reference throughput first (cheap), then the expensive
	// (model, policy) frontier searches concurrently; each produces its
	// two pct rows, stitched back in sweep order.
	baseThr := make([]float64, len(mods))
	errs := make([]error, len(mods))
	forEach(len(mods), func(mi int) {
		m := mods[mi]
		baseMax := MaxSampleScale(m, "base", dev, models.Config{}, hi)
		if baseMax == 0 {
			errs[mi] = fmt.Errorf("experiments: base cannot train %s at all", m)
			return
		}
		p, err := Prepare(m, models.Config{BatchSize: baseMax}, dev)
		if err != nil {
			errs[mi] = err
			return
		}
		baseThr[mi] = RunPolicy(p, "base", 0).Throughput(baseMax)
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	results := make([][]ThroughputConstrainedScale, len(mods)*len(pols))
	forEach(len(results), func(k int) {
		m, pol := mods[k/len(pols)], pols[k%len(pols)]
		// Throughput rises then falls with batch size, so the
		// constraint binds on the falling side: start from the
		// policy's feasibility limit and step down until the
		// throughput floor is met.
		polMax := MaxSampleScale(m, pol, dev, models.Config{}, hi)
		thrAt := func(b int) float64 {
			pp, err := Prepare(m, models.Config{BatchSize: b}, dev)
			if err != nil {
				return 0
			}
			return RunPolicy(pp, pol, 0).Throughput(b)
		}
		for _, pct := range []int{60, 50} {
			need := baseThr[k/len(pols)] * float64(pct) / 100
			step := polMax / 24
			if step < 1 {
				step = 1
			}
			max := 0
			for b := polMax; b >= 1; b -= step {
				if thrAt(b) >= need {
					max = b
					break
				}
			}
			results[k] = append(results[k], ThroughputConstrainedScale{
				Model: m, Policy: pol, Pct: pct, MaxSize: max,
			})
		}
	})
	var rows []ThroughputConstrainedScale
	for _, r := range results {
		rows = append(rows, r...)
	}
	return rows, nil
}

// RenderFig14a draws the Fig. 14(a) bars.
func RenderFig14a(rows []ThroughputConstrainedScale) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig. 14(a): max sample size under x% of Base throughput")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-16s %3d%%  max batch %5d\n", r.Model, r.Policy, r.Pct, r.MaxSize)
	}
	return b.String()
}

// StrategyMix is one device of paper Fig. 14(b): the bytes TSPLIT
// chose to swap vs recompute for the same model on different GPUs.
type StrategyMix struct {
	Device         string
	Batch          int
	SwapGiB        float64
	RecomputeGiB   float64
	SplitOperators int
}

// Fig14bStrategyMix reproduces paper Fig. 14(b): TSPLIT picks more
// swap (and less recompute) on the slower GTX 1080Ti because its
// recomputation is relatively more expensive. Each device is put under
// comparable relative memory pressure (batch 0 = pick per device).
func Fig14bStrategyMix(batch int) ([]StrategyMix, error) {
	var rows []StrategyMix
	batches := map[string]int{device.TitanRTX.Name: batch, device.GTX1080Ti.Name: batch}
	if batch == 0 {
		batches[device.TitanRTX.Name] = 288
		batches[device.GTX1080Ti.Name] = 160
	}
	for _, dev := range []device.Device{device.TitanRTX, device.GTX1080Ti} {
		batch := batches[dev.Name]
		p, err := Prepare("vgg16", models.Config{BatchSize: batch}, dev)
		if err != nil {
			return nil, err
		}
		plan, err := PlanPolicy(p, "tsplit", 0)
		if err != nil {
			return nil, fmt.Errorf("experiments: tsplit cannot plan vgg16 batch %d on %s: %w", batch, dev.Name, err)
		}
		c := plan.Counts()
		rows = append(rows, StrategyMix{
			Device: dev.Name, Batch: batch,
			SwapGiB:        float64(c.SwapBytes) / (1 << 30),
			RecomputeGiB:   float64(c.RecomputeBytes) / (1 << 30),
			SplitOperators: c.SplitOps,
		})
	}
	return rows, nil
}

// RenderFig14b draws the strategy-mix comparison.
func RenderFig14b(rows []StrategyMix) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig. 14(b): TSPLIT strategy mix per device (VGG-16)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s batch %4d  swap %6.2f GiB  recompute %6.2f GiB  split ops %d\n",
			r.Device, r.Batch, r.SwapGiB, r.RecomputeGiB, r.SplitOperators)
	}
	return b.String()
}
