package experiments

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"time"

	"tsplit/internal/serve"
)

// ServeReport summarizes a load sweep against the planning service:
// a cold pass that plans every distinct key once, a hot storm where
// hundreds of concurrent clients replay those keys (cache hits), a
// coalescing burst of identical requests on a fresh key, and an
// overload burst against a deliberately tiny server that must shed.
type ServeReport struct {
	Clients     int // concurrent clients in the hot phase
	HotRequests int // total requests in the hot phase
	DistinctKey int // distinct plan keys in the sweep

	ColdP50, ColdP99 time.Duration // miss latency: full planner run
	HotP50, HotP99   time.Duration // hit latency: cached bytes

	HitRate     float64 // cold+hot cache hit rate
	PlannerRuns int64   // planner executions on the main server (one per distinct key)

	PlanDelay time.Duration // synthetic planner latency on the tiny server
	BurstReqs int           // identical simultaneous requests in the coalescing burst
	BurstRuns int64         // planner executions those collapsed to
	Coalesced int64         // waiters that joined the in-flight run

	OverloadReqs int     // distinct-key requests thrown at the tiny server
	Shed         int64   // 429s it answered
	ShedRate     float64 // Shed / OverloadReqs
}

// planBody builds the request body for the i-th distinct key: a
// deterministic random-graph spec, so distinct keys are cheap to plan
// and the sweep scales to many of them.
func planBody(i int) string {
	return fmt.Sprintf(`{"spec":{"seed":%d},"device":"P100"}`, 1000+i)
}

// slowBody builds the i-th distinct key on the delayed servers: one
// shared workload (spec seed 9999, prewarmed), distinct capacity
// budgets so each i is a distinct plan key without paying a graph
// build per key.
func slowBody(i int) string {
	return fmt.Sprintf(`{"spec":{"seed":9999},"options":{"capacity_bytes":%d}}`,
		1<<30+int64(i)<<20)
}

// postOnce sends one plan request and returns its latency, status,
// and cache state. The response body is drained so the client
// connection is reusable.
func postOnce(client *http.Client, url, body string) (time.Duration, int, string, error) {
	start := Clock()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, 0, "", err
	}
	_, _ = io.Copy(io.Discard, resp.Body) // drain for keep-alive reuse
	_ = resp.Body.Close()
	return Clock().Sub(start), resp.StatusCode, resp.Header.Get("X-Tsplit-Cache"), nil
}

// ServeLoad runs the tsplit-serve load sweep over a real HTTP stack
// (httptest listener, keep-alive client pool). quick trims client
// counts for CI; the full sweep runs hundreds of concurrent clients.
func ServeLoad(quick bool) (*ServeReport, error) {
	clients, perClient, distinct := 256, 16, 12
	if quick {
		clients, perClient, distinct = 48, 6, 6
	}
	rep := &ServeReport{Clients: clients, HotRequests: clients * perClient, DistinctKey: distinct}

	srv := serve.New(serve.Config{
		MaxConcurrent: runtime.GOMAXPROCS(0),
		MaxQueue:      clients * perClient,
		CacheEntries:  distinct + 8,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	transport := &http.Transport{MaxIdleConns: clients, MaxIdleConnsPerHost: clients}
	client := &http.Client{Transport: transport}
	defer transport.CloseIdleConnections()

	// Cold pass: every distinct key planned once, sequentially, so the
	// cold percentiles measure planner latency, not queueing.
	cold := make([]time.Duration, 0, distinct)
	for i := 0; i < distinct; i++ {
		d, code, state, err := postOnce(client, ts.URL+"/v1/plan", planBody(i))
		if err != nil {
			return nil, fmt.Errorf("serve cold key %d: %w", i, err)
		}
		if code != http.StatusOK || state != "miss" {
			return nil, fmt.Errorf("serve cold key %d: status %d cache %q", i, code, state)
		}
		cold = append(cold, d)
	}

	// Hot storm: concurrent clients replay the planned keys; every
	// request must hit the cache.
	hot := make([]time.Duration, clients*perClient)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				d, code, _, err := postOnce(client, ts.URL+"/v1/plan", planBody((c+i)%distinct))
				if err != nil {
					errs[c] = err
					return
				}
				if code != http.StatusOK {
					errs[c] = fmt.Errorf("hot client %d: status %d", c, code)
					return
				}
				hot[c*perClient+i] = d
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	reg := srv.Metrics()
	hits := reg.Counter("tsplit_serve_cache_hits_total")
	misses := reg.Counter("tsplit_serve_cache_misses_total")
	rep.PlannerRuns = reg.Counter("tsplit_serve_planner_runs_total")
	if hits+misses > 0 {
		// The cold pass is the misses by design; the hit rate is
		// measured over cold + hot together.
		rep.HitRate = float64(hits) / float64(hits+misses)
	}
	rep.ColdP50, rep.ColdP99 = percentile(cold, 50), percentile(cold, 99)
	rep.HotP50, rep.HotP99 = percentile(hot, 50), percentile(hot, 99)

	// The queueing phases run against a deliberately tiny server — one
	// planner slot, two queue slots — with synthetic planner latency.
	// A real planner run is 1–2 ms of non-yielding CPU: on a
	// single-core runner the scheduler serializes whole requests and
	// no queue can form, so the delay is what makes contention
	// reproducible across machines. The delay sits far above the
	// burst's arrival spread and far below anything wall-clock flaky.
	delay := 40 * time.Millisecond
	rep.PlanDelay = delay
	tiny := serve.New(serve.Config{MaxConcurrent: 1, MaxQueue: 2, PlanDelay: delay})
	tinyTS := httptest.NewServer(tiny)
	defer tinyTS.Close()
	if _, code, _, err := postOnce(client, tinyTS.URL+"/v1/plan", slowBody(0)); err != nil || code != http.StatusOK {
		return nil, fmt.Errorf("serve queueing prewarm: status %d err %w", code, err)
	}

	// Coalescing burst: many simultaneous clients, one fresh key. Only
	// the leader occupies the planner slot; everyone arriving during
	// its run joins it, so identical requests cannot overload the
	// server no matter how many arrive.
	burst := clients / 2
	rep.BurstReqs = burst
	burstStart := make(chan struct{})
	burstErrs := make([]error, burst)
	var ready sync.WaitGroup
	for c := 0; c < burst; c++ {
		wg.Add(1)
		ready.Add(1)
		go func(c int) {
			defer wg.Done()
			// Establish this client's connection first, then fire at the
			// barrier: the burst lands inside the leader's planning window
			// instead of being smeared across TCP dials.
			if resp, err := client.Get(tinyTS.URL + "/healthz"); err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
			}
			ready.Done()
			<-burstStart
			_, code, _, err := postOnce(client, tinyTS.URL+"/v1/plan", slowBody(1))
			if err == nil && code != http.StatusOK {
				err = fmt.Errorf("burst client %d: status %d", c, code)
			}
			burstErrs[c] = err
		}(c)
	}
	ready.Wait()
	close(burstStart)
	wg.Wait()
	for _, err := range burstErrs {
		if err != nil {
			return nil, err
		}
	}
	rep.Coalesced = tiny.Metrics().Counter("tsplit_serve_coalesced_total")
	rep.BurstRuns = tiny.Metrics().Counter("tsplit_serve_planner_runs_total") - 1 // minus the prewarm

	// Overload: the same tiny server takes the same burst shape but
	// with distinct keys — no coalescing to hide behind — and must
	// shed the overflow with 429s rather than queueing without bound.
	rep.OverloadReqs = clients
	overloadErrs := make([]error, clients)
	overloadStart := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		ready.Add(1)
		go func(c int) {
			defer wg.Done()
			if resp, err := client.Get(tinyTS.URL + "/healthz"); err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
			}
			ready.Done()
			<-overloadStart
			_, code, _, err := postOnce(client, tinyTS.URL+"/v1/plan", slowBody(2+c))
			if err == nil && code != http.StatusOK && code != http.StatusTooManyRequests {
				err = fmt.Errorf("overload client %d: status %d", c, code)
			}
			overloadErrs[c] = err
		}(c)
	}
	ready.Wait()
	close(overloadStart)
	wg.Wait()
	for _, err := range overloadErrs {
		if err != nil {
			return nil, err
		}
	}
	rep.Shed = tiny.Metrics().Counter("tsplit_serve_shed_total")
	rep.ShedRate = float64(rep.Shed) / float64(rep.OverloadReqs)
	return rep, nil
}

// Render formats the sweep for the bench output.
func (r *ServeReport) Render() string {
	var b strings.Builder
	b.WriteString("tsplit-serve load sweep (httptest listener, keep-alive clients)\n")
	fmt.Fprintf(&b, "clients %d, hot requests %d, distinct keys %d\n",
		r.Clients, r.HotRequests, r.DistinctKey)
	fmt.Fprintf(&b, "%-22s %12s %12s\n", "phase", "p50", "p99")
	fmt.Fprintf(&b, "%-22s %12s %12s\n", "cold (planner run)", fmtDur(r.ColdP50), fmtDur(r.ColdP99))
	fmt.Fprintf(&b, "%-22s %12s %12s\n", "hot (cache hit)", fmtDur(r.HotP50), fmtDur(r.HotP99))
	fmt.Fprintf(&b, "hit rate %.1f%%  planner runs %d\n", 100*r.HitRate, r.PlannerRuns)
	fmt.Fprintf(&b, "queueing phases on a 1-slot/2-queue server, %v synthetic plan latency:\n", r.PlanDelay)
	fmt.Fprintf(&b, "  coalesce: %d identical requests -> %d planner run(s), %d joined in flight\n",
		r.BurstReqs, r.BurstRuns, r.Coalesced)
	fmt.Fprintf(&b, "  overload: %d distinct requests -> %d shed with 429 (%.1f%%)\n",
		r.OverloadReqs, r.Shed, 100*r.ShedRate)
	return b.String()
}
