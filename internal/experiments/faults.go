package experiments

import (
	"fmt"
	"strings"

	"tsplit/internal/baselines"
	"tsplit/internal/device"
	"tsplit/internal/faults"
	"tsplit/internal/models"
	"tsplit/internal/resilient"
	"tsplit/internal/sim"
)

// FaultRow is one severity cell of the fault-robustness sweep.
type FaultRow struct {
	Severity float64
	// Feasible is false only when even the swap-all fallback cannot
	// train the configuration under injected faults.
	Feasible bool
	// Throughput in samples/second under injection.
	Throughput float64
	// Slowdown relative to the fault-free row (1.0 = no loss).
	Slowdown float64
	// Stages is the degradation-ladder trail ("plan", "plan→replan",
	// "plan→replan→swap-all").
	Stages string
	// Retries / Exhausted / Degraded / CapacityEvents summarize the
	// injected-fault activity the run absorbed.
	Retries, Exhausted, Degraded, CapacityEvents int
}

// FaultReport is the throughput-vs-fault-severity sweep of one
// workload: how gracefully the planner + degradation ladder trade
// throughput for survival as the environment gets more hostile.
type FaultReport struct {
	Title string
	Rows  []FaultRow
}

// Render draws the sweep as a text table.
func (r FaultReport) Render() string {
	var b strings.Builder
	fmt.Fprintln(&b, r.Title)
	fmt.Fprintf(&b, "  %-9s %-12s %-9s %-22s %s\n",
		"severity", "samples/s", "slowdown", "ladder", "faults absorbed")
	for _, row := range r.Rows {
		if !row.Feasible {
			fmt.Fprintf(&b, "  %-9.2f aborted\n", row.Severity)
			continue
		}
		fmt.Fprintf(&b, "  %-9.2f %-12.1f %-9.2f %-22s %d retries (%d exhausted), %d degraded xfers, %d capacity events\n",
			row.Severity, row.Throughput, row.Slowdown, row.Stages,
			row.Retries, row.Exhausted, row.Degraded, row.CapacityEvents)
	}
	return b.String()
}

// FaultSweep measures throughput across fault severities for one model
// under the resilient runner: every cell plans at a safety margin,
// replans on injected OOM, and falls back to swap-all before aborting.
// The budget is the device's — for the paper's evaluation pairings the
// unmanaged peak already exceeds it, so the planner is under real
// memory pressure, while the swap-all floor stays reachable even when
// a full-severity capacity shrink steals its worst-case bite.
func FaultSweep(model string, cfg models.Config, dev device.Device, seed uint64) (FaultReport, error) {
	p, err := Prepare(model, cfg, dev)
	if err != nil {
		return FaultReport{}, err
	}
	severities := []float64{0, 0.15, 0.3, 0.6, 1.0}
	rows := make([]FaultRow, len(severities))
	// Cells share nothing but read-only inputs; sweep them concurrently.
	forEach(len(severities), func(i int) {
		sev := severities[i]
		in := baselines.Inputs{G: p.G, Sched: p.Sched, Lv: p.Lv, Prof: p.Prof, Dev: p.Dev}
		out, err := resilient.Run(in, resilient.Config{
			Faults: faults.Config{Seed: seed, Severity: sev},
			Sim:    sim.Options{Recompute: sim.LRURecompute},
		})
		if err != nil {
			rows[i] = FaultRow{Severity: sev}
			return
		}
		kinds := make([]string, 0, len(out.Stages))
		for _, st := range out.Stages {
			kinds = append(kinds, st.Kind)
		}
		f := out.Result.Faults
		rows[i] = FaultRow{
			Severity:       sev,
			Feasible:       true,
			Throughput:     out.Result.Throughput(cfg.BatchSize),
			Stages:         strings.Join(kinds, "→"),
			Retries:        f.SwapRetries,
			Exhausted:      f.SwapExhausted,
			Degraded:       f.BandwidthEvents,
			CapacityEvents: f.CapacityEvents,
		}
	})
	for i := range rows {
		if rows[i].Feasible && rows[0].Feasible && rows[i].Throughput > 0 {
			rows[i].Slowdown = rows[0].Throughput / rows[i].Throughput
		}
	}
	return FaultReport{
		Title: fmt.Sprintf("Fault robustness: %s b=%d on %s (seed %d)",
			model, cfg.BatchSize, dev.Name, seed),
		Rows: rows,
	}, nil
}
