package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tsplit/internal/core"
	"tsplit/internal/device"
	"tsplit/internal/models"
)

// PlanLatRow is the planning-latency profile of one zoo model: cold
// Plan() against warm Replan() on the pooled planner, each sampled
// `rounds` times and summarized as p50/p99 wall time.
type PlanLatRow struct {
	Model   string
	Ops     int
	Tensors int
	ColdP50 time.Duration
	ColdP99 time.Duration
	WarmP50 time.Duration
	WarmP99 time.Duration
}

// Speedup is the p50 cold/warm ratio, the number the ISSUE gates at
// >= 10x on BERT-Large.
func (r PlanLatRow) Speedup() float64 {
	if r.WarmP50 <= 0 {
		return 0
	}
	return float64(r.ColdP50) / float64(r.WarmP50)
}

// PlanLatency measures planning latency across the model zoo. Each
// model plans at a tight budget (58% of its unmanaged peak); the warm
// samples replan the result at a slightly looser budget (60%), the
// direction journal replay shortcuts — the resilient ladder's
// de-escalation step. Cold samples run the full greedy loop on the
// same pooled planner, so both paths reuse the same arenas and the
// difference is algorithmic, not allocator noise.
//
// The reported durations come from the wall clock and vary run to
// run; everything else about the rows (models, sizes, plan outcomes)
// is deterministic.
func PlanLatency(dev device.Device, rounds int) ([]PlanLatRow, error) {
	if rounds < 1 {
		rounds = 1
	}
	names := models.Names()
	rows := make([]PlanLatRow, 0, len(names))
	for _, model := range names {
		p, err := Prepare(model, models.Config{}, dev)
		if err != nil {
			return nil, fmt.Errorf("planlat %s: %w", model, err)
		}
		tight := core.Options{Capacity: p.Lv.Peak * 58 / 100, FragmentationReserve: -1}
		loose := core.Options{Capacity: p.Lv.Peak * 60 / 100, FragmentationReserve: -1}

		pl := core.NewPlanner(p.G, p.Sched, p.Lv, p.Prof, p.Dev, tight)
		if _, err := pl.Plan(); err != nil { // warm the arenas
			return nil, fmt.Errorf("planlat %s: tight plan: %w", model, err)
		}
		cold := make([]time.Duration, rounds)
		for i := range cold {
			start := Clock()
			if _, err := pl.Plan(); err != nil {
				return nil, fmt.Errorf("planlat %s: cold round %d: %w", model, i, err)
			}
			cold[i] = Clock().Sub(start)
		}

		prev, err := pl.Plan()
		if err != nil {
			return nil, fmt.Errorf("planlat %s: re-base: %w", model, err)
		}
		// One unsampled replan so the tight->loose transition itself
		// (which replays and rolls back the longest journal tail) does
		// not dominate p99; the samples measure the steady state the
		// resilient ladder sits in.
		if prev, err = pl.Replan(prev, loose); err != nil {
			return nil, fmt.Errorf("planlat %s: warm-up replan: %w", model, err)
		}
		warm := make([]time.Duration, rounds)
		for i := range warm {
			start := Clock()
			plan, err := pl.Replan(prev, loose)
			if err != nil {
				return nil, fmt.Errorf("planlat %s: warm round %d: %w", model, i, err)
			}
			warm[i] = Clock().Sub(start)
			prev = plan
		}

		rows = append(rows, PlanLatRow{
			Model: model, Ops: len(p.Sched.Ops), Tensors: len(p.G.Tensors),
			ColdP50: percentile(cold, 50), ColdP99: percentile(cold, 99),
			WarmP50: percentile(warm, 50), WarmP99: percentile(warm, 99),
		})
	}
	return rows, nil
}

// percentile returns the pth percentile (nearest-rank) of samples;
// the slice is sorted in place.
func percentile(samples []time.Duration, p int) time.Duration {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	i := (len(samples)*p + 99) / 100
	if i > 0 {
		i--
	}
	return samples[i]
}

// RenderPlanLat renders the latency table.
func RenderPlanLat(rows []PlanLatRow) string {
	var b strings.Builder
	b.WriteString("Planning latency (pooled planner; warm = Replan at +2% capacity)\n")
	fmt.Fprintf(&b, "%-14s %6s %8s %12s %12s %12s %12s %9s\n",
		"model", "ops", "tensors", "cold p50", "cold p99", "warm p50", "warm p99", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %6d %8d %12s %12s %12s %12s %8.1fx\n",
			r.Model, r.Ops, r.Tensors,
			fmtDur(r.ColdP50), fmtDur(r.ColdP99), fmtDur(r.WarmP50), fmtDur(r.WarmP99),
			r.Speedup())
	}
	return b.String()
}

// fmtDur prints a duration with microsecond resolution, which is the
// scale sub-millisecond planning lives at.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.0fµs", float64(d.Microseconds()))
}
