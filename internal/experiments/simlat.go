package experiments

import (
	"fmt"
	"strings"
	"time"

	"tsplit/internal/core"
	"tsplit/internal/device"
	"tsplit/internal/models"
	"tsplit/internal/sim"
)

// SimLatRow is the simulation-latency profile of one zoo model: a cold
// sim.New(...).Run() against the pooled-arena path and the peak-only
// fast path, each sampled `rounds` times and summarized as p50/p99
// wall time.
type SimLatRow struct {
	Model     string
	Ops       int
	Tensors   int
	ColdP50   time.Duration
	ColdP99   time.Duration
	PooledP50 time.Duration
	PooledP99 time.Duration
	PeakP50   time.Duration
	PeakP99   time.Duration
}

// PooledSpeedup is the p50 cold/pooled ratio, the number the ISSUE
// gates at >= 5x on BERT-Large.
func (r SimLatRow) PooledSpeedup() float64 {
	if r.PooledP50 <= 0 {
		return 0
	}
	return float64(r.ColdP50) / float64(r.PooledP50)
}

// PeakSpeedup is the p50 cold/peak-only ratio.
func (r SimLatRow) PeakSpeedup() float64 {
	if r.PeakP50 <= 0 {
		return 0
	}
	return float64(r.ColdP50) / float64(r.PeakP50)
}

// SimLatency measures simulation latency across the model zoo. Each
// model runs its tsplit plan at a tight budget (70% of its unmanaged
// peak), the pressured regime where swaps, recomputation, and split
// execution are all live. Cold samples pay a fresh simulator per run;
// pooled samples recycle one arena through a SimPool; peak samples run
// PredictPeak on the same arena. All three replay the identical
// alloc/free event sequence, so the spread is pure bookkeeping cost.
//
// The reported durations come from the wall clock and vary run to run;
// everything else about the rows (models, sizes, outcomes) is
// deterministic.
func SimLatency(dev device.Device, rounds int) ([]SimLatRow, error) {
	if rounds < 1 {
		rounds = 1
	}
	names := models.Names()
	rows := make([]SimLatRow, 0, len(names))
	for _, model := range names {
		p, err := Prepare(model, models.Config{}, dev)
		if err != nil {
			return nil, fmt.Errorf("simlat %s: %w", model, err)
		}
		cap := p.Lv.Peak * 70 / 100
		plan, err := core.NewPlanner(p.G, p.Sched, p.Lv, p.Prof, p.Dev,
			core.Options{Capacity: cap, FragmentationReserve: -1}).Plan()
		if err != nil {
			return nil, fmt.Errorf("simlat %s: planning: %w", model, err)
		}
		opts := sim.Options{Capacity: cap, Recompute: sim.LRURecompute}

		cold := make([]time.Duration, rounds)
		for i := range cold {
			start := Clock()
			if _, err := sim.New(p.G, p.Sched, p.Lv, plan, p.Dev, opts).Run(); err != nil {
				return nil, fmt.Errorf("simlat %s: cold round %d: %w", model, i, err)
			}
			cold[i] = Clock().Sub(start)
		}

		pool := sim.NewSimPool()
		warm := func() error { // one unsampled run so growth is off the clock
			s := pool.Get(p.G, p.Sched, p.Lv, plan, p.Dev, opts)
			defer pool.Put(s)
			_, err := s.Run()
			return err
		}
		if err := warm(); err != nil {
			return nil, fmt.Errorf("simlat %s: warm-up: %w", model, err)
		}
		pooled := make([]time.Duration, rounds)
		for i := range pooled {
			s := pool.Get(p.G, p.Sched, p.Lv, plan, p.Dev, opts)
			start := Clock()
			_, err := s.Run()
			pooled[i] = Clock().Sub(start)
			pool.Put(s)
			if err != nil {
				return nil, fmt.Errorf("simlat %s: pooled round %d: %w", model, i, err)
			}
		}
		peak := make([]time.Duration, rounds)
		for i := range peak {
			s := pool.Get(p.G, p.Sched, p.Lv, plan, p.Dev, opts)
			start := Clock()
			_, err := s.PredictPeak()
			peak[i] = Clock().Sub(start)
			pool.Put(s)
			if err != nil {
				return nil, fmt.Errorf("simlat %s: peak round %d: %w", model, i, err)
			}
		}

		rows = append(rows, SimLatRow{
			Model: model, Ops: len(p.Sched.Ops), Tensors: len(p.G.Tensors),
			ColdP50: percentile(cold, 50), ColdP99: percentile(cold, 99),
			PooledP50: percentile(pooled, 50), PooledP99: percentile(pooled, 99),
			PeakP50: percentile(peak, 50), PeakP99: percentile(peak, 99),
		})
	}
	return rows, nil
}

// RenderSimLat renders the latency table.
func RenderSimLat(rows []SimLatRow) string {
	var b strings.Builder
	b.WriteString("Simulation latency (tsplit plan at 70% of unmanaged peak)\n")
	fmt.Fprintf(&b, "%-14s %6s %8s %10s %10s %10s %10s %10s %10s %8s %8s\n",
		"model", "ops", "tensors", "cold p50", "cold p99",
		"pooled p50", "pooled p99", "peak p50", "peak p99", "pooled×", "peak×")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %6d %8d %10s %10s %10s %10s %10s %10s %7.1fx %7.1fx\n",
			r.Model, r.Ops, r.Tensors,
			fmtDur(r.ColdP50), fmtDur(r.ColdP99),
			fmtDur(r.PooledP50), fmtDur(r.PooledP99),
			fmtDur(r.PeakP50), fmtDur(r.PeakP99),
			r.PooledSpeedup(), r.PeakSpeedup())
	}
	return b.String()
}
