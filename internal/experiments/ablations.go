package experiments

import (
	"fmt"
	"strings"

	"tsplit/internal/core"
	"tsplit/internal/device"
	"tsplit/internal/memorypool"
	"tsplit/internal/models"
	"tsplit/internal/sim"
)

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	Name     string
	Feasible bool
	// TimeSeconds is the measured iteration time (0 when infeasible).
	TimeSeconds float64
	// PeakGiB is the measured peak memory.
	PeakGiB float64
	// Extra carries sweep-specific metrics.
	Extra string
}

// AblationReport groups the rows of one design-choice sweep.
type AblationReport struct {
	Title string
	Rows  []AblationRow
}

// Render draws an ablation report.
func (r AblationReport) Render() string {
	var b strings.Builder
	fmt.Fprintln(&b, r.Title)
	for _, row := range r.Rows {
		if !row.Feasible {
			fmt.Fprintf(&b, "  %-28s infeasible\n", row.Name)
			continue
		}
		fmt.Fprintf(&b, "  %-28s t=%7.3fs peak=%5.1f GiB %s\n", row.Name, row.TimeSeconds, row.PeakGiB, row.Extra)
	}
	return b.String()
}

// planWith plans and simulates one planner configuration under a
// memory budget, returning an ablation row.
func planWith(p *Prepared, name string, capacity int64, opts core.Options, simOpts sim.Options) AblationRow {
	opts.Capacity = capacity
	plan, err := core.NewPlanner(p.G, p.Sched, p.Lv, p.Prof, p.Dev, opts).Plan()
	if err != nil {
		return AblationRow{Name: name}
	}
	simOpts.Capacity = capacity
	res, err := Simulate(p, plan, simOpts)
	if err != nil {
		return AblationRow{Name: name}
	}
	c := plan.Counts()
	return AblationRow{
		Name: name, Feasible: true,
		TimeSeconds: res.Time,
		PeakGiB:     float64(res.PeakBytes) / (1 << 30),
		Extra: fmt.Sprintf("(swap %.1f GiB, recompute %.1f GiB, %d splits, %d rc-ops)",
			float64(c.SwapBytes)/(1<<30), float64(c.RecomputeBytes)/(1<<30), c.SplitOps, res.RecomputedOps),
	}
}

// AblationGreedyOrdering compares the paper's min-ΔT/ΔM greedy against
// largest-tensor-first and swap-only candidate selection (DESIGN.md
// ablation 1) on a memory-over-subscribed VGG-16.
func AblationGreedyOrdering() (AblationReport, error) {
	p, err := Prepare("vgg16", models.Config{BatchSize: 256}, device.TitanRTX)
	if err != nil {
		return AblationReport{}, err
	}
	cap := p.Lv.Peak * 70 / 100
	simo := sim.Options{Recompute: sim.LRURecompute}
	return AblationReport{
		Title: "Ablation 1: candidate selection (vgg16 b=256, 70% of unmanaged peak)",
		Rows: []AblationRow{
			planWith(p, "greedy min dT/dM (paper)", cap, core.Options{}, simo),
			planWith(p, "largest-tensor-first", cap, core.Options{PreferLargest: true}, simo),
			planWith(p, "swap-only", cap, core.Options{DisableRecompute: true}, simo),
		},
	}, nil
}

// AblationRecomputeStrategy compares memory-centric, speed-centric and
// LRU-hybrid recomputation (paper Sec. V-D; DESIGN.md ablation 2) on a
// checkpoint-heavy plan.
func AblationRecomputeStrategy() (AblationReport, error) {
	p, err := Prepare("vgg16", models.Config{BatchSize: 192}, device.TitanRTX)
	if err != nil {
		return AblationReport{}, err
	}
	plan, err := PlanPolicy(p, "checkpoints", 0)
	if err != nil {
		return AblationReport{}, err
	}
	rows := make([]AblationRow, 0, 3)
	for _, st := range []sim.RecomputeStrategy{sim.MemoryCentric, sim.SpeedCentric, sim.LRURecompute} {
		res, err := Simulate(p, plan, sim.Options{Recompute: st})
		if err != nil {
			rows = append(rows, AblationRow{Name: st.String()})
			continue
		}
		rows = append(rows, AblationRow{
			Name: st.String(), Feasible: true,
			TimeSeconds: res.Time, PeakGiB: float64(res.PeakBytes) / (1 << 30),
			Extra: fmt.Sprintf("(%d rc-ops, %.3fs rc-time)", res.RecomputedOps, res.RecomputeTime),
		})
	}
	return AblationReport{Title: "Ablation 2: recomputation strategy (vgg16 b=192, checkpoints plan)", Rows: rows}, nil
}

// AblationSplitLookahead measures the bottleneck-lookahead window for
// split candidates (DESIGN.md ablation 3).
func AblationSplitLookahead() (AblationReport, error) {
	// Near the feasibility frontier splitting (with micro-granular
	// restore) is load-bearing, so the lookahead decides whether the
	// planner finds the split that breaks each backward bottleneck.
	p, err := Prepare("vgg16", models.Config{BatchSize: 440}, device.TitanRTX)
	if err != nil {
		return AblationReport{}, err
	}
	simo := sim.Options{Recompute: sim.LRURecompute}
	return AblationReport{
		Title: "Ablation 3: split-candidate lookahead (vgg16 b=440, device capacity)",
		Rows: []AblationRow{
			planWith(p, "lookahead 8 (default)", 0, core.Options{SplitLookahead: 8}, simo),
			planWith(p, "lookahead 2", 0, core.Options{SplitLookahead: 2}, simo),
			planWith(p, "bottleneck op only", 0, core.Options{SplitLookahead: -1}, simo),
		},
	}, nil
}

// AblationTieBreak measures the earlier-generated-tensor preference on
// near-tied ratios (the paper's Sec. IV-C observation; DESIGN.md
// ablation 4).
func AblationTieBreak() (AblationReport, error) {
	p, err := Prepare("resnet50", models.Config{BatchSize: 256}, device.TitanRTX)
	if err != nil {
		return AblationReport{}, err
	}
	cap := p.Lv.Peak * 70 / 100
	simo := sim.Options{Recompute: sim.LRURecompute}
	return AblationReport{
		Title: "Ablation 4: earlier-generated tie-break (resnet50 b=256, 70% of peak)",
		Rows: []AblationRow{
			planWith(p, "earlier-generated first", cap, core.Options{}, simo),
			planWith(p, "no tie-break", cap, core.Options{DisableGenTieBreak: true}, simo),
		},
	}, nil
}

// AblationPoolStrategy compares best-fit and first-fit placement
// (paper Sec. V-C's choice; DESIGN.md ablation 5) under the same
// TSPLIT plan.
func AblationPoolStrategy() (AblationReport, error) {
	p, err := Prepare("vgg16", models.Config{BatchSize: 320}, device.TitanRTX)
	if err != nil {
		return AblationReport{}, err
	}
	plan, err := PlanPolicy(p, "tsplit", 0)
	if err != nil {
		return AblationReport{}, err
	}
	rows := make([]AblationRow, 0, 2)
	for _, st := range []memorypool.Strategy{memorypool.BestFit, memorypool.FirstFit} {
		res, err := Simulate(p, plan, sim.Options{Recompute: sim.LRURecompute, PoolStrategy: st})
		if err != nil {
			rows = append(rows, AblationRow{Name: st.String()})
			continue
		}
		rows = append(rows, AblationRow{
			Name: st.String(), Feasible: true,
			TimeSeconds: res.Time, PeakGiB: float64(res.PeakBytes) / (1 << 30),
			Extra: fmt.Sprintf("(%d compactions, %.1f GiB moved)", res.Compactions, float64(res.MovedBytes)/(1<<30)),
		})
	}
	return AblationReport{Title: "Ablation 5: pool placement strategy (vgg16 b=320, tsplit plan)", Rows: rows}, nil
}

// AllAblations runs every design-choice sweep of DESIGN.md §4.
func AllAblations() ([]AblationReport, error) {
	fns := []func() (AblationReport, error){
		AblationGreedyOrdering,
		AblationRecomputeStrategy,
		AblationSplitLookahead,
		AblationTieBreak,
		AblationPoolStrategy,
	}
	// The sweeps prepare and simulate disjoint workloads, so they run
	// concurrently; reports keep the DESIGN.md §4 order.
	out := make([]AblationReport, len(fns))
	errs := make([]error, len(fns))
	forEach(len(fns), func(i int) {
		out[i], errs[i] = fns[i]()
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return out, nil
}
