package experiments

import (
	"testing"

	"tsplit/internal/device"
	"tsplit/internal/models"
)

func TestFaultSweepGracefulDegradation(t *testing.T) {
	rep, err := FaultSweep("vgg16", models.Config{BatchSize: 96}, device.GTX1080Ti, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 4 {
		t.Fatalf("sweep too small: %+v", rep.Rows)
	}
	for _, row := range rep.Rows {
		if !row.Feasible {
			t.Fatalf("severity %.2f aborted — the ladder must always deliver a run", row.Severity)
		}
		if row.Throughput <= 0 {
			t.Fatalf("severity %.2f: no throughput", row.Severity)
		}
	}
	base := rep.Rows[0]
	if base.Severity != 0 || base.Retries != 0 || base.CapacityEvents != 0 {
		t.Fatalf("severity-0 row must be fault-free: %+v", base)
	}
	worst := rep.Rows[len(rep.Rows)-1]
	if worst.Throughput > base.Throughput {
		t.Fatalf("full severity faster than fault-free: %.1f vs %.1f", worst.Throughput, base.Throughput)
	}
	if worst.Slowdown < 1 {
		t.Fatalf("slowdown %v below 1 at full severity", worst.Slowdown)
	}
	if out := rep.Render(); len(out) == 0 {
		t.Fatal("empty render")
	}
}

func TestFaultSweepDeterministic(t *testing.T) {
	a, err := FaultSweep("vgg16", models.Config{BatchSize: 96}, device.GTX1080Ti, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FaultSweep("vgg16", models.Config{BatchSize: 96}, device.GTX1080Ti, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("concurrent sweep is nondeterministic:\n%s\nvs\n%s", a.Render(), b.Render())
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d diverged: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
}
