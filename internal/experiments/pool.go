package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"tsplit/internal/obs"
)

// Obs, when set before a sweep starts, receives per-cell metrics from
// every experiment in this package: tsplit_experiments_cells_total and
// the tsplit_experiments_cell_seconds histogram. The Registry is
// thread-safe, so the parallel sweeps record into it concurrently.
var Obs obs.Recorder

// Clock times each sweep cell for the cell_seconds histogram. Tests
// that assert on recorded metrics substitute a fake; everything the
// sweeps *compute* is independent of it.
var Clock obs.Clock = obs.Wall

// Trace, when set before a sweep starts, records one "experiments.cell"
// span per sweep cell. Tracer.StartSpan is mutex-protected, so the
// concurrent pool records root spans safely; within a worker the cell
// span is single-goroutine, honoring the per-span-tree contract.
var Trace *obs.Tracer

// The experiment sweeps are embarrassingly parallel: every (model,
// batch, device, policy) cell prepares its own graph, schedule and
// profile, so cells share no mutable state. forEach fans the cell
// indices out over a bounded worker pool; each cell writes its result
// into its own index of a caller-owned slice, so the assembled tables
// and figures are identical to a sequential sweep regardless of
// completion order.

// forEach runs fn(i) for every i in [0, n), on up to GOMAXPROCS
// workers. Work is handed out dynamically (cells vary wildly in cost:
// an infeasible cell fails fast, a near-frontier scale search plans
// dozens of times). The Add-before-spawn / deferred-Done / Wait shape
// is load-bearing: the gojoin lint rule proves every goroutine spawned
// here is joined before forEach returns, so no worker can outlive the
// sweep holding references into the caller-owned results slice.
func forEach(n int, fn func(int)) {
	if rec := Obs; rec != nil {
		inner := fn
		fn = func(i int) {
			start := Clock()
			inner(i)
			rec.Observe("tsplit_experiments_cell_seconds", Clock().Sub(start).Seconds())
			rec.Add("tsplit_experiments_cells_total", 1)
		}
	}
	if tr := Trace; tr != nil {
		inner := fn
		fn = func(i int) {
			sp := tr.StartSpan("experiments.cell")
			sp.SetAttrInt("cell", int64(i))
			inner(i)
			sp.End()
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// firstError returns the lowest-index non-nil error, so concurrent
// sweeps report the same failure a sequential sweep would have hit
// first.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
