package experiments

import (
	"strings"
	"testing"

	"tsplit/internal/device"
	"tsplit/internal/models"
)

// TestPlanLatency checks the sweep covers the whole zoo and produces
// well-formed rows; the durations themselves are wall-clock and only
// sanity-checked for positivity.
func TestPlanLatency(t *testing.T) {
	rows, err := PlanLatency(device.TitanRTX, 3)
	if err != nil {
		t.Fatal(err)
	}
	names := models.Names()
	if len(rows) != len(names) {
		t.Fatalf("got %d rows, want one per zoo model (%d)", len(rows), len(names))
	}
	for i, r := range rows {
		if r.Model != names[i] {
			t.Errorf("row %d: model %q, want %q", i, r.Model, names[i])
		}
		if r.Ops <= 0 || r.Tensors <= 0 {
			t.Errorf("%s: empty workload (ops=%d tensors=%d)", r.Model, r.Ops, r.Tensors)
		}
		if r.ColdP50 <= 0 || r.ColdP99 < r.ColdP50 || r.WarmP50 <= 0 || r.WarmP99 < r.WarmP50 {
			t.Errorf("%s: implausible percentiles: cold %v/%v warm %v/%v",
				r.Model, r.ColdP50, r.ColdP99, r.WarmP50, r.WarmP99)
		}
	}
	out := RenderPlanLat(rows)
	for _, name := range names {
		if !strings.Contains(out, name) {
			t.Errorf("render is missing %q:\n%s", name, out)
		}
	}
}
