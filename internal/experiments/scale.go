package experiments

import (
	"tsplit/internal/device"
	"tsplit/internal/models"
)

// MaxSampleScale finds the largest batch size a policy can train
// (paper Table IV / VI) by exponential probing followed by binary
// search. hi bounds the search (0 = 4096).
func MaxSampleScale(model, policy string, dev device.Device, cfg models.Config, hi int) int {
	if hi == 0 {
		hi = 4096
	}
	feasible := func(b int) bool {
		c := cfg
		c.BatchSize = b
		return Feasible(model, c, dev, policy, 0)
	}
	return searchMax(feasible, hi)
}

// MaxParamScale finds the largest integer parameter-scale multiplier k
// (channels / hidden size ×k, paper Table V / VII) trainable at the
// paper's fixed batch of 16.
func MaxParamScale(model, policy string, dev device.Device, cfg models.Config, hi int) int {
	if hi == 0 {
		hi = 128
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 16
	}
	feasible := func(k int) bool {
		c := cfg
		c.ParamScale = float64(k)
		return Feasible(model, c, dev, policy, 0)
	}
	return searchMax(feasible, hi)
}

// searchMax returns the largest n in [0, hi] with feasible(n), probing
// exponentially from 1 and binary-searching the failing octave.
// feasible is assumed monotone (true below the answer, false above) —
// the occasional fragmentation-induced non-monotonicity makes the
// result a lower bound, like a real OOM would.
func searchMax(feasible func(int) bool, hi int) int {
	if !feasible(1) {
		return 0
	}
	lo := 1
	probe := 2
	for probe <= hi && feasible(probe) {
		lo = probe
		probe *= 2
	}
	up := probe
	if up > hi {
		up = hi + 1
	}
	// Invariant: feasible(lo), !feasible(up) (or up == hi+1).
	for lo+1 < up {
		mid := (lo + up) / 2
		if feasible(mid) {
			lo = mid
		} else {
			up = mid
		}
	}
	return lo
}
