package serve

import (
	"crypto/sha256"
	"net/http"
	"sync"

	"tsplit/internal/core"
	"tsplit/internal/device"
	"tsplit/internal/graph"
	"tsplit/internal/models"
	"tsplit/internal/obs"
	"tsplit/internal/profiler"
	"tsplit/internal/sim"
	"tsplit/internal/workload"
)

// prepared is one resolved workload: the built graph with its
// schedule, liveness, and device profile, a planner pool and a
// simulator pool recycling arenas across requests, and the graph's
// content digest (computed once — it feeds every plan key for this
// workload).
type prepared struct {
	name   string
	g      *graph.Graph
	sched  *graph.Schedule
	lv     *graph.Liveness
	prof   *profiler.Profile
	dev    device.Device
	pool   *core.PlannerPool
	sims   *sim.SimPool
	digest [sha256.Size]byte
}

// workloadCache memoizes request → prepared workload resolution with
// a bounded LRU. Building a workload (graph construction, scheduling,
// liveness, profiling) costs orders of magnitude more than a cache
// probe, and the digest it yields is what makes plan-cache hits cheap:
// a warm probe never re-hashes the graph.
//
// Builds happen while holding mu. That serializes concurrent misses on
// *different* workloads, which is deliberate: it keeps each workload
// built exactly once without per-entry latches, and the build is
// milliseconds against a planning request's budget.
type workloadCache struct {
	rec obs.Recorder // receives each workload's simulator-pool counters

	mu      sync.Mutex
	cap     int
	entries map[string]*wlEntry // lint:guardedby mu
	head    *wlEntry            // lint:guardedby mu — most recently used
	tail    *wlEntry            // lint:guardedby mu — least recently used, evicted first
}

type wlEntry struct {
	id         string
	w          *prepared
	prev, next *wlEntry
}

func newWorkloadCache(capacity int, rec obs.Recorder) *workloadCache {
	if capacity <= 0 {
		capacity = 32
	}
	return &workloadCache{rec: rec, cap: capacity, entries: make(map[string]*wlEntry)}
}

// get resolves a validated request to its prepared workload, building
// and caching it on first use.
func (wc *workloadCache) get(req *PlanRequest) (*prepared, *httpError) {
	id := req.workloadID()
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if e, ok := wc.entries[id]; ok {
		wc.moveToFront(e)
		return e.w, nil
	}
	w, herr := buildWorkload(req, wc.rec)
	if herr != nil {
		return nil, herr
	}
	e := &wlEntry{id: id, w: w}
	wc.entries[id] = e
	wc.pushFront(e)
	if len(wc.entries) > wc.cap {
		lru := wc.tail
		wc.unlink(lru)
		delete(wc.entries, lru.id)
	}
	return w, nil
}

// len reports the resident workload count (for /healthz).
func (wc *workloadCache) len() int {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return len(wc.entries)
}

// moveToFront marks e most recently used. Callers hold wc.mu.
func (wc *workloadCache) moveToFront(e *wlEntry) {
	if wc.head == e {
		return
	}
	wc.unlink(e)
	wc.pushFront(e)
}

// pushFront links e as the head. Callers hold wc.mu.
func (wc *workloadCache) pushFront(e *wlEntry) {
	e.prev = nil
	e.next = wc.head
	if wc.head != nil {
		wc.head.prev = e
	}
	wc.head = e
	if wc.tail == nil {
		wc.tail = e
	}
}

// unlink removes e from the list. Callers hold wc.mu.
func (wc *workloadCache) unlink(e *wlEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		wc.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		wc.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// buildWorkload constructs the graph a validated request names and
// prepares it for planning and simulation. rec receives the simulator
// pool's get/reuse counters (warm-arena hit rate across requests).
func buildWorkload(req *PlanRequest, rec obs.Recorder) (*prepared, *httpError) {
	dev, err := device.ByName(req.Device)
	if err != nil {
		return nil, errBadRequest("unknown device %q", req.Device)
	}
	var g *graph.Graph
	if req.Spec != nil {
		g = workload.RandGraph(req.Spec.Seed)
	} else {
		cfg := models.Config{
			BatchSize:  req.Config.BatchSize,
			ParamScale: req.Config.ParamScale,
			ImageSize:  req.Config.ImageSize,
			SeqLen:     req.Config.SeqLen,
		}
		g, err = models.Build(req.Model, cfg)
		if err != nil {
			return nil, &httpError{status: http.StatusNotFound, code: "unknown_model", message: err.Error()}
		}
	}
	sched, err := graph.BuildSchedule(g)
	if err != nil {
		return nil, &httpError{status: http.StatusUnprocessableEntity, code: "unschedulable", message: err.Error()}
	}
	lv := graph.AnalyzeLiveness(g, sched)
	prof := profiler.New(dev, sched)
	sims := sim.NewSimPool()
	sims.Obs = rec
	return &prepared{
		name:   req.displayName(),
		g:      g,
		sched:  sched,
		lv:     lv,
		prof:   prof,
		dev:    dev,
		pool:   core.NewPlannerPool(g, sched, lv, prof, dev),
		sims:   sims,
		digest: graphDigest(g),
	}, nil
}
