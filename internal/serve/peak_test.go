package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tsplit/internal/core"
	"tsplit/internal/graph"
	"tsplit/internal/models"
	"tsplit/internal/sim"
)

// postPeak sends one peak request and returns the recorder.
func postPeak(t *testing.T, s *Server, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/peak", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func decodePeak(t *testing.T, w *httptest.ResponseRecorder) *PeakResponse {
	t.Helper()
	var resp PeakResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response is not a PeakResponse: %v\nbody: %s", err, w.Body.String())
	}
	return &resp
}

// TestPeakEndpointMatchesSimulator checks POST /v1/peak against an
// out-of-band full simulation of the same plan: the endpoint's
// simulated peak must be the exact Run() peak, and repeated requests
// must recycle the workload's simulator arena (reuse-hit metric).
func TestPeakEndpointMatchesSimulator(t *testing.T) {
	s := New(Config{})
	body := `{"model":"vgg16","config":{"batch_size":96},"device":"GTX 1080Ti"}`

	w := postPeak(t, s, body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	resp := decodePeak(t, w)
	if resp.Policy != "tsplit" || resp.SimulatedPeakBytes <= 0 {
		t.Fatalf("bad response: %+v", resp)
	}

	// Reproduce the plan over /v1/plan and simulate it independently.
	pw := postPlan(t, s, body)
	if pw.Code != http.StatusOK {
		t.Fatalf("plan status %d: %s", pw.Code, pw.Body.String())
	}
	planResp := decodeResponse(t, pw)
	if resp.PlannerPeakBytes != planResp.PredictedPeakBytes {
		t.Fatalf("planner peak diverges from /v1/plan: %d vs %d",
			resp.PlannerPeakBytes, planResp.PredictedPeakBytes)
	}
	if resp.Key != planResp.Key {
		t.Fatalf("peak key %s != plan key %s for the same request", resp.Key, planResp.Key)
	}

	g, err := models.Build("vgg16", models.Config{BatchSize: 96})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := graph.BuildSchedule(g)
	if err != nil {
		t.Fatal(err)
	}
	lv := graph.AnalyzeLiveness(g, sched)
	// The serve workload cache holds the same prepared graph the
	// endpoint planned against; rebuild is only for the simulator run.
	wl, herr := s.workloads.get(&PlanRequest{Model: "vgg16",
		Config: ModelConfig{BatchSize: 96}, Device: "GTX 1080Ti",
		Options: PlanOptions{Policy: "tsplit"}})
	if herr != nil {
		t.Fatalf("workload: %v", herr)
	}
	pl := wl.pool.Get(core.Options{})
	plan, err := pl.Plan()
	wl.pool.Put(pl)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.New(g, sched, lv, plan, wl.dev, sim.Options{Recompute: sim.LRURecompute}).Run()
	if err != nil {
		t.Fatalf("reference simulation: %v", err)
	}
	if resp.SimulatedPeakBytes != res.PeakBytes {
		t.Fatalf("/v1/peak returned %d, full simulation peaks at %d",
			resp.SimulatedPeakBytes, res.PeakBytes)
	}

	// Second request on the same workload must hit the warm arena.
	if w2 := postPeak(t, s, body); w2.Code != http.StatusOK {
		t.Fatalf("second peak status %d: %s", w2.Code, w2.Body.String())
	}
	snap := s.Metrics().Snapshot()
	vals := map[string]float64{}
	for _, m := range snap {
		vals[m.Name] = m.Value
	}
	if vals["tsplit_simpool_gets_total"] < 2 {
		t.Fatalf("simpool gets_total = %v, want >= 2", vals["tsplit_simpool_gets_total"])
	}
	if vals["tsplit_simpool_reuse_hits_total"] < 1 {
		t.Fatalf("simpool reuse_hits_total = %v, want >= 1", vals["tsplit_simpool_reuse_hits_total"])
	}
}

func TestPeakEndpointErrors(t *testing.T) {
	s := New(Config{})
	if w := postPeak(t, s, `{"model":"nosuch"}`); w.Code != http.StatusNotFound {
		t.Fatalf("unknown model: status %d", w.Code)
	}
	if w := postPeak(t, s, `{broken`); w.Code != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", w.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/peak", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d", w.Code)
	}
}
