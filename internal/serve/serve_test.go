package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tsplit/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden response files")

// postPlan sends one plan request and returns the recorder.
func postPlan(t *testing.T, s *Server, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/plan", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func decodeResponse(t *testing.T, w *httptest.ResponseRecorder) *PlanResponse {
	t.Helper()
	var resp PlanResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response is not a PlanResponse: %v\nbody: %s", err, w.Body.String())
	}
	return &resp
}

func decodeError(t *testing.T, w *httptest.ResponseRecorder) *ErrorBody {
	t.Helper()
	var eb ErrorBody
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil {
		t.Fatalf("response is not an ErrorBody: %v\nbody: %s", err, w.Body.String())
	}
	return &eb
}

// TestGoldenResponses pins the exact response bytes for the two
// evaluation workloads the ISSUE names. The planner is deterministic,
// so the full body — plan, predicted peak, key — must be stable
// byte-for-byte; regenerate with `go test ./internal/serve -run
// TestGoldenResponses -update` after an intentional planner change.
func TestGoldenResponses(t *testing.T) {
	s := New(Config{})
	cases := []struct {
		name string
		req  string
	}{
		// vgg16 batch 96 does not fit a GTX 1080Ti unmanaged: the plan
		// carries real split/swap/recompute decisions.
		{"vgg16", `{"model":"vgg16","config":{"batch_size":96},"device":"GTX 1080Ti"}`},
		// bert-large batch 64 against a 12 GiB budget on the TITAN RTX
		// (roughly the paper's Fig. 1 pressure point).
		{"bert-large", `{"model":"bert-large","config":{"batch_size":64},"device":"TITAN RTX","options":{"capacity_bytes":12884901888}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postPlan(t, s, tc.req)
			if w.Code != http.StatusOK {
				t.Fatalf("status %d, want 200; body: %s", w.Code, w.Body.String())
			}
			if got := w.Header().Get("X-Tsplit-Cache"); got != "miss" {
				t.Fatalf("X-Tsplit-Cache = %q, want miss", got)
			}
			var indented bytes.Buffer
			if err := json.Indent(&indented, w.Body.Bytes(), "", "  "); err != nil {
				t.Fatalf("indent: %v", err)
			}
			indented.WriteByte('\n')
			golden := filepath.Join("testdata", "golden_"+tc.name+".json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, indented.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(indented.Bytes(), want) {
				t.Fatalf("response diverges from %s (rerun with -update after an intentional planner change)\ngot:  %.400s...\nwant: %.400s...",
					golden, indented.String(), string(want))
			}
			resp := decodeResponse(t, w)
			if resp.PredictedPeakBytes <= 0 {
				t.Fatalf("predicted peak %d, want > 0", resp.PredictedPeakBytes)
			}
			if resp.Policy != "tsplit" {
				t.Fatalf("policy %q, want tsplit", resp.Policy)
			}
		})
	}
}

// TestCacheHitIsByteIdentical sends the same request twice and a
// semantically identical variant once: the repeat and the variant must
// both hit and return exactly the bytes the miss produced.
func TestCacheHitIsByteIdentical(t *testing.T) {
	s := New(Config{})
	req := `{"model":"vgg16","config":{"batch_size":64},"device":"TITAN RTX","options":{"capacity_bytes":6442450944}}`
	first := postPlan(t, s, req)
	if first.Code != http.StatusOK {
		t.Fatalf("miss status %d: %s", first.Code, first.Body.String())
	}
	if got := first.Header().Get("X-Tsplit-Cache"); got != "miss" {
		t.Fatalf("first request X-Tsplit-Cache = %q, want miss", got)
	}
	second := postPlan(t, s, req)
	if second.Code != http.StatusOK {
		t.Fatalf("hit status %d: %s", second.Code, second.Body.String())
	}
	if got := second.Header().Get("X-Tsplit-Cache"); got != "hit" {
		t.Fatalf("second request X-Tsplit-Cache = %q, want hit", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("cache hit bytes differ from the miss that created the entry")
	}
	// Different spelling, same content: field order and explicit
	// defaults must not change the key.
	variant := `{"device":"TITAN RTX","options":{"policy":"tsplit","capacity_bytes":6442450944},"config":{"batch_size":64,"param_scale":0},"model":"vgg16"}`
	third := postPlan(t, s, variant)
	if got := third.Header().Get("X-Tsplit-Cache"); got != "hit" {
		t.Fatalf("variant spelling X-Tsplit-Cache = %q, want hit", got)
	}
	if !bytes.Equal(first.Body.Bytes(), third.Body.Bytes()) {
		t.Fatal("variant-spelling hit bytes differ")
	}
	if hits := s.Metrics().Counter("tsplit_serve_cache_hits_total"); hits != 2 {
		t.Fatalf("cache hits counter = %d, want 2", hits)
	}
	if runs := s.Metrics().Counter("tsplit_serve_planner_runs_total"); runs != 1 {
		t.Fatalf("planner runs = %d, want 1", runs)
	}
}

// TestSpecGraphPlans exercises the inline graph-spec path.
func TestSpecGraphPlans(t *testing.T) {
	s := New(Config{})
	w := postPlan(t, s, `{"spec":{"seed":42},"device":"P100"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeResponse(t, w)
	if resp.Model != "spec(seed=42)" {
		t.Fatalf("model %q", resp.Model)
	}
	again := postPlan(t, s, `{"spec":{"seed":42},"device":"P100"}`)
	if got := again.Header().Get("X-Tsplit-Cache"); got != "hit" {
		t.Fatalf("repeat spec request X-Tsplit-Cache = %q, want hit", got)
	}
}

// TestBaselinePolicy plans through a baseline producer.
func TestBaselinePolicy(t *testing.T) {
	s := New(Config{})
	w := postPlan(t, s, `{"model":"vgg16","config":{"batch_size":32},"options":{"policy":"vdnn-conv"}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeResponse(t, w)
	if resp.Policy != "vdnn-conv" {
		t.Fatalf("policy %q, want vdnn-conv", resp.Policy)
	}
}

// TestReportRequested asks for the per-request plan report and checks
// that it is present, and that report/no-report are distinct cache
// keys.
func TestReportRequested(t *testing.T) {
	s := New(Config{})
	base := `{"model":"vgg16","config":{"batch_size":96},"device":"GTX 1080Ti"`
	plain := postPlan(t, s, base+`}`)
	if plain.Code != http.StatusOK {
		t.Fatalf("plain status %d", plain.Code)
	}
	if decodeResponse(t, plain).Report != nil {
		t.Fatal("unrequested report present")
	}
	with := postPlan(t, s, base+`,"options":{"report":true}}`)
	if with.Code != http.StatusOK {
		t.Fatalf("report status %d: %s", with.Code, with.Body.String())
	}
	if got := with.Header().Get("X-Tsplit-Cache"); got != "miss" {
		t.Fatalf("report request X-Tsplit-Cache = %q, want miss (distinct key)", got)
	}
	resp := decodeResponse(t, with)
	if resp.Report == nil || len(resp.Report.Decisions) == 0 {
		t.Fatalf("report missing or empty: %+v", resp.Report)
	}
}

// TestErrorResponses covers the structured 4xx surface.
func TestErrorResponses(t *testing.T) {
	s := New(Config{})
	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"malformed JSON", `{"model":`, http.StatusBadRequest, "bad_request"},
		{"unknown field", `{"model":"vgg16","oops":1}`, http.StatusBadRequest, "bad_request"},
		{"no model or spec", `{}`, http.StatusBadRequest, "bad_request"},
		{"both model and spec", `{"model":"vgg16","spec":{"seed":1}}`, http.StatusBadRequest, "bad_request"},
		{"unknown model", `{"model":"alexnet"}`, http.StatusNotFound, "unknown_model"},
		{"unknown policy", `{"model":"vgg16","options":{"policy":"magic"}}`, http.StatusNotFound, "unknown_policy"},
		{"unknown device", `{"model":"vgg16","device":"TPU"}`, http.StatusBadRequest, "bad_request"},
		{"batch too large", `{"model":"vgg16","config":{"batch_size":4096}}`, http.StatusBadRequest, "bad_request"},
		{"negative capacity", `{"model":"vgg16","options":{"capacity_bytes":-1}}`, http.StatusBadRequest, "bad_request"},
		{"margin too large", `{"model":"vgg16","options":{"safety_margin":0.95}}`, http.StatusBadRequest, "bad_request"},
		{"pnum too small", `{"model":"vgg16","options":{"pnums":[1]}}`, http.StatusBadRequest, "bad_request"},
		{"spec with config", `{"spec":{"seed":1},"config":{"batch_size":8}}`, http.StatusBadRequest, "bad_request"},
		{"baseline with planner knobs", `{"model":"vgg16","options":{"policy":"vdnn-all","disable_split":true}}`, http.StatusBadRequest, "bad_request"},
		{"infeasible", `{"model":"bert-large","config":{"batch_size":512},"device":"P100","options":{"capacity_bytes":1048576}}`, http.StatusUnprocessableEntity, "infeasible"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postPlan(t, s, tc.body)
			if w.Code != tc.wantStatus {
				t.Fatalf("status %d, want %d; body: %s", w.Code, tc.wantStatus, w.Body.String())
			}
			eb := decodeError(t, w)
			if eb.Error.Code != tc.wantCode {
				t.Fatalf("error code %q, want %q (message: %s)", eb.Error.Code, tc.wantCode, eb.Error.Message)
			}
			if eb.Error.Message == "" {
				t.Fatal("empty error message")
			}
		})
	}
}

// TestMethodNotAllowed rejects non-POST plan calls.
func TestMethodNotAllowed(t *testing.T) {
	s := New(Config{})
	req := httptest.NewRequest(http.MethodGet, "/v1/plan", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", w.Code)
	}
	if got := w.Header().Get("Allow"); got != http.MethodPost {
		t.Fatalf("Allow = %q, want POST", got)
	}
}

// TestHealthz round-trips the liveness probe.
func TestHealthz(t *testing.T) {
	s := New(Config{})
	postPlan(t, s, `{"model":"vgg16","config":{"batch_size":32}}`)
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var h map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	if h["status"] != "ok" {
		t.Fatalf("status %v", h["status"])
	}
	if h["plans_cached"].(float64) != 1 || h["workloads_cached"].(float64) != 1 {
		t.Fatalf("cache occupancy wrong: %v", h)
	}
}

// TestMetricsRoundTripThroughDoctor scrapes GET /metrics and feeds the
// text straight into tsplit-doctor's Prometheus parser: every serve
// counter and histogram must survive the round trip.
func TestMetricsRoundTripThroughDoctor(t *testing.T) {
	s := New(Config{})
	req := `{"model":"vgg16","config":{"batch_size":64},"options":{"capacity_bytes":6442450944}}`
	postPlan(t, s, req)
	postPlan(t, s, req)
	postPlan(t, s, `{"model":"nope"}`)

	r := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	metrics, err := obs.ParsePrometheus(bytes.NewReader(w.Body.Bytes()))
	if err != nil {
		t.Fatalf("doctor's parser rejected /metrics output: %v", err)
	}
	byKey := map[string]obs.Metric{}
	for _, m := range metrics {
		key := m.Name
		for _, l := range m.Labels {
			key += "|" + l.Key + "=" + l.Value
		}
		byKey[key] = m
	}
	checks := map[string]int64{
		"tsplit_serve_requests_total|code=200": 2,
		"tsplit_serve_requests_total|code=404": 1,
		"tsplit_serve_cache_hits_total":        1,
		"tsplit_serve_cache_misses_total":      1,
		"tsplit_serve_planner_runs_total":      1,
	}
	for key, want := range checks {
		m, ok := byKey[key]
		if !ok {
			t.Fatalf("metric %s missing after round trip (have %d metrics)", key, len(metrics))
		}
		if m.Int != want {
			t.Fatalf("metric %s = %d, want %d", key, m.Int, want)
		}
	}
	lat, ok := byKey["tsplit_serve_request_seconds"]
	if !ok || lat.Histogram == nil {
		t.Fatal("request-latency histogram missing after round trip")
	}
	if lat.Histogram.Count != 3 {
		t.Fatalf("latency histogram count %d, want 3", lat.Histogram.Count)
	}
}

// TestDoctorDiagnosesServerDump builds a postmortem dump from the
// server's flight ring, registry, and tracer, and checks the doctor
// surfaces the serve phases and cache events.
func TestDoctorDiagnosesServerDump(t *testing.T) {
	tr := obs.NewTracer(nil)
	fl := obs.NewFlight(0, nil)
	reg := obs.NewRegistry()
	s := New(Config{Metrics: reg, Trace: tr, Flight: fl})
	req := `{"model":"vgg16","config":{"batch_size":64},"options":{"capacity_bytes":6442450944}}`
	postPlan(t, s, req)
	postPlan(t, s, req)

	dump := &obs.Dump{Reason: "serve test", Events: fl.Events(), Metrics: reg.Snapshot(), Spans: tr.Tree()}
	diag := obs.Diagnose(dump, nil)
	phases := map[string]int{}
	for _, ph := range diag.Phases {
		phases[ph.Name] = ph.Count
	}
	if phases["serve.request"] != 2 {
		t.Fatalf("serve.request phase count %d, want 2 (phases: %v)", phases["serve.request"], phases)
	}
	if phases["serve.plan"] != 1 {
		t.Fatalf("serve.plan phase count %d, want 1", phases["serve.plan"])
	}
	events := map[string]int{}
	for _, ec := range diag.EventCounts {
		events[ec.Kind] = ec.Count
	}
	if events["serve.cache.miss"] != 1 || events["serve.cache.hit"] != 1 {
		t.Fatalf("cache events wrong: %v", events)
	}
}
