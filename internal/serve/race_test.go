package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tsplit/internal/obs"
)

// fakeClock is a deterministic obs.Clock: every reading advances one
// millisecond.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(time.Millisecond)
	return c.now
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// specReq builds a distinct cheap request per seed (the random-graph
// generator yields small graphs, so planner runs are fast and every
// seed is a distinct cache key).
func specReq(seed int) string {
	return fmt.Sprintf(`{"spec":{"seed":%d},"device":"P100"}`, seed)
}

type result struct {
	code  int
	cache string
	key   string
	body  []byte
}

func post(s *Server, body string) result {
	req := httptest.NewRequest(http.MethodPost, "/v1/plan", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return result{
		code:  w.Code,
		cache: w.Header().Get("X-Tsplit-Cache"),
		key:   w.Header().Get("X-Tsplit-Key"),
		body:  w.Body.Bytes(),
	}
}

// TestCoalescingCollapsesIdenticalRequests holds the planner open
// while N identical requests arrive: exactly one planner run must
// serve all of them with identical bytes, and the N-1 waiters must be
// visible as coalesced while the leader is still planning.
func TestCoalescingCollapsesIdenticalRequests(t *testing.T) {
	const n = 24
	release := make(chan struct{})
	started := make(chan string, n)
	cfg := Config{MaxConcurrent: 4}
	cfg.testHookPlanStart = func(key string) {
		started <- key
		<-release
	}
	s := New(cfg)

	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = post(s, specReq(7))
		}(i)
	}
	<-started // the leader is inside the planner
	waitUntil(t, "all waiters coalesced", func() bool {
		return s.Metrics().Counter("tsplit_serve_coalesced_total") == n-1
	})
	close(release)
	wg.Wait()

	if runs := s.Metrics().Counter("tsplit_serve_planner_runs_total"); runs != 1 {
		t.Fatalf("planner runs = %d, want 1", runs)
	}
	var missCount, coalescedCount int
	for i, r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, r.code, r.body)
		}
		if !bytes.Equal(r.body, results[0].body) {
			t.Fatalf("request %d returned different bytes", i)
		}
		switch r.cache {
		case "miss":
			missCount++
		case "coalesced":
			coalescedCount++
		default:
			t.Fatalf("request %d: unexpected cache state %q", i, r.cache)
		}
	}
	if missCount != 1 || coalescedCount != n-1 {
		t.Fatalf("states: %d miss / %d coalesced, want 1 / %d", missCount, coalescedCount, n-1)
	}
}

// TestDistinctKeysEachPlanOnce mixes N identical and M distinct
// concurrent requests and asserts exactly one planner run per
// distinct key and no lost responses.
func TestDistinctKeysEachPlanOnce(t *testing.T) {
	const distinct = 4
	const perKey = 16
	s := New(Config{MaxConcurrent: 4, MaxQueue: distinct * perKey})

	var wg sync.WaitGroup
	results := make([]result, distinct*perKey)
	for k := 0; k < distinct; k++ {
		for i := 0; i < perKey; i++ {
			wg.Add(1)
			go func(k, i int) {
				defer wg.Done()
				results[k*perKey+i] = post(s, specReq(100+k))
			}(k, i)
		}
	}
	wg.Wait()

	if runs := s.Metrics().Counter("tsplit_serve_planner_runs_total"); runs != distinct {
		t.Fatalf("planner runs = %d, want exactly %d (one per distinct key)", runs, distinct)
	}
	bodies := map[string][]byte{}
	for i, r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, r.code, r.body)
		}
		if prev, ok := bodies[r.key]; ok {
			if !bytes.Equal(prev, r.body) {
				t.Fatalf("key %s served two different bodies", r.key)
			}
		} else {
			bodies[r.key] = r.body
		}
	}
	if len(bodies) != distinct {
		t.Fatalf("saw %d distinct keys, want %d", len(bodies), distinct)
	}
	total := s.Metrics().Counter("tsplit_serve_cache_hits_total") +
		s.Metrics().Counter("tsplit_serve_cache_misses_total")
	if total != distinct*perKey {
		t.Fatalf("hits+misses = %d, want %d (no lost responses)", total, distinct*perKey)
	}
}

// TestEvictionOrderIsDeterministic drives a capacity-2 cache through
// a fixed access sequence under a fake clock and asserts the exact
// eviction order via flight events.
func TestEvictionOrderIsDeterministic(t *testing.T) {
	clock := newFakeClock()
	fl := obs.NewFlight(0, clock.Now)
	s := New(Config{CacheEntries: 2, Clock: clock.Now, Flight: fl})

	keyA := post(s, specReq(1)).key // cache: [A]
	keyB := post(s, specReq(2)).key // cache: [B A]
	if got := post(s, specReq(1)).cache; got != "hit" {
		t.Fatalf("A should hit, got %q", got) // cache: [A B]
	}
	keyC := post(s, specReq(3)).key // evicts B -> [C A]
	keyD := post(s, specReq(4)).key // evicts A -> [D C]
	if got := post(s, specReq(3)).cache; got != "hit" {
		t.Fatalf("C should still be cached, got %q", got) // [C D]
	}
	_ = post(s, specReq(2)) // B was evicted: miss, plans again, evicts D

	var evictions []string
	for _, ev := range fl.Events() {
		if ev.Kind != "serve.cache.evict" {
			continue
		}
		for _, a := range ev.Attrs {
			if a.Key == "key" {
				evictions = append(evictions, a.Value)
			}
		}
	}
	want := []string{keyB, keyA, keyD}
	if len(evictions) != len(want) {
		t.Fatalf("evictions: %v, want 3 in order [B A D]", evictions)
	}
	for i := range want {
		if evictions[i] != want[i] {
			t.Fatalf("eviction %d = %s, want %s (order must be LRU-deterministic)", i, evictions[i], want[i])
		}
	}
	if got := s.Metrics().Counter("tsplit_serve_cache_evictions_total"); got != 3 {
		t.Fatalf("eviction counter = %d, want 3", got)
	}
	_ = keyC
}

// TestAdmissionShedsOnlyAboveBound saturates MaxConcurrent planner
// slots and MaxQueue waiters, then checks that exactly the overflow
// requests shed with 429 + Retry-After while everything admitted
// completes.
func TestAdmissionShedsOnlyAboveBound(t *testing.T) {
	const conc, queue, extra = 2, 2, 3
	release := make(chan struct{})
	started := make(chan string, conc+queue+extra)
	cfg := Config{MaxConcurrent: conc, MaxQueue: queue, RetryAfterSeconds: 7}
	cfg.testHookPlanStart = func(key string) {
		started <- key
		<-release
	}
	s := New(cfg)

	var wg sync.WaitGroup
	running := make([]result, conc)
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			running[i] = post(s, specReq(200+i))
		}(i)
	}
	for i := 0; i < conc; i++ {
		<-started // both slots held inside the planner
	}

	queued := make([]result, queue)
	for i := 0; i < queue; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			queued[i] = post(s, specReq(300+i))
		}(i)
	}
	waitUntil(t, "queue to fill", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.waiting == queue
	})

	// Above concurrency + queue: these must shed, immediately, with
	// 429 and the configured Retry-After.
	for i := 0; i < extra; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/plan", strings.NewReader(specReq(400+i)))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != http.StatusTooManyRequests {
			t.Fatalf("overflow request %d: status %d, want 429 (body %s)", i, w.Code, w.Body.String())
		}
		if got := w.Header().Get("Retry-After"); got != "7" {
			t.Fatalf("Retry-After = %q, want 7", got)
		}
		eb := ErrorBody{}
		if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Error.Code != "overloaded" {
			t.Fatalf("shed body: %s (err %v)", w.Body.String(), err)
		}
	}
	if shed := s.Metrics().Counter("tsplit_serve_shed_total"); shed != extra {
		t.Fatalf("shed counter = %d, want %d", shed, extra)
	}

	close(release)
	wg.Wait()
	for i, r := range append(append([]result{}, running...), queued...) {
		if r.code != http.StatusOK {
			t.Fatalf("admitted request %d shed or failed: status %d, body %s", i, r.code, r.body)
		}
	}
	// Nothing below the bound shed: 429s == extra, 200s == conc+queue.
	if ok := s.Metrics().Counter("tsplit_serve_requests_total", obs.L("code", "200")); ok != conc+queue {
		t.Fatalf("200s = %d, want %d", ok, conc+queue)
	}
	if shed := s.Metrics().Counter("tsplit_serve_requests_total", obs.L("code", "429")); shed != extra {
		t.Fatalf("429s = %d, want %d", shed, extra)
	}
}

// TestQueuedRequestTimesOut holds the only planner slot and checks a
// queued request answers 503 when its per-request timeout expires.
func TestQueuedRequestTimesOut(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 1)
	cfg := Config{MaxConcurrent: 1, MaxQueue: 4, RequestTimeout: 50 * time.Millisecond}
	cfg.testHookPlanStart = func(key string) {
		started <- key
		<-release
	}
	s := New(cfg)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		post(s, specReq(500))
	}()
	<-started

	r := post(s, specReq(501)) // queues behind the held slot, then expires
	if r.code != http.StatusServiceUnavailable {
		t.Fatalf("queued+expired request: status %d, want 503 (body %s)", r.code, r.body)
	}
	eb := ErrorBody{}
	if err := json.Unmarshal(r.body, &eb); err != nil || eb.Error.Code != "timeout" {
		t.Fatalf("timeout body: %s", r.body)
	}
	close(release)
	wg.Wait()
}

// TestDrainLosesNoInflightRequest starts in-flight work, drains, and
// checks every admitted request completes while new ones answer 503.
func TestDrainLosesNoInflightRequest(t *testing.T) {
	const inflight = 3
	release := make(chan struct{})
	started := make(chan string, inflight)
	cfg := Config{MaxConcurrent: inflight}
	cfg.testHookPlanStart = func(key string) {
		started <- key
		<-release
	}
	s := New(cfg)

	var wg sync.WaitGroup
	results := make([]result, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = post(s, specReq(600+i))
		}(i)
	}
	for i := 0; i < inflight; i++ {
		<-started
	}

	drained := make(chan struct{})
	go func() {
		s.Drain()
		close(drained)
	}()
	waitUntil(t, "draining flag", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.draining
	})

	r := post(s, specReq(700))
	if r.code != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status %d, want 503", r.code)
	}
	select {
	case <-drained:
		t.Fatal("Drain returned while requests were still in flight")
	default:
	}

	close(release)
	wg.Wait()
	<-drained
	for i, r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("in-flight request %d lost during drain: status %d, body %s", i, r.code, r.body)
		}
	}
}

// TestConcurrentChaos hammers the server from many goroutines mixing
// hits, misses, coalesced waits, and invalid requests under -race.
func TestConcurrentChaos(t *testing.T) {
	s := New(Config{MaxConcurrent: 4, MaxQueue: 1024, CacheEntries: 8})
	const workers = 64
	const perWorker = 8
	bodies := []string{
		specReq(1), specReq(2), specReq(3), specReq(4),
		`{"model":"nope"}`, `{"broken`,
	}
	var wg sync.WaitGroup
	codes := make([][]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r := post(s, bodies[(w+i)%len(bodies)])
				codes[w] = append(codes[w], r.code)
			}
		}(w)
	}
	wg.Wait()
	var total int
	for _, cs := range codes {
		for _, c := range cs {
			total++
			switch c {
			case http.StatusOK, http.StatusBadRequest, http.StatusNotFound:
			default:
				t.Fatalf("unexpected status %d under load", c)
			}
		}
	}
	if total != workers*perWorker {
		t.Fatalf("lost responses: %d of %d", total, workers*perWorker)
	}
	if runs := s.Metrics().Counter("tsplit_serve_planner_runs_total"); runs != 4 {
		t.Fatalf("planner runs = %d, want 4 (one per distinct valid key)", runs)
	}
}
