package serve

import (
	"sync"

	"tsplit/internal/obs"
)

// planCache is the content-addressed response cache: plan key →
// serialized response body. Bounded by entry count with strict LRU
// eviction — every get/put moves the entry to the front of an
// intrusive list and eviction always removes the list tail, so the
// eviction sequence is a deterministic function of the access
// sequence (pinned by a fake-clock test). A hit serves the stored
// bytes verbatim: cached responses are byte-identical to the miss
// that created them.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry // lint:guardedby mu
	head    *cacheEntry            // lint:guardedby mu — most recently used
	tail    *cacheEntry            // lint:guardedby mu — least recently used, evicted first
	bytes   int64                  // lint:guardedby mu — total cached body bytes

	rec    obs.Recorder // thread-safe; not guarded
	flight *obs.Flight  // nil-safe; not guarded
}

type cacheEntry struct {
	key        string
	body       []byte
	peakBytes  int64
	prev, next *cacheEntry
}

func newPlanCache(capacity int, rec obs.Recorder, flight *obs.Flight) *planCache {
	if capacity <= 0 {
		capacity = 512
	}
	return &planCache{cap: capacity, entries: make(map[string]*cacheEntry), rec: rec, flight: flight}
}

// get returns the cached body for key, marking it most recently used.
// The caller must treat the returned slice as immutable.
func (c *planCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	var body []byte
	e, ok := c.entries[key]
	if ok {
		c.moveToFront(e)
		body = e.body // read under mu: a concurrent re-put may swap it
	}
	c.mu.Unlock()
	return body, ok
}

// put inserts a response body, evicting the least-recently-used entry
// when the cache is full. Re-putting an existing key (two coalesced
// leaders racing a cache clear) refreshes its body and recency.
func (c *planCache) put(key string, body []byte, peakBytes int64) {
	var evicted []string
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.bytes += int64(len(body)) - int64(len(e.body))
		e.body = body
		e.peakBytes = peakBytes
		c.moveToFront(e)
	} else {
		e := &cacheEntry{key: key, body: body, peakBytes: peakBytes}
		c.entries[key] = e
		c.pushFront(e)
		c.bytes += int64(len(body))
		for len(c.entries) > c.cap {
			lru := c.tail
			c.unlink(lru)
			delete(c.entries, lru.key)
			c.bytes -= int64(len(lru.body))
			evicted = append(evicted, lru.key)
		}
	}
	c.mu.Unlock()
	for _, k := range evicted {
		if c.rec != nil {
			c.rec.Add("tsplit_serve_cache_evictions_total", 1)
		}
		c.flight.Record("serve.cache.evict", "plan cache full: evicted LRU entry", obs.L("key", k))
	}
}

// stats reports entry count and total body bytes (for /healthz and
// metrics gauges).
func (c *planCache) stats() (entries int, bodyBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.bytes
}

// keysLRU returns the cached keys from most to least recently used —
// the exact reverse of the order eviction would take them. Test and
// introspection surface.
func (c *planCache) keysLRU() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.entries))
	for e := c.head; e != nil; e = e.next {
		keys = append(keys, e.key)
	}
	return keys
}

// moveToFront marks e most recently used. Callers hold c.mu.
func (c *planCache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// pushFront links e as the head. Callers hold c.mu.
func (c *planCache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// unlink removes e from the list. Callers hold c.mu.
func (c *planCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
