package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"tsplit/internal/baselines"
	"tsplit/internal/core"
	"tsplit/internal/obs"
	"tsplit/internal/sim"
)

// Config tunes a planning server. The zero value is usable: every
// field has a production default.
type Config struct {
	// CacheEntries bounds the content-addressed plan cache (default
	// 512 plans).
	CacheEntries int
	// WorkloadEntries bounds the prepared-workload cache (default 32).
	WorkloadEntries int
	// MaxConcurrent bounds simultaneous planner runs (default
	// GOMAXPROCS). Cache hits and coalesced waits do not occupy a
	// slot.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a planner slot; one more
	// sheds with 429 (default 4×MaxConcurrent).
	MaxQueue int
	// RequestTimeout caps one request's total time in queue + planner
	// (0 = no timeout). Expired requests answer 503.
	RequestTimeout time.Duration
	// PlanDelay adds synthetic latency to every planner run, while the
	// run holds its admission slot. Load experiments use it to model
	// planners slower than the zoo's (larger graphs, remote profilers)
	// so queueing, coalescing, and shedding are reproducible on any
	// machine — a real planner run is 1–2 ms of non-yielding CPU, which
	// a single-core runner serializes before a queue can ever form.
	// Zero (production) adds nothing.
	PlanDelay time.Duration
	// RetryAfterSeconds is the Retry-After hint on 429 responses
	// (default 1).
	RetryAfterSeconds int

	// Metrics receives every serve metric and backs GET /metrics
	// (default: a fresh registry).
	Metrics *obs.Registry
	// Clock times requests and planner runs for the latency
	// histograms; tests inject a fake (default obs.Wall). It never
	// influences what a request returns.
	Clock obs.Clock
	// Trace, when set, records one serve.request span per request with
	// a serve.plan child per planner run.
	Trace *obs.Tracer
	// Flight, when set, receives serve.cache.hit/miss/evict,
	// serve.coalesce, and serve.shed events — the stream tsplit-doctor
	// reads out of a dump.
	Flight *obs.Flight

	// testHookPlanStart, when set (tests only), runs at the start of
	// every planner run, before any planning work, with the plan key.
	// Tests use it to hold planner slots open deterministically.
	testHookPlanStart func(key string)
}

// Server is the planning service: an http.Handler exposing
// POST /v1/plan, GET /healthz, and GET /metrics, with a
// content-addressed plan cache, request coalescing, and admission
// control in front of the planner.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	clock obs.Clock
	mux   *http.ServeMux

	cache     *planCache
	workloads *workloadCache
	group     *flightGroup

	sem chan struct{} // planner slots; len(sem) == running planner runs

	mu        sync.Mutex
	waiting   int  // lint:guardedby mu — requests queued for a planner slot
	inflightN int  // lint:guardedby mu — requests currently being handled
	draining  bool // lint:guardedby mu — Drain() called; new requests answer 503

	inflight sync.WaitGroup
}

// New builds a Server from cfg, applying defaults to zero fields.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxConcurrent
	}
	if cfg.RetryAfterSeconds <= 0 {
		cfg.RetryAfterSeconds = 1
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Clock == nil {
		cfg.Clock = obs.Wall
	}
	s := &Server{
		cfg:       cfg,
		reg:       cfg.Metrics,
		clock:     cfg.Clock,
		cache:     newPlanCache(cfg.CacheEntries, cfg.Metrics, cfg.Flight),
		workloads: newWorkloadCache(cfg.WorkloadEntries, cfg.Metrics),
		sem:       make(chan struct{}, cfg.MaxConcurrent),
	}
	s.group = newFlightGroup(func(key string) {
		s.reg.Add("tsplit_serve_coalesced_total", 1)
		s.cfg.Flight.Record("serve.coalesce", "joined in-flight planner run", obs.L("key", key))
	})
	s.reg.SetHelp("tsplit_serve_requests_total", "Requests by final HTTP status code.")
	s.reg.SetHelp("tsplit_serve_cache_hits_total", "Plan requests served from the content-addressed cache.")
	s.reg.SetHelp("tsplit_serve_cache_misses_total", "Plan requests that required a planner run or a coalesced wait.")
	s.reg.SetHelp("tsplit_serve_cache_evictions_total", "Plans evicted from the cache (LRU).")
	s.reg.SetHelp("tsplit_serve_coalesced_total", "Requests that joined another request's in-flight planner run.")
	s.reg.SetHelp("tsplit_serve_planner_runs_total", "Actual planner executions (distinct keys planned).")
	s.reg.SetHelp("tsplit_serve_shed_total", "Requests shed with 429 because the admission queue was full.")
	s.reg.SetHelp("tsplit_serve_inflight", "Requests currently being handled.")
	s.reg.SetHelp("tsplit_serve_request_seconds", "End-to-end request latency.")
	s.reg.SetHelp("tsplit_serve_plan_seconds", "Planner-run latency (cache misses only).")
	s.reg.SetHelp("tsplit_serve_peak_seconds", "Peak-prediction latency (plan + PredictPeak, /v1/peak only).")
	s.reg.SetHelp("tsplit_simpool_gets_total", "Simulators borrowed from per-workload SimPools.")
	s.reg.SetHelp("tsplit_simpool_reuse_hits_total", "SimPool borrows that recycled a warm arena instead of allocating one.")
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/plan", s.handlePlan)
	mux.HandleFunc("/v1/peak", s.handlePeak)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// Metrics returns the server's registry (the same one GET /metrics
// exposes).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain stops admitting new requests (they answer 503) and blocks
// until every in-flight request has completed — the graceful-shutdown
// half that http.Server.Shutdown cannot see when the handler runs
// behind a test harness or another mux.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.inflight.Wait()
}

// begin registers one in-flight request unless the server is
// draining. The Add happens under the same lock that Drain uses to
// flip the flag, so Drain's Wait covers every admitted request.
func (s *Server) begin() bool {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return false
	}
	s.inflight.Add(1)
	s.inflightN++
	n := s.inflightN
	s.mu.Unlock()
	s.reg.Set("tsplit_serve_inflight", float64(n))
	return true
}

// end balances begin.
func (s *Server) end() {
	s.mu.Lock()
	s.inflightN--
	n := s.inflightN
	s.mu.Unlock()
	s.reg.Set("tsplit_serve_inflight", float64(n))
	s.inflight.Done()
}

// admission verdicts.
type verdict int

const (
	admitted verdict = iota
	shed             // queue full: 429
	expired          // context done while queued: 503
)

// admit acquires a planner slot, queueing up to MaxQueue requests
// when all slots are busy. It returns a release function exactly when
// the verdict is admitted.
func (s *Server) admit(ctx context.Context) (release func(), v verdict) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, admitted
	default:
	}
	s.mu.Lock()
	if s.waiting >= s.cfg.MaxQueue {
		s.mu.Unlock()
		return nil, shed
	}
	s.waiting++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.waiting--
		s.mu.Unlock()
	}()
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, admitted
	case <-ctx.Done():
		return nil, expired
	}
}

// handlePlan is POST /v1/plan.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	start := s.clock()
	if !s.begin() {
		s.finish(w, start, nil, &httpError{status: http.StatusServiceUnavailable,
			code: "draining", message: "server is draining"})
		return
	}
	defer s.end()

	sp := s.cfg.Trace.StartSpan("serve.request")
	defer sp.End()

	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.finish(w, start, sp, &httpError{status: http.StatusMethodNotAllowed,
			code: "method_not_allowed", message: "use POST"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		s.finish(w, start, sp, errBadRequest("reading body: %v", err))
		return
	}
	req, herr := decodeRequest(body)
	if herr != nil {
		s.finish(w, start, sp, herr)
		return
	}

	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}

	wl, herr := s.workloads.get(req)
	if herr != nil {
		s.finish(w, start, sp, herr)
		return
	}
	key := planKey(wl.digest, wl.dev, req.Options)
	sp.SetAttr("key", key)

	// Fast path: content-addressed cache hit — no admission needed,
	// the stored bytes answer the request.
	if cached, ok := s.cache.get(key); ok {
		s.reg.Add("tsplit_serve_cache_hits_total", 1)
		s.cfg.Flight.Record("serve.cache.hit", "served cached plan", obs.L("key", key))
		sp.SetAttr("cache", "hit")
		s.writePlan(w, start, cached, "hit", key)
		return
	}
	s.reg.Add("tsplit_serve_cache_misses_total", 1)
	s.cfg.Flight.Record("serve.cache.miss", "no cached plan", obs.L("key", key))

	res, coalesced, waitErr := s.group.do(ctx, key, func() planResult {
		return s.runPlanner(ctx, sp, req, wl, key)
	})
	if coalesced {
		sp.SetAttr("cache", "coalesced")
	} else {
		sp.SetAttr("cache", "miss")
	}
	if waitErr != nil {
		s.finish(w, start, sp, &httpError{status: http.StatusServiceUnavailable,
			code: "timeout", message: "request expired waiting for the planner"})
		return
	}
	if res.herr != nil {
		s.finish(w, start, sp, res.herr)
		return
	}
	state := "miss"
	if coalesced {
		state = "coalesced"
	}
	s.writePlan(w, start, res.body, state, key)
}

// handlePeak is POST /v1/peak: plan the requested policy, then replay
// the plan through the simulator's peak-only fast path on the
// workload's pooled arenas. The peak it returns is bit-for-bit the
// peak a full simulation (and the verify tooling) reports — the
// fleet-packing signal the planner's static estimate approximates.
// Peak responses are not plan-cache entries: they share the planner
// pool and admission control but leave the /v1/plan key space (and
// its goldens) untouched.
func (s *Server) handlePeak(w http.ResponseWriter, r *http.Request) {
	start := s.clock()
	if !s.begin() {
		s.finish(w, start, nil, &httpError{status: http.StatusServiceUnavailable,
			code: "draining", message: "server is draining"})
		return
	}
	defer s.end()

	sp := s.cfg.Trace.StartSpan("serve.peak")
	defer sp.End()

	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.finish(w, start, sp, &httpError{status: http.StatusMethodNotAllowed,
			code: "method_not_allowed", message: "use POST"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		s.finish(w, start, sp, errBadRequest("reading body: %v", err))
		return
	}
	req, herr := decodeRequest(body)
	if herr != nil {
		s.finish(w, start, sp, herr)
		return
	}

	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	wl, herr := s.workloads.get(req)
	if herr != nil {
		s.finish(w, start, sp, herr)
		return
	}
	key := planKey(wl.digest, wl.dev, req.Options)
	sp.SetAttr("key", key)

	release, v := s.admit(ctx)
	switch v {
	case shed:
		s.reg.Add("tsplit_serve_shed_total", 1)
		s.cfg.Flight.Record("serve.shed", "admission queue full", obs.L("key", key))
		s.finish(w, start, sp, &httpError{status: http.StatusTooManyRequests,
			code: "overloaded", message: fmt.Sprintf("admission queue full (%d running, %d queued)",
				s.cfg.MaxConcurrent, s.cfg.MaxQueue)})
		return
	case expired:
		s.finish(w, start, sp, &httpError{status: http.StatusServiceUnavailable,
			code: "timeout", message: "request expired in the admission queue"})
		return
	}
	defer release()

	peakStart := s.clock()
	plan, _, herr := s.buildPlan(req, wl)
	if herr != nil {
		s.finish(w, start, sp, herr)
		return
	}
	simOpts := sim.Options{Capacity: req.Options.CapacityBytes, Recompute: sim.LRURecompute}
	simr := wl.sims.Get(wl.g, wl.sched, wl.lv, plan, wl.dev, simOpts)
	peak, perr := simr.PredictPeak()
	wl.sims.Put(simr)
	s.reg.Observe("tsplit_serve_peak_seconds", s.clock().Sub(peakStart).Seconds())
	if perr != nil {
		s.finish(w, start, sp, &httpError{status: http.StatusUnprocessableEntity,
			code: "infeasible", message: perr.Error()})
		return
	}
	respBody, err := json.Marshal(&PeakResponse{
		Key:                key,
		Model:              req.displayName(),
		Device:             wl.dev.Name,
		Policy:             req.Options.Policy,
		SimulatedPeakBytes: peak,
		SimulatedPeakGiB:   float64(peak) / (1 << 30),
		PlannerPeakBytes:   plan.PredictedPeak,
	})
	if err != nil {
		s.finish(w, start, sp, &httpError{status: http.StatusInternalServerError,
			code: "internal", message: fmt.Sprintf("encoding response: %v", err)})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Tsplit-Key", key)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(respBody) // client gone: nothing useful to do
	s.observe(start, http.StatusOK)
}

// runPlanner is the singleflight leader body: acquire a planner slot
// (admission control), plan, serialize, and cache.
func (s *Server) runPlanner(ctx context.Context, parent *obs.Span, req *PlanRequest, wl *prepared, key string) planResult {
	release, v := s.admit(ctx)
	switch v {
	case shed:
		s.reg.Add("tsplit_serve_shed_total", 1)
		s.cfg.Flight.Record("serve.shed", "admission queue full", obs.L("key", key))
		return planResult{herr: &httpError{status: http.StatusTooManyRequests,
			code: "overloaded", message: fmt.Sprintf("admission queue full (%d running, %d queued)",
				s.cfg.MaxConcurrent, s.cfg.MaxQueue)}}
	case expired:
		return planResult{herr: &httpError{status: http.StatusServiceUnavailable,
			code: "timeout", message: "request expired in the admission queue"}}
	}
	defer release()
	if hook := s.cfg.testHookPlanStart; hook != nil {
		hook(key)
	}

	// Double-check the cache: a previous leader may have finished
	// between our miss and this run.
	if cached, ok := s.cache.get(key); ok {
		return planResult{body: cached}
	}
	if s.cfg.PlanDelay > 0 {
		time.Sleep(s.cfg.PlanDelay)
	}

	sp := parent.StartSpan("serve.plan")
	defer sp.End()
	planStart := s.clock()
	resp, herr := s.buildResponse(req, wl, key)
	s.reg.Observe("tsplit_serve_plan_seconds", s.clock().Sub(planStart).Seconds())
	s.reg.Add("tsplit_serve_planner_runs_total", 1)
	if herr != nil {
		return planResult{herr: herr}
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return planResult{herr: &httpError{status: http.StatusInternalServerError,
			code: "internal", message: fmt.Sprintf("encoding response: %v", err)}}
	}
	s.cache.put(key, body, resp.PredictedPeakBytes)
	entries, bodyBytes := s.cache.stats()
	s.reg.Set("tsplit_serve_cache_entries", float64(entries))
	s.reg.Set("tsplit_serve_cache_bytes", float64(bodyBytes))
	return planResult{body: body}
}

// buildPlan runs the requested policy on pooled planner arenas,
// returning the plan (and its report when asked for).
func (s *Server) buildPlan(req *PlanRequest, wl *prepared) (*core.Plan, *core.PlanReport, *httpError) {
	var plan *core.Plan
	var report *core.PlanReport
	var err error
	switch req.Options.Policy {
	case "tsplit", "tsplit-nosplit":
		opts := core.Options{
			Capacity:      req.Options.CapacityBytes,
			DisableSplit:  req.Options.DisableSplit || req.Options.Policy == "tsplit-nosplit",
			PNums:         req.Options.PNums,
			SafetyMargin:  req.Options.SafetyMargin,
			CollectReport: req.Options.Report,
			Clock:         s.clock,
		}
		pl := wl.pool.Get(opts)
		plan, err = pl.Plan()
		if err == nil && req.Options.Report {
			report = pl.Report()
		}
		wl.pool.Put(pl)
	default:
		plan, err = baselines.Registry[req.Options.Policy](baselines.Inputs{
			G: wl.g, Sched: wl.sched, Lv: wl.lv, Prof: wl.prof, Dev: wl.dev,
		})
	}
	if err != nil {
		return nil, nil, &httpError{status: http.StatusUnprocessableEntity,
			code: "infeasible", message: err.Error()}
	}
	return plan, report, nil
}

// buildResponse runs the requested policy and assembles the response
// value that will be cached and served.
func (s *Server) buildResponse(req *PlanRequest, wl *prepared, key string) (*PlanResponse, *httpError) {
	plan, report, herr := s.buildPlan(req, wl)
	if herr != nil {
		return nil, herr
	}
	var planJSON bytes.Buffer
	if err := core.ExportJSON(&planJSON, plan); err != nil {
		return nil, &httpError{status: http.StatusInternalServerError,
			code: "internal", message: fmt.Sprintf("exporting plan: %v", err)}
	}
	return &PlanResponse{
		Key:                  key,
		Model:                req.displayName(),
		Device:               wl.dev.Name,
		Policy:               req.Options.Policy,
		PredictedPeakBytes:   plan.PredictedPeak,
		PredictedPeakGiB:     float64(plan.PredictedPeak) / (1 << 30),
		PredictedTimeSeconds: plan.PredictedTime,
		Plan:                 json.RawMessage(bytes.TrimSpace(planJSON.Bytes())),
		Report:               report,
	}, nil
}

// writePlan sends a success body with its cache-state headers and
// records the request metrics.
func (s *Server) writePlan(w http.ResponseWriter, start time.Time, body []byte, cacheState, key string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Tsplit-Cache", cacheState)
	w.Header().Set("X-Tsplit-Key", key)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body) // client gone: nothing useful to do
	s.observe(start, http.StatusOK)
}

// finish sends a structured error response and records the request
// metrics. sp may be nil (pre-span failures).
func (s *Server) finish(w http.ResponseWriter, start time.Time, sp *obs.Span, herr *httpError) {
	if sp != nil {
		sp.SetAttr("error", herr.code)
	}
	if herr.status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(herr.status)
	body, err := json.Marshal(ErrorBody{Error: ErrorDetail{Code: herr.code, Message: herr.message}})
	if err == nil {
		_, _ = w.Write(body) // client gone: nothing useful to do
	}
	s.observe(start, herr.status)
}

// observe records the per-request metrics.
func (s *Server) observe(start time.Time, status int) {
	s.reg.Add("tsplit_serve_requests_total", 1, obs.L("code", strconv.Itoa(status)))
	s.reg.Observe("tsplit_serve_request_seconds", s.clock().Sub(start).Seconds())
}

// handleHealthz is GET /healthz: a liveness probe with cache
// occupancy.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	entries, bodyBytes := s.cache.stats()
	s.mu.Lock()
	draining := s.draining
	waiting := s.waiting
	s.mu.Unlock()
	status := "ok"
	code := http.StatusOK
	if draining {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	body, err := json.Marshal(map[string]any{
		"status":           status,
		"plans_cached":     entries,
		"plan_cache_bytes": bodyBytes,
		"workloads_cached": s.workloads.len(),
		"queued":           waiting,
	})
	if err == nil {
		_, _ = w.Write(body) // client gone: nothing useful to do
	}
}

// handleMetrics is GET /metrics: the Prometheus text exposition of
// the server's registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var buf bytes.Buffer
	if err := s.reg.WritePrometheus(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	_, _ = w.Write(buf.Bytes()) // client gone: nothing useful to do
}
