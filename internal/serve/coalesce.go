package serve

import (
	"context"
	"sync"
)

// planResult is what one planner run produces and every coalesced
// waiter shares: either a response body (already cached) or an error.
type planResult struct {
	body []byte
	herr *httpError
}

// call is one in-flight planner run. done closes when res is set;
// after that res is immutable, so waiters read it without locks.
type call struct {
	done chan struct{}
	res  planResult
}

// flightGroup coalesces concurrent identical requests onto one planner
// run (singleflight): the first requester for a key becomes the
// leader and runs fn; everyone else arriving before the leader
// finishes blocks on the same call and shares its result. The entry
// is removed when the leader completes, so a later request for the
// same key consults the plan cache (which the leader populated)
// rather than re-planning.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*call // lint:guardedby mu

	// onJoin, when set, runs as soon as a waiter attaches to an
	// existing call — before it blocks — so coalescing is observable
	// (metrics, flight events) while the leader is still planning.
	onJoin func(key string)
}

func newFlightGroup(onJoin func(key string)) *flightGroup {
	return &flightGroup{calls: make(map[string]*call), onJoin: onJoin}
}

// do runs fn for key unless a run is already in flight, in which case
// it waits for that run. coalesced reports whether this caller joined
// an existing run. A waiter whose ctx expires before the leader
// finishes gets ctx.Err() mapped by the caller; the leader itself
// always runs to completion (plans are milliseconds and the result
// feeds the cache for everyone).
func (g *flightGroup) do(ctx context.Context, key string, fn func() planResult) (res planResult, coalesced bool, err error) {
	g.mu.Lock()
	c, joined := g.calls[key]
	if !joined {
		c = &call{done: make(chan struct{})}
		// If fn panics (it should not), waiters still unblock — with
		// this placeholder error rather than a zero result — and the key
		// is freed for the next request; the panic itself propagates to
		// net/http's handler recovery.
		c.res = planResult{herr: &httpError{status: 500, code: "internal", message: "planner run did not complete"}}
		g.calls[key] = c
	}
	g.mu.Unlock()

	if joined {
		if g.onJoin != nil {
			g.onJoin(key)
		}
		select {
		case <-c.done:
			return c.res, true, nil
		case <-ctx.Done():
			return planResult{}, true, ctx.Err()
		}
	}

	defer func() {
		close(c.done)
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
	}()
	c.res = fn()
	return c.res, false, nil
}
