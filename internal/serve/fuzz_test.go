package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"tsplit/internal/baselines"
	"tsplit/internal/core"
)

// fuzzServer is shared across fuzz iterations so workload and plan
// caches amortize graph builds — the fuzzer mutates request bodies far
// faster than it invents new valid workloads.
var (
	fuzzOnce   sync.Once
	fuzzSrv    *Server
	fuzzVerify *workloadCache
)

func fuzzSetup() {
	fuzzOnce.Do(func() {
		fuzzSrv = New(Config{MaxConcurrent: 2, MaxQueue: 64, CacheEntries: 128})
		fuzzVerify = newWorkloadCache(16, nil)
	})
}

// FuzzPlanRequest drives arbitrary bytes through the full request
// path: decoding and validation must never panic, rejected requests
// must map to non-200 statuses, and every accepted request must yield
// a plan that passes the core invariant verifier.
func FuzzPlanRequest(f *testing.F) {
	f.Add([]byte(`{"model":"vgg16","config":{"batch_size":16},"device":"GTX 1080Ti"}`))
	f.Add([]byte(`{"model":"resnet50","config":{"batch_size":8,"param_scale":0.5}}`))
	f.Add([]byte(`{"spec":{"seed":7},"device":"P100"}`))
	f.Add([]byte(`{"spec":{"seed":11},"options":{"policy":"tsplit-nosplit"}}`))
	f.Add([]byte(`{"spec":{"seed":3},"options":{"pnums":[2,4],"safety_margin":0.1,"report":true}}`))
	f.Add([]byte(`{"model":"vgg16","config":{"batch_size":16},"options":{"policy":"vdnn-conv"}}`))
	f.Add([]byte(`{"model":"vgg16","options":{"capacity_bytes":1}}`))
	f.Add([]byte(`{"model":"nosuch"}`))
	f.Add([]byte(`{"spec":{"seed":1},"config":{"batch_size":4}}`))
	f.Add([]byte(`{"model":"vgg16","spec":{"seed":1}}`))
	f.Add([]byte(`{"broken`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"model":"vgg16"}{"model":"vgg16"}`))
	f.Add([]byte(`{"model":"vgg16","config":{"batch_size":-3}}`))
	f.Add([]byte(`{"model":"vgg16","options":{"safety_margin":2.5}}`))

	f.Fuzz(func(t *testing.T, body []byte) {
		fuzzSetup()

		// Decoding and validation must never panic, whatever the bytes.
		req, herr := decodeRequest(body)

		// Neither must the handler; its verdict must agree with the
		// decoder's.
		hr := httptest.NewRequest(http.MethodPost, "/v1/plan", strings.NewReader(string(body)))
		w := httptest.NewRecorder()
		fuzzSrv.ServeHTTP(w, hr)
		if herr != nil {
			if w.Code == http.StatusOK {
				t.Fatalf("handler accepted a request the validator rejects (%v): %s", herr, body)
			}
			if w.Code != herr.status {
				t.Fatalf("handler status %d, validator says %d: %s", w.Code, herr.status, body)
			}
			eb := ErrorBody{}
			if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Error.Code == "" {
				t.Fatalf("rejection body is not a structured error: %s", w.Body.String())
			}
			return
		}
		switch w.Code {
		case http.StatusOK, http.StatusUnprocessableEntity:
		default:
			t.Fatalf("valid request answered %d: %s (body %s)", w.Code, body, w.Body.String())
		}
		if w.Code != http.StatusOK {
			return
		}
		var resp PlanResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("200 body does not decode: %v", err)
		}
		isTsplit := req.Options.Policy == "tsplit" || req.Options.Policy == "tsplit-nosplit"
		if isTsplit && resp.PredictedPeakBytes <= 0 {
			// Baseline producers don't predict a peak; the planner always
			// does.
			t.Fatalf("accepted tsplit plan has non-positive predicted peak %d", resp.PredictedPeakBytes)
		}

		// Re-plan the accepted request outside the HTTP path and hold the
		// in-memory plan to the core invariant verifier. tsplit policies
		// must fit their effective capacity; baseline policies only
		// guarantee structural invariants (some deliberately OOM), so they
		// verify against an unbounded capacity.
		wl, herr2 := fuzzVerify.get(req)
		if herr2 != nil {
			t.Fatalf("workload for accepted request does not build: %v", herr2)
		}
		var plan *core.Plan
		var err error
		capacity := int64(math.MaxInt64)
		switch req.Options.Policy {
		case "tsplit", "tsplit-nosplit":
			pl := wl.pool.Get(core.Options{
				Capacity:     req.Options.CapacityBytes,
				DisableSplit: req.Options.DisableSplit || req.Options.Policy == "tsplit-nosplit",
				PNums:        req.Options.PNums,
				SafetyMargin: req.Options.SafetyMargin,
			})
			plan, err = pl.Plan()
			wl.pool.Put(pl)
			capacity = req.Options.CapacityBytes
			if capacity <= 0 {
				capacity = wl.dev.MemBytes
			}
		default:
			// The server cached this policy's plan; reproduce it the same
			// way buildResponse does.
			plan, err = baselines.Registry[req.Options.Policy](baselines.Inputs{
				G: wl.g, Sched: wl.sched, Lv: wl.lv, Prof: wl.prof, Dev: wl.dev,
			})
		}
		if err != nil {
			t.Fatalf("server served a plan the planner now refuses (%s): %v", req.Options.Policy, err)
		}
		if violations := core.VerifyAt(plan, wl.g, wl.sched, wl.lv, capacity); len(violations) != 0 {
			for _, v := range violations {
				t.Errorf("accepted plan violates invariant: %s", v)
			}
			t.Fatalf("plan for %s failed core verification", body)
		}
	})
}
