// Package serve turns the TSPLIT planner into a long-running
// planning service: an HTTP server that accepts (graph, device,
// options) requests and answers with the plan, its predicted peak, and
// an optional per-request plan report. Plans are content-addressed by
// a canonical hash of the *built* graph plus the device profile and
// the normalized planner options, so two requests that describe the
// same workload differently (a zoo name vs. the spec that generates
// the same graph) still share one cache entry, one planner run, and
// byte-identical response bodies.
package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"

	"tsplit/internal/device"
	"tsplit/internal/graph"
)

// digestWriter wraps a hash with length-prefixed primitive writes so
// adjacent fields can never alias each other (the classic "ab"+"c" ==
// "a"+"bc" collision).
type digestWriter struct{ h hash.Hash }

func (d digestWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, _ = d.h.Write(b[:]) // hash.Hash.Write never errors
}

func (d digestWriter) i64(v int64)   { d.u64(uint64(v)) }
func (d digestWriter) i(v int)       { d.u64(uint64(int64(v))) }
func (d digestWriter) f64(v float64) { d.u64(math.Float64bits(v)) }
func (d digestWriter) bool(v bool) {
	if v {
		d.u64(1)
	} else {
		d.u64(0)
	}
}

func (d digestWriter) str(s string) {
	d.u64(uint64(len(s)))
	_, _ = d.h.Write([]byte(s)) // hash.Hash.Write never errors
}

// graphDigest hashes the structural content of a graph: every tensor
// (name, shape, dtype, kind) and every op (name, kind, phase, attrs,
// workspace, input/output/control edges by tensor and op ID) in their
// creation order, which BuildSchedule and the planner also key off.
// Two graphs with the same digest plan identically on the same device
// under the same options.
func graphDigest(g *graph.Graph) [sha256.Size]byte {
	d := digestWriter{h: sha256.New()}
	d.str("tsplit.graph.v1")
	d.i(len(g.Tensors))
	for _, t := range g.Tensors {
		d.i(t.ID)
		d.str(t.Name)
		d.i(len(t.Shape))
		for _, dim := range t.Shape {
			d.i(dim)
		}
		d.i(int(t.DType))
		d.i(int(t.Kind))
	}
	d.i(len(g.Ops))
	for _, op := range g.Ops {
		d.i(op.ID)
		d.str(op.Name)
		d.i(int(op.Kind))
		d.i(int(op.Phase))
		d.i64(op.Workspace)
		a := op.Attrs
		d.i(a.KernelH)
		d.i(a.KernelW)
		d.i(a.StrideH)
		d.i(a.StrideW)
		d.i(a.PadH)
		d.i(a.PadW)
		d.i(a.Axis)
		d.f64(a.Prob)
		d.i(len(op.Inputs))
		for _, t := range op.Inputs {
			d.i(t.ID)
		}
		d.i(len(op.Outputs))
		for _, t := range op.Outputs {
			d.i(t.ID)
		}
		d.i(len(op.ControlDeps))
		for _, c := range op.ControlDeps {
			d.i(c.ID)
		}
		if op.FwdOp != nil {
			d.i(op.FwdOp.ID)
		} else {
			d.i(-1)
		}
	}
	var out [sha256.Size]byte
	d.h.Sum(out[:0])
	return out
}

// planKey derives the content address of one plan: the graph digest,
// the device profile fields the planner and cost model read, and the
// normalized request options (policy, capacity, split knobs, margin,
// and whether the cached body carries a plan report — the report is
// deterministic for a key, so it is part of the cached bytes rather
// than recomputed per request).
func planKey(gd [sha256.Size]byte, dev device.Device, o PlanOptions) string {
	d := digestWriter{h: sha256.New()}
	d.str("tsplit.plan.v1")
	_, _ = d.h.Write(gd[:]) // hash.Hash.Write never errors
	d.str(dev.Name)
	d.i64(dev.MemBytes)
	d.f64(dev.PeakFLOPS)
	d.f64(dev.MemBandwidth)
	d.f64(dev.PCIeBandwidth)
	d.f64(dev.KernelLaunch)
	d.f64(dev.SaturationFLOP)
	d.str(o.Policy)
	d.i64(o.CapacityBytes)
	d.bool(o.DisableSplit)
	d.f64(o.SafetyMargin)
	d.i(len(o.PNums))
	for _, p := range o.PNums {
		d.i(p)
	}
	d.bool(o.Report)
	return hex.EncodeToString(d.h.Sum(nil))
}
