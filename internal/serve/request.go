package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"tsplit/internal/baselines"
	"tsplit/internal/core"
	"tsplit/internal/device"
	"tsplit/internal/models"
)

// Validation ceilings: a planning service fielding arbitrary clients
// must bound the work one request can demand. These are generous for
// the paper's evaluation space and still keep a worst-case request in
// the tens of milliseconds.
const (
	MaxBatchSize  = 1024
	MaxParamScale = 8.0
	MaxImageSize  = 512
	MaxSeqLen     = 512
	MaxPNums      = 8
	MaxPNum       = 64
)

// GraphSpec is the inline alternative to a zoo model name: a seed for
// the deterministic random-graph generator (internal/workload). Same
// seed, same graph, same digest — spec-built plans cache exactly like
// zoo plans.
type GraphSpec struct {
	Seed uint64 `json:"seed"`
}

// ModelConfig mirrors models.Config for the wire: only the scaling
// knobs a client may set.
type ModelConfig struct {
	BatchSize  int     `json:"batch_size,omitempty"`
	ParamScale float64 `json:"param_scale,omitempty"`
	ImageSize  int     `json:"image_size,omitempty"`
	SeqLen     int     `json:"seq_len,omitempty"`
}

// PlanOptions are the planner knobs a request may set. Policy selects
// the producer: "tsplit" (default), "tsplit-nosplit" (the ablation),
// or any baseline name (vdnn-conv, vdnn-all, checkpoints,
// superneurons, zero-offload, fairscale-offload, base).
type PlanOptions struct {
	Policy        string  `json:"policy,omitempty"`
	CapacityBytes int64   `json:"capacity_bytes,omitempty"`
	DisableSplit  bool    `json:"disable_split,omitempty"`
	PNums         []int   `json:"pnums,omitempty"`
	SafetyMargin  float64 `json:"safety_margin,omitempty"`
	// Report asks for the planner's per-iteration PlanReport in the
	// response. It is part of the cache key: a cached body either
	// carries the (deterministic) report or does not.
	Report bool `json:"report,omitempty"`
}

// PlanRequest is the POST /v1/plan body. Exactly one of Model and
// Spec must be set.
type PlanRequest struct {
	Model   string      `json:"model,omitempty"`
	Spec    *GraphSpec  `json:"spec,omitempty"`
	Config  ModelConfig `json:"config,omitempty"`
	Device  string      `json:"device,omitempty"`
	Options PlanOptions `json:"options,omitempty"`
}

// PlanResponse is the POST /v1/plan success body. Cache status
// travels in the X-Tsplit-Cache header (hit | miss | coalesced), not
// in the body, so a cache hit can return the stored bytes verbatim.
type PlanResponse struct {
	Key                  string           `json:"key"`
	Model                string           `json:"model"`
	Device               string           `json:"device"`
	Policy               string           `json:"policy"`
	PredictedPeakBytes   int64            `json:"predicted_peak_bytes"`
	PredictedPeakGiB     float64          `json:"predicted_peak_gib"`
	PredictedTimeSeconds float64          `json:"predicted_time_seconds"`
	Plan                 json.RawMessage  `json:"plan"`
	Report               *core.PlanReport `json:"report,omitempty"`
}

// PeakResponse is the POST /v1/peak success body: the simulator's
// exact peak for the requested plan (PredictPeak replays the full
// runtime's alloc/free event sequence on a pooled arena), alongside
// the planner's static estimate for comparison.
type PeakResponse struct {
	Key                string  `json:"key"`
	Model              string  `json:"model"`
	Device             string  `json:"device"`
	Policy             string  `json:"policy"`
	SimulatedPeakBytes int64   `json:"simulated_peak_bytes"`
	SimulatedPeakGiB   float64 `json:"simulated_peak_gib"`
	PlannerPeakBytes   int64   `json:"planner_peak_bytes"`
}

// ErrorBody is the structured error envelope every non-2xx response
// carries.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail names the failure class (a stable machine-readable code)
// and explains it.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// httpError pairs a status code with its structured body.
type httpError struct {
	status  int
	code    string
	message string
}

func (e *httpError) Error() string { return fmt.Sprintf("%d %s: %s", e.status, e.code, e.message) }

func errBadRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, code: "bad_request", message: fmt.Sprintf(format, args...)}
}

// decodeRequest parses and validates a request body. It returns a
// *httpError (never a bare error) so handlers can map failures
// directly onto status codes: malformed JSON and out-of-range fields
// are 400, an unknown model or policy is 404.
func decodeRequest(body []byte) (*PlanRequest, *httpError) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req PlanRequest
	if err := dec.Decode(&req); err != nil {
		return nil, errBadRequest("invalid JSON: %v", err)
	}
	if dec.More() {
		return nil, errBadRequest("trailing data after request object")
	}
	if err := validateRequest(&req); err != nil {
		return nil, err
	}
	return &req, nil
}

// knownPolicies returns the sorted set of accepted policy names.
func knownPolicies() []string {
	names := append([]string{"tsplit", "tsplit-nosplit"}, baselines.Names...)
	sort.Strings(names)
	return names
}

// validateRequest normalizes and bounds-checks a decoded request in
// place.
func validateRequest(req *PlanRequest) *httpError {
	if (req.Model == "") == (req.Spec == nil) {
		return errBadRequest("exactly one of \"model\" and \"spec\" must be set")
	}
	if req.Model != "" {
		known := false
		for _, name := range models.Names() {
			if name == req.Model {
				known = true
				break
			}
		}
		if !known {
			return &httpError{status: http.StatusNotFound, code: "unknown_model",
				message: fmt.Sprintf("unknown model %q (have %v)", req.Model, models.Names())}
		}
	}
	c := req.Config
	if c.BatchSize < 0 || c.BatchSize > MaxBatchSize {
		return errBadRequest("config.batch_size %d out of range [0, %d]", c.BatchSize, MaxBatchSize)
	}
	if c.ParamScale < 0 || c.ParamScale > MaxParamScale {
		return errBadRequest("config.param_scale %g out of range [0, %g]", c.ParamScale, MaxParamScale)
	}
	if c.ParamScale != 0 && c.ParamScale < 0.1 {
		return errBadRequest("config.param_scale %g below minimum 0.1", c.ParamScale)
	}
	if c.ImageSize < 0 || c.ImageSize > MaxImageSize {
		return errBadRequest("config.image_size %d out of range [0, %d]", c.ImageSize, MaxImageSize)
	}
	if c.ImageSize != 0 && c.ImageSize < 32 {
		return errBadRequest("config.image_size %d below minimum 32", c.ImageSize)
	}
	if c.SeqLen < 0 || c.SeqLen > MaxSeqLen {
		return errBadRequest("config.seq_len %d out of range [0, %d]", c.SeqLen, MaxSeqLen)
	}
	if c.SeqLen != 0 && c.SeqLen < 8 {
		return errBadRequest("config.seq_len %d below minimum 8", c.SeqLen)
	}
	if req.Spec != nil && (c.BatchSize != 0 || c.ParamScale != 0 || c.ImageSize != 0 || c.SeqLen != 0) {
		return errBadRequest("config does not apply to spec-built graphs (the seed fixes every dimension)")
	}
	if req.Device == "" {
		req.Device = device.TitanRTX.Name
	}
	if _, err := device.ByName(req.Device); err != nil {
		return errBadRequest("unknown device %q", req.Device)
	}
	o := &req.Options
	if o.Policy == "" {
		o.Policy = "tsplit"
	}
	switch o.Policy {
	case "tsplit", "tsplit-nosplit":
	default:
		if _, ok := baselines.Registry[o.Policy]; !ok {
			return &httpError{status: http.StatusNotFound, code: "unknown_policy",
				message: fmt.Sprintf("unknown policy %q (have %v)", o.Policy, knownPolicies())}
		}
	}
	if o.CapacityBytes < 0 {
		return errBadRequest("options.capacity_bytes must be >= 0 (0 = device capacity)")
	}
	if o.SafetyMargin < 0 || o.SafetyMargin > 0.9 {
		return errBadRequest("options.safety_margin %g out of range [0, 0.9]", o.SafetyMargin)
	}
	if len(o.PNums) > MaxPNums {
		return errBadRequest("options.pnums has %d entries, max %d", len(o.PNums), MaxPNums)
	}
	for _, p := range o.PNums {
		if p < 2 || p > MaxPNum {
			return errBadRequest("options.pnums entry %d out of range [2, %d]", p, MaxPNum)
		}
	}
	if len(o.PNums) == 0 {
		o.PNums = nil // nil and [] must share a cache key
	}
	if o.Policy != "tsplit" && o.Policy != "tsplit-nosplit" {
		// Baseline producers ignore planner knobs; normalize them out of
		// the cache key so equivalent requests share an entry.
		if o.DisableSplit || len(o.PNums) > 0 || o.SafetyMargin != 0 {
			return errBadRequest("options.disable_split/pnums/safety_margin apply only to the tsplit policies")
		}
	}
	return nil
}

// workloadID is the normalized identity of a (graph source, config,
// device) triple — the workload cache key. It is a human-readable
// string rather than a hash so flight events and tests can name it.
func (req *PlanRequest) workloadID() string {
	if req.Spec != nil {
		return fmt.Sprintf("spec:%d|dev:%s", req.Spec.Seed, req.Device)
	}
	c := req.Config
	return fmt.Sprintf("model:%s|b:%d|ps:%g|img:%d|seq:%d|dev:%s",
		req.Model, c.BatchSize, c.ParamScale, c.ImageSize, c.SeqLen, req.Device)
}

// displayName is the model label echoed in responses.
func (req *PlanRequest) displayName() string {
	if req.Spec != nil {
		return fmt.Sprintf("spec(seed=%d)", req.Spec.Seed)
	}
	return req.Model
}
