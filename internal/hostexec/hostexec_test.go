package hostexec

import (
	"math"
	"testing"

	"tsplit/internal/core"
	"tsplit/internal/device"
	"tsplit/internal/graph"
	"tsplit/internal/nn"
	"tsplit/internal/profiler"
	"tsplit/internal/tensor"
)

// cnn builds a small conv net with the graph builders.
func cnn(t *testing.T, batch int) (*graph.Graph, *graph.Tensor) {
	t.Helper()
	g := graph.New()
	images := g.Input("images", tensor.NewShape(batch, 1, 8, 8), tensor.Float32)
	labels := g.Input("labels", tensor.NewShape(batch), tensor.Int32)
	x := g.ReLU("c1.relu", g.Conv2D("c1", images, 4, 3, 1, 1))
	x = g.MaxPool("p1", x, 2, 2, 0)
	flat := g.Reshape("flat", x, tensor.NewShape(batch, 4*4*4))
	h := g.ReLU("fc1.relu", g.Dense("fc1", flat, 16))
	logits := g.Dense("fc2", h, 3)
	g.CrossEntropyLoss("loss", logits, labels)
	if err := g.Differentiate(graph.Momentum); err != nil {
		t.Fatal(err)
	}
	return g, images
}

// batchOf makes a deterministic synthetic batch.
func batchOf(images *graph.Tensor, seed uint64) (*nn.Buffer, []int) {
	r := nn.NewRNG(seed)
	img := nn.NewBuffer(images.Shape)
	nn.FillUniform(img, 1, r)
	labels := make([]int, images.Shape[0])
	for i := range labels {
		labels[i] = r.Intn(3)
	}
	return img, labels
}

// trainLosses runs n steps under a plan and returns the losses.
func trainLosses(t *testing.T, g *graph.Graph, images *graph.Tensor, plan *core.Plan, budget int64, steps int) ([]float64, *Executor) {
	t.Helper()
	sched, err := graph.BuildSchedule(g)
	if err != nil {
		t.Fatal(err)
	}
	e := New(g, sched, plan, 99)
	e.Capacity = budget
	var losses []float64
	for s := 0; s < steps; s++ {
		img, labels := batchOf(images, uint64(1000+s))
		l, err := e.Step(map[*graph.Tensor]*nn.Buffer{images: img}, labels)
		if err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		losses = append(losses, l)
	}
	return losses, e
}

func TestTrainingConverges(t *testing.T) {
	g, images := cnn(t, 16)
	losses, _ := trainLosses(t, g, images, core.NewPlan("base", device.TitanRTX), 0, 12)
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %v", losses)
	}
}

// The repository's central correctness claim: training under ANY
// memory plan produces exactly the same losses as unconstrained
// training (splitting may reassociate weight-gradient sums, so the
// split plan gets a tolerance; swap and recompute must be exact).
func TestPlanNumericParity(t *testing.T) {
	g, images := cnn(t, 16)
	sched, _ := graph.BuildSchedule(g)
	lv := graph.AnalyzeLiveness(g, sched)
	prof := profiler.New(device.TitanRTX, sched)

	ref, _ := trainLosses(t, g, images, core.NewPlan("base", device.TitanRTX), 0, 6)

	// Swap-everything plan: bit-exact.
	swapAll := core.NewPlan("swap-all", device.TitanRTX)
	for _, x := range g.Tensors {
		if x.Kind == tensor.FeatureMap {
			swapAll.Tensors[x.ID] = core.TensorPlan{Tensor: x, Opt: core.Swap}
		}
	}
	core.FinalizeWindows(g, sched, lv, prof, swapAll)
	got, e := trainLosses(t, g, images, swapAll, 0, 6)
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("swap plan diverges at step %d: %g vs %g", i, got[i], ref[i])
		}
	}
	if e.Swaps == 0 {
		t.Fatal("swap plan performed no swaps")
	}

	// Recompute-everything-possible plan: bit-exact.
	rc := core.NewPlan("recompute", device.TitanRTX)
	for _, x := range g.Tensors {
		if x.Kind == tensor.FeatureMap && x.Producer != nil {
			rc.Tensors[x.ID] = core.TensorPlan{Tensor: x, Opt: core.Recompute}
		}
	}
	core.FinalizeWindows(g, sched, lv, prof, rc)
	got, e = trainLosses(t, g, images, rc, 0, 6)
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("recompute plan diverges at step %d: %g vs %g", i, got[i], ref[i])
		}
	}
	if e.Recomputes == 0 {
		t.Fatal("recompute plan regenerated nothing")
	}
}

func TestSplitPlanNumericParity(t *testing.T) {
	g, images := cnn(t, 16)
	ref, _ := trainLosses(t, g, images, core.NewPlan("base", device.TitanRTX), 0, 6)

	split := core.NewPlan("split", device.TitanRTX)
	for _, op := range g.Ops {
		if in, out := core.SplitTensors(op, tensor.DimSample); in != nil && out != nil {
			if op.Kind == graph.CrossEntropy || (op.FwdOp != nil && op.FwdOp.Kind == graph.CrossEntropy) {
				continue
			}
			split.Splits[op.ID] = core.OpSplit{Op: op, PNum: 4, Dim: tensor.DimSample, InOpt: core.Reside}
		}
	}
	if len(split.Splits) == 0 {
		t.Fatal("nothing splittable")
	}
	got, _ := trainLosses(t, g, images, split, 0, 6)
	for i := range ref {
		if math.Abs(got[i]-ref[i]) > 1e-4 {
			t.Fatalf("split plan diverges at step %d: %g vs %g", i, got[i], ref[i])
		}
	}
}

func TestPlannedRunRespectsBudget(t *testing.T) {
	g, images := cnn(t, 16)
	sched, _ := graph.BuildSchedule(g)
	lv := graph.AnalyzeLiveness(g, sched)
	prof := profiler.New(device.TitanRTX, sched)

	// Measure the unconstrained peak, then find the planner's
	// feasibility frontier for this graph by binary search.
	_, free := trainLosses(t, g, images, core.NewPlan("base", device.TitanRTX), 0, 2)
	lo, hi := lv.Resident, lv.Peak
	for i := 0; i < 12; i++ {
		mid := (lo + hi) / 2
		if _, err := core.NewPlanner(g, sched, lv, prof, device.TitanRTX, core.Options{
			Capacity: mid, FragmentationReserve: -1,
		}).Plan(); err != nil {
			lo = mid
		} else {
			hi = mid
		}
	}
	plan, err := core.NewPlanner(g, sched, lv, prof, device.TitanRTX, core.Options{
		Capacity: hi, FragmentationReserve: -1,
	}).Plan()
	if err != nil {
		t.Fatalf("plan at frontier %d: %v", hi, err)
	}
	// Execute with real values under a budget a little above the
	// frontier (the analytic model does not itemize every transient).
	budget := hi + hi/5
	_, tight := trainLosses(t, g, images, plan, budget, 4)
	if tight.PeakBytes > budget {
		t.Fatalf("peak %d exceeds budget %d", tight.PeakBytes, budget)
	}
	if tight.PeakBytes >= free.PeakBytes {
		t.Fatal("plan did not reduce the real footprint")
	}
}

func TestBudgetViolationDetected(t *testing.T) {
	g, images := cnn(t, 16)
	sched, _ := graph.BuildSchedule(g)
	e := New(g, sched, core.NewPlan("base", device.TitanRTX), 1)
	e.Capacity = 1024 // absurd
	img, labels := batchOf(images, 5)
	if _, err := e.Step(map[*graph.Tensor]*nn.Buffer{images: img}, labels); err == nil {
		t.Fatal("expected budget violation")
	}
}

// mlpLN builds a transformer-style block (dense → layernorm → gelu →
// dense) to exercise the normalization kernels end-to-end.
func mlpLN(t *testing.T, batch int) (*graph.Graph, *graph.Tensor) {
	t.Helper()
	g := graph.New()
	x := g.Input("x", tensor.NewShape(batch, 1, 4, 4), tensor.Float32)
	labels := g.Input("labels", tensor.NewShape(batch), tensor.Int32)
	flat := g.Reshape("flat", x, tensor.NewShape(batch, 16))
	h := g.Dense("fc1", flat, 24)
	h = g.LayerNorm("ln1", h)
	h = g.GELU("act", h)
	logits := g.Dense("fc2", h, 3)
	g.CrossEntropyLoss("loss", logits, labels)
	if err := g.Differentiate(graph.Momentum); err != nil {
		t.Fatal(err)
	}
	return g, x
}

func TestLayerNormModelParity(t *testing.T) {
	g, x := mlpLN(t, 12)
	sched, _ := graph.BuildSchedule(g)
	lv := graph.AnalyzeLiveness(g, sched)
	prof := profiler.New(device.TitanRTX, sched)

	ref, _ := trainLosses(t, g, x, core.NewPlan("base", device.TitanRTX), 0, 6)
	if ref[5] >= ref[0] {
		t.Fatalf("layernorm model does not learn: %v", ref)
	}

	// Evict every feature map via recompute and compare bit-for-bit.
	rc := core.NewPlan("recompute", device.TitanRTX)
	for _, tt := range g.Tensors {
		if tt.Kind == tensor.FeatureMap && tt.Producer != nil {
			rc.Tensors[tt.ID] = core.TensorPlan{Tensor: tt, Opt: core.Recompute}
		}
	}
	core.FinalizeWindows(g, sched, lv, prof, rc)
	got, e := trainLosses(t, g, x, rc, 0, 6)
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("step %d: %g vs %g", i, got[i], ref[i])
		}
	}
	if e.Recomputes == 0 {
		t.Fatal("no recomputes happened")
	}
}
