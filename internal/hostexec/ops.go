package hostexec

import (
	"fmt"

	"tsplit/internal/core"
	"tsplit/internal/graph"
	"tsplit/internal/nn"
	"tsplit/internal/tensor"
)

// execWhole evaluates one operator with real values.
func (e *Executor) execWhole(op *graph.Op) error {
	ins := make([]*nn.Buffer, len(op.Inputs))
	for i, t := range op.Inputs {
		b, err := e.value(t)
		if err != nil {
			return err
		}
		ins[i] = b
	}
	outs, err := e.eval(op, ins)
	if err != nil {
		return err
	}
	for i, o := range op.Outputs {
		if err := e.track(o, outs[i]); err != nil {
			return err
		}
	}
	return nil
}

// eval dispatches an operator to its kernel.
func (e *Executor) eval(op *graph.Op, ins []*nn.Buffer) ([]*nn.Buffer, error) {
	switch op.Kind {
	case graph.Conv2D:
		return []*nn.Buffer{nn.Conv2D(ins[0], ins[1], ins[2], op.Attrs)}, nil
	case graph.MatMul:
		var bias *nn.Buffer
		if len(ins) > 2 {
			bias = ins[2]
		}
		return []*nn.Buffer{nn.MatMul(ins[0], ins[1], bias)}, nil
	case graph.ReLU:
		return []*nn.Buffer{nn.ReLU(ins[0])}, nil
	case graph.MaxPool:
		return []*nn.Buffer{nn.MaxPool(ins[0], op.Attrs)}, nil
	case graph.Reshape:
		out := nn.NewBufferFrom(op.Outputs[0].Shape, append([]float32(nil), ins[0].Data...))
		return []*nn.Buffer{out}, nil
	case graph.Dropout:
		// Deterministic identity in the real engine (tests compare
		// losses bit-for-bit across plans).
		return []*nn.Buffer{ins[0].Clone()}, nil
	case graph.Add:
		return []*nn.Buffer{nn.Add(ins[0], ins[1])}, nil
	case graph.LayerNorm:
		return []*nn.Buffer{nn.LayerNorm(ins[0], ins[1], ins[2])}, nil
	case graph.GELU:
		return []*nn.Buffer{nn.GELU(ins[0])}, nil
	case graph.Softmax:
		return []*nn.Buffer{nn.Softmax(ins[0])}, nil
	case graph.CrossEntropy:
		loss := nn.CrossEntropy(ins[0], e.labels)
		out := nn.NewBuffer(tensor.NewShape(1))
		out.Data[0] = float32(loss)
		return []*nn.Buffer{out}, nil
	case graph.GradOp:
		return e.evalGrad(op, ins)
	case graph.SGDUpdate:
		p := e.params[op.Inputs[0]]
		var v *nn.Buffer
		if len(op.Inputs) > 2 {
			v = e.states[op.Inputs[2]]
		}
		nn.SGDStep(p, ins[1], v, e.LR, e.Momentum)
		return nil, nil
	default:
		return nil, fmt.Errorf("hostexec: operator %s not supported by the real engine", op.Kind)
	}
}

// evalGrad dispatches a backward operator. Input layout follows
// graph.Differentiate: upstream gradient first (absent for the loss),
// then the saved forward tensors.
func (e *Executor) evalGrad(op *graph.Op, ins []*nn.Buffer) ([]*nn.Buffer, error) {
	fwd := op.FwdOp
	switch fwd.Kind {
	case graph.Conv2D:
		dy, x, w := ins[0], ins[1], ins[2]
		dx, dw, db := nn.Conv2DGrad(x, w, dy, fwd.Attrs)
		return []*nn.Buffer{dx, dw, db}, nil
	case graph.MatMul:
		dy, x, w := ins[0], ins[1], ins[2]
		dx, dw, db := nn.MatMulGrad(x, w, dy)
		if len(op.Outputs) == 2 { // no bias in this matmul
			return []*nn.Buffer{dx, dw}, nil
		}
		return []*nn.Buffer{dx, dw, db}, nil
	case graph.ReLU:
		dy, x := ins[0], ins[1]
		return []*nn.Buffer{nn.ReLUGrad(x, dy)}, nil
	case graph.MaxPool:
		dy, x, y := ins[0], ins[1], ins[2]
		return []*nn.Buffer{nn.MaxPoolGrad(x, y, dy, fwd.Attrs)}, nil
	case graph.Reshape:
		dy := ins[0]
		out := nn.NewBufferFrom(op.Outputs[0].Shape, append([]float32(nil), dy.Data...))
		return []*nn.Buffer{out}, nil
	case graph.Dropout:
		return []*nn.Buffer{ins[0].Clone()}, nil
	case graph.LayerNorm:
		dy, x, gamma := ins[0], ins[1], ins[2]
		dx, dgamma, dbeta := nn.LayerNormGrad(x, gamma, dy)
		return []*nn.Buffer{dx, dgamma, dbeta}, nil
	case graph.GELU:
		dy, x := ins[0], ins[1]
		return []*nn.Buffer{nn.GELUGrad(x, dy)}, nil
	case graph.Add:
		dy := ins[0]
		return []*nn.Buffer{dy.Clone(), dy.Clone()}, nil
	case graph.CrossEntropy:
		logits := ins[0]
		return []*nn.Buffer{nn.CrossEntropyGrad(logits, e.labels)}, nil
	default:
		return nil, fmt.Errorf("hostexec: gradient of %s not supported by the real engine", fwd.Kind)
	}
}

// execSplit runs a sample-dimension split operator as a micro-batch
// loop with real slicing: batch-axis inputs are carved, whole operands
// are shared, batch-axis outputs are concatenated, and reduction
// outputs (weight gradients, the scalar loss) are sum-merged —
// physically exercising the sTensor split/merge semantics.
func (e *Executor) execSplit(op *graph.Op, sp core.OpSplit) error {
	batch := op.Outputs[0].Shape[0]
	if op.Kind == graph.CrossEntropy || (op.FwdOp != nil && op.FwdOp.Kind == graph.CrossEntropy) {
		// Loss rows map one-to-one to labels; slicing labels alongside
		// logits is exercised in the nn tests. Keep the loss whole
		// here.
		return e.execWhole(op)
	}

	ins := make([]*nn.Buffer, len(op.Inputs))
	for i, t := range op.Inputs {
		b, err := e.value(t)
		if err != nil {
			return err
		}
		ins[i] = b
	}
	// Carve batch-axis inputs.
	parts := make([][]*nn.Buffer, len(op.Inputs))
	for i, t := range op.Inputs {
		if t.Shape.Rank() >= 1 && t.Shape[0] == batch && t.Kind != tensor.Parameter {
			p, err := nn.SplitAxis0(ins[i], sp.PNum)
			if err != nil {
				return err
			}
			parts[i] = p
		}
	}

	outParts := make([][]*nn.Buffer, len(op.Outputs))
	for k := 0; k < sp.PNum; k++ {
		micro := make([]*nn.Buffer, len(op.Inputs))
		for i := range op.Inputs {
			if parts[i] != nil {
				micro[i] = parts[i][k]
			} else {
				micro[i] = ins[i]
			}
		}
		outs, err := e.eval(op, micro)
		if err != nil {
			return err
		}
		for i := range op.Outputs {
			outParts[i] = append(outParts[i], outs[i])
		}
	}

	for i, o := range op.Outputs {
		var merged *nn.Buffer
		var err error
		// Parameter gradients always sum-merge across micro-batches;
		// batch-axis activations and gradients concatenate. The kind
		// check matters: a weight gradient's leading dim can equal the
		// batch size by coincidence.
		if o.Kind != tensor.ParamGrad && o.Shape.Rank() >= 1 && o.Shape[0] == batch {
			merged, err = nn.MergeAxis0(outParts[i])
			if err != nil {
				return err
			}
		} else {
			// Reduction output: sum the partials.
			merged = outParts[i][0].Clone()
			for _, p := range outParts[i][1:] {
				nn.SumInto(merged, p)
			}
		}
		if err := e.track(o, merged); err != nil {
			return err
		}
	}
	return nil
}
