// Package device describes the simulated accelerators TSPLIT plans for.
//
// The paper evaluates on NVIDIA Titan RTX and GTX 1080Ti, and motivates
// with P100/V100 capacities (Fig. 1). No GPU is available in this
// reproduction, so a device is a parameter set — memory capacity,
// peak arithmetic throughput, device-memory bandwidth, kernel-launch
// overhead and PCIe bandwidth — consumed by the analytic cost model and
// the discrete-event runtime. TSPLIT's planner only ever sees profiled
// times and sizes, so this parameterization carries exactly the
// information the real system extracts with cudaEvent profiling
// (paper Sec. V-B).
package device

import "fmt"

// Device is a simulated accelerator profile.
type Device struct {
	// Name identifies the profile in reports ("TITAN RTX").
	Name string
	// MemBytes is usable device memory. Real frameworks lose some
	// capacity to context/cuDNN handles; profiles already account for
	// that.
	MemBytes int64
	// PeakFLOPS is peak FP32 throughput in floating-point ops/second.
	PeakFLOPS float64
	// MemBandwidth is device-memory bandwidth in bytes/second; it
	// bounds element-wise (memory-bound) operators.
	MemBandwidth float64
	// PCIeBandwidth is host<->device copy bandwidth in bytes/second per
	// direction (PCIe 3.0 x16 is full duplex).
	PCIeBandwidth float64
	// KernelLaunch is the fixed per-kernel overhead in seconds. It is
	// the term that penalizes excessive tensor splitting (paper Eq. 6's
	// kernel-launch cost).
	KernelLaunch float64
	// SaturationFLOP is the per-kernel ramp-up cost expressed as lost
	// work: every kernel pays SaturationFLOP/PeakFLOPS seconds of
	// occupancy ramp, which is what penalizes micro-kernels and
	// produces the partition-count/time curves of paper Fig. 5.
	SaturationFLOP float64
}

// String returns "name (mem GiB)".
func (d Device) String() string {
	return fmt.Sprintf("%s (%.0f GiB)", d.Name, float64(d.MemBytes)/GiB)
}

// Byte-size helpers for profile literals and reports.
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
)

// pcie3x16 is the effective bandwidth of a PCIe 3.0 x16 link. The
// nominal 15.75 GB/s is never reached; ~12 GB/s is what cudaMemcpyAsync
// sustains with pinned memory, the setting vDNN and TSPLIT assume.
const pcie3x16 = 12e9

// TitanRTX is the paper's first evaluation server (24 GB, 16.3 TFLOPS
// FP32, PCIe 3.0).
var TitanRTX = Device{
	Name:           "TITAN RTX",
	MemBytes:       24 * GiB,
	PeakFLOPS:      16.3e12,
	MemBandwidth:   672e9,
	PCIeBandwidth:  pcie3x16,
	KernelLaunch:   5e-6,
	SaturationFLOP: 4e9,
}

// GTX1080Ti is the paper's second server (11 GB, 11.34 TFLOPS — about
// 70% of the Titan RTX, as the paper notes for Fig. 13).
var GTX1080Ti = Device{
	Name:           "GTX 1080Ti",
	MemBytes:       11 * GiB,
	PeakFLOPS:      11.34e12,
	MemBandwidth:   484e9,
	PCIeBandwidth:  pcie3x16,
	KernelLaunch:   5e-6,
	SaturationFLOP: 2.8e9,
}

// V100 appears in the paper's Fig. 1 capacity lines (32 GB variant).
var V100 = Device{
	Name:           "V100",
	MemBytes:       32 * GiB,
	PeakFLOPS:      15.7e12,
	MemBandwidth:   900e9,
	PCIeBandwidth:  pcie3x16,
	KernelLaunch:   5e-6,
	SaturationFLOP: 4e9,
}

// P100 appears in the paper's Fig. 1 capacity lines (16 GB variant).
var P100 = Device{
	Name:           "P100",
	MemBytes:       16 * GiB,
	PeakFLOPS:      10.6e12,
	MemBandwidth:   732e9,
	PCIeBandwidth:  pcie3x16,
	KernelLaunch:   5e-6,
	SaturationFLOP: 2.6e9,
}

// RTX2080Ti completes the Fig. 1 GPU set (11 GB).
var RTX2080Ti = Device{
	Name:           "RTX 2080Ti",
	MemBytes:       11 * GiB,
	PeakFLOPS:      13.4e12,
	MemBandwidth:   616e9,
	PCIeBandwidth:  pcie3x16,
	KernelLaunch:   5e-6,
	SaturationFLOP: 3.4e9,
}

// All lists the built-in profiles.
var All = []Device{TitanRTX, GTX1080Ti, V100, P100, RTX2080Ti}

// ByName returns the profile with the given name.
func ByName(name string) (Device, error) {
	for _, d := range All {
		if d.Name == name {
			return d, nil
		}
	}
	return Device{}, fmt.Errorf("device: unknown profile %q", name)
}
