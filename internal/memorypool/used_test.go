package memorypool

import "testing"

// lcg is a tiny deterministic generator so the differential test never
// depends on math/rand's sequence or a wall-clock seed.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r) >> 11
}

// TestUsedTableDifferential drives the open-addressing table and a
// plain map through the same randomized put/get/del workload and
// insists they agree at every step — in particular across backward-
// shift deletions, growth, and re-insertion of deleted keys.
func TestUsedTableDifferential(t *testing.T) {
	var u usedTable
	ref := map[int64]int64{}
	keys := make([]int64, 0, 4096)
	rng := lcg(42)

	for step := 0; step < 200000; step++ {
		op := rng.next() % 10
		switch {
		case op < 5 || len(keys) == 0: // put
			off := int64(rng.next()%4096) * Alignment
			size := int64(rng.next()%64+1) * Alignment
			if _, dup := ref[off]; dup {
				continue // pool never re-puts a live offset
			}
			u.put(off, size)
			ref[off] = size
			keys = append(keys, off)
		case op < 8: // del
			i := int(rng.next()) % len(keys)
			off := keys[i]
			got, ok := u.del(off)
			want, wok := ref[off]
			if ok != wok || got != want {
				t.Fatalf("step %d: del(%d) = (%d,%v), want (%d,%v)", step, off, got, ok, want, wok)
			}
			delete(ref, off)
			keys[i] = keys[len(keys)-1]
			keys = keys[:len(keys)-1]
		default: // get (live or random)
			off := int64(rng.next()%4096) * Alignment
			got, ok := u.get(off)
			want, wok := ref[off]
			if ok != wok || got != want {
				t.Fatalf("step %d: get(%d) = (%d,%v), want (%d,%v)", step, off, got, ok, want, wok)
			}
		}
		if u.len() != len(ref) {
			t.Fatalf("step %d: len %d, want %d", step, u.len(), len(ref))
		}
	}

	// Drain everything and verify emptiness.
	for _, off := range keys {
		got, ok := u.del(off)
		if !ok || got != ref[off] {
			t.Fatalf("drain del(%d) = (%d,%v), want (%d,true)", off, got, ok, ref[off])
		}
	}
	if u.len() != 0 {
		t.Fatalf("drained table has len %d", u.len())
	}
	if _, ok := u.get(0); ok {
		t.Fatal("empty table reported a hit")
	}
	if _, ok := u.del(0); ok {
		t.Fatal("empty table deleted a key")
	}
}

func TestUsedTableOffsetsAndReset(t *testing.T) {
	var u usedTable
	for i := int64(0); i < 100; i++ {
		u.put(i*Alignment, Alignment)
	}
	offs := u.appendOffsets(nil)
	if len(offs) != 100 {
		t.Fatalf("appendOffsets returned %d entries, want 100", len(offs))
	}
	seen := map[int64]bool{}
	for _, off := range offs {
		if seen[off] {
			t.Fatalf("duplicate offset %d", off)
		}
		seen[off] = true
		if off%Alignment != 0 || off < 0 || off >= 100*Alignment {
			t.Fatalf("unexpected offset %d", off)
		}
	}
	u.reset()
	if u.len() != 0 || len(u.appendOffsets(nil)) != 0 {
		t.Fatal("reset did not empty the table")
	}
	u.put(7*Alignment, 2*Alignment)
	if sz, ok := u.get(7 * Alignment); !ok || sz != 2*Alignment {
		t.Fatal("put after reset lost the entry")
	}
}

func TestPoolResetTo(t *testing.T) {
	p := New(1<<20, BestFit)
	b, err := p.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	p.FreeBlock(b)
	if _, err := p.Alloc(1 << 21); err == nil {
		t.Fatal("expected failure alloc")
	}
	p.ResetTo(1<<21, FirstFit)
	st := p.Stats()
	if st != (Stats{Capacity: 1 << 21, FreeBlocks: 1, LargestFree: 1 << 21}) {
		t.Fatalf("ResetTo left stats %+v", st)
	}
	if _, err := p.Alloc(1 << 20); err != nil {
		t.Fatalf("alloc after ResetTo: %v", err)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
