package memorypool

import (
	"testing"
	"testing/quick"
)

func TestAllocFree(t *testing.T) {
	p := New(1<<20, BestFit)
	b1, err := p.Alloc(1000)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Size != align(1000) {
		t.Fatalf("size %d", b1.Size)
	}
	if p.InUse() != b1.Size {
		t.Fatalf("in use %d", p.InUse())
	}
	p.FreeBlock(b1)
	if p.InUse() != 0 {
		t.Fatalf("in use after free %d", p.InUse())
	}
	st := p.Stats()
	if st.Allocs != 1 || st.Frees != 1 || st.FreeBlocks != 1 || st.LargestFree != 1<<20 {
		t.Fatalf("stats %+v", st)
	}
}

func TestOOM(t *testing.T) {
	p := New(4096, BestFit)
	if _, err := p.Alloc(8192); err == nil {
		t.Fatal("expected OOM")
	}
	if p.Stats().Failures != 1 {
		t.Fatal("failure not counted")
	}
}

func TestBestFitPicksSmallestHole(t *testing.T) {
	p := New(1<<20, BestFit)
	a, _ := p.Alloc(1024)
	b, _ := p.Alloc(4096)
	c, _ := p.Alloc(1024)
	d, _ := p.Alloc(2048)
	e, _ := p.Alloc(1024) // guard so d's hole stays 2048
	_, _, _ = a, c, e
	p.FreeBlock(b) // 4096 hole
	p.FreeBlock(d) // 2048 hole
	got, err := p.Alloc(2048)
	if err != nil {
		t.Fatal(err)
	}
	if got.Offset != d.Offset {
		t.Fatalf("best-fit chose offset %d, want the 2048 hole at %d", got.Offset, d.Offset)
	}
}

func TestCoalescing(t *testing.T) {
	p := New(1<<20, BestFit)
	var blocks []Block
	for i := 0; i < 8; i++ {
		b, err := p.Alloc(1 << 10)
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, b)
	}
	// Free in interleaved order; all must coalesce back into one block
	// (plus the arena tail, coalesced too).
	for _, i := range []int{1, 3, 5, 7, 0, 2, 4, 6} {
		p.FreeBlock(blocks[i])
	}
	if st := p.Stats(); st.FreeBlocks != 1 || st.LargestFree != 1<<20 {
		t.Fatalf("not coalesced: %+v", st)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	p := New(1<<20, BestFit)
	b, _ := p.Alloc(512)
	p.FreeBlock(b)
	defer func() {
		if recover() == nil {
			t.Fatal("double free must panic")
		}
	}()
	p.FreeBlock(b)
}

func TestHugeAllocationsSegregateAtTop(t *testing.T) {
	cap := int64(1 << 20)
	p := New(cap, BestFit)
	small, _ := p.Alloc(1024)
	huge, err := p.Alloc(cap / hugeFraction) // at the threshold
	if err != nil {
		t.Fatal(err)
	}
	if huge.Offset+huge.Size != cap {
		t.Fatalf("huge block at %d, want top of arena", huge.Offset)
	}
	if small.Offset != 0 {
		t.Fatalf("small block at %d, want bottom", small.Offset)
	}
}

func TestSplitUsedAndIndependentFrees(t *testing.T) {
	p := New(1<<20, BestFit)
	b, _ := p.Alloc(10_000)
	parts, err := p.SplitUsed(b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("%d parts", len(parts))
	}
	var total int64
	for i, part := range parts {
		total += part.Size
		if i > 0 && parts[i-1].Offset+parts[i-1].Size != part.Offset {
			t.Fatal("parts not contiguous")
		}
	}
	if total != b.Size {
		t.Fatalf("parts cover %d of %d", total, b.Size)
	}
	p.FreeBlock(parts[1]) // middle part frees independently
	if p.InUse() != b.Size-parts[1].Size {
		t.Fatalf("in use %d", p.InUse())
	}
	p.FreeBlock(parts[0])
	p.FreeBlock(parts[2])
	if p.InUse() != 0 {
		t.Fatal("leak after freeing all parts")
	}
}

func TestSplitUsedErrors(t *testing.T) {
	p := New(1<<20, BestFit)
	if _, err := p.SplitUsed(Block{Offset: 4096}, 2); err == nil {
		t.Error("splitting unallocated block should fail")
	}
	b, _ := p.Alloc(Alignment)
	if _, err := p.SplitUsed(b, 2); err == nil {
		t.Error("splitting a minimal block should fail")
	}
}

func TestMergeUsed(t *testing.T) {
	p := New(1<<20, BestFit)
	b, _ := p.Alloc(8192)
	parts, _ := p.SplitUsed(b, 4)
	merged, ok := p.MergeUsed(parts)
	if !ok {
		t.Fatal("adjacent parts should merge")
	}
	if merged.Offset != b.Offset || merged.Size != b.Size {
		t.Fatalf("merged = %+v, want %+v", merged, b)
	}
	p.FreeBlock(merged)
	if p.InUse() != 0 {
		t.Fatal("leak")
	}
}

func TestMergeUsedRejectsNonAdjacent(t *testing.T) {
	p := New(1<<20, BestFit)
	a, _ := p.Alloc(1024)
	p.Alloc(1024) // spacer
	c, _ := p.Alloc(1024)
	if _, ok := p.MergeUsed([]Block{a, c}); ok {
		t.Fatal("non-adjacent blocks must not merge")
	}
	if p.InUse() != 3*1024 {
		t.Fatal("failed merge must leave pool unchanged")
	}
}

func TestAllocAt(t *testing.T) {
	p := New(1<<20, BestFit)
	b, _ := p.Alloc(4096)
	p.FreeBlock(b)
	got, err := p.AllocAt(b.Offset, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if got.Offset != b.Offset {
		t.Fatalf("offset %d", got.Offset)
	}
	if _, err := p.AllocAt(b.Offset, 4096); err == nil {
		t.Fatal("occupied range must fail")
	}
}

func TestAllocAtCarvesMiddle(t *testing.T) {
	p := New(1<<20, BestFit)
	if _, err := p.AllocAt(8192, 4096); err != nil {
		t.Fatal(err)
	}
	// Head and tail remain allocatable.
	if _, err := p.AllocAt(0, 8192); err != nil {
		t.Fatal("head should be free:", err)
	}
	if _, err := p.AllocAt(8192+4096, 4096); err != nil {
		t.Fatal("tail should be free:", err)
	}
}

func TestCompact(t *testing.T) {
	p := New(1<<20, BestFit)
	var blocks []Block
	for i := 0; i < 10; i++ {
		b, _ := p.Alloc(1 << 10)
		blocks = append(blocks, b)
	}
	for i := 1; i < 10; i += 2 {
		p.FreeBlock(blocks[i])
	}
	remap, moved := p.Compact()
	if moved == 0 {
		t.Fatal("expected data movement")
	}
	// Every surviving block is remapped and the pool is hole-free.
	off := int64(0)
	for i := 0; i < 10; i += 2 {
		no, ok := remap[blocks[i].Offset]
		if !ok {
			t.Fatalf("block %d missing from remap", i)
		}
		if no != off {
			t.Fatalf("block %d at %d, want %d", i, no, off)
		}
		off += blocks[i].Size
	}
	if st := p.Stats(); st.FreeBlocks != 1 {
		t.Fatalf("still fragmented: %+v", st)
	}
}

func TestReset(t *testing.T) {
	p := New(1<<20, FirstFit)
	p.Alloc(1024)
	p.Reset()
	if p.InUse() != 0 || p.Stats().LargestFree != 1<<20 {
		t.Fatal("reset did not empty the pool")
	}
}

// Property: any sequence of allocations within capacity followed by
// frees in arbitrary order restores a fully coalesced pool.
func TestQuickAllocFreeRestores(t *testing.T) {
	f := func(sizes []uint16, order uint8) bool {
		p := New(1<<22, BestFit)
		var blocks []Block
		for _, s := range sizes {
			b, err := p.Alloc(int64(s) + 1)
			if err != nil {
				break // pool full: fine
			}
			blocks = append(blocks, b)
		}
		// Free in a rotated order.
		n := len(blocks)
		for i := 0; i < n; i++ {
			p.FreeBlock(blocks[(i+int(order))%n])
		}
		st := p.Stats()
		return st.InUse == 0 && st.FreeBlocks == 1 && st.LargestFree == 1<<22
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: best-fit and first-fit both satisfy any request that fits
// in the largest free block.
func TestQuickStrategiesEquivalentFeasibility(t *testing.T) {
	f := func(a, b, c uint16) bool {
		for _, strat := range []Strategy{BestFit, FirstFit} {
			p := New(1<<20, strat)
			x, _ := p.Alloc(int64(a) + 1)
			if _, err := p.Alloc(int64(b) + 1); err != nil {
				return true
			}
			p.FreeBlock(x)
			if int64(c)+1 <= p.Stats().LargestFree {
				if _, err := p.Alloc(int64(c) + 1); err != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
