package memorypool

import (
	"strings"
	"testing"
)

func TestCheckInvariantsHealthy(t *testing.T) {
	p := New(1<<20, BestFit)
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("fresh pool: %v", err)
	}
	var blocks []Block
	for i := 0; i < 8; i++ {
		b, err := p.Alloc(int64(1000 * (i + 1)))
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, b)
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("after alloc %d: %v", i, err)
		}
	}
	// Free in an order that exercises coalescing on both sides.
	for _, i := range []int{1, 3, 2, 7, 0, 5, 6, 4} {
		p.FreeBlock(blocks[i])
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("after free %d: %v", i, err)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("drained pool: %v", err)
	}
}

func TestCheckInvariantsAfterSplitMergeCompact(t *testing.T) {
	p := New(1<<20, BestFit)
	b, err := p.Alloc(64 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := p.SplitUsed(b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("after split: %v", err)
	}
	if _, ok := p.MergeUsed(parts); !ok {
		t.Fatal("merge of contiguous parts failed")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("after merge: %v", err)
	}
	c, err := p.Alloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	p.FreeBlock(Block{Offset: b.Offset, Size: b.Size})
	_ = c
	p.Compact()
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("after compact: %v", err)
	}
}

// The corruption tests reach into the pool's private state: each one
// fabricates exactly the inconsistency CheckInvariants exists to catch.
func TestCheckInvariantsCorruption(t *testing.T) {
	mustFail := func(t *testing.T, p *Pool, wantSub string) {
		t.Helper()
		err := p.CheckInvariants()
		if err == nil {
			t.Fatal("corrupt pool passed CheckInvariants")
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("error %q does not mention %q", err, wantSub)
		}
	}

	t.Run("overlapping used blocks", func(t *testing.T) {
		p := New(1<<20, BestFit)
		b, _ := p.Alloc(4096)
		p.used.put(b.Offset+256, 4096)
		p.stats.InUse += 4096
		mustFail(t, p, "overlaps")
	})

	t.Run("in-use stat drift", func(t *testing.T) {
		p := New(1<<20, BestFit)
		_, _ = p.Alloc(4096)
		p.stats.InUse += 512
		mustFail(t, p, "InUse stat")
	})

	t.Run("uncoalesced free list", func(t *testing.T) {
		p := New(1<<20, BestFit)
		p.free = []freeBlock{{0, 4096}, {4096, p.capacity - 4096}}
		mustFail(t, p, "not coalesced")
	})

	t.Run("leaked bytes", func(t *testing.T) {
		p := New(1<<20, BestFit)
		b, _ := p.Alloc(4096)
		p.used.del(b.Offset)
		p.stats.InUse -= b.Size
		mustFail(t, p, "neither used nor free")
	})

	t.Run("unsorted free list", func(t *testing.T) {
		p := New(1<<20, BestFit)
		p.free = []freeBlock{{8192, 4096}, {0, 4096}}
		mustFail(t, p, "not sorted")
	})
}
