package memorypool

// usedTable maps block offset -> allocated size. It replaces the
// map[int64]int64 the pool originally used: the simulator's event loop
// allocates and frees on every scheduled op, and at a sub-millisecond
// budget the runtime map's hashing and bucket chasing dominated the
// profile. Open addressing with linear probing keeps each lookup to a
// multiply and a couple of cache lines, and backward-shift deletion
// (instead of tombstones) keeps probe chains short across the
// alloc/free churn of a full training iteration.
//
// Keys are stored as offset+1 so the zero slot means "empty"; offsets
// are always >= 0.
type usedTable struct {
	slots []usedSlot
	n     int
}

type usedSlot struct {
	key  int64 // offset+1; 0 = empty
	size int64
}

const minUsedSlots = 256

// home is the preferred slot for an offset. Offsets are 256-aligned,
// so the low 8 bits carry no information; fibonacci hashing on the
// shifted offset spreads the sequential allocation pattern.
func usedHome(off int64, mask int) int {
	h := uint64(off>>8) * 0x9E3779B97F4A7C15
	return int(h>>32) & mask
}

// init sizes the table for capHint entries at the <=50% load factor
// the table grows at; probe chains stay a couple of slots long even
// under the simulator's worst-case live-block count.
func (u *usedTable) init(capHint int) {
	n := minUsedSlots
	for n < capHint*2 {
		n *= 2
	}
	if len(u.slots) == n {
		u.reset()
		return
	}
	u.slots = make([]usedSlot, n)
	u.n = 0
}

// reset empties the table in place, keeping the slot array.
func (u *usedTable) reset() {
	if u.slots == nil {
		u.slots = make([]usedSlot, minUsedSlots)
	}
	if u.n != 0 {
		clear(u.slots)
	}
	u.n = 0
}

func (u *usedTable) len() int { return u.n }

func (u *usedTable) grow() {
	old := u.slots
	u.slots = make([]usedSlot, len(old)*2)
	u.n = 0
	for _, s := range old {
		if s.key != 0 {
			u.put(s.key-1, s.size)
		}
	}
}

func (u *usedTable) put(off, size int64) {
	if u.slots == nil {
		u.slots = make([]usedSlot, minUsedSlots)
	}
	if (u.n+1)*2 > len(u.slots) {
		u.grow()
	}
	mask := len(u.slots) - 1
	i := usedHome(off, mask)
	for {
		s := &u.slots[i]
		if s.key == 0 {
			s.key, s.size = off+1, size
			u.n++
			return
		}
		if s.key == off+1 {
			s.size = size
			return
		}
		i = (i + 1) & mask
	}
}

func (u *usedTable) get(off int64) (int64, bool) {
	if u.n == 0 {
		return 0, false
	}
	mask := len(u.slots) - 1
	i := usedHome(off, mask)
	for {
		s := u.slots[i]
		if s.key == 0 {
			return 0, false
		}
		if s.key == off+1 {
			return s.size, true
		}
		i = (i + 1) & mask
	}
}

// del removes an offset and returns its size. Backward-shift deletion:
// every entry in the probe chain after the hole moves back unless its
// home position lies cyclically within (hole, entry].
func (u *usedTable) del(off int64) (int64, bool) {
	if u.n == 0 {
		return 0, false
	}
	mask := len(u.slots) - 1
	i := usedHome(off, mask)
	for {
		s := u.slots[i]
		if s.key == 0 {
			return 0, false
		}
		if s.key == off+1 {
			break
		}
		i = (i + 1) & mask
	}
	size := u.slots[i].size
	u.n--
	j := i
	for {
		j = (j + 1) & mask
		if u.slots[j].key == 0 {
			break
		}
		h := usedHome(u.slots[j].key-1, mask)
		if i <= j {
			if i < h && h <= j {
				continue
			}
		} else if h > i || h <= j {
			continue
		}
		u.slots[i] = u.slots[j]
		i = j
	}
	u.slots[i] = usedSlot{}
	return size, true
}

// appendOffsets collects every allocated offset into dst. Order is
// unspecified; callers that need determinism sort the result.
func (u *usedTable) appendOffsets(dst []int64) []int64 {
	for _, s := range u.slots {
		if s.key != 0 {
			dst = append(dst, s.key-1)
		}
	}
	return dst
}
