// Package memorypool implements the pre-allocated device memory pool
// of paper Sec. V-D. TSPLIT's fine-grained scheduling allocates and
// frees tensors far more often than tensor-wise managers, so the real
// system replaces cudaMalloc/cudaFree with a pooled allocator; we do
// the same over a simulated address space. Best-fit placement (the
// paper's choice, to keep micro-tensors contiguous) and first-fit are
// both provided, and the pool tracks the statistics the experiments
// report: peak usage, current usage, allocation failures and external
// fragmentation.
package memorypool

import (
	"fmt"
	"sort"
)

// Strategy selects the free-block placement policy.
type Strategy int

const (
	// BestFit chooses the smallest free block that fits (paper default:
	// "we use best-fit memory allocation strategy ... to store
	// micro-tensors in contiguous chunks").
	BestFit Strategy = iota
	// FirstFit chooses the lowest-address block that fits (ablation).
	FirstFit
)

// String names the strategy.
func (s Strategy) String() string {
	if s == BestFit {
		return "best-fit"
	}
	return "first-fit"
}

// Alignment of every allocation, matching CUDA's 256-byte texture
// alignment that real allocators round to.
const Alignment = 256

// Block is an allocated region handed back to the caller.
type Block struct {
	Offset int64
	Size   int64 // aligned size actually reserved
}

// Stats summarizes pool behaviour over its lifetime.
type Stats struct {
	Capacity   int64
	InUse      int64
	Peak       int64
	Allocs     int64
	Frees      int64
	Failures   int64
	FreeBlocks int
	// LargestFree is the biggest free block; Capacity-InUse-LargestFree
	// measures external fragmentation.
	LargestFree int64
}

type freeBlock struct {
	off, size int64
}

// Pool is a best-fit/first-fit allocator over a fixed-size arena. It is
// not safe for concurrent use; the simulator drives it from one
// goroutine, as the real runtime drives its pool from the scheduling
// thread.
type Pool struct {
	capacity int64
	strategy Strategy
	free     []freeBlock // sorted by offset, coalesced
	used     usedTable
	stats    Stats

	// scratch reused across Compact calls so the simulator's
	// compaction path does not allocate fresh slices per event.
	offScratch  []int64
	sizeScratch []int64
}

// New creates a pool over an arena of the given capacity in bytes.
func New(capacity int64, strategy Strategy) *Pool {
	if capacity <= 0 {
		panic(fmt.Sprintf("memorypool: non-positive capacity %d", capacity))
	}
	p := &Pool{
		capacity: capacity,
		strategy: strategy,
		free:     []freeBlock{{0, capacity}},
	}
	p.used.init(0)
	return p
}

func align(n int64) int64 {
	if n <= 0 {
		return Alignment
	}
	return (n + Alignment - 1) &^ (Alignment - 1)
}

// Capacity returns the arena size.
func (p *Pool) Capacity() int64 { return p.capacity }

// InUse returns currently allocated bytes (aligned).
func (p *Pool) InUse() int64 { return p.stats.InUse }

// Free returns p.capacity - p.InUse().
func (p *Pool) Available() int64 { return p.capacity - p.stats.InUse }

// hugeFraction: allocations larger than capacity/hugeFraction are
// placed descending from the top of the arena, segregating the few
// huge blocks from the many small ones — the classic size-class
// mitigation against external fragmentation that real pooled DL
// allocators employ.
const hugeFraction = 16

// Alloc reserves size bytes and returns the block, or an error when no
// free block fits (the OOM signal the planner and Tables IV/V rely on).
func (p *Pool) Alloc(size int64) (Block, error) {
	size = align(size)
	idx := -1
	fromTop := size >= p.capacity/hugeFraction
	switch {
	case fromTop:
		// Highest-offset block that fits; carve from its end.
		for i := len(p.free) - 1; i >= 0; i-- {
			if p.free[i].size >= size {
				idx = i
				break
			}
		}
	case p.strategy == BestFit:
		var best int64 = 1<<63 - 1
		for i, fb := range p.free {
			if fb.size >= size && fb.size < best {
				best, idx = fb.size, i
			}
		}
	default: // FirstFit
		for i, fb := range p.free {
			if fb.size >= size {
				idx = i
				break
			}
		}
	}
	if idx == -1 {
		p.stats.Failures++
		return Block{}, fmt.Errorf("memorypool: OOM allocating %d bytes (in use %d of %d, largest free %d)",
			size, p.stats.InUse, p.capacity, p.largestFree())
	}
	fb := p.free[idx]
	var b Block
	switch {
	case fb.size == size:
		b = Block{Offset: fb.off, Size: size}
		p.free = append(p.free[:idx], p.free[idx+1:]...)
	case fromTop:
		b = Block{Offset: fb.off + fb.size - size, Size: size}
		p.free[idx] = freeBlock{fb.off, fb.size - size}
	default:
		b = Block{Offset: fb.off, Size: size}
		p.free[idx] = freeBlock{fb.off + size, fb.size - size}
	}
	p.used.put(b.Offset, size)
	p.stats.Allocs++
	p.stats.InUse += size
	if p.stats.InUse > p.stats.Peak {
		p.stats.Peak = p.stats.InUse
	}
	return b, nil
}

// FreeBlock returns a block to the pool, coalescing with neighbours.
// Freeing an offset that is not allocated panics: it is a scheduler
// bug, not a runtime condition.
func (p *Pool) FreeBlock(b Block) {
	size, ok := p.used.del(b.Offset)
	if !ok {
		panic(fmt.Sprintf("memorypool: free of unallocated offset %d", b.Offset))
	}
	p.stats.Frees++
	p.stats.InUse -= size

	i := sort.Search(len(p.free), func(i int) bool { return p.free[i].off > b.Offset })
	p.free = append(p.free, freeBlock{})
	copy(p.free[i+1:], p.free[i:])
	p.free[i] = freeBlock{b.Offset, size}
	// Coalesce with successor, then predecessor.
	if i+1 < len(p.free) && p.free[i].off+p.free[i].size == p.free[i+1].off {
		p.free[i].size += p.free[i+1].size
		p.free = append(p.free[:i+1], p.free[i+2:]...)
	}
	if i > 0 && p.free[i-1].off+p.free[i-1].size == p.free[i].off {
		p.free[i-1].size += p.free[i].size
		p.free = append(p.free[:i], p.free[i+1:]...)
	}
}

// AllocAt reserves size bytes at an exact offset, failing when any of
// that range is not free. The split runtime uses it to place output
// micro-tensors into just-freed input micro-slots, guaranteeing an
// in-place merge (paper Sec. V-C / Fig. 8 memory reuse).
func (p *Pool) AllocAt(offset, size int64) (Block, error) {
	size = align(size)
	for i, fb := range p.free {
		if fb.off > offset || fb.off+fb.size < offset+size {
			continue
		}
		// Carve [offset, offset+size) out of fb.
		tail := freeBlock{offset + size, fb.off + fb.size - offset - size}
		head := freeBlock{fb.off, offset - fb.off}
		repl := p.free[:i]
		repl = append(repl, p.free[i+1:]...)
		p.free = repl
		if head.size > 0 {
			p.insertFree(head)
		}
		if tail.size > 0 {
			p.insertFree(tail)
		}
		p.used.put(offset, size)
		p.stats.Allocs++
		p.stats.InUse += size
		if p.stats.InUse > p.stats.Peak {
			p.stats.Peak = p.stats.InUse
		}
		return Block{Offset: offset, Size: size}, nil
	}
	p.stats.Failures++
	return Block{}, fmt.Errorf("memorypool: range [%d,%d) not free", offset, offset+size)
}

func (p *Pool) insertFree(fb freeBlock) {
	i := sort.Search(len(p.free), func(i int) bool { return p.free[i].off > fb.off })
	p.free = append(p.free, freeBlock{})
	copy(p.free[i+1:], p.free[i:])
	p.free[i] = fb
}

// SplitUsed partitions an allocated block into n consecutive
// sub-blocks that can then be freed independently — the in-place
// tensor split of paper Sec. V-C ("share the same tensor with
// different pointer address"). Sub-block boundaries are aligned; the
// last sub-block absorbs the remainder.
func (p *Pool) SplitUsed(b Block, n int) ([]Block, error) {
	return p.SplitUsedInto(b, n, nil)
}

// SplitUsedInto is SplitUsed appending into dst (typically a reused
// buffer resliced to [:0]), so the simulator's split hot path does not
// allocate a fresh slice per split op.
func (p *Pool) SplitUsedInto(b Block, n int, dst []Block) ([]Block, error) {
	size, ok := p.used.get(b.Offset)
	if !ok {
		return nil, fmt.Errorf("memorypool: SplitUsed of unallocated offset %d", b.Offset)
	}
	if n < 1 || int64(n)*Alignment > size {
		return nil, fmt.Errorf("memorypool: cannot split %d bytes into %d parts", size, n)
	}
	part := align(size / int64(n))
	p.used.del(b.Offset)
	off := b.Offset
	for i := 0; i < n; i++ {
		sz := part
		if i == n-1 {
			sz = b.Offset + size - off
		}
		dst = append(dst, Block{Offset: off, Size: sz})
		p.used.put(off, sz)
		off += sz
	}
	return dst, nil
}

// MergeUsed fuses allocated blocks into one when they are contiguous
// and ascending — the in-place merge. It reports ok=false (and leaves
// the pool unchanged) when the blocks are not adjacent, in which case
// the caller must perform a physical merge copy.
func (p *Pool) MergeUsed(blocks []Block) (Block, bool) {
	if len(blocks) == 0 {
		return Block{}, false
	}
	for i := 1; i < len(blocks); i++ {
		if blocks[i-1].Offset+blocks[i-1].Size != blocks[i].Offset {
			return Block{}, false
		}
	}
	var total int64
	for _, b := range blocks {
		sz, ok := p.used.get(b.Offset)
		if !ok || sz != b.Size {
			return Block{}, false
		}
		total += sz
	}
	for _, b := range blocks {
		p.used.del(b.Offset)
	}
	merged := Block{Offset: blocks[0].Offset, Size: total}
	p.used.put(merged.Offset, total)
	return merged, true
}

func (p *Pool) largestFree() int64 {
	var max int64
	for _, fb := range p.free {
		if fb.size > max {
			max = fb.size
		}
	}
	return max
}

// CheckInvariants audits the pool's internal structures: the free list
// must be offset-sorted, positive-sized, coalesced, and in-arena; used
// blocks must not overlap each other or any free block; and every byte
// of the arena must be accounted for exactly once. The plan verifier
// calls it after every replayed allocation step, so a corruption is
// reported at the event that introduced it rather than at teardown.
func (p *Pool) CheckInvariants() error {
	type ext struct {
		off, size int64
		used      bool
	}
	exts := make([]ext, 0, len(p.free)+p.used.len())
	for i, fb := range p.free {
		if fb.size <= 0 {
			return fmt.Errorf("memorypool: free block %d at offset %d has non-positive size %d", i, fb.off, fb.size)
		}
		if i > 0 && p.free[i-1].off >= fb.off {
			return fmt.Errorf("memorypool: free list not sorted at index %d (%d >= %d)", i, p.free[i-1].off, fb.off)
		}
		if i > 0 && p.free[i-1].off+p.free[i-1].size == fb.off {
			return fmt.Errorf("memorypool: free blocks at %d and %d are adjacent but not coalesced", p.free[i-1].off, fb.off)
		}
		exts = append(exts, ext{fb.off, fb.size, false})
	}
	var inUse int64
	offs := p.used.appendOffsets(make([]int64, 0, p.used.len()))
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	for _, off := range offs {
		size, _ := p.used.get(off)
		if size <= 0 {
			return fmt.Errorf("memorypool: used block at offset %d has non-positive size %d", off, size)
		}
		inUse += size
		exts = append(exts, ext{off, size, true})
	}
	if inUse != p.stats.InUse {
		return fmt.Errorf("memorypool: InUse stat %d disagrees with used-block sum %d", p.stats.InUse, inUse)
	}
	sort.SliceStable(exts, func(i, j int) bool { return exts[i].off < exts[j].off })
	var cursor int64
	for _, e := range exts {
		if e.off < cursor {
			return fmt.Errorf("memorypool: extent at offset %d (size %d) overlaps the previous extent ending at %d", e.off, e.size, cursor)
		}
		if e.off > cursor {
			return fmt.Errorf("memorypool: %d bytes at offset %d tracked neither used nor free", e.off-cursor, cursor)
		}
		cursor = e.off + e.size
	}
	if cursor != p.capacity {
		return fmt.Errorf("memorypool: extents cover %d of %d bytes", cursor, p.capacity)
	}
	return nil
}

// Stats returns a snapshot of pool statistics.
func (p *Pool) Stats() Stats {
	s := p.stats
	s.Capacity = p.capacity
	s.FreeBlocks = len(p.free)
	s.LargestFree = p.largestFree()
	return s
}

// Reset returns the pool to its initial empty state, keeping lifetime
// counters (Allocs/Frees/Failures) intact.
func (p *Pool) Reset() {
	p.free = append(p.free[:0], freeBlock{0, p.capacity})
	p.used.reset()
	p.stats.InUse = 0
}

// ResetTo reinitializes the pool in place to a (possibly different)
// capacity and strategy with all statistics zeroed, as if freshly
// constructed by New — but reusing the free list and used-table
// storage. The pooled simulator calls this once per borrowed run, so a
// recycled arena reports the same Peak/Allocs/Frees a fresh one would.
func (p *Pool) ResetTo(capacity int64, strategy Strategy) {
	if capacity <= 0 {
		panic(fmt.Sprintf("memorypool: non-positive capacity %d", capacity))
	}
	p.capacity = capacity
	p.strategy = strategy
	p.free = append(p.free[:0], freeBlock{0, capacity})
	p.used.reset()
	p.stats = Stats{}
}

// DumpLayout renders the arena occupancy for diagnostics: each used
// and free extent in address order.
func (p *Pool) DumpLayout(maxRows int) string {
	type ext struct {
		off, size int64
		used      bool
	}
	var exts []ext
	for _, off := range p.used.appendOffsets(nil) {
		size, _ := p.used.get(off)
		exts = append(exts, ext{off, size, true})
	}
	for _, fb := range p.free {
		exts = append(exts, ext{fb.off, fb.size, false})
	}
	sort.Slice(exts, func(i, j int) bool { return exts[i].off < exts[j].off })
	var b []byte
	rows := 0
	for _, e := range exts {
		if rows >= maxRows {
			b = append(b, "...\n"...)
			break
		}
		tag := "free"
		if e.used {
			tag = "USED"
		}
		b = append(b, fmt.Sprintf("%12d %10.1f MiB %s\n", e.off, float64(e.size)/(1<<20), tag)...)
		rows++
	}
	return string(b)
}

// Compact repacks every allocated block to the bottom of the arena in
// address order, eliminating external fragmentation, and returns the
// offset remapping plus the bytes moved (the cost a runtime pays in
// device-to-device copies). Compaction is possible because the tensor
// abstraction above the pool owns every data pointer (sTensor
// indirection); real pooled DL allocators perform the same
// re-placement at synchronization points.
func (p *Pool) Compact() (remap map[int64]int64, moved int64) {
	offs := p.used.appendOffsets(p.offScratch[:0])
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	sizes := p.sizeScratch[:0]
	for _, off := range offs {
		sz, _ := p.used.get(off)
		sizes = append(sizes, sz)
	}
	remap = make(map[int64]int64, len(offs))
	p.used.reset()
	var cursor int64
	for i, off := range offs {
		size := sizes[i]
		remap[off] = cursor
		p.used.put(cursor, size)
		if off != cursor {
			moved += size
		}
		cursor += size
	}
	p.offScratch = offs[:0]
	p.sizeScratch = sizes[:0]
	p.free = p.free[:0]
	if cursor < p.capacity {
		p.free = append(p.free, freeBlock{cursor, p.capacity - cursor})
	}
	return remap, moved
}
