package baselines

import (
	"testing"

	"tsplit/internal/core"
	"tsplit/internal/device"
	"tsplit/internal/graph"
	"tsplit/internal/models"
	"tsplit/internal/profiler"
	"tsplit/internal/tensor"
)

func inputs(t *testing.T, model string, cfg models.Config) Inputs {
	t.Helper()
	g, err := models.Build(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := graph.BuildSchedule(g)
	if err != nil {
		t.Fatal(err)
	}
	lv := graph.AnalyzeLiveness(g, sched)
	return Inputs{G: g, Sched: sched, Lv: lv, Prof: profiler.New(device.TitanRTX, sched), Dev: device.TitanRTX}
}

func TestRegistryComplete(t *testing.T) {
	for _, n := range Names {
		if _, ok := Registry[n]; !ok {
			t.Errorf("policy %s missing from registry", n)
		}
	}
	if len(Registry) != len(Names) {
		t.Error("registry and names out of sync")
	}
}

func TestBaseIsEmpty(t *testing.T) {
	in := inputs(t, "vgg16", models.Config{BatchSize: 8})
	p, err := Base(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Tensors) != 0 || len(p.Splits) != 0 || p.OffloadOptimizer || p.ShardParams {
		t.Fatal("base plan must be empty")
	}
}

func TestVDNNConvSwapsConvInputsOnly(t *testing.T) {
	in := inputs(t, "vgg16", models.Config{BatchSize: 8})
	p, err := VDNNConv(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Tensors) == 0 {
		t.Fatal("no decisions")
	}
	for _, tp := range p.Tensors {
		if tp.Opt != core.Swap {
			t.Fatalf("%s planned %v, vdnn-conv only swaps", tp.Tensor.Name, tp.Opt)
		}
		consumedByConv := false
		for _, c := range tp.Tensor.Consumers {
			if c.Kind == graph.Conv2D {
				consumedByConv = true
			}
		}
		if !consumedByConv {
			t.Fatalf("%s is not a convolution input", tp.Tensor.Name)
		}
	}
}

func TestVDNNConvRejectsTransformer(t *testing.T) {
	in := inputs(t, "transformer", models.Config{BatchSize: 4, SeqLen: 32})
	if _, err := VDNNConv(in); err == nil {
		t.Fatal("vdnn-conv must reject conv-free models (paper's x)")
	}
	if _, err := SuperNeurons(in); err == nil {
		t.Fatal("superneurons must reject conv-free models (paper's x)")
	}
}

func TestVDNNAllSwapsEverythingEvictable(t *testing.T) {
	in := inputs(t, "vgg16", models.Config{BatchSize: 8})
	p, err := VDNNAll(in)
	if err != nil {
		t.Fatal(err)
	}
	conv, _ := VDNNConv(in)
	if len(p.Tensors) <= len(conv.Tensors) {
		t.Fatal("vdnn-all should swap strictly more than vdnn-conv")
	}
}

func TestCheckpointsKeepsSqrtBoundaries(t *testing.T) {
	in := inputs(t, "vgg16", models.Config{BatchSize: 8})
	p, err := Checkpoints(in)
	if err != nil {
		t.Fatal(err)
	}
	recomputed := 0
	for _, tp := range p.Tensors {
		if tp.Opt != core.Recompute {
			t.Fatalf("checkpoints planned %v", tp.Opt)
		}
		recomputed++
	}
	// Count backward-used forward activations; roughly 1/sqrt(n) of
	// them must reside as checkpoints.
	total := 0
	for _, op := range in.Sched.Ops {
		if op.Phase != graph.Forward {
			continue
		}
		for _, x := range op.Outputs {
			if x.Kind == tensor.FeatureMap && backwardUsed(x) {
				total++
			}
		}
	}
	if recomputed >= total {
		t.Fatal("no checkpoints kept")
	}
	if recomputed == 0 {
		t.Fatal("nothing recomputed")
	}
}

func TestSuperNeuronsPolicyByLayerType(t *testing.T) {
	in := inputs(t, "resnet50", models.Config{BatchSize: 8})
	p, err := SuperNeurons(in)
	if err != nil {
		t.Fatal(err)
	}
	swaps, recomputes := 0, 0
	for _, tp := range p.Tensors {
		prod := tp.Tensor.Producer
		switch tp.Opt {
		case core.Swap:
			swaps++
			if prod != nil && prod.Kind != graph.Conv2D {
				t.Fatalf("%s swapped but produced by %v", tp.Tensor.Name, prod.Kind)
			}
		case core.Recompute:
			recomputes++
			if prod == nil || !cheapToRecompute(prod.Kind) {
				t.Fatalf("%s recomputed but produced by %v", tp.Tensor.Name, prod)
			}
		}
	}
	if swaps == 0 || recomputes == 0 {
		t.Fatalf("superneurons: %d swaps, %d recomputes", swaps, recomputes)
	}
}

func TestOffloadFlags(t *testing.T) {
	in := inputs(t, "vgg16", models.Config{BatchSize: 8, Optimizer: graph.Adam})
	zo, err := ZeroOffload(in)
	if err != nil {
		t.Fatal(err)
	}
	if !zo.OffloadOptimizer || zo.ShardParams {
		t.Fatal("zero-offload flags wrong")
	}
	fs, err := FairScaleOffload(in)
	if err != nil {
		t.Fatal(err)
	}
	if !fs.ShardParams || !fs.OffloadOptimizer {
		t.Fatal("fairscale flags wrong")
	}
	if len(fs.Tensors) == 0 {
		t.Fatal("fairscale must also swap activations")
	}
}

func TestAllPlansHaveValidWindows(t *testing.T) {
	in := inputs(t, "resnet50", models.Config{BatchSize: 8})
	for name, planner := range Registry {
		p, err := planner(in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, tp := range p.Tensors {
			if tp.RestoreAt >= 0 && tp.RestoreAt <= tp.EvictAt {
				t.Fatalf("%s: %s windows inverted", name, tp.Tensor.Name)
			}
		}
	}
}
