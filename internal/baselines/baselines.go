// Package baselines implements the memory-management policies TSPLIT
// is evaluated against (paper Sec. VI-A):
//
//   - Base: store everything (common DL framework behaviour).
//   - vDNN-conv: swap the inputs of convolution layers.
//   - vDNN-all: swap all feature maps.
//   - Checkpoints: sqrt(N) gradient checkpointing (recompute).
//   - SuperNeurons: swap convolution outputs, recompute cheap layers,
//     LRU-managed recomputation.
//   - ZeRO-Offload: optimizer state and update on the CPU.
//   - FairScale-Offload: parameters sharded to the CPU and staged per
//     layer, activations swapped.
//
// Every baseline emits the same core.Plan representation TSPLIT's
// planner does and runs on the same runtime, so measured differences
// are policy differences — the comparison methodology of the paper.
package baselines

import (
	"fmt"
	"math"

	"tsplit/internal/core"
	"tsplit/internal/device"
	"tsplit/internal/graph"
	"tsplit/internal/profiler"
	"tsplit/internal/tensor"
)

// Inputs bundles what a baseline planner needs.
type Inputs struct {
	G     *graph.Graph
	Sched *graph.Schedule
	Lv    *graph.Liveness
	Prof  *profiler.Profile
	Dev   device.Device
}

// Planner produces a plan for a policy, or an error when the policy
// does not apply to the model (the × entries of Tables IV/V).
type Planner func(Inputs) (*core.Plan, error)

// Registry maps policy names to planners, in the paper's order.
var Registry = map[string]Planner{
	"base":              Base,
	"vdnn-conv":         VDNNConv,
	"vdnn-all":          VDNNAll,
	"checkpoints":       Checkpoints,
	"superneurons":      SuperNeurons,
	"zero-offload":      ZeroOffload,
	"fairscale-offload": FairScaleOffload,
}

// Names lists the policies in the paper's table order.
var Names = []string{"base", "vdnn-conv", "vdnn-all", "checkpoints", "superneurons", "zero-offload", "fairscale-offload"}

// backwardUsed reports whether t is consumed after the forward pass —
// only such tensors are worth evicting.
func backwardUsed(t *graph.Tensor) bool {
	for _, c := range t.Consumers {
		if c.Phase != graph.Forward {
			return true
		}
	}
	return false
}

// Base stores all feature maps and parameters (paper: "common DL
// systems (e.g., TensorFlow, PyTorch)").
func Base(in Inputs) (*core.Plan, error) {
	return core.NewPlan("base", in.Dev), nil
}

// VDNNConv virtualizes the inputs of convolution layers (vDNN's
// conv-only policy). Models without convolutions cannot benefit at
// all, which the paper marks ×.
func VDNNConv(in Inputs) (*core.Plan, error) {
	plan := core.NewPlan("vdnn-conv", in.Dev)
	found := false
	for _, op := range in.G.Ops {
		if op.Kind != graph.Conv2D || op.Phase != graph.Forward {
			continue
		}
		found = true
		for _, t := range op.Inputs {
			if t.Kind.Evictable() && backwardUsed(t) {
				plan.Tensors[t.ID] = core.TensorPlan{Tensor: t, Opt: core.Swap}
			}
		}
	}
	if !found {
		return nil, fmt.Errorf("baselines: vdnn-conv has no convolution layers to offload")
	}
	core.FinalizeWindows(in.G, in.Sched, in.Lv, in.Prof, plan)
	return plan, nil
}

// VDNNAll swaps every feature map regardless of demand (vDNN's
// all-layer policy — maximal scale, worst overhead).
func VDNNAll(in Inputs) (*core.Plan, error) {
	plan := core.NewPlan("vdnn-all", in.Dev)
	for _, t := range in.G.Tensors {
		if t.Kind.Evictable() && backwardUsed(t) {
			plan.Tensors[t.ID] = core.TensorPlan{Tensor: t, Opt: core.Swap}
		}
	}
	core.FinalizeWindows(in.G, in.Sched, in.Lv, in.Prof, plan)
	return plan, nil
}

// Checkpoints implements sqrt(N) gradient checkpointing (Chen et al.):
// forward activations are segmented; segment boundaries reside,
// interior activations are recomputed from the nearest boundary.
func Checkpoints(in Inputs) (*core.Plan, error) {
	plan := core.NewPlan("checkpoints", in.Dev)
	var acts []*graph.Tensor
	for _, op := range in.Sched.Ops {
		if op.Phase != graph.Forward {
			continue
		}
		for _, t := range op.Outputs {
			if t.Kind == tensor.FeatureMap && backwardUsed(t) {
				acts = append(acts, t)
			}
		}
	}
	if len(acts) == 0 {
		return plan, nil
	}
	seg := int(math.Ceil(math.Sqrt(float64(len(acts)))))
	for i, t := range acts {
		if (i+1)%seg == 0 {
			continue // checkpoint boundary resides
		}
		plan.Tensors[t.ID] = core.TensorPlan{Tensor: t, Opt: core.Recompute}
	}
	core.FinalizeWindows(in.G, in.Sched, in.Lv, in.Prof, plan)
	return plan, nil
}

// cheapToRecompute lists the layer types SuperNeurons regenerates
// instead of swapping.
func cheapToRecompute(k graph.OpKind) bool {
	switch k {
	case graph.ReLU, graph.GELU, graph.MaxPool, graph.AvgPool, graph.BatchNorm,
		graph.Dropout, graph.Scale, graph.Softmax:
		return true
	default:
		return false
	}
}

// SuperNeurons swaps convolution outputs and recomputes
// cheap-to-compute layers, by layer type (Wang et al.). Its LRU
// recomputation cache is selected in the runtime options. Without
// convolution layers there are no checkpoints to recompute from, which
// the paper marks ×.
func SuperNeurons(in Inputs) (*core.Plan, error) {
	plan := core.NewPlan("superneurons", in.Dev)
	hasConv := false
	for _, op := range in.Sched.Ops {
		if op.Phase != graph.Forward {
			continue
		}
		for _, t := range op.Outputs {
			if t.Kind != tensor.FeatureMap || !backwardUsed(t) {
				continue
			}
			switch {
			case op.Kind == graph.Conv2D:
				hasConv = true
				plan.Tensors[t.ID] = core.TensorPlan{Tensor: t, Opt: core.Swap}
			case cheapToRecompute(op.Kind):
				plan.Tensors[t.ID] = core.TensorPlan{Tensor: t, Opt: core.Recompute}
			}
		}
	}
	if !hasConv {
		return nil, fmt.Errorf("baselines: superneurons has no convolution layers as swap checkpoints")
	}
	// The staged input batch is also swapped once consumed.
	for _, t := range in.G.Inputs {
		if t.Kind.Evictable() && backwardUsed(t) {
			plan.Tensors[t.ID] = core.TensorPlan{Tensor: t, Opt: core.Swap}
		}
	}
	core.FinalizeWindows(in.G, in.Sched, in.Lv, in.Prof, plan)
	return plan, nil
}

// ZeroOffload keeps optimizer state and the parameter update on the
// CPU and streams parameter gradients out as produced (Ren et al.).
// Activations stay on the GPU, so CNN-scale gains are small — exactly
// the paper's Table VI observation.
func ZeroOffload(in Inputs) (*core.Plan, error) {
	plan := core.NewPlan("zero-offload", in.Dev)
	plan.OffloadOptimizer = true
	return plan, nil
}

// FairScaleOffload shards parameters to the CPU, staging each layer's
// weights around their uses, runs the optimizer on the CPU, and copies
// intermediate activations between CPU and GPU.
func FairScaleOffload(in Inputs) (*core.Plan, error) {
	plan := core.NewPlan("fairscale-offload", in.Dev)
	plan.ShardParams = true
	plan.OffloadOptimizer = true
	for _, t := range in.G.Tensors {
		if t.Kind == tensor.FeatureMap && backwardUsed(t) {
			plan.Tensors[t.ID] = core.TensorPlan{Tensor: t, Opt: core.Swap}
		}
	}
	core.FinalizeWindows(in.G, in.Sched, in.Lv, in.Prof, plan)
	return plan, nil
}
