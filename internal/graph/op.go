// Package graph implements the dataflow-graph (DFG) representation of
// DNN training used throughout TSPLIT (paper Sec. II): nodes are
// operations, edges are tensors. It provides builders for forward
// graphs, automatic generation of the backward (gradient) graph and
// optimizer updates, the depth-first execution scheduler of the paper's
// Algorithm 1, and the liveness analysis that yields per-operation
// memory requirements (paper Sec. IV-A).
package graph

import (
	"fmt"

	"tsplit/internal/tensor"
)

// OpKind enumerates every operator the model zoo and the augmented
// (post-planning) graphs use. Memory-management operators (SwapOut,
// SwapIn, SplitOp, MergeOp) are inserted by the planner's graph rewrite
// (paper Fig. 10) and never appear in user-built graphs.
type OpKind int

const (
	// --- compute operators (forward) ---
	Conv2D OpKind = iota
	MatMul
	BiasAdd
	ReLU
	GELU
	MaxPool
	AvgPool
	BatchNorm
	LayerNorm
	Softmax
	Dropout
	Add
	Concat
	Embedding
	CrossEntropy
	Scale
	Transpose
	Reshape

	// --- training operators ---
	GradOp    // backward of some forward op (see Op.FwdOp)
	SGDUpdate // parameter update: consumes param + param-grad

	// --- memory-management operators (inserted by planners) ---
	SwapOut   // device -> host copy, then free device copy
	SwapIn    // host -> device copy
	SplitOp   // carve a tensor into micro-tensors (possibly in place)
	MergeOp   // concatenate or reduce micro-tensors (possibly in place)
	Recompute // re-execution marker wrapping a forward subgraph op
)

// String returns the operator name used in traces and plans.
func (k OpKind) String() string {
	switch k {
	case Conv2D:
		return "conv2d"
	case MatMul:
		return "matmul"
	case BiasAdd:
		return "bias-add"
	case ReLU:
		return "relu"
	case GELU:
		return "gelu"
	case MaxPool:
		return "maxpool"
	case AvgPool:
		return "avgpool"
	case BatchNorm:
		return "batchnorm"
	case LayerNorm:
		return "layernorm"
	case Softmax:
		return "softmax"
	case Dropout:
		return "dropout"
	case Add:
		return "add"
	case Concat:
		return "concat"
	case Embedding:
		return "embedding"
	case CrossEntropy:
		return "cross-entropy"
	case Scale:
		return "scale"
	case Transpose:
		return "transpose"
	case Reshape:
		return "reshape"
	case GradOp:
		return "grad"
	case SGDUpdate:
		return "sgd-update"
	case SwapOut:
		return "swap-out"
	case SwapIn:
		return "swap-in"
	case SplitOp:
		return "split"
	case MergeOp:
		return "merge"
	case Recompute:
		return "recompute"
	default:
		return fmt.Sprintf("opkind(%d)", int(k))
	}
}

// Phase partitions the schedule into the forward pass, backward pass,
// and optimizer-update tail of one training iteration.
type Phase int

const (
	Forward Phase = iota
	Backward
	Update
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case Forward:
		return "forward"
	case Backward:
		return "backward"
	default:
		return "update"
	}
}

// Attrs carries the operator hyper-parameters needed by shape inference
// and the cost model. Only the fields relevant to an operator kind are
// set; the zero value is valid for element-wise operators.
type Attrs struct {
	KernelH, KernelW int     // convolution / pooling window
	StrideH, StrideW int     // convolution / pooling stride
	PadH, PadW       int     // symmetric padding
	Axis             int     // concat / split / softmax axis
	Prob             float64 // dropout keep probability
	Heads            int     // attention head count (for naming only)
}

// Tensor is an edge of the dataflow graph: a value produced by exactly
// one operator (or staged as a graph input/parameter) and consumed by
// zero or more operators. It carries metadata only; buffers live in the
// runtime.
type Tensor struct {
	ID    int
	Name  string
	Shape tensor.Shape
	DType tensor.DType
	Kind  tensor.Kind

	// Producer is the op whose output this tensor is, or nil for graph
	// inputs and parameters.
	Producer *Op
	// Consumers are the ops that read this tensor, in creation order.
	Consumers []*Op

	// GradOf links a Gradient/ParamGrad tensor back to the value it is
	// the gradient of; nil for non-gradient tensors.
	GradOf *Tensor

	// bytes caches Shape.Bytes(DType), computed once at construction
	// (graph.NewTensor) — Bytes() sits on the planner's hottest loops
	// and the shape walk is too expensive to repeat there. Zero for
	// hand-assembled tensors, which fall back to computing on demand.
	bytes int64
}

// Bytes returns the tensor's storage footprint.
func (t *Tensor) Bytes() int64 {
	if t.bytes != 0 {
		return t.bytes
	}
	return t.Shape.Bytes(t.DType)
}

// String renders "name kind shape (size)".
func (t *Tensor) String() string {
	return fmt.Sprintf("%s<%s,%s,%s>", t.Name, t.Kind, t.DType, t.Shape)
}

// Op is a node of the dataflow graph.
type Op struct {
	ID      int
	Name    string
	Kind    OpKind
	Phase   Phase
	Inputs  []*Tensor
	Outputs []*Tensor
	Attrs   Attrs

	// FwdOp links a GradOp back to the forward operator it
	// differentiates, and a Recompute op to the operator it re-executes.
	FwdOp *Op

	// Workspace is scratch memory the operator needs while executing
	// (e.g. im2col / FFT convolution buffers). It is allocated at op
	// start and freed at op end, and shrinks proportionally when the
	// operator is split (paper Sec. III-A).
	Workspace int64

	// ControlDeps are extra scheduling edges inserted by the planner's
	// graph rewrite (paper Sec. V-A: "additional control flow edges").
	// The op may not issue before every control dependency completes.
	ControlDeps []*Op
}

// String renders "name(kind)".
func (o *Op) String() string { return fmt.Sprintf("%s(%s)", o.Name, o.Kind) }

// HasInput reports whether t is one of o's data inputs.
func (o *Op) HasInput(t *Tensor) bool {
	for _, in := range o.Inputs {
		if in == t {
			return true
		}
	}
	return false
}

// HasOutput reports whether t is one of o's outputs.
func (o *Op) HasOutput(t *Tensor) bool {
	for _, out := range o.Outputs {
		if out == t {
			return true
		}
	}
	return false
}
