package graph

import (
	"fmt"

	"tsplit/internal/tensor"
)

// Graph is a dataflow graph for one training iteration. Build the
// forward pass with the builder methods, then call Differentiate to
// append the backward pass and optimizer updates.
//
// Graphs are not safe for concurrent mutation; build them in one
// goroutine and treat them as immutable afterwards (the planner and the
// simulator only read).
type Graph struct {
	Ops     []*Op
	Tensors []*Tensor

	// Inputs are the staged batch tensors (data, labels).
	Inputs []*Tensor
	// Params are the trainable parameters, in creation order.
	Params []*Tensor
	// OptStates are optimizer state tensors created by Differentiate.
	OptStates []*Tensor
	// Loss is the scalar training loss once the forward pass is built.
	Loss *Tensor

	nextTensorID int
	nextOpID     int
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// NewTensor creates a tensor registered with the graph. Most callers
// use the typed builders instead; the planner's rewrite uses this
// directly when materializing micro-tensors.
func (g *Graph) NewTensor(name string, shape tensor.Shape, dt tensor.DType, kind tensor.Kind) *Tensor {
	t := &Tensor{
		ID:    g.nextTensorID,
		Name:  name,
		Shape: shape.Clone(),
		DType: dt,
		Kind:  kind,
		bytes: shape.Bytes(dt),
	}
	g.nextTensorID++
	g.Tensors = append(g.Tensors, t)
	return t
}

// NewOp creates an operator registered with the graph and wires the
// producer/consumer links of its tensors.
func (g *Graph) NewOp(name string, kind OpKind, phase Phase, inputs, outputs []*Tensor, attrs Attrs) *Op {
	o := &Op{
		ID:      g.nextOpID,
		Name:    name,
		Kind:    kind,
		Phase:   phase,
		Inputs:  inputs,
		Outputs: outputs,
		Attrs:   attrs,
	}
	g.nextOpID++
	for _, in := range inputs {
		in.Consumers = append(in.Consumers, o)
	}
	for _, out := range outputs {
		if out.Producer != nil {
			panic(fmt.Sprintf("graph: tensor %s already has producer %s", out, out.Producer))
		}
		out.Producer = o
	}
	g.Ops = append(g.Ops, o)
	return o
}

// Input declares a staged batch tensor (e.g. an image batch).
func (g *Graph) Input(name string, shape tensor.Shape, dt tensor.DType) *Tensor {
	t := g.NewTensor(name, shape, dt, tensor.Input)
	g.Inputs = append(g.Inputs, t)
	return t
}

// Param declares a trainable parameter.
func (g *Graph) Param(name string, shape tensor.Shape) *Tensor {
	t := g.NewTensor(name, shape, tensor.Float32, tensor.Parameter)
	g.Params = append(g.Params, t)
	return t
}

func (g *Graph) feature(name string, shape tensor.Shape, dt tensor.DType) *Tensor {
	return g.NewTensor(name, shape, dt, tensor.FeatureMap)
}

// convOut returns the spatial output extent for a window op.
func convOut(in, kernel, stride, pad int) int {
	out := (in+2*pad-kernel)/stride + 1
	if out <= 0 {
		panic(fmt.Sprintf("graph: window op collapses extent %d (k=%d s=%d p=%d)", in, kernel, stride, pad))
	}
	return out
}

// Conv2D applies a square-kernel 2-D convolution with its own weight
// (OIHW) and bias to an NCHW activation and returns the NCHW output.
func (g *Graph) Conv2D(name string, x *Tensor, outC, kernel, stride, pad int) *Tensor {
	return g.Conv2DRect(name, x, outC, kernel, kernel, stride, stride, pad, pad)
}

// Conv2DRect is the general 2-D convolution (rectangular kernels such
// as Inception's 1×7/7×1 factorizations). Workspace models the
// per-sample im2col buffer of a GEMM-based convolution; it is the
// operator-workspace memory that the paper notes shrinks under split
// (Sec. III-A).
func (g *Graph) Conv2DRect(name string, x *Tensor, outC, kh, kw, sh, sw, ph, pw int) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := convOut(h, kh, sh, ph)
	ow := convOut(w, kw, sw, pw)
	weight := g.Param(name+".w", tensor.NewShape(outC, c, kh, kw))
	bias := g.Param(name+".b", tensor.NewShape(outC))
	y := g.feature(name+".y", tensor.NewShape(n, outC, oh, ow), x.DType)
	op := g.NewOp(name, Conv2D, Forward, []*Tensor{x, weight, bias}, []*Tensor{y}, Attrs{
		KernelH: kh, KernelW: kw, StrideH: sh, StrideW: sw, PadH: ph, PadW: pw,
	})
	op.Workspace = int64(c*kh*kw) * int64(oh*ow) * x.DType.Size()
	return y
}

// Dense applies y = x·W + b where x is [N, in] and W is [in, out].
func (g *Graph) Dense(name string, x *Tensor, outDim int) *Tensor {
	if x.Shape.Rank() != 2 {
		panic(fmt.Sprintf("graph: Dense wants rank-2 input, got %v", x.Shape))
	}
	n, in := x.Shape[0], x.Shape[1]
	weight := g.Param(name+".w", tensor.NewShape(in, outDim))
	bias := g.Param(name+".b", tensor.NewShape(outDim))
	y := g.feature(name+".y", tensor.NewShape(n, outDim), x.DType)
	g.NewOp(name, MatMul, Forward, []*Tensor{x, weight, bias}, []*Tensor{y}, Attrs{})
	return y
}

// MatMul3 multiplies batched rank-3 activations [B, M, K] × [B, K, N]
// (used inside attention, where both operands are activations).
func (g *Graph) MatMul3(name string, a, b *Tensor) *Tensor {
	if a.Shape.Rank() != 3 || b.Shape.Rank() != 3 {
		panic(fmt.Sprintf("graph: MatMul3 wants rank-3, got %v × %v", a.Shape, b.Shape))
	}
	if a.Shape[2] != b.Shape[1] || a.Shape[0] != b.Shape[0] {
		panic(fmt.Sprintf("graph: MatMul3 shape mismatch %v × %v", a.Shape, b.Shape))
	}
	y := g.feature(name+".y", tensor.NewShape(a.Shape[0], a.Shape[1], b.Shape[2]), a.DType)
	g.NewOp(name, MatMul, Forward, []*Tensor{a, b}, []*Tensor{y}, Attrs{})
	return y
}

// DenseSeq applies a dense projection to a sequence activation
// [N, S, in] with weight [in, out], the core op of Transformers.
func (g *Graph) DenseSeq(name string, x *Tensor, outDim int) *Tensor {
	if x.Shape.Rank() != 3 {
		panic(fmt.Sprintf("graph: DenseSeq wants rank-3 input, got %v", x.Shape))
	}
	n, s, in := x.Shape[0], x.Shape[1], x.Shape[2]
	weight := g.Param(name+".w", tensor.NewShape(in, outDim))
	bias := g.Param(name+".b", tensor.NewShape(outDim))
	y := g.feature(name+".y", tensor.NewShape(n, s, outDim), x.DType)
	g.NewOp(name, MatMul, Forward, []*Tensor{x, weight, bias}, []*Tensor{y}, Attrs{})
	return y
}

// ReLU applies the rectifier element-wise.
func (g *Graph) ReLU(name string, x *Tensor) *Tensor {
	y := g.feature(name+".y", x.Shape, x.DType)
	g.NewOp(name, ReLU, Forward, []*Tensor{x}, []*Tensor{y}, Attrs{})
	return y
}

// GELU applies the Gaussian error linear unit element-wise.
func (g *Graph) GELU(name string, x *Tensor) *Tensor {
	y := g.feature(name+".y", x.Shape, x.DType)
	g.NewOp(name, GELU, Forward, []*Tensor{x}, []*Tensor{y}, Attrs{})
	return y
}

// MaxPool applies max pooling over NCHW.
func (g *Graph) MaxPool(name string, x *Tensor, kernel, stride, pad int) *Tensor {
	return g.pool(name, MaxPool, x, kernel, stride, pad)
}

// AvgPool applies average pooling over NCHW. A kernel equal to the
// spatial extent implements global average pooling.
func (g *Graph) AvgPool(name string, x *Tensor, kernel, stride, pad int) *Tensor {
	return g.pool(name, AvgPool, x, kernel, stride, pad)
}

func (g *Graph) pool(name string, kind OpKind, x *Tensor, kernel, stride, pad int) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := convOut(h, kernel, stride, pad)
	ow := convOut(w, kernel, stride, pad)
	y := g.feature(name+".y", tensor.NewShape(n, c, oh, ow), x.DType)
	g.NewOp(name, kind, Forward, []*Tensor{x}, []*Tensor{y}, Attrs{
		KernelH: kernel, KernelW: kernel, StrideH: stride, StrideW: stride, PadH: pad, PadW: pad,
	})
	return y
}

// BatchNorm applies per-channel batch normalization to NCHW with
// learnable scale and shift.
func (g *Graph) BatchNorm(name string, x *Tensor) *Tensor {
	c := x.Shape[1]
	scale := g.Param(name+".scale", tensor.NewShape(c))
	shift := g.Param(name+".shift", tensor.NewShape(c))
	y := g.feature(name+".y", x.Shape, x.DType)
	g.NewOp(name, BatchNorm, Forward, []*Tensor{x, scale, shift}, []*Tensor{y}, Attrs{})
	return y
}

// LayerNorm normalizes the last axis with learnable gain and bias.
func (g *Graph) LayerNorm(name string, x *Tensor) *Tensor {
	d := x.Shape[x.Shape.Rank()-1]
	gamma := g.Param(name+".gamma", tensor.NewShape(d))
	beta := g.Param(name+".beta", tensor.NewShape(d))
	y := g.feature(name+".y", x.Shape, x.DType)
	g.NewOp(name, LayerNorm, Forward, []*Tensor{x, gamma, beta}, []*Tensor{y}, Attrs{})
	return y
}

// Softmax normalizes along axis.
func (g *Graph) Softmax(name string, x *Tensor, axis int) *Tensor {
	y := g.feature(name+".y", x.Shape, x.DType)
	g.NewOp(name, Softmax, Forward, []*Tensor{x}, []*Tensor{y}, Attrs{Axis: axis})
	return y
}

// Dropout applies (training-mode) dropout with keep probability keep.
func (g *Graph) Dropout(name string, x *Tensor, keep float64) *Tensor {
	y := g.feature(name+".y", x.Shape, x.DType)
	g.NewOp(name, Dropout, Forward, []*Tensor{x}, []*Tensor{y}, Attrs{Prob: keep})
	return y
}

// Add returns the element-wise sum of two same-shape activations
// (residual connections).
func (g *Graph) Add(name string, a, b *Tensor) *Tensor {
	if !a.Shape.Equal(b.Shape) {
		panic(fmt.Sprintf("graph: Add shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	y := g.feature(name+".y", a.Shape, a.DType)
	g.NewOp(name, Add, Forward, []*Tensor{a, b}, []*Tensor{y}, Attrs{})
	return y
}

// Concat concatenates activations along axis (Inception branches).
func (g *Graph) Concat(name string, axis int, xs ...*Tensor) *Tensor {
	if len(xs) == 0 {
		panic("graph: Concat of zero tensors")
	}
	shapes := make([]tensor.Shape, len(xs))
	for i, x := range xs {
		shapes[i] = x.Shape
	}
	out, err := tensor.Merge(shapes, axis)
	if err != nil {
		panic("graph: " + err.Error())
	}
	y := g.feature(name+".y", out, xs[0].DType)
	g.NewOp(name, Concat, Forward, xs, []*Tensor{y}, Attrs{Axis: axis})
	return y
}

// EmbeddingLookup gathers rows of a [vocab, dim] table for an [N, S]
// int tensor of token ids.
func (g *Graph) EmbeddingLookup(name string, ids *Tensor, vocab, dim int) *Tensor {
	table := g.Param(name+".table", tensor.NewShape(vocab, dim))
	n, s := ids.Shape[0], ids.Shape[1]
	y := g.feature(name+".y", tensor.NewShape(n, s, dim), tensor.Float32)
	g.NewOp(name, Embedding, Forward, []*Tensor{ids, table}, []*Tensor{y}, Attrs{})
	return y
}

// Reshape reinterprets x with a new shape of equal element count.
func (g *Graph) Reshape(name string, x *Tensor, shape tensor.Shape) *Tensor {
	if shape.NumElements() != x.Shape.NumElements() {
		panic(fmt.Sprintf("graph: Reshape element mismatch %v -> %v", x.Shape, shape))
	}
	y := g.feature(name+".y", shape, x.DType)
	g.NewOp(name, Reshape, Forward, []*Tensor{x}, []*Tensor{y}, Attrs{})
	return y
}

// Scale multiplies x by a scalar constant (e.g. 1/sqrt(d_k)).
func (g *Graph) Scale(name string, x *Tensor, factor float64) *Tensor {
	y := g.feature(name+".y", x.Shape, x.DType)
	g.NewOp(name, Scale, Forward, []*Tensor{x}, []*Tensor{y}, Attrs{Prob: factor})
	return y
}

// TransposeLast swaps the last two axes (for attention K^T).
func (g *Graph) TransposeLast(name string, x *Tensor) *Tensor {
	r := x.Shape.Rank()
	if r < 2 {
		panic(fmt.Sprintf("graph: TransposeLast wants rank>=2, got %v", x.Shape))
	}
	shape := x.Shape.Clone()
	shape[r-1], shape[r-2] = shape[r-2], shape[r-1]
	y := g.feature(name+".y", shape, x.DType)
	g.NewOp(name, Transpose, Forward, []*Tensor{x}, []*Tensor{y}, Attrs{})
	return y
}

// CrossEntropyLoss computes the scalar softmax-cross-entropy loss of
// logits against int labels and records it as the graph loss.
func (g *Graph) CrossEntropyLoss(name string, logits, labels *Tensor) *Tensor {
	loss := g.feature(name+".loss", tensor.NewShape(1), tensor.Float32)
	g.NewOp(name, CrossEntropy, Forward, []*Tensor{logits, labels}, []*Tensor{loss}, Attrs{})
	g.Loss = loss
	return loss
}

// FindTensor returns the tensor with the given id, or nil.
func (g *Graph) FindTensor(id int) *Tensor {
	for _, t := range g.Tensors {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// Stats summarizes a graph for reports and docs.
type Stats struct {
	Ops           int
	Tensors       int
	Params        int
	ParamBytes    int64
	FeatureBytes  int64 // total bytes of forward feature maps
	LargestTensor int64
}

// Stats computes summary statistics over the graph.
func (g *Graph) Stats() Stats {
	s := Stats{Ops: len(g.Ops), Tensors: len(g.Tensors), Params: len(g.Params)}
	for _, p := range g.Params {
		s.ParamBytes += p.Bytes()
	}
	for _, t := range g.Tensors {
		if t.Kind == tensor.FeatureMap {
			s.FeatureBytes += t.Bytes()
		}
		if b := t.Bytes(); b > s.LargestTensor {
			s.LargestTensor = b
		}
	}
	return s
}
