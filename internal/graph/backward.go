package graph

import (
	"fmt"

	"tsplit/internal/tensor"
)

// Optimizer selects the parameter-update rule appended by
// Differentiate. The choice matters to the memory experiments: Adam
// keeps two state tensors per parameter, which is exactly the memory
// that ZeRO-Offload moves to the CPU (paper Sec. VI-D).
type Optimizer int

const (
	// SGD is plain stochastic gradient descent with no optimizer state.
	SGD Optimizer = iota
	// Momentum keeps one state tensor per parameter.
	Momentum
	// Adam keeps two state tensors per parameter.
	Adam
)

// StateTensors returns how many per-parameter state tensors the
// optimizer maintains.
func (o Optimizer) StateTensors() int {
	switch o {
	case Momentum:
		return 1
	case Adam:
		return 2
	default:
		return 0
	}
}

// String names the optimizer.
func (o Optimizer) String() string {
	switch o {
	case SGD:
		return "sgd"
	case Momentum:
		return "momentum"
	default:
		return "adam"
	}
}

// savedForBackward returns the forward tensors the gradient of op needs
// as inputs. These references are what keep feature maps alive from the
// forward pass into the backward pass — the dominant memory cost the
// paper targets (Sec. II, Fig. 3).
func savedForBackward(op *Op) []*Tensor {
	switch op.Kind {
	case Conv2D:
		return []*Tensor{op.Inputs[0], op.Inputs[1]} // x, w
	case MatMul:
		return []*Tensor{op.Inputs[0], op.Inputs[1]} // a, b (or x, w)
	case ReLU, GELU:
		// Mask-from-input semantics (no in-place update), as in the
		// Caffe-lineage framework the paper builds on: the
		// pre-activation stays live until the backward pass.
		return []*Tensor{op.Inputs[0]}
	case Softmax, Dropout:
		return []*Tensor{op.Outputs[0]}
	case MaxPool:
		return []*Tensor{op.Inputs[0], op.Outputs[0]}
	case BatchNorm, LayerNorm:
		return []*Tensor{op.Inputs[0], op.Inputs[1]} // x, scale/gamma
	case Embedding:
		return []*Tensor{op.Inputs[0]} // ids
	case CrossEntropy:
		return []*Tensor{op.Inputs[0], op.Inputs[1]} // logits, labels
	default:
		return nil
	}
}

// needsGrad reports whether a gradient tensor must be produced for t,
// and of which kind.
func needsGrad(t *Tensor) (tensor.Kind, bool) {
	switch t.Kind {
	case tensor.FeatureMap:
		return tensor.Gradient, true
	case tensor.Parameter:
		return tensor.ParamGrad, true
	default:
		return 0, false
	}
}

// Differentiate appends the backward (gradient) graph and the optimizer
// update tail to a forward graph whose loss has been set by
// CrossEntropyLoss. It implements standard reverse-mode accumulation:
// forward ops are visited in reverse topological (creation) order, each
// contributing a GradOp whose inputs are the upstream gradient plus the
// saved forward tensors, with explicit Add ops where a tensor receives
// gradients from several consumers.
func (g *Graph) Differentiate(opt Optimizer) error {
	if g.Loss == nil {
		return fmt.Errorf("graph: Differentiate called before CrossEntropyLoss")
	}
	// gradOf maps a forward tensor to its (accumulated) gradient.
	gradOf := make(map[*Tensor]*Tensor)

	forward := make([]*Op, len(g.Ops))
	copy(forward, g.Ops)

	addGrad := func(t, gnew *Tensor) {
		prev, ok := gradOf[t]
		if !ok {
			gradOf[t] = gnew
			return
		}
		acc := g.NewTensor(t.Name+".gacc", t.Shape, t.DType, gnew.Kind)
		acc.GradOf = t
		g.NewOp("acc."+t.Name, Add, Backward, []*Tensor{prev, gnew}, []*Tensor{acc}, Attrs{})
		gradOf[t] = acc
	}

	for i := len(forward) - 1; i >= 0; i-- {
		op := forward[i]
		var upstream []*Tensor
		if op.Kind == CrossEntropy {
			// The loss op seeds backpropagation; its gradient is the
			// constant 1 and needs no tensor.
		} else {
			gout, ok := gradOf[op.Outputs[0]]
			if !ok {
				// Output unused on any path to the loss: no gradient
				// flows through this op.
				continue
			}
			upstream = []*Tensor{gout}
		}

		inputs := append(upstream, savedForBackward(op)...)
		var outputs []*Tensor
		var gradTargets []*Tensor
		for _, in := range op.Inputs {
			kind, ok := needsGrad(in)
			if !ok {
				continue
			}
			gt := g.NewTensor("d"+in.Name, in.Shape, in.DType, kind)
			gt.GradOf = in
			outputs = append(outputs, gt)
			gradTargets = append(gradTargets, in)
		}
		if len(outputs) == 0 {
			continue
		}
		gop := g.NewOp("d"+op.Name, GradOp, Backward, inputs, outputs, op.Attrs)
		gop.FwdOp = op
		// Conv backward needs a workspace comparable to forward's.
		gop.Workspace = op.Workspace
		for j, t := range gradTargets {
			addGrad(t, gop.Outputs[j])
		}
	}

	// Optimizer update tail: one update op per parameter, in reverse
	// creation order (gradients for late layers are ready first).
	for i := len(g.Params) - 1; i >= 0; i-- {
		p := g.Params[i]
		pg, ok := gradOf[p]
		if !ok {
			continue // frozen or unused parameter
		}
		ins := []*Tensor{p, pg}
		for s := 0; s < opt.StateTensors(); s++ {
			st := g.NewTensor(fmt.Sprintf("%s.opt%d", p.Name, s), p.Shape, p.DType, tensor.OptState)
			g.OptStates = append(g.OptStates, st)
			ins = append(ins, st)
		}
		g.NewOp("upd."+p.Name, SGDUpdate, Update, ins, nil, Attrs{})
	}
	return nil
}

// GradTensor returns the gradient tensor recorded for t after
// Differentiate, or nil. It resolves through the GradOf back-links, so
// it observes accumulated gradients.
func (g *Graph) GradTensor(t *Tensor) *Tensor {
	var last *Tensor
	for _, cand := range g.Tensors {
		if cand.GradOf == t {
			last = cand
		}
	}
	return last
}
