package graph

import (
	"fmt"
)

// Schedule is a total execution order over a graph's operators, built
// by the depth-first scheduler of the paper's Algorithm 1. Tensors are
// allocated at the start of their producer and freed after their last
// scheduled consumer (paper Sec. IV-A).
type Schedule struct {
	Ops   []*Op
	Index map[*Op]int
}

// BuildSchedule topologically orders the graph in the depth-first
// manner of Algorithm 1: each operator is pushed as soon as its last
// dependency retires, and its successors are explored depth-first in
// creation order. The result is deterministic for a given graph.
func BuildSchedule(g *Graph) (*Schedule, error) {
	// Dependency counts: data inputs with a producer + control deps.
	refcnt := make(map[*Op]int, len(g.Ops))
	// dependents[op] lists ops waiting on op, in creation order.
	dependents := make(map[*Op][]*Op, len(g.Ops))
	for _, op := range g.Ops {
		n := 0
		seen := make(map[*Op]bool)
		for _, in := range op.Inputs {
			if p := in.Producer; p != nil && !seen[p] {
				seen[p] = true
				n++
				dependents[p] = append(dependents[p], op)
			}
		}
		for _, dep := range op.ControlDeps {
			if !seen[dep] {
				seen[dep] = true
				n++
				dependents[dep] = append(dependents[dep], op)
			}
		}
		refcnt[op] = n
	}

	s := &Schedule{Index: make(map[*Op]int, len(g.Ops))}
	var visit func(op *Op)
	visit = func(op *Op) {
		s.Index[op] = len(s.Ops)
		s.Ops = append(s.Ops, op)
		for _, next := range dependents[op] {
			refcnt[next]--
			if refcnt[next] == 0 {
				visit(next)
			}
		}
	}
	for _, op := range g.Ops {
		if refcnt[op] == 0 {
			if _, done := s.Index[op]; !done {
				visit(op)
			}
		}
	}
	if len(s.Ops) != len(g.Ops) {
		return nil, fmt.Errorf("graph: schedule covered %d of %d ops (cycle via control deps?)", len(s.Ops), len(g.Ops))
	}
	return s, nil
}

// Liveness is the per-operation memory requirement of a schedule under
// the default (no memory optimization) execution model: every tensor
// resides on device from its producer to its last consumer, and
// parameters, optimizer state and staged inputs reside for the whole
// iteration.
type Liveness struct {
	Sched *Schedule
	// FirstUse is the schedule index at which the tensor is allocated
	// (its producer), or -1 for tensors resident from the start.
	FirstUse map[*Tensor]int
	// LastUse is the schedule index of the tensor's final consumer; for
	// resident tensors it is the final operation.
	LastUse map[*Tensor]int
	// MemAt[i] is the device memory (bytes) required while executing
	// schedule op i, including op i's workspace.
	MemAt []int64
	// Peak is the maximum of MemAt and PeakIdx its schedule position.
	Peak    int64
	PeakIdx int
	// Resident is the always-on-device footprint (params, opt state,
	// staged inputs).
	Resident int64
}

// AnalyzeLiveness computes tensor lifetimes and the memory-requirement
// curve M_i of paper Sec. IV-A for the given schedule.
func AnalyzeLiveness(g *Graph, s *Schedule) *Liveness {
	n := len(s.Ops)
	lv := &Liveness{
		Sched:    s,
		FirstUse: make(map[*Tensor]int, len(g.Tensors)),
		LastUse:  make(map[*Tensor]int, len(g.Tensors)),
		MemAt:    make([]int64, n),
	}
	// delta[i] accumulates alloc(+)/free(-) transitions at op i.
	delta := make([]int64, n+1)
	for _, t := range g.Tensors {
		first := -1
		if t.Producer != nil {
			first = s.Index[t.Producer]
		}
		last := first
		if first == -1 {
			last = n - 1
		}
		for _, c := range t.Consumers {
			if i := s.Index[c]; i > last {
				last = i
			}
		}
		lv.FirstUse[t] = first
		lv.LastUse[t] = last
		if first == -1 {
			lv.Resident += t.Bytes()
			continue
		}
		delta[first] += t.Bytes()
		delta[last+1] -= t.Bytes()
	}
	run := lv.Resident
	for i := 0; i < n; i++ {
		run += delta[i]
		lv.MemAt[i] = run + s.Ops[i].Workspace
		if lv.MemAt[i] > lv.Peak {
			lv.Peak = lv.MemAt[i]
			lv.PeakIdx = i
		}
	}
	return lv
}

// LiveAt reports whether t occupies device memory while op index i
// executes.
func (lv *Liveness) LiveAt(t *Tensor, i int) bool {
	first := lv.FirstUse[t]
	if first == -1 {
		return true
	}
	return first <= i && i <= lv.LastUse[t]
}
