package graph

import (
	"testing"

	"tsplit/internal/tensor"
)

// tinyMLP builds input -> dense -> relu -> dense -> loss.
func tinyMLP(t *testing.T, batch int, opt Optimizer) *Graph {
	t.Helper()
	g := New()
	x := g.Input("x", tensor.NewShape(batch, 8), tensor.Float32)
	labels := g.Input("labels", tensor.NewShape(batch), tensor.Int32)
	h := g.ReLU("fc1.relu", g.Dense("fc1", x, 16))
	logits := g.Dense("fc2", h, 4)
	g.CrossEntropyLoss("loss", logits, labels)
	if err := g.Differentiate(opt); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderShapes(t *testing.T) {
	g := New()
	x := g.Input("x", tensor.NewShape(2, 3, 8, 8), tensor.Float32)
	y := g.Conv2D("c", x, 4, 3, 1, 1)
	if !y.Shape.Equal(tensor.NewShape(2, 4, 8, 8)) {
		t.Fatalf("conv out %v", y.Shape)
	}
	p := g.MaxPool("p", y, 2, 2, 0)
	if !p.Shape.Equal(tensor.NewShape(2, 4, 4, 4)) {
		t.Fatalf("pool out %v", p.Shape)
	}
	s := g.Conv2DRect("r", x, 5, 1, 7, 1, 1, 0, 3)
	if !s.Shape.Equal(tensor.NewShape(2, 5, 8, 8)) {
		t.Fatalf("rect conv out %v", s.Shape)
	}
	a := g.AvgPool("gap", p, 4, 1, 0)
	if !a.Shape.Equal(tensor.NewShape(2, 4, 1, 1)) {
		t.Fatalf("gap out %v", a.Shape)
	}
}

func TestConv2DWorkspace(t *testing.T) {
	g := New()
	x := g.Input("x", tensor.NewShape(1, 3, 8, 8), tensor.Float32)
	y := g.Conv2D("c", x, 4, 3, 1, 1)
	op := y.Producer
	want := int64(3*3*3) * int64(8*8) * 4
	if op.Workspace != want {
		t.Fatalf("workspace %d, want %d", op.Workspace, want)
	}
}

func TestProducersAndConsumers(t *testing.T) {
	g := tinyMLP(t, 4, SGD)
	for _, op := range g.Ops {
		for _, out := range op.Outputs {
			if out.Producer != op {
				t.Fatalf("%s output %s has wrong producer", op, out)
			}
		}
		for _, in := range op.Inputs {
			found := false
			for _, c := range in.Consumers {
				if c == op {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s missing from consumers of %s", op, in)
			}
		}
	}
}

func TestDifferentiateProducesParamGrads(t *testing.T) {
	g := tinyMLP(t, 4, SGD)
	for _, p := range g.Params {
		if g.GradTensor(p) == nil {
			t.Errorf("no gradient for %s", p.Name)
		}
	}
}

func TestDifferentiateWithoutLoss(t *testing.T) {
	g := New()
	g.Input("x", tensor.NewShape(1, 2), tensor.Float32)
	if err := g.Differentiate(SGD); err == nil {
		t.Fatal("expected error without a loss")
	}
}

func TestOptimizerStates(t *testing.T) {
	for _, tc := range []struct {
		opt  Optimizer
		want int
	}{{SGD, 0}, {Momentum, 1}, {Adam, 2}} {
		g := tinyMLP(t, 2, tc.opt)
		if got := len(g.OptStates); got != tc.want*len(g.Params) {
			t.Errorf("%v: %d opt states, want %d", tc.opt, got, tc.want*len(g.Params))
		}
	}
}

func TestGradAccumulationForSharedTensor(t *testing.T) {
	// x feeds two branches that are added: its gradient must be
	// accumulated through an inserted Add op.
	g := New()
	x := g.Input("x", tensor.NewShape(2, 4), tensor.Float32)
	labels := g.Input("labels", tensor.NewShape(2), tensor.Int32)
	a := g.Dense("a", x, 4)
	b := g.ReLU("r", a)
	sum := g.Add("sum", a, b) // a consumed twice
	g.CrossEntropyLoss("loss", sum, labels)
	if err := g.Differentiate(SGD); err != nil {
		t.Fatal(err)
	}
	accFound := false
	for _, op := range g.Ops {
		if op.Kind == Add && op.Phase == Backward {
			accFound = true
		}
	}
	if !accFound {
		t.Fatal("no gradient-accumulation Add inserted")
	}
}

func TestScheduleRespectsDependencies(t *testing.T) {
	g := tinyMLP(t, 4, Momentum)
	s, err := BuildSchedule(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range g.Ops {
		for _, in := range op.Inputs {
			if p := in.Producer; p != nil && s.Index[p] >= s.Index[op] {
				t.Fatalf("%s before its producer %s", op, p)
			}
		}
	}
}

func TestScheduleControlDeps(t *testing.T) {
	g := New()
	x := g.Input("x", tensor.NewShape(2, 4), tensor.Float32)
	a := g.ReLU("a", x)
	b := g.ReLU("b", x)
	// Force b after a via control edge even though data allows any order.
	b.Producer.ControlDeps = append(b.Producer.ControlDeps, a.Producer)
	s, err := BuildSchedule(g)
	if err != nil {
		t.Fatal(err)
	}
	if s.Index[a.Producer] >= s.Index[b.Producer] {
		t.Fatal("control dependency not honored")
	}
}

func TestScheduleDetectsCycle(t *testing.T) {
	g := New()
	x := g.Input("x", tensor.NewShape(2, 4), tensor.Float32)
	a := g.ReLU("a", x)
	b := g.ReLU("b", a)
	// Introduce a control cycle a -> b -> a.
	a.Producer.ControlDeps = append(a.Producer.ControlDeps, b.Producer)
	if _, err := BuildSchedule(g); err == nil {
		t.Fatal("cycle must fail scheduling")
	}
}

func TestLivenessBasics(t *testing.T) {
	g := tinyMLP(t, 4, SGD)
	s, _ := BuildSchedule(g)
	lv := AnalyzeLiveness(g, s)
	// Parameters are resident for the whole run.
	for _, p := range g.Params {
		if lv.FirstUse[p] != -1 {
			t.Fatalf("param %s not resident", p.Name)
		}
		if !lv.LiveAt(p, 0) || !lv.LiveAt(p, len(s.Ops)-1) {
			t.Fatalf("param %s liveness wrong", p.Name)
		}
	}
	// The loss dies at its last consumer.
	if lv.Peak <= lv.Resident {
		t.Fatal("peak must exceed the resident footprint")
	}
	// Memory curve is consistent with LiveAt.
	for i := range s.Ops {
		var sum int64
		for _, tt := range g.Tensors {
			if lv.LiveAt(tt, i) {
				sum += tt.Bytes()
			}
		}
		if sum+s.Ops[i].Workspace != lv.MemAt[i] {
			t.Fatalf("MemAt[%d] = %d, recomputed %d", i, lv.MemAt[i], sum+s.Ops[i].Workspace)
		}
	}
}

func TestLivenessActivationSpansToBackward(t *testing.T) {
	g := tinyMLP(t, 4, SGD)
	s, _ := BuildSchedule(g)
	lv := AnalyzeLiveness(g, s)
	// fc1's input (x) is saved for the backward matmul: its last use
	// must be in the backward phase.
	var relu *Tensor
	for _, tt := range g.Tensors {
		if tt.Name == "fc1.relu.y" {
			relu = tt
		}
	}
	if relu == nil {
		t.Fatal("fc1.relu.y not found")
	}
	if s.Ops[lv.LastUse[relu]].Phase != Backward {
		t.Fatal("activation should live into the backward pass")
	}
}

func TestStats(t *testing.T) {
	g := tinyMLP(t, 4, SGD)
	st := g.Stats()
	if st.Ops != len(g.Ops) || st.Tensors != len(g.Tensors) || st.Params != len(g.Params) {
		t.Fatalf("stats %+v inconsistent", st)
	}
	if st.ParamBytes <= 0 || st.FeatureBytes <= 0 || st.LargestTensor <= 0 {
		t.Fatalf("stats %+v has empty fields", st)
	}
}

func TestFindTensor(t *testing.T) {
	g := tinyMLP(t, 4, SGD)
	want := g.Tensors[3]
	if got := g.FindTensor(want.ID); got != want {
		t.Fatal("FindTensor by id failed")
	}
	if g.FindTensor(99999) != nil {
		t.Fatal("unknown id should be nil")
	}
}

func TestDoubleProducerPanics(t *testing.T) {
	g := New()
	x := g.Input("x", tensor.NewShape(1, 2), tensor.Float32)
	y := g.ReLU("r", x)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double producer")
		}
	}()
	g.NewOp("evil", ReLU, Forward, []*Tensor{x}, []*Tensor{y}, Attrs{})
}
