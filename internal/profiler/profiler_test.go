package profiler

import (
	"math"
	"testing"

	"tsplit/internal/device"
	"tsplit/internal/graph"
	"tsplit/internal/tensor"
)

func prof(t *testing.T) *Profile {
	t.Helper()
	g := graph.New()
	x := g.Input("x", tensor.NewShape(8, 64), tensor.Float32)
	labels := g.Input("l", tensor.NewShape(8), tensor.Int32)
	h := g.ReLU("r1", g.Dense("fc1", x, 128))
	h = g.ReLU("r2", g.Dense("fc2", h, 128))
	logits := g.Dense("fc3", h, 10)
	g.CrossEntropyLoss("loss", logits, labels)
	if err := g.Differentiate(graph.SGD); err != nil {
		t.Fatal(err)
	}
	s, err := graph.BuildSchedule(g)
	if err != nil {
		t.Fatal(err)
	}
	return New(device.TitanRTX, s)
}

func TestTotalIsSumOfOps(t *testing.T) {
	p := prof(t)
	var sum float64
	for _, d := range p.T {
		sum += d
	}
	if math.Abs(sum-p.Total()) > 1e-12 {
		t.Fatalf("total %g != sum %g", p.Total(), sum)
	}
}

func TestSpan(t *testing.T) {
	p := prof(t)
	if got := p.Span(0, len(p.T)-1); math.Abs(got-p.Total()) > 1e-12 {
		t.Fatalf("full span %g != total %g", got, p.Total())
	}
	if p.Span(3, 2) != 0 {
		t.Fatal("empty span must be 0")
	}
	if got := p.Span(-5, 2); math.Abs(got-p.Span(0, 2)) > 1e-15 {
		t.Fatal("span must clamp below")
	}
	if got := p.Span(2, 9999); math.Abs(got-p.Span(2, len(p.T)-1)) > 1e-15 {
		t.Fatal("span must clamp above")
	}
}

func TestOccupancyFreeTimeFull(t *testing.T) {
	p := prof(t)
	o := NewOccupancy(p)
	if got := o.FreeTime(0, len(p.T)-1); math.Abs(got-p.Total()) > 1e-12 {
		t.Fatalf("empty occupancy free time %g != %g", got, p.Total())
	}
}

func TestReserveReducesFreeTime(t *testing.T) {
	p := prof(t)
	o := NewOccupancy(p)
	free := o.FreeTime(0, 5)
	stall := o.Reserve(free/2, 0, 5)
	if stall != 0 {
		t.Fatalf("stall %g for half the window", stall)
	}
	after := o.FreeTime(0, 5)
	if math.Abs(after-free/2) > 1e-12 {
		t.Fatalf("free time %g, want %g", after, free/2)
	}
}

func TestReserveOverflowsToStall(t *testing.T) {
	p := prof(t)
	o := NewOccupancy(p)
	free := o.FreeTime(2, 4)
	if stall := o.Reserve(free+0.5, 2, 4); math.Abs(stall-0.5) > 1e-9 {
		t.Fatalf("stall %g, want 0.5", stall)
	}
	if o.FreeTime(2, 4) > 1e-12 {
		t.Fatal("window should be saturated")
	}
}

func TestReserveBackIsBackLoaded(t *testing.T) {
	p := prof(t)
	o := NewOccupancy(p)
	// Reserve just the last op's duration: start must be the last index.
	last := len(p.T) - 1
	start, stall := o.ReserveBack(p.T[last]*0.9, 0, last)
	if stall != 0 {
		t.Fatalf("unexpected stall %g", stall)
	}
	if start != last {
		t.Fatalf("start %d, want %d (back-loaded)", start, last)
	}
}

func TestReserveBackLeftover(t *testing.T) {
	p := prof(t)
	o := NewOccupancy(p)
	total := o.FreeTime(0, len(p.T)-1)
	start, stall := o.ReserveBack(total+1, 0, len(p.T)-1)
	if start != 0 {
		t.Fatalf("saturating reserve should reach index 0, got %d", start)
	}
	if math.Abs(stall-1) > 1e-9 {
		t.Fatalf("stall %g, want 1", stall)
	}
}

func TestStall(t *testing.T) {
	p := prof(t)
	o := NewOccupancy(p)
	free := o.FreeTime(1, 3)
	if o.Stall(free, 1, 3) != 0 {
		t.Fatal("exactly-fitting transfer should not stall")
	}
	if got := o.Stall(free+2, 1, 3); math.Abs(got-2) > 1e-9 {
		t.Fatalf("stall %g, want 2", got)
	}
}

func TestPrefetchIndexLate(t *testing.T) {
	p := prof(t)
	o := NewOccupancy(p)
	q := len(p.T) - 1
	// A tiny transfer can start right before q.
	idx := o.PrefetchIndex(1e-12, q, 0)
	if idx != q-1 {
		t.Fatalf("tiny transfer prefetch at %d, want %d", idx, q-1)
	}
	// An impossible transfer issues as late as possible.
	if idx := o.PrefetchIndex(1e9, q, 0); idx != q-1 {
		t.Fatalf("impossible transfer prefetch at %d, want %d", idx, q-1)
	}
}

func TestWindowStart(t *testing.T) {
	p := prof(t)
	q := len(p.T)
	s := p.WindowStart(q, p.Total()/2)
	if p.Span(s, q-1) < p.Total()/2 {
		t.Fatal("window does not cover the duration")
	}
	if s+1 < q && p.Span(s+1, q-1) >= p.Total()/2 {
		t.Fatal("window start not maximal")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	p := prof(t)
	o := NewOccupancy(p)
	c := o.Clone()
	o.Reserve(p.Total(), 0, len(p.T)-1)
	if math.Abs(c.FreeTime(0, len(p.T)-1)-p.Total()) > 1e-12 {
		t.Fatal("clone affected by original's reservation")
	}
}
