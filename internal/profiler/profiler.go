// Package profiler produces the per-operation execution profile that
// TSPLIT's planner consumes (paper Sec. V-B). The real system measures
// each operator once with cudaEvent timers while monopolizing the GPU;
// our oracle is the analytic cost model, which plays the same role:
// a deterministic map from operator to execution time, plus transfer
// times derived from full PCIe bandwidth, plus the simulated per-op
// PCIe occupancy array Oc_u the planner keeps while placing swaps.
package profiler

import (
	"tsplit/internal/costmodel"
	"tsplit/internal/device"
	"tsplit/internal/graph"
)

// Profile is the execution profile of one schedule on one device.
type Profile struct {
	Dev   device.Device
	Cost  *costmodel.Model
	Sched *graph.Schedule
	// T[i] is the profiled execution time of schedule op i in seconds.
	T []float64
	// cum[i] is the prefix sum T[0]+...+T[i-1].
	cum []float64
}

// New profiles every operator of the schedule on the device.
func New(dev device.Device, sched *graph.Schedule) *Profile {
	cm := costmodel.New(dev)
	p := &Profile{
		Dev:   dev,
		Cost:  cm,
		Sched: sched,
		T:     make([]float64, len(sched.Ops)),
		cum:   make([]float64, len(sched.Ops)+1),
	}
	for i, op := range sched.Ops {
		p.T[i] = cm.OpTime(op)
		p.cum[i+1] = p.cum[i] + p.T[i]
	}
	return p
}

// Total returns the profiled iteration time with no memory management
// (the paper's T = Σ T_i).
func (p *Profile) Total() float64 { return p.cum[len(p.cum)-1] }

// Span returns Σ T_u for u in [from, to]; empty ranges return 0.
func (p *Profile) Span(from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to >= len(p.T) {
		to = len(p.T) - 1
	}
	if from > to {
		return 0
	}
	return p.cum[to+1] - p.cum[from]
}

// TransferTime is the PCIe copy time for bytes at full bandwidth.
func (p *Profile) TransferTime(bytes int64) float64 {
	return p.Cost.TransferTime(bytes)
}

// WindowStart returns the largest index s ≤ q-1 such that the
// wall-clock span Σ T_u for u in [s, q-1] still covers dur — i.e. the
// latest point a copy of duration dur can be issued and finish by q
// even with no spare bandwidth (the compute stream will stall for the
// unhidden part, but device memory is only occupied from s).
func (p *Profile) WindowStart(q int, dur float64) int {
	lo, hi := 0, q-1
	if hi < 0 {
		return 0
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.Span(mid, q-1) >= dur {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Occupancy tracks the fraction of each operator's execution during
// which one PCIe direction is already reserved by planned swaps — the
// Oc_u array of paper Eq. 3/4 ("we keep an array to simulate and store
// the status of each Op"). Directions are tracked independently
// because PCIe is full duplex and the runtime uses separate D2H and
// H2D streams.
type Occupancy struct {
	prof *Profile
	// oc[u] in [0,1]: reserved fraction of op u's duration.
	oc []float64
	// The free-time prefix sums are block-decomposed so a reservation
	// only invalidates the blocks it modified, not an O(n) suffix: a
	// greedy planner reserves at early schedule indices every
	// iteration, and a flat prefix-sum array would pay a full rebuild
	// per decision. inner[u] is the free-time prefix within u's block
	// (through u inclusive); blockCum[b] is the total free time of
	// blocks before b. A query is then blockCum[u>>shift] + inner[u] —
	// still O(1) — while a rebuild after k modified slots costs
	// O(k·B + n/B).
	inner    []float64
	blockCum []float64
	dirty    []bool
	anyDirty bool
	// full[b] counts the slots of block b that can never yield free
	// time again: oc clamped to exactly 1, or T == 0. When it reaches
	// the block's size, Reserve/ReserveBack hop the whole block instead
	// of walking it slot by slot — the greedy planner saturates the
	// early schedule first, and every later front-loaded reservation
	// re-walks that saturated prefix. Counting only exact-1 slots keeps
	// the skip behavior-preserving: a skipped slot's free time is
	// exactly (1-1)·T = 0, so the walk body would have been a no-op.
	full []int16
	// invT[u] = 1/T[u] (0 for zero-duration ops): fill() books
	// fractions with a multiply instead of a divide, which dominates
	// its cost on the reserve hot path.
	invT []float64
}

// occBlockShift sizes the decomposition blocks (64 slots): rebuild
// cost per decision is ~B + n/B, minimized near √n for the schedule
// lengths the planner sees (10²–10⁴ ops). Smaller blocks also let the
// saturation skip in Reserve/ReserveBack engage sooner.
const occBlockShift = 6

// NewOccupancy creates an empty tracker for the profile.
func NewOccupancy(p *Profile) *Occupancy {
	o := &Occupancy{prof: p, oc: make([]float64, len(p.T))}
	o.invT = make([]float64, len(p.T))
	for u, t := range p.T {
		if t > 0 {
			o.invT[u] = 1 / t
		}
	}
	o.resetFull()
	return o
}

// Clone copies the tracker (the planner snapshots candidates).
func (o *Occupancy) Clone() *Occupancy {
	c := &Occupancy{prof: o.prof, oc: make([]float64, len(o.oc))}
	copy(c.oc, o.oc)
	c.full = append([]int16(nil), o.full...)
	c.invT = o.invT // immutable, shared
	return c
}

// Reset clears every reservation so a pooled planner can reuse the
// tracker across Plan() calls without reallocating.
func (o *Occupancy) Reset() {
	for u := range o.oc {
		o.oc[u] = 0
	}
	o.resetFull()
	o.markAllDirty()
}

// resetFull recounts the permanently-free-less slots per block: with
// no reservations those are exactly the zero-duration ops.
func (o *Occupancy) resetFull() {
	n := len(o.oc)
	nBlocks := (n + (1 << occBlockShift) - 1) >> occBlockShift
	if o.full == nil {
		o.full = make([]int16, nBlocks)
	}
	for b := range o.full {
		o.full[b] = 0
	}
	for u, t := range o.prof.T {
		if t == 0 {
			o.full[u>>occBlockShift]++
		}
	}
}

// blockSize returns the number of slots block b covers.
func (o *Occupancy) blockSize(b int) int16 {
	size := len(o.oc) - b<<occBlockShift
	if size > 1<<occBlockShift {
		size = 1 << occBlockShift
	}
	return int16(size)
}

// fill books take seconds into slot u (take < free, T[u] > 0),
// maintaining the saturation count.
func (o *Occupancy) fill(u int, take float64) {
	o.oc[u] += take * o.invT[u]
	if o.oc[u] >= 1 {
		o.oc[u] = 1
		o.full[u>>occBlockShift]++
	}
	o.touch(u)
}

// saturate books a slot's entire remaining free time: oc lands on
// exactly 1, not 1−ε — rounding take/T would leave a vanishing sliver
// of free time that keeps the slot (and its block) off the saturation
// skip forever, so every later reservation would re-walk the fully
// booked prefix slot by slot.
func (o *Occupancy) saturate(u int) {
	if o.oc[u] < 1 {
		o.oc[u] = 1
		o.full[u>>occBlockShift]++
	}
	o.touch(u)
}

func (o *Occupancy) markAllDirty() {
	for b := range o.dirty {
		o.dirty[b] = true
	}
	o.anyDirty = true
}

// touch marks index u's block dirty.
func (o *Occupancy) touch(u int) {
	if o.dirty != nil {
		o.dirty[u>>occBlockShift] = true
	}
	o.anyDirty = true
}

// Mean returns the time-weighted mean reservation Σ oc_u·T_u / Σ T_u —
// how loaded the planner left the PCIe link across the iteration.
func (o *Occupancy) Mean() float64 {
	total := o.prof.Total()
	if total <= 0 {
		return 0
	}
	var s float64
	for u, oc := range o.oc {
		s += oc * o.prof.T[u]
	}
	return s / total
}

func (o *Occupancy) rebuild() {
	if !o.anyDirty && o.inner != nil {
		return
	}
	n := len(o.oc)
	nBlocks := (n + (1 << occBlockShift) - 1) >> occBlockShift
	if o.inner == nil {
		o.inner = make([]float64, n)
		o.blockCum = make([]float64, nBlocks+1)
		o.dirty = make([]bool, nBlocks)
		for b := range o.dirty {
			o.dirty[b] = true
		}
	}
	for b := 0; b < nBlocks; b++ {
		if !o.dirty[b] {
			continue
		}
		o.dirty[b] = false
		lo := b << occBlockShift
		hi := lo + (1 << occBlockShift)
		if hi > n {
			hi = n
		}
		var s float64
		for u := lo; u < hi; u++ {
			s += (1 - o.oc[u]) * o.prof.T[u]
			o.inner[u] = s
		}
	}
	var total float64
	for b := 0; b < nBlocks; b++ {
		o.blockCum[b] = total
		hi := (b+1)<<occBlockShift - 1
		if hi >= n {
			hi = n - 1
		}
		total += o.inner[hi]
	}
	o.blockCum[nBlocks] = total
	o.anyDirty = false
}

// freePrefix returns Σ_{v<=u} (1-oc[v])·T[v]; callers rebuild first
// and clamp u into [-1, n-1].
func (o *Occupancy) freePrefix(u int) float64 {
	if u < 0 {
		return 0
	}
	return o.blockCum[u>>occBlockShift] + o.inner[u]
}

// FreePrefixAt exposes the free-time prefix sum through schedule index
// u (u = -1 yields 0, u must be < len). FreeTime(a, b) equals
// FreePrefixAt(b) − FreePrefixAt(a−1) for in-range arguments; hot
// scoring loops use this form to hoist the bottleneck-side prefix out
// of per-candidate work. The caller must Materialize() first and not
// Reserve in between.
func (o *Occupancy) FreePrefixAt(u int) float64 { return o.freePrefix(u) }

// Materialize forces the lazy prefix-sum rebuild now. Call it before
// handing the tracker to concurrent readers: FreeTime/Stall are
// read-only afterwards (until the next Reserve), so a materialized
// tracker can be shared by a scoring worker pool without locks.
func (o *Occupancy) Materialize() { o.rebuild() }

// FreeTime returns Σ (1-Oc_u)·T_u over [from, to] — the transfer time
// that can be hidden under computation in that window (Eq. 3).
func (o *Occupancy) FreeTime(from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to >= len(o.oc) {
		to = len(o.oc) - 1
	}
	if from > to {
		return 0
	}
	o.rebuild()
	return o.freePrefix(to) - o.freePrefix(from-1)
}

// Stall returns the non-overlappable remainder of a transfer of the
// given duration placed in [from, to]: max(transfer − FreeTime, 0).
func (o *Occupancy) Stall(transfer float64, from, to int) float64 {
	if rest := transfer - o.FreeTime(from, to); rest > 0 {
		return rest
	}
	return 0
}

// Reserve greedily books transfer seconds of PCIe time across
// [from, to], front-loaded (the paper assigns the ideal swap-out begin
// time as the tensor's generation time). It returns the seconds that
// did not fit — computation will stall for that long.
func (o *Occupancy) Reserve(transfer float64, from, to int) (stall float64) {
	if from < 0 {
		from = 0
	}
	if to >= len(o.oc) {
		to = len(o.oc) - 1
	}
	for u := from; u <= to && transfer > 0; {
		b := u >> occBlockShift
		if o.full[b] == o.blockSize(b) {
			// Every slot in the block is saturated (oc == 1) or has
			// zero duration: nothing to take, hop the whole block.
			u = (b + 1) << occBlockShift
			continue
		}
		end := (b+1)<<occBlockShift - 1
		if end > to {
			end = to
		}
		for ; u <= end && transfer > 0; u++ {
			free := (1 - o.oc[u]) * o.prof.T[u]
			if free > 0 {
				if transfer < free {
					o.fill(u, transfer)
					transfer = 0
				} else {
					o.saturate(u)
					transfer -= free
				}
			}
		}
	}
	return transfer
}

// ReserveBack books transfer seconds of PCIe time across [from, to],
// back-loaded: slots nearest the deadline are taken first, so a
// prefetched tensor re-occupies device memory as late as the link
// allows. It returns the earliest index actually used (the prefetch
// issue position) and the seconds that did not fit (stall).
func (o *Occupancy) ReserveBack(transfer float64, from, to int) (start int, stall float64) {
	if from < 0 {
		from = 0
	}
	if to >= len(o.oc) {
		to = len(o.oc) - 1
	}
	start = to
	if to < from {
		return from, transfer
	}
	for u := to; u >= from && transfer > 0; {
		b := u >> occBlockShift
		if o.full[b] == o.blockSize(b) {
			u = b<<occBlockShift - 1
			continue
		}
		lo := b << occBlockShift
		if lo < from {
			lo = from
		}
		for ; u >= lo && transfer > 0; u-- {
			free := (1 - o.oc[u]) * o.prof.T[u]
			if free > 0 {
				if transfer < free {
					o.fill(u, transfer)
					transfer = 0
				} else {
					o.saturate(u)
					transfer -= free
				}
				start = u
			}
		}
	}
	return start, transfer
}

// At returns Oc_u for schedule index u.
func (o *Occupancy) At(u int) float64 { return o.oc[u] }

// PrefetchIndex returns the latest schedule index p at which a swap-in
// of the given transfer duration can be issued and still complete
// before op q, given current occupancy — the "swap-in begin" position
// of paper Eq. 3. Prefetching as late as possible minimizes the memory
// the restored tensor occupies. When even issuing at lo the transfer
// cannot be hidden, lo is returned (the runtime will stall).
func (o *Occupancy) PrefetchIndex(transfer float64, q, lo int) int {
	if lo < 0 {
		lo = 0
	}
	hi := q - 1
	if hi < lo {
		return lo
	}
	if o.FreeTime(lo, q-1) < transfer {
		// PCIe is saturated: no start position hides the transfer, so
		// issue as late as possible — the stall is the same wherever
		// the copy is queued, but a late start keeps the tensor out of
		// device memory longest.
		return hi
	}
	// FreeTime(p, q-1) is non-increasing in p: binary search the
	// largest p that still hides the transfer.
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if o.FreeTime(mid, q-1) >= transfer {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
