package lint

import (
	"go/ast"
)

// ScratchReuse is an advisory rule for the planner's and simulator's
// steady-state allocation budgets: internal/core's per-iteration
// machinery is pooled (arenas reset in place across Plan() calls —
// see DESIGN.md §7), and internal/sim's event loop is arena-backed
// the same way (SimPool recycling — see DESIGN.md's simulator
// performance section), so an allocation inside a loop there is
// either a bug in the pooling or a deliberate cold-path exception
// that deserves a visible `//lint:allow scratchreuse <reason>`.
//
// Two shapes are flagged, both only inside a for/range statement:
//
//   - make(...) — a fresh slice/map/chan per iteration;
//   - x = append(x, ...) where x is never reset with the pooled
//     `x = x[:0]` idiom anywhere in the same function and is not a
//     parameter (the `appendInto(buf)` pattern recycles at the
//     caller). Append into a length-reset buffer reuses its backing
//     array and is the pattern this rule exists to encourage; append
//     into a buffer that only ever grows is an allocation in disguise.
//
// The rule is scoped to the files that hold the pooled per-iteration
// machinery; construction, export, verification, and graph-rewrite
// code allocates freely off the hot path. It is advisory in spirit:
// the serial reference path and per-run setup allocate legitimately
// and carry allows with the reason spelled out.
var ScratchReuse = &Analyzer{
	Name:     "scratchreuse",
	Doc:      "allocation (make / growing append) inside a loop in pooled planner or simulator code",
	Packages: []string{"tsplit/internal/core", "tsplit/internal/sim"},
	Run:      runScratchReuse,
}

// scratchFiles are the internal/core and internal/sim files on the
// pooled hot paths: a Plan()/Replan() call or a pooled simulation
// spends its steady-state time here, so in-loop allocations in these
// files erode the near-zero allocs/op budgets. (File names don't
// collide across the two packages today; scope by package if they
// ever do.)
var scratchFiles = map[string]bool{
	// internal/core — the planner's Plan()/Replan() hot path.
	"planner.go":     true,
	"candidates.go":  true,
	"candindex.go":   true,
	"incremental.go": true,
	"memsim.go":      true,
	"finalize.go":    true,
	"replan.go":      true,
	"pool.go":        true,
	// internal/sim — the simulator's per-op event loop.
	"sim.go":       true,
	"exec.go":      true,
	"execsplit.go": true,
	"postop.go":    true,
	"walker.go":    true,
	"simpool.go":   true,
}

func runScratchReuse(p *Pass) {
	for _, f := range p.Files {
		if !scratchFiles[baseName(p.Fset.Position(f.Pos()).Filename)] {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			reset := resliceResetNames(fn.Body)
			addParamNames(fn.Type, reset)
			checkLoopAllocs(p, fn.Body, reset, false)
		}
	}
}

// baseName is filepath.Base without the import.
func baseName(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// addParamNames marks the function's parameters as exempt append
// targets: a buffer received from the caller is the caller's to
// recycle (the residencyInto/contributionsInto pattern).
func addParamNames(ft *ast.FuncType, names map[string]bool) {
	if ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		for _, id := range field.Names {
			names[id.Name] = true
		}
	}
}

// resliceResetNames collects the identifiers exempt from the growing-
// append report anywhere in the function:
//
//   - `x = x[:0]` or an `x[:0]` argument — the pooled length-reset;
//   - `y := arena[i][:0]` — a local bound to a recycled backing array;
//   - `z := make(T, 0, cap)` — pre-sized to exact capacity, so the
//     in-loop appends perform no further allocation.
func resliceResetNames(body *ast.BlockStmt) map[string]bool {
	names := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SliceExpr:
			if isZeroReslice(s) {
				if id, ok := s.X.(*ast.Ident); ok {
					names[id.Name] = true
				}
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, rhs := range s.Rhs {
				lhs, ok := s.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if sl, ok := rhs.(*ast.SliceExpr); ok && isZeroReslice(sl) {
					names[lhs.Name] = true
				}
				if call, ok := rhs.(*ast.CallExpr); ok && len(call.Args) == 3 {
					if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "make" {
						names[lhs.Name] = true
					}
				}
			}
		}
		return true
	})
	return names
}

// isZeroReslice reports whether sl is a plain `[:0]` slice expression.
func isZeroReslice(sl *ast.SliceExpr) bool {
	if sl.Low != nil || sl.Max != nil {
		return false
	}
	high, ok := sl.High.(*ast.BasicLit)
	return ok && high.Value == "0"
}

// checkLoopAllocs walks statements, tracking whether the walk is
// inside a loop, and reports allocation sites found there.
func checkLoopAllocs(p *Pass, n ast.Node, reset map[string]bool, inLoop bool) {
	ast.Inspect(n, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.ForStmt:
			checkLoopAllocs(p, s.Body, reset, true)
			return false
		case *ast.RangeStmt:
			checkLoopAllocs(p, s.Body, reset, true)
			return false
		case *ast.FuncLit:
			// A closure's body runs on its own schedule; its loops are
			// inspected when the walk reaches them.
			checkLoopAllocs(p, s.Body, resliceResetNames(s.Body), inLoop)
			return false
		case *ast.CallExpr:
			if !inLoop {
				return true
			}
			id, ok := s.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			switch id.Name {
			case "make":
				p.Reportf(s.Pos(), "make inside a loop in pooled planner code: hoist a reusable scratch buffer (or //lint:allow scratchreuse with a reason)")
			case "append":
				if len(s.Args) == 0 {
					return true
				}
				dst, ok := s.Args[0].(*ast.Ident)
				if !ok || reset[dst.Name] {
					return true
				}
				p.Reportf(s.Pos(), "append grows %q inside a loop and the buffer is never length-reset: reuse it with %s = %s[:0] (or //lint:allow scratchreuse with a reason)", dst.Name, dst.Name, dst.Name)
			}
		}
		return true
	})
}
