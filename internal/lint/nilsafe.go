package lint

import (
	"go/types"
)

// NilSafe mechanizes the "nil tracer is a zero-cost no-op" contract:
// a type annotated `// lint:nilsafe` (obs.Tracer, obs.Span,
// obs.Flight, obs.Dumper) promises that calling any exported method
// on a nil pointer is a harmless no-op. Instrumented code threads a
// possibly-nil pointer through planner, simulator, and ladder
// unconditionally, so one missing guard turns "tracing disabled" into
// a panic on a hot path — something bench-guard can only spot-check
// at the call sites it happens to execute.
//
// Each pointer-receiver method's summary (interp.go) walks the body
// in source order: a `if r == nil { return }` guard (or a guarded
// `if r != nil { ... }` region) must dominate every receiver
// dereference. Calling another method on the receiver counts as a
// dereference unless that method's own summary proved it nil-safe —
// the transitive case that lets obs.Tracer.WriteJSON stay guard-free
// by delegating to the guarded Tree. Unexported helpers may assume a
// non-nil receiver (they are only reachable through guarded exported
// methods, whose call sites this analysis checks); exported methods
// must guard for themselves.
var NilSafe = &Analyzer{
	Name:      "nilsafe",
	Doc:       "exported method of a lint:nilsafe type dereferences the receiver before a nil check",
	RunModule: runNilSafe,
}

func runNilSafe(mp *ModulePass) {
	for _, scc := range mp.Interp.Graph.SCCs {
		for _, fi := range scc {
			sum := mp.Interp.Summaries[fi.Fn]
			if sum.NilSafe || !fi.Decl.Name.IsExported() {
				continue
			}
			recv := fi.Fn.Type().(*types.Signature).Recv()
			named := recv.Type().(*types.Pointer).Elem().(*types.Named)
			mp.Reportf(fi.Pkg.Path, sum.nilPos,
				"%s is lint:nilsafe, but exported method %s %s before any nil-receiver check (add `if %s == nil { return ... }` first)",
				named.Obj().Name(), fi, sum.nilWhat, receiverName(fi))
		}
	}
}

func receiverName(fi *FuncInfo) string {
	if obj := receiverObj(fi); obj != nil {
		return obj.Name()
	}
	return "recv"
}
