package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `for range` over a map in a determinism-critical
// package. Go randomizes map iteration order, so any plan decision,
// simulator event, or exported artifact derived from such a loop can
// differ run to run — exactly the class of bug fixed by hand in the
// prefetch-order, LRU-victim, and rewrite-agenda incidents (PR 1).
//
// Two shapes are recognized as safe and not reported:
//
//   - collection followed by a TOTAL sort in the same block:
//     for k := range m { keys = append(keys, k) } ... sort.Ints(keys)
//     (conditional appends of any expression are fine; the loop must
//     do nothing else, and the sort must be one that totally orders
//     the slice — sort.Ints, sort.Strings, sort.Float64s, or
//     slices.Sort. sort.Slice does NOT qualify: a comparator with a
//     partial key leaves tie order at the mercy of map iteration);
//   - pure deletion: for k := range m { delete(m, k) }.
//
// Loops that are order-insensitive for subtler reasons (commutative
// integer accumulation, ID-tie-broken argmax) carry a
// `//lint:allow maporder` with the argument spelled out.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "range over a map in a determinism-critical package without sorting keys",
	Packages: []string{
		"tsplit/internal/core",
		"tsplit/internal/sim",
		"tsplit/internal/experiments",
		"tsplit/internal/obs",
		"tsplit/internal/serve",
	},
	Run: runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				rng, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := p.TypeOf(rng.X)
				if t == nil {
					continue
				}
				if _, ok := t.Underlying().(*types.Map); !ok {
					continue
				}
				if deleteOnlyBody(rng.Body) {
					continue
				}
				if dest := collectTarget(rng); dest != "" && totalSortFollows(p, block.List[i+1:], dest) {
					continue
				}
				p.Reportf(rng.For, "map iteration order is nondeterministic: sort the keys first (or //lint:allow maporder with a reason)")
			}
			return true
		})
	}
}

// deleteOnlyBody reports whether every statement in the loop body is a
// delete(...) call — clearing a map is order-insensitive.
func deleteOnlyBody(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	for _, stmt := range body.List {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "delete" {
			return false
		}
	}
	return true
}

// collectTarget returns the name of the slice the loop appends into,
// when the body does nothing else (conditionals and continue are
// permitted), or "" when the loop has any other effect. The appended
// expression is unconstrained: a total sort of the collected slice
// makes the multiset order deterministic whatever was collected.
func collectTarget(rng *ast.RangeStmt) string {
	dest := ""
	var walk func(stmts []ast.Stmt) bool
	walk = func(stmts []ast.Stmt) bool {
		for _, stmt := range stmts {
			switch s := stmt.(type) {
			case *ast.IfStmt:
				if s.Init != nil {
					// `if v, ok := ...; ok` guards are side-effect free
					// for our purposes only when they bind new names.
					if as, ok := s.Init.(*ast.AssignStmt); !ok || as.Tok.String() != ":=" {
						return false
					}
				}
				if !walk(s.Body.List) {
					return false
				}
				if s.Else != nil {
					eb, ok := s.Else.(*ast.BlockStmt)
					if !ok || !walk(eb.List) {
						return false
					}
				}
			case *ast.BranchStmt:
				// continue/break only
			case *ast.AssignStmt:
				if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
					return false
				}
				lhs, ok := s.Lhs[0].(*ast.Ident)
				if !ok {
					return false
				}
				call, ok := s.Rhs[0].(*ast.CallExpr)
				if !ok || len(call.Args) != 2 {
					return false
				}
				fn, ok := call.Fun.(*ast.Ident)
				if !ok || fn.Name != "append" {
					return false
				}
				arg0, ok := call.Args[0].(*ast.Ident)
				if !ok || arg0.Name != lhs.Name {
					return false
				}
				if dest != "" && dest != lhs.Name {
					return false
				}
				dest = lhs.Name
			default:
				return false
			}
		}
		return true
	}
	if !walk(rng.Body.List) {
		return ""
	}
	return dest
}

// totalSorts are the sort calls that impose a total order on their
// argument, making the collected order fully deterministic.
var totalSorts = map[string]map[string]bool{
	"sort":   {"Ints": true, "Strings": true, "Float64s": true},
	"slices": {"Sort": true},
}

// totalSortFollows reports whether one of the statements after the
// loop (in the same block) totally sorts the collected slice.
func totalSortFollows(p *Pass, rest []ast.Stmt, dest string) bool {
	for _, stmt := range rest {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			continue
		}
		obj, ok := p.Info.Uses[pkgID]
		if !ok {
			continue
		}
		pn, ok := obj.(*types.PkgName)
		if !ok {
			continue
		}
		fns, ok := totalSorts[pn.Imported().Path()]
		if !ok || !fns[sel.Sel.Name] {
			continue
		}
		arg0, ok := call.Args[0].(*ast.Ident)
		if !ok || arg0.Name != dest {
			continue
		}
		return true
	}
	return false
}
