package lint

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module on disk for loader
// tests. Keys are module-relative slash paths.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const testGoMod = "module example.com/m\n\ngo 1.22\n"

// otherGOOS returns a GOOS that is not the one the test runs under,
// for exercising filename- and tag-based exclusion.
func otherGOOS() string {
	if runtime.GOOS == "windows" {
		return "linux"
	}
	return "windows"
}

func TestLoadModuleSkipsBuildTagExcludedFiles(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": testGoMod,
		"a.go":   "package m\n\nfunc Kept() {}\n",
		// Both excluded files redeclare Kept: if either were loaded,
		// type-checking would fail, so a successful load proves the
		// exclusion, not just the symbol lookup below.
		"b.go":                     "//go:build " + otherGOOS() + "\n\npackage m\n\nfunc Kept() {}\nfunc TagExcluded() {}\n",
		"c_" + otherGOOS() + ".go": "package m\n\nfunc Kept() {}\nfunc SuffixExcluded() {}\n",
	})
	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(mod.Pkgs) != 1 {
		t.Fatalf("want 1 package, got %d", len(mod.Pkgs))
	}
	scope := mod.Pkgs[0].Types.Scope()
	if scope.Lookup("Kept") == nil {
		t.Errorf("Kept should be loaded")
	}
	if scope.Lookup("TagExcluded") != nil {
		t.Errorf("file excluded by //go:build tag was loaded")
	}
	if scope.Lookup("SuffixExcluded") != nil {
		t.Errorf("file excluded by _GOOS suffix was loaded")
	}
}

func TestLoadModuleSkipsTestFiles(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": testGoMod,
		"a.go":   "package m\n\nfunc Kept() {}\n",
		// A _test.go file that would not even parse: proof it is
		// skipped before the parser sees it.
		"a_test.go": "package m\n\nfunc broken( {\n",
	})
	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule should skip _test.go files: %v", err)
	}
	if mod.Pkgs[0].Types.Scope().Lookup("Kept") == nil {
		t.Errorf("Kept should be loaded")
	}
	for _, f := range mod.Pkgs[0].Files {
		name := mod.Pkgs[0].Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			t.Errorf("test file %s was loaded", name)
		}
	}
}

func TestLoadModuleReportsSyntaxErrors(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     testGoMod,
		"sub/bad.go": "package sub\n\nfunc broken( {\n",
	})
	_, err := LoadModule(dir)
	if err == nil {
		t.Fatal("LoadModule should report the syntax error, not succeed")
	}
	if !strings.Contains(err.Error(), "bad.go") {
		t.Errorf("error should name the broken file: %v", err)
	}
}

func TestLoadModuleReportsTypeErrors(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": testGoMod,
		"a.go":   "package m\n\nfunc f() { undefinedSymbol() }\n",
	})
	_, err := LoadModule(dir)
	if err == nil {
		t.Fatal("LoadModule should report the type error")
	}
	if !strings.Contains(err.Error(), "type-checking") {
		t.Errorf("error should come from the type checker: %v", err)
	}
}

func TestLoadModuleDirsAndOrder(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     testGoMod,
		"root.go":    "package m\n",
		"zz/z.go":    "package zz\n",
		"aa/a.go":    "package aa\n",
		"aa/bb/b.go": "package bb\n",
	})
	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	var got []string
	for _, p := range mod.Pkgs {
		got = append(got, p.Path+"="+p.Dir)
	}
	want := []string{
		"example.com/m=.",
		"example.com/m/aa=aa",
		"example.com/m/aa/bb=aa/bb",
		"example.com/m/zz=zz",
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("packages/dirs:\n got %v\nwant %v", got, want)
	}
}

func TestChangedPackages(t *testing.T) {
	if _, err := exec.LookPath("git"); err != nil {
		t.Skip("git not installed")
	}
	dir := writeModule(t, map[string]string{
		"go.mod":   testGoMod,
		"a/a.go":   "package a\n",
		"b/b.go":   "package b\n",
		"b/doc.md": "prose\n",
	})
	git := func(args ...string) {
		t.Helper()
		cmd := exec.Command("git", append([]string{
			"-C", dir, "-c", "user.email=t@t", "-c", "user.name=t",
		}, args...)...)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("git %v: %v\n%s", args, err, out)
		}
	}
	git("init", "-q")
	git("add", ".")
	git("commit", "-q", "-m", "seed")

	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}

	// Unstaged change in a, untracked .go file in a new dir c, and a
	// non-.go change in b (which must NOT mark b as changed).
	if err := os.WriteFile(filepath.Join(dir, "a/a.go"), []byte("package a\n\nfunc A() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "c"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "c/c.go"), []byte("package c\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "b/doc.md"), []byte("edited prose\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	pkgs, err := ChangedPackages(mod, "HEAD")
	if err != nil {
		t.Fatalf("ChangedPackages: %v", err)
	}
	if !pkgs["example.com/m/a"] {
		t.Errorf("modified package a should be changed: %v", pkgs)
	}
	if !pkgs["example.com/m/c"] {
		t.Errorf("untracked package c should be changed: %v", pkgs)
	}
	if pkgs["example.com/m/b"] {
		t.Errorf("non-.go change must not mark package b: %v", pkgs)
	}

	// RunFiltered narrows reporting to the changed set.
	diags := RunFiltered(mod.Pkgs, Analyzers(), func(p string) bool { return pkgs[p] })
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

func TestChangedPackagesFailsOutsideGit(t *testing.T) {
	if _, err := exec.LookPath("git"); err != nil {
		t.Skip("git not installed")
	}
	dir := writeModule(t, map[string]string{"go.mod": testGoMod, "a.go": "package m\n"})
	// Guard against an enclosing repository above t.TempDir.
	if out, err := exec.Command("git", "-C", dir, "rev-parse", "--git-dir").CombinedOutput(); err == nil {
		t.Skipf("temp dir is inside a git repository (%s)", strings.TrimSpace(string(out)))
	}
	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if _, err := ChangedPackages(mod, "HEAD"); err == nil {
		t.Fatal("ChangedPackages outside a repository should error (the CLI falls back to a full run)")
	}
}

func TestAudit(t *testing.T) {
	src := `//lint:allow clockdet generated demo file
package core

func f(m map[int]int) {
	//lint:allow maporder,errdrop commutative aggregation
	for range m {
	}
	//lint:allow floateq
	_ = m
}`
	pkg := checkSrc(t, corePath, "audit_case.go", src)
	sites, missing := Audit([]*Package{pkg})
	if len(sites) != 3 {
		t.Fatalf("want 3 allow sites, got %v", sites)
	}
	if !sites[0].FileWide || sites[0].Reason != "generated demo file" || sites[0].Rules[0] != "clockdet" {
		t.Errorf("file-wide site parsed wrong: %+v", sites[0])
	}
	if sites[1].FileWide || sites[1].Reason != "commutative aggregation" ||
		len(sites[1].Rules) != 2 || sites[1].Rules[1] != "errdrop" {
		t.Errorf("multi-rule site parsed wrong: %+v", sites[1])
	}
	if sites[2].Reason != "" {
		t.Errorf("reasonless site should have empty reason: %+v", sites[2])
	}
	if len(missing) != 1 || missing[0].Rule != "lint-audit" || missing[0].Line != sites[2].Line {
		t.Fatalf("want one lint-audit finding at the reasonless site, got %v", missing)
	}
	if !strings.Contains(sites[2].String(), "MISSING REASON") {
		t.Errorf("listing should call out the missing reason: %s", sites[2])
	}
}
