package lint

// GuardedBy enforces the lock annotations on shared mutable state:
// a struct field carrying `// lint:guardedby mu` may only be read
// while mu is held (RLock or Lock for a sync.RWMutex) and written
// while mu is held exclusively.
//
// The check is interprocedural: each function's summary (interp.go)
// simulates its lock set in source order — Lock/RLock acquire,
// Unlock/RUnlock release, `defer mu.Unlock()` holds to the end,
// branches that return discard their lock changes — and classifies
// every guarded access. An access on the method's own receiver
// without the lock becomes a *requirement* on callers rather than an
// immediate finding; the requirement is then discharged at every call
// site (the caller must hold the receiver's lock there) or reported
// when no caller set can be trusted: exported methods, address-taken
// functions, interface-dispatched methods, and functions with no
// in-module callers must lock for themselves.
//
// Objects constructed in the current function (`s := &series{...}`)
// are exempt until they escape — an unpublished object has no
// concurrent readers. Malformed annotations (a lock field that does
// not exist or is not a sync.Mutex/RWMutex) are findings too: a
// contract that cannot be checked must not silently pass.
var GuardedBy = &Analyzer{
	Name:      "guardedby",
	Doc:       "lint:guardedby field accessed without holding its lock",
	RunModule: runGuardedBy,
}

func runGuardedBy(mp *ModulePass) {
	for _, p := range mp.Interp.Ann.Problems {
		if p.rule == "guardedby" {
			mp.Reportf(p.pkg, p.pos, "%s", p.msg)
		}
	}
	for _, scc := range mp.Interp.Graph.SCCs {
		for _, fi := range scc {
			sum := mp.Interp.Summaries[fi.Fn]
			for _, v := range sum.Violations {
				mp.Reportf(v.pkg, v.pos, "%s", v.msg)
			}
		}
	}
}
