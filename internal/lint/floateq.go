package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands in the
// planner (package core). The planner's scores are sums of profiled
// kernel times whose value depends on accumulation order; the parallel
// scorer is only byte-equivalent to the serial one because every
// comparison uses an explicit tolerance window (see Planner.better).
// An exact float comparison silently reintroduces order sensitivity —
// compare through a tolerance, or restructure to integers.
var FloatEq = &Analyzer{
	Name:     "floateq",
	Doc:      "exact ==/!= on floating-point operands in planner scoring",
	Packages: []string{"tsplit/internal/core"},
	Run:      runFloatEq,
}

func runFloatEq(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isFloat(p.TypeOf(be.X)) && isFloat(p.TypeOf(be.Y)) {
				p.Reportf(be.OpPos, "exact %s on floating-point values is order-sensitive: use a tolerance window", be.Op)
			}
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
