package lint

import (
	"strings"
	"testing"
)

const servePath = "tsplit/internal/serve"

// TestServeConcurrencyContract pins the serving layer to the lint
// suite the same way core and obs are pinned: the server's shared
// state (plan cache, workload cache, singleflight table, admission
// counters) must declare its locks with lint:guardedby, and the
// package must be clean under every analyzer — in particular
// guardedby (the declared locks are actually held) and clockdet (the
// server reads time only through the injected obs.Clock, which is
// what makes the eviction tests deterministic). One module load feeds
// both checks; TestModuleIsLintClean already proves the whole module,
// so this test's value is failing with a serve-specific message when
// someone strips an annotation or adds a raw time.Now().
func TestServeConcurrencyContract(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	mod, err := LoadModule("../..")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}

	ann := collectAnnotations(mod.Pkgs)
	guarded := 0
	for v := range ann.Guarded {
		if v.Pkg() != nil && v.Pkg().Path() == servePath {
			guarded++
		}
	}
	// Cache LRU (4), workload LRU (3), singleflight table (1), and the
	// admission counters (3) are the floor; dropping below it means a
	// shared field lost its contract.
	if guarded < 4 {
		t.Errorf("internal/serve declares %d lint:guardedby fields, want at least 4: the server's shared state must carry explicit lock contracts", guarded)
	}

	for _, d := range Run(mod.Pkgs, Analyzers()) {
		if !strings.Contains(d.File, "internal/serve") {
			continue
		}
		t.Errorf("internal/serve must be lint-clean: %s", d)
	}
}
