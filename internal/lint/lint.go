// Package lint is a stdlib-only static-analysis engine for the tsplit
// module, plus the project-specific determinism analyzers that run
// under cmd/tsplit-lint.
//
// TSPLIT's planner is only trustworthy if its output is byte-identical
// run to run: the simulator's event order, the plan export, and the
// greedy tie-breaks all assume that no wall-clock reading, map
// iteration order, or exact floating-point comparison leaks into a
// decision (PR 1 fixed three such bugs by hand). The analyzers in this
// package turn those conventions into machine-checked rules:
//
//   - maporder: `for range` over a map in a determinism-critical
//     package (core, sim, experiments, obs) unless the loop only
//     collects keys that are subsequently sorted, or only deletes.
//   - clockdet: any time.Now/Since/... call or math/rand import
//     outside the sanctioned-sites allowlist (internal/obs/clock.go,
//     internal/faults/rand.go).
//   - floateq: == / != between floating-point operands in planner
//     scoring (package core).
//   - errdrop: call statements that silently discard an error result.
//   - scratchreuse: make / growing-append inside a loop in the pooled
//     planner hot-path files (internal/core), where steady-state
//     allocations erode the PlannerPool near-zero allocs/op budget.
//   - spanpair: a StartSpan call in the instrumented packages (core,
//     sim, resilient) whose span is never End()ed in the same
//     function — a leak that poisons tsplit-doctor's phase latencies.
//
// On top of the per-package rules, an interprocedural layer (a module
// call graph plus per-function summaries computed bottom-up over its
// SCCs — see callgraph.go and interp.go) checks declared concurrency
// contracts:
//
//   - guardedby: a struct field annotated `// lint:guardedby mu` may
//     only be read with mu held (RLock or Lock) and written with mu
//     held exclusively — directly, or in a helper every caller of
//     which provably holds the lock.
//   - nilsafe: a type annotated `// lint:nilsafe` must guard every
//     exported pointer-receiver method with a nil-receiver check
//     before any receiver dereference, transitively through called
//     methods.
//   - gojoin: every `go` statement in the planner/simulator/
//     experiment packages must be provably joined — a WaitGroup
//     Add/Done/Wait pairing (Done possibly through a summarized
//     helper) or a channel-collect pattern — so worker pools cannot
//     leak goroutines holding arena references.
//
// Findings can be suppressed with a `//lint:allow <rule> <reason>`
// comment: placed above the package clause it covers the whole file,
// otherwise it covers the line it is on and the line below it. The
// reason is mandatory (`tsplit-lint -audit` flags reasonless allows).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding: a rule violation at a source position.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Package is one type-checked package of the module under analysis.
type Package struct {
	// Path is the import path ("tsplit/internal/core").
	Path string
	// Dir is the package directory, relative to the module root with
	// forward slashes ("." for the root package).
	Dir string
	// Fset is the (module-shared) position table.
	Fset *token.FileSet
	// Files are the parsed non-test source files, with comments.
	Files []*ast.File
	// Types is the checked package object.
	Types *types.Package
	// Info carries the expression types and identifier uses the
	// analyzers query.
	Info *types.Info
}

// Pass is the per-(analyzer, package) run context handed to an
// analyzer's Run function.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Path  string
	Pkg   *types.Package
	Info  *types.Info

	rule string
	out  *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.out = append(*p.out, Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Analyzer is one lint rule.
type Analyzer struct {
	// Name is the rule identifier used in output and in //lint:allow.
	Name string
	// Doc is a one-line description.
	Doc string
	// Packages restricts the analyzer to these import paths (exact
	// match); empty means every package. For module-level analyzers
	// the restriction applies to where findings are *reported*: the
	// analysis itself always sees the whole module.
	Packages []string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
	// RunModule, when set, runs once over the whole module with the
	// shared interprocedural state instead of per package.
	RunModule func(*ModulePass)
}

func (a *Analyzer) appliesTo(path string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if p == path {
			return true
		}
	}
	return false
}

// ModulePass is the run context for a module-level (interprocedural)
// analyzer: the whole package set plus the shared call-graph and
// summary state.
type ModulePass struct {
	Fset   *token.FileSet
	Pkgs   []*Package
	Interp *Interp

	analyzer *Analyzer
	only     func(path string) bool
	out      *[]Diagnostic
}

// Reportf records a finding at pos, attributed to the package at
// pkgPath. Findings outside the analyzer's package scope (or outside
// the caller's -changed filter) are dropped.
func (mp *ModulePass) Reportf(pkgPath string, pos token.Pos, format string, args ...any) {
	if !mp.analyzer.appliesTo(pkgPath) {
		return
	}
	if mp.only != nil && !mp.only(pkgPath) {
		return
	}
	position := mp.Fset.Position(pos)
	*mp.out = append(*mp.out, Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Rule:    mp.analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the project rule set, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapOrder, ClockDet, FloatEq, ErrDrop, ScratchReuse, SpanPair, GuardedBy, NilSafe, GoJoin}
}

// ByName resolves a comma-separated rule list ("maporder,errdrop").
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return Analyzers(), nil
	}
	all := Analyzers()
	var sel []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		found := false
		for _, a := range all {
			if a.Name == n {
				sel = append(sel, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown rule %q", n)
		}
	}
	return sel, nil
}

// Run executes the analyzers over the packages, filters suppressed
// findings, and returns the remainder sorted by position then rule.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunFiltered(pkgs, analyzers, nil)
}

// RunFiltered is Run with a reporting filter: when only is non-nil,
// findings are kept only for packages it accepts. The interprocedural
// analyzers still see the whole module (call graphs do not respect
// -changed boundaries); only the reporting is narrowed.
func RunFiltered(pkgs []*Package, analyzers []*Analyzer, only func(path string) bool) []Diagnostic {
	var diags []Diagnostic
	var interp *Interp
	for _, a := range analyzers {
		if a.RunModule != nil {
			interp = NewInterp(pkgs)
			break
		}
	}
	for _, pkg := range pkgs {
		if only != nil && !only(pkg.Path) {
			continue
		}
		for _, a := range analyzers {
			if a.Run == nil || !a.appliesTo(pkg.Path) {
				continue
			}
			a.Run(&Pass{
				Fset: pkg.Fset, Files: pkg.Files, Path: pkg.Path,
				Pkg: pkg.Types, Info: pkg.Info,
				rule: a.Name, out: &diags,
			})
		}
	}
	if len(pkgs) > 0 {
		for _, a := range analyzers {
			if a.RunModule == nil {
				continue
			}
			a.RunModule(&ModulePass{
				Fset: pkgs[0].Fset, Pkgs: pkgs, Interp: interp,
				analyzer: a, only: only, out: &diags,
			})
		}
	}
	diags = filterSuppressed(diags, pkgs)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return diags
}

// allowRe matches `lint:allow rule1,rule2 reason...`, capturing the
// rule list and the (mandatory — see Audit) trailing reason.
var allowRe = regexp.MustCompile(`^//\s*lint:allow\s+([a-z0-9_,-]+)[ \t]*(.*?)\s*$`)

// suppressions holds the allow state of one file.
type suppressions struct {
	fileWide map[string]bool
	// byLine[n] suppresses the named rules on line n.
	byLine map[int]map[string]bool
}

// collectSuppressions scans a file's comments for lint:allow
// directives. A directive above the package clause suppresses the rule
// for the whole file; elsewhere it suppresses findings on its own line
// and the immediately following line.
func collectSuppressions(fset *token.FileSet, f *ast.File) suppressions {
	s := suppressions{fileWide: map[string]bool{}, byLine: map[int]map[string]bool{}}
	pkgLine := fset.Position(f.Package).Line
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := allowRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			line := fset.Position(c.Pos()).Line
			for _, rule := range strings.Split(m[1], ",") {
				rule = strings.TrimSpace(rule)
				if rule == "" {
					continue
				}
				if line < pkgLine {
					s.fileWide[rule] = true
					continue
				}
				for _, l := range []int{line, line + 1} {
					if s.byLine[l] == nil {
						s.byLine[l] = map[string]bool{}
					}
					s.byLine[l][rule] = true
				}
			}
		}
	}
	return s
}

func filterSuppressed(diags []Diagnostic, pkgs []*Package) []Diagnostic {
	byFile := map[string]suppressions{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Package).Filename
			byFile[name] = collectSuppressions(pkg.Fset, f)
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		s, ok := byFile[d.File]
		if ok && (s.fileWide[d.Rule] || s.byLine[d.Line][d.Rule]) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
