package lint

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags call statements that silently discard an error result.
// A swallowed error in the planner or runtime turns an invariant
// violation (OOM, unschedulable graph, failed export) into silent
// divergence — the verifier can only catch what reaches it. Assigning
// the error to `_` is treated as an explicit, reviewable
// acknowledgment and is not flagged, nor are deferred cleanups —
// with one exception: `defer f.Close()` on an *os.File opened for
// writing. There the Close error is the write: buffered data is
// flushed at Close, and dropping it silently truncates the exported
// plan or metrics file. Close explicitly and return the error (see
// the write-then-Close helpers in the cmd/ tools), or suppress it
// inside a deferred closure with `_ = f.Close()` where a best-effort
// write is genuinely acceptable.
//
// Calls that cannot fail in practice are exempt: fmt.Print* to stdout,
// and any write to strings.Builder / bytes.Buffer (their Write methods
// are documented to always return a nil error).
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "call statement discards an error result",
	Run:  runErrDrop,
}

func runErrDrop(p *Pass) {
	errType := types.Universe.Lookup("error").Type()
	for _, f := range p.Files {
		writable := writableFiles(p, f)
		ast.Inspect(f, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok {
				checkDeferredClose(p, d, writable)
				return true
			}
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			t := p.TypeOf(call)
			if t == nil || !resultHasError(t, errType) {
				return true
			}
			if errExempt(p, call) {
				return true
			}
			p.Reportf(call.Pos(), "%s returns an error that is silently discarded (handle it or assign to _)", calleeName(p, call))
			return true
		})
	}
}

// writableFiles collects the *os.File variables in f that were opened
// for writing: assigned from os.Create, or from os.OpenFile with a
// flag expression mentioning any write-mode flag.
func writableFiles(p *Pass, f *ast.File) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := callee(p, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
			return true
		}
		switch fn.Name() {
		case "Create":
		case "OpenFile":
			if len(call.Args) < 2 || !hasWriteFlag(p, call.Args[1]) {
				return true
			}
		default:
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := p.Info.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := p.Info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// hasWriteFlag reports whether a flag expression names any os.O_*
// write-mode flag (O_WRONLY, O_RDWR, O_APPEND, O_CREATE, O_TRUNC).
func hasWriteFlag(p *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := p.Info.Uses[sel.Sel].(*types.Const)
		if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
			return true
		}
		switch obj.Name() {
		case "O_WRONLY", "O_RDWR", "O_APPEND", "O_CREATE", "O_TRUNC":
			found = true
		}
		return true
	})
	return found
}

// checkDeferredClose flags `defer f.Close()` when f was opened for
// writing in this file.
func checkDeferredClose(p *Pass, d *ast.DeferStmt, writable map[types.Object]bool) {
	sel, ok := d.Call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	obj := p.Info.Uses[id]
	if obj == nil || !writable[obj] {
		return
	}
	p.Reportf(d.Call.Pos(),
		"deferred Close on %s discards the flush error of a file opened for writing (close explicitly and return the error, or suppress with _ = %s.Close() in a deferred closure)",
		id.Name, id.Name)
}

func resultHasError(t types.Type, errType types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if types.Identical(tup.At(i).Type(), errType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errType)
}

// callee resolves the called function object, when statically known.
func callee(p *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

func calleeName(p *Pass, call *ast.CallExpr) string {
	if fn := callee(p, call); fn != nil {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			return types.TypeString(recv.Type(), types.RelativeTo(p.Pkg)) + "." + fn.Name()
		}
		if fn.Pkg() != nil && fn.Pkg() != p.Pkg {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "call"
}

// errExempt reports whether the call's discarded error is conventional:
// printing to stdout/stderr, or writing into an in-memory buffer.
func errExempt(p *Pass, call *ast.CallExpr) bool {
	fn := callee(p, call)
	if fn == nil {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		return isBufferType(recv.Type())
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		if len(call.Args) == 0 {
			return false
		}
		if isBufferType(p.TypeOf(call.Args[0])) {
			return true
		}
		// fmt.Fprintf(os.Stdout, ...) / os.Stderr: same convention as
		// fmt.Printf.
		if sel, ok := call.Args[0].(*ast.SelectorExpr); ok {
			if obj, ok := p.Info.Uses[sel.Sel].(*types.Var); ok && obj.Pkg() != nil &&
				obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr") {
				return true
			}
		}
	}
	return false
}

// isBufferType matches strings.Builder and bytes.Buffer (and pointers
// to them), whose writes never fail.
func isBufferType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (path == "strings" && name == "Builder") || (path == "bytes" && name == "Buffer")
}
