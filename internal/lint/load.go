package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Module is a loaded, type-checked Go module.
type Module struct {
	// Path is the module path from go.mod ("tsplit").
	Path string
	// Dir is the module root directory.
	Dir string
	// Pkgs are the module's packages in deterministic (import-path)
	// order.
	Pkgs []*Package
}

// LoadModule parses and type-checks every package of the module rooted
// at dir (the directory containing go.mod). Test files are skipped:
// the determinism rules guard production code, and tests legitimately
// use seeded randomness and order-insensitive assertions. Standard
// library imports are resolved by the compiler-independent source
// importer, so the loader needs no build cache and no external
// dependencies.
func LoadModule(dir string) (*Module, error) {
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(dir)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	type rawPkg struct {
		path    string
		dir     string // module-relative, forward slashes, "." for root
		files   []*ast.File
		imports []string // module-internal import paths
	}
	raw := map[string]*rawPkg{}
	var paths []string
	for _, d := range dirs {
		files, err := parseDir(fset, d)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		rel, err := filepath.Rel(dir, d)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		rp := &rawPkg{path: path, dir: filepath.ToSlash(rel), files: files}
		seen := map[string]bool{}
		for _, f := range files {
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if (p == modPath || strings.HasPrefix(p, modPath+"/")) && !seen[p] {
					seen[p] = true
					rp.imports = append(rp.imports, p)
				}
			}
		}
		sort.Strings(rp.imports)
		raw[path] = rp
		paths = append(paths, path)
	}
	sort.Strings(paths)

	// Type-check in dependency order so the importer can hand back
	// already-checked module packages.
	imp := &moduleImporter{
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		checked: map[string]*types.Package{},
	}
	m := &Module{Path: modPath, Dir: dir}
	state := map[string]int{} // 0 unvisited, 1 in progress, 2 done
	byPath := map[string]*Package{}
	var check func(path string) error
	check = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		rp := raw[path]
		for _, dep := range rp.imports {
			if dep == path {
				continue
			}
			if _, ok := raw[dep]; !ok {
				return fmt.Errorf("lint: %s imports unknown module package %s", path, dep)
			}
			if err := check(dep); err != nil {
				return err
			}
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp, FakeImportC: true}
		tpkg, err := conf.Check(path, fset, rp.files, info)
		if err != nil {
			return fmt.Errorf("lint: type-checking %s: %w", path, err)
		}
		imp.checked[path] = tpkg
		pkg := &Package{Path: path, Dir: rp.dir, Fset: fset, Files: rp.files, Types: tpkg, Info: info}
		byPath[path] = pkg
		state[path] = 2
		return nil
	}
	for _, path := range paths {
		if err := check(path); err != nil {
			return nil, err
		}
	}
	for _, path := range paths {
		m.Pkgs = append(m.Pkgs, byPath[path])
	}
	return m, nil
}

// moduleImporter resolves module-internal imports from the packages
// already checked in this load, and everything else through the source
// importer.
type moduleImporter struct {
	modPath string
	std     types.Importer
	checked map[string]*types.Package
}

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := im.checked[path]; ok {
		return pkg, nil
	}
	if path == im.modPath || strings.HasPrefix(path, im.modPath+"/") {
		return nil, fmt.Errorf("lint: module package %s imported before it was checked", path)
	}
	return im.std.Import(path)
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w (run from the module root)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// packageDirs lists every directory under root that may hold a
// package, skipping hidden directories, testdata, and vendor.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses the non-test Go files of one directory. Files whose
// build constraints — //go:build (or legacy // +build) lines and
// _GOOS/_GOARCH filename suffixes — exclude them from the current
// platform are skipped, exactly as `go build` would skip them:
// analyzing a file the build never compiles produces findings nobody
// can act on, and may not even type-check against the rest of the
// package. A file go/build cannot classify (e.g. no package clause)
// falls through to the parser so the load error names the real
// problem instead of hiding the file.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		if match, err := ctx.MatchFile(dir, name); err == nil && !match {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
