package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Interp is the shared interprocedural state built once per lint run:
// the module call graph, the parsed contract annotations, and one
// Summary per declared function, computed bottom-up over the call
// graph's strongly connected components so every summary can consult
// its callees' summaries.
type Interp struct {
	Pkgs      []*Package
	Graph     *CallGraph
	Ann       *Annotations
	Summaries map[*types.Func]*Summary
}

// lockMode orders lock strength: holding lockWrite satisfies a
// lockRead requirement, not vice versa.
type lockMode int

const (
	lockNone lockMode = iota
	lockRead
	lockWrite
)

func (m lockMode) String() string {
	if m == lockWrite {
		return "exclusively (Lock)"
	}
	return "for reading (RLock or Lock)"
}

// lockKey identifies a lock (or lock-owning object) instance inside
// one function: the root object a selector chain starts from plus the
// printed field path ("mu", "inner.mu"). Keying on the root
// types.Object makes the tracking shadowing-safe.
type lockKey struct {
	root types.Object
	path string
}

func (k lockKey) child(name string) lockKey {
	if k.path == "" {
		return lockKey{root: k.root, path: name}
	}
	return lockKey{root: k.root, path: k.path + "." + name}
}

// guardViol is one definite guardedby violation.
type guardViol struct {
	pkg string
	pos token.Pos
	msg string
}

// reqSite records a guarded receiver-field access that produced a
// caller-must-hold requirement.
type reqSite struct {
	pos   token.Pos
	field string
	need  lockMode
}

// Summary is the per-function contract summary the analyzers consume.
type Summary struct {
	FI *FuncInfo

	// Requires maps a receiver lock-field name to the mode callers
	// must hold when calling this function: the function accesses
	// guarded receiver fields (directly or through callees) without
	// taking the lock itself.
	Requires map[string]lockMode
	reqSites map[string][]reqSite

	// Violations are definite guardedby violations inside this body
	// (unguarded access on a non-receiver object, or a call site that
	// fails a callee's requirement).
	Violations []guardViol

	// NilSafe reports whether the method guards its receiver against
	// nil before any dereference (vacuously true for functions this
	// contract does not apply to). nilPos/nilWhat locate the first
	// offending dereference.
	NilSafe bool
	nilPos  token.Pos
	nilWhat string

	// DoneParams are the indices of *sync.WaitGroup parameters on
	// which this function calls Done, directly or transitively.
	DoneParams map[int]bool
}

// NewInterp builds the call graph, parses annotations, and computes
// all function summaries bottom-up.
func NewInterp(pkgs []*Package) *Interp {
	in := &Interp{
		Pkgs:      pkgs,
		Graph:     buildCallGraph(pkgs),
		Ann:       collectAnnotations(pkgs),
		Summaries: map[*types.Func]*Summary{},
	}
	for _, scc := range in.Graph.SCCs {
		for _, fi := range scc {
			in.Summaries[fi.Fn] = in.summarize(fi)
		}
	}
	return in
}

func (in *Interp) summarize(fi *FuncInfo) *Summary {
	sum := &Summary{
		FI:         fi,
		Requires:   map[string]lockMode{},
		reqSites:   map[string][]reqSite{},
		NilSafe:    true,
		DoneParams: map[int]bool{},
	}
	in.lockWalk(fi, sum)
	in.finishRequires(fi, sum)
	in.nilWalk(fi, sum)
	in.doneWalk(fi, sum)
	return sum
}

// receiverObj returns the declared receiver variable object, or nil.
func receiverObj(fi *FuncInfo) types.Object {
	if fi.Decl.Recv == nil || len(fi.Decl.Recv.List) == 0 {
		return nil
	}
	names := fi.Decl.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return nil
	}
	return fi.Pkg.Info.Defs[names[0]]
}

// finishRequires decides whether a non-empty requirement set is
// legitimate (an unexported locked-context helper whose call sites are
// all visible and checked) or a violation in its own right: exported
// methods, address-taken functions, interface implementations invoked
// dynamically, and functions with no in-module callers have caller
// sets the analysis cannot vouch for, so "my caller holds the lock"
// is not a proof there.
func (in *Interp) finishRequires(fi *FuncInfo, sum *Summary) {
	if len(sum.Requires) == 0 {
		return
	}
	reason := ""
	switch {
	case fi.Decl.Name.IsExported():
		reason = "it is exported, so callers outside the module cannot be assumed to hold the lock"
	case fi.AddressTaken:
		reason = "its identifier escapes as a value, so its caller set is unknown"
	case len(fi.Callers) == 0:
		reason = "it has no in-module callers to prove the lock is held"
	default:
		for _, e := range fi.Callers {
			if e.ViaInterface {
				reason = "it is reachable through an interface call, so its caller set is unknown"
				break
			}
		}
	}
	if reason == "" {
		return // unexported helper: every call site is checked by its caller's walk.
	}
	locks := make([]string, 0, len(sum.Requires))
	for l := range sum.Requires {
		locks = append(locks, l)
	}
	sort.Strings(locks)
	for _, l := range locks {
		for _, site := range sum.reqSites[l] {
			sum.Violations = append(sum.Violations, guardViol{
				pkg: fi.Pkg.Path, pos: site.pos,
				msg: fmt.Sprintf("field %s is guarded by %q (lint:guardedby) and must be held %s; %s does not hold it and %s",
					site.field, l, site.need, fi, reason),
			})
		}
	}
	sum.Requires = map[string]lockMode{}
}

// ---------------------------------------------------------------------
// guardedby: lock-set simulation
// ---------------------------------------------------------------------

// lockSim walks one function body in source order, tracking the set of
// held locks. The simulation is linear (a lint approximation, not a
// dataflow fixpoint) with two refinements that match real locking
// style: a branch that terminates (returns, panics, breaks) has its
// lock-state changes discarded, and `defer mu.Unlock()` leaves the
// lock held for the rest of the body. Objects freshly constructed in
// this function (`s = &series{...}`) are exempt until they escape —
// an unpublished object needs no lock.
type lockSim struct {
	in    *Interp
	fi    *FuncInfo
	sum   *Summary
	recv  types.Object
	held  map[lockKey]lockMode
	fresh map[types.Object]bool
}

func (in *Interp) lockWalk(fi *FuncInfo, sum *Summary) {
	w := &lockSim{
		in: in, fi: fi, sum: sum,
		recv: receiverObj(fi),
		held: map[lockKey]lockMode{}, fresh: map[types.Object]bool{},
	}
	w.stmts(fi.Decl.Body.List)
}

func (w *lockSim) typeOf(e ast.Expr) types.Type { return w.fi.Pkg.Info.TypeOf(e) }

func (w *lockSim) objOf(id *ast.Ident) types.Object {
	if o := w.fi.Pkg.Info.Uses[id]; o != nil {
		return o
	}
	return w.fi.Pkg.Info.Defs[id]
}

// keyOf renders a selector chain rooted at an identifier into a
// trackable lock key.
func (w *lockSim) keyOf(e ast.Expr) (lockKey, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := w.objOf(e); obj != nil {
			return lockKey{root: obj}, true
		}
	case *ast.SelectorExpr:
		if k, ok := w.keyOf(e.X); ok {
			return k.child(e.Sel.Name), true
		}
	case *ast.StarExpr:
		return w.keyOf(e.X)
	}
	return lockKey{}, false
}

func (w *lockSim) copyHeld() map[lockKey]lockMode {
	cp := make(map[lockKey]lockMode, len(w.held))
	for k, v := range w.held {
		cp[k] = v
	}
	return cp
}

func (w *lockSim) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *lockSim) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.ExprStmt:
		w.expr(s.X, lockRead)
	case *ast.AssignStmt:
		w.assign(s)
	case *ast.IncDecStmt:
		w.expr(s.X, lockWrite)
	case *ast.DeferStmt:
		w.deferStmt(s)
	case *ast.GoStmt:
		// The goroutine runs concurrently: judge its body with an
		// empty lock set, and its lock operations do not affect us.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			sub := &lockSim{in: w.in, fi: w.fi, sum: w.sum, recv: w.recv,
				held: map[lockKey]lockMode{}, fresh: map[types.Object]bool{}}
			sub.stmts(fl.Body.List)
		} else {
			w.expr(s.Call.Fun, lockRead)
		}
		for _, a := range s.Call.Args {
			w.expr(a, lockRead)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, lockRead)
		}
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond, lockRead)
		saved := w.copyHeld()
		w.stmt(s.Body)
		if terminates(s.Body) {
			w.held = saved
		}
		if s.Else != nil {
			saved = w.copyHeld()
			w.stmt(s.Else)
			if b, ok := s.Else.(*ast.BlockStmt); ok && terminates(b) {
				w.held = saved
			}
		}
	case *ast.ForStmt:
		w.stmt(s.Init)
		if s.Cond != nil {
			w.expr(s.Cond, lockRead)
		}
		w.stmt(s.Body)
		w.stmt(s.Post)
	case *ast.RangeStmt:
		w.expr(s.X, lockRead)
		w.stmt(s.Body)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		if s.Tag != nil {
			w.expr(s.Tag, lockRead)
		}
		w.clauses(s.Body)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		w.clauses(s.Body)
	case *ast.SelectStmt:
		w.clauses(s.Body)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.SendStmt:
		w.expr(s.Chan, lockRead)
		w.expr(s.Value, lockRead)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					w.expr(v, lockRead)
				}
			}
		}
	}
}

// clauses processes each case/comm clause of a switch or select
// against the pre-switch lock state: the branches are alternatives, so
// none of their lock mutations is assumed afterwards.
func (w *lockSim) clauses(body *ast.BlockStmt) {
	saved := w.copyHeld()
	for _, c := range body.List {
		w.held = saved
		saved = w.copyHeld()
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.expr(e, lockRead)
			}
			w.stmts(c.Body)
		case *ast.CommClause:
			w.stmt(c.Comm)
			w.stmts(c.Body)
		}
	}
	w.held = saved
}

func (w *lockSim) assign(s *ast.AssignStmt) {
	for _, r := range s.Rhs {
		w.expr(r, lockRead)
	}
	for i, l := range s.Lhs {
		w.expr(l, lockWrite)
		// Freshness tracking: a local bound to a composite literal is
		// an unpublished object; any other assignment (or use on a
		// RHS, see expr) clears it.
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := w.objOf(id)
		if obj == nil {
			continue
		}
		if i < len(s.Rhs) && len(s.Lhs) == len(s.Rhs) && isFreshValue(s.Rhs[i]) {
			w.fresh[obj] = true
		} else {
			delete(w.fresh, obj)
		}
	}
}

// isFreshValue matches &T{...} and T{...} construction expressions.
func isFreshValue(e ast.Expr) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	_, ok := e.(*ast.CompositeLit)
	return ok
}

func (w *lockSim) deferStmt(s *ast.DeferStmt) {
	call := s.Call
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && len(call.Args) == 0 {
		if sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock" {
			if _, ok := mutexKind(w.typeOf(sel.X)); ok {
				return // deferred unlock: the lock stays held to the end.
			}
		}
	}
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		// A deferred closure runs at return time; in the dominant
		// Lock+defer style the current lock set still holds then.
		sub := &lockSim{in: w.in, fi: w.fi, sum: w.sum, recv: w.recv,
			held: w.copyHeld(), fresh: w.fresh}
		sub.stmts(fl.Body.List)
		return
	}
	// Arguments are evaluated now; the call itself runs later, so
	// callee lock requirements are not checked against today's state.
	for _, a := range call.Args {
		w.expr(a, lockRead)
	}
}

func (w *lockSim) expr(e ast.Expr, mode lockMode) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident, *ast.BasicLit:
		// Field accesses are always selector expressions in Go, so a
		// bare identifier is never a guarded access.
	case *ast.SelectorExpr:
		w.checkFieldAccess(e, mode)
		w.expr(e.X, lockRead)
	case *ast.CallExpr:
		w.call(e)
	case *ast.IndexExpr:
		w.expr(e.X, mode)
		w.expr(e.Index, lockRead)
	case *ast.IndexListExpr:
		w.expr(e.X, mode)
		for _, i := range e.Indices {
			w.expr(i, lockRead)
		}
	case *ast.SliceExpr:
		w.expr(e.X, mode)
		w.expr(e.Low, lockRead)
		w.expr(e.High, lockRead)
		w.expr(e.Max, lockRead)
	case *ast.StarExpr:
		w.expr(e.X, mode)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			w.expr(e.X, lockWrite) // &x.f: the pointer may be written through
		} else {
			w.expr(e.X, lockRead)
		}
	case *ast.BinaryExpr:
		w.expr(e.X, lockRead)
		w.expr(e.Y, lockRead)
	case *ast.ParenExpr:
		w.expr(e.X, mode)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.expr(kv.Value, lockRead)
			} else {
				w.expr(el, lockRead)
			}
		}
	case *ast.FuncLit:
		// Synchronously invoked or escaping closure: judge it against
		// the current lock set (sound for the common sort.Slice /
		// immediate-invoke shapes; `go` closures are handled in stmt).
		sub := &lockSim{in: w.in, fi: w.fi, sum: w.sum, recv: w.recv,
			held: w.copyHeld(), fresh: map[types.Object]bool{}}
		sub.stmts(e.Body.List)
	case *ast.TypeAssertExpr:
		w.expr(e.X, lockRead)
	case *ast.KeyValueExpr:
		w.expr(e.Value, lockRead)
	}
}

// call handles Lock/Unlock recognition and callee-requirement checks.
func (w *lockSim) call(call *ast.CallExpr) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && len(call.Args) == 0 {
		rw, isMutex := mutexKind(w.typeOf(sel.X))
		if isMutex {
			key, trackable := w.keyOf(sel.X)
			if trackable {
				switch sel.Sel.Name {
				case "Lock":
					w.held[key] = lockWrite
				case "RLock":
					if rw {
						w.held[key] = lockRead
					}
				case "Unlock", "RUnlock":
					delete(w.held, key)
				case "TryLock":
					// Result-dependent; the linear model cannot track it.
				}
			}
			return
		}
	}
	w.checkCalleeRequires(call)
	w.expr(call.Fun, lockRead)
	for _, a := range call.Args {
		w.expr(a, lockRead)
	}
}

// checkCalleeRequires verifies a callee's lock requirements against
// the current lock set, propagating unprovable receiver requirements
// into this function's own summary.
func (w *lockSim) checkCalleeRequires(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return // requirements only arise on methods, which need a receiver
	}
	fn, ok := w.fi.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sum := w.in.Summaries[fn]
	if sum == nil || len(sum.Requires) == 0 {
		return
	}
	recvKey, trackable := w.keyOf(sel.X)
	locks := make([]string, 0, len(sum.Requires))
	for l := range sum.Requires {
		locks = append(locks, l)
	}
	sort.Strings(locks)
	for _, lock := range locks {
		need := sum.Requires[lock]
		if trackable {
			if have := w.held[recvKey.child(lock)]; have >= need {
				continue
			}
			if w.recv != nil && recvKey.root == w.recv && recvKey.path == "" {
				// Propagate: our caller must hold the receiver's lock.
				if w.sum.Requires[lock] < need {
					w.sum.Requires[lock] = need
				}
				w.sum.reqSites[lock] = append(w.sum.reqSites[lock], w.calleeReqSites(sum, lock)...)
				continue
			}
		}
		w.sum.Violations = append(w.sum.Violations, guardViol{
			pkg: w.fi.Pkg.Path, pos: call.Pos(),
			msg: fmt.Sprintf("call to %s requires %q held %s (it accesses lint:guardedby fields), but the lock is not held here",
				sum.FI, lock, need),
		})
	}
}

// calleeReqSites rewrites a callee's requirement sites as our own,
// anchored at the sites inside the callee (more precise than the call
// position for the eventual report).
func (w *lockSim) calleeReqSites(callee *Summary, lock string) []reqSite {
	sites := callee.reqSites[lock]
	out := make([]reqSite, len(sites))
	copy(out, sites)
	return out
}

// checkFieldAccess judges one selector against the guardedby table.
func (w *lockSim) checkFieldAccess(sel *ast.SelectorExpr, mode lockMode) {
	v, ok := w.fi.Pkg.Info.Uses[sel.Sel].(*types.Var)
	if !ok {
		return
	}
	spec := w.in.Ann.Guarded[v]
	if spec == nil {
		return
	}
	baseKey, trackable := w.keyOf(sel.X)
	if trackable && baseKey.path == "" && w.fresh[baseKey.root] {
		return // freshly constructed, unpublished object: no lock needed.
	}
	need := lockRead
	if mode == lockWrite {
		need = lockWrite
	}
	if trackable {
		if have := w.held[baseKey.child(spec.Lock)]; have >= need {
			return
		}
		if w.recv != nil && baseKey.root == w.recv && baseKey.path == "" {
			if w.sum.Requires[spec.Lock] < need {
				w.sum.Requires[spec.Lock] = need
			}
			w.sum.reqSites[spec.Lock] = append(w.sum.reqSites[spec.Lock],
				reqSite{pos: sel.Pos(), field: fieldDesc(v, spec), need: need})
			return
		}
	}
	w.sum.Violations = append(w.sum.Violations, guardViol{
		pkg: w.fi.Pkg.Path, pos: sel.Pos(),
		msg: fmt.Sprintf("field %s is guarded by %q (lint:guardedby) and must be held %s here",
			fieldDesc(v, spec), spec.Lock, need),
	})
}

func fieldDesc(v *types.Var, spec *GuardSpec) string {
	if spec.Owner != nil {
		return spec.Owner.Obj().Name() + "." + v.Name()
	}
	return v.Name()
}

// terminates reports whether a block always transfers control out of
// the enclosing flow: its last statement is a return, branch, or a
// call that never returns (panic, os.Exit, log.Fatal*).
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				return fun.Name == "panic"
			case *ast.SelectorExpr:
				name := fun.Sel.Name
				return name == "Exit" || name == "Fatal" || name == "Fatalf" || name == "Fatalln"
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------
// nilsafe: receiver nil-check-before-dereference
// ---------------------------------------------------------------------

// nilSim walks a method of a lint:nilsafe type, tracking whether a
// nil-receiver guard has executed. Before the guard, any receiver
// dereference — a field selector, or a call to a method that is not
// itself nil-safe — is a contract violation. `if r == nil { return }`
// (optionally `r == nil || more`) establishes the guard when its body
// terminates; `if r != nil { ... }` guards its own body.
type nilSim struct {
	in      *Interp
	fi      *FuncInfo
	sum     *Summary
	recv    types.Object
	checked bool
}

func (in *Interp) nilWalk(fi *FuncInfo, sum *Summary) {
	recvT := fi.Fn.Type().(*types.Signature).Recv()
	if recvT == nil {
		return
	}
	ptr, ok := recvT.Type().(*types.Pointer)
	if !ok {
		return // value receiver: never nil.
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || !in.Ann.NilSafe[named.Obj()] {
		return
	}
	recv := receiverObj(fi)
	if recv == nil {
		return // unnamed receiver: the body cannot dereference it.
	}
	w := &nilSim{in: in, fi: fi, sum: sum, recv: recv}
	w.stmts(fi.Decl.Body.List)
}

func (w *nilSim) deref(pos token.Pos, what string) {
	if !w.sum.NilSafe {
		return
	}
	w.sum.NilSafe = false
	w.sum.nilPos = pos
	w.sum.nilWhat = what
}

func (w *nilSim) isRecv(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	return w.fi.Pkg.Info.Uses[id] == w.recv
}

func (w *nilSim) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *nilSim) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.IfStmt:
		w.stmt(s.Init)
		switch kind, rest := w.guardKind(s.Cond); kind {
		case guardIsNil:
			// `if r == nil || rest { ... }`: rest only evaluates when
			// r != nil; the body may run with r nil.
			if rest != nil {
				w.withChecked(true, func() { w.expr(rest) })
			}
			w.stmt(s.Body)
			w.stmt(s.Else)
			if terminates(s.Body) && s.Else == nil {
				w.checked = true
			}
			return
		case guardNonNil:
			if rest != nil {
				w.withChecked(true, func() { w.expr(rest) })
			}
			w.withChecked(true, func() { w.stmt(s.Body) })
			w.stmt(s.Else)
			return
		default:
			w.expr(s.Cond)
			w.stmt(s.Body)
			w.stmt(s.Else)
		}
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.DeferStmt:
		w.expr(s.Call.Fun)
		for _, a := range s.Call.Args {
			w.expr(a)
		}
	case *ast.GoStmt:
		w.expr(s.Call.Fun)
		for _, a := range s.Call.Args {
			w.expr(a)
		}
	case *ast.ForStmt:
		w.stmt(s.Init)
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.stmt(s.Body)
		w.stmt(s.Post)
	case *ast.RangeStmt:
		w.expr(s.X)
		w.stmt(s.Body)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		w.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		w.stmt(s.Body)
	case *ast.SelectStmt:
		w.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e)
		}
		w.stmts(s.Body)
	case *ast.CommClause:
		w.stmt(s.Comm)
		w.stmts(s.Body)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	}
}

func (w *nilSim) withChecked(v bool, fn func()) {
	saved := w.checked
	w.checked = v || saved
	fn()
	w.checked = saved
}

type guardClass int

const (
	guardNone guardClass = iota
	guardIsNil
	guardNonNil
)

// guardKind classifies an if-condition with respect to the receiver:
// `r == nil` (possibly || rest) or `r != nil` (possibly && rest).
func (w *nilSim) guardKind(cond ast.Expr) (guardClass, ast.Expr) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return guardNone, nil
	}
	switch be.Op {
	case token.EQL, token.NEQ:
		if w.nilCompare(be) {
			if be.Op == token.EQL {
				return guardIsNil, nil
			}
			return guardNonNil, nil
		}
	case token.LOR:
		if kind, _ := w.guardKind(be.X); kind == guardIsNil {
			return guardIsNil, be.Y
		}
	case token.LAND:
		if kind, _ := w.guardKind(be.X); kind == guardNonNil {
			return guardNonNil, be.Y
		}
	}
	return guardNone, nil
}

func (w *nilSim) nilCompare(be *ast.BinaryExpr) bool {
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (w.isRecv(be.X) && isNil(be.Y)) || (isNil(be.X) && w.isRecv(be.Y))
}

func (w *nilSim) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && w.isRecv(sel.X) && !w.checked {
			if !w.calleeNilSafe(sel.Sel) {
				w.deref(sel.Pos(), fmt.Sprintf("calls %s.%s, which dereferences the receiver", w.recv.Name(), sel.Sel.Name))
			}
			for _, a := range e.Args {
				w.expr(a)
			}
			return
		}
		w.expr(e.Fun)
		for _, a := range e.Args {
			w.expr(a)
		}
	case *ast.SelectorExpr:
		if w.isRecv(e.X) && !w.checked {
			w.deref(e.Pos(), fmt.Sprintf("accesses %s.%s", w.recv.Name(), e.Sel.Name))
			return
		}
		w.expr(e.X)
	case *ast.StarExpr:
		if w.isRecv(e.X) && !w.checked {
			w.deref(e.Pos(), fmt.Sprintf("dereferences *%s", w.recv.Name()))
			return
		}
		w.expr(e.X)
	case *ast.ParenExpr:
		w.expr(e.X)
	case *ast.UnaryExpr:
		w.expr(e.X)
	case *ast.BinaryExpr:
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.IndexExpr:
		w.expr(e.X)
		w.expr(e.Index)
	case *ast.SliceExpr:
		w.expr(e.X)
		w.expr(e.Low)
		w.expr(e.High)
		w.expr(e.Max)
	case *ast.TypeAssertExpr:
		w.expr(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Value)
	case *ast.FuncLit:
		// The closure may run before any later guard; judge it under
		// the state at its creation point.
		w.stmts(e.Body.List)
	}
}

// calleeNilSafe reports whether calling the named method on a nil
// receiver is safe: it must be a pointer-receiver method whose summary
// proved nil-safety. Value-receiver methods auto-dereference.
func (w *nilSim) calleeNilSafe(sel *ast.Ident) bool {
	fn, ok := w.fi.Pkg.Info.Uses[sel].(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	if _, ok := recv.Type().(*types.Pointer); !ok {
		return false
	}
	sum := w.in.Summaries[fn]
	// A missing summary (mutual recursion inside one SCC, or an
	// out-of-module method) is conservatively unsafe.
	return sum != nil && sum.NilSafe
}

// ---------------------------------------------------------------------
// gojoin support: WaitGroup Done-parameter propagation
// ---------------------------------------------------------------------

// doneWalk records which *sync.WaitGroup parameters this function
// calls Done on, directly or by forwarding the parameter to a callee
// that does (the interprocedural half of the gojoin check:
// `go worker(&wg)` joins when worker's summary proves the Done).
func (in *Interp) doneWalk(fi *FuncInfo, sum *Summary) {
	sig := fi.Fn.Type().(*types.Signature)
	wgParams := map[types.Object]int{}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isWaitGroupPtr(params.At(i).Type()) {
			// Map the declaration object via the AST parameter list so
			// body identifiers resolve to it.
			wgParams[params.At(i)] = i
		}
	}
	if len(wgParams) == 0 {
		return
	}
	info := fi.Pkg.Info
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && len(call.Args) == 0 {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if idx, ok := wgParams[info.Uses[id]]; ok {
					sum.DoneParams[idx] = true
				}
			}
			return true
		}
		// Forwarding: wg passed to a callee whose summary calls Done
		// on that parameter.
		var callee *types.Func
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			callee, _ = info.Uses[fun].(*types.Func)
		case *ast.SelectorExpr:
			callee, _ = info.Uses[fun.Sel].(*types.Func)
		}
		if callee == nil {
			return true
		}
		csum := in.Summaries[callee]
		if csum == nil || len(csum.DoneParams) == 0 {
			return true
		}
		for j, arg := range call.Args {
			if !csum.DoneParams[j] {
				continue
			}
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if idx, ok := wgParams[info.Uses[id]]; ok {
					sum.DoneParams[idx] = true
				}
			}
		}
		return true
	})
}

func isWaitGroupPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}
