package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoJoin requires every `go` statement in the planner, simulator, and
// experiment packages to be provably joined. These packages share
// pooled arenas and an invalidating candidate index; a goroutine that
// outlives its spawner keeps references into recycled planner state,
// which is exactly the class of use-after-reset bug the PlannerPool
// contract excludes. Two join shapes are recognized:
//
//   - WaitGroup: the goroutine calls wg.Done() (directly, deferred, or
//     through a called function whose summary proves Done on the
//     *sync.WaitGroup argument — `go worker(&wg, i)`), and the
//     spawning function calls wg.Add(...) and has a wg.Wait() after
//     the spawn. A wg that is itself a *sync.WaitGroup parameter is
//     accepted: the caller owns the join.
//   - channel collect: the goroutine sends on a channel the spawning
//     function receives from (or ranges over) after the spawn.
//
// Anything else — a fire-and-forget goroutine, a Done with no Wait, a
// send nobody receives — is a finding.
var GoJoin = &Analyzer{
	Name: "gojoin",
	Doc:  "go statement without a provable join (WaitGroup pairing or channel collect)",
	Packages: []string{
		"tsplit/internal/core",
		"tsplit/internal/sim",
		"tsplit/internal/experiments",
		"tsplit/internal/serve",
	},
	RunModule: runGoJoin,
}

func runGoJoin(mp *ModulePass) {
	for _, scc := range mp.Interp.Graph.SCCs {
		for _, fi := range scc {
			if !mp.analyzer.appliesTo(fi.Pkg.Path) {
				continue
			}
			checkGoJoins(mp, fi)
		}
	}
}

// joinContext is what the spawning function offers: WaitGroups it
// Adds/Waits on and channels it receives from, with positions.
type joinContext struct {
	adds     map[types.Object]bool
	waits    map[types.Object][]token.Pos
	receives map[types.Object][]token.Pos
}

func checkGoJoins(mp *ModulePass, fi *FuncInfo) {
	var gos []*ast.GoStmt
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			gos = append(gos, g)
		}
		return true
	})
	if len(gos) == 0 {
		return
	}
	ctx := collectJoinContext(fi)
	for _, g := range gos {
		if !goJoined(mp.Interp, fi, g, ctx) {
			mp.Reportf(fi.Pkg.Path, g.Pos(),
				"goroutine spawned in %s is never joined: pair it with WaitGroup Add/Done/Wait or collect a result over a channel so it cannot outlive its spawner", fi)
		}
	}
}

func collectJoinContext(fi *FuncInfo) *joinContext {
	ctx := &joinContext{
		adds:     map[types.Object]bool{},
		waits:    map[types.Object][]token.Pos{},
		receives: map[types.Object][]token.Pos{},
	}
	info := fi.Pkg.Info
	objOf := func(e ast.Expr) types.Object {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			return info.Uses[id]
		}
		return nil
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := objOf(sel.X)
			if obj == nil {
				return true
			}
			switch sel.Sel.Name {
			case "Add":
				ctx.adds[obj] = true
			case "Wait":
				ctx.waits[obj] = append(ctx.waits[obj], n.Pos())
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if obj := objOf(n.X); obj != nil {
					ctx.receives[obj] = append(ctx.receives[obj], n.Pos())
				}
			}
		case *ast.RangeStmt:
			if obj := objOf(n.X); obj != nil {
				if _, ok := info.TypeOf(n.X).Underlying().(*types.Chan); ok {
					ctx.receives[obj] = append(ctx.receives[obj], n.Pos())
				}
			}
		}
		return true
	})
	return ctx
}

// goJoined decides one go statement against the spawning function's
// join context.
func goJoined(in *Interp, fi *FuncInfo, g *ast.GoStmt, ctx *joinContext) bool {
	dones, sends := goroutineSignals(in, fi, g)
	for wg := range dones {
		// A *sync.WaitGroup parameter delegates the join to the
		// caller that owns the Add/Wait.
		if isParam(fi, wg) && isWaitGroupPtr(wg.Type()) {
			return true
		}
		if !ctx.adds[wg] {
			continue
		}
		for _, pos := range ctx.waits[wg] {
			if pos > g.Pos() {
				return true
			}
		}
	}
	for ch := range sends {
		for _, pos := range ctx.receives[ch] {
			if pos > g.Pos() {
				return true
			}
		}
	}
	return false
}

// goroutineSignals extracts the join signals a spawned goroutine
// emits: the WaitGroup objects it calls Done on and the channel
// objects it sends to.
func goroutineSignals(in *Interp, fi *FuncInfo, g *ast.GoStmt) (dones, sends map[types.Object]bool) {
	dones = map[types.Object]bool{}
	sends = map[types.Object]bool{}
	info := fi.Pkg.Info
	objOf := func(e ast.Expr) types.Object {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			return info.Uses[id]
		}
		return nil
	}

	if fl, ok := g.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok &&
					sel.Sel.Name == "Done" && len(n.Args) == 0 {
					if obj := objOf(sel.X); obj != nil {
						dones[obj] = true
					}
				}
				// Done through a summarized helper called inside the
				// goroutine body.
				addCalleeDones(in, info, n, objOf, dones)
			case *ast.SendStmt:
				if obj := objOf(n.Chan); obj != nil {
					sends[obj] = true
				}
			}
			return true
		})
		return dones, sends
	}

	// `go worker(&wg, i)`: the callee's summary proves the Done.
	addCalleeDones(in, info, g.Call, objOf, dones)
	return dones, sends
}

// addCalleeDones records Done-providing *sync.WaitGroup arguments of a
// call, using the callee's interprocedural summary.
func addCalleeDones(in *Interp, info *types.Info, call *ast.CallExpr, objOf func(ast.Expr) types.Object, dones map[types.Object]bool) {
	var callee *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		callee, _ = info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = info.Uses[fun.Sel].(*types.Func)
	}
	if callee == nil {
		return
	}
	sum := in.Summaries[callee]
	if sum == nil || len(sum.DoneParams) == 0 {
		return
	}
	for j, arg := range call.Args {
		if !sum.DoneParams[j] {
			continue
		}
		e := ast.Unparen(arg)
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = ast.Unparen(u.X)
		}
		if id, ok := e.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				dones[obj] = true
			}
		}
	}
}

// isParam reports whether obj is a parameter of fi.
func isParam(fi *FuncInfo, obj types.Object) bool {
	params := fi.Fn.Type().(*types.Signature).Params()
	for i := 0; i < params.Len(); i++ {
		if params.At(i) == obj {
			return true
		}
	}
	return false
}
