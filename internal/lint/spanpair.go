package lint

import (
	"go/ast"
	"go/types"
)

// SpanPair enforces the tracing contract in the instrumented packages:
// every span opened with StartSpan must be closed. An unclosed span
// exports forever-open (-1 duration) nodes that poison the phase-
// latency percentiles tsplit-doctor computes, and — worse — silently
// under-reports whole phases when the leak is on the hot path.
//
// A StartSpan call is flagged when its result is
//
//   - discarded outright (an expression statement, or assigned to _),
//     or
//   - bound to a local identifier on which no End() call appears
//     anywhere in the same function (a deferred End counts).
//
// Results that escape the function — returned, passed as an argument,
// or stored into a field — are the caller's responsibility and are
// not flagged. Function literals are separate scopes: a span opened
// in a closure must be ended in that closure.
var SpanPair = &Analyzer{
	Name: "spanpair",
	Doc:  "StartSpan without a dominating End/defer End in the same function",
	Packages: []string{
		"tsplit/internal/core",
		"tsplit/internal/sim",
		"tsplit/internal/resilient",
		"tsplit/internal/serve",
	},
	Run: runSpanPair,
}

func runSpanPair(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkSpanPairs(p, fn.Body)
		}
	}
}

// checkSpanPairs inspects one function (or function-literal) body.
// It runs in two passes: collect every identifier that has .End()
// called on it, then judge each StartSpan site against that set.
func checkSpanPairs(p *Pass, body *ast.BlockStmt) {
	ended := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures are their own scope, judged separately.
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" || len(call.Args) != 0 {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			ended[id.Name] = true
		}
		return true
	})

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(node ast.Node) bool {
			switch s := node.(type) {
			case *ast.FuncLit:
				checkSpanPairs(p, s.Body)
				return false
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok && isStartSpan(p, call) {
					p.Reportf(call.Pos(), "StartSpan result discarded: the span can never be ended")
					return false
				}
			case *ast.AssignStmt:
				if len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for i, rhs := range s.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || !isStartSpan(p, call) {
						continue
					}
					id, ok := s.Lhs[i].(*ast.Ident)
					if !ok {
						continue // field store: the span escapes.
					}
					if id.Name == "_" {
						p.Reportf(call.Pos(), "StartSpan result discarded: the span can never be ended")
						continue
					}
					if !ended[id.Name] {
						p.Reportf(call.Pos(), "span %q is started but never ended in this function: add %s.End() or defer %s.End()", id.Name, id.Name, id.Name)
					}
				}
			}
			return true
		})
	}
	walk(body)
}

// isStartSpan reports whether call is a StartSpan method call on an
// obs tracing type (*Tracer or *Span — matched by type name so the
// rule also covers the re-exported aliases).
func isStartSpan(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "StartSpan" {
		return false
	}
	t := p.TypeOf(sel.X)
	if t == nil {
		return true // untyped synthetic source: name match decides.
	}
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return name == "Tracer" || name == "Span"
}
