package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ClockDet flags wall-clock reads and ambient randomness: a time.Now
// (or Since/Until/After/Tick/timer) call, or a math/rand import,
// anywhere outside the allowlist. Plans, simulator timestamps, and
// exported artifacts must be pure functions of (graph, schedule,
// device, options); the only sanctioned wall-clock source is the
// injectable clock in internal/obs/clock.go, which callers thread
// through options so tests can substitute a fake, and the only
// sanctioned randomness source is the explicitly-seeded generator in
// internal/faults/rand.go.
var ClockDet = &Analyzer{
	Name: "clockdet",
	Doc:  "wall clock (time.Now) or ambient randomness (math/rand) outside the clock allowlist",
	Run:  runClockDet,
}

// clockAllowedFiles are module-relative paths where reading the real
// clock is the point. Keep this list minimal: new entries mean new
// nondeterminism audits.
var clockAllowedFiles = []string{
	"internal/obs/clock.go",
	// The fault injector's generator is explicitly seeded: same seed,
	// same byte stream. Randomness there is deterministic by design.
	"internal/faults/rand.go",
}

// clockFuncs are the time-package functions that read the wall clock
// or schedule against it.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

func runClockDet(p *Pass) {
	for _, f := range p.Files {
		name := p.Fset.Position(f.Package).Filename
		if clockFileAllowed(name) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(), "import of %s: ambient randomness breaks plan determinism (seed an explicit source in tests, or //lint:allow clockdet)", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Info.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if clockFuncs[fn.Name()] {
				p.Reportf(call.Pos(), "time.%s reads the wall clock: thread an obs.Clock through options instead (allowlisted only in internal/obs/clock.go)", fn.Name())
			}
			return true
		})
	}
}

func clockFileAllowed(file string) bool {
	norm := strings.ReplaceAll(file, "\\", "/")
	for _, allowed := range clockAllowedFiles {
		if strings.HasSuffix(norm, allowed) {
			return true
		}
	}
	return false
}
