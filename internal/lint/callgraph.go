package lint

import (
	"go/ast"
	"go/types"
)

// The interprocedural layer starts from a module-level call graph over
// go/types objects. Nodes are the functions and methods *declared in
// the module* (bodies we can see); edges are resolved statically:
//
//   - direct calls (`f(x)`, `pkg.F(x)`) through Info.Uses;
//   - method calls on concrete receivers (`r.m()`) through
//     Info.Selections;
//   - method calls on interface receivers, resolved to every in-module
//     named type whose method set implements the interface — each
//     implementation gets an edge, and the edge is marked ViaInterface
//     so consumers know the target set is a superset, not an identity.
//
// Calls through function values, reflection, or out-of-module
// interfaces have no edges; a function whose identifier escapes as a
// value is marked AddressTaken so analyses that reason about "all
// callers" (guardedby's caller-holds-the-lock proofs) refuse to trust
// the static caller list for it.

// FuncInfo is one module function in the call graph.
type FuncInfo struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// Callees/Callers are the static edges touching this function.
	Callees []*CallEdge
	Callers []*CallEdge

	// AddressTaken is set when the function's identifier is used
	// other than as the operand of a call: passed as a value, stored
	// in a field, bound as a method value. Its static caller list is
	// then incomplete by construction.
	AddressTaken bool

	// scc is the index of this function's strongly connected
	// component in CallGraph.SCCs.
	scc int
}

// String renders the function for diagnostics ("(*Registry).get").
func (fi *FuncInfo) String() string {
	fn := fi.Fn
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return "(" + types.TypeString(recv.Type(), types.RelativeTo(fn.Pkg())) + ")." + fn.Name()
	}
	return fn.Name()
}

// CallEdge is one static call site.
type CallEdge struct {
	Caller, Callee *FuncInfo
	Site           *ast.CallExpr
	// Recv is the receiver expression at the call site (nil for plain
	// function calls).
	Recv ast.Expr
	// ViaInterface marks edges added by interface-implementation
	// resolution: the callee is a *possible* target, not the proven one.
	ViaInterface bool
}

// CallGraph is the module call graph plus its condensation order.
type CallGraph struct {
	Funcs map[*types.Func]*FuncInfo
	// SCCs lists the strongly connected components bottom-up: every
	// callee's component appears before its callers' (Tarjan emits
	// them in reverse topological order of the condensation).
	SCCs [][]*FuncInfo
}

// SameSCC reports whether a and b are mutually recursive.
func (g *CallGraph) SameSCC(a, b *FuncInfo) bool { return a.scc == b.scc }

// buildCallGraph collects the module's declared functions and resolves
// the static call edges between them.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Funcs: map[*types.Func]*FuncInfo{}}
	var order []*FuncInfo // deterministic: declaration order across sorted packages
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Fn: fn, Decl: fd, Pkg: pkg}
				g.Funcs[fn] = fi
				order = append(order, fi)
			}
		}
	}

	named := moduleNamedTypes(pkgs)
	for _, fi := range order {
		g.addEdges(fi, named)
	}
	g.markAddressTaken(pkgs)
	g.computeSCCs(order)
	return g
}

// moduleNamedTypes lists every named (defined) type declared in the
// module, the candidate set for interface-call resolution.
func moduleNamedTypes(pkgs []*Package) []*types.Named {
	var out []*types.Named
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if n, ok := tn.Type().(*types.Named); ok {
				out = append(out, n)
			}
		}
	}
	return out
}

// addEdges walks fi's body and records one edge per statically
// resolvable call site.
func (g *CallGraph) addEdges(fi *FuncInfo, named []*types.Named) {
	info := fi.Pkg.Info
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if fn, ok := info.Uses[fun].(*types.Func); ok {
				g.link(fi, fn, call, nil, false)
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
				if types.IsInterface(sel.Recv()) {
					g.linkInterface(fi, sel.Recv(), fun.Sel.Name, call, fun.X, named)
				} else if fn, ok := sel.Obj().(*types.Func); ok {
					g.link(fi, fn, call, fun.X, false)
				}
				return true
			}
			// Qualified call: pkg.F(...).
			if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
				g.link(fi, fn, call, nil, false)
			}
		}
		return true
	})
}

func (g *CallGraph) link(caller *FuncInfo, callee *types.Func, site *ast.CallExpr, recv ast.Expr, viaIface bool) {
	ci, ok := g.Funcs[callee]
	if !ok {
		return // out-of-module target
	}
	e := &CallEdge{Caller: caller, Callee: ci, Site: site, Recv: recv, ViaInterface: viaIface}
	caller.Callees = append(caller.Callees, e)
	ci.Callers = append(ci.Callers, e)
}

// linkInterface resolves a call through interface type iface to every
// in-module named type implementing it, edge-marked ViaInterface.
func (g *CallGraph) linkInterface(caller *FuncInfo, iface types.Type, method string, site *ast.CallExpr, recv ast.Expr, named []*types.Named) {
	it, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return
	}
	for _, n := range named {
		if types.IsInterface(n) {
			continue
		}
		ptr := types.NewPointer(n)
		if !types.Implements(n, it) && !types.Implements(ptr, it) {
			continue
		}
		ms := types.NewMethodSet(ptr)
		sel := ms.Lookup(n.Obj().Pkg(), method)
		if sel == nil {
			continue
		}
		if fn, ok := sel.Obj().(*types.Func); ok {
			g.link(caller, fn, site, recv, true)
		}
	}
}

// markAddressTaken flags module functions whose identifier appears
// outside call position.
func (g *CallGraph) markAddressTaken(pkgs []*Package) {
	for _, pkg := range pkgs {
		// Idents that are the operand of a call (f in f(), m in x.m()).
		callPos := map[*ast.Ident]bool{}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					callPos[fun] = true
				case *ast.SelectorExpr:
					callPos[fun.Sel] = true
				}
				return true
			})
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || callPos[id] {
					return true
				}
				if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
					if fi, ok := g.Funcs[fn]; ok {
						fi.AddressTaken = true
					}
				}
				return true
			})
		}
	}
}

// computeSCCs runs Tarjan's algorithm over the caller→callee edges.
// Components are emitted callees-first, which is exactly the bottom-up
// order the summary computation needs.
func (g *CallGraph) computeSCCs(order []*FuncInfo) {
	index := map[*FuncInfo]int{}
	low := map[*FuncInfo]int{}
	onStack := map[*FuncInfo]bool{}
	var stack []*FuncInfo
	next := 0

	var strongconnect func(v *FuncInfo)
	strongconnect = func(v *FuncInfo) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, e := range v.Callees {
			w := e.Callee
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []*FuncInfo
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				w.scc = len(g.SCCs)
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			g.SCCs = append(g.SCCs, comp)
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
}
