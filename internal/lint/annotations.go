package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// Concurrency contracts are declared in source as annotation comments:
//
//	type Registry struct {
//		mu     sync.RWMutex
//		series map[string]*series // lint:guardedby mu
//	}
//
//	// Tracer is ... A nil *Tracer is a valid no-op.
//	// lint:nilsafe
//	type Tracer struct { ... }
//
// `lint:guardedby <lock>` on a struct field names a sibling field of
// type sync.Mutex / sync.RWMutex (value or pointer) that must be held
// whenever the annotated field is read (RLock or Lock) or written
// (Lock only). `lint:nilsafe` on a type declaration promises that
// every exported pointer-receiver method tolerates a nil receiver —
// each must reach a nil-receiver guard before any receiver
// dereference, directly or through transitively nil-safe methods.

var (
	guardedByRe = regexp.MustCompile(`//\s*lint:guardedby\s+([A-Za-z_][A-Za-z0-9_]*)`)
	nilSafeRe   = regexp.MustCompile(`//\s*lint:nilsafe\b`)
)

// GuardSpec is one parsed `lint:guardedby` annotation.
type GuardSpec struct {
	// Lock is the sibling field name that guards the annotated field.
	Lock string
	// RW is true when the lock is a sync.RWMutex (RLock suffices for
	// reads).
	RW bool
	// Owner is the struct's named type, when the field belongs to one
	// (used in diagnostics).
	Owner *types.Named
}

// annProblem is a malformed annotation, reported by the guardedby
// analyzer (a contract that cannot be checked must not silently pass).
type annProblem struct {
	pkg  string
	pos  token.Pos
	msg  string
	rule string
}

// Annotations is the module's parsed contract set.
type Annotations struct {
	// Guarded maps an annotated struct field object to its guard spec.
	Guarded map[*types.Var]*GuardSpec
	// NilSafe is the set of type names annotated lint:nilsafe.
	NilSafe map[*types.TypeName]bool
	// Problems are malformed annotations.
	Problems []annProblem
}

// collectAnnotations parses every guardedby / nilsafe annotation in the
// module.
func collectAnnotations(pkgs []*Package) *Annotations {
	ann := &Annotations{
		Guarded: map[*types.Var]*GuardSpec{},
		NilSafe: map[*types.TypeName]bool{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					ann.collectType(pkg, gd, ts)
				}
			}
		}
	}
	return ann
}

func (ann *Annotations) collectType(pkg *Package, gd *ast.GenDecl, ts *ast.TypeSpec) {
	if commentMatches(nilSafeRe, ts.Doc, ts.Comment, gd.Doc) {
		if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
			ann.NilSafe[tn] = true
		}
	}
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		return
	}
	for _, field := range st.Fields.List {
		lock, pos, ok := guardAnnotation(field)
		if !ok {
			continue
		}
		spec, problem := ann.resolveGuard(pkg, ts, st, lock)
		if problem != "" {
			ann.Problems = append(ann.Problems, annProblem{
				pkg: pkg.Path, pos: pos, msg: problem, rule: "guardedby",
			})
			continue
		}
		for _, name := range field.Names {
			if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
				ann.Guarded[v] = spec
			}
		}
		if len(field.Names) == 0 {
			ann.Problems = append(ann.Problems, annProblem{
				pkg: pkg.Path, pos: pos, rule: "guardedby",
				msg: "lint:guardedby on an embedded field is not supported; name the field",
			})
		}
	}
}

// guardAnnotation extracts the lock name from a field's doc or trailing
// comment.
func guardAnnotation(field *ast.Field) (lock string, pos token.Pos, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := guardedByRe.FindStringSubmatch(c.Text); m != nil {
				return m[1], c.Pos(), true
			}
		}
	}
	return "", token.NoPos, false
}

// resolveGuard validates that lock names a sibling mutex field and
// classifies it.
func (ann *Annotations) resolveGuard(pkg *Package, ts *ast.TypeSpec, st *ast.StructType, lock string) (*GuardSpec, string) {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name != lock {
				continue
			}
			t := pkg.Info.TypeOf(field.Type)
			rw, ok := mutexKind(t)
			if !ok {
				return nil, fmt.Sprintf("lint:guardedby %s: field %s is %s, not a sync.Mutex or sync.RWMutex", lock, lock, t)
			}
			spec := &GuardSpec{Lock: lock, RW: rw}
			if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
				spec.Owner, _ = tn.Type().(*types.Named)
			}
			return spec, ""
		}
	}
	return nil, fmt.Sprintf("lint:guardedby %s: no field named %s in this struct", lock, lock)
}

// mutexKind reports whether t is sync.Mutex / sync.RWMutex (or a
// pointer to one); rw distinguishes the RWMutex.
func mutexKind(t types.Type) (rw, ok bool) {
	if t == nil {
		return false, false
	}
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false, false
	}
	switch named.Obj().Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

func commentMatches(re *regexp.Regexp, groups ...*ast.CommentGroup) bool {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if re.MatchString(c.Text) {
				return true
			}
		}
	}
	return false
}
