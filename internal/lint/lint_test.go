package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"sync"
	"testing"
)

// All synthetic packages share one fileset and one source importer so
// the (comparatively slow) from-source stdlib type-checking is paid
// once per imported package, not once per test case.
var (
	testMu       sync.Mutex
	testFset     = token.NewFileSet()
	testImporter = importer.ForCompiler(testFset, "source", nil)
)

// checkSrc type-checks one synthetic source file as a package with the
// given import path (the path is what package-scoped analyzers match
// against) and the given filename (what clockdet's allowlist matches
// against).
func checkSrc(t *testing.T, path, filename, src string) *Package {
	t.Helper()
	testMu.Lock()
	defer testMu.Unlock()
	f, err := parser.ParseFile(testFset, filename, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: testImporter, FakeImportC: true}
	tpkg, err := conf.Check(path, testFset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	return &Package{Path: path, Fset: testFset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

// golden renders diagnostics as "line:rule" for compact comparison.
func golden(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = fmt.Sprintf("%d:%s", d.Line, d.Rule)
	}
	return out
}

func runOn(t *testing.T, path, filename, src string, as ...*Analyzer) []Diagnostic {
	t.Helper()
	pkg := checkSrc(t, path, filename, src)
	return Run([]*Package{pkg}, as)
}

func expect(t *testing.T, diags []Diagnostic, want ...string) {
	t.Helper()
	got := golden(diags)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v\nfull: %v", got, want, diags)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("finding %d: got %v, want %v\nfull: %v", i, got, want, diags)
		}
	}
}

const corePath = "tsplit/internal/core"

func TestMapOrder(t *testing.T) {
	cases := []struct {
		name string
		path string
		src  string
		want []string
	}{
		{
			name: "unsorted range fires",
			path: corePath,
			src: `package core
func f(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}`,
			want: []string{"4:maporder"},
		},
		{
			name: "collect then total sort is clean",
			path: corePath,
			src: `package core
import "sort"
func f(m map[int]int) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}`,
			want: nil,
		},
		{
			name: "conditional append of derived value then sort.Strings is clean",
			path: corePath,
			src: `package core
import (
	"fmt"
	"sort"
)
func f(m map[string]int) []string {
	var rows []string
	for k, v := range m {
		if v > 0 {
			rows = append(rows, fmt.Sprintf("%s=%d", k, v))
		}
	}
	sort.Strings(rows)
	return rows
}`,
			want: nil,
		},
		{
			name: "sort.Slice with a partial key does not count",
			path: corePath,
			src: `package core
import "sort"
func f(m map[int]int) []int {
	var ids []int
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return m[ids[a]] < m[ids[b]] })
	return ids
}`,
			want: []string{"5:maporder"},
		},
		{
			name: "delete-only body is clean",
			path: corePath,
			src: `package core
func f(m map[int]int) {
	for k := range m {
		delete(m, k)
	}
}`,
			want: nil,
		},
		{
			name: "non-critical package is not checked",
			path: "tsplit/internal/models",
			src: `package models
func f(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}`,
			want: nil,
		},
		{
			name: "nested inside if still fires",
			path: corePath,
			src: `package core
func f(m map[int]int, on bool) int {
	s := 0
	if on {
		for _, v := range m {
			s += v
		}
	}
	return s
}`,
			want: []string{"5:maporder"},
		},
		{
			name: "range over slice is fine",
			path: corePath,
			src: `package core
func f(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expect(t, runOn(t, tc.path, "maporder_case.go", tc.src, MapOrder), tc.want...)
		})
	}
}

func TestClockDet(t *testing.T) {
	cases := []struct {
		name     string
		filename string
		src      string
		want     []string
	}{
		{
			name:     "time.Now fires",
			filename: "internal/core/x.go",
			src: `package core
import "time"
func f() time.Time { return time.Now() }`,
			want: []string{"3:clockdet"},
		},
		{
			name:     "time.Since fires",
			filename: "internal/core/x.go",
			src: `package core
import "time"
func f(t0 time.Time) float64 { return time.Since(t0).Seconds() }`,
			want: []string{"3:clockdet"},
		},
		{
			name:     "math/rand import fires",
			filename: "internal/core/x.go",
			src: `package core
import "math/rand"
func f() int { return rand.Int() }`,
			want: []string{"2:clockdet"},
		},
		{
			name:     "allowlisted clock file is exempt",
			filename: "internal/obs/clock.go",
			src: `package obs
import "time"
func Wall() time.Time { return time.Now() }`,
			want: nil,
		},
		{
			name:     "time.Time arithmetic without reading the clock is fine",
			filename: "internal/core/x.go",
			src: `package core
import "time"
func f(a, b time.Time) time.Duration { return a.Sub(b) }`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expect(t, runOn(t, corePath, tc.filename, tc.src, ClockDet), tc.want...)
		})
	}
}

func TestFloatEq(t *testing.T) {
	cases := []struct {
		name string
		path string
		src  string
		want []string
	}{
		{
			name: "exact float equality fires",
			path: corePath,
			src: `package core
func f(a, b float64) bool { return a == b }`,
			want: []string{"2:floateq"},
		},
		{
			name: "exact float inequality fires",
			path: corePath,
			src: `package core
func f(a, b float32) bool { return a != b }`,
			want: []string{"2:floateq"},
		},
		{
			name: "integer equality is fine",
			path: corePath,
			src: `package core
func f(a, b int64) bool { return a == b }`,
			want: nil,
		},
		{
			name: "float ordering comparisons are fine",
			path: corePath,
			src: `package core
func f(a, b float64) bool { return a < b }`,
			want: nil,
		},
		{
			name: "outside the planner the rule does not run",
			path: "tsplit/internal/sim",
			src: `package sim
func f(a, b float64) bool { return a == b }`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expect(t, runOn(t, tc.path, "floateq_case.go", tc.src, FloatEq), tc.want...)
		})
	}
}

func TestErrDrop(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "dropped error fires",
			src: `package core
import "os"
func f(f *os.File) {
	f.Close()
}`,
			want: []string{"4:errdrop"},
		},
		{
			name: "blank assignment is an explicit acknowledgment",
			src: `package core
import "os"
func f(f *os.File) {
	_ = f.Close()
}`,
			want: nil,
		},
		{
			name: "deferred cleanup is not flagged",
			src: `package core
import "os"
func f(f *os.File) {
	defer f.Close()
}`,
			want: nil,
		},
		{
			name: "fmt.Println is exempt",
			src: `package core
import "fmt"
func f() { fmt.Println("x") }`,
			want: nil,
		},
		{
			name: "fmt.Fprintf to stderr is exempt",
			src: `package core
import (
	"fmt"
	"os"
)
func f() { fmt.Fprintf(os.Stderr, "x") }`,
			want: nil,
		},
		{
			name: "fmt.Fprintf to a strings.Builder is exempt",
			src: `package core
import (
	"fmt"
	"strings"
)
func f() string {
	var b strings.Builder
	fmt.Fprintf(&b, "x")
	return b.String()
}`,
			want: nil,
		},
		{
			name: "builder method errors are exempt",
			src: `package core
import "strings"
func f() string {
	var b strings.Builder
	b.WriteString("x")
	return b.String()
}`,
			want: nil,
		},
		{
			name: "fmt.Fprintf to a real writer fires",
			src: `package core
import (
	"fmt"
	"io"
)
func f(w io.Writer) { fmt.Fprintf(w, "x") }`,
			want: []string{"6:errdrop"},
		},
		{
			name: "deferred Close on a file opened for writing fires",
			src: `package core
import "os"
func f() error {
	f, err := os.Create("out")
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}`,
			want: []string{"8:errdrop"},
		},
		{
			name: "deferred Close on a read-only file stays exempt",
			src: `package core
import "os"
func f() error {
	f, err := os.Open("in")
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}`,
			want: nil,
		},
		{
			name: "deferred Close on a write-mode OpenFile fires",
			src: `package core
import "os"
func f() error {
	f, err := os.OpenFile("out", os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}`,
			want: []string{"8:errdrop"},
		},
		{
			name: "deferred Close on a read-mode OpenFile stays exempt",
			src: `package core
import "os"
func f() error {
	f, err := os.OpenFile("in", os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}`,
			want: nil,
		},
		{
			name: "explicit Close returning the error is the encouraged pattern",
			src: `package core
import "os"
func f() error {
	f, err := os.Create("out")
	if err != nil {
		return err
	}
	return f.Close()
}`,
			want: nil,
		},
		{
			name: "suppressing inside a deferred closure is an explicit acknowledgment",
			src: `package core
import "os"
func f() error {
	f, err := os.Create("out")
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	return nil
}`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expect(t, runOn(t, corePath, "errdrop_case.go", tc.src, ErrDrop), tc.want...)
		})
	}
}

func TestScratchReuse(t *testing.T) {
	cases := []struct {
		name     string
		filename string
		src      string
		want     []string
	}{
		{
			name:     "make inside a loop fires",
			filename: "planner.go",
			src: `package core
func f(n int) {
	for i := 0; i < n; i++ {
		_ = make([]int, 8)
	}
}`,
			want: []string{"4:scratchreuse"},
		},
		{
			name:     "growing append without a reset fires",
			filename: "candindex.go",
			src: `package core
func f(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}`,
			want: []string{"5:scratchreuse"},
		},
		{
			name:     "append into a length-reset buffer is the encouraged pattern",
			filename: "planner.go",
			src: `package core
func f(xs []int, buf []int) []int {
	var out []int
	out = buf[:0]
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}`,
			want: nil,
		},
		{
			name:     "append into a parameter is the caller-recycles pattern",
			filename: "memsim.go",
			src: `package core
func f(xs []int, buf []int) []int {
	for _, x := range xs {
		buf = append(buf, x)
	}
	return buf
}`,
			want: nil,
		},
		{
			name:     "append into a slice pre-sized with make cap is exempt",
			filename: "finalize.go",
			src: `package core
func f(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}`,
			want: nil,
		},
		{
			name:     "local bound to a recycled arena row via [:0] is exempt",
			filename: "candindex.go",
			src: `package core
func f(arena [][]int, xs []int, p int) []int {
	row := arena[p][:0]
	for _, x := range xs {
		row = append(row, x)
	}
	return row
}`,
			want: nil,
		},
		{
			name:     "loop inside a closure uses the closure's own resets",
			filename: "replan.go",
			src: `package core
func f(xs []int) func() []int {
	return func() []int {
		var out []int
		for _, x := range xs {
			out = append(out, x)
		}
		return out
	}
}`,
			want: []string{"6:scratchreuse"},
		},
		{
			name:     "cold-path files in the same package are out of scope",
			filename: "export.go",
			src: `package core
func f(n int) {
	for i := 0; i < n; i++ {
		_ = make([]int, 8)
	}
}`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expect(t, runOn(t, corePath, tc.filename, tc.src, ScratchReuse), tc.want...)
		})
	}
}

func TestSuppression(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "allow above the line suppresses",
			src: `package core
func f(m map[int]int) int {
	s := 0
	//lint:allow maporder commutative sum
	for _, v := range m {
		s += v
	}
	return s
}`,
			want: nil,
		},
		{
			name: "file-wide allow above the package clause",
			src: `//lint:allow maporder generated aggregation code
package core

func f(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}`,
			want: nil,
		},
		{
			name: "allow for a different rule does not suppress",
			src: `package core
func f(m map[int]int) int {
	s := 0
	//lint:allow errdrop wrong rule
	for _, v := range m {
		s += v
	}
	return s
}`,
			want: []string{"5:maporder"},
		},
		{
			name: "allow list covers several rules",
			src: `package core
import "time"
func f(m map[int]int) time.Time {
	//lint:allow maporder,clockdet demo of a multi-rule allow
	for k := range m {
		_ = k
	}
	//lint:allow clockdet timestamping only, value unused downstream
	return time.Now()
}`,
			want: nil,
		},
		{
			name: "allow does not leak past the next line",
			src: `package core
func f(m, n map[int]int) int {
	s := 0
	//lint:allow maporder covers only the first loop
	for _, v := range m {
		s += v
	}
	for _, v := range n {
		s += v
	}
	return s
}`,
			want: []string{"8:maporder"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expect(t, runOn(t, corePath, "suppress_case.go", tc.src, MapOrder, ClockDet, ErrDrop), tc.want...)
		})
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(Analyzers()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v", len(all), err)
	}
	two, err := ByName("maporder, errdrop")
	if err != nil || len(two) != 2 || two[0].Name != "maporder" || two[1].Name != "errdrop" {
		t.Fatalf("ByName subset = %v, err %v", two, err)
	}
	if _, err := ByName("nosuchrule"); err == nil {
		t.Fatal("ByName should reject unknown rules")
	}
}

func TestDiagnosticsSorted(t *testing.T) {
	src := `package core
import "time"
func f(m map[int]int) time.Time {
	for k := range m {
		_ = k
	}
	return time.Now()
}`
	diags := runOn(t, corePath, "sorted_case.go", src, ClockDet, MapOrder)
	expect(t, diags, "4:maporder", "7:clockdet")
	if !strings.Contains(diags[1].Message, "obs.Clock") {
		t.Fatalf("clockdet message should point at the injectable clock: %q", diags[1].Message)
	}
}

// TestModuleIsLintClean is the dogfood gate in test form: the module
// that ships the analyzers must itself carry zero findings. cmd/lint
// enforces the same in `make ci`; this keeps `go test ./...` sufficient.
func TestModuleIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	mod, err := LoadModule("../..")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	diags := Run(mod.Pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
