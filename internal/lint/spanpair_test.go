package lint

import "testing"

// spanDecls is the miniature tracing surface the synthetic sources
// share: the analyzer matches StartSpan receivers by type name
// (Tracer / Span), mirroring internal/obs.
const spanDecls = `
type Span struct{}

func (s *Span) End()                       {}
func (s *Span) StartSpan(name string) *Span { return s }
func (s *Span) SetAttr(k, v string)        {}

type Tracer struct{}

func (t *Tracer) StartSpan(name string) *Span { return &Span{} }
`

func TestSpanPair(t *testing.T) {
	cases := []struct {
		name string
		path string
		src  string
		want []string
	}{
		{
			name: "discarded result fires",
			path: corePath,
			src: `package core
` + spanDecls + `
func f(tr *Tracer) {
	tr.StartSpan("planner.plan")
}`,
			want: []string{"14:spanpair"},
		},
		{
			name: "assigned but never ended fires",
			path: corePath,
			src: `package core
` + spanDecls + `
func f(tr *Tracer) {
	sp := tr.StartSpan("planner.plan")
	sp.SetAttr("k", "v")
}`,
			want: []string{"14:spanpair"},
		},
		{
			name: "blank assignment fires",
			path: corePath,
			src: `package core
` + spanDecls + `
func f(tr *Tracer) {
	_ = tr.StartSpan("planner.plan")
}`,
			want: []string{"14:spanpair"},
		},
		{
			name: "direct end is clean",
			path: corePath,
			src: `package core
` + spanDecls + `
func f(tr *Tracer) {
	sp := tr.StartSpan("planner.plan")
	sp.End()
}`,
			want: nil,
		},
		{
			name: "deferred end is clean",
			path: corePath,
			src: `package core
` + spanDecls + `
func f(tr *Tracer) {
	sp := tr.StartSpan("planner.plan")
	defer sp.End()
}`,
			want: nil,
		},
		{
			name: "child span needs its own end",
			path: "tsplit/internal/sim",
			src: `package sim
` + spanDecls + `
func f(tr *Tracer) {
	sp := tr.StartSpan("sim.run")
	defer sp.End()
	child := sp.StartSpan("sim.op")
	child.SetAttr("op", "conv1")
}`,
			want: []string{"16:spanpair"},
		},
		{
			name: "escaping results are the caller's responsibility",
			path: corePath,
			src: `package core
` + spanDecls + `
type holder struct{ sp *Span }

func ret(tr *Tracer) *Span { return tr.StartSpan("escapes") }

func store(tr *Tracer, h *holder) {
	h.sp = tr.StartSpan("escapes")
}

func pass(tr *Tracer) {
	use(tr.StartSpan("escapes"))
}

func use(sp *Span) { sp.End() }`,
			want: nil,
		},
		{
			name: "closure is its own scope",
			path: "tsplit/internal/resilient",
			src: `package resilient
` + spanDecls + `
func f(tr *Tracer) {
	outer := tr.StartSpan("resilient.run")
	defer outer.End()
	fn := func() {
		sp := tr.StartSpan("resilient.rung")
		_ = sp
	}
	fn()
}`,
			want: []string{"17:spanpair"},
		},
		{
			name: "end inside closure does not cover the outer span",
			path: corePath,
			src: `package core
` + spanDecls + `
func f(tr *Tracer) {
	sp := tr.StartSpan("planner.plan")
	fn := func() { sp.End() }
	fn()
}`,
			want: []string{"14:spanpair"},
		},
		{
			name: "unrelated StartSpan receiver type is ignored",
			path: corePath,
			src: `package core
type widget struct{}

func (w *widget) StartSpan(name string) int { return 0 }

func f(w *widget) {
	w.StartSpan("not tracing")
}`,
			want: nil,
		},
		{
			name: "outside the instrumented packages nothing fires",
			path: "tsplit/internal/graph",
			src: `package graph
` + spanDecls + `
func f(tr *Tracer) {
	tr.StartSpan("free")
}`,
			want: nil,
		},
		{
			name: "lint:allow suppresses",
			path: corePath,
			src: `package core
` + spanDecls + `
func f(tr *Tracer) {
	//lint:allow spanpair ended by the phase that follows
	sp := tr.StartSpan("planner.plan")
	_ = sp
}`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := runOn(t, tc.path, "spanpair_case.go", tc.src, SpanPair)
			expect(t, diags, tc.want...)
		})
	}
}
