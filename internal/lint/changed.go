package lint

import (
	"fmt"
	"os/exec"
	"path"
	"path/filepath"
	"strings"
)

// ChangedPackages returns the set of module package import paths that
// contain a .go file changed relative to ref (committed, staged,
// unstaged, or untracked), by shelling out to git. The result feeds
// RunFiltered's reporting filter: the whole module is still loaded
// and analyzed — interprocedural facts do not respect diff
// boundaries — but findings are reported only for changed packages.
//
// Any git failure (not a repository, unknown ref, no git binary)
// returns an error; the caller is expected to fall back to a full
// run rather than silently lint nothing.
func ChangedPackages(mod *Module, ref string) (map[string]bool, error) {
	diff, err := gitLines(mod.Dir, "diff", "--name-only", ref, "--")
	if err != nil {
		return nil, err
	}
	untracked, err := gitLines(mod.Dir, "ls-files", "--others", "--exclude-standard")
	if err != nil {
		return nil, err
	}
	pkgs := map[string]bool{}
	for _, rel := range append(diff, untracked...) {
		if !strings.HasSuffix(rel, ".go") {
			continue
		}
		dir := path.Dir(filepath.ToSlash(rel))
		if dir == "." {
			pkgs[mod.Path] = true
		} else {
			pkgs[mod.Path+"/"+dir] = true
		}
	}
	return pkgs, nil
}

// gitLines runs git -C dir args... and returns its non-empty output
// lines.
func gitLines(dir string, args ...string) ([]string, error) {
	cmd := exec.Command("git", append([]string{"-C", dir}, args...)...)
	out, err := cmd.Output()
	if err != nil {
		detail := ""
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			detail = ": " + strings.TrimSpace(string(ee.Stderr))
		}
		return nil, fmt.Errorf("lint: git %s%s (%w)", strings.Join(args, " "), detail, err)
	}
	var lines []string
	for _, l := range strings.Split(string(out), "\n") {
		if l = strings.TrimSpace(l); l != "" {
			lines = append(lines, l)
		}
	}
	return lines, nil
}
