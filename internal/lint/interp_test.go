package lint

import (
	"strings"
	"testing"
)

// The interprocedural analyzers (guardedby, nilsafe, gojoin) are
// tested the same way as the syntactic ones: synthetic packages,
// golden "line:rule" expectations. Each table deliberately pairs a
// positive case (the bug fires) with its minimal negative twin (add
// the lock / the nil guard / the join and the finding disappears) —
// the same property the dogfood gate relies on for the real module.

func TestGuardedBy(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "unguarded write fires",
			src: `package core
import "sync"
type S struct {
	mu sync.Mutex
	n  int // lint:guardedby mu
}
func (s *S) Bump() { s.n++ }`,
			want: []string{"7:guardedby"},
		},
		{
			name: "lock around the write is clean",
			src: `package core
import "sync"
type S struct {
	mu sync.Mutex
	n  int // lint:guardedby mu
}
func (s *S) Bump() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}`,
			want: nil,
		},
		{
			name: "access after Unlock fires",
			src: `package core
import "sync"
type S struct {
	mu sync.Mutex
	n  int // lint:guardedby mu
}
func (s *S) Bump() {
	s.mu.Lock()
	s.mu.Unlock()
	s.n++
}`,
			want: []string{"10:guardedby"},
		},
		{
			name: "deferred unlock holds to the end of the function",
			src: `package core
import "sync"
type S struct {
	mu sync.Mutex
	n  int // lint:guardedby mu
}
func (s *S) Bump() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	return s.n
}`,
			want: nil,
		},
		{
			name: "rwmutex read under RLock is clean, write under RLock fires",
			src: `package core
import "sync"
type S struct {
	mu sync.RWMutex
	n  int // lint:guardedby mu
}
func (s *S) Get() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}
func (s *S) Bump() {
	s.mu.RLock()
	s.n++
	s.mu.RUnlock()
}`,
			want: []string{"14:guardedby"},
		},
		{
			name: "read without even RLock fires",
			src: `package core
import "sync"
type S struct {
	mu sync.RWMutex
	n  int // lint:guardedby mu
}
func (s *S) Get() int { return s.n }`,
			want: []string{"7:guardedby"},
		},
		{
			name: "unexported helper inherits the caller's lock",
			src: `package core
import "sync"
type S struct {
	mu sync.Mutex
	n  int // lint:guardedby mu
}
func (s *S) bumpLocked() { s.n++ }
func (s *S) Bump() {
	s.mu.Lock()
	s.bumpLocked()
	s.mu.Unlock()
}`,
			want: nil,
		},
		{
			// The requirement propagates out of the helper into Race;
			// Race is exported so it cannot push it further, and the
			// finding lands on the underlying field access with Race
			// named in the message.
			name: "calling a lock-requiring helper without the lock fires",
			src: `package core
import "sync"
type S struct {
	mu sync.Mutex
	n  int // lint:guardedby mu
}
func (s *S) bumpLocked() { s.n++ }
func (s *S) Bump() {
	s.mu.Lock()
	s.bumpLocked()
	s.mu.Unlock()
}
func (s *S) Race() { s.bumpLocked() }`,
			want: []string{"7:guardedby"},
		},
		{
			name: "exported method may not push its requirement to callers",
			src: `package core
import "sync"
type S struct {
	mu sync.Mutex
	n  int // lint:guardedby mu
}
func (s *S) BumpLocked() { s.n++ }
func (s *S) Bump() {
	s.mu.Lock()
	s.BumpLocked()
	s.mu.Unlock()
}`,
			want: []string{"7:guardedby"},
		},
		{
			name: "early-return branch that unlocks does not poison the fallthrough",
			src: `package core
import "sync"
type S struct {
	mu sync.Mutex
	n  int // lint:guardedby mu
}
func (s *S) Bump(stop bool) {
	s.mu.Lock()
	if stop {
		s.mu.Unlock()
		return
	}
	s.n++
	s.mu.Unlock()
}`,
			want: nil,
		},
		{
			name: "freshly constructed value is exempt until published",
			src: `package core
import "sync"
type S struct {
	mu sync.Mutex
	n  int // lint:guardedby mu
}
func New(n int) *S {
	s := &S{}
	s.n = n
	return s
}`,
			want: nil,
		},
		{
			name: "guardedby naming a missing lock field is itself a finding",
			src: `package core
type S struct {
	n int // lint:guardedby mu
}`,
			want: []string{"3:guardedby"},
		},
		{
			name: "guardedby naming a non-mutex sibling is a finding",
			src: `package core
type S struct {
	mu int
	n  int // lint:guardedby mu
}`,
			want: []string{"4:guardedby"},
		},
		{
			name: "locking a different instance does not count",
			src: `package core
import "sync"
type S struct {
	mu sync.Mutex
	n  int // lint:guardedby mu
}
func Move(a, b *S) {
	a.mu.Lock()
	b.n++
	a.mu.Unlock()
}`,
			want: []string{"9:guardedby"},
		},
		{
			name: "goroutine body does not inherit the spawner's lock",
			src: `package core
import "sync"
type S struct {
	mu sync.Mutex
	n  int // lint:guardedby mu
}
func (s *S) Bump(done chan struct{}) {
	s.mu.Lock()
	go func() {
		s.n++
		close(done)
	}()
	s.mu.Unlock()
	<-done
}`,
			want: []string{"10:guardedby"},
		},
		{
			name: "switch arms each see the pre-switch lock state",
			src: `package core
import "sync"
type S struct {
	mu sync.Mutex
	n  int // lint:guardedby mu
}
func (s *S) Set(k, v int) {
	s.mu.Lock()
	switch k {
	case 0:
		s.n = v
	default:
		s.n = -v
	}
	s.mu.Unlock()
}`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expect(t, runOn(t, corePath, "guardedby_case.go", tc.src, GuardedBy), tc.want...)
		})
	}
}

func TestNilSafe(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "exported method dereferencing before any guard fires",
			src: `package obs
// lint:nilsafe
type T struct{ n int }
func (t *T) Get() int { return t.n }`,
			want: []string{"4:nilsafe"},
		},
		{
			name: "leading nil guard is clean",
			src: `package obs
// lint:nilsafe
type T struct{ n int }
func (t *T) Get() int {
	if t == nil {
		return 0
	}
	return t.n
}`,
			want: nil,
		},
		{
			name: "guard combined with a deref in the same condition is clean (short-circuit)",
			src: `package obs
// lint:nilsafe
type T struct{ n int }
func (t *T) Bump() {
	if t == nil || t.n > 0 {
		return
	}
	t.n++
}`,
			want: nil,
		},
		{
			name: "deref on the left of the guard fires",
			src: `package obs
// lint:nilsafe
type T struct{ n int }
func (t *T) Bump() {
	if t.n > 0 || t == nil {
		return
	}
	t.n++
}`,
			want: []string{"5:nilsafe"},
		},
		{
			name: "non-nil guard wrapping the body is clean",
			src: `package obs
// lint:nilsafe
type T struct{ n int }
func (t *T) Bump() {
	if t != nil {
		t.n++
	}
}`,
			want: nil,
		},
		{
			name: "transitively nil-safe callee discharges the obligation",
			src: `package obs
// lint:nilsafe
type T struct{ n int }
func (t *T) get() int {
	if t == nil {
		return 0
	}
	return t.n
}
func (t *T) Get() int { return t.get() }`,
			want: nil,
		},
		{
			name: "calling an unguarded helper counts as a dereference",
			src: `package obs
// lint:nilsafe
type T struct{ n int }
func (t *T) get() int { return t.n }
func (t *T) Get() int { return t.get() }`,
			want: []string{"5:nilsafe"},
		},
		{
			name: "unexported methods are not required to guard",
			src: `package obs
// lint:nilsafe
type T struct{ n int }
func (t *T) get() int { return t.n }`,
			want: nil,
		},
		{
			name: "guard must come before the deref, not after",
			src: `package obs
// lint:nilsafe
type T struct{ n int }
func (t *T) Get() int {
	n := t.n
	if t == nil {
		return 0
	}
	return n
}`,
			want: []string{"5:nilsafe"},
		},
		{
			name: "unannotated type is unconstrained",
			src: `package obs
type T struct{ n int }
func (t *T) Get() int { return t.n }`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expect(t, runOn(t, "tsplit/internal/obs", "nilsafe_case.go", tc.src, NilSafe), tc.want...)
		})
	}
}

func TestGoJoin(t *testing.T) {
	cases := []struct {
		name string
		path string
		src  string
		want []string
	}{
		{
			name: "fire-and-forget goroutine fires",
			path: corePath,
			src: `package core
func f() {
	go func() {}()
}`,
			want: []string{"3:gojoin"},
		},
		{
			name: "waitgroup add/done/wait is clean",
			path: corePath,
			src: `package core
import "sync"
func f(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}`,
			want: nil,
		},
		{
			name: "removing the Wait makes the same code fire",
			path: corePath,
			src: `package core
import "sync"
func f(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
}`,
			want: []string{"7:gojoin"},
		},
		{
			name: "channel collect after the spawn is clean",
			path: corePath,
			src: `package core
func f() int {
	ch := make(chan int, 1)
	go func() {
		ch <- 1
	}()
	return <-ch
}`,
			want: nil,
		},
		{
			name: "sending on a channel nobody receives fires",
			path: corePath,
			src: `package core
func f(ch chan int) {
	go func() {
		ch <- 1
	}()
}`,
			want: []string{"3:gojoin"},
		},
		{
			name: "range over the collect channel is a join",
			path: corePath,
			src: `package core
func f(n int) int {
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		go func() { ch <- 1 }()
	}
	s := 0
	for i := 0; i < n; i++ {
		s += <-ch
	}
	return s
}`,
			want: nil,
		},
		{
			name: "named worker that Dones a WaitGroup parameter is joined",
			path: corePath,
			src: `package core
import "sync"
func worker(wg *sync.WaitGroup, i int) {
	defer wg.Done()
	_ = i
}
func f(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go worker(&wg, i)
	}
	wg.Wait()
}`,
			want: nil,
		},
		{
			name: "spawner taking the WaitGroup as a parameter delegates the join",
			path: corePath,
			src: `package core
import "sync"
func spawn(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}`,
			want: nil,
		},
		{
			name: "goroutines outside the concurrency packages are not checked",
			path: "tsplit/internal/models",
			src: `package models
func f() {
	go func() {}()
}`,
			want: nil,
		},
		{
			name: "goroutine in sim is checked",
			path: "tsplit/internal/sim",
			src: `package sim
func f() {
	go func() {}()
}`,
			want: []string{"3:gojoin"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expect(t, runOn(t, tc.path, "gojoin_case.go", tc.src, GoJoin), tc.want...)
		})
	}
}

// TestInterpCallGraph pins the call-graph layer itself: static edges,
// interface resolution to in-module implementations, and SCC order.
func TestInterpCallGraph(t *testing.T) {
	src := `package core
type doer interface{ do() }
type impl struct{}
func (impl) do() {}
func a() { b() }
func b() { a() }
func use(d doer) { d.do() }
func top() { use(impl{}) }`
	pkg := checkSrc(t, corePath, "callgraph_case.go", src)
	in := NewInterp([]*Package{pkg})

	byName := map[string]*FuncInfo{}
	for fn, fi := range in.Graph.Funcs {
		byName[fn.Name()] = fi
	}
	for _, want := range []string{"do", "a", "b", "use", "top"} {
		if byName[want] == nil {
			t.Fatalf("call graph is missing %s (have %d funcs)", want, len(byName))
		}
	}
	if !in.Graph.SameSCC(byName["a"], byName["b"]) {
		t.Errorf("mutually recursive a and b should share an SCC")
	}
	if in.Graph.SameSCC(byName["a"], byName["top"]) {
		t.Errorf("top must not be in a/b's SCC")
	}
	var viaIface bool
	for _, e := range byName["use"].Callees {
		if e.Callee == byName["do"] && e.ViaInterface {
			viaIface = true
		}
	}
	if !viaIface {
		t.Errorf("use's d.do() should resolve to impl.do via the interface: %+v", byName["use"].Callees)
	}
	if len(in.Summaries) != len(in.Graph.Funcs) {
		t.Errorf("every function should have a summary: %d != %d", len(in.Summaries), len(in.Graph.Funcs))
	}
}

func TestGuardedByMessageNamesTheLock(t *testing.T) {
	src := `package core
import "sync"
type S struct {
	mu sync.Mutex
	n  int // lint:guardedby mu
}
func (s *S) Bump() { s.n++ }`
	diags := runOn(t, corePath, "guardedby_msg.go", src, GuardedBy)
	if len(diags) != 1 {
		t.Fatalf("want one finding, got %v", diags)
	}
	if !strings.Contains(diags[0].Message, `"mu"`) || !strings.Contains(diags[0].Message, "guardedby") {
		t.Fatalf("message should name the lock and the annotation: %q", diags[0].Message)
	}
}
