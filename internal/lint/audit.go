package lint

import (
	"fmt"
	"sort"
	"strings"
)

// AllowSite is one //lint:allow directive found in the module. The
// suppression mechanism (collectSuppressions) honors a directive with
// or without a reason; the audit layer is what makes the reason
// mandatory, so a suppression can never silently outlive the
// justification it was added with.
type AllowSite struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Rules    []string `json:"rules"`
	Reason   string   `json:"reason,omitempty"`
	FileWide bool     `json:"file_wide,omitempty"`
}

// String renders the site in file:line form for the -audit listing.
func (s AllowSite) String() string {
	scope := ""
	if s.FileWide {
		scope = " (file-wide)"
	}
	reason := s.Reason
	if reason == "" {
		reason = "<MISSING REASON>"
	}
	return fmt.Sprintf("%s:%d: allow %s%s — %s", s.File, s.Line, strings.Join(s.Rules, ","), scope, reason)
}

// Audit lists every //lint:allow directive in the packages, sorted by
// file then line. Directives missing a reason are additionally
// returned as diagnostics (rule "lint-audit") so the audit gate can
// fail on them; these diagnostics deliberately bypass the suppression
// pass — an allow cannot allow itself.
func Audit(pkgs []*Package) ([]AllowSite, []Diagnostic) {
	var sites []AllowSite
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			pkgLine := pkg.Fset.Position(f.Package).Line
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := allowRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					site := AllowSite{
						File:     pos.Filename,
						Line:     pos.Line,
						Reason:   strings.TrimSpace(m[2]),
						FileWide: pos.Line < pkgLine,
					}
					for _, rule := range strings.Split(m[1], ",") {
						if rule = strings.TrimSpace(rule); rule != "" {
							site.Rules = append(site.Rules, rule)
						}
					}
					sites = append(sites, site)
					if site.Reason == "" {
						diags = append(diags, Diagnostic{
							File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Rule: "lint-audit",
							Message: fmt.Sprintf("lint:allow %s has no reason: every suppression must say why the pattern is safe",
								strings.Join(site.Rules, ",")),
						})
					}
				}
			}
		}
	}
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].File != sites[j].File {
			return sites[i].File < sites[j].File
		}
		return sites[i].Line < sites[j].Line
	})
	return sites, diags
}
