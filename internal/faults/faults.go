// Package faults is a seeded, byte-deterministic fault-injection
// framework for the simulated runtime. It models the hostile
// environment of a shared training rack — mispredicted kernel times,
// contended PCIe links, transient transfer failures, and co-located
// jobs stealing device memory — as deterministic functions of a seed,
// so every experiment is replayable bit for bit.
//
// Determinism story: per-event decisions (op-time noise, bandwidth
// windows, transfer-failure attempts) are drawn with a stateless
// SplitMix64-keyed hash of (seed, fault kind, event identity). Because
// no generator state is shared between draws, the injected environment
// does not shift when the plan changes, when ops execute in a
// different order, or when runs race concurrently — replanning under
// the degradation ladder faces the *same* adversity as the run that
// triggered it. Only the run-scoped capacity schedule uses the
// sequential Source in rand.go (the module's sanctioned math/rand
// site).
package faults

// Kind identifies one injected fault class.
type Kind int

const (
	// OpNoise perturbs operator compute times multiplicatively,
	// modeling profiled-vs-actual kernel misprediction.
	OpNoise Kind = iota
	// Bandwidth degrades PCIe transfer bandwidth over windows of the
	// schedule, modeling link contention from co-located jobs.
	Bandwidth
	// SwapFail makes individual swap transfers fail transiently; the
	// runtime retries with exponential backoff.
	SwapFail
	// CapacityShrink allocates phantom "co-located job" blocks from the
	// device pool over windows of the schedule, shrinking the memory
	// actually available to the plan.
	CapacityShrink

	numKinds
)

// String names the fault kind (metric label values).
func (k Kind) String() string {
	switch k {
	case OpNoise:
		return "op-noise"
	case Bandwidth:
		return "bandwidth"
	case SwapFail:
		return "swap-fail"
	case CapacityShrink:
		return "capacity-shrink"
	default:
		return "unknown"
	}
}

// Kinds lists every fault class.
func Kinds() []Kind { return []Kind{OpNoise, Bandwidth, SwapFail, CapacityShrink} }

const (
	// DefaultSeverity is the documented default for -fault-severity: a
	// rack bad enough to need the degradation ladder on tight budgets,
	// mild enough that a planned margin usually absorbs it.
	DefaultSeverity = 0.3
	// MaxSwapRetries bounds transient-transfer retries. After the
	// budget is exhausted the link is reset and the final attempt
	// succeeds unconditionally — transients degrade, they never abort.
	MaxSwapRetries = 4
	// BackoffBase is the first retry's backoff delay in seconds; each
	// subsequent retry doubles it.
	BackoffBase = 50e-6
	// Transfer directions for SwapFailures keys.
	DirOut = 0
	DirIn  = 1

	// bandwidthWindow is the schedule-index granularity of PCIe
	// degradation windows.
	bandwidthWindow = 8
)

// Config selects a deterministic fault environment.
type Config struct {
	// Seed keys every draw; same seed + same severity = same faults.
	Seed uint64
	// Severity in (0, 1] scales every fault class: noise amplitude,
	// degradation probability and depth, transfer failure probability,
	// and stolen-capacity size. Zero or negative disables injection.
	Severity float64
	// Kinds restricts injection to the listed fault classes
	// (nil = all).
	Kinds []Kind
}

// Injector answers "what goes wrong, and when" for one environment.
// A nil *Injector is valid and injects nothing.
type Injector struct {
	seed uint64
	sev  float64
	mask uint
}

// New builds an Injector, or nil when the config disables injection.
func New(cfg Config) *Injector {
	if cfg.Severity <= 0 {
		return nil
	}
	sev := cfg.Severity
	if sev > 1 {
		sev = 1
	}
	inj := &Injector{seed: cfg.Seed, sev: sev}
	if len(cfg.Kinds) == 0 {
		inj.mask = 1<<uint(numKinds) - 1
	} else {
		for _, k := range cfg.Kinds {
			if k >= 0 && k < numKinds {
				inj.mask |= 1 << uint(k)
			}
		}
	}
	return inj
}

// Severity reports the clamped severity (0 for a nil injector).
func (inj *Injector) Severity() float64 {
	if inj == nil {
		return 0
	}
	return inj.sev
}

// enabled reports whether a fault class is active.
func (inj *Injector) enabled(k Kind) bool {
	return inj != nil && inj.mask&(1<<uint(k)) != 0
}

// mix64 is the SplitMix64 finalizer: a bijective avalanche mix.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit hashes (seed, kind, keys...) to a uniform draw in [0, 1).
func (inj *Injector) unit(k Kind, keys ...uint64) float64 {
	h := mix64(inj.seed ^ uint64(k)*0xa0761d6478bd642f)
	for _, key := range keys {
		h = mix64(h ^ key)
	}
	return float64(h>>11) / (1 << 53)
}

// OpTimeFactor returns the multiplicative compute-time misprediction
// factor for the operator at schedule index i, in
// [1-sev/2, 1+sev/2): profiles may be optimistic or pessimistic.
func (inj *Injector) OpTimeFactor(i int) float64 {
	if !inj.enabled(OpNoise) {
		return 1
	}
	z := 2*inj.unit(OpNoise, uint64(i)) - 1
	return 1 + 0.5*inj.sev*z
}

// TransferFactor returns the PCIe transfer-time multiplier (>= 1) in
// effect at schedule index i. Degradation arrives in windows of
// bandwidthWindow schedule steps; within a degraded window every
// transfer is slowed by the same factor, up to 1+3*sev.
func (inj *Injector) TransferFactor(i int) float64 {
	if !inj.enabled(Bandwidth) {
		return 1
	}
	w := uint64(i / bandwidthWindow)
	if inj.unit(Bandwidth, w, 0) >= 0.35*inj.sev {
		return 1
	}
	return 1 + 3*inj.sev*inj.unit(Bandwidth, w, 1)
}

// SwapFailures returns how many transient failures the transfer of
// tensor id in direction dir at schedule index i suffers before it
// succeeds, in [0, MaxSwapRetries]. Each attempt fails independently
// with probability = severity, so severity 1 always exhausts the
// retry budget (and the post-reset attempt still succeeds).
func (inj *Injector) SwapFailures(id, i, dir int) int {
	if !inj.enabled(SwapFail) {
		return 0
	}
	fails := 0
	for a := 0; a < MaxSwapRetries; a++ {
		if inj.unit(SwapFail, uint64(id), uint64(i), uint64(dir), uint64(a)) >= inj.sev {
			break
		}
		fails++
	}
	return fails
}

// CapacityEvent is one co-located-job window: Bytes of pool memory
// are held from schedule index Start until just before End.
type CapacityEvent struct {
	Start, End int
	Bytes      int64
}

// CapacityEvents draws the run's capacity-shrink schedule for an
// n-op schedule against a device budget. Event count, placement, and
// stolen size all scale with severity; at DefaultSeverity each event
// steals 1.5–9% of the budget. The combined steal across all events
// is capped at 45% of the budget scaled by severity — co-located
// jobs squeeze the plan, they do not confiscate the device — so the
// swap-all fallback always has something left to run in.
func (inj *Injector) CapacityEvents(n int, capacity int64) []CapacityEvent {
	if !inj.enabled(CapacityShrink) || n < 2 || capacity <= 0 {
		return nil
	}
	src := NewSource(mix64(mix64(inj.seed^0xe7037ed1a0b428db) ^ uint64(CapacityShrink)))
	events := 1 + int(inj.sev*4)
	budget := int64(float64(capacity) * inj.sev * 0.45)
	out := make([]CapacityEvent, 0, events)
	for e := 0; e < events; e++ {
		start := src.Intn(n - 1)
		dur := 1 + n/6 + src.Intn(n/6+1)
		end := start + dur
		if end > n {
			end = n
		}
		bytes := int64(float64(capacity) * inj.sev * (0.05 + 0.25*src.Float64()))
		if bytes > budget {
			bytes = budget
		}
		if bytes <= 0 {
			continue
		}
		budget -= bytes
		out = append(out, CapacityEvent{Start: start, End: end, Bytes: bytes})
	}
	return out
}
