package faults

import "testing"

func TestNewDisabledAndNilSafety(t *testing.T) {
	if New(Config{Seed: 1, Severity: 0}) != nil {
		t.Fatal("severity 0 must disable injection")
	}
	var inj *Injector
	if inj.Severity() != 0 {
		t.Fatal("nil injector severity")
	}
	if f := inj.OpTimeFactor(3); f != 1 {
		t.Fatalf("nil injector op factor = %v", f)
	}
	if f := inj.TransferFactor(3); f != 1 {
		t.Fatalf("nil injector transfer factor = %v", f)
	}
	if n := inj.SwapFailures(1, 2, DirOut); n != 0 {
		t.Fatalf("nil injector failures = %d", n)
	}
	if ev := inj.CapacityEvents(100, 1<<30); ev != nil {
		t.Fatalf("nil injector events = %v", ev)
	}
}

func TestDeterministicDraws(t *testing.T) {
	a := New(Config{Seed: 42, Severity: 0.5})
	b := New(Config{Seed: 42, Severity: 0.5})
	for i := 0; i < 200; i++ {
		if a.OpTimeFactor(i) != b.OpTimeFactor(i) {
			t.Fatalf("op factor diverged at %d", i)
		}
		if a.TransferFactor(i) != b.TransferFactor(i) {
			t.Fatalf("transfer factor diverged at %d", i)
		}
		if a.SwapFailures(i, i*3, DirIn) != b.SwapFailures(i, i*3, DirIn) {
			t.Fatalf("failures diverged at %d", i)
		}
	}
	ea, eb := a.CapacityEvents(300, 1<<30), b.CapacityEvents(300, 1<<30)
	if len(ea) != len(eb) {
		t.Fatalf("event count diverged: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	// Draws are keyed, not sequential: reading them in a different
	// order must not change them.
	c := New(Config{Seed: 42, Severity: 0.5})
	for i := 199; i >= 0; i-- {
		if c.OpTimeFactor(i) != a.OpTimeFactor(i) {
			t.Fatalf("op factor order-dependent at %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(Config{Seed: 1, Severity: 0.5})
	b := New(Config{Seed: 2, Severity: 0.5})
	same := 0
	for i := 0; i < 100; i++ {
		if a.OpTimeFactor(i) == b.OpTimeFactor(i) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical factors", same)
	}
}

func TestFactorRanges(t *testing.T) {
	for _, sev := range []float64{0.1, 0.5, 1.0} {
		inj := New(Config{Seed: 7, Severity: sev})
		for i := 0; i < 500; i++ {
			if f := inj.OpTimeFactor(i); f < 1-0.5*sev || f >= 1+0.5*sev {
				t.Fatalf("sev %v: op factor %v out of range at %d", sev, f, i)
			}
			if f := inj.TransferFactor(i); f < 1 || f > 1+3*sev {
				t.Fatalf("sev %v: transfer factor %v out of range at %d", sev, f, i)
			}
			if n := inj.SwapFailures(i, i, DirOut); n < 0 || n > MaxSwapRetries {
				t.Fatalf("sev %v: %d failures at %d", sev, n, i)
			}
		}
	}
}

func TestSeverityOneExhaustsRetries(t *testing.T) {
	inj := New(Config{Seed: 3, Severity: 1})
	for i := 0; i < 50; i++ {
		if n := inj.SwapFailures(i, i*7, DirOut); n != MaxSwapRetries {
			t.Fatalf("severity 1 should always exhaust the budget; got %d at %d", n, i)
		}
	}
}

func TestKindFilter(t *testing.T) {
	inj := New(Config{Seed: 5, Severity: 1, Kinds: []Kind{OpNoise}})
	saw := false
	for i := 0; i < 100; i++ {
		if inj.OpTimeFactor(i) != 1 {
			saw = true
		}
		if inj.TransferFactor(i) != 1 {
			t.Fatal("bandwidth should be filtered out")
		}
		if inj.SwapFailures(i, i, DirIn) != 0 {
			t.Fatal("swap failures should be filtered out")
		}
	}
	if !saw {
		t.Fatal("op noise should be active")
	}
	if ev := inj.CapacityEvents(200, 1<<30); ev != nil {
		t.Fatal("capacity events should be filtered out")
	}
}

func TestCapacityEventsBounded(t *testing.T) {
	const n, cap = 250, int64(1 << 30)
	for _, sev := range []float64{0.3, 1.0} {
		inj := New(Config{Seed: 11, Severity: sev})
		var total int64
		for _, ev := range inj.CapacityEvents(n, cap) {
			if ev.Start < 0 || ev.Start >= n || ev.End <= ev.Start || ev.End > n {
				t.Fatalf("sev %v: bad window %+v", sev, ev)
			}
			if ev.Bytes <= 0 {
				t.Fatalf("sev %v: empty steal %+v", sev, ev)
			}
			total += ev.Bytes
		}
		if ceil := int64(float64(cap) * sev * 0.45); total > ceil {
			t.Fatalf("sev %v: total steal %d exceeds cap %d", sev, total, ceil)
		}
	}
}
