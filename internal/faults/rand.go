package faults

import "math/rand"

// This file is the module's sanctioned pseudo-randomness site: the
// clockdet lint rule bans math/rand everywhere else so that no
// simulation or planning result can depend on an unseeded or global
// generator. Everything here is explicitly seeded — same Seed, same
// byte stream — which is what keeps fault injection replayable.

// Source is an explicitly-seeded sequential generator used for the
// fault schedules that are drawn once per run (capacity-shrink
// windows). Per-event decisions use the stateless keyed mixer in
// faults.go instead, so they stay stable when plans and schedules
// change around them.
type Source struct {
	r *rand.Rand
}

// NewSource returns a deterministic sequential source for a seed.
func NewSource(seed uint64) *Source {
	return &Source{r: rand.New(rand.NewSource(int64(seed)))}
}

// Float64 returns a uniform draw in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform draw in [0, n).
func (s *Source) Intn(n int) int { return s.r.Intn(n) }
