package sim

import (
	"testing"

	"tsplit/internal/models"
	"tsplit/internal/obs"
)

// TestSimMetrics checks the metrics a Run emits against the Result it
// returns.
func TestSimMetrics(t *testing.T) {
	b := mkbed(t, "vgg16", models.Config{BatchSize: 64})
	plan := b.baseline(t, "vdnn-all")
	reg := obs.NewRegistry()
	r := b.run(t, plan, Options{Obs: reg})

	if got := reg.Counter("tsplit_sim_runs_total"); got != 1 {
		t.Fatalf("runs_total = %d", got)
	}
	if got := reg.Counter("tsplit_sim_swap_bytes_total", obs.L("dir", "out")); got != r.SwapOutBytes {
		t.Fatalf("swap_bytes_total{out} %d != result %d", got, r.SwapOutBytes)
	}
	if got := reg.Counter("tsplit_sim_swap_bytes_total", obs.L("dir", "in")); got != r.SwapInBytes {
		t.Fatalf("swap_bytes_total{in} %d != result %d", got, r.SwapInBytes)
	}
	if got := reg.Counter("tsplit_sim_stream_busy_microseconds_total", obs.L("stream", "d2h")); got != usec(r.D2HBusy) {
		t.Fatalf("stream_busy{d2h} %d != %d", got, usec(r.D2HBusy))
	}
	if got := reg.Counter("tsplit_sim_stream_busy_microseconds_total", obs.L("stream", "compute")); got <= 0 {
		t.Fatal("compute busy time not recorded")
	}
	if got := reg.Gauge("tsplit_sim_peak_bytes"); got != float64(r.PeakBytes) {
		t.Fatalf("peak_bytes gauge %g != result %d", got, r.PeakBytes)
	}
}

// TestSimStallBreakdown pins that the per-cause stall attribution stays
// within the total stall: each component is non-negative and their sum
// does not exceed StallTime (which also carries costs the breakdown
// does not itemize, like merge copies).
func TestSimStallBreakdown(t *testing.T) {
	b := mkbed(t, "vgg16", models.Config{BatchSize: 64})
	plan := b.baseline(t, "vdnn-all")
	r := b.run(t, plan, Options{})
	if r.InputStallTime < 0 || r.AllocStallTime < 0 || r.CompactTime < 0 {
		t.Fatalf("negative stall component: %+v", r)
	}
	sum := r.InputStallTime + r.AllocStallTime + r.CompactTime + r.RecomputeTime
	if sum > r.StallTime+1e-9 {
		t.Fatalf("stall breakdown %g exceeds total stall %g", sum, r.StallTime)
	}
	// A vDNN-all plan swaps every feature map; something must stall.
	if r.StallTime > 0 && r.InputStallTime == 0 && r.AllocStallTime == 0 {
		t.Fatal("stalls occurred but none were attributed")
	}
}

// TestSimFailureMetrics pins the OOM counter path.
func TestSimFailureMetrics(t *testing.T) {
	b := mkbed(t, "vgg16", models.Config{BatchSize: 64})
	plan := b.baseline(t, "base")
	reg := obs.NewRegistry()
	_, err := New(b.g, b.sched, b.lv, plan, b.dev, Options{Capacity: 1 << 24, Obs: reg}).Run()
	if err == nil {
		t.Fatal("expected OOM under a 16 MiB capacity")
	}
	if got := reg.Counter("tsplit_sim_failures_total"); got != 1 {
		t.Fatalf("failures_total = %d", got)
	}
	if got := reg.Counter("tsplit_sim_runs_total"); got != 0 {
		t.Fatalf("failed run counted as success: %d", got)
	}
}
