package sim

import (
	"fmt"

	"tsplit/internal/core"
	"tsplit/internal/graph"
	"tsplit/internal/memorypool"
)

// microOutSize returns the size of output micro-part k when outB bytes
// split into pn parts of microOut (the last part absorbs remainder).
func microOutSize(outB, microOut int64, pn, k int) int64 {
	if k == pn-1 {
		return outB - microOut*int64(pn-1)
	}
	return microOut
}

// microOnHost reports whether t is one of the split's micro-restored
// inputs that was on the host when the op started (s.microOn snapshot).
func (s *Simulator) microOnHost(sp core.OpSplit, t *graph.Tensor) bool {
	for mi, m := range sp.MicroIns {
		if m == t && s.microOn[mi] {
			return true
		}
	}
	return false
}

// execSplit executes an operator as a sequence of p_num
// micro-operators (paper Sec. V-A): carved inputs are partitioned in
// place and freed (or streamed out) micro-part by micro-part as they
// are consumed, micro-restored inputs stream in from the host one part
// at a time, output micro-tensors accumulate and are merged, and
// EarlyOut outputs begin their swap-out transfer while the remaining
// micro-operators still execute.
//
// Output reassembly follows core.MergeModeFor: staged into the carved
// input's freed slots (Fig. 8 memory reuse), staged through the
// restore region of a same-size saved input, or — when neither reuse
// applies — a physical merge copy into a fresh block.
func (s *Simulator) execSplit(i int, op *graph.Op, sp core.OpSplit) error {
	pn := sp.PNum
	in, out := core.SplitTensors(op, sp.Dim)
	if in == nil || out == nil || pn < 2 {
		return s.execWhole(i, op)
	}
	s.pin(op)

	mode := core.MergeModeFor(op, sp)
	stageTensor := core.RestoreStageTensor(op, sp)

	// Snapshot which micro-restored inputs stream from the host. State
	// cannot change between here and their per-part stream-ins (micro
	// tensors are never carved: carving requires onDevice).
	s.microOn = grow(s.microOn, len(sp.MicroIns))
	nMicro := 0
	for mi, t := range sp.MicroIns {
		if s.state[t.ID] == onHost {
			s.microOn[mi] = true
			nMicro++
		}
	}
	if mode == core.MergeRestoreInPlace && (stageTensor == nil || !s.microOnHost(sp, stageTensor)) {
		mode = core.MergePhysical
		stageTensor = nil
	}

	// Whole inputs (weights, non-streamable activations).
	ready := s.tc
	for _, t := range op.Inputs {
		if s.microOnHost(sp, t) || s.skipInput(op, t) {
			continue
		}
		r, err := s.ensureInput(t, s.tc)
		if err != nil {
			return err
		}
		if r > ready {
			ready = r
		}
	}
	readyIn := ready

	// Carve evict-as-consumed inputs in place. The partitions live in
	// the reusable carve buffers; holds point into them (no further
	// appends this op, so the addresses are stable).
	if cap(s.carvedIns) < 2 {
		s.carvedIns = make([]carvedInput, 0, 2)
	}
	carvedIns := s.carvedIns[:0]
	if sp.InOpt != core.Reside {
		carveSrc := [2]*graph.Tensor{in, sp.In2}
		for ci, t := range carveSrc {
			if t == nil || s.state[t.ID] != onDevice {
				continue
			}
			blocks, err := s.pool.SplitUsedInto(s.block[t.ID], pn, s.carveBuf[ci][:0])
			if err != nil {
				continue // too small to carve; keep whole
			}
			s.carveBuf[ci] = blocks
			s.block[t.ID] = memorypool.Block{}
			carvedIns = append(carvedIns, carvedInput{t, blocks})
			for k := range blocks {
				s.hold(&blocks[k])
			}
		}
	}
	if mode == core.MergeCarveInPlace && (len(carvedIns) == 0 || carvedIns[0].t != in) {
		mode = core.MergePhysical
	}

	var perPart float64
	if !s.peakOnly {
		perPart, _ = s.Cost.SplitTimes(op, pn)
		if effectiveKindOf(op) == graph.BatchNorm {
			// Micro-tensor batch normalization: a second pass finalizes
			// the batch statistics before normalizing each micro-tensor.
			perPart += float64(in.Bytes()) / float64(pn) / s.Dev.MemBandwidth
		}
		if s.noise != nil {
			// The same misprediction factor applies to every micro-op of
			// the split (they are the same kernel on smaller tensors).
			np := perPart * s.noise[i]
			s.res.Faults.OpNoiseSeconds += (np - perPart) * float64(pn)
			perPart = np
		}
	}

	var wsBlock *memorypool.Block
	if ws := op.Workspace / int64(pn); ws > 0 {
		blk, r, err := s.allocWait(ws, ready)
		if err != nil {
			return err
		}
		ready = r
		wsBlock = s.holdVal(blk)
	}
	// Reduction outputs (e.g. dW of a sample-split conv backward)
	// accumulate across micro-operators: full-size from the start.
	for _, o := range op.Outputs {
		if o == out {
			continue
		}
		blk, r, err := s.allocWait(o.Bytes(), ready)
		if err != nil {
			return err
		}
		ready = r
		s.block[o.ID] = blk
		s.state[o.ID] = onDevice
	}

	earlyOut := false
	if sp.EarlyOut && s.planned[out.ID] && s.tplans[out.ID].Opt == core.Swap {
		earlyOut = true
	}

	outB := out.Bytes()
	microOut := outB / int64(pn)

	// Merge-mode set-up.
	var restoreSlots []memorypool.Block // MergeRestoreInPlace region
	var stageBuf *memorypool.Block      // staging buffer for both in-place modes
	switch mode {
	case core.MergeRestoreInPlace:
		region, r, err := s.allocWait(outB, ready)
		if err != nil {
			return err
		}
		ready = r
		slots, err := s.pool.SplitUsedInto(region, pn, s.restoreSlots[:0])
		if err != nil {
			return err
		}
		s.restoreSlots = slots
		restoreSlots = slots
		for k := range restoreSlots {
			s.hold(&restoreSlots[k])
		}
	case core.MergeCarveInPlace:
		// Verify the carved slots fit the staged micro-outputs.
		for k, blk := range carvedIns[0].blocks {
			if blk.Size < microOutSize(outB, microOut, pn, k) {
				mode = core.MergePhysical
				break
			}
		}
	}
	if mode != core.MergePhysical {
		blk, r, err := s.allocWait(microOut+memorypool.Alignment, ready)
		if err != nil {
			mode = core.MergePhysical
		} else {
			ready = r
			stageBuf = s.holdVal(blk)
		}
	}
	if mode == core.MergePhysical && restoreSlots != nil {
		// Release the unusable region; fall back to scattered allocs.
		for _, blk := range restoreSlots {
			s.pool.FreeBlock(blk)
		}
		restoreSlots = nil
	}

	if cap(s.outBlocks) < pn {
		s.outBlocks = make([]memorypool.Block, 0, 2*pn)
	}
	if cap(s.microPtrs) < len(sp.MicroIns) {
		s.microPtrs = make([]*memorypool.Block, 0, 2*len(sp.MicroIns))
	}
	outBlocks := s.outBlocks[:0]
	for k := 0; k < pn; k++ {
		osz := microOutSize(outB, microOut, pn, k)
		kready := ready
		// Stream in this micro-part of each micro-restored input. The
		// stage tensor's slice lands directly in slot k of the output
		// region; others use scratch blocks freed after the micro-op.
		// Scratch blocks sit in arena slots (distinct per part, so the
		// compaction remapper never sees a reused address within an op).
		microPtrs := s.microPtrs[:0]
		for mi, t := range sp.MicroIns {
			if !s.microOn[mi] {
				continue
			}
			part := t.Bytes() / int64(pn)
			if mode != core.MergeRestoreInPlace || t != stageTensor {
				blk, r, err := s.allocWait(part, kready)
				if err != nil {
					return err
				}
				if r > kready {
					kready = r
				}
				microPtrs = append(microPtrs, s.holdVal(blk))
			}
			if !s.peakOnly {
				start := s.th
				if kready > start {
					start = kready
				}
				dur := s.xfer(part)
				s.th = start + dur
				s.res.H2DBusy += dur
				s.res.SwapInBytes += part
				if s.th > kready {
					kready = s.th
				}
			}
		}

		// Micro output destination: slot k of the reused outBlocks
		// buffer, registered with the compaction remapper by address —
		// a value copy here would go stale if a later micro-part's
		// allocation compacted the arena.
		outBlocks = append(outBlocks, memorypool.Block{})
		oblk := &outBlocks[k]
		if mode == core.MergePhysical {
			blk, r, err := s.allocWait(osz, kready)
			if err != nil {
				return err
			}
			*oblk = blk
			if r > kready {
				kready = r
			}
		}
		s.hold(oblk)

		var end float64
		if !s.peakOnly {
			start := s.tc
			if kready > start {
				start = kready
			}
			if k == 0 {
				s.chargeStall(start, readyIn)
			} else if st := start - s.tc; st > 0 {
				// Later micro-parts wait on the streaming restore (when one
				// is active) or on pool memory.
				if nMicro > 0 {
					s.res.InputStallTime += st
				} else {
					s.res.AllocStallTime += st
				}
			}
			end = start + perPart
			s.tc = end
			s.res.ComputeTime += perPart
		}

		// Retire this micro-part of the carved inputs; in carve-staging
		// mode the primary input's freed slot receives the staged
		// micro-output (one micro-sized copy).
		for _, c := range carvedIns {
			blk := c.blocks[k]
			switch {
			case mode == core.MergeCarveInPlace && c.t == in:
				s.pool.FreeBlock(blk)
				ab, err := s.pool.AllocAt(blk.Offset, osz)
				if err != nil {
					ab, _, err = s.allocWait(osz, s.tc)
					if err != nil {
						return err
					}
				}
				if !s.peakOnly {
					s.chargeCopy(osz)
				}
				*oblk = ab
			case sp.InOpt == core.Swap:
				if s.peakOnly {
					s.pushPending(0, blk, c.t)
				} else {
					ds := s.td
					if end > ds {
						ds = end
					}
					dur := s.xfer(blk.Size)
					s.td = ds + dur
					s.res.D2HBusy += dur
					s.res.SwapOutBytes += blk.Size
					s.pushPending(s.td, blk, c.t)
				}
			default:
				s.pool.FreeBlock(blk)
			}
		}
		if mode == core.MergeRestoreInPlace {
			// Overwrite slot k (holding the consumed restore slice)
			// with the staged micro-output.
			if !s.peakOnly {
				s.chargeCopy(osz)
			}
			*oblk = restoreSlots[k]
		}
		for _, p := range microPtrs {
			s.pool.FreeBlock(*p)
		}
		if earlyOut && !s.peakOnly {
			ds := s.td
			if end > ds {
				ds = end
			}
			dur := s.xfer(osz)
			s.td = ds + dur
			s.res.D2HBusy += dur
			s.res.SwapOutBytes += osz
		}
	}

	// Carved inputs have fully left the device.
	for _, c := range carvedIns {
		switch {
		case sp.InOpt == core.Swap:
			s.state[c.t.ID] = onHost
		case s.remaining[c.t.ID] > 1 || s.hasUseAfter(c.t, i):
			s.state[c.t.ID] = dropped
		default:
			s.state[c.t.ID] = freed
		}
	}

	if stageBuf != nil {
		s.pool.FreeBlock(*stageBuf)
	}

	// Merge the output micro-tensors for the (unsplit) consumer.
	if merged, ok := s.pool.MergeUsed(outBlocks); ok {
		s.block[out.ID] = merged
	} else {
		blk, r, err := s.allocWait(outB, s.tc)
		if err != nil {
			return fmt.Errorf("merging %s: %w", out.Name, err)
		}
		if !s.peakOnly {
			if r > s.tc {
				s.res.AllocStallTime += r - s.tc
				s.tc = r
			}
			s.chargeCopy(outB)
		}
		for _, b := range outBlocks {
			s.pool.FreeBlock(b)
		}
		s.block[out.ID] = blk
	}
	s.state[out.ID] = onDevice
	if earlyOut {
		s.earlyCopied[out.ID] = true
	}
	if wsBlock != nil {
		s.pool.FreeBlock(*wsBlock)
	}
	if s.peakOnly {
		return nil
	}
	s.readyAt[out.ID] = s.tc
	for _, o := range op.Outputs {
		s.readyAt[o.ID] = s.tc
	}
	if s.Opts.CollectTimeline {
		s.res.Timeline = append(s.res.Timeline, TimelinePoint{
			OpIndex: i, Name: op.Name + fmt.Sprintf("[split %d]", pn),
			Start: ready, End: s.tc, MemUsed: s.pool.InUse(), FragBytes: s.fragBytes(),
		})
	}
	return nil
}

// chargeCopy advances the compute stream by a device-to-device copy of
// the given size.
func (s *Simulator) chargeCopy(bytes int64) {
	t := float64(bytes) / s.Dev.MemBandwidth
	s.tc += t
	s.res.ComputeTime += t
}

// effectiveKindOf resolves GradOps to their forward kind.
func effectiveKindOf(op *graph.Op) graph.OpKind {
	if op.Kind == graph.GradOp && op.FwdOp != nil {
		return op.FwdOp.Kind
	}
	return op.Kind
}

// hasUseAfter reports whether t has any consumer scheduled after i.
func (s *Simulator) hasUseAfter(t *graph.Tensor, i int) bool {
	for _, c := range t.Consumers {
		if int(s.schedIdx[c.ID]) > i {
			return true
		}
	}
	return false
}
