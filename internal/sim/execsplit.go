package sim

import (
	"container/heap"
	"fmt"

	"tsplit/internal/core"
	"tsplit/internal/graph"
	"tsplit/internal/memorypool"
)

// execSplit executes an operator as a sequence of p_num
// micro-operators (paper Sec. V-A): carved inputs are partitioned in
// place and freed (or streamed out) micro-part by micro-part as they
// are consumed, micro-restored inputs stream in from the host one part
// at a time, output micro-tensors accumulate and are merged, and
// EarlyOut outputs begin their swap-out transfer while the remaining
// micro-operators still execute.
//
// Output reassembly follows core.MergeModeFor: staged into the carved
// input's freed slots (Fig. 8 memory reuse), staged through the
// restore region of a same-size saved input, or — when neither reuse
// applies — a physical merge copy into a fresh block.
func (s *Simulator) execSplit(i int, op *graph.Op, sp core.OpSplit) error {
	pn := sp.PNum
	in, out := core.SplitTensors(op, sp.Dim)
	if in == nil || out == nil || pn < 2 {
		return s.execWhole(i, op)
	}
	s.pin(op)

	mode := core.MergeModeFor(op, sp)
	stageTensor := core.RestoreStageTensor(op, sp)

	microSet := make(map[*graph.Tensor]bool, len(sp.MicroIns))
	for _, t := range sp.MicroIns {
		if s.state[t] == onHost {
			microSet[t] = true
		}
	}
	if mode == core.MergeRestoreInPlace && (stageTensor == nil || !microSet[stageTensor]) {
		mode = core.MergePhysical
		stageTensor = nil
	}

	// Whole inputs (weights, non-streamable activations).
	ready := s.tc
	for _, t := range op.Inputs {
		if microSet[t] || s.skipInput(op, t) {
			continue
		}
		r, err := s.ensureInput(t, s.tc)
		if err != nil {
			return err
		}
		if r > ready {
			ready = r
		}
	}
	readyIn := ready

	// Carve evict-as-consumed inputs in place.
	type carvedInput struct {
		t      *graph.Tensor
		blocks []memorypool.Block
	}
	var carvedIns []carvedInput
	if sp.InOpt != core.Reside {
		for _, t := range []*graph.Tensor{in, sp.In2} {
			if t == nil || s.state[t] != onDevice {
				continue
			}
			blocks, err := s.pool.SplitUsed(s.block[t], pn)
			if err != nil {
				continue // too small to carve; keep whole
			}
			delete(s.block, t)
			carvedIns = append(carvedIns, carvedInput{t, blocks})
			for k := range blocks {
				s.hold(&blocks[k])
			}
		}
	}
	if mode == core.MergeCarveInPlace && (len(carvedIns) == 0 || carvedIns[0].t != in) {
		mode = core.MergePhysical
	}

	perPart, _ := s.Cost.SplitTimes(op, pn)
	if effectiveKindOf(op) == graph.BatchNorm {
		// Micro-tensor batch normalization: a second pass finalizes
		// the batch statistics before normalizing each micro-tensor.
		perPart += float64(in.Bytes()) / float64(pn) / s.Dev.MemBandwidth
	}
	if s.noise != nil {
		// The same misprediction factor applies to every micro-op of
		// the split (they are the same kernel on smaller tensors).
		np := perPart * s.noise[i]
		s.res.Faults.OpNoiseSeconds += (np - perPart) * float64(pn)
		perPart = np
	}

	var wsBlock *memorypool.Block
	if ws := op.Workspace / int64(pn); ws > 0 {
		blk, r, err := s.allocWait(ws, ready)
		if err != nil {
			return err
		}
		wsBlock, ready = &blk, r
		s.hold(wsBlock)
	}
	// Reduction outputs (e.g. dW of a sample-split conv backward)
	// accumulate across micro-operators: full-size from the start.
	for _, o := range op.Outputs {
		if o == out {
			continue
		}
		blk, r, err := s.allocWait(o.Bytes(), ready)
		if err != nil {
			return err
		}
		ready = r
		s.block[o] = blk
		s.state[o] = onDevice
	}

	earlyOut := false
	if sp.EarlyOut {
		if tp, ok := s.Plan.Tensors[out.ID]; ok && tp.Opt == core.Swap {
			earlyOut = true
		}
	}

	outB := out.Bytes()
	microOut := outB / int64(pn)
	outSize := func(k int) int64 {
		if k == pn-1 {
			return outB - microOut*int64(pn-1)
		}
		return microOut
	}

	// Merge-mode set-up.
	var restoreSlots []memorypool.Block // MergeRestoreInPlace region
	var stageBuf *memorypool.Block      // staging buffer for both in-place modes
	switch mode {
	case core.MergeRestoreInPlace:
		region, r, err := s.allocWait(outB, ready)
		if err != nil {
			return err
		}
		ready = r
		slots, err := s.pool.SplitUsed(region, pn)
		if err != nil {
			return err
		}
		restoreSlots = slots
		for k := range restoreSlots {
			s.hold(&restoreSlots[k])
		}
	case core.MergeCarveInPlace:
		// Verify the carved slots fit the staged micro-outputs.
		for k, blk := range carvedIns[0].blocks {
			if blk.Size < outSize(k) {
				mode = core.MergePhysical
				break
			}
		}
	}
	if mode != core.MergePhysical {
		blk, r, err := s.allocWait(microOut+memorypool.Alignment, ready)
		if err != nil {
			mode = core.MergePhysical
		} else {
			stageBuf, ready = &blk, r
			s.hold(stageBuf)
		}
	}
	if mode == core.MergePhysical && restoreSlots != nil {
		// Release the unusable region; fall back to scattered allocs.
		for _, blk := range restoreSlots {
			s.pool.FreeBlock(blk)
		}
		restoreSlots = nil
	}

	outBlocks := make([]memorypool.Block, 0, pn)
	for k := 0; k < pn; k++ {
		kready := ready
		// Stream in this micro-part of each micro-restored input. The
		// stage tensor's slice lands directly in slot k of the output
		// region; others use scratch blocks freed after the micro-op.
		microBlocks := make([]memorypool.Block, 0, len(sp.MicroIns))
		for _, t := range sp.MicroIns {
			if !microSet[t] {
				continue
			}
			part := t.Bytes() / int64(pn)
			if mode != core.MergeRestoreInPlace || t != stageTensor {
				blk, r, err := s.allocWait(part, kready)
				if err != nil {
					return err
				}
				if r > kready {
					kready = r
				}
				microBlocks = append(microBlocks, blk)
				s.hold(&microBlocks[len(microBlocks)-1])
			}
			start := s.th
			if kready > start {
				start = kready
			}
			dur := s.xfer(part)
			s.th = start + dur
			s.res.H2DBusy += dur
			s.res.SwapInBytes += part
			if s.th > kready {
				kready = s.th
			}
		}

		// Micro output destination.
		var oblk memorypool.Block
		if mode == core.MergePhysical {
			blk, r, err := s.allocWait(outSize(k), kready)
			if err != nil {
				return err
			}
			oblk = blk
			if r > kready {
				kready = r
			}
		}
		s.hold(&oblk)

		start := s.tc
		if kready > start {
			start = kready
		}
		if k == 0 {
			s.chargeStall(start, readyIn)
		} else if st := start - s.tc; st > 0 {
			// Later micro-parts wait on the streaming restore (when one
			// is active) or on pool memory.
			if len(microSet) > 0 {
				s.res.InputStallTime += st
			} else {
				s.res.AllocStallTime += st
			}
		}
		end := start + perPart
		s.tc = end
		s.res.ComputeTime += perPart

		// Retire this micro-part of the carved inputs; in carve-staging
		// mode the primary input's freed slot receives the staged
		// micro-output (one micro-sized copy).
		for _, c := range carvedIns {
			blk := c.blocks[k]
			switch {
			case mode == core.MergeCarveInPlace && c.t == in:
				s.pool.FreeBlock(blk)
				ab, err := s.pool.AllocAt(blk.Offset, outSize(k))
				if err != nil {
					ab, _, err = s.allocWait(outSize(k), s.tc)
					if err != nil {
						return err
					}
				}
				s.chargeCopy(outSize(k))
				oblk = ab
			case sp.InOpt == core.Swap:
				ds := s.td
				if end > ds {
					ds = end
				}
				dur := s.xfer(blk.Size)
				s.td = ds + dur
				s.res.D2HBusy += dur
				s.res.SwapOutBytes += blk.Size
				heap.Push(&s.pending, freeEvent{at: s.td, block: blk, t: c.t})
			default:
				s.pool.FreeBlock(blk)
			}
		}
		if mode == core.MergeRestoreInPlace {
			// Overwrite slot k (holding the consumed restore slice)
			// with the staged micro-output.
			s.chargeCopy(outSize(k))
			oblk = restoreSlots[k]
		}
		outBlocks = append(outBlocks, oblk)
		for _, blk := range microBlocks {
			s.pool.FreeBlock(blk)
		}
		if earlyOut {
			ds := s.td
			if end > ds {
				ds = end
			}
			dur := s.xfer(outSize(k))
			s.td = ds + dur
			s.res.D2HBusy += dur
			s.res.SwapOutBytes += outSize(k)
		}
	}

	// Carved inputs have fully left the device.
	for _, c := range carvedIns {
		switch {
		case sp.InOpt == core.Swap:
			s.state[c.t] = onHost
		case s.remaining[c.t] > 1 || hasUseAfter(s, c.t, i):
			s.state[c.t] = dropped
		default:
			s.state[c.t] = freed
		}
	}

	if stageBuf != nil {
		s.pool.FreeBlock(*stageBuf)
	}

	// Merge the output micro-tensors for the (unsplit) consumer.
	if merged, ok := s.pool.MergeUsed(outBlocks); ok {
		s.block[out] = merged
	} else {
		blk, r, err := s.allocWait(outB, s.tc)
		if err != nil {
			return fmt.Errorf("merging %s: %w", out.Name, err)
		}
		if r > s.tc {
			s.res.AllocStallTime += r - s.tc
		}
		start := s.tc
		if r > start {
			start = r
		}
		s.tc = start
		s.chargeCopy(outB)
		for _, b := range outBlocks {
			s.pool.FreeBlock(b)
		}
		s.block[out] = blk
	}
	s.state[out] = onDevice
	s.readyAt[out] = s.tc
	for _, o := range op.Outputs {
		s.readyAt[o] = s.tc
	}
	if earlyOut {
		s.earlyCopied[out] = true
	}
	if wsBlock != nil {
		s.pool.FreeBlock(*wsBlock)
	}
	if s.Opts.CollectTimeline {
		s.res.Timeline = append(s.res.Timeline, TimelinePoint{
			OpIndex: i, Name: op.Name + fmt.Sprintf("[split %d]", pn),
			Start: ready, End: s.tc, MemUsed: s.pool.InUse(), FragBytes: s.fragBytes(),
		})
	}
	return nil
}

// chargeCopy advances the compute stream by a device-to-device copy of
// the given size.
func (s *Simulator) chargeCopy(bytes int64) {
	t := float64(bytes) / s.Dev.MemBandwidth
	s.tc += t
	s.res.ComputeTime += t
}

// effectiveKindOf resolves GradOps to their forward kind.
func effectiveKindOf(op *graph.Op) graph.OpKind {
	if op.Kind == graph.GradOp && op.FwdOp != nil {
		return op.FwdOp.Kind
	}
	return op.Kind
}

// hasUseAfter reports whether t has any consumer scheduled after i.
func hasUseAfter(s *Simulator, t *graph.Tensor, i int) bool {
	for _, c := range t.Consumers {
		if s.Sched.Index[c] > i {
			return true
		}
	}
	return false
}
