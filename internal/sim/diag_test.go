package sim

import (
	"strings"
	"testing"

	"tsplit/internal/models"
)

func TestRecomputeStrategyNames(t *testing.T) {
	names := map[RecomputeStrategy]string{
		MemoryCentric: "memory-centric",
		SpeedCentric:  "speed-centric",
		LRURecompute:  "lru",
	}
	for s, want := range names {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestDiagnosticSurfaces(t *testing.T) {
	b := mkbed(t, "vgg16", models.Config{BatchSize: 16})
	s := New(b.g, b.sched, b.lv, b.baseline(t, "base"), b.dev, Options{})
	if got := s.PoolLayout(4); got != "" {
		t.Fatalf("layout before any run should be empty, got %q", got)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.PoolLayout(4); got == "" {
		t.Fatal("empty pool layout after a run")
	}
	res := s.DeviceResidents(0)
	if len(res) == 0 {
		t.Fatal("no device residents after a run (parameters stay resident)")
	}
	for _, line := range res {
		if !strings.Contains(line, "GiB") {
			t.Fatalf("resident line missing size: %q", line)
		}
	}
	if huge := s.DeviceResidents(1 << 60); len(huge) != 0 {
		t.Fatalf("impossible size filter matched: %v", huge)
	}
}
