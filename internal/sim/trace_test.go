package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"tsplit/internal/models"
)

// decodedTrace mirrors the wire format for test inspection.
type decodedTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		ID   string         `json:"id"`
		BP   string         `json:"bp"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func decodeTrace(t *testing.T, timeline []TimelinePoint) (decodedTrace, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, timeline); err != nil {
		t.Fatal(err)
	}
	var tr decodedTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	return tr, buf.Bytes()
}

// TestChromeTraceExport validates the enriched trace end to end:
// slices for every timeline point, non-negative durations, one
// consistent TID per stream, the M-event legend, counter tracks, and
// swap flow arrows that pair up.
func TestChromeTraceExport(t *testing.T) {
	b := mkbed(t, "vgg16", models.Config{BatchSize: 64})
	plan := b.baseline(t, "vdnn-all")
	r := b.run(t, plan, Options{CollectTimeline: true})
	streams := map[string]bool{}
	for _, p := range r.Timeline {
		streams[p.Stream] = true
	}
	if !streams["d2h"] || !streams["h2d"] {
		t.Fatalf("missing copy-stream events: %v", streams)
	}

	tr, raw := decodeTrace(t, r.Timeline)

	// Every timeline point appears as exactly one X slice.
	var slices int
	streamTID := map[string]int{}
	threadNames := map[int]string{}
	var sEvents, fEvents []string
	counters := map[string]bool{}
	var processNamed bool
	for _, e := range tr.TraceEvents {
		switch e.Ph {
		case "X":
			slices++
			if e.Dur < 0 {
				t.Fatalf("negative duration on %q", e.Name)
			}
			if prev, ok := streamTID[e.Cat]; ok && prev != e.TID {
				t.Fatalf("stream %q on two TIDs: %d and %d", e.Cat, prev, e.TID)
			}
			streamTID[e.Cat] = e.TID
			if e.Args == nil {
				t.Fatalf("slice %q has no args", e.Name)
			}
			if _, ok := e.Args["mem_used_bytes"]; !ok {
				t.Fatalf("slice %q missing mem_used_bytes arg", e.Name)
			}
			if e.Cat == "d2h" || e.Cat == "h2d" {
				if _, ok := e.Args["bytes"]; !ok {
					t.Fatalf("copy slice %q missing bytes arg", e.Name)
				}
				if _, ok := e.Args["tensor"]; !ok {
					t.Fatalf("copy slice %q missing tensor arg", e.Name)
				}
			}
		case "M":
			switch e.Name {
			case "process_name":
				processNamed = true
			case "thread_name":
				threadNames[e.TID] = e.Args["name"].(string)
			}
		case "C":
			counters[e.Name] = true
		case "s":
			sEvents = append(sEvents, e.ID)
		case "f":
			if e.BP != "e" {
				t.Fatalf("flow finish without bp=e: %+v", e)
			}
			fEvents = append(fEvents, e.ID)
		}
	}
	if slices != len(r.Timeline) {
		t.Fatalf("%d slices for %d points", slices, len(r.Timeline))
	}
	if len(streamTID) != 3 {
		t.Fatalf("expected 3 stream lanes, got %v", streamTID)
	}
	if !processNamed {
		t.Fatal("missing process_name metadata")
	}
	for cat, tid := range streamTID {
		if threadNames[tid] != cat {
			t.Fatalf("lane %d (stream %q) named %q", tid, cat, threadNames[tid])
		}
	}
	for _, want := range []string{"device memory", "fragmentation", "pcie d2h B/s", "pcie h2d B/s"} {
		if !counters[want] {
			t.Fatalf("missing counter track %q (have %v)", want, counters)
		}
	}
	// Flow arrows: at least one swap pair, and ids match 1:1.
	if len(sEvents) == 0 {
		t.Fatal("no swap flow events in a swapping plan")
	}
	if len(sEvents) != len(fEvents) {
		t.Fatalf("%d flow starts vs %d finishes", len(sEvents), len(fEvents))
	}
	starts := map[string]int{}
	for _, id := range sEvents {
		starts[id]++
	}
	for _, id := range fEvents {
		starts[id]--
	}
	for id, n := range starts {
		if n != 0 {
			t.Fatalf("unpaired flow id %q", id)
		}
	}

	// Determinism: serializing the same timeline twice is byte-identical.
	var buf2 bytes.Buffer
	if err := WriteChromeTrace(&buf2, r.Timeline); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, buf2.Bytes()) {
		t.Fatal("trace serialization is not deterministic")
	}
}

// TestChromeTraceUnknownStreams pins the dynamic lane allocation:
// stream names outside compute/d2h/h2d get stable TIDs of their own
// instead of colliding on a zero TID.
func TestChromeTraceUnknownStreams(t *testing.T) {
	timeline := []TimelinePoint{
		{Name: "a", Start: 0, End: 1, Stream: ""},
		{Name: "b", Start: 0.5, End: 1.5, Stream: "nccl"},
		{Name: "c", Start: 1, End: 2, Stream: "d2h"},
		{Name: "d", Start: 2, End: 3, Stream: "nccl"},
		{Name: "e", Start: 2, End: 3, Stream: "host"},
	}
	tr, _ := decodeTrace(t, timeline)
	tidOf := map[string]int{}
	for _, e := range tr.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		if prev, ok := tidOf[e.Cat]; ok && prev != e.TID {
			t.Fatalf("stream %q on two TIDs", e.Cat)
		}
		tidOf[e.Cat] = e.TID
	}
	if tidOf["nccl"] == 0 || tidOf["host"] == 0 {
		t.Fatalf("unknown streams not assigned TIDs: %v", tidOf)
	}
	if tidOf["nccl"] == tidOf["host"] || tidOf["nccl"] == tidOf["d2h"] {
		t.Fatalf("lane collision: %v", tidOf)
	}
	// First-appearance order fixes the allocation.
	if tidOf["nccl"] != firstDynamicTID || tidOf["host"] != firstDynamicTID+1 {
		t.Fatalf("dynamic TIDs not stable: %v", tidOf)
	}
	// The legend names the dynamic lanes too.
	named := map[int]string{}
	for _, e := range tr.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			named[e.TID] = e.Args["name"].(string)
		}
	}
	if named[tidOf["nccl"]] != "nccl" || named[tidOf["host"]] != "host" {
		t.Fatalf("dynamic lanes unnamed: %v", named)
	}
}
