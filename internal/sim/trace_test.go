package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"tsplit/internal/models"
)

func TestChromeTraceExport(t *testing.T) {
	b := mkbed(t, "vgg16", models.Config{BatchSize: 64})
	plan := b.baseline(t, "vdnn-all")
	r := b.run(t, plan, Options{CollectTimeline: true})
	// Copy streams must contribute events.
	streams := map[string]bool{}
	for _, p := range r.Timeline {
		streams[p.Stream] = true
	}
	if !streams["d2h"] || !streams["h2d"] {
		t.Fatalf("missing copy-stream events: %v", streams)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r.Timeline); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			TID  int     `json:"tid"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(tr.TraceEvents) != len(r.Timeline) {
		t.Fatalf("%d events for %d points", len(tr.TraceEvents), len(r.Timeline))
	}
	tids := map[int]bool{}
	for _, e := range tr.TraceEvents {
		if e.Dur < 0 {
			t.Fatal("negative duration")
		}
		tids[e.TID] = true
	}
	if len(tids) != 3 {
		t.Fatalf("expected 3 stream lanes, got %v", tids)
	}
}
