package sim

import (
	"errors"

	"tsplit/internal/obs"
)

// fragBytes samples external fragmentation: free memory that is not
// part of the largest free extent, i.e. space a single allocation of
// that size could not use without compaction.
func (s *Simulator) fragBytes() int64 {
	st := s.pool.Stats()
	f := st.Capacity - st.InUse - st.LargestFree
	if f < 0 {
		f = 0
	}
	return f
}

// usec converts stream seconds to an integer microsecond counter
// increment (counters are exact int64; durations are recorded as
// microseconds to keep that exactness).
func usec(seconds float64) int64 { return int64(seconds * 1e6) }

// observe emits the run's metrics to the configured Recorder and the
// failure, if any, to the flight ring. It runs once per Run(), after
// the simulation completes; the simulation loop itself never touches
// the Recorder, so a nil Obs costs nothing.
func (s *Simulator) observe(err error) {
	if err != nil {
		kind := "sim.failure"
		if errors.Is(err, ErrOOM) {
			kind = "sim.oom"
		}
		s.Opts.Flight.Record(kind, err.Error())
	}
	rec := s.Opts.Obs
	if rec == nil {
		return
	}
	if err != nil {
		rec.Add("tsplit_sim_failures_total", 1)
		return
	}
	r := s.res
	rec.Add("tsplit_sim_runs_total", 1)
	rec.Observe("tsplit_sim_iteration_seconds", r.Time)
	rec.Add("tsplit_sim_stream_busy_microseconds_total", usec(r.ComputeTime), obs.L("stream", "compute"))
	rec.Add("tsplit_sim_stream_busy_microseconds_total", usec(r.D2HBusy), obs.L("stream", "d2h"))
	rec.Add("tsplit_sim_stream_busy_microseconds_total", usec(r.H2DBusy), obs.L("stream", "h2d"))
	rec.Add("tsplit_sim_stall_microseconds_total", usec(r.InputStallTime), obs.L("cause", "input"))
	rec.Add("tsplit_sim_stall_microseconds_total", usec(r.AllocStallTime), obs.L("cause", "alloc"))
	rec.Add("tsplit_sim_stall_microseconds_total", usec(r.CompactTime), obs.L("cause", "compact"))
	rec.Add("tsplit_sim_stall_microseconds_total", usec(r.RecomputeTime), obs.L("cause", "recompute"))
	rec.Add("tsplit_sim_swap_bytes_total", r.SwapOutBytes, obs.L("dir", "out"))
	rec.Add("tsplit_sim_swap_bytes_total", r.SwapInBytes, obs.L("dir", "in"))
	rec.Add("tsplit_sim_recomputed_ops_total", int64(r.RecomputedOps))
	rec.Add("tsplit_sim_compactions_total", int64(r.Compactions))
	rec.Add("tsplit_sim_moved_bytes_total", r.MovedBytes)
	rec.Set("tsplit_sim_peak_bytes", float64(r.PeakBytes))
	rec.Set("tsplit_sim_pcie_utilization", r.PCIeUtilization)
	rec.Set("tsplit_sim_pool_fragmentation_bytes", float64(s.fragBytes()))
	if s.inj != nil {
		f := r.Faults
		rec.Add("tsplit_sim_faults_injected_total", int64(f.BandwidthEvents), obs.L("kind", "bandwidth"))
		rec.Add("tsplit_sim_faults_injected_total", int64(f.SwapRetries), obs.L("kind", "swap-retry"))
		rec.Add("tsplit_sim_faults_injected_total", int64(f.SwapExhausted), obs.L("kind", "swap-exhausted"))
		rec.Add("tsplit_sim_faults_injected_total", int64(f.CapacityEvents), obs.L("kind", "capacity-shrink"))
		rec.Add("tsplit_sim_stall_microseconds_total", usec(f.SwapRetrySeconds), obs.L("cause", "fault-retry"))
		rec.Add("tsplit_sim_stall_microseconds_total", usec(f.BandwidthExtraSeconds), obs.L("cause", "fault-bandwidth"))
		// Noise can run either direction; a gauge, not a counter.
		rec.Set("tsplit_sim_fault_noise_seconds", f.OpNoiseSeconds)
	}
}
