package sim

import (
	"fmt"
	"strconv"

	"tsplit/internal/faults"
	"tsplit/internal/graph"
	"tsplit/internal/obs"
)

// This file holds the runtime's fault-injection hooks. Every hook is
// a cheap no-op when Options.Faults is nil, and every perturbation is
// a pure function of (fault seed, severity, event identity), so a run
// with the same injector replays byte for byte.

// xfer returns the PCIe seconds for a byte count at the current
// schedule position, applying the injected bandwidth-degradation
// window in effect (if any) and accounting the added latency.
func (s *Simulator) xfer(b int64) float64 {
	d := float64(b) / s.Dev.PCIeBandwidth
	if s.bwMul == nil {
		return d
	}
	if m := s.bwMul[s.curOp]; m > 1 {
		s.res.Faults.BandwidthEvents++
		s.res.Faults.BandwidthExtraSeconds += d * (m - 1)
		d *= m
		if fl := s.Opts.Flight; fl != nil {
			fl.Record("fault.bandwidth", "degraded PCIe transfer",
				obs.L("op", strconv.Itoa(s.curOp)))
		}
	}
	return d
}

// noisy applies the injected compute-time misprediction factor of
// schedule index idx to a duration and accounts the delta.
func (s *Simulator) noisy(idx int, dur float64) float64 {
	if s.noise == nil {
		return dur
	}
	nd := dur * s.noise[idx]
	s.res.Faults.OpNoiseSeconds += nd - dur
	return nd
}

// retryPenalty models transient failures of the transfer of t at the
// current schedule position: each failed attempt occupies the link
// for the transfer duration and then backs off exponentially
// (BackoffBase, doubling). After MaxSwapRetries failures the link is
// reset and the final attempt succeeds — transients degrade, they
// never abort. Returns the total latency to add before the
// successful transfer starts.
func (s *Simulator) retryPenalty(t *graph.Tensor, dir int, dur float64) float64 {
	if s.inj == nil {
		return 0
	}
	fails := s.inj.SwapFailures(t.ID, s.curOp, dir)
	if fails == 0 {
		return 0
	}
	var pen float64
	backoff := faults.BackoffBase
	for a := 0; a < fails; a++ {
		pen += dur + backoff
		backoff *= 2
	}
	s.res.Faults.SwapRetries += fails
	s.res.Faults.SwapRetrySeconds += pen
	if fails >= faults.MaxSwapRetries {
		s.res.Faults.SwapExhausted++
	}
	if fl := s.Opts.Flight; fl != nil {
		fl.Record("fault.swap-retry", t.Name,
			obs.L("retries", strconv.Itoa(fails)),
			obs.L("op", strconv.Itoa(s.curOp)))
	}
	return pen
}

// applyFaultWindows opens and closes injected capacity-shrink windows
// at schedule index i: expired windows release their phantom block,
// opening windows allocate one through the normal allocWait path (so
// the steal exerts real pressure — evictions, compaction, and, when
// nothing can give, an injected OOM that trips the degradation
// ladder upstream).
func (s *Simulator) applyFaultWindows(i int) error {
	for k := range s.hogs {
		h := &s.hogs[k]
		if h.held && h.ev.End <= i {
			s.pool.FreeBlock(h.blk)
			h.held = false
		}
	}
	for k := range s.hogs {
		h := &s.hogs[k]
		if h.held || i < h.ev.Start || i >= h.ev.End {
			continue
		}
		blk, _, err := s.allocWait(h.ev.Bytes, s.tc)
		if err != nil {
			return fmt.Errorf("injected capacity shrink of %d bytes at op %d: %w", h.ev.Bytes, i, err)
		}
		h.blk, h.held = blk, true
		s.res.Faults.CapacityEvents++
		if fl := s.Opts.Flight; fl != nil {
			fl.Record("fault.capacity-shrink", "co-tenant window opened",
				obs.L("op", strconv.Itoa(i)),
				obs.L("bytes", strconv.FormatInt(h.ev.Bytes, 10)))
		}
	}
	return nil
}
