package sim

import (
	"bytes"
	"sync"
	"testing"

	"tsplit/internal/core"
	"tsplit/internal/faults"
	"tsplit/internal/models"
	"tsplit/internal/obs"
)

// faultBed builds a vgg16 testbed with a tsplit plan tight enough to
// swap — so every fault class has transfers and pressure to bite on.
func faultBed(t *testing.T) (*bed, *core.Plan) {
	t.Helper()
	b := mkbed(t, "vgg16", models.Config{BatchSize: 64})
	cap := b.lv.Peak * 70 / 100
	plan, err := core.NewPlanner(b.g, b.sched, b.lv, b.prof, b.dev,
		core.Options{Capacity: cap, FragmentationReserve: -1}).Plan()
	if err != nil {
		t.Fatalf("planning: %v", err)
	}
	return b, plan
}

// faultRun runs the bed's plan under an injector with timeline and
// metrics enabled, returning the serialized trace and metrics JSON.
func faultRun(t *testing.T, b *bed, plan *core.Plan, cfg faults.Config) (Result, []byte, []byte) {
	t.Helper()
	reg := obs.NewRegistry()
	res, err := New(b.g, b.sched, b.lv, plan, b.dev, Options{
		Capacity:        b.lv.Peak * 70 / 100,
		Recompute:       LRURecompute,
		CollectTimeline: true,
		Obs:             reg,
		Faults:          faults.New(cfg),
	}).Run()
	if err != nil {
		t.Fatalf("faulted run: %v", err)
	}
	var trace, metrics bytes.Buffer
	if err := WriteChromeTrace(&trace, res.Timeline); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSON(&metrics); err != nil {
		t.Fatal(err)
	}
	return res, trace.Bytes(), metrics.Bytes()
}

// TestFaultDeterminismGolden is the byte-determinism gate: two runs
// with the same seed and severity must produce byte-identical traces
// and metrics JSON.
func TestFaultDeterminismGolden(t *testing.T) {
	b, plan := faultBed(t)
	cfg := faults.Config{Seed: 123, Severity: faults.DefaultSeverity}
	r1, trace1, met1 := faultRun(t, b, plan, cfg)
	r2, trace2, met2 := faultRun(t, b, plan, cfg)
	if !bytes.Equal(trace1, trace2) {
		t.Fatal("same seed+severity produced different traces")
	}
	if !bytes.Equal(met1, met2) {
		t.Fatal("same seed+severity produced different metrics JSON")
	}
	if r1.Time != r2.Time || r1.PeakBytes != r2.PeakBytes || r1.Faults != r2.Faults {
		t.Fatal("same seed+severity produced different measurements")
	}
	// A different seed must actually change something.
	r3, _, _ := faultRun(t, b, plan, faults.Config{Seed: 124, Severity: faults.DefaultSeverity})
	if r1.Time == r3.Time && r1.Faults == r3.Faults {
		t.Fatal("different seeds produced identical runs; injector looks inert")
	}
}

// TestFaultKindsIsolated exercises each fault class alone and checks
// its designated counters (and only plausible side effects) move.
func TestFaultKindsIsolated(t *testing.T) {
	b, plan := faultBed(t)
	clean, err := New(b.g, b.sched, b.lv, plan, b.dev, Options{
		Capacity: b.lv.Peak * 70 / 100, Recompute: LRURecompute,
	}).Run()
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}

	t.Run("op-noise", func(t *testing.T) {
		res, _, _ := faultRun(t, b, plan, faults.Config{Seed: 9, Severity: 0.8, Kinds: []faults.Kind{faults.OpNoise}})
		if res.Faults.OpNoiseSeconds == 0 {
			t.Fatal("no noise accounted")
		}
		if res.Faults.SwapRetries != 0 || res.Faults.CapacityEvents != 0 || res.Faults.BandwidthEvents != 0 {
			t.Fatalf("other fault classes leaked: %+v", res.Faults)
		}
		if res.SwapOutBytes != clean.SwapOutBytes || res.SwapInBytes != clean.SwapInBytes {
			t.Fatal("op noise must not change swap volumes")
		}
	})
	t.Run("bandwidth", func(t *testing.T) {
		res, _, _ := faultRun(t, b, plan, faults.Config{Seed: 9, Severity: 0.8, Kinds: []faults.Kind{faults.Bandwidth}})
		if res.Faults.BandwidthEvents == 0 || res.Faults.BandwidthExtraSeconds <= 0 {
			t.Fatalf("no degraded transfers: %+v", res.Faults)
		}
		if res.Time <= clean.Time {
			t.Fatal("degraded PCIe should cost time")
		}
	})
	t.Run("swap-fail", func(t *testing.T) {
		res, _, _ := faultRun(t, b, plan, faults.Config{Seed: 9, Severity: 0.5, Kinds: []faults.Kind{faults.SwapFail}})
		if res.Faults.SwapRetries == 0 || res.Faults.SwapRetrySeconds <= 0 {
			t.Fatalf("no retries: %+v", res.Faults)
		}
		if res.Faults.SwapExhausted != 0 && res.Faults.SwapRetries < faults.MaxSwapRetries {
			t.Fatalf("inconsistent retry accounting: %+v", res.Faults)
		}
	})
	t.Run("swap-fail-exhaustion", func(t *testing.T) {
		// Severity 1: every attempt fails, every transfer exhausts the
		// retry budget, the link resets, and the run still completes.
		res, _, _ := faultRun(t, b, plan, faults.Config{Seed: 9, Severity: 1, Kinds: []faults.Kind{faults.SwapFail}})
		if res.Faults.SwapExhausted == 0 {
			t.Fatal("severity 1 should exhaust retry budgets")
		}
		if res.Faults.SwapRetries != res.Faults.SwapExhausted*faults.MaxSwapRetries {
			t.Fatalf("every transfer should fail exactly MaxSwapRetries times: %+v", res.Faults)
		}
	})
	t.Run("capacity-shrink", func(t *testing.T) {
		res, _, _ := faultRun(t, b, plan, faults.Config{Seed: 9, Severity: 0.2, Kinds: []faults.Kind{faults.CapacityShrink}})
		if res.Faults.CapacityEvents == 0 {
			t.Fatal("no capacity events opened")
		}
		if res.PeakBytes < clean.PeakBytes {
			t.Fatal("phantom co-located blocks should raise observed pool pressure")
		}
	})
}

// TestFaultStallMetricsEmitted checks the obs wiring: fault counters
// land under their kind labels and retry stalls are attributed.
func TestFaultStallMetricsEmitted(t *testing.T) {
	b, plan := faultBed(t)
	reg := obs.NewRegistry()
	_, err := New(b.g, b.sched, b.lv, plan, b.dev, Options{
		Capacity:  b.lv.Peak * 70 / 100,
		Recompute: LRURecompute,
		Obs:       reg,
		Faults:    faults.New(faults.Config{Seed: 4, Severity: 1, Kinds: []faults.Kind{faults.SwapFail}}),
	}).Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var retries, stall int64
	for _, m := range reg.Snapshot() {
		switch {
		case m.Name == "tsplit_sim_faults_injected_total" && hasLabel(m.Labels, "kind", "swap-retry"):
			retries = m.Int
		case m.Name == "tsplit_sim_stall_microseconds_total" && hasLabel(m.Labels, "cause", "fault-retry"):
			stall = m.Int
		}
	}
	if retries == 0 {
		t.Fatal("tsplit_sim_faults_injected_total{kind=swap-retry} not emitted")
	}
	if stall <= 0 {
		t.Fatal("tsplit_sim_stall_microseconds_total{cause=fault-retry} not emitted")
	}
}

func hasLabel(ls []obs.Label, k, v string) bool {
	for _, l := range ls {
		if l.Key == k && l.Value == v {
			return true
		}
	}
	return false
}

// TestConcurrentFaultedRunsRace runs many faulted simulations sharing
// one Registry and one Injector concurrently: the race detector (make
// race) must stay quiet and every run must agree byte-for-byte.
func TestConcurrentFaultedRunsRace(t *testing.T) {
	b, plan := faultBed(t)
	reg := obs.NewRegistry()
	inj := faults.New(faults.Config{Seed: 77, Severity: faults.DefaultSeverity})
	const workers = 8
	results := make([]Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w], errs[w] = New(b.g, b.sched, b.lv, plan, b.dev, Options{
				Capacity:  b.lv.Peak * 70 / 100,
				Recompute: LRURecompute,
				Obs:       reg,
				Faults:    inj,
			}).Run()
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if results[w].Time != results[0].Time || results[w].Faults != results[0].Faults {
			t.Fatalf("worker %d diverged from worker 0", w)
		}
	}
}
