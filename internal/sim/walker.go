package sim

import "tsplit/internal/graph"

// chainWalker is the simulator's allocation-free mirror of
// core.RecomputeChain: an iterative post-order DFS over producers with
// an epoch-stamped seen array instead of a fresh visited map per call.
// It reproduces core's traversal (and therefore its chain order)
// exactly; when the walk fails, regenerate re-runs core.RecomputeChain
// on the cold path to obtain the identical error message.
type chainWalker struct {
	seen  []int32
	epoch int32
}

// chainFrame is one explicit DFS stack frame: the op being expanded
// and the next input index to examine.
type chainFrame struct {
	op  *graph.Op
	idx int
}

// walkChain computes the recompute chain for t into a recycled buffer.
// ok=false mirrors any core.RecomputeChain error (missing producer or
// chain longer than the op count). The returned slice must go back via
// putChain. Buffers come from free-lists, not fixed fields, because
// regeneration re-enters: executing a chain can drop tensors (LRU
// pressure valve) whose next use walks a nested chain.
func (s *Simulator) walkChain(t *graph.Tensor) ([]*graph.Op, bool) {
	w := &s.walker
	nOps := len(s.G.Ops)
	if len(w.seen) < nOps {
		w.seen = make([]int32, nOps)
		w.epoch = 0
	}
	w.epoch++
	epoch := w.epoch
	maxLen := nOps
	count := 0
	chain := s.takeChain()
	stack := s.takeFrames()
	ok := true

	p := t.Producer
	if p == nil {
		ok = false
	} else {
		w.seen[p.ID] = epoch
		count++
		if count > maxLen {
			ok = false
		} else {
			stack = append(stack, chainFrame{op: p})
		}
	}
	for ok && len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.idx < len(f.op.Inputs) {
			in := f.op.Inputs[f.idx]
			f.idx++
			if s.chainAvail(in) {
				continue
			}
			q := in.Producer
			if q == nil {
				ok = false
				break
			}
			if w.seen[q.ID] == epoch {
				continue
			}
			w.seen[q.ID] = epoch
			count++
			if count > maxLen {
				ok = false
				break
			}
			stack = append(stack, chainFrame{op: q}) //lint:allow scratchreuse stack is free-list recycled; putFrames stores it length-reset
			continue
		}
		chain = append(chain, f.op) //lint:allow scratchreuse chain is free-list recycled; putChain stores it length-reset
		stack = stack[:len(stack)-1]
	}
	s.putFrames(stack)
	return chain, ok
}

func (s *Simulator) takeChain() []*graph.Op {
	if n := len(s.chainFree); n > 0 {
		c := s.chainFree[n-1]
		s.chainFree[n-1] = nil
		s.chainFree = s.chainFree[:n-1]
		return c
	}
	return nil
}

func (s *Simulator) putChain(c []*graph.Op) {
	if cap(c) == 0 {
		return
	}
	clear(c)
	s.chainFree = append(s.chainFree, c[:0])
}

func (s *Simulator) takeFrames() []chainFrame {
	if n := len(s.frameFree); n > 0 {
		f := s.frameFree[n-1]
		s.frameFree[n-1] = nil
		s.frameFree = s.frameFree[:n-1]
		return f
	}
	return nil
}

func (s *Simulator) putFrames(f []chainFrame) {
	if cap(f) == 0 {
		return
	}
	clear(f)
	s.frameFree = append(s.frameFree, f[:0])
}

func (s *Simulator) takeFresh() []*graph.Tensor {
	if n := len(s.freshFree); n > 0 {
		f := s.freshFree[n-1]
		s.freshFree[n-1] = nil
		s.freshFree = s.freshFree[:n-1]
		return f
	}
	return nil
}

func (s *Simulator) putFresh(f []*graph.Tensor) {
	if cap(f) == 0 {
		return
	}
	clear(f)
	s.freshFree = append(s.freshFree, f[:0])
}
