package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"tsplit/internal/obs"
)

// chromeEvent is one event of the Chrome/Perfetto trace format
// (catapult trace_event): "X" complete slices, "M" metadata, "C"
// counter samples, and "s"/"f" flow arrows.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   string         `json:"id,omitempty"` // flow-event binding
	BP   string         `json:"bp,omitempty"` // flow binding point
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object trace container.
type chromeTrace struct {
	TraceEvents []chromeEvent     `json:"traceEvents"`
	Metadata    map[string]string `json:"metadata,omitempty"`
}

// Reserved thread ids for the three simulator streams; further lanes
// (unknown stream names) are allocated from firstDynamicTID upward in
// order of first appearance, so the mapping is stable for a given
// timeline.
const (
	tidCompute      = 1
	tidD2H          = 2
	tidH2D          = 3
	firstDynamicTID = 4
	tracePID        = 1
)

// counter-track thread ids (Perfetto renders counters per track name,
// the tid only groups them under the process).
const tidCounters = 100

// tidSpans is the lane carrying obs.Tracer spans (planner phases,
// per-op sim spans) when the caller merges them into the trace.
const tidSpans = 200

// streamTIDs returns the lane mapping for a timeline: the three known
// streams on their reserved rows, any other stream name on a freshly
// allocated row.
func streamTIDs(timeline []TimelinePoint) map[string]int {
	tids := map[string]int{"": tidCompute, "compute": tidCompute, "d2h": tidD2H, "h2d": tidH2D}
	next := firstDynamicTID
	for _, p := range timeline {
		if _, ok := tids[p.Stream]; !ok {
			tids[p.Stream] = next
			next++
		}
	}
	return tids
}

// WriteChromeTrace exports a timeline (Options.CollectTimeline) in
// Chrome tracing format: open in chrome://tracing or https://ui.perfetto.dev
// to see the compute stream overlapping the two copy streams — the
// execution picture behind the paper's PCIe-utilization claims.
//
// Beyond the "X" slices the trace carries:
//   - "M" metadata naming the process and every stream lane;
//   - "C" counter tracks for device memory in use, external
//     fragmentation, and per-direction PCIe bandwidth;
//   - "s"/"f" flow arrows linking each tensor's swap-out to the
//     swap-in that returns it;
//   - args (bytes, tensor, memory) on every slice.
//
// Event order is fully deterministic: events are sorted by
// (timestamp, thread, name) with a stable sort, so identical timelines
// serialize identically.
func WriteChromeTrace(w io.Writer, timeline []TimelinePoint) error {
	return WriteChromeTraceSpans(w, timeline, nil)
}

// WriteChromeTraceSpans is WriteChromeTrace with an extra "spans"
// lane: the flattened obs.Tracer span forest (planner phases, per-op
// execution, ladder rungs) rendered as "X" slices on their own
// thread row. Span timestamps are tracer-relative microseconds —
// a separate timebase from the simulated-seconds timeline, kept on a
// separate lane for exactly that reason. Open (never-ended) spans
// render with zero duration and an open:true arg. Determinism
// matches WriteChromeTrace: spans join the same stable
// (timestamp, thread, name) sort, and span args marshal in sorted
// key order.
func WriteChromeTraceSpans(w io.Writer, timeline []TimelinePoint, spans []*obs.SpanNode) error {
	tids := streamTIDs(timeline)
	tr := chromeTrace{Metadata: map[string]string{"tool": "tsplit sim"}}

	// Legend: process and per-lane thread names.
	tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: tracePID,
		Args: map[string]any{"name": "tsplit sim"},
	})
	// Several names can share a TID; pick the winner for each lane in
	// sorted-name order so the legend is identical run to run, then
	// order lanes by TID (ties already broken by the name dedupe).
	names := make([]string, 0, len(tids))
	for name := range tids {
		if name != "" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	laneNames := make([]string, 0, len(names))
	seenTID := map[int]bool{}
	for _, name := range names {
		if seenTID[tids[name]] {
			continue
		}
		seenTID[tids[name]] = true
		laneNames = append(laneNames, name)
	}
	sort.SliceStable(laneNames, func(i, j int) bool { return tids[laneNames[i]] < tids[laneNames[j]] })
	for _, name := range laneNames {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: tracePID, TID: tids[name],
			Args: map[string]any{"name": name},
		})
	}
	if len(spans) > 0 {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: tracePID, TID: tidSpans,
			Args: map[string]any{"name": "spans"},
		})
		var emit func(n *obs.SpanNode)
		emit = func(n *obs.SpanNode) {
			args := make(map[string]any, len(n.Attrs)+1)
			for _, a := range n.Attrs {
				args[a.Key] = a.Value
			}
			dur := n.DurMicros
			if dur < 0 {
				dur = 0
				args["open"] = true
			}
			if len(args) == 0 {
				args = nil
			}
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: n.Name, Cat: "span", Ph: "X",
				TS: float64(n.StartMicros), Dur: float64(dur),
				PID: tracePID, TID: tidSpans, Args: args,
			})
			for _, c := range n.Children {
				emit(c)
			}
		}
		for _, n := range spans {
			emit(n)
		}
	}

	counter := func(ts float64, name string, args map[string]any) chromeEvent {
		return chromeEvent{Name: name, Cat: "memory", Ph: "C", TS: ts, PID: tracePID, TID: tidCounters, Args: args}
	}

	// Flow pairing: each swap-in binds to the latest preceding swap-out
	// of the same tensor; only complete pairs emit arrows, so every "s"
	// has a matching "f".
	type outRef struct {
		start, end float64
	}
	lastOut := map[string]outRef{}
	flowID := 0

	for _, p := range timeline {
		cat := p.Stream
		if cat == "" {
			cat = "compute"
		}
		args := map[string]any{"mem_used_bytes": p.MemUsed, "frag_bytes": p.FragBytes}
		if p.Bytes > 0 {
			args["bytes"] = p.Bytes
		}
		if p.Tensor != "" {
			args["tensor"] = p.Tensor
		}
		ts, dur := p.Start*1e6, (p.End-p.Start)*1e6
		tid := tids[p.Stream]
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: p.Name, Cat: cat, Ph: "X",
			TS: ts, Dur: dur, PID: tracePID, TID: tid, Args: args,
		})

		// Counter samples at the slice start.
		tr.TraceEvents = append(tr.TraceEvents,
			counter(ts, "device memory", map[string]any{"bytes": p.MemUsed}),
			counter(ts, "fragmentation", map[string]any{"bytes": p.FragBytes}),
		)
		if p.Bytes > 0 && p.End > p.Start && (p.Stream == "d2h" || p.Stream == "h2d") {
			bw := float64(p.Bytes) / (p.End - p.Start)
			name := "pcie " + p.Stream + " B/s"
			tr.TraceEvents = append(tr.TraceEvents,
				counter(ts, name, map[string]any{"value": bw}),
				counter(p.End*1e6, name, map[string]any{"value": 0.0}),
			)
		}

		// Flow bookkeeping.
		if p.Tensor != "" {
			switch p.Stream {
			case "d2h":
				lastOut[p.Tensor] = outRef{start: p.Start, end: p.End}
			case "h2d":
				if out, ok := lastOut[p.Tensor]; ok && out.end <= p.Start+1e-12 {
					id := fmt.Sprintf("swap-%d", flowID)
					flowID++
					// "s" binds inside the swap-out slice, "f" (bp:"e") to
					// the swap-in slice that encloses its timestamp.
					tr.TraceEvents = append(tr.TraceEvents,
						chromeEvent{Name: "swap", Cat: "swap", Ph: "s", ID: id,
							TS: out.start * 1e6, PID: tracePID, TID: tidD2H,
							Args: map[string]any{"tensor": p.Tensor}},
						chromeEvent{Name: "swap", Cat: "swap", Ph: "f", BP: "e", ID: id,
							TS: ts, PID: tracePID, TID: tids[p.Stream],
							Args: map[string]any{"tensor": p.Tensor}},
					)
					delete(lastOut, p.Tensor)
				}
			}
		}
	}

	sort.SliceStable(tr.TraceEvents, func(i, j int) bool {
		a, b := tr.TraceEvents[i], tr.TraceEvents[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.Name < b.Name
	})
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}
