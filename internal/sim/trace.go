package sim

import (
	"encoding/json"
	"io"
	"sort"
)

// chromeEvent is one complete event ("X" phase) of the Chrome/Perfetto
// trace format (catapult trace_event).
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

// chromeTrace is the JSON-object trace container.
type chromeTrace struct {
	TraceEvents []chromeEvent     `json:"traceEvents"`
	Metadata    map[string]string `json:"metadata,omitempty"`
}

// streamTID maps stream lanes to stable thread ids so the compute,
// D2H and H2D streams render as three rows.
var streamTID = map[string]int{"": 1, "compute": 1, "d2h": 2, "h2d": 3}

// WriteChromeTrace exports a timeline (Options.CollectTimeline) in
// Chrome tracing format: open in chrome://tracing or Perfetto to see
// the compute stream overlapping the two copy streams — the execution
// picture behind the paper's PCIe-utilization claims.
func WriteChromeTrace(w io.Writer, timeline []TimelinePoint) error {
	tr := chromeTrace{Metadata: map[string]string{"tool": "tsplit sim"}}
	for _, p := range timeline {
		cat := p.Stream
		if cat == "" {
			cat = "compute"
		}
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: p.Name, Cat: cat, Ph: "X",
			TS: p.Start * 1e6, Dur: (p.End - p.Start) * 1e6,
			PID: 1, TID: streamTID[p.Stream],
		})
	}
	sort.Slice(tr.TraceEvents, func(i, j int) bool { return tr.TraceEvents[i].TS < tr.TraceEvents[j].TS })
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}
