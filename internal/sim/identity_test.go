package sim

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"tsplit/internal/core"
	"tsplit/internal/faults"
	"tsplit/internal/models"
	"tsplit/internal/obs"
)

// This file is the pooled-arena regression gate: a Simulator recycled
// through a SimPool must reproduce a fresh New(...).Run() byte for
// byte — the Result struct, the serialized Chrome trace, and the
// Prometheus metrics text — including under fault injection. Any
// leaked state in Reset/Put shows up here as a diff.

// identityBed plans a memory-pressured tsplit workload, the
// configuration that exercises every simulator subsystem (swaps,
// recomputation, splits, compaction).
func identityBed(t *testing.T, model string, batch int) (*bed, *core.Plan, int64) {
	t.Helper()
	b := mkbed(t, model, models.Config{BatchSize: batch})
	cap := b.lv.Peak * 70 / 100
	plan, err := core.NewPlanner(b.g, b.sched, b.lv, b.prof, b.dev,
		core.Options{Capacity: cap, FragmentationReserve: -1}).Plan()
	if err != nil {
		t.Fatalf("planning: %v", err)
	}
	return b, plan, cap
}

// runArtifacts executes one configured simulator and serializes every
// externally visible artifact. An OOM is itself an artifact (some
// fault seeds push a pressured plan over capacity): its message and
// the metrics recorded up to it must replay identically too.
func runArtifacts(t *testing.T, s *Simulator, reg *obs.Registry) (Result, []byte, []byte, string) {
	t.Helper()
	res, err := s.Run()
	errStr := ""
	if err != nil {
		errStr = err.Error()
	}
	var trace, met bytes.Buffer
	if err := WriteChromeTrace(&trace, res.Timeline); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&met); err != nil {
		t.Fatal(err)
	}
	return res, trace.Bytes(), met.Bytes(), errStr
}

func identityOpts(cap int64, seed uint64) (Options, *obs.Registry) {
	reg := obs.NewRegistry()
	o := Options{
		Capacity:        cap,
		Recompute:       LRURecompute,
		CollectTimeline: true,
		Obs:             reg,
	}
	if seed != 0 {
		o.Faults = faults.New(faults.Config{Seed: seed, Severity: faults.DefaultSeverity})
	}
	return o, reg
}

func TestPooledRunByteIdentity(t *testing.T) {
	for _, tc := range []struct {
		model string
		batch int
	}{
		{"vgg16", 256},
		{"resnet50", 256},
	} {
		b, plan, cap := identityBed(t, tc.model, tc.batch)
		// Seed 0 is the fault-free path; the two non-zero seeds follow
		// different injected schedules (noise, bandwidth, capacity hogs).
		for _, seed := range []uint64{0, 123, 321} {
			t.Run(fmt.Sprintf("%s/seed%d", tc.model, seed), func(t *testing.T) {
				oF, regF := identityOpts(cap, seed)
				resF, traceF, metF, errF := runArtifacts(t, New(b.g, b.sched, b.lv, plan, b.dev, oF), regF)

				pool := NewSimPool()
				o1, reg1 := identityOpts(cap, seed)
				s1 := pool.Get(b.g, b.sched, b.lv, plan, b.dev, o1)
				res1, trace1, met1, err1 := runArtifacts(t, s1, reg1)
				pool.Put(s1)

				o2, reg2 := identityOpts(cap, seed)
				s2 := pool.Get(b.g, b.sched, b.lv, plan, b.dev, o2)
				if s2 != s1 {
					t.Fatal("pool did not recycle the arena")
				}
				res2, trace2, met2, err2 := runArtifacts(t, s2, reg2)
				pool.Put(s2)

				for i, got := range []string{err1, err2} {
					if errF != got {
						t.Errorf("pooled run %d error diverges:\nfresh:  %q\npooled: %q", i+1, errF, got)
					}
				}
				for i, got := range []Result{res1, res2} {
					if !reflect.DeepEqual(resF, got) {
						t.Errorf("pooled run %d Result diverges:\nfresh:  %+v\npooled: %+v", i+1, resF, got)
					}
				}
				for i, got := range [][]byte{trace1, trace2} {
					if !bytes.Equal(traceF, got) {
						t.Errorf("pooled run %d Chrome trace diverges from fresh", i+1)
					}
				}
				for i, got := range [][]byte{met1, met2} {
					if !bytes.Equal(metF, got) {
						t.Errorf("pooled run %d Prometheus text diverges from fresh", i+1)
					}
				}
			})
		}
	}
}

// TestPooledRetargetsAcrossWorkloads recycles one arena through
// different (graph, plan, capacity) targets and checks each run still
// matches a fresh simulator — the sweep-shard usage pattern.
func TestPooledRetargetsAcrossWorkloads(t *testing.T) {
	bV, planV, capV := identityBed(t, "vgg16", 256)
	bR, planR, capR := identityBed(t, "resnet50", 256)
	pool := NewSimPool()
	for i := 0; i < 2; i++ {
		for _, w := range []struct {
			b    *bed
			plan *core.Plan
			cap  int64
		}{{bV, planV, capV}, {bR, planR, capR}} {
			oF, regF := identityOpts(w.cap, 99)
			resF, traceF, metF, errF := runArtifacts(t, New(w.b.g, w.b.sched, w.b.lv, w.plan, w.b.dev, oF), regF)
			oP, regP := identityOpts(w.cap, 99)
			s := pool.Get(w.b.g, w.b.sched, w.b.lv, w.plan, w.b.dev, oP)
			resP, traceP, metP, errP := runArtifacts(t, s, regP)
			pool.Put(s)
			if errF != errP {
				t.Fatalf("retargeted pooled error diverges:\nfresh:  %q\npooled: %q", errF, errP)
			}
			if !reflect.DeepEqual(resF, resP) {
				t.Fatalf("retargeted pooled Result diverges:\nfresh:  %+v\npooled: %+v", resF, resP)
			}
			if !bytes.Equal(traceF, traceP) || !bytes.Equal(metF, metP) {
				t.Fatal("retargeted pooled artifacts diverge from fresh")
			}
		}
	}
}

// TestPooledSteadyStateAllocs pins the zero-alloc event loop: once the
// arena is warm, a full BERT-Large iteration must stay within the
// issue's 100 allocations/run budget (growth of recycled buffers
// amortizes to ~0; the budget absorbs rare map growth in the pool's
// cold structures).
func TestPooledSteadyStateAllocs(t *testing.T) {
	b := mkbed(t, "bert-large", models.Config{BatchSize: 64})
	plan, err := core.NewPlanner(b.g, b.sched, b.lv, b.prof, b.dev, core.Options{}).Plan()
	if err != nil {
		t.Fatalf("planning: %v", err)
	}
	pool := NewSimPool()
	opts := Options{Recompute: LRURecompute}
	iter := func() {
		s := pool.Get(b.g, b.sched, b.lv, plan, b.dev, opts)
		if _, err := s.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		pool.Put(s)
	}
	for i := 0; i < 3; i++ {
		iter() // warm the arena
	}
	if avg := testing.AllocsPerRun(10, iter); avg > 100 {
		t.Fatalf("pooled steady-state allocs/run = %.1f, budget 100", avg)
	}
}
