package sim

import (
	"testing"

	"tsplit/internal/core"
	"tsplit/internal/graph"
	"tsplit/internal/models"
)

// frontierPlan plans vgg16 near its feasibility frontier, where
// micro-granular restore and split staging are exercised.
func frontierPlan(t *testing.T, batch int) (*bed, *core.Plan) {
	t.Helper()
	b := mkbed(t, "vgg16", models.Config{BatchSize: batch})
	plan, err := core.NewPlanner(b.g, b.sched, b.lv, b.prof, b.dev, core.Options{}).Plan()
	if err != nil {
		t.Skipf("planner: %v", err)
	}
	return b, plan
}

func TestMicroRestorePlansExecute(t *testing.T) {
	b, plan := frontierPlan(t, 440)
	micro := 0
	for _, tp := range plan.Tensors {
		if tp.MicroRestore > 1 {
			micro++
		}
	}
	if micro == 0 {
		t.Skip("no micro-restore decisions at this scale")
	}
	r, err := New(b.g, b.sched, b.lv, plan, b.dev, Options{Recompute: LRURecompute}).Run()
	if err != nil {
		t.Fatalf("micro-restore plan does not execute: %v", err)
	}
	if r.PeakBytes > b.dev.MemBytes {
		t.Fatal("over capacity")
	}
	// Streamed restores must show up as H2D traffic.
	if r.SwapInBytes == 0 {
		t.Fatal("no swap-in traffic despite micro-restores")
	}
}

func TestEarlyOutMarksOutputsCopied(t *testing.T) {
	b, plan := frontierPlan(t, 440)
	early := false
	for _, sp := range plan.Splits {
		if sp.EarlyOut {
			early = true
		}
	}
	if !early {
		t.Skip("no early-out splits at this scale")
	}
	if _, err := New(b.g, b.sched, b.lv, plan, b.dev, Options{Recompute: LRURecompute}).Run(); err != nil {
		t.Fatalf("early-out plan does not execute: %v", err)
	}
}

func TestPlannerAblationKnobs(t *testing.T) {
	b := mkbed(t, "vgg16", models.Config{BatchSize: 128})
	cap := b.lv.Peak * 80 / 100
	// Swap-only plans must contain no recompute eviction decisions.
	plan, err := core.NewPlanner(b.g, b.sched, b.lv, b.prof, b.dev,
		core.Options{Capacity: cap, DisableRecompute: true, FragmentationReserve: -1}).Plan()
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range plan.Tensors {
		if tp.Opt == core.Recompute && tp.RestoreAt >= 0 && len(plan.Splits) == 0 {
			t.Fatalf("swap-only plan recomputes %s", tp.Tensor.Name)
		}
	}
	// Largest-first must also converge.
	if _, err := core.NewPlanner(b.g, b.sched, b.lv, b.prof, b.dev,
		core.Options{Capacity: cap, PreferLargest: true, FragmentationReserve: -1}).Plan(); err != nil {
		t.Fatal(err)
	}
	// Disabled tie-break must also converge.
	if _, err := core.NewPlanner(b.g, b.sched, b.lv, b.prof, b.dev,
		core.Options{Capacity: cap, DisableGenTieBreak: true, FragmentationReserve: -1}).Plan(); err != nil {
		t.Fatal(err)
	}
}

func TestOffloadComposedPlanner(t *testing.T) {
	b := mkbed(t, "vgg16", models.Config{BatchSize: 96, Optimizer: graph.Adam})
	plan, err := core.NewPlanner(b.g, b.sched, b.lv, b.prof, b.dev,
		core.Options{OffloadOptimizer: true, FragmentationReserve: -1}).Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !plan.OffloadOptimizer || plan.Name != "tsplit-offload" {
		t.Fatal("offload flag not set by planner")
	}
	r, err := New(b.g, b.sched, b.lv, plan, b.dev, Options{Recompute: LRURecompute}).Run()
	if err != nil {
		t.Fatal(err)
	}
	base, err := New(b.g, b.sched, b.lv, core.NewPlan("base", b.dev), b.dev, Options{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.PeakBytes >= base.PeakBytes {
		t.Fatal("offloading the optimizer must reduce the resident peak")
	}
}
