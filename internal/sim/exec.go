package sim

import (
	"fmt"

	"tsplit/internal/core"
	"tsplit/internal/device"
	"tsplit/internal/faults"
	"tsplit/internal/graph"
	"tsplit/internal/memorypool"
	"tsplit/internal/obs"
	"tsplit/internal/tensor"
)

// Run simulates one training iteration and returns the measurements.
// It returns an ErrOOM-wrapped error when the plan does not fit the
// device — the configuration "cannot train".
func (s *Simulator) Run() (Result, error) {
	res, err := s.run()
	s.observe(err)
	return res, err
}

// PredictPeak runs the plan's allocation/free/eviction event sequence
// with the stream clocks frozen and answers "does this plan fit, and
// at what peak" — the fleet packer's query. The event sequence the
// simulator executes is independent of simulated time (deferred frees
// drain in issue order either way), so the returned peak — and any
// OOM error — is bit-for-bit what a full Run() would report,
// including fault-injected capacity pressure, at a fraction of the
// cost: no cost-model evaluation, stream arithmetic, spans, timeline,
// or metrics. Nothing is emitted to Obs/Trace/Flight.
func (s *Simulator) PredictPeak() (int64, error) {
	s.peakOnly = true
	res, err := s.run()
	s.peakOnly = false
	if err != nil {
		return 0, err
	}
	return res.PeakBytes, nil
}

// PredictPeak is the one-shot form of (*Simulator).PredictPeak.
func PredictPeak(g *graph.Graph, sched *graph.Schedule, lv *graph.Liveness, plan *core.Plan, dev device.Device, opts Options) (int64, error) {
	return New(g, sched, lv, plan, dev, opts).PredictPeak()
}

// rootSpan opens the run's trace span; peak-only runs trace nothing.
func (s *Simulator) rootSpan() *obs.Span {
	if s.peakOnly {
		return nil
	}
	return s.Opts.Trace.StartSpan("sim.run")
}

func (s *Simulator) run() (Result, error) {
	s.reset()
	rootSpan := s.rootSpan()
	defer rootSpan.End()
	if err := s.stageResidents(); err != nil {
		return s.res, err
	}
	var pureCompute float64
	for i, op := range s.Sched.Ops {
		// An op span left open by an error return exports with a -1
		// duration — the doctor shows exactly which op the run died in.
		osp := rootSpan.StartSpan("sim.op")
		osp.SetAttr("op", op.Name)
		s.curOp = i
		if err := s.applyFaultWindows(i); err != nil {
			return s.res, err
		}
		for _, t := range s.prefTensors[s.prefStart[i]:s.prefStart[i+1]] {
			if err := s.startSwapIn(t, s.tc); err != nil {
				return s.res, err
			}
		}
		var err error
		if !s.peakOnly {
			pureCompute += s.opTime[i]
		}
		if si := s.splitIdx[op.ID]; si >= 0 {
			err = s.execSplit(i, op, s.splitList[si])
		} else {
			err = s.execWhole(i, op)
		}
		if err != nil {
			return s.res, fmt.Errorf("sim: op %d %s: %w", i, op, err)
		}
		s.postOp(i, op)
		s.clearLocals()
		osp.End()
	}
	s.res.Time = s.tc
	s.res.StallTime = s.tc - pureCompute
	if s.res.Time > 0 {
		s.res.PCIeUtilization = (s.res.D2HBusy + s.res.H2DBusy) / (2 * s.res.Time)
	}
	s.res.PeakBytes = s.pool.Stats().Peak
	return s.res, nil
}

// resident reports whether the tensor is pinned on device for the
// whole iteration under the plan (precomputed by reset).
func (s *Simulator) resident(t *graph.Tensor) bool { return s.residentB[t.ID] }

// planResident computes residency for a producer-less tensor from the
// plan; reset caches it into residentB.
func (s *Simulator) planResident(t *graph.Tensor) bool {
	switch t.Kind {
	case tensor.Parameter:
		return !s.Plan.ShardParams
	case tensor.OptState:
		return !s.Plan.OffloadOptimizer
	default:
		// Staged inputs are resident unless explicitly planned.
		return !s.planned[t.ID] || s.tplans[t.ID].Opt == core.Reside
	}
}

// stageResidents allocates parameters, optimizer state and inputs at
// time zero; sharded/offloaded tensors start on the host.
func (s *Simulator) stageResidents() error {
	for _, t := range s.G.Tensors {
		if t.Producer != nil {
			continue
		}
		if !s.resident(t) {
			s.state[t.ID] = onHost
			continue
		}
		blk, _, err := s.allocWait(t.Bytes(), 0)
		if err != nil {
			return fmt.Errorf("sim: staging %s: %w", t.Name, err)
		}
		s.state[t.ID] = onDevice
		s.block[t.ID] = blk
		s.readyAt[t.ID] = 0
	}
	return nil
}

// allocWait allocates from the pool, waiting on in-flight swap-out
// completions (and, under the LRU recompute strategy, evicting cached
// regenerations) when the pool is full. It returns the block and the
// time at which the memory is actually available.
func (s *Simulator) allocWait(bytes int64, at float64) (memorypool.Block, float64, error) {
	for {
		blk, err := s.pool.Alloc(bytes)
		if err == nil {
			return blk, at, nil
		}
		if len(s.pending) > 0 {
			ev := s.pending.pop()
			s.pool.FreeBlock(ev.block)
			if ev.at > at {
				at = ev.at
			}
			continue
		}
		if s.Opts.Recompute == LRURecompute && s.lruHead < len(s.lruCache) {
			victim := s.lruCache[s.lruHead]
			s.lruHead++
			if s.state[victim.ID] == onDevice && !s.pinned[victim.ID] {
				s.pool.FreeBlock(s.block[victim.ID])
				s.block[victim.ID] = memorypool.Block{}
				s.state[victim.ID] = dropped
			}
			continue
		}
		if s.Opts.Recompute == LRURecompute {
			// Pressure valve: regenerated tensors not touched by the
			// current operator can always be dropped and re-produced.
			// Largest first; ties broken by the ascending-ID scan.
			var victim *graph.Tensor
			for id, wr := range s.wasRecomputed {
				if !wr || s.state[id] != onDevice || s.pinned[id] {
					continue
				}
				t := s.G.Tensors[id]
				if victim == nil || t.Bytes() > victim.Bytes() {
					victim = t
				}
			}
			if victim != nil {
				s.pool.FreeBlock(s.block[victim.ID])
				s.block[victim.ID] = memorypool.Block{}
				s.state[victim.ID] = dropped
				continue
			}
		}
		if s.pool.Available() >= bytes && s.compactions < maxCompactions {
			// Pure external fragmentation: defragment the arena. The
			// sTensor indirection owns every pointer, so the runtime
			// may migrate blocks, paying device-to-device copy time.
			remap, moved := s.pool.Compact()
			if moved == 0 {
				return memorypool.Block{}, at, fmt.Errorf("%w: need %d bytes, %d in use of %d (already compact)",
					ErrOOM, bytes, s.pool.InUse(), s.pool.Capacity())
			}
			for id := range s.block {
				if s.block[id].Size == 0 {
					continue
				}
				if no, ok := remap[s.block[id].Offset]; ok {
					s.block[id].Offset = no
				}
			}
			for i := range s.pending {
				if no, ok := remap[s.pending[i].block.Offset]; ok {
					s.pending[i].block.Offset = no
				}
			}
			for _, lb := range s.locals {
				if lb == nil || lb.Size == 0 {
					continue
				}
				if no, ok := remap[lb.Offset]; ok {
					lb.Offset = no
				}
			}
			for k := range s.hogs {
				if !s.hogs[k].held {
					continue
				}
				if no, ok := remap[s.hogs[k].blk.Offset]; ok {
					s.hogs[k].blk.Offset = no
				}
			}
			if !s.peakOnly {
				cost := 2 * float64(moved) / s.Dev.MemBandwidth // read + write
				s.tc += cost
				at += cost
				s.res.CompactTime += cost
			}
			s.res.Compactions++
			s.compactions++
			s.res.MovedBytes += moved
			continue
		}
		return memorypool.Block{}, at, fmt.Errorf("%w: need %d bytes, %d in use of %d (pending=%d lru=%d compactions=%d)",
			ErrOOM, bytes, s.pool.InUse(), s.pool.Capacity(), len(s.pending), len(s.lruCache)-s.lruHead, s.compactions)
	}
}

// startSwapOut issues a D2H copy of t and schedules the device block
// to be freed when the copy completes. If the tensor's bytes already
// streamed out early (EarlyOut split of the producer), the block is
// freed immediately without new PCIe traffic.
func (s *Simulator) startSwapOut(t *graph.Tensor, at float64, alreadyCopied bool) {
	blk := s.block[t.ID]
	if blk.Size == 0 {
		return
	}
	switch {
	case alreadyCopied:
		s.pool.FreeBlock(blk)
	case s.peakOnly:
		s.pushPending(0, blk, t)
	default:
		start := s.td
		if at > start {
			start = at
		}
		dur := s.xfer(t.Bytes())
		start += s.retryPenalty(t, faults.DirOut, dur)
		s.td = start + dur
		s.res.D2HBusy += dur
		s.res.SwapOutBytes += t.Bytes()
		s.pushPending(s.td, blk, t)
		if s.Opts.CollectTimeline {
			s.res.Timeline = append(s.res.Timeline, TimelinePoint{
				Name: "swapout." + t.Name, Start: start, End: s.td,
				MemUsed: s.pool.InUse(), Stream: "d2h",
				Bytes: t.Bytes(), Tensor: t.Name, FragBytes: s.fragBytes(),
			})
		}
	}
	s.block[t.ID] = memorypool.Block{}
	s.state[t.ID] = onHost
}

// startSwapIn issues an H2D copy restoring t; the tensor is usable
// when the copy completes.
func (s *Simulator) startSwapIn(t *graph.Tensor, at float64) error {
	if s.state[t.ID] != onHost {
		return nil
	}
	blk, ready, err := s.allocWait(t.Bytes(), at)
	if err != nil {
		return err
	}
	s.block[t.ID] = blk
	s.state[t.ID] = onDevice
	if s.peakOnly {
		return nil
	}
	start := s.th
	if ready > start {
		start = ready
	}
	dur := s.xfer(t.Bytes())
	start += s.retryPenalty(t, faults.DirIn, dur)
	s.th = start + dur
	s.res.H2DBusy += dur
	s.res.SwapInBytes += t.Bytes()
	s.readyAt[t.ID] = s.th
	if s.Opts.CollectTimeline {
		s.res.Timeline = append(s.res.Timeline, TimelinePoint{
			Name: "swapin." + t.Name, Start: start, End: s.th,
			MemUsed: s.pool.InUse(), Stream: "h2d",
			Bytes: t.Bytes(), Tensor: t.Name, FragBytes: s.fragBytes(),
		})
	}
	return nil
}

// ensureInput makes t usable on device and returns the time it is
// ready.
func (s *Simulator) ensureInput(t *graph.Tensor, at float64) (float64, error) {
	switch s.state[t.ID] {
	case onDevice:
		return s.readyAt[t.ID], nil
	case onHost:
		if err := s.startSwapIn(t, at); err != nil {
			return 0, err
		}
		return s.readyAt[t.ID], nil
	case dropped:
		return s.regenerate(t, at)
	case unborn:
		return 0, fmt.Errorf("input %s used before production", t.Name)
	default:
		return 0, fmt.Errorf("input %s already freed", t.Name)
	}
}

// opDuration returns the compute-stream time of the unsplit operator
// at schedule index i, with the CPU-offload special cases.
func (s *Simulator) opDuration(i int, op *graph.Op) float64 {
	if op.Kind == graph.SGDUpdate && s.Plan.OffloadOptimizer {
		// The update runs on the CPU (ZeRO-Offload); the GPU only
		// synchronizes. Transfers are charged separately.
		return 0
	}
	return s.opTime[i]
}

// execWhole executes an unsplit operator.
func (s *Simulator) execWhole(i int, op *graph.Op) error {
	s.pin(op)
	ready := s.tc
	for _, in := range op.Inputs {
		if s.skipInput(op, in) {
			continue
		}
		r, err := s.ensureInput(in, s.tc)
		if err != nil {
			return err
		}
		if r > ready {
			ready = r
		}
	}
	readyIn := ready

	var wsBlock *memorypool.Block
	if op.Workspace > 0 {
		blk, r, err := s.allocWait(op.Workspace, ready)
		if err != nil {
			return err
		}
		ready = r
		wsBlock = s.holdVal(blk)
	}
	for _, out := range op.Outputs {
		blk, r, err := s.allocWait(out.Bytes(), ready)
		if err != nil {
			return err
		}
		ready = r
		s.block[out.ID] = blk
		s.state[out.ID] = onDevice
	}
	if s.peakOnly {
		if wsBlock != nil {
			s.pool.FreeBlock(*wsBlock)
		}
		return nil
	}

	start := s.tc
	if ready > start {
		start = ready
	}
	s.chargeStall(start, readyIn)
	dur := s.noisy(i, s.opDuration(i, op))
	end := start + dur
	s.tc = end
	s.res.ComputeTime += dur
	for _, out := range op.Outputs {
		s.readyAt[out.ID] = end
	}
	if wsBlock != nil {
		s.pool.FreeBlock(*wsBlock)
	}

	// CPU-offload transfer charges.
	if op.Kind == graph.SGDUpdate && (s.Plan.OffloadOptimizer || s.Plan.ShardParams) {
		// Updated parameters return to the device for the next
		// iteration; the copy overlaps the remaining backward pass.
		p := op.Inputs[0]
		dur := s.xfer(p.Bytes())
		s.th += dur
		s.res.H2DBusy += dur
		s.res.SwapInBytes += p.Bytes()
	}

	if s.Opts.CollectTimeline {
		s.res.Timeline = append(s.res.Timeline, TimelinePoint{
			OpIndex: i, Name: op.Name, Start: start, End: end,
			MemUsed: s.pool.InUse(), FragBytes: s.fragBytes(),
		})
	}
	return nil
}

// chargeStall attributes a compute-stream wait (start > s.tc, computed
// before s.tc advances) to its cause: the part up to readyIn is input
// readiness (swap-ins and regenerations completing), the rest is
// memory availability (pool allocation waiting on in-flight frees).
func (s *Simulator) chargeStall(start, readyIn float64) {
	stall := start - s.tc
	if stall <= 0 {
		return
	}
	in := readyIn - s.tc
	if in < 0 {
		in = 0
	}
	if in > stall {
		in = stall
	}
	s.res.InputStallTime += in
	s.res.AllocStallTime += stall - in
}

// skipInput reports inputs that never materialize on device: optimizer
// state under ZeRO-Offload (lives on the CPU) and parameter gradients
// consumed by the CPU-side update.
func (s *Simulator) skipInput(op *graph.Op, in *graph.Tensor) bool {
	if op.Kind != graph.SGDUpdate || !s.Plan.OffloadOptimizer {
		return false
	}
	return in.Kind == tensor.OptState || in.Kind == tensor.ParamGrad
}
