// Package sim is TSPLIT's deep-learning runtime (paper Sec. V-D) over
// the simulated device: a discrete-event executor with the same stream
// architecture as the real system — one compute stream plus dedicated
// D2H and H2D copy streams with event-based synchronization — a pooled
// best-fit device allocator, swap-out/swap-in with prefetching,
// memory-centric / speed-centric / LRU recomputation, and split
// operators executed as micro-operator sequences with micro-granular
// eviction and streaming restore.
//
// The simulator consumes a graph, its schedule, and a memory plan
// (from TSPLIT's planner or any baseline planner) and produces the
// measurements the paper's evaluation reports: iteration time,
// throughput, peak memory, PCIe busy time, stall time, swap and
// recompute volumes — or an OOM failure when the plan does not
// actually fit, which is the ground truth behind the × entries of
// Tables IV-VII.
package sim

import (
	"container/heap"
	"fmt"
	"sort"

	"tsplit/internal/core"
	"tsplit/internal/costmodel"
	"tsplit/internal/device"
	"tsplit/internal/faults"
	"tsplit/internal/graph"
	"tsplit/internal/memorypool"
	"tsplit/internal/obs"
)

// RecomputeStrategy selects how regenerated forward subgraphs manage
// their intermediate tensors (paper Sec. V-D "Recomputation
// Implementation").
type RecomputeStrategy int

const (
	// MemoryCentric re-executes the forward dependency chain for every
	// backward consumer and frees all intermediates immediately:
	// O(N²) extra compute, O(1) extra memory. The paper's default.
	MemoryCentric RecomputeStrategy = iota
	// SpeedCentric recomputes each dropped tensor once and keeps it on
	// device until its last use: O(N) compute, O(N) memory.
	SpeedCentric
	// LRURecompute behaves speed-centric while memory lasts and evicts
	// the least-recently-used cached recomputation when the pool runs
	// dry (the paper's hybrid optimization).
	LRURecompute
)

// String names the strategy.
func (r RecomputeStrategy) String() string {
	switch r {
	case MemoryCentric:
		return "memory-centric"
	case SpeedCentric:
		return "speed-centric"
	default:
		return "lru"
	}
}

// Options tunes a simulation run.
type Options struct {
	// Capacity overrides the device memory size (0 = dev.MemBytes).
	Capacity int64
	// Recompute selects the recomputation strategy (default
	// MemoryCentric, the paper's choice).
	Recompute RecomputeStrategy
	// PoolStrategy selects the allocator placement policy.
	PoolStrategy memorypool.Strategy
	// CollectTimeline records a per-op memory/time trace (Fig. 2(a)).
	CollectTimeline bool
	// Obs receives runtime metrics (stream busy time, stall breakdown,
	// swap volumes, pool health). Nil disables all observation at zero
	// cost.
	Obs obs.Recorder
	// Faults injects a deterministic hostile environment (op-time
	// noise, PCIe degradation, transient transfer failures, capacity
	// shrink). Nil disables injection at zero cost.
	Faults *faults.Injector
	// Trace receives a "sim.run" root span with one "sim.op" child per
	// scheduled op. Nil disables tracing at zero cost.
	Trace *obs.Tracer
	// Flight receives structured runtime events — injected faults,
	// OOMs — on the postmortem ring buffer. Nil disables at zero cost.
	Flight *obs.Flight
}

// FaultStats aggregates the injected-fault activity of one run (zero
// unless Options.Faults is set).
type FaultStats struct {
	// OpNoiseSeconds is compute time added (negative: removed) by
	// op-time misprediction noise.
	OpNoiseSeconds float64
	// BandwidthEvents counts transfers that hit a degraded-PCIe
	// window; BandwidthExtraSeconds is the latency those windows added.
	BandwidthEvents       int
	BandwidthExtraSeconds float64
	// SwapRetries counts transient transfer failures that were
	// retried, SwapRetrySeconds the total retry + backoff latency, and
	// SwapExhausted the transfers that burned the whole retry budget
	// before the link reset let them through.
	SwapRetries      int
	SwapRetrySeconds float64
	SwapExhausted    int
	// CapacityEvents counts co-located-job windows that held pool
	// memory during the run.
	CapacityEvents int
}

// Result is the outcome of simulating one training iteration.
type Result struct {
	// Time is the wall-clock iteration time in seconds (compute stream
	// completion, including stalls).
	Time float64
	// ComputeTime is the busy time of the compute stream.
	ComputeTime float64
	// StallTime is Time minus the no-memory-management compute time —
	// the ΔT the plan actually cost, including recompute work.
	StallTime float64
	// InputStallTime / AllocStallTime / CompactTime break the stall
	// down by cause: compute waiting on input readiness (swap-in or
	// regeneration completing), compute waiting on pool memory
	// (in-flight swap-out frees), and defragmentation copy time. The
	// attribution is per-operator and approximate — overlapping causes
	// are charged to the dominant one — so the three need not sum to
	// StallTime (which also contains recompute work).
	InputStallTime float64
	AllocStallTime float64
	CompactTime    float64
	// D2HBusy and H2DBusy are the copy-stream busy times.
	D2HBusy, H2DBusy float64
	// PCIeUtilization is the mean utilization of the two directions
	// over the iteration.
	PCIeUtilization float64
	// PeakBytes is the maximum pool usage observed.
	PeakBytes int64
	// SwapOutBytes / SwapInBytes are total transfer volumes.
	SwapOutBytes, SwapInBytes int64
	// RecomputedOps counts re-executed forward operators.
	RecomputedOps int
	// Compactions counts pool defragmentation passes and MovedBytes
	// the data they migrated.
	Compactions int
	MovedBytes  int64
	// RecomputeTime is compute time spent on regeneration.
	RecomputeTime float64
	// Faults summarizes injected-fault activity (Options.Faults). Note
	// that PeakBytes includes memory held by injected capacity-shrink
	// events: the pool pressure the plan actually ran under.
	Faults FaultStats
	// Timeline holds (per schedule step) the pool usage after the op
	// issued, when CollectTimeline is set.
	Timeline []TimelinePoint
}

// TimelinePoint is one sample of the execution trace.
type TimelinePoint struct {
	OpIndex int
	Name    string
	Start   float64
	End     float64
	MemUsed int64
	// Stream identifies the lane: "compute" (default), "d2h", "h2d".
	Stream string
	// Bytes is the transfer payload for copy-stream events (0 for
	// compute slices) and Tensor the tensor moved — the Chrome trace
	// derives PCIe bandwidth counters and swap-out→swap-in flow arrows
	// from them.
	Bytes  int64
	Tensor string
	// FragBytes samples external fragmentation (free memory not part of
	// the largest free extent) when the event was recorded.
	FragBytes int64
}

// Throughput converts a result to samples/second for a batch size.
func (r Result) Throughput(batch int) float64 {
	if r.Time <= 0 {
		return 0
	}
	return float64(batch) / r.Time
}

// tensorState tracks where a tensor's bytes currently are.
type tensorState int

const (
	unborn tensorState = iota
	onDevice
	onHost  // swapped out; host copy valid
	dropped // evicted for recompute; must be regenerated
	freed   // dead for the rest of the iteration
)

// ErrOOM wraps allocation failures: the plan does not fit.
var ErrOOM = fmt.Errorf("sim: out of device memory")

// freeEvent is a pending deferred free (a swap-out completing).
type freeEvent struct {
	at    float64
	block memorypool.Block
	t     *graph.Tensor
}

type freeHeap []freeEvent

func (h freeHeap) Len() int            { return len(h) }
func (h freeHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h freeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *freeHeap) Push(x interface{}) { *h = append(*h, x.(freeEvent)) }
func (h *freeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Simulator executes one training iteration of a planned graph.
type Simulator struct {
	G     *graph.Graph
	Sched *graph.Schedule
	Lv    *graph.Liveness
	Plan  *core.Plan
	Dev   device.Device
	Cost  *costmodel.Model
	Opts  Options

	pool    *memorypool.Pool
	state   map[*graph.Tensor]tensorState
	block   map[*graph.Tensor]memorypool.Block
	readyAt map[*graph.Tensor]float64
	// remaining schedule uses per tensor.
	remaining map[*graph.Tensor]int
	// wasRecomputed marks tensors whose device copy came from a
	// regeneration (for memory-centric re-dropping).
	wasRecomputed map[*graph.Tensor]bool
	// earlyCopied marks tensors whose bytes already streamed to the
	// host during their (EarlyOut-split) producer.
	earlyCopied map[*graph.Tensor]bool
	// lruCache orders speed-centric/LRU cached regenerations.
	lruCache []*graph.Tensor

	// stream clocks.
	tc, td, th float64

	// prefetch agenda: schedule index -> tensors to start swapping in.
	prefetch map[int][]*graph.Tensor
	// pending holds deferred frees (swap-outs still in flight).
	pending freeHeap
	// locals registers pointers to block variables held by the
	// currently executing operator, so pool compaction can remap them
	// alongside s.block and s.pending. Cleared after every operator.
	locals []*memorypool.Block
	// pinned marks tensors the currently executing operator touches;
	// the allocator's pressure valve may not evict them.
	pinned map[*graph.Tensor]bool

	// compactions counts defragmentation passes this run (bounded to
	// stop pathological thrash).
	compactions int

	// Fault-injection state (nil/empty without Options.Faults): the
	// injector, the schedule position the executor is at, per-op
	// compute-noise factors, per-op transfer-time multipliers, and the
	// capacity-shrink windows with their held pool blocks.
	inj   *faults.Injector
	curOp int
	noise []float64
	bwMul []float64
	hogs  []hogEvent

	res Result
}

// hogEvent is one injected capacity-shrink window and the phantom
// co-located-job block it holds while active.
type hogEvent struct {
	ev   faults.CapacityEvent
	blk  memorypool.Block
	held bool
}

// maxCompactions bounds defragmentation passes per iteration.
const maxCompactions = 64

// hold registers a local block pointer for compaction remapping.
func (s *Simulator) hold(b *memorypool.Block) { s.locals = append(s.locals, b) }

// clearLocals drops local registrations after an operator completes.
func (s *Simulator) clearLocals() {
	s.locals = s.locals[:0]
	for t := range s.pinned {
		delete(s.pinned, t)
	}
}

// pin protects the tensors an operator touches from pressure eviction
// while it executes.
func (s *Simulator) pin(op *graph.Op) {
	for _, t := range op.Inputs {
		s.pinned[t] = true
	}
	for _, t := range op.Outputs {
		s.pinned[t] = true
	}
}

// New builds a simulator for one (graph, schedule, plan, device).
func New(g *graph.Graph, sched *graph.Schedule, lv *graph.Liveness, plan *core.Plan, dev device.Device, opts Options) *Simulator {
	if opts.Capacity == 0 {
		opts.Capacity = dev.MemBytes
	}
	return &Simulator{
		G: g, Sched: sched, Lv: lv, Plan: plan, Dev: dev,
		Cost: costmodel.New(dev), Opts: opts,
	}
}

// transfer returns PCIe seconds for a byte count.
func (s *Simulator) transfer(b int64) float64 { return float64(b) / s.Dev.PCIeBandwidth }

func (s *Simulator) reset() {
	s.pool = memorypool.New(s.Opts.Capacity, s.Opts.PoolStrategy)
	s.state = make(map[*graph.Tensor]tensorState, len(s.G.Tensors))
	s.block = make(map[*graph.Tensor]memorypool.Block, len(s.G.Tensors))
	s.readyAt = make(map[*graph.Tensor]float64, len(s.G.Tensors))
	s.remaining = make(map[*graph.Tensor]int, len(s.G.Tensors))
	s.wasRecomputed = make(map[*graph.Tensor]bool)
	s.earlyCopied = make(map[*graph.Tensor]bool)
	s.pinned = make(map[*graph.Tensor]bool)
	s.lruCache = nil
	s.tc, s.td, s.th = 0, 0, 0
	s.compactions = 0
	s.locals = nil
	s.pending = nil
	heap.Init(&s.pending)
	s.res = Result{}
	s.inj = s.Opts.Faults
	s.curOp = 0
	s.noise, s.bwMul, s.hogs = nil, nil, nil
	if s.inj != nil {
		n := len(s.Sched.Ops)
		s.noise = make([]float64, n)
		s.bwMul = make([]float64, n)
		for i := 0; i < n; i++ {
			s.noise[i] = s.inj.OpTimeFactor(i)
			s.bwMul[i] = s.inj.TransferFactor(i)
		}
		for _, ev := range s.inj.CapacityEvents(n, s.Opts.Capacity) {
			s.hogs = append(s.hogs, hogEvent{ev: ev})
		}
	}
	s.prefetch = make(map[int][]*graph.Tensor)
	// Iterate the plan in tensor-ID order so prefetches sharing a
	// schedule point are issued deterministically (Plan.Tensors is a
	// map; ranging it directly would vary the H2D order run to run).
	ids := make([]int, 0, len(s.Plan.Tensors))
	for id := range s.Plan.Tensors {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		tp := s.Plan.Tensors[id]
		if tp.Opt == core.Swap && tp.MicroRestore <= 1 && tp.RestoreAt >= 0 {
			at := tp.PrefetchAt
			if at < 0 || at > tp.RestoreAt {
				at = tp.RestoreAt
			}
			s.prefetch[at] = append(s.prefetch[at], tp.Tensor)
		}
	}
	for _, t := range s.G.Tensors {
		s.remaining[t] = len(t.Consumers)
	}
}

// PoolLayout exposes the allocator layout for diagnostics.
func (s *Simulator) PoolLayout(rows int) string {
	if s.pool == nil {
		return ""
	}
	return s.pool.DumpLayout(rows)
}

// DeviceResidents lists tensors currently on device at least minBytes
// large, for diagnostics.
func (s *Simulator) DeviceResidents(minBytes int64) []string {
	var out []string
	for t, st := range s.state {
		if st == onDevice && t.Bytes() >= minBytes {
			out = append(out, fmt.Sprintf("%-28s %7.2f GiB", t.Name, float64(t.Bytes())/(1<<30)))
		}
	}
	sort.Strings(out)
	return out
}
