// Package sim is TSPLIT's deep-learning runtime (paper Sec. V-D) over
// the simulated device: a discrete-event executor with the same stream
// architecture as the real system — one compute stream plus dedicated
// D2H and H2D copy streams with event-based synchronization — a pooled
// best-fit device allocator, swap-out/swap-in with prefetching,
// memory-centric / speed-centric / LRU recomputation, and split
// operators executed as micro-operator sequences with micro-granular
// eviction and streaming restore.
//
// The simulator consumes a graph, its schedule, and a memory plan
// (from TSPLIT's planner or any baseline planner) and produces the
// measurements the paper's evaluation reports: iteration time,
// throughput, peak memory, PCIe busy time, stall time, swap and
// recompute volumes — or an OOM failure when the plan does not
// actually fit, which is the ground truth behind the × entries of
// Tables IV-VII.
//
// The executor is arena-backed: every piece of per-run state — the
// event heap, the per-tensor residency/refcount/block mirrors, the
// allocator's internals, the split-execution scratch — lives in
// flat, dense-ID-indexed slices that reset() reinitializes in place,
// so a Simulator recycled through a SimPool runs a full iteration with
// near-zero heap allocation and byte-identical results to a fresh one.
package sim

import (
	"fmt"
	"slices"
	"sort"

	"tsplit/internal/core"
	"tsplit/internal/costmodel"
	"tsplit/internal/device"
	"tsplit/internal/faults"
	"tsplit/internal/graph"
	"tsplit/internal/memorypool"
	"tsplit/internal/obs"
)

// RecomputeStrategy selects how regenerated forward subgraphs manage
// their intermediate tensors (paper Sec. V-D "Recomputation
// Implementation").
type RecomputeStrategy int

const (
	// MemoryCentric re-executes the forward dependency chain for every
	// backward consumer and frees all intermediates immediately:
	// O(N²) extra compute, O(1) extra memory. The paper's default.
	MemoryCentric RecomputeStrategy = iota
	// SpeedCentric recomputes each dropped tensor once and keeps it on
	// device until its last use: O(N) compute, O(N) memory.
	SpeedCentric
	// LRURecompute behaves speed-centric while memory lasts and evicts
	// the least-recently-used cached recomputation when the pool runs
	// dry (the paper's hybrid optimization).
	LRURecompute
)

// String names the strategy.
func (r RecomputeStrategy) String() string {
	switch r {
	case MemoryCentric:
		return "memory-centric"
	case SpeedCentric:
		return "speed-centric"
	default:
		return "lru"
	}
}

// Options tunes a simulation run.
type Options struct {
	// Capacity overrides the device memory size (0 = dev.MemBytes).
	Capacity int64
	// Recompute selects the recomputation strategy (default
	// MemoryCentric, the paper's choice).
	Recompute RecomputeStrategy
	// PoolStrategy selects the allocator placement policy.
	PoolStrategy memorypool.Strategy
	// CollectTimeline records a per-op memory/time trace (Fig. 2(a)).
	CollectTimeline bool
	// Obs receives runtime metrics (stream busy time, stall breakdown,
	// swap volumes, pool health). Nil disables all observation at zero
	// cost.
	Obs obs.Recorder
	// Faults injects a deterministic hostile environment (op-time
	// noise, PCIe degradation, transient transfer failures, capacity
	// shrink). Nil disables injection at zero cost.
	Faults *faults.Injector
	// Trace receives a "sim.run" root span with one "sim.op" child per
	// scheduled op. Nil disables tracing at zero cost.
	Trace *obs.Tracer
	// Flight receives structured runtime events — injected faults,
	// OOMs — on the postmortem ring buffer. Nil disables at zero cost.
	Flight *obs.Flight
}

// FaultStats aggregates the injected-fault activity of one run (zero
// unless Options.Faults is set).
type FaultStats struct {
	// OpNoiseSeconds is compute time added (negative: removed) by
	// op-time misprediction noise.
	OpNoiseSeconds float64
	// BandwidthEvents counts transfers that hit a degraded-PCIe
	// window; BandwidthExtraSeconds is the latency those windows added.
	BandwidthEvents       int
	BandwidthExtraSeconds float64
	// SwapRetries counts transient transfer failures that were
	// retried, SwapRetrySeconds the total retry + backoff latency, and
	// SwapExhausted the transfers that burned the whole retry budget
	// before the link reset let them through.
	SwapRetries      int
	SwapRetrySeconds float64
	SwapExhausted    int
	// CapacityEvents counts co-located-job windows that held pool
	// memory during the run.
	CapacityEvents int
}

// Result is the outcome of simulating one training iteration.
type Result struct {
	// Time is the wall-clock iteration time in seconds (compute stream
	// completion, including stalls).
	Time float64
	// ComputeTime is the busy time of the compute stream.
	ComputeTime float64
	// StallTime is Time minus the no-memory-management compute time —
	// the ΔT the plan actually cost, including recompute work.
	StallTime float64
	// InputStallTime / AllocStallTime / CompactTime break the stall
	// down by cause: compute waiting on input readiness (swap-in or
	// regeneration completing), compute waiting on pool memory
	// (in-flight swap-out frees), and defragmentation copy time. The
	// attribution is per-operator and approximate — overlapping causes
	// are charged to the dominant one — so the three need not sum to
	// StallTime (which also contains recompute work).
	InputStallTime float64
	AllocStallTime float64
	CompactTime    float64
	// D2HBusy and H2DBusy are the copy-stream busy times.
	D2HBusy, H2DBusy float64
	// PCIeUtilization is the mean utilization of the two directions
	// over the iteration.
	PCIeUtilization float64
	// PeakBytes is the maximum pool usage observed.
	PeakBytes int64
	// SwapOutBytes / SwapInBytes are total transfer volumes.
	SwapOutBytes, SwapInBytes int64
	// RecomputedOps counts re-executed forward operators.
	RecomputedOps int
	// Compactions counts pool defragmentation passes and MovedBytes
	// the data they migrated.
	Compactions int
	MovedBytes  int64
	// RecomputeTime is compute time spent on regeneration.
	RecomputeTime float64
	// Faults summarizes injected-fault activity (Options.Faults). Note
	// that PeakBytes includes memory held by injected capacity-shrink
	// events: the pool pressure the plan actually ran under.
	Faults FaultStats
	// Timeline holds (per schedule step) the pool usage after the op
	// issued, when CollectTimeline is set.
	Timeline []TimelinePoint
}

// TimelinePoint is one sample of the execution trace.
type TimelinePoint struct {
	OpIndex int
	Name    string
	Start   float64
	End     float64
	MemUsed int64
	// Stream identifies the lane: "compute" (default), "d2h", "h2d".
	Stream string
	// Bytes is the transfer payload for copy-stream events (0 for
	// compute slices) and Tensor the tensor moved — the Chrome trace
	// derives PCIe bandwidth counters and swap-out→swap-in flow arrows
	// from them.
	Bytes  int64
	Tensor string
	// FragBytes samples external fragmentation (free memory not part of
	// the largest free extent) when the event was recorded.
	FragBytes int64
}

// Throughput converts a result to samples/second for a batch size.
func (r Result) Throughput(batch int) float64 {
	if r.Time <= 0 {
		return 0
	}
	return float64(batch) / r.Time
}

// tensorState tracks where a tensor's bytes currently are.
type tensorState int8

const (
	unborn tensorState = iota
	onDevice
	onHost  // swapped out; host copy valid
	dropped // evicted for recompute; must be regenerated
	freed   // dead for the rest of the iteration
)

// ErrOOM wraps allocation failures: the plan does not fit.
var ErrOOM = fmt.Errorf("sim: out of device memory")

// freeEvent is a pending deferred free (a swap-out completing). seq is
// the issue order; it breaks ties so the peak-only mode — which
// freezes every stream clock at zero — pops events in exactly the
// order a timed run would (the D2H clock advances strictly between
// pushes, so a timed run's pop order is the issue order too).
type freeEvent struct {
	at    float64
	seq   int64
	block memorypool.Block
	t     *graph.Tensor
}

// freeHeap is a concrete binary min-heap of freeEvents ordered by
// (at, seq). A typed heap instead of container/heap: the interface
// methods box every pushed and popped event, and the event loop pays
// that on every deferred free.
type freeHeap []freeEvent

func (h freeHeap) before(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *freeHeap) push(ev freeEvent) {
	q := append(*h, ev)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.before(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	*h = q
}

func (h *freeHeap) pop() freeEvent {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = freeEvent{}
	q = q[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && q.before(l, least) {
			least = l
		}
		if r < n && q.before(r, least) {
			least = r
		}
		if least == i {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	*h = q
	return top
}

// hogEvent is one injected capacity-shrink window and the phantom
// co-located-job block it holds while active.
type hogEvent struct {
	ev   faults.CapacityEvent
	blk  memorypool.Block
	held bool
}

// maxCompactions bounds defragmentation passes per iteration.
const maxCompactions = 64

// arenaChunk is the slab size of blockArena. Chunks are never
// reallocated, so a *Block handed out by take stays valid for the
// whole arena window.
const arenaChunk = 64

// blockArena hands out stable *memorypool.Block slots for the block
// variables an executing operator holds across potential compactions
// (workspaces, staged micro-outputs, streamed micro-inputs). Slots are
// recycled per operator; every take within one window returns a
// distinct address, so the compaction remapper never visits the same
// pointer twice.
type blockArena struct {
	chunks [][]memorypool.Block
	n      int
}

func (a *blockArena) take(b memorypool.Block) *memorypool.Block {
	ci, si := a.n/arenaChunk, a.n%arenaChunk
	if ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]memorypool.Block, arenaChunk))
	}
	a.n++
	p := &a.chunks[ci][si]
	*p = b
	return p
}

func (a *blockArena) reset() { a.n = 0 }

// carvedInput pairs an evict-as-consumed split input with its in-place
// partition (blocks aliases one of the Simulator's carve buffers).
type carvedInput struct {
	t      *graph.Tensor
	blocks []memorypool.Block
}

// Simulator executes one training iteration of a planned graph.
//
// All internal state is indexed by the dense tensor and op IDs the
// graph package assigns at construction, and reset() reinitializes
// every structure in place, so one Simulator can be reused across runs
// (see SimPool) without per-run allocation and with results
// byte-identical to a freshly constructed one.
type Simulator struct {
	G     *graph.Graph
	Sched *graph.Schedule
	Lv    *graph.Liveness
	Plan  *core.Plan
	Dev   device.Device
	Cost  *costmodel.Model
	Opts  Options

	pool *memorypool.Pool

	// Per-tensor mirrors indexed by graph.Tensor.ID.
	state   []tensorState
	block   []memorypool.Block // Size == 0: no device block (real blocks are >= Alignment)
	readyAt []float64
	// remaining schedule uses per tensor.
	remaining []int32
	// wasRecomputed marks tensors whose device copy came from a
	// regeneration (for memory-centric re-dropping).
	wasRecomputed []bool
	// earlyCopied marks tensors whose bytes already streamed to the
	// host during their (EarlyOut-split) producer.
	earlyCopied []bool
	// pinned marks tensors the currently executing operator touches;
	// the allocator's pressure valve may not evict them. pinnedIDs is
	// the set-bit list so clearing is O(pins), not O(tensors).
	pinned    []bool
	pinnedIDs []int32
	// residentB caches resident() per tensor for the current plan.
	residentB []bool

	// Dense plan mirrors: tplans[id]/planned[id] mirror Plan.Tensors,
	// splitIdx[opID] indexes splitList (-1: unsplit), and planIDs is
	// the sorted key list the deterministic walks use.
	tplans    []core.TensorPlan
	planned   []bool
	planIDs   []int32
	splitIdx  []int32
	splitList []core.OpSplit
	// schedIdx maps op ID -> schedule index.
	schedIdx []int32

	// opTime caches Cost.OpTime per schedule index. The cost model is
	// pure in (device, op), so the cache survives pool recycling as
	// long as the (graph, device) identity holds.
	opTime    []float64
	opTimeG   *graph.Graph
	opTimeDev device.Device

	// lruCache orders speed-centric/LRU cached regenerations; lruHead
	// is the eviction cursor (popping advances it instead of reslicing
	// away capacity).
	lruCache []*graph.Tensor
	lruHead  int

	// stream clocks.
	tc, td, th float64

	// prefetch agenda in CSR form: tensors to start swapping in before
	// schedule index i are prefTensors[prefStart[i]:prefStart[i+1]].
	prefStart   []int32
	prefTensors []*graph.Tensor
	prefCur     []int32

	// pending holds deferred frees (swap-outs still in flight).
	pending freeHeap
	pendSeq int64

	// locals registers pointers to block variables held by the
	// currently executing operator, so pool compaction can remap them
	// alongside s.block and s.pending. Cleared after every operator.
	// The pointers come from arena (stable addresses) or from the
	// split scratch buffers below (append-stable within one op).
	locals []*memorypool.Block
	arena  blockArena

	// Split-execution scratch, reused across split ops.
	carveBuf     [2][]memorypool.Block
	carvedIns    []carvedInput
	restoreSlots []memorypool.Block
	outBlocks    []memorypool.Block
	microPtrs    []*memorypool.Block
	microOn      []bool

	// Recompute-chain scratch: an epoch-stamped DFS walker plus
	// free-lists of chain/frame/fresh buffers (free-lists, not single
	// buffers, because regeneration re-enters through ensureInput).
	walker    chainWalker
	chainFree [][]*graph.Op
	frameFree [][]chainFrame
	freshFree [][]*graph.Tensor

	// compactions counts defragmentation passes this run (bounded to
	// stop pathological thrash).
	compactions int

	// Fault-injection state (nil/empty without Options.Faults): the
	// injector, the schedule position the executor is at, per-op
	// compute-noise factors, per-op transfer-time multipliers, and the
	// capacity-shrink windows with their held pool blocks.
	inj   *faults.Injector
	curOp int
	noise []float64
	bwMul []float64
	hogs  []hogEvent

	// peakOnly freezes the stream clocks: the run executes the exact
	// allocation/free/eviction event sequence (which is independent of
	// simulated time) while skipping all timing, noise, span, and
	// timeline work. See PredictPeak.
	peakOnly bool

	res Result
}

// hold registers a local block pointer for compaction remapping.
func (s *Simulator) hold(b *memorypool.Block) { s.locals = append(s.locals, b) }

// holdVal copies b into a stable arena slot, registers it for
// compaction remapping, and returns the slot.
func (s *Simulator) holdVal(b memorypool.Block) *memorypool.Block {
	p := s.arena.take(b)
	s.locals = append(s.locals, p)
	return p
}

// clearLocals drops local registrations after an operator completes.
func (s *Simulator) clearLocals() {
	s.locals = s.locals[:0]
	s.arena.reset()
	for _, id := range s.pinnedIDs {
		s.pinned[id] = false
	}
	s.pinnedIDs = s.pinnedIDs[:0]
}

// pin protects the tensors an operator touches from pressure eviction
// while it executes.
func (s *Simulator) pin(op *graph.Op) {
	for _, t := range op.Inputs {
		if !s.pinned[t.ID] {
			s.pinned[t.ID] = true
			s.pinnedIDs = append(s.pinnedIDs, int32(t.ID))
		}
	}
	for _, t := range op.Outputs {
		if !s.pinned[t.ID] {
			s.pinned[t.ID] = true
			s.pinnedIDs = append(s.pinnedIDs, int32(t.ID))
		}
	}
}

// pushPending schedules blk to be freed when t's swap-out completes at
// time at. The issue sequence keeps the heap FIFO when clocks are
// frozen (peak-only mode).
func (s *Simulator) pushPending(at float64, blk memorypool.Block, t *graph.Tensor) {
	s.pendSeq++
	s.pending.push(freeEvent{at: at, seq: s.pendSeq, block: blk, t: t})
}

// New builds a simulator for one (graph, schedule, plan, device).
func New(g *graph.Graph, sched *graph.Schedule, lv *graph.Liveness, plan *core.Plan, dev device.Device, opts Options) *Simulator {
	if opts.Capacity == 0 {
		opts.Capacity = dev.MemBytes
	}
	return &Simulator{
		G: g, Sched: sched, Lv: lv, Plan: plan, Dev: dev,
		Cost: costmodel.New(dev), Opts: opts,
	}
}

// transfer returns PCIe seconds for a byte count.
func (s *Simulator) transfer(b int64) float64 { return float64(b) / s.Dev.PCIeBandwidth }

// grow returns a zeroed slice of length n, reusing buf's storage when
// it is large enough.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

func (s *Simulator) reset() {
	nT := len(s.G.Tensors)
	nOps := len(s.G.Ops)
	nSched := len(s.Sched.Ops)

	if s.pool == nil {
		s.pool = memorypool.New(s.Opts.Capacity, s.Opts.PoolStrategy)
	} else {
		s.pool.ResetTo(s.Opts.Capacity, s.Opts.PoolStrategy)
	}
	s.state = grow(s.state, nT)
	s.block = grow(s.block, nT)
	s.readyAt = grow(s.readyAt, nT)
	s.remaining = grow(s.remaining, nT)
	s.wasRecomputed = grow(s.wasRecomputed, nT)
	s.earlyCopied = grow(s.earlyCopied, nT)
	s.pinned = grow(s.pinned, nT)
	s.pinnedIDs = s.pinnedIDs[:0]
	s.residentB = grow(s.residentB, nT)
	s.lruCache = s.lruCache[:0]
	s.lruHead = 0
	s.tc, s.td, s.th = 0, 0, 0
	s.compactions = 0
	s.locals = s.locals[:0]
	s.arena.reset()
	s.pending = s.pending[:0]
	s.pendSeq = 0
	s.res = Result{}
	s.inj = s.Opts.Faults
	s.curOp = 0
	s.noise, s.bwMul = nil, nil
	s.hogs = s.hogs[:0]
	if s.inj != nil {
		if !s.peakOnly {
			// Noise and bandwidth multipliers only perturb timing; the
			// peak-only mode never reads them.
			s.noise = make([]float64, nSched)
			s.bwMul = make([]float64, nSched)
			for i := 0; i < nSched; i++ {
				s.noise[i] = s.inj.OpTimeFactor(i)
				s.bwMul[i] = s.inj.TransferFactor(i)
			}
		}
		for _, ev := range s.inj.CapacityEvents(nSched, s.Opts.Capacity) {
			s.hogs = append(s.hogs, hogEvent{ev: ev})
		}
	}

	// Dense plan mirrors, visited in tensor-ID order so every
	// plan-driven walk (prefetch issue in particular) is deterministic
	// regardless of Plan.Tensors map iteration.
	s.tplans = grow(s.tplans, nT)
	s.planned = grow(s.planned, nT)
	s.planIDs = s.planIDs[:0]
	//lint:allow maporder key collection; sorted before use
	for id := range s.Plan.Tensors {
		s.planIDs = append(s.planIDs, int32(id))
	}
	slices.Sort(s.planIDs)
	for _, id := range s.planIDs {
		s.tplans[id] = s.Plan.Tensors[int(id)]
		s.planned[id] = true
	}
	s.splitIdx = growFill(s.splitIdx, nOps, -1)
	s.splitList = s.splitList[:0]
	//lint:allow maporder each entry is indexed independently by op ID
	for opID, spl := range s.Plan.Splits {
		s.splitIdx[opID] = int32(len(s.splitList))
		s.splitList = append(s.splitList, spl)
	}
	s.schedIdx = grow(s.schedIdx, nOps)
	for i, op := range s.Sched.Ops {
		s.schedIdx[op.ID] = int32(i)
	}
	for _, t := range s.G.Tensors {
		s.remaining[t.ID] = int32(len(t.Consumers))
		if t.Producer == nil {
			s.residentB[t.ID] = s.planResident(t)
		}
	}

	// Prefetch agenda in CSR form, filled in tensor-ID order per
	// schedule point (the order the map-based agenda was issued in).
	s.prefStart = grow(s.prefStart, nSched+1)
	for _, id := range s.planIDs {
		if at, ok := s.prefetchAt(id); ok {
			s.prefStart[at+1]++
		}
	}
	for i := 1; i <= nSched; i++ {
		s.prefStart[i] += s.prefStart[i-1]
	}
	s.prefTensors = grow(s.prefTensors, int(s.prefStart[nSched]))
	s.prefCur = grow(s.prefCur, nSched)
	copy(s.prefCur, s.prefStart[:nSched])
	for _, id := range s.planIDs {
		if at, ok := s.prefetchAt(id); ok {
			s.prefTensors[s.prefCur[at]] = s.tplans[id].Tensor
			s.prefCur[at]++
		}
	}

	if !s.peakOnly && (s.opTimeG != s.G || s.opTimeDev != s.Cost.Dev) {
		s.opTime = grow(s.opTime, nSched)
		for i, op := range s.Sched.Ops {
			s.opTime[i] = s.Cost.OpTime(op)
		}
		s.opTimeG, s.opTimeDev = s.G, s.Cost.Dev
	}
}

// growFill returns a slice of length n with every element set to v,
// reusing buf's storage when possible.
func growFill(buf []int32, n int, v int32) []int32 {
	if cap(buf) < n {
		buf = make([]int32, n)
	} else {
		buf = buf[:n]
	}
	for i := range buf {
		buf[i] = v
	}
	return buf
}

// prefetchAt returns the schedule index at which planned tensor id's
// swap-in prefetch is issued, if the plan swaps it back in whole.
func (s *Simulator) prefetchAt(id int32) (int, bool) {
	tp := &s.tplans[id]
	if tp.Opt != core.Swap || tp.MicroRestore > 1 || tp.RestoreAt < 0 {
		return 0, false
	}
	at := tp.PrefetchAt
	if at < 0 || at > tp.RestoreAt {
		at = tp.RestoreAt
	}
	return at, true
}

// PoolLayout exposes the allocator layout for diagnostics.
func (s *Simulator) PoolLayout(rows int) string {
	if s.pool == nil {
		return ""
	}
	return s.pool.DumpLayout(rows)
}

// DeviceResidents lists tensors currently on device at least minBytes
// large, for diagnostics.
func (s *Simulator) DeviceResidents(minBytes int64) []string {
	var out []string
	for id, st := range s.state {
		t := s.G.Tensors[id]
		if st == onDevice && t.Bytes() >= minBytes {
			out = append(out, fmt.Sprintf("%-28s %7.2f GiB", t.Name, float64(t.Bytes())/(1<<30))) //lint:allow scratchreuse diagnostic dump, off the event loop
		}
	}
	sort.Strings(out)
	return out
}
