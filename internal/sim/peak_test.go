package sim

import (
	"fmt"
	"testing"

	"tsplit/internal/baselines"
	"tsplit/internal/core"
	"tsplit/internal/faults"
	"tsplit/internal/models"
)

// PredictPeak skips timing, stream contention, observation, and the
// timeline — but the alloc/free event sequence it replays must be the
// full Run()'s exactly, so the peak it reports (and any OOM it hits)
// is bit-for-bit identical. These tests sweep the model zoo × every
// policy, plus fault-injected and over-committed configurations.

func peakPlan(t *testing.T, b *bed, policy string, cap int64) *core.Plan {
	t.Helper()
	if policy == "tsplit" {
		plan, err := core.NewPlanner(b.g, b.sched, b.lv, b.prof, b.dev,
			core.Options{Capacity: cap, FragmentationReserve: -1}).Plan()
		if err != nil {
			t.Skipf("tsplit planning infeasible: %v", err)
		}
		return plan
	}
	plan, err := baselines.Registry[policy](baselines.Inputs{
		G: b.g, Sched: b.sched, Lv: b.lv, Prof: b.prof, Dev: b.dev})
	if err != nil {
		// Some baselines don't apply to every architecture (the conv
		// offloaders need convolution layers); nothing to compare.
		t.Skipf("%s inapplicable: %v", policy, err)
	}
	return plan
}

func TestPredictPeakMatchesRunAcrossZoo(t *testing.T) {
	zoo := []struct {
		model string
		batch int
	}{
		{"vgg16", 256},
		{"resnet50", 256},
		{"bert-large", 64},
	}
	policies := []string{"base", "vdnn-conv", "vdnn-all", "checkpoints",
		"superneurons", "zero-offload", "fairscale-offload", "tsplit"}
	for _, w := range zoo {
		b := mkbed(t, w.model, models.Config{BatchSize: w.batch})
		for _, policy := range policies {
			t.Run(w.model+"/"+policy, func(t *testing.T) {
				plan := peakPlan(t, b, policy, b.dev.MemBytes)
				opts := Options{Recompute: LRURecompute}
				res, runErr := New(b.g, b.sched, b.lv, plan, b.dev, opts).Run()
				peak, peakErr := PredictPeak(b.g, b.sched, b.lv, plan, b.dev, opts)
				if (runErr == nil) != (peakErr == nil) {
					t.Fatalf("feasibility diverges: run err=%v, peak err=%v", runErr, peakErr)
				}
				if runErr != nil {
					if runErr.Error() != peakErr.Error() {
						t.Fatalf("OOM strings diverge:\nrun:  %s\npeak: %s", runErr, peakErr)
					}
					return
				}
				if peak != res.PeakBytes {
					t.Fatalf("peak diverges: PredictPeak=%d Run=%d", peak, res.PeakBytes)
				}
			})
		}
	}
}

// TestPredictPeakUnderPressure forces the simulator through its
// degradation machinery — LRU eviction, the pressure valve, and
// compaction — where the peak path has the most opportunities to
// diverge from the timed path.
func TestPredictPeakUnderPressure(t *testing.T) {
	for _, tc := range []struct {
		model string
		batch int
		pct   int64 // capacity as percent of the unmanaged peak
	}{
		{"vgg16", 256, 70},
		{"vgg16", 256, 45},
		{"resnet50", 256, 70},
	} {
		t.Run(fmt.Sprintf("%s/%d%%", tc.model, tc.pct), func(t *testing.T) {
			b := mkbed(t, tc.model, models.Config{BatchSize: tc.batch})
			cap := b.lv.Peak * tc.pct / 100
			plan := peakPlan(t, b, "tsplit", cap)
			opts := Options{Capacity: cap, Recompute: LRURecompute}
			res, runErr := New(b.g, b.sched, b.lv, plan, b.dev, opts).Run()
			peak, peakErr := PredictPeak(b.g, b.sched, b.lv, plan, b.dev, opts)
			if (runErr == nil) != (peakErr == nil) {
				t.Fatalf("feasibility diverges: run err=%v, peak err=%v", runErr, peakErr)
			}
			if runErr != nil {
				if runErr.Error() != peakErr.Error() {
					t.Fatalf("OOM strings diverge:\nrun:  %s\npeak: %s", runErr, peakErr)
				}
				return
			}
			if peak != res.PeakBytes {
				t.Fatalf("peak diverges: PredictPeak=%d Run=%d", peak, res.PeakBytes)
			}
		})
	}
}

// TestPredictPeakWithFaults checks the peak path under injection:
// capacity hogs perturb the peak and must be replayed; op noise and
// bandwidth degradation are timing-only and must not.
func TestPredictPeakWithFaults(t *testing.T) {
	b := mkbed(t, "vgg16", models.Config{BatchSize: 256})
	cap := b.lv.Peak * 70 / 100
	plan := peakPlan(t, b, "tsplit", cap)
	for _, seed := range []uint64{7, 123} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			mk := func() Options {
				return Options{
					Capacity:  cap,
					Recompute: LRURecompute,
					Faults:    faults.New(faults.Config{Seed: seed, Severity: faults.DefaultSeverity}),
				}
			}
			res, runErr := New(b.g, b.sched, b.lv, plan, b.dev, mk()).Run()
			peak, peakErr := PredictPeak(b.g, b.sched, b.lv, plan, b.dev, mk())
			if (runErr == nil) != (peakErr == nil) {
				t.Fatalf("feasibility diverges: run err=%v, peak err=%v", runErr, peakErr)
			}
			if runErr != nil {
				if runErr.Error() != peakErr.Error() {
					t.Fatalf("OOM strings diverge:\nrun:  %s\npeak: %s", runErr, peakErr)
				}
				return
			}
			if peak != res.PeakBytes {
				t.Fatalf("peak diverges under faults: PredictPeak=%d Run=%d", peak, res.PeakBytes)
			}
		})
	}
}

// TestPredictPeakPooled runs the peak path on a recycled arena,
// interleaved with full runs, checking neither contaminates the other.
func TestPredictPeakPooled(t *testing.T) {
	b := mkbed(t, "resnet50", models.Config{BatchSize: 256})
	cap := b.lv.Peak * 70 / 100
	plan := peakPlan(t, b, "tsplit", cap)
	opts := Options{Capacity: cap, Recompute: LRURecompute}
	want, err := New(b.g, b.sched, b.lv, plan, b.dev, opts).Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	pool := NewSimPool()
	for i := 0; i < 3; i++ {
		s := pool.Get(b.g, b.sched, b.lv, plan, b.dev, opts)
		peak, err := s.PredictPeak()
		if err != nil {
			t.Fatalf("pooled PredictPeak: %v", err)
		}
		if peak != want.PeakBytes {
			t.Fatalf("pooled PredictPeak=%d, Run=%d", peak, want.PeakBytes)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("pooled Run after PredictPeak: %v", err)
		}
		if res.PeakBytes != want.PeakBytes || res.Time != want.Time {
			t.Fatalf("full run after peak-only diverges: peak %d vs %d, time %v vs %v",
				res.PeakBytes, want.PeakBytes, res.Time, want.Time)
		}
		pool.Put(s)
	}
}
