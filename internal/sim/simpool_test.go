package sim

import (
	"sync"
	"testing"

	"tsplit/internal/core"
	"tsplit/internal/models"
	"tsplit/internal/obs"
)

func TestSimPoolRecyclesAndCounts(t *testing.T) {
	b := mkbed(t, "vgg16", models.Config{BatchSize: 64})
	plan, err := core.NewPlanner(b.g, b.sched, b.lv, b.prof, b.dev, core.Options{}).Plan()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	pool := NewSimPool()
	pool.Obs = reg
	opts := Options{Recompute: LRURecompute}

	s1 := pool.Get(b.g, b.sched, b.lv, plan, b.dev, opts)
	if s1.Opts.Capacity != b.dev.MemBytes {
		t.Fatalf("Get did not default capacity: %d", s1.Opts.Capacity)
	}
	if pool.Size() != 0 {
		t.Fatalf("Size = %d after Get, want 0", pool.Size())
	}
	pool.Put(s1)
	if pool.Size() != 1 {
		t.Fatalf("Size = %d after Put, want 1", pool.Size())
	}
	s2 := pool.Get(b.g, b.sched, b.lv, plan, b.dev, opts)
	if s2 != s1 {
		t.Fatal("second Get did not recycle the pooled arena")
	}
	pool.Put(s2)

	snap := reg.Snapshot()
	got := map[string]float64{}
	for _, m := range snap {
		got[m.Name] = m.Value
	}
	if got["tsplit_simpool_gets_total"] != 2 {
		t.Fatalf("gets_total = %v, want 2", got["tsplit_simpool_gets_total"])
	}
	if got["tsplit_simpool_reuse_hits_total"] != 1 {
		t.Fatalf("reuse_hits_total = %v, want 1", got["tsplit_simpool_reuse_hits_total"])
	}
}

func TestSimPoolPutSeversRunState(t *testing.T) {
	b := mkbed(t, "vgg16", models.Config{BatchSize: 64})
	plan, err := core.NewPlanner(b.g, b.sched, b.lv, b.prof, b.dev, core.Options{}).Plan()
	if err != nil {
		t.Fatal(err)
	}
	pool := NewSimPool()
	s := pool.Get(b.g, b.sched, b.lv, plan, b.dev, Options{Recompute: LRURecompute, CollectTimeline: true})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	pool.Put(s)
	if s.Plan != nil || s.Opts.Obs != nil || s.Opts.Faults != nil {
		t.Fatal("Put kept borrower-owned references")
	}
	if s.res.Timeline != nil || len(s.lruCache) != 0 || len(s.pending) != 0 {
		t.Fatal("Put kept run state")
	}
	if s.G != b.g || s.Sched != b.sched {
		t.Fatal("Put severed the warm workload identity; the op-time cache depends on it")
	}
	pool.Put(nil) // must be a no-op
	if pool.Size() != 1 {
		t.Fatalf("Size = %d, want 1", pool.Size())
	}
}

// TestSimPoolConcurrentGetPut exercises the pool from many goroutines
// (the sweep-shard pattern); run under -race this proves the mutex
// discipline.
func TestSimPoolConcurrentGetPut(t *testing.T) {
	b := mkbed(t, "vgg16", models.Config{BatchSize: 64})
	plan, err := core.NewPlanner(b.g, b.sched, b.lv, b.prof, b.dev, core.Options{}).Plan()
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(b.g, b.sched, b.lv, plan, b.dev, Options{Recompute: LRURecompute}).Run()
	if err != nil {
		t.Fatal(err)
	}
	pool := NewSimPool()
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				s := pool.Get(b.g, b.sched, b.lv, plan, b.dev, Options{Recompute: LRURecompute})
				res, err := s.Run()
				if err != nil {
					errs[w] = err
					return
				}
				if res.PeakBytes != want.PeakBytes {
					errs[w] = errMismatch(res.PeakBytes, want.PeakBytes)
					return
				}
				pool.Put(s)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

type peakMismatch struct{ got, want int64 }

func errMismatch(got, want int64) error { return peakMismatch{got, want} }

func (e peakMismatch) Error() string { return "concurrent pooled peak diverged" }
