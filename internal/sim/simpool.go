package sim

import (
	"sync"

	"tsplit/internal/core"
	"tsplit/internal/costmodel"
	"tsplit/internal/device"
	"tsplit/internal/graph"
	"tsplit/internal/obs"
)

// SimPool recycles Simulators so steady-state simulation allocates
// (almost) nothing: the event heap, the per-tensor mirrors, the
// allocator's free list and used table, the split scratch, and the
// recompute walker all carry over and are reinitialized in place by
// the next run's reset(). Unlike core.PlannerPool — whose planners are
// bound to one workload — a SimPool is workload-free: Get retargets a
// recycled arena to any (graph, schedule, plan, device), because sweep
// cells change workloads run to run while a serving process replays
// the same few. Results are byte-identical to a fresh New(...).Run().
//
// A SimPool is safe for concurrent Get/Put; each borrowed Simulator is
// still single-goroutine, like the real runtime's scheduling thread.
type SimPool struct {
	// Obs, when set before use, receives tsplit_simpool_gets_total and
	// tsplit_simpool_reuse_hits_total counters — the serve layer's
	// warm-arena hit-rate signal.
	Obs obs.Recorder

	mu   sync.Mutex
	free []*Simulator // lint:guardedby mu
}

// NewSimPool returns an empty pool.
func NewSimPool() *SimPool { return &SimPool{} }

// Get returns a Simulator targeted at the given workload, recycling a
// pooled arena when one is free. The caller runs it (Run, PredictPeak)
// on one goroutine and should Put it back when done.
func (p *SimPool) Get(g *graph.Graph, sched *graph.Schedule, lv *graph.Liveness, plan *core.Plan, dev device.Device, opts Options) *Simulator {
	if opts.Capacity == 0 {
		opts.Capacity = dev.MemBytes
	}
	p.mu.Lock()
	var s *Simulator
	if n := len(p.free); n > 0 {
		s = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	}
	p.mu.Unlock()
	reused := s != nil
	if s == nil {
		s = &Simulator{Cost: costmodel.New(dev)}
	} else if s.Cost.Dev != dev {
		s.Cost = costmodel.New(dev)
	}
	s.G, s.Sched, s.Lv, s.Plan, s.Dev, s.Opts = g, sched, lv, plan, dev, opts
	if rec := p.Obs; rec != nil {
		rec.Add("tsplit_simpool_gets_total", 1)
		if reused {
			rec.Add("tsplit_simpool_reuse_hits_total", 1)
		}
	}
	return s
}

// Put returns a Simulator to the pool, severing all run state the
// borrower owns — the plan, fault injector, observation sinks, result
// (and its timeline), and every pointer captured from them — while
// keeping the warm identity: the graph/schedule/liveness (so the
// op-time cache hits when the same workload returns, the serve
// layer's case) and all recycled arena storage.
func (p *SimPool) Put(s *Simulator) {
	if s == nil {
		return
	}
	s.Plan = nil
	s.Opts = Options{}
	s.inj = nil
	s.noise, s.bwMul = nil, nil
	clear(s.hogs)
	s.hogs = s.hogs[:0]
	clear(s.tplans)
	clear(s.splitList)
	s.splitList = s.splitList[:0]
	s.planIDs = s.planIDs[:0]
	clear(s.prefTensors)
	clear(s.lruCache)
	s.lruCache = s.lruCache[:0]
	s.lruHead = 0
	clear(s.pending)
	s.pending = s.pending[:0]
	clear(s.locals)
	s.locals = s.locals[:0]
	clear(s.carvedIns)
	s.carvedIns = s.carvedIns[:0]
	s.res = Result{}
	p.mu.Lock()
	p.free = append(p.free, s)
	p.mu.Unlock()
}

// Size reports how many simulators are currently pooled.
func (p *SimPool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}
