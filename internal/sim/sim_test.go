package sim

import (
	"errors"
	"math"
	"testing"

	"tsplit/internal/baselines"
	"tsplit/internal/core"
	"tsplit/internal/device"
	"tsplit/internal/graph"
	"tsplit/internal/models"
	"tsplit/internal/profiler"
)

type bed struct {
	g     *graph.Graph
	sched *graph.Schedule
	lv    *graph.Liveness
	prof  *profiler.Profile
	dev   device.Device
}

func mkbed(t *testing.T, model string, cfg models.Config) *bed {
	t.Helper()
	g, err := models.Build(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := graph.BuildSchedule(g)
	if err != nil {
		t.Fatal(err)
	}
	lv := graph.AnalyzeLiveness(g, sched)
	return &bed{g, sched, lv, profiler.New(device.TitanRTX, sched), device.TitanRTX}
}

func (b *bed) baseline(t *testing.T, name string) *core.Plan {
	t.Helper()
	p, err := baselines.Registry[name](baselines.Inputs{G: b.g, Sched: b.sched, Lv: b.lv, Prof: b.prof, Dev: b.dev})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func (b *bed) run(t *testing.T, plan *core.Plan, opts Options) Result {
	t.Helper()
	r, err := New(b.g, b.sched, b.lv, plan, b.dev, opts).Run()
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	return r
}

func TestBaseRunMatchesProfile(t *testing.T) {
	b := mkbed(t, "vgg16", models.Config{BatchSize: 16})
	r := b.run(t, b.baseline(t, "base"), Options{})
	if math.Abs(r.Time-b.prof.Total()) > 1e-9 {
		t.Fatalf("base time %g != profile %g", r.Time, b.prof.Total())
	}
	if r.SwapOutBytes != 0 || r.SwapInBytes != 0 || r.RecomputedOps != 0 {
		t.Fatal("base must not move memory")
	}
	if r.PeakBytes <= 0 {
		t.Fatal("no peak recorded")
	}
	if r.PCIeUtilization != 0 {
		t.Fatal("base must not use PCIe")
	}
}

func TestBaseOOMsOverCapacity(t *testing.T) {
	b := mkbed(t, "vgg16", models.Config{BatchSize: 16})
	_, err := New(b.g, b.sched, b.lv, b.baseline(t, "base"), b.dev,
		Options{Capacity: b.lv.Peak / 2}).Run()
	if !errors.Is(err, ErrOOM) {
		t.Fatalf("want ErrOOM, got %v", err)
	}
}

func TestPeakNeverExceedsCapacity(t *testing.T) {
	b := mkbed(t, "vgg16", models.Config{BatchSize: 64})
	for _, pol := range []string{"vdnn-all", "checkpoints", "superneurons"} {
		plan := b.baseline(t, pol)
		r, err := New(b.g, b.sched, b.lv, plan, b.dev, Options{}).Run()
		if err != nil {
			continue
		}
		if r.PeakBytes > b.dev.MemBytes {
			t.Fatalf("%s peak %d exceeds device capacity", pol, r.PeakBytes)
		}
	}
}

func TestSwapVolumesBalance(t *testing.T) {
	b := mkbed(t, "vgg16", models.Config{BatchSize: 64})
	r := b.run(t, b.baseline(t, "vdnn-all"), Options{})
	if r.SwapOutBytes == 0 {
		t.Fatal("vdnn-all must swap")
	}
	// Everything swapped out for a backward use comes back; planned
	// input tensors additionally stage in from the host without a
	// prior swap-out.
	var staged int64
	for _, in := range b.g.Inputs {
		staged += in.Bytes()
	}
	if r.SwapInBytes == 0 || r.SwapInBytes > r.SwapOutBytes+staged {
		t.Fatalf("swap volumes out=%d in=%d staged=%d implausible", r.SwapOutBytes, r.SwapInBytes, staged)
	}
	if r.D2HBusy <= 0 || r.H2DBusy <= 0 || r.PCIeUtilization <= 0 {
		t.Fatal("PCIe busy times not recorded")
	}
}

func TestCheckpointsRecomputeCosts(t *testing.T) {
	b := mkbed(t, "vgg16", models.Config{BatchSize: 64})
	base := b.run(t, b.baseline(t, "base"), Options{})
	ckpt := b.run(t, b.baseline(t, "checkpoints"), Options{})
	if ckpt.RecomputedOps == 0 {
		t.Fatal("checkpoints must recompute")
	}
	if ckpt.Time <= base.Time {
		t.Fatal("recompute must cost time")
	}
	if ckpt.PeakBytes >= base.PeakBytes {
		t.Fatal("recompute must save memory")
	}
	if ckpt.RecomputeTime <= 0 {
		t.Fatal("recompute time not recorded")
	}
}

func TestRecomputeStrategies(t *testing.T) {
	b := mkbed(t, "vgg16", models.Config{BatchSize: 48})
	plan := b.baseline(t, "checkpoints")
	mc := b.run(t, plan, Options{Recompute: MemoryCentric})
	sc := b.run(t, plan, Options{Recompute: SpeedCentric})
	// Speed-centric re-executes no chain twice: fewer recomputed ops,
	// more memory.
	if sc.RecomputedOps > mc.RecomputedOps {
		t.Fatalf("speed-centric recomputed %d ops, memory-centric %d", sc.RecomputedOps, mc.RecomputedOps)
	}
	if sc.PeakBytes < mc.PeakBytes {
		t.Fatal("speed-centric should not use less memory")
	}
	lru := b.run(t, plan, Options{Recompute: LRURecompute})
	if lru.RecomputedOps > mc.RecomputedOps {
		t.Fatal("LRU should not recompute more than memory-centric")
	}
}

func TestTSplitPlanRunsAndIsFast(t *testing.T) {
	b := mkbed(t, "vgg16", models.Config{BatchSize: 128})
	plan, err := core.NewPlanner(b.g, b.sched, b.lv, b.prof, b.dev, core.Options{}).Plan()
	if err != nil {
		t.Fatal(err)
	}
	r := b.run(t, plan, Options{Recompute: LRURecompute})
	vdnn := b.run(t, b.baseline(t, "vdnn-all"), Options{})
	if r.Time >= vdnn.Time {
		t.Fatalf("tsplit (%.3fs) should beat vdnn-all (%.3fs) at this scale", r.Time, vdnn.Time)
	}
	if r.PeakBytes > b.dev.MemBytes {
		t.Fatal("over capacity")
	}
}

func TestZeroOffloadMovesOptimizerOffDevice(t *testing.T) {
	b := mkbed(t, "resnet50", models.Config{BatchSize: 16, Optimizer: graph.Adam})
	base := b.run(t, b.baseline(t, "base"), Options{})
	zo := b.run(t, b.baseline(t, "zero-offload"), Options{})
	if zo.PeakBytes >= base.PeakBytes {
		t.Fatal("zero-offload must reduce the resident footprint")
	}
	if zo.SwapOutBytes == 0 {
		t.Fatal("zero-offload must stream gradients out")
	}
}

func TestFairScaleShardsParams(t *testing.T) {
	b := mkbed(t, "vgg16", models.Config{BatchSize: 16, Optimizer: graph.Adam})
	fs := b.run(t, b.baseline(t, "fairscale-offload"), Options{})
	base := b.run(t, b.baseline(t, "base"), Options{})
	if fs.PeakBytes >= base.PeakBytes {
		t.Fatal("fairscale must reduce peak")
	}
	if fs.Time <= base.Time {
		t.Fatal("fairscale staging must cost time")
	}
}

func TestTimelineCollection(t *testing.T) {
	b := mkbed(t, "vgg16", models.Config{BatchSize: 16})
	r := b.run(t, b.baseline(t, "base"), Options{CollectTimeline: true})
	if len(r.Timeline) != len(b.sched.Ops) {
		t.Fatalf("timeline has %d points for %d ops", len(r.Timeline), len(b.sched.Ops))
	}
	last := 0.0
	for _, p := range r.Timeline {
		if p.End < p.Start || p.Start < last {
			t.Fatalf("timeline not monotone at op %d", p.OpIndex)
		}
		last = p.Start
	}
}

func TestThroughputHelper(t *testing.T) {
	r := Result{Time: 2}
	if r.Throughput(100) != 50 {
		t.Fatal("throughput math wrong")
	}
	if (Result{}).Throughput(10) != 0 {
		t.Fatal("zero-time throughput must be 0")
	}
}

func TestSplitExecutionReducesPeak(t *testing.T) {
	b := mkbed(t, "vgg16", models.Config{BatchSize: 64})
	// A plan with splits only gets exercised under tight capacity.
	cap := b.lv.Resident + b.lv.Resident/2 + (3 << 30)
	plan, err := core.NewPlanner(b.g, b.sched, b.lv, b.prof, b.dev,
		core.Options{Capacity: cap, FragmentationReserve: -1}).Plan()
	if err != nil {
		t.Skip("planner cannot reach this capacity:", err)
	}
	if len(plan.Splits) == 0 {
		t.Skip("no splits planned")
	}
	r, err := New(b.g, b.sched, b.lv, plan, b.dev, Options{Recompute: LRURecompute}).Run()
	if err != nil {
		t.Fatalf("split plan does not execute: %v", err)
	}
	base := b.run(t, b.baseline(t, "base"), Options{})
	if r.PeakBytes >= base.PeakBytes {
		t.Fatal("split execution did not reduce the peak")
	}
}

func TestCompactionAccounting(t *testing.T) {
	b := mkbed(t, "transformer", models.Config{BatchSize: 200})
	plan, err := core.NewPlanner(b.g, b.sched, b.lv, b.prof, b.dev, core.Options{}).Plan()
	if err != nil {
		t.Skip("plan failed:", err)
	}
	r, err := New(b.g, b.sched, b.lv, plan, b.dev, Options{Recompute: LRURecompute}).Run()
	if err != nil {
		t.Skip("sim failed:", err)
	}
	if r.Compactions > 0 && r.MovedBytes == 0 {
		t.Fatal("compactions recorded without moved bytes")
	}
}
