package models

import (
	"fmt"

	"tsplit/internal/graph"
	"tsplit/internal/tensor"
)

func init() {
	register("inceptionv4", buildInceptionV4)
}

// incCtx threads the graph and scale config through the many helper
// blocks of Inception-V4.
type incCtx struct {
	g   *graph.Graph
	cfg Config
}

// convBN is Inception's conv→BN→ReLU unit.
func (c *incCtx) convBN(name string, x *graph.Tensor, outC, kh, kw, sh, sw, ph, pw int) *graph.Tensor {
	y := c.g.Conv2DRect(name, x, c.cfg.scaled(outC), kh, kw, sh, sw, ph, pw)
	y = c.g.BatchNorm(name+".bn", y)
	return c.g.ReLU(name+".relu", y)
}

func (c *incCtx) conv(name string, x *graph.Tensor, outC, k, s, p int) *graph.Tensor {
	return c.convBN(name, x, outC, k, k, s, s, p, p)
}

// stem is the Inception-V4 stem: 299×299×3 → 35×35×384.
func (c *incCtx) stem(x *graph.Tensor) *graph.Tensor {
	g := c.g
	x = c.conv("stem.c1", x, 32, 3, 2, 0) // 149
	x = c.conv("stem.c2", x, 32, 3, 1, 0) // 147
	x = c.conv("stem.c3", x, 64, 3, 1, 1) // 147

	p1 := g.MaxPool("stem.p4a", x, 3, 2, 0)
	c1 := c.conv("stem.c4b", x, 96, 3, 2, 0)
	x = g.Concat("stem.cat4", 1, p1, c1) // 73×73×160

	b1 := c.conv("stem.c5a1", x, 64, 1, 1, 0)
	b1 = c.conv("stem.c5a2", b1, 96, 3, 1, 0)
	b2 := c.conv("stem.c5b1", x, 64, 1, 1, 0)
	b2 = c.convBN("stem.c5b2", b2, 64, 1, 7, 1, 1, 0, 3)
	b2 = c.convBN("stem.c5b3", b2, 64, 7, 1, 1, 1, 3, 0)
	b2 = c.conv("stem.c5b4", b2, 96, 3, 1, 0)
	x = g.Concat("stem.cat5", 1, b1, b2) // 71×71×192

	c2 := c.conv("stem.c6a", x, 192, 3, 2, 0)
	p2 := g.MaxPool("stem.p6b", x, 3, 2, 0)
	return g.Concat("stem.cat6", 1, c2, p2) // 35×35×384
}

// inceptionA: 35×35 block, output 384 channels.
func (c *incCtx) inceptionA(name string, x *graph.Tensor) *graph.Tensor {
	g := c.g
	b1 := g.AvgPool(name+".b1.pool", x, 3, 1, 1)
	b1 = c.conv(name+".b1.c", b1, 96, 1, 1, 0)
	b2 := c.conv(name+".b2.c", x, 96, 1, 1, 0)
	b3 := c.conv(name+".b3.c1", x, 64, 1, 1, 0)
	b3 = c.conv(name+".b3.c2", b3, 96, 3, 1, 1)
	b4 := c.conv(name+".b4.c1", x, 64, 1, 1, 0)
	b4 = c.conv(name+".b4.c2", b4, 96, 3, 1, 1)
	b4 = c.conv(name+".b4.c3", b4, 96, 3, 1, 1)
	return g.Concat(name+".cat", 1, b1, b2, b3, b4)
}

// reductionA: 35×35×384 → 17×17×1024.
func (c *incCtx) reductionA(name string, x *graph.Tensor) *graph.Tensor {
	g := c.g
	b1 := g.MaxPool(name+".b1.pool", x, 3, 2, 0)
	b2 := c.conv(name+".b2.c", x, 384, 3, 2, 0)
	b3 := c.conv(name+".b3.c1", x, 192, 1, 1, 0)
	b3 = c.conv(name+".b3.c2", b3, 224, 3, 1, 1)
	b3 = c.conv(name+".b3.c3", b3, 256, 3, 2, 0)
	return g.Concat(name+".cat", 1, b1, b2, b3)
}

// inceptionB: 17×17 block, output 1024 channels.
func (c *incCtx) inceptionB(name string, x *graph.Tensor) *graph.Tensor {
	g := c.g
	b1 := g.AvgPool(name+".b1.pool", x, 3, 1, 1)
	b1 = c.conv(name+".b1.c", b1, 128, 1, 1, 0)
	b2 := c.conv(name+".b2.c", x, 384, 1, 1, 0)
	b3 := c.conv(name+".b3.c1", x, 192, 1, 1, 0)
	b3 = c.convBN(name+".b3.c2", b3, 224, 1, 7, 1, 1, 0, 3)
	b3 = c.convBN(name+".b3.c3", b3, 256, 7, 1, 1, 1, 3, 0)
	b4 := c.conv(name+".b4.c1", x, 192, 1, 1, 0)
	b4 = c.convBN(name+".b4.c2", b4, 192, 1, 7, 1, 1, 0, 3)
	b4 = c.convBN(name+".b4.c3", b4, 224, 7, 1, 1, 1, 3, 0)
	b4 = c.convBN(name+".b4.c4", b4, 224, 1, 7, 1, 1, 0, 3)
	b4 = c.convBN(name+".b4.c5", b4, 256, 7, 1, 1, 1, 3, 0)
	return g.Concat(name+".cat", 1, b1, b2, b3, b4)
}

// reductionB: 17×17×1024 → 8×8×1536.
func (c *incCtx) reductionB(name string, x *graph.Tensor) *graph.Tensor {
	g := c.g
	b1 := g.MaxPool(name+".b1.pool", x, 3, 2, 0)
	b2 := c.conv(name+".b2.c1", x, 192, 1, 1, 0)
	b2 = c.conv(name+".b2.c2", b2, 192, 3, 2, 0)
	b3 := c.conv(name+".b3.c1", x, 256, 1, 1, 0)
	b3 = c.convBN(name+".b3.c2", b3, 256, 1, 7, 1, 1, 0, 3)
	b3 = c.convBN(name+".b3.c3", b3, 320, 7, 1, 1, 1, 3, 0)
	b3 = c.conv(name+".b3.c4", b3, 320, 3, 2, 0)
	return g.Concat(name+".cat", 1, b1, b2, b3)
}

// inceptionC: 8×8 block, output 1536 channels.
func (c *incCtx) inceptionC(name string, x *graph.Tensor) *graph.Tensor {
	g := c.g
	b1 := g.AvgPool(name+".b1.pool", x, 3, 1, 1)
	b1 = c.conv(name+".b1.c", b1, 256, 1, 1, 0)
	b2 := c.conv(name+".b2.c", x, 256, 1, 1, 0)
	b3 := c.conv(name+".b3.c1", x, 384, 1, 1, 0)
	b3a := c.convBN(name+".b3.c2a", b3, 256, 1, 3, 1, 1, 0, 1)
	b3b := c.convBN(name+".b3.c2b", b3, 256, 3, 1, 1, 1, 1, 0)
	b4 := c.conv(name+".b4.c1", x, 384, 1, 1, 0)
	b4 = c.convBN(name+".b4.c2", b4, 448, 1, 3, 1, 1, 0, 1)
	b4 = c.convBN(name+".b4.c3", b4, 512, 3, 1, 1, 1, 1, 0)
	b4a := c.convBN(name+".b4.c4a", b4, 256, 3, 1, 1, 1, 1, 0)
	b4b := c.convBN(name+".b4.c4b", b4, 256, 1, 3, 1, 1, 0, 1)
	return g.Concat(name+".cat", 1, b1, b2, b3a, b3b, b4a, b4b)
}

// buildInceptionV4 constructs Inception-V4 (Szegedy et al. 2016):
// stem, 4× Inception-A, Reduction-A, 7× Inception-B, Reduction-B,
// 3× Inception-C, global average pooling, dropout, classifier. The
// many concatenation branches make it the model with the largest
// sample-scale headroom for TSPLIT in the paper's Table IV (38×).
func buildInceptionV4(cfg Config) (*graph.Graph, error) {
	cfg = cfg.withDefaults()
	if cfg.ImageSize == 224 {
		cfg.ImageSize = 299 // canonical Inception input
	}
	g := graph.New()
	c := &incCtx{g: g, cfg: cfg}
	x := g.Input("images", tensor.NewShape(cfg.BatchSize, 3, cfg.ImageSize, cfg.ImageSize), tensor.Float32)
	labels := g.Input("labels", tensor.NewShape(cfg.BatchSize), tensor.Int32)

	x = c.stem(x)
	for i := 0; i < 4; i++ {
		x = c.inceptionA(fmt.Sprintf("incA%d", i+1), x)
	}
	x = c.reductionA("redA", x)
	for i := 0; i < 7; i++ {
		x = c.inceptionB(fmt.Sprintf("incB%d", i+1), x)
	}
	x = c.reductionB("redB", x)
	for i := 0; i < 3; i++ {
		x = c.inceptionC(fmt.Sprintf("incC%d", i+1), x)
	}

	x = g.AvgPool("gap", x, x.Shape[2], 1, 0)
	n := x.Shape[0]
	flat := g.Reshape("flatten", x, tensor.NewShape(n, int(x.Shape.NumElements())/n))
	flat = g.Dropout("drop", flat, 0.8)
	logits := g.Dense("fc", flat, cfg.NumClasses)
	g.CrossEntropyLoss("loss", logits, labels)
	return finish(g, cfg)
}
