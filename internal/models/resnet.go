package models

import (
	"fmt"

	"tsplit/internal/graph"
	"tsplit/internal/tensor"
)

func init() {
	register("resnet50", func(cfg Config) (*graph.Graph, error) {
		return buildResNet(cfg, []int{3, 4, 6, 3})
	})
	register("resnet101", func(cfg Config) (*graph.Graph, error) {
		return buildResNet(cfg, []int{3, 4, 23, 3})
	})
}

// buildResNet constructs the bottleneck ResNet family (He et al.):
// a 7×7/2 stem, four stages of bottleneck blocks (1×1 reduce, 3×3,
// 1×1 expand ×4) with projection shortcuts at stage boundaries, global
// average pooling and a linear classifier. The multi-branch topology
// is what gives TSPLIT its largest sample-scale gains in Table IV
// ("due to the complexity of multi-branch model architecture").
func buildResNet(cfg Config, stages []int) (*graph.Graph, error) {
	cfg = cfg.withDefaults()
	g := graph.New()
	x := g.Input("images", tensor.NewShape(cfg.BatchSize, 3, cfg.ImageSize, cfg.ImageSize), tensor.Float32)
	labels := g.Input("labels", tensor.NewShape(cfg.BatchSize), tensor.Int32)

	x = g.Conv2D("stem.conv", x, cfg.scaled(64), 7, 2, 3)
	x = g.BatchNorm("stem.bn", x)
	x = g.ReLU("stem.relu", x)
	x = g.MaxPool("stem.pool", x, 3, 2, 1)

	baseWidth := []int{64, 128, 256, 512}
	const expansion = 4
	for s, blocks := range stages {
		width := cfg.scaled(baseWidth[s])
		out := width * expansion
		for b := 0; b < blocks; b++ {
			name := fmt.Sprintf("s%d.b%d", s+1, b+1)
			stride := 1
			if b == 0 && s > 0 {
				stride = 2
			}
			shortcut := x
			if b == 0 {
				// Projection shortcut matches channels (and stride).
				shortcut = g.BatchNorm(name+".proj.bn",
					g.Conv2D(name+".proj", x, out, 1, stride, 0))
			}
			y := g.Conv2D(name+".conv1", x, width, 1, 1, 0)
			y = g.BatchNorm(name+".bn1", y)
			y = g.ReLU(name+".relu1", y)
			y = g.Conv2D(name+".conv2", y, width, 3, stride, 1)
			y = g.BatchNorm(name+".bn2", y)
			y = g.ReLU(name+".relu2", y)
			y = g.Conv2D(name+".conv3", y, out, 1, 1, 0)
			y = g.BatchNorm(name+".bn3", y)
			y = g.Add(name+".residual", y, shortcut)
			x = g.ReLU(name+".relu3", y)
		}
	}

	// Global average pooling over the remaining spatial extent.
	x = g.AvgPool("gap", x, x.Shape[2], 1, 0)
	n := x.Shape[0]
	flat := g.Reshape("flatten", x, tensor.NewShape(n, int(x.Shape.NumElements())/n))
	logits := g.Dense("fc", flat, cfg.NumClasses)
	g.CrossEntropyLoss("loss", logits, labels)
	return finish(g, cfg)
}
