package models

import (
	"testing"

	"tsplit/internal/graph"
	"tsplit/internal/tensor"
)

func build(t *testing.T, name string, cfg Config) *graph.Graph {
	t.Helper()
	g, err := Build(name, cfg)
	if err != nil {
		t.Fatalf("Build(%s): %v", name, err)
	}
	return g
}

func peakGiB(t *testing.T, g *graph.Graph) float64 {
	t.Helper()
	s, err := graph.BuildSchedule(g)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	lv := graph.AnalyzeLiveness(g, s)
	return float64(lv.Peak) / (1 << 30)
}

func TestAllModelsBuildAndSchedule(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			g := build(t, name, Config{BatchSize: 8})
			if g.Loss == nil {
				t.Fatal("no loss set")
			}
			s, err := graph.BuildSchedule(g)
			if err != nil {
				t.Fatal(err)
			}
			if len(s.Ops) != len(g.Ops) {
				t.Fatalf("schedule has %d ops, graph has %d", len(s.Ops), len(g.Ops))
			}
			// Every op must come after its producers.
			for _, op := range g.Ops {
				for _, in := range op.Inputs {
					if p := in.Producer; p != nil && s.Index[p] >= s.Index[op] {
						t.Fatalf("op %s scheduled before producer %s", op, p)
					}
				}
			}
		})
	}
}

func TestModelParamCounts(t *testing.T) {
	// Sanity-check parameter counts against the published sizes
	// (within 15%: our graphs include BN/LN affine params etc.).
	cases := []struct {
		model  string
		cfg    Config
		params float64 // millions
	}{
		{"vgg16", Config{BatchSize: 1}, 138},
		{"vgg19", Config{BatchSize: 1}, 144},
		{"resnet50", Config{BatchSize: 1}, 25.6},
		{"resnet101", Config{BatchSize: 1}, 44.5},
		{"inceptionv4", Config{BatchSize: 1}, 42.7},
		{"bert-large", Config{BatchSize: 1}, 335},
	}
	for _, c := range cases {
		g := build(t, c.model, c.cfg)
		var n int64
		for _, p := range g.Params {
			n += p.Shape.NumElements()
		}
		got := float64(n) / 1e6
		if got < c.params*0.85 || got > c.params*1.15 {
			t.Errorf("%s: %.1fM params, want ~%.1fM", c.model, got, c.params)
		}
	}
}

func TestVGG16MemoryGrowsWithBatch(t *testing.T) {
	small := peakGiB(t, build(t, "vgg16", Config{BatchSize: 4}))
	large := peakGiB(t, build(t, "vgg16", Config{BatchSize: 64}))
	if large <= small {
		t.Fatalf("peak should grow with batch: %f vs %f", small, large)
	}
	// VGG-16 batch 64 training footprint is on the order of 10+ GiB.
	if large < 5 || large > 60 {
		t.Errorf("vgg16 batch-64 peak %.1f GiB implausible", large)
	}
}

func TestParamScaleGrowsParams(t *testing.T) {
	base := build(t, "resnet50", Config{BatchSize: 2, ParamScale: 1})
	wide := build(t, "resnet50", Config{BatchSize: 2, ParamScale: 2})
	var nb, nw int64
	for _, p := range base.Params {
		nb += p.Shape.NumElements()
	}
	for _, p := range wide.Params {
		nw += p.Shape.NumElements()
	}
	if nw < 3*nb {
		t.Fatalf("2x width should give ~4x params: %d vs %d", nb, nw)
	}
}

func TestTransformerHasNoConv(t *testing.T) {
	g := build(t, "transformer", Config{BatchSize: 2, SeqLen: 32})
	for _, op := range g.Ops {
		if op.Kind == graph.Conv2D {
			t.Fatalf("transformer graph contains conv: %s", op)
		}
	}
}

func TestGradientsCoverParams(t *testing.T) {
	g := build(t, "vgg16", Config{BatchSize: 2})
	for _, p := range g.Params {
		if gt := g.GradTensor(p); gt == nil {
			t.Errorf("param %s has no gradient", p.Name)
		} else if gt.Kind != tensor.ParamGrad {
			t.Errorf("param %s gradient has kind %v", p.Name, gt.Kind)
		}
	}
}

func TestForwardOnlySkipsBackward(t *testing.T) {
	g := build(t, "resnet50", Config{BatchSize: 2, ForwardOnly: true})
	for _, op := range g.Ops {
		if op.Phase != graph.Forward {
			t.Fatalf("forward-only graph has %v op %s", op.Phase, op)
		}
	}
}

func TestUnknownModel(t *testing.T) {
	if _, err := Build("nope", Config{}); err == nil {
		t.Fatal("expected error for unknown model")
	}
}
