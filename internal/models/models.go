// Package models builds the dataflow graphs of the paper's six
// evaluation workloads (Sec. VI-A): VGG-16, VGG-19, ResNet-50,
// ResNet-101, Inception-V4 (ImageNet-shaped inputs) and a
// Transformer encoder (BERT-style, IWSLT-shaped inputs).
//
// Every model is parameterized along the two scaling axes of the
// paper's evaluation: the sample scale (batch size / number of
// sequences) and the parameter scale (a multiplier on convolution
// channels or Transformer hidden size — "if the original channel size
// is c1 and the parameter scale number is k, it has c1·k channels
// after scaling", Sec. VI-B).
package models

import (
	"fmt"
	"math"
	"sort"

	"tsplit/internal/graph"
)

// Config selects the workload scale.
type Config struct {
	// BatchSize is the sample-dimension scale: images per batch for
	// CNNs, sequences per batch for the Transformer.
	BatchSize int
	// ParamScale multiplies channel counts / hidden sizes (≥ values
	// below 1 shrink the model; the paper scales upward).
	ParamScale float64
	// ImageSize is the square input resolution for CNNs (default 224;
	// Inception-V4 canonically uses 299 but the paper benchmarks all
	// CNNs on ImageNet crops — we default Inception to 299).
	ImageSize int
	// SeqLen is the token length for the Transformer (default 128).
	SeqLen int
	// NumClasses for CNN heads (default 1000).
	NumClasses int
	// VocabSize for the Transformer head (default 30522, BERT's vocab).
	VocabSize int
	// Optimizer chooses the update rule appended to the graph
	// (default Momentum; the offload experiments use Adam).
	Optimizer graph.Optimizer
	// ForwardOnly skips backward/update generation (used for inference
	// footprints and a few unit tests).
	ForwardOnly bool

	transformerDims
}

func (c Config) withDefaults() Config {
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.ParamScale == 0 {
		c.ParamScale = 1
	}
	if c.ImageSize == 0 {
		c.ImageSize = 224
	}
	if c.SeqLen == 0 {
		c.SeqLen = 128
	}
	if c.NumClasses == 0 {
		c.NumClasses = 1000
	}
	if c.VocabSize == 0 {
		c.VocabSize = 30522
	}
	return c
}

// scaled applies the parameter-scale multiplier to a channel count.
func (c Config) scaled(channels int) int {
	n := int(math.Round(float64(channels) * c.ParamScale))
	if n < 1 {
		n = 1
	}
	return n
}

// Builder constructs a training graph for a config.
type Builder func(Config) (*graph.Graph, error)

var registry = map[string]Builder{}

func register(name string, b Builder) { registry[name] = b }

// Build constructs the named model. Known names: vgg16, vgg19,
// resnet50, resnet101, inceptionv4, transformer.
func Build(name string, cfg Config) (*graph.Graph, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown model %q (have %v)", name, Names())
	}
	return b(cfg)
}

// Names lists the registered models in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// finish appends backward and optimizer ops unless ForwardOnly.
func finish(g *graph.Graph, cfg Config) (*graph.Graph, error) {
	if cfg.ForwardOnly {
		return g, nil
	}
	if err := g.Differentiate(cfg.Optimizer); err != nil {
		return nil, err
	}
	return g, nil
}
