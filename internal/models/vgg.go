package models

import (
	"fmt"

	"tsplit/internal/graph"
	"tsplit/internal/tensor"
)

func init() {
	register("vgg16", func(cfg Config) (*graph.Graph, error) { return buildVGG(cfg, vgg16Blocks) })
	register("vgg19", func(cfg Config) (*graph.Graph, error) { return buildVGG(cfg, vgg19Blocks) })
}

// Per-block convolution counts; channel plans are shared.
var (
	vgg16Blocks = []int{2, 2, 3, 3, 3}
	vgg19Blocks = []int{2, 2, 4, 4, 4}
	vggChannels = []int{64, 128, 256, 512, 512}
)

// buildVGG constructs VGG-16/19 (Simonyan & Zisserman): five conv
// blocks of 3×3 convolutions separated by 2×2 max-pooling, then three
// fully-connected layers. The early blocks produce the huge
// 64×224×224 / 128×112×112 feature maps that are the memory
// bottleneck the paper's Fig. 2(a) shows for SuperNeurons.
func buildVGG(cfg Config, blocks []int) (*graph.Graph, error) {
	cfg = cfg.withDefaults()
	g := graph.New()
	x := g.Input("images", tensor.NewShape(cfg.BatchSize, 3, cfg.ImageSize, cfg.ImageSize), tensor.Float32)
	labels := g.Input("labels", tensor.NewShape(cfg.BatchSize), tensor.Int32)

	for b, convs := range blocks {
		ch := cfg.scaled(vggChannels[b])
		for c := 0; c < convs; c++ {
			name := fmt.Sprintf("b%d.conv%d", b+1, c+1)
			x = g.Conv2D(name, x, ch, 3, 1, 1)
			x = g.ReLU(name+".relu", x)
		}
		x = g.MaxPool(fmt.Sprintf("b%d.pool", b+1), x, 2, 2, 0)
	}

	// Classifier: flatten, two hidden FC layers, output FC.
	n := x.Shape[0]
	flat := g.Reshape("flatten", x, tensor.NewShape(n, int(x.Shape.NumElements())/n))
	fcDim := cfg.scaled(4096)
	h := g.ReLU("fc1.relu", g.Dense("fc1", flat, fcDim))
	h = g.Dropout("fc1.drop", h, 0.5)
	h = g.ReLU("fc2.relu", g.Dense("fc2", h, fcDim))
	h = g.Dropout("fc2.drop", h, 0.5)
	logits := g.Dense("fc3", h, cfg.NumClasses)
	g.CrossEntropyLoss("loss", logits, labels)
	return finish(g, cfg)
}
