package models

import (
	"fmt"
	"math"

	"tsplit/internal/graph"
	"tsplit/internal/tensor"
)

func init() {
	register("transformer", buildTransformer)
	register("bert-large", func(cfg Config) (*graph.Graph, error) {
		cfg.transformerDepth = 24
		cfg.transformerHidden = 1024
		cfg.transformerHeads = 16
		return buildTransformer(cfg)
	})
}

// Transformer-specific knobs with BERT-ish defaults. Unexported: set
// through the named registry entries or left at defaults; ParamScale
// multiplies the hidden size (the paper's Transformer parameter-scale
// axis, Fig. 1: "the parameter scale refers to hidden size").
type transformerDims struct {
	transformerDepth  int
	transformerHidden int
	transformerHeads  int
}

func (c Config) transformerConfig() (depth, hidden, heads, ffn int) {
	depth = c.transformerDepth
	if depth == 0 {
		depth = 12
	}
	hidden = c.transformerHidden
	if hidden == 0 {
		hidden = 768
	}
	heads = c.transformerHeads
	if heads == 0 {
		heads = hidden / 64
	}
	// Parameter scaling: multiply hidden, keep it a multiple of heads.
	hidden = int(math.Round(float64(hidden) * c.ParamScale))
	if hidden < heads {
		hidden = heads
	}
	hidden -= hidden % heads
	return depth, hidden, heads, 4 * hidden
}

// buildTransformer constructs an encoder-only Transformer (BERT-style)
// with token embedding, depth× (multi-head self-attention + FFN)
// blocks with residual connections and layer norm, and a tied
// vocabulary projection trained with token-level cross entropy. The
// attention score tensors ([N·heads, S, S]) and the vocabulary logits
// ([N·S, vocab]) are the >500 MB tensors of the paper's Table II that
// motivate splitting; the absence of convolutions is why vDNN-conv and
// SuperNeurons show × for this model in Tables IV/V.
func buildTransformer(cfg Config) (*graph.Graph, error) {
	cfg = cfg.withDefaults()
	depth, hidden, heads, ffn := cfg.transformerConfig()
	n, s := cfg.BatchSize, cfg.SeqLen
	dh := hidden / heads

	g := graph.New()
	ids := g.Input("ids", tensor.NewShape(n, s), tensor.Int32)
	labels := g.Input("labels", tensor.NewShape(n*s), tensor.Int32)

	x := g.EmbeddingLookup("embed", ids, cfg.VocabSize, hidden)
	x = g.LayerNorm("embed.ln", x)

	for l := 0; l < depth; l++ {
		p := fmt.Sprintf("l%d", l+1)
		// --- multi-head self-attention ---
		q := g.DenseSeq(p+".q", x, hidden)
		k := g.DenseSeq(p+".k", x, hidden)
		v := g.DenseSeq(p+".v", x, hidden)
		qh := g.Reshape(p+".qh", q, tensor.NewShape(n*heads, s, dh))
		kh := g.Reshape(p+".kh", k, tensor.NewShape(n*heads, s, dh))
		vh := g.Reshape(p+".vh", v, tensor.NewShape(n*heads, s, dh))
		kt := g.TransposeLast(p+".kt", kh)
		scores := g.MatMul3(p+".scores", qh, kt)
		scaled := g.Scale(p+".scale", scores, 1/math.Sqrt(float64(dh)))
		probs := g.Softmax(p+".softmax", scaled, 2)
		probs = g.Dropout(p+".attndrop", probs, 0.9)
		ctx := g.MatMul3(p+".ctx", probs, vh)
		merged := g.Reshape(p+".merge", ctx, tensor.NewShape(n, s, hidden))
		attnOut := g.DenseSeq(p+".proj", merged, hidden)
		x = g.LayerNorm(p+".ln1", g.Add(p+".res1", x, attnOut))
		// --- position-wise feed-forward ---
		h := g.DenseSeq(p+".ffn1", x, ffn)
		h = g.GELU(p+".gelu", h)
		h = g.DenseSeq(p+".ffn2", h, hidden)
		x = g.LayerNorm(p+".ln2", g.Add(p+".res2", x, h))
	}

	flat := g.Reshape("head.flat", x, tensor.NewShape(n*s, hidden))
	logits := g.Dense("head.vocab", flat, cfg.VocabSize)
	g.CrossEntropyLoss("loss", logits, labels)
	return finish(g, cfg)
}
