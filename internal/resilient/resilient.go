// Package resilient runs the plan → simulate loop with a
// graceful-degradation ladder for hostile environments: plans are
// built against a safety-margin-reduced budget, and when the runtime
// still reports an (injected) OOM the ladder replans at progressively
// tighter budgets before falling back to the swap-all baseline — the
// slowest policy that can train almost anything. Training degrades;
// it does not abort.
package resilient

import (
	"errors"
	"fmt"

	"tsplit/internal/baselines"
	"tsplit/internal/core"
	"tsplit/internal/faults"
	"tsplit/internal/obs"
	"tsplit/internal/sim"
)

// DefaultMargin is the initial SafetyMargin used when faults are
// enabled and the caller did not choose one: plan as if 10% of the
// budget already belongs to someone else.
const DefaultMargin = 0.10

// marginStep separates successive ladder stages.
const marginStep = 0.10

// Config tunes one resilient run.
type Config struct {
	// Faults selects the injected environment (Severity <= 0: none).
	Faults faults.Config
	// SafetyMargin is the first rung's planning margin (0 with faults
	// enabled: DefaultMargin).
	SafetyMargin float64
	// Margins overrides the ladder's margin sequence (nil: initial,
	// +0.10, +0.20).
	Margins []float64
	// Capacity overrides the device memory budget (0 = device).
	Capacity int64
	// Planner seeds the planner options of every rung (Capacity,
	// SafetyMargin, Obs, and CollectReport are overridden per rung).
	Planner core.Options
	// Sim seeds the runtime options of every rung (Capacity, Faults,
	// and Obs are overridden).
	Sim sim.Options
	// CollectReport attaches a PlanReport to the outcome.
	CollectReport bool
	// Obs receives planner, runtime, and ladder metrics.
	Obs obs.Recorder
	// Trace records the run as a "resilient.run" span with one
	// "resilient.rung" child per ladder attempt, and is threaded into
	// the planner and simulator of every rung. Nil disables tracing.
	Trace *obs.Tracer
	// Flight receives ladder escalation events ("ladder.escalate",
	// "ladder.fallback", "ladder.abort") and is threaded into the
	// planner and simulator of every rung. Nil disables recording.
	Flight *obs.Flight
	// Dumper, when set, snapshots the flight ring, metrics, and span
	// tree whenever the ladder escalates, falls back to swap-all, or
	// aborts — the postmortem feed for tsplit-doctor.
	Dumper *obs.Dumper
}

// Stage records one ladder rung: a planning + execution attempt.
type Stage struct {
	// Kind is "plan" (first rung), "replan" (escalated margin), or
	// "swap-all" (final fallback).
	Kind string
	// Margin is the rung's SafetyMargin (0 for swap-all).
	Margin float64
	// Err is why the rung failed; empty for the rung that succeeded.
	Err string
}

// Outcome is the result of a resilient run: the plan and measurements
// of the first rung that survived, plus the ladder trail.
type Outcome struct {
	Plan   *core.Plan
	Result sim.Result
	Report *core.PlanReport
	// Stages lists every rung attempted, in order; the last entry is
	// the one that succeeded.
	Stages []Stage
	// Degraded reports whether any rung failed before one survived.
	Degraded bool
}

// degradations renders the failed rungs for PlanReport.Degradations.
func (o *Outcome) degradations() []string {
	var out []string
	for _, st := range o.Stages {
		if st.Err != "" {
			out = append(out, fmt.Sprintf("%s margin=%.2f: %s", st.Kind, st.Margin, st.Err))
		}
	}
	return out
}

// Run plans and executes a workload under the configured fault
// environment, descending the degradation ladder as needed. It
// returns an error only when even the swap-all fallback cannot train
// the configuration — a genuine capacity wall, not a transient.
func Run(in baselines.Inputs, cfg Config) (Outcome, error) {
	inj := faults.New(cfg.Faults)
	m0 := cfg.SafetyMargin
	if m0 <= 0 && inj != nil {
		m0 = DefaultMargin
	}
	margins := cfg.Margins
	if margins == nil {
		margins = []float64{m0, m0 + marginStep, m0 + 2*marginStep}
	}

	var out Outcome
	if cfg.Obs != nil {
		cfg.Obs.Add("tsplit_resilient_runs_total", 1)
	}
	rsp := cfg.Trace.StartSpan("resilient.run")
	defer rsp.End()
	fail := func(kind string, margin float64, err error) {
		out.Stages = append(out.Stages, Stage{Kind: kind, Margin: margin, Err: err.Error()})
		out.Degraded = true
		if cfg.Obs != nil {
			cfg.Obs.Add("tsplit_resilient_degraded_total", 1, obs.L("stage", kind))
		}
		if fl := cfg.Flight; fl != nil {
			fl.Record("ladder.escalate", err.Error(),
				obs.L("stage", kind),
				obs.L("margin", fmt.Sprintf("%.2f", margin)))
		}
		cfg.Dumper.Trigger("ladder escalation: " + kind)
	}

	// One planner serves the whole ladder: rung 0 plans cold, escalated
	// rungs warm-replan from the previous rung's plan — the tighter
	// budget replays the journaled decision prefix and resumes the
	// greedy loop live, producing a byte-identical plan to a cold run at
	// the new margin for a fraction of the work.
	pl := core.NewPlanner(in.G, in.Sched, in.Lv, in.Prof, in.Dev, cfg.Planner)
	var prev *core.Plan
	for i, m := range margins {
		kind := "plan"
		if i > 0 {
			kind = "replan"
		}
		popts := cfg.Planner
		popts.Capacity = cfg.Capacity
		popts.SafetyMargin = m
		popts.Obs = cfg.Obs
		popts.CollectReport = cfg.CollectReport
		popts.Trace = cfg.Trace
		popts.Flight = cfg.Flight
		sp := rsp.StartSpan("resilient.rung")
		sp.SetAttr("kind", kind)
		sp.SetAttr("margin", fmt.Sprintf("%.2f", m))
		var plan *core.Plan
		var err error
		if i == 0 {
			pl.SetOptions(popts)
			plan, err = pl.Plan()
		} else {
			plan, err = pl.Replan(prev, popts)
		}
		if err != nil {
			// Infeasible at this margin: tighter margins only shrink the
			// budget further. Go straight to the fallback.
			sp.End()
			fail(kind, m, err)
			break
		}
		res, rerr := runSim(in, plan, cfg, inj)
		sp.End()
		if rerr == nil {
			out.Plan, out.Result, out.Report = plan, res, pl.Report()
			out.Stages = append(out.Stages, Stage{Kind: kind, Margin: m})
			if out.Report != nil {
				out.Report.Degradations = out.degradations()
			}
			return out, nil
		}
		if !errors.Is(rerr, sim.ErrOOM) {
			return out, rerr
		}
		fail(kind, m, rerr)
		prev = plan
	}

	// Final rung: the swap-all baseline trades throughput for the
	// smallest working set any policy here can offer.
	if fl := cfg.Flight; fl != nil {
		fl.Record("ladder.fallback", "descending to swap-all baseline")
	}
	sp := rsp.StartSpan("resilient.rung")
	sp.SetAttr("kind", "swap-all")
	plan, err := baselines.VDNNAll(in)
	if err != nil {
		sp.End()
		return out, fmt.Errorf("resilient: swap-all fallback: %w", err)
	}
	res, rerr := runSim(in, plan, cfg, inj)
	sp.End()
	if rerr != nil {
		if cfg.Obs != nil {
			cfg.Obs.Add("tsplit_resilient_aborts_total", 1)
		}
		if fl := cfg.Flight; fl != nil {
			fl.Record("ladder.abort", rerr.Error())
		}
		cfg.Dumper.Trigger("ladder abort: swap-all fallback failed")
		return out, fmt.Errorf("resilient: swap-all fallback: %w", rerr)
	}
	out.Plan, out.Result = plan, res
	out.Stages = append(out.Stages, Stage{Kind: "swap-all"})
	if cfg.CollectReport {
		out.Report = &core.PlanReport{
			Policy:       plan.Name,
			Device:       in.Dev.Name,
			Degradations: out.degradations(),
		}
	}
	return out, nil
}

// runSim executes one rung's plan under the shared injector. The
// injector's per-event draws are keyed by event identity, not by draw
// order, so every rung faces the same environment.
func runSim(in baselines.Inputs, plan *core.Plan, cfg Config, inj *faults.Injector) (sim.Result, error) {
	sopts := cfg.Sim
	sopts.Capacity = cfg.Capacity
	sopts.Faults = inj
	sopts.Obs = cfg.Obs
	sopts.Trace = cfg.Trace
	sopts.Flight = cfg.Flight
	return sim.New(in.G, in.Sched, in.Lv, plan, in.Dev, sopts).Run()
}
