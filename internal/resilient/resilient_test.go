package resilient

import (
	"strings"
	"testing"

	"tsplit/internal/baselines"
	"tsplit/internal/core"
	"tsplit/internal/device"
	"tsplit/internal/faults"
	"tsplit/internal/graph"
	"tsplit/internal/models"
	"tsplit/internal/obs"
	"tsplit/internal/profiler"
	"tsplit/internal/sim"
)

func inputs(t *testing.T, model string, batch int) baselines.Inputs {
	t.Helper()
	g, err := models.Build(model, models.Config{BatchSize: batch})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := graph.BuildSchedule(g)
	if err != nil {
		t.Fatal(err)
	}
	lv := graph.AnalyzeLiveness(g, sched)
	return baselines.Inputs{G: g, Sched: sched, Lv: lv,
		Prof: profiler.New(device.TitanRTX, sched), Dev: device.TitanRTX}
}

// checkLadderOrder asserts the rung trail is a prefix of the only
// legal descent: plan, then zero or more replans, then optionally
// swap-all — with exactly one final rung that succeeded.
func checkLadderOrder(t *testing.T, stages []Stage) {
	t.Helper()
	if len(stages) == 0 {
		t.Fatal("no stages recorded")
	}
	for i, st := range stages {
		want := "replan"
		switch {
		case i == 0:
			want = "plan"
		case i == len(stages)-1 && st.Kind == "swap-all":
			want = "swap-all"
		}
		if st.Kind != want {
			t.Fatalf("stage %d kind %q, want %q (trail %+v)", i, st.Kind, want, stages)
		}
		if i < len(stages)-1 && st.Err == "" {
			t.Fatalf("non-final stage %d succeeded but ladder continued: %+v", i, stages)
		}
	}
	if last := stages[len(stages)-1]; last.Err != "" {
		t.Fatalf("final stage carries an error: %+v", last)
	}
}

// TestLadderCleanRunNotDegraded: with no faults and ample capacity the
// first rung wins and nothing is marked degraded.
func TestLadderCleanRunNotDegraded(t *testing.T) {
	in := inputs(t, "vgg16", 64)
	out, err := Run(in, Config{CollectReport: true})
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if out.Degraded || len(out.Stages) != 1 || out.Stages[0].Kind != "plan" {
		t.Fatalf("clean run should win on the first rung: %+v", out.Stages)
	}
	if out.Report == nil || len(out.Report.Degradations) != 0 {
		t.Fatalf("clean run report: %+v", out.Report)
	}
	checkLadderOrder(t, out.Stages)
}

// TestLadderPlanFailureFallsBackToSwapAll: a margin so large that the
// budget drops below the resident floor makes planning itself fail;
// the ladder must skip the (strictly harder) replans and land on the
// swap-all baseline instead of aborting.
func TestLadderPlanFailureFallsBackToSwapAll(t *testing.T) {
	in := inputs(t, "vgg16", 64)
	reg := obs.NewRegistry()
	out, err := Run(in, Config{
		Margins:       []float64{0.89, 0.89, 0.89},
		CollectReport: true,
		Obs:           reg,
	})
	if err != nil {
		t.Fatalf("ladder aborted: %v", err)
	}
	if !out.Degraded {
		t.Fatal("plan failure must mark the run degraded")
	}
	if len(out.Stages) != 2 {
		t.Fatalf("plan failure should break straight to swap-all, got %+v", out.Stages)
	}
	if out.Stages[0].Kind != "plan" || out.Stages[0].Err == "" {
		t.Fatalf("first stage should be a failed plan: %+v", out.Stages[0])
	}
	if out.Stages[1].Kind != "swap-all" {
		t.Fatalf("fallback stage: %+v", out.Stages[1])
	}
	checkLadderOrder(t, out.Stages)
	if out.Report == nil || len(out.Report.Degradations) != 1 ||
		!strings.HasPrefix(out.Report.Degradations[0], "plan margin=0.89") {
		t.Fatalf("report degradations: %+v", out.Report)
	}
	if vs := core.VerifyAt(out.Plan, in.G, in.Sched, in.Lv, in.Dev.MemBytes); len(vs) != 0 {
		t.Fatalf("fallback plan violates invariants: %v", vs)
	}
	var degraded int64
	for _, m := range reg.Snapshot() {
		if m.Name == "tsplit_resilient_degraded_total" {
			degraded += m.Int
		}
	}
	if degraded != 1 {
		t.Fatalf("degraded counter = %d, want 1", degraded)
	}
}

// TestLadderInjectedOOMEscalatesInOrder: capacity-shrink faults at a
// tight budget OOM the first rung; the ladder must retry with
// escalating margins in order and finish without an abort.
func TestLadderInjectedOOMEscalatesInOrder(t *testing.T) {
	in := inputs(t, "vgg16", 96)
	cap := in.Lv.Peak * 65 / 100
	out, err := Run(in, Config{
		Faults:   faults.Config{Seed: 7, Severity: 0.9, Kinds: []faults.Kind{faults.CapacityShrink}},
		Capacity: cap,
		Sim:      sim.Options{Recompute: sim.LRURecompute},
	})
	if err != nil {
		t.Fatalf("ladder aborted: %v", err)
	}
	checkLadderOrder(t, out.Stages)
	if !out.Degraded {
		t.Fatalf("expected the first rung to OOM under capacity shrink; stages %+v", out.Stages)
	}
	if out.Stages[0].Err == "" || !strings.Contains(out.Stages[0].Err, "injected capacity shrink") {
		t.Fatalf("first rung should fail with an injected OOM: %+v", out.Stages[0])
	}
	if vs := core.VerifyAt(out.Plan, in.G, in.Sched, in.Lv, cap); len(vs) != 0 {
		t.Fatalf("surviving plan violates invariants: %v", vs)
	}
}

// TestLadderNeverAbortsAtFullSeverity sweeps every fault class at
// severity 1 at device capacity: transients must never abort training
// — the ladder must end at some rung, not an error. (A genuinely
// undersized budget is the one legitimate abort, tested separately by
// the capacity-wall CLI path.)
func TestLadderNeverAbortsAtFullSeverity(t *testing.T) {
	in := inputs(t, "vgg16", 64)
	for seed := uint64(1); seed <= 5; seed++ {
		out, err := Run(in, Config{
			Faults: faults.Config{Seed: seed, Severity: 1},
			Sim:    sim.Options{Recompute: sim.LRURecompute},
		})
		if err != nil {
			t.Fatalf("seed %d: ladder aborted: %v", seed, err)
		}
		checkLadderOrder(t, out.Stages)
	}
}

// TestLadderDeterministicTrail: the same seed must walk the same rungs
// and land on identical measurements — the ladder replans, it does not
// reroll the environment.
func TestLadderDeterministicTrail(t *testing.T) {
	in := inputs(t, "vgg16", 96)
	cfg := Config{
		Faults:   faults.Config{Seed: 7, Severity: 0.9},
		Capacity: in.Lv.Peak * 65 / 100,
		Sim:      sim.Options{Recompute: sim.LRURecompute},
	}
	a, err := Run(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Stages) != len(b.Stages) {
		t.Fatalf("trail length diverged: %+v vs %+v", a.Stages, b.Stages)
	}
	for i := range a.Stages {
		if a.Stages[i] != b.Stages[i] {
			t.Fatalf("stage %d diverged: %+v vs %+v", i, a.Stages[i], b.Stages[i])
		}
	}
	if a.Result.Time != b.Result.Time || a.Result.PeakBytes != b.Result.PeakBytes ||
		a.Result.Faults != b.Result.Faults {
		t.Fatal("same seed produced different measurements")
	}
}
