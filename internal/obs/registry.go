package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Registry is the concrete Recorder: a concurrency-safe collection of
// named series. The zero value is not usable; create with NewRegistry.
type Registry struct {
	mu      sync.RWMutex
	series  map[string]*series   // lint:guardedby mu
	help    map[string]string    // lint:guardedby mu
	buckets map[string][]float64 // lint:guardedby mu
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		series:  make(map[string]*series),
		help:    make(map[string]string),
		buckets: make(map[string][]float64),
	}
}

// SetHelp attaches a HELP string to a metric name (shown in the
// Prometheus exposition).
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// SetBuckets configures the histogram bucket upper bounds for a metric
// name; it must be called before the first Observe of that name
// (series created earlier keep their bounds). Bounds must be finite,
// sorted strictly ascending, and non-empty — anything else is a
// programming error at the configuration site, so it panics rather
// than silently producing a histogram whose buckets misattribute
// every observation.
func (r *Registry) SetBuckets(name string, bounds []float64) {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: SetBuckets(%s): empty bounds", name))
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			// The +Inf bucket is implicit (counts has a final overflow
			// entry); listing it — or NaN — breaks the binary search.
			panic(fmt.Sprintf("obs: SetBuckets(%s): bound %d is %v, bounds must be finite", name, i, b))
		}
		if i > 0 && bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: SetBuckets(%s): bounds not strictly ascending at %d (%v <= %v)",
				name, i, bounds[i], bounds[i-1]))
		}
	}
	r.mu.Lock()
	r.buckets[name] = append([]float64(nil), bounds...)
	r.mu.Unlock()
}

// seriesKey builds the map key for (name, labels); labels are sorted
// by key so the same label set always resolves to the same series.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
	}
	return b.String()
}

// canonicalLabels returns labels sorted by key WITHOUT mutating the
// caller's slice: variadic call sites like Add(n, 1, a, b) pass the
// caller's backing array directly, and reordering it in place is an
// observable side effect (a caller-held []Label literal would change
// under them — the exact bug this helper replaces). Already-sorted
// input (the overwhelmingly common case: zero or one label, or
// callers passing constants in key order) is returned as-is with no
// allocation.
func canonicalLabels(labels []Label) []Label {
	for i := 1; i < len(labels); i++ {
		if labels[i].Key < labels[i-1].Key {
			cp := append([]Label(nil), labels...)
			sort.SliceStable(cp, func(i, j int) bool { return cp[i].Key < cp[j].Key })
			return cp
		}
	}
	return labels
}

// get returns the series for (name, labels, kind), creating it on
// first use. Mixing kinds under one name panics: it is a programming
// error, not a runtime condition.
func (r *Registry) get(name string, kind metricKind, labels []Label) *series {
	labels = canonicalLabels(labels)
	key := seriesKey(name, labels)
	r.mu.RLock()
	s := r.series[key]
	r.mu.RUnlock()
	if s != nil {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: metric %s used as both %s and %s", name, s.kind, kind))
		}
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s = r.series[key]; s != nil {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: metric %s used as both %s and %s", name, s.kind, kind))
		}
		return s
	}
	s = &series{name: name, labels: append([]Label(nil), labels...), kind: kind}
	if kind == histogramKind {
		bounds := r.buckets[name]
		if bounds == nil {
			bounds = DefaultBuckets
		}
		s.bounds = bounds
		s.counts = make([]int64, len(bounds)+1)
	}
	r.series[key] = s
	return s
}

// Add implements Recorder: exact int64 counter increment.
func (r *Registry) Add(name string, delta int64, labels ...Label) {
	s := r.get(name, counterKind, labels)
	s.mu.Lock()
	s.counter += delta
	s.mu.Unlock()
}

// Set implements Recorder: gauge last-value update.
func (r *Registry) Set(name string, v float64, labels ...Label) {
	s := r.get(name, gaugeKind, labels)
	s.mu.Lock()
	s.gauge = v
	s.mu.Unlock()
}

// Observe implements Recorder: histogram observation. A NaN
// observation is deterministic: it lands in the +Inf overflow bucket
// (every NaN comparison is false, so sort.SearchFloat64s would
// otherwise leave the bucket choice to its probe order) and is
// excluded from Sum, which keeps snapshots JSON-marshalable.
func (r *Registry) Observe(name string, v float64, labels ...Label) {
	s := r.get(name, histogramKind, labels)
	s.mu.Lock()
	i := len(s.bounds) // +Inf overflow bucket
	if !math.IsNaN(v) {
		i = sort.SearchFloat64s(s.bounds, v) // first bound >= v
		s.sum += v
	}
	s.counts[i]++
	s.count++
	s.mu.Unlock()
}

// Counter reads the current value of a counter series (0 when the
// series does not exist). Intended for tests and reporting.
func (r *Registry) Counter(name string, labels ...Label) int64 {
	labels = canonicalLabels(labels)
	r.mu.RLock()
	s := r.series[seriesKey(name, labels)]
	r.mu.RUnlock()
	if s == nil || s.kind != counterKind {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counter
}

// Gauge reads the current value of a gauge series (0 when absent).
func (r *Registry) Gauge(name string, labels ...Label) float64 {
	labels = canonicalLabels(labels)
	r.mu.RLock()
	s := r.series[seriesKey(name, labels)]
	r.mu.RUnlock()
	if s == nil || s.kind != gaugeKind {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gauge
}

// Histogram reads a copy of a histogram series' state (zero-value
// snapshot when absent).
func (r *Registry) Histogram(name string, labels ...Label) HistogramSnapshot {
	labels = canonicalLabels(labels)
	r.mu.RLock()
	s := r.series[seriesKey(name, labels)]
	r.mu.RUnlock()
	if s == nil || s.kind != histogramKind {
		return HistogramSnapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return HistogramSnapshot{
		Bounds: append([]float64(nil), s.bounds...),
		Counts: append([]int64(nil), s.counts...),
		Count:  s.count,
		Sum:    s.sum,
	}
}

// HistogramSnapshot is the exported state of one histogram series.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra final
	// entry for the +Inf bucket. Counts are per-bucket (not cumulative).
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Metric is one series in a Snapshot.
type Metric struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Help   string  `json:"help,omitempty"`
	Labels []Label `json:"labels,omitempty"`
	// Value carries the gauge value or the counter value as float64;
	// Int carries the exact counter value.
	Value     float64            `json:"value"`
	Int       int64              `json:"int,omitempty"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// Snapshot returns a consistent copy of every series, sorted by name
// then label set — the deterministic order both expositions share.
func (r *Registry) Snapshot() []Metric {
	r.mu.RLock()
	keys := make([]string, 0, len(r.series))
	for k := range r.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Metric, 0, len(keys))
	for _, k := range keys {
		s := r.series[k]
		m := Metric{Name: s.name, Kind: s.kind.String(), Help: r.help[s.name]}
		if len(s.labels) > 0 {
			m.Labels = append([]Label(nil), s.labels...)
		}
		s.mu.Lock()
		switch s.kind {
		case counterKind:
			m.Int = s.counter
			m.Value = float64(s.counter)
		case gaugeKind:
			m.Value = s.gauge
		case histogramKind:
			m.Histogram = &HistogramSnapshot{
				Bounds: append([]float64(nil), s.bounds...),
				Counts: append([]int64(nil), s.counts...),
				Count:  s.count,
				Sum:    s.sum,
			}
			m.Value = s.sum
		}
		s.mu.Unlock()
		out = append(out, m)
	}
	r.mu.RUnlock()
	return out
}
