// Package obs is the dependency-free observability layer: a metrics
// registry (counters, gauges, histograms) with exact int64/float64
// semantics, snapshotting, Prometheus text exposition and JSON export.
//
// The subsystems that produce metrics — the planner (internal/core),
// the discrete-event runtime (internal/sim) and the experiment pool
// (internal/experiments) — accept a Recorder; a nil Recorder disables
// observation entirely and must cost nothing on the hot paths (the
// bench-guard CI step holds the Plan() benchmarks to that bar).
//
// Metric naming follows the Prometheus conventions:
//
//	tsplit_<subsystem>_<what>[_<unit>][_total]
//
// e.g. tsplit_planner_decisions_total{kind="swap"} or
// tsplit_sim_stall_seconds{cause="compaction"}. Counters are
// monotonically increasing int64s, gauges are float64 last-value
// samples, histograms record exact per-bucket counts plus an exact
// count and float64 sum of observations.
package obs

import "sync"

// Label is one key=value metric dimension.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Recorder receives metric updates. All methods are safe for
// concurrent use on the Registry implementation. Callers hold a
// possibly-nil Recorder and must guard hot paths with a nil check —
// that guard is the entire cost of disabled observation.
type Recorder interface {
	// Add increments the counter by delta (creating it at zero).
	Add(name string, delta int64, labels ...Label)
	// Set updates the gauge to v.
	Set(name string, v float64, labels ...Label)
	// Observe records v into the histogram.
	Observe(name string, v float64, labels ...Label)
}

// DefaultBuckets are the histogram bucket upper bounds used when a
// metric has no explicit SetBuckets configuration: log-spaced seconds
// covering microsecond kernels through multi-second iterations.
var DefaultBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10, 100}

// metricKind discriminates the three series types.
type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (name, labels) time series.
type series struct {
	name   string
	labels []Label
	kind   metricKind

	mu      sync.Mutex
	counter int64   // lint:guardedby mu
	gauge   float64 // lint:guardedby mu
	// histogram state: counts[i] counts observations <= bounds[i];
	// counts[len(bounds)] is the +Inf overflow bucket.
	bounds []float64 // lint:guardedby mu
	counts []int64   // lint:guardedby mu
	sum    float64   // lint:guardedby mu
	count  int64     // lint:guardedby mu
}
