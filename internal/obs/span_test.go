package obs

import (
	"bytes"
	"testing"
	"time"
)

// fakeClock returns a Clock that advances by step on every reading,
// starting at a fixed epoch — the determinism harness for span and
// flight tests.
func fakeClock(step time.Duration) Clock {
	t := time.Unix(1_700_000_000, 0)
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTracer(fakeClock(time.Millisecond))
	root := tr.StartSpan("plan")
	child := root.StartSpan("fold")
	child.SetAttr("winner", "swap")
	child.SetAttrInt("iter", 7)
	child.End()
	root.End()

	tree := tr.Tree()
	if len(tree) != 1 {
		t.Fatalf("roots = %d, want 1", len(tree))
	}
	r := tree[0]
	if r.Name != "plan" || len(r.Children) != 1 {
		t.Fatalf("root = %+v", r)
	}
	c := r.Children[0]
	if c.Name != "fold" {
		t.Fatalf("child name = %q", c.Name)
	}
	// Clock steps 1ms per reading: tracer birth, root start, child
	// start, child end, root end.
	if r.StartMicros != 1000 || c.StartMicros != 2000 {
		t.Fatalf("starts = %d, %d", r.StartMicros, c.StartMicros)
	}
	if c.DurMicros != 1000 || r.DurMicros != 3000 {
		t.Fatalf("durs: child %d root %d", c.DurMicros, r.DurMicros)
	}
	want := []Label{{Key: "winner", Value: "swap"}, {Key: "iter", Value: "7"}}
	if len(c.Attrs) != 2 || c.Attrs[0] != want[0] || c.Attrs[1] != want[1] {
		t.Fatalf("attrs = %+v", c.Attrs)
	}
}

func TestSpanNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("anything", L("k", "v"))
	if sp != nil {
		t.Fatalf("nil tracer returned non-nil span")
	}
	// All of these must be no-ops, not panics.
	child := sp.StartSpan("child")
	child.SetAttr("a", "b")
	child.SetAttrInt("n", 1)
	child.End()
	sp.End()
	if tree := tr.Tree(); tree != nil {
		t.Fatalf("nil tracer Tree = %v", tree)
	}
}

func TestSpanOpenExportsMinusOne(t *testing.T) {
	tr := NewTracer(fakeClock(time.Millisecond))
	sp := tr.StartSpan("open")
	tree := tr.Tree()
	if tree[0].DurMicros != -1 {
		t.Fatalf("open span dur = %d, want -1", tree[0].DurMicros)
	}
	sp.End()
	sp.End() // double End keeps the first duration
	d := tr.Tree()[0].DurMicros
	if d != 1000 {
		t.Fatalf("dur after double End = %d, want 1000", d)
	}
}

// TestSpanJSONDeterminism is the golden byte-determinism gate from the
// acceptance criteria: two identical runs under identical fake clocks
// must export byte-identical JSON.
func TestSpanJSONDeterminism(t *testing.T) {
	run := func() []byte {
		tr := NewTracer(fakeClock(time.Microsecond * 250))
		root := tr.StartSpan("planner.plan")
		for i := 0; i < 3; i++ {
			it := root.StartSpan("planner.bottleneck")
			it.SetAttrInt("iter", int64(i))
			it.End()
			f := root.StartSpan("planner.fold")
			f.SetAttr("kind", "swap")
			f.End()
		}
		root.End()
		tr.StartSpan("unended")
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("span JSON not byte-deterministic:\n%s\nvs\n%s", a, b)
	}
	golden := `[
  {
    "name": "planner.plan",
    "start_us": 250,
    "dur_us": 3250,
`
	if !bytes.HasPrefix(a, []byte(golden)) {
		head := a
		if len(head) > 200 {
			head = head[:200]
		}
		t.Fatalf("span JSON drifted from golden prefix:\n%s", head)
	}
}

func TestTracerWriteJSONEmpty(t *testing.T) {
	tr := NewTracer(fakeClock(time.Millisecond))
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if got := buf.String(); got != "[]\n" {
		t.Fatalf("empty tracer JSON = %q", got)
	}
}
