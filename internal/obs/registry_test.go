package obs

import (
	"math"
	"strings"
	"testing"
)

// TestLabelSliceImmutability pins the fix for the in-place variadic
// sort: recording through every Recorder method and reading through
// every accessor must leave the caller's label slice untouched.
func TestLabelSliceImmutability(t *testing.T) {
	r := NewRegistry()
	// Deliberately out of key order: the old code reordered this
	// backing array in place on the first call.
	labels := []Label{L("zone", "b"), L("app", "a")}
	orig := append([]Label(nil), labels...)

	r.Add("tsplit_test_imm_total", 1, labels...)
	r.Set("tsplit_test_imm_gauge", 2, labels...)
	r.Observe("tsplit_test_imm_hist", 0.5, labels...)
	_ = r.Counter("tsplit_test_imm_total", labels...)
	_ = r.Gauge("tsplit_test_imm_gauge", labels...)
	_ = r.Histogram("tsplit_test_imm_hist", labels...)

	for i := range labels {
		if labels[i] != orig[i] {
			t.Fatalf("caller slice mutated at %d: %+v (was %+v)", i, labels, orig)
		}
	}
	// The series itself still canonicalizes: both key orders resolve
	// to one series.
	if got := r.Counter("tsplit_test_imm_total", L("app", "a"), L("zone", "b")); got != 1 {
		t.Fatalf("sorted-order read = %d, want 1 (same series)", got)
	}
	snap := r.Snapshot()
	for _, m := range snap {
		if m.Name == "tsplit_test_imm_total" {
			if len(m.Labels) != 2 || m.Labels[0].Key != "app" || m.Labels[1].Key != "zone" {
				t.Fatalf("stored labels not canonical: %+v", m.Labels)
			}
		}
	}
}

func TestCanonicalLabelsNoCopyWhenSorted(t *testing.T) {
	labels := []Label{L("a", "1"), L("b", "2")}
	if got := canonicalLabels(labels); &got[0] != &labels[0] {
		t.Fatalf("sorted input must be returned without copying")
	}
	if got := canonicalLabels(nil); got != nil {
		t.Fatalf("nil in, nil out")
	}
}

func TestSetBucketsValidation(t *testing.T) {
	cases := []struct {
		name   string
		bounds []float64
		want   string // substring of the panic, "" = no panic
	}{
		{"valid", []float64{0.1, 1, 10}, ""},
		{"empty", nil, "empty bounds"},
		{"descending", []float64{1, 0.1}, "not strictly ascending"},
		{"duplicate", []float64{1, 1}, "not strictly ascending"},
		{"nan", []float64{0.1, math.NaN()}, "must be finite"},
		{"inf", []float64{0.1, math.Inf(1)}, "must be finite"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			defer func() {
				rec := recover()
				if tc.want == "" {
					if rec != nil {
						t.Fatalf("unexpected panic: %v", rec)
					}
					return
				}
				msg, ok := rec.(string)
				if !ok || !strings.Contains(msg, tc.want) {
					t.Fatalf("panic = %v, want substring %q", rec, tc.want)
				}
			}()
			r.SetBuckets("tsplit_test_hist", tc.bounds)
		})
	}
}

// TestObserveNaNDeterministic pins NaN routing: the observation lands
// in the +Inf overflow bucket (not bucket 0, where SearchFloat64s'
// probe order would put it), counts toward Count, and is excluded
// from Sum so snapshots stay JSON-marshalable.
func TestObserveNaNDeterministic(t *testing.T) {
	r := NewRegistry()
	r.SetBuckets("tsplit_test_nan", []float64{1, 2})
	r.Observe("tsplit_test_nan", 0.5)
	r.Observe("tsplit_test_nan", math.NaN())
	r.Observe("tsplit_test_nan", math.NaN())

	h := r.Histogram("tsplit_test_nan")
	if h.Count != 3 {
		t.Fatalf("Count = %d, want 3", h.Count)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 0 || h.Counts[2] != 2 {
		t.Fatalf("Counts = %v, want [1 0 2] (NaN in +Inf bucket)", h.Counts)
	}
	if h.Sum != 0.5 {
		t.Fatalf("Sum = %v, want 0.5 (NaN excluded)", h.Sum)
	}
	// +Inf itself also routes past every finite bound.
	r.Observe("tsplit_test_nan", math.Inf(1))
	if h = r.Histogram("tsplit_test_nan"); h.Counts[2] != 3 {
		t.Fatalf("+Inf bucket = %d, want 3", h.Counts[2])
	}
	if !math.IsInf(h.Sum, 1) {
		t.Fatalf("Sum after +Inf observe = %v", h.Sum)
	}
}
