package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Event is one structured flight-recorder entry. Seq is a global,
// gap-free sequence number assigned at Record time: when the ring
// overwrites old entries the surviving events keep their original
// numbers, so a dump states exactly how many events were dropped and
// where the retained window begins.
type Event struct {
	Seq        uint64  `json:"seq"`
	TimeMicros int64   `json:"t_us"` // offset from the recorder's creation
	Kind       string  `json:"kind"`
	Msg        string  `json:"msg,omitempty"`
	Attrs      []Label `json:"attrs,omitempty"`
}

// Flight is a fixed-size ring buffer of the last N events — the
// black-box recorder consulted after an escalation or verification
// failure. Recording is concurrency-safe and nil-safe (a nil *Flight
// drops everything at the cost of one nil check), so the same pointer
// threads through planner, simulator, and ladder unconditionally.
//
// lint:nilsafe — every exported method must guard the receiver before
// dereferencing it; tsplit-lint proves it.
type Flight struct {
	mu    sync.Mutex
	clock Clock
	t0    time.Time
	buf   []Event // lint:guardedby mu — ring storage; entry for seq s lives at s % cap
	seq   uint64  // lint:guardedby mu — next sequence number == total events ever recorded
}

// DefaultFlightSize is the ring capacity used when callers pass a
// non-positive size: enough to hold the full decision stream of the
// largest zoo model plus the fault/escalation tail around a failure.
const DefaultFlightSize = 256

// NewFlight creates a recorder holding the last n events (n <= 0
// means DefaultFlightSize), timestamped by clock (Wall when nil).
func NewFlight(n int, clock Clock) *Flight {
	if n <= 0 {
		n = DefaultFlightSize
	}
	if clock == nil {
		clock = Wall
	}
	return &Flight{clock: clock, t0: clock(), buf: make([]Event, 0, n)}
}

// Record appends one event, overwriting the oldest when full.
// Nil-safe.
func (f *Flight) Record(kind, msg string, attrs ...Label) {
	if f == nil {
		return
	}
	var as []Label
	if len(attrs) > 0 {
		as = append(as, attrs...)
	}
	f.mu.Lock()
	ev := Event{Seq: f.seq, TimeMicros: f.clock().Sub(f.t0).Microseconds(), Kind: kind, Msg: msg, Attrs: as}
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, ev)
	} else {
		f.buf[f.seq%uint64(cap(f.buf))] = ev
	}
	f.seq++
	f.mu.Unlock()
}

// Len reports how many events the ring currently holds. Nil-safe.
func (f *Flight) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.buf)
}

// Dropped reports how many events have been overwritten. Nil-safe.
func (f *Flight) Dropped() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq - uint64(len(f.buf))
}

// Events snapshots the ring in sequence order (oldest first).
// Nil-safe: a nil recorder yields nil.
func (f *Flight) Events() []Event {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Event, 0, len(f.buf))
	if len(f.buf) < cap(f.buf) {
		out = append(out, f.buf...)
		return out
	}
	n := uint64(cap(f.buf))
	for i := uint64(0); i < n; i++ {
		out = append(out, f.buf[(f.seq+i)%n])
	}
	return out
}

// Dump is a self-contained postmortem snapshot: the flight-recorder
// window, a metrics snapshot, and the span forest, plus what pulled
// the trigger. It is the unit tsplit-doctor consumes.
type Dump struct {
	Reason        string      `json:"reason"`
	TriggerSeq    uint64      `json:"trigger_seq"` // events recorded when triggered
	DroppedEvents uint64      `json:"dropped_events"`
	Events        []Event     `json:"events,omitempty"`
	Metrics       []Metric    `json:"metrics,omitempty"`
	Spans         []*SpanNode `json:"spans,omitempty"`
}

// Dumper snapshots ring + metrics + spans into a Dump when triggered.
// Any of the three sources may be nil (that section is simply empty);
// a nil *Dumper ignores triggers entirely. Sink receives each dump;
// sink errors are retained (Err) rather than propagated, because
// triggers fire from failure paths that must not gain new failure
// modes of their own.
//
// lint:nilsafe — a nil *Dumper ignores triggers; every exported
// method guards the receiver first.
type Dumper struct {
	Flight   *Flight
	Registry *Registry
	Tracer   *Tracer
	Sink     func(*Dump) error

	mu       sync.Mutex
	triggers []string // lint:guardedby mu
	err      error    // lint:guardedby mu
}

// Trigger snapshots the current state under the given reason and
// hands it to the sink. Nil-safe.
func (d *Dumper) Trigger(reason string) {
	if d == nil {
		return
	}
	dump := &Dump{
		Reason:        reason,
		DroppedEvents: d.Flight.Dropped(),
		Events:        d.Flight.Events(),
		Spans:         d.Tracer.Tree(),
	}
	dump.TriggerSeq = d.Flight.Dropped() + uint64(len(dump.Events))
	if d.Registry != nil {
		dump.Metrics = d.Registry.Snapshot()
	}
	d.mu.Lock()
	d.triggers = append(d.triggers, reason)
	if d.Sink != nil {
		if err := d.Sink(dump); err != nil && d.err == nil {
			d.err = err
		}
	}
	d.mu.Unlock()
}

// Triggers returns the reasons recorded so far, in order. Nil-safe.
func (d *Dumper) Triggers() []string {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.triggers...)
}

// Err returns the first sink error, if any. Nil-safe.
func (d *Dumper) Err() error {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

// WriteDump writes a dump as indented JSON (byte-deterministic for a
// given dump: all slices are already in a defined order).
func WriteDump(w io.Writer, d *Dump) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ReadDump parses a dump written by WriteDump.
func ReadDump(r io.Reader) (*Dump, error) {
	var d Dump
	dec := json.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("obs: parse dump: %w", err)
	}
	return &d, nil
}

// ReadDumpFile parses a dump file from disk.
func ReadDumpFile(path string) (*Dump, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Dump
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("obs: parse dump %s: %w", path, err)
	}
	return &d, nil
}

// FileSink returns a sink that writes each dump to path, overwriting:
// the file always holds the most recent snapshot (the one closest to
// the failure the postmortem cares about).
func FileSink(path string) func(*Dump) error {
	return func(d *Dump) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := WriteDump(f, d); err != nil {
			_ = f.Close() // the write error is the one to report
			return err
		}
		return f.Close()
	}
}
