package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// escapeLabelValue applies the Prometheus text-format escaping rules
// for label values: backslash, double quote and newline.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text (backslash and newline only).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a float64 the way Prometheus expects: shortest
// exact representation, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...} for the exposition, with extra
// prepended before the series' own labels (the histogram le label).
func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), extra...), labels...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = l.Key + `="` + escapeLabelValue(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus writes the registry in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers once per metric
// name, series sorted by name then label set, histograms expanded into
// cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	lastName := ""
	for _, m := range snap {
		if m.Name != lastName {
			if m.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, escapeHelp(m.Help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
				return err
			}
			lastName = m.Name
		}
		switch m.Kind {
		case "counter":
			if _, err := fmt.Fprintf(w, "%s%s %d\n", m.Name, labelString(m.Labels), m.Int); err != nil {
				return err
			}
		case "gauge":
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.Name, labelString(m.Labels), formatFloat(m.Value)); err != nil {
				return err
			}
		case "histogram":
			h := m.Histogram
			var cum int64
			for i, bound := range h.Bounds {
				cum += h.Counts[i]
				le := Label{Key: "le", Value: formatFloat(bound)}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, labelString(m.Labels, le), cum); err != nil {
					return err
				}
			}
			le := Label{Key: "le", Value: "+Inf"}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, labelString(m.Labels, le), h.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, labelString(m.Labels), formatFloat(h.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, labelString(m.Labels), h.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON writes the snapshot as indented JSON — the structured
// export for dashboards and tests.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
