package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// This file is the analysis half of the flight-recorder subsystem:
// it turns a Dump (or a bare metrics/trace export) into the diagnosis
// tsplit-doctor prints — phase latency percentiles from the span
// tree, replan cache-hit rates and stall attribution from the metrics
// snapshot, the event tail from the ring, and regressions against an
// optional baseline dump.

// PhaseStat aggregates every span sharing one name: the doctor's
// phase-latency breakdown. Durations are integer microseconds
// (nearest-rank percentiles over the ended spans only).
type PhaseStat struct {
	Name        string  `json:"name"`
	Count       int     `json:"count"`
	Open        int     `json:"open,omitempty"` // spans never ended
	TotalMicros int64   `json:"total_us"`
	P50Micros   int64   `json:"p50_us"`
	P95Micros   int64   `json:"p95_us"`
	P99Micros   int64   `json:"p99_us"`
	MaxMicros   int64   `json:"max_us"`
	Pct         float64 `json:"pct"` // share of summed root-span time
}

// ReplanStats is the planner cache-hit analysis derived from the
// metrics snapshot.
type ReplanStats struct {
	Plans             int64   `json:"plans"`
	WarmReplans       int64   `json:"warm_replans"`
	ColdReplans       int64   `json:"cold_replans"`
	HitRate           float64 `json:"hit_rate"` // warm / (warm + cold)
	Iterations        int64   `json:"iterations"`
	DecisionsReplayed int64   `json:"decisions_replayed"`
	// ReplayShare is the fraction of all decisions that came from
	// journal replay instead of a fresh greedy iteration.
	ReplayShare float64 `json:"replay_share"`
}

// StallStat attributes simulated stall time to one cause.
type StallStat struct {
	Cause  string  `json:"cause"`
	Micros int64   `json:"us"`
	Pct    float64 `json:"pct"`
}

// EventCount tallies flight-recorder events of one kind.
type EventCount struct {
	Kind  string `json:"kind"`
	Count int    `json:"count"`
}

// Regression is one metric or phase that moved against the baseline.
type Regression struct {
	Name     string  `json:"name"`
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	Pct      float64 `json:"pct"` // signed relative change, percent
}

// Diagnosis is the full doctor report.
type Diagnosis struct {
	Reason        string       `json:"reason,omitempty"`
	Phases        []PhaseStat  `json:"phases,omitempty"`
	Replan        *ReplanStats `json:"replan,omitempty"`
	Stalls        []StallStat  `json:"stalls,omitempty"`
	EventCounts   []EventCount `json:"event_counts,omitempty"`
	LastEvents    []Event      `json:"last_events,omitempty"`
	DroppedEvents uint64       `json:"dropped_events,omitempty"`
	Regressions   []Regression `json:"regressions,omitempty"`
}

// maxLastEvents bounds the event tail echoed into the diagnosis: the
// window immediately before the trigger is the part a postmortem
// reads first.
const maxLastEvents = 12

// maxRegressions bounds the "top regressions" section.
const maxRegressions = 10

// Diagnose analyzes a dump. baseline is optional; when present, the
// regression section compares scalar metrics and phase totals against
// it. Both dumps may be partial (metrics-only, spans-only) — absent
// sections simply yield absent report sections.
func Diagnose(d *Dump, baseline *Dump) *Diagnosis {
	diag := &Diagnosis{
		Reason:        d.Reason,
		Phases:        phaseStats(d.Spans),
		Replan:        replanStats(d.Metrics),
		Stalls:        stallStats(d.Metrics),
		DroppedEvents: d.DroppedEvents,
	}
	diag.EventCounts, diag.LastEvents = eventStats(d.Events)
	if baseline != nil {
		diag.Regressions = regressions(baseline, d)
	}
	return diag
}

// flattenSpans walks a span forest depth-first, appending every node.
func flattenSpans(nodes []*SpanNode, out []*SpanNode) []*SpanNode {
	for _, n := range nodes {
		out = append(out, n)
		out = flattenSpans(n.Children, out)
	}
	return out
}

// phaseStats groups the flattened span forest by name.
func phaseStats(spans []*SpanNode) []PhaseStat {
	if len(spans) == 0 {
		return nil
	}
	flat := flattenSpans(spans, nil)
	durs := make(map[string][]int64)
	open := make(map[string]int)
	for _, n := range flat {
		if n.DurMicros < 0 {
			open[n.Name]++
			if _, ok := durs[n.Name]; !ok {
				durs[n.Name] = nil
			}
			continue
		}
		durs[n.Name] = append(durs[n.Name], n.DurMicros)
	}
	var rootTotal int64
	for _, n := range spans {
		if n.DurMicros > 0 {
			rootTotal += n.DurMicros
		}
	}
	names := make([]string, 0, len(durs))
	for name := range durs {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]PhaseStat, 0, len(names))
	for _, name := range names {
		ds := durs[name]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		st := PhaseStat{Name: name, Count: len(ds) + open[name], Open: open[name]}
		for _, d := range ds {
			st.TotalMicros += d
		}
		if len(ds) > 0 {
			st.P50Micros = rank(ds, 50)
			st.P95Micros = rank(ds, 95)
			st.P99Micros = rank(ds, 99)
			st.MaxMicros = ds[len(ds)-1]
		}
		if rootTotal > 0 {
			st.Pct = 100 * float64(st.TotalMicros) / float64(rootTotal)
		}
		out = append(out, st)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TotalMicros != out[j].TotalMicros {
			return out[i].TotalMicros > out[j].TotalMicros
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// rank is the nearest-rank percentile of a sorted slice.
func rank(sorted []int64, p int) int64 {
	i := (len(sorted)*p + 99) / 100
	if i > 0 {
		i--
	}
	return sorted[i]
}

// metricValue extracts the comparable scalar of a metric: exact
// counter, gauge value, or histogram sum.
func metricValue(m Metric) float64 {
	if m.Kind == "counter" {
		return float64(m.Int)
	}
	return m.Value
}

// findCounter returns the summed Int of every counter with the given
// name whose labels include all of want.
func findCounter(ms []Metric, name string, want ...Label) int64 {
	var total int64
	for _, m := range ms {
		if m.Name != name || m.Kind != "counter" {
			continue
		}
		ok := true
		for _, w := range want {
			has := false
			for _, l := range m.Labels {
				if l == w {
					has = true
					break
				}
			}
			if !has {
				ok = false
				break
			}
		}
		if ok {
			total += m.Int
		}
	}
	return total
}

func replanStats(ms []Metric) *ReplanStats {
	if len(ms) == 0 {
		return nil
	}
	rs := &ReplanStats{
		Plans:             findCounter(ms, "tsplit_planner_plans_total"),
		WarmReplans:       findCounter(ms, "tsplit_planner_replans_total", L("mode", "warm")),
		ColdReplans:       findCounter(ms, "tsplit_planner_replans_total", L("mode", "cold")),
		Iterations:        findCounter(ms, "tsplit_planner_iterations_total"),
		DecisionsReplayed: findCounter(ms, "tsplit_planner_decisions_replayed_total"),
	}
	if rs.Plans == 0 && rs.WarmReplans == 0 && rs.ColdReplans == 0 {
		return nil
	}
	if n := rs.WarmReplans + rs.ColdReplans; n > 0 {
		rs.HitRate = float64(rs.WarmReplans) / float64(n)
	}
	if n := rs.Iterations + rs.DecisionsReplayed; n > 0 {
		rs.ReplayShare = float64(rs.DecisionsReplayed) / float64(n)
	}
	return rs
}

func stallStats(ms []Metric) []StallStat {
	var out []StallStat
	var total int64
	for _, m := range ms {
		if m.Name != "tsplit_sim_stall_microseconds_total" || m.Kind != "counter" {
			continue
		}
		cause := ""
		for _, l := range m.Labels {
			if l.Key == "cause" {
				cause = l.Value
			}
		}
		out = append(out, StallStat{Cause: cause, Micros: m.Int})
		total += m.Int
	}
	for i := range out {
		if total > 0 {
			out[i].Pct = 100 * float64(out[i].Micros) / float64(total)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Micros != out[j].Micros {
			return out[i].Micros > out[j].Micros
		}
		return out[i].Cause < out[j].Cause
	})
	return out
}

func eventStats(events []Event) ([]EventCount, []Event) {
	if len(events) == 0 {
		return nil, nil
	}
	counts := make(map[string]int)
	for _, ev := range events {
		counts[ev.Kind]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	out := make([]EventCount, 0, len(kinds))
	for _, k := range kinds {
		out = append(out, EventCount{Kind: k, Count: counts[k]})
	}
	tail := events
	if len(tail) > maxLastEvents {
		tail = tail[len(tail)-maxLastEvents:]
	}
	return out, append([]Event(nil), tail...)
}

// regressions compares scalar metrics and phase totals of cur against
// base and returns the largest relative increases first. Only
// increases are reported — for every compared quantity (latency
// sums, stall time, failure counters) up is the bad direction; new
// metrics with no baseline value are skipped, not inferred.
func regressions(base, cur *Dump) []Regression {
	baseVals := scalarSeries(base)
	curVals := scalarSeries(cur)
	keys := make([]string, 0, len(curVals))
	for k := range curVals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []Regression
	for _, k := range keys {
		bv, ok := baseVals[k]
		if !ok || bv <= 0 {
			continue
		}
		cv := curVals[k]
		if cv <= bv {
			continue
		}
		out = append(out, Regression{Name: k, Baseline: bv, Current: cv, Pct: 100 * (cv - bv) / bv})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Pct != out[j].Pct {
			return out[i].Pct > out[j].Pct
		}
		return out[i].Name < out[j].Name
	})
	if len(out) > maxRegressions {
		out = out[:maxRegressions]
	}
	return out
}

// scalarSeries flattens a dump into comparable named scalars:
// "metric{k=v,...}" for each series and "phase:<name> total_us" for
// each span phase.
func scalarSeries(d *Dump) map[string]float64 {
	out := make(map[string]float64)
	for _, m := range d.Metrics {
		key := m.Name
		if len(m.Labels) > 0 {
			parts := make([]string, len(m.Labels))
			for i, l := range m.Labels {
				parts[i] = l.Key + "=" + l.Value
			}
			key += "{" + strings.Join(parts, ",") + "}"
		}
		out[key] = metricValue(m)
	}
	for _, ph := range phaseStats(d.Spans) {
		out["phase:"+ph.Name+" total_us"] = float64(ph.TotalMicros)
	}
	return out
}

// WriteJSON writes the diagnosis as indented JSON (the -json mode CI
// consumes).
func (d *Diagnosis) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Render formats the diagnosis for humans.
func (d *Diagnosis) Render() string {
	var b strings.Builder
	if d.Reason != "" {
		fmt.Fprintf(&b, "dump reason: %s\n\n", d.Reason)
	}
	if len(d.Phases) > 0 {
		b.WriteString("Phase latency (per span name; % of root-span time)\n")
		fmt.Fprintf(&b, "  %-24s %7s %10s %9s %9s %9s %9s %6s\n",
			"phase", "count", "total", "p50", "p95", "p99", "max", "%")
		for _, p := range d.Phases {
			note := ""
			if p.Open > 0 {
				note = fmt.Sprintf("  (%d open)", p.Open)
			}
			fmt.Fprintf(&b, "  %-24s %7d %10s %9s %9s %9s %9s %6.1f%s\n",
				p.Name, p.Count, us(p.TotalMicros), us(p.P50Micros), us(p.P95Micros),
				us(p.P99Micros), us(p.MaxMicros), p.Pct, note)
		}
		b.WriteByte('\n')
	}
	if d.Replan != nil {
		r := d.Replan
		b.WriteString("Replanning\n")
		fmt.Fprintf(&b, "  plans %d, replans %d warm / %d cold (hit rate %.0f%%)\n",
			r.Plans, r.WarmReplans, r.ColdReplans, 100*r.HitRate)
		fmt.Fprintf(&b, "  decisions: %d replayed, %d fresh iterations (replay share %.0f%%)\n\n",
			r.DecisionsReplayed, r.Iterations, 100*r.ReplayShare)
	}
	if len(d.Stalls) > 0 {
		b.WriteString("Stall attribution (simulated)\n")
		for _, s := range d.Stalls {
			fmt.Fprintf(&b, "  %-16s %10s %6.1f%%\n", s.Cause, us(s.Micros), s.Pct)
		}
		b.WriteByte('\n')
	}
	if len(d.EventCounts) > 0 {
		b.WriteString("Flight recorder\n")
		for _, ec := range d.EventCounts {
			fmt.Fprintf(&b, "  %-24s %6d\n", ec.Kind, ec.Count)
		}
		if d.DroppedEvents > 0 {
			fmt.Fprintf(&b, "  (%d older events overwritten)\n", d.DroppedEvents)
		}
		if len(d.LastEvents) > 0 {
			b.WriteString("  last events:\n")
			for _, ev := range d.LastEvents {
				fmt.Fprintf(&b, "    #%-5d %9s  %-20s %s", ev.Seq, us(ev.TimeMicros), ev.Kind, ev.Msg)
				for _, a := range ev.Attrs {
					fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
				}
				b.WriteByte('\n')
			}
		}
		b.WriteByte('\n')
	}
	if len(d.Regressions) > 0 {
		b.WriteString("Top regressions vs baseline\n")
		for _, r := range d.Regressions {
			fmt.Fprintf(&b, "  %-48s %14.6g -> %14.6g  +%.1f%%\n", r.Name, r.Baseline, r.Current, r.Pct)
		}
		b.WriteByte('\n')
	}
	if b.Len() == 0 {
		b.WriteString("nothing to diagnose: dump has no spans, metrics, or events\n")
	}
	return b.String()
}

// us renders integer microseconds compactly.
func us(v int64) string {
	switch {
	case v >= 10_000_000:
		return fmt.Sprintf("%.1fs", float64(v)/1e6)
	case v >= 10_000:
		return fmt.Sprintf("%.1fms", float64(v)/1e3)
	default:
		return strconv.FormatInt(v, 10) + "µs"
	}
}

// ParsePrometheus parses the subset of the Prometheus text exposition
// WritePrometheus emits back into a metrics snapshot, so the doctor
// can analyze a -metrics file without a full dump. Histograms are
// reassembled from their cumulative _bucket/_sum/_count series.
func ParsePrometheus(r io.Reader) ([]Metric, error) {
	kinds := make(map[string]string)
	var order []string
	byKey := make(map[string]*Metric)

	add := func(key string, m Metric) *Metric {
		if got, ok := byKey[key]; ok {
			return got
		}
		cp := m
		byKey[key] = &cp
		order = append(order, key)
		return byKey[key]
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				kinds[fields[2]] = fields[3]
			}
			continue
		}
		name, labels, value, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: metrics line %d: %w", lineNo, err)
		}
		base, suffix := name, ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, s)
			if trimmed != name && kinds[trimmed] == "histogram" {
				base, suffix = trimmed, s
				break
			}
		}
		if suffix != "" {
			var le string
			kept := labels[:0]
			for _, l := range labels {
				if l.Key == "le" {
					le = l.Value
					continue
				}
				kept = append(kept, l)
			}
			labels = kept
			key := "h\x00" + base + "\x00" + labelKey(labels)
			m := add(key, Metric{Name: base, Kind: "histogram", Labels: append([]Label(nil), labels...),
				Histogram: &HistogramSnapshot{}})
			h := m.Histogram
			switch suffix {
			case "_bucket":
				if le == "+Inf" {
					h.Counts = append(h.Counts, int64(value))
				} else {
					bound, err := strconv.ParseFloat(le, 64)
					if err != nil {
						return nil, fmt.Errorf("obs: metrics line %d: bad le %q", lineNo, le)
					}
					h.Bounds = append(h.Bounds, bound)
					h.Counts = append(h.Counts, int64(value))
				}
			case "_sum":
				h.Sum = value
				m.Value = value
			case "_count":
				h.Count = int64(value)
			}
			continue
		}
		kind := kinds[name]
		if kind == "" {
			kind = "gauge" // untyped series read back as gauges
		}
		key := "s\x00" + name + "\x00" + labelKey(labels)
		m := add(key, Metric{Name: name, Kind: kind, Labels: append([]Label(nil), labels...), Value: value})
		if kind == "counter" {
			m.Int = int64(value)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Metric, 0, len(order))
	for _, key := range order {
		m := byKey[key]
		if m.Kind == "histogram" {
			// _bucket series are cumulative; the snapshot stores
			// per-bucket counts.
			h := m.Histogram
			for i := len(h.Counts) - 1; i > 0; i-- {
				h.Counts[i] -= h.Counts[i-1]
			}
		}
		out = append(out, *m)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelKey(out[i].Labels) < labelKey(out[j].Labels)
	})
	return out, nil
}

func labelKey(labels []Label) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "\x01" + l.Value
	}
	return strings.Join(parts, "\x00")
}

// parsePromLine splits `name{k="v",...} value` (labels optional).
func parsePromLine(line string) (string, []Label, float64, error) {
	name := line
	var labels []Label
	rest := ""
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", nil, 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		var err error
		labels, err = parsePromLabels(line[i+1 : j])
		if err != nil {
			return "", nil, 0, err
		}
		rest = strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return "", nil, 0, fmt.Errorf("expected `name value`, got %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	v, err := parsePromFloat(rest)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q in %q", rest, line)
	}
	return name, labels, v, nil
}

func parsePromFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return inf(1), nil
	case "-Inf":
		return inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// inf avoids importing math just for the two infinities.
func inf(sign int) float64 {
	v, _ := strconv.ParseFloat("Inf", 64)
	if sign < 0 {
		return -v
	}
	return v
}

func parsePromLabels(s string) ([]Label, error) {
	var out []Label
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return nil, fmt.Errorf("bad label segment %q", s)
		}
		key := s[:eq]
		i := eq + 2
		var val strings.Builder
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
			} else {
				val.WriteByte(s[i])
			}
			i++
		}
		if i >= len(s) {
			return nil, fmt.Errorf("unterminated label value in %q", s)
		}
		out = append(out, Label{Key: key, Value: val.String()})
		s = s[i+1:]
		s = strings.TrimPrefix(s, ",")
	}
	return out, nil
}

// ParsePrometheusFile reads a -metrics exposition file into a
// metrics-only Dump.
func ParsePrometheusFile(path string) (*Dump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ms, err := ParsePrometheus(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &Dump{Reason: "metrics:" + path, Metrics: ms}, nil
}

// ParseChromeTraceFile reads a Chrome/Perfetto trace (as written by
// the sim exporter or any trace_event producer) into a spans-only
// Dump: every "X" complete slice becomes a flat span named after the
// slice, so the phase breakdown works on plain -trace output too.
func ParseChromeTraceFile(path string) (*Dump, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tr struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &tr); err != nil {
		return nil, fmt.Errorf("obs: parse trace %s: %w", path, err)
	}
	var spans []*SpanNode
	for _, ev := range tr.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		spans = append(spans, &SpanNode{Name: ev.Name, StartMicros: int64(ev.TS), DurMicros: int64(ev.Dur)})
	}
	return &Dump{Reason: "trace:" + path, Spans: spans}, nil
}
