package obs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestFlightRingOverwrite(t *testing.T) {
	f := NewFlight(4, fakeClock(time.Millisecond))
	for i := 0; i < 10; i++ {
		f.Record("k", fmt.Sprintf("ev%d", i))
	}
	if got := f.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := f.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("Events len = %d", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(6 + i)
		if ev.Seq != wantSeq {
			t.Fatalf("event %d seq = %d, want %d (seq numbers must survive overwrite)", i, ev.Seq, wantSeq)
		}
		if want := fmt.Sprintf("ev%d", 6+i); ev.Msg != want {
			t.Fatalf("event %d msg = %q, want %q", i, ev.Msg, want)
		}
	}
	// Timestamps advance 1ms per record after the t0 reading.
	if evs[0].TimeMicros != 7000 {
		t.Fatalf("first retained timestamp = %d, want 7000", evs[0].TimeMicros)
	}
}

func TestFlightPartialAndNil(t *testing.T) {
	var nilF *Flight
	nilF.Record("k", "dropped")
	if nilF.Events() != nil || nilF.Len() != 0 || nilF.Dropped() != 0 {
		t.Fatalf("nil flight must be inert")
	}

	f := NewFlight(8, fakeClock(time.Millisecond))
	f.Record("a", "first", L("x", "1"))
	f.Record("b", "second")
	evs := f.Events()
	if len(evs) != 2 || evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Fatalf("partial ring events = %+v", evs)
	}
	if len(evs[0].Attrs) != 1 || evs[0].Attrs[0] != L("x", "1") {
		t.Fatalf("attrs = %+v", evs[0].Attrs)
	}
	if f.Dropped() != 0 {
		t.Fatalf("Dropped = %d before overwrite", f.Dropped())
	}
}

func TestFlightDefaultSize(t *testing.T) {
	f := NewFlight(0, fakeClock(time.Millisecond))
	for i := 0; i < DefaultFlightSize+5; i++ {
		f.Record("k", "")
	}
	if f.Len() != DefaultFlightSize || f.Dropped() != 5 {
		t.Fatalf("Len=%d Dropped=%d", f.Len(), f.Dropped())
	}
}

func TestDumperTriggerAndFileSink(t *testing.T) {
	clock := fakeClock(time.Millisecond)
	fl := NewFlight(8, clock)
	tr := NewTracer(clock)
	reg := NewRegistry()
	reg.Add("tsplit_planner_plans_total", 2)

	sp := tr.StartSpan("planner.plan")
	sp.End()
	fl.Record("ladder.escalate", "injected OOM", L("stage", "replan+0.10"))

	path := filepath.Join(t.TempDir(), "dump.json")
	d := &Dumper{Flight: fl, Registry: reg, Tracer: tr, Sink: FileSink(path)}
	d.Trigger("escalation")
	if err := d.Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}
	if got := d.Triggers(); len(got) != 1 || got[0] != "escalation" {
		t.Fatalf("Triggers = %v", got)
	}

	dump, err := ReadDumpFile(path)
	if err != nil {
		t.Fatalf("ReadDumpFile: %v", err)
	}
	if dump.Reason != "escalation" || dump.TriggerSeq != 1 {
		t.Fatalf("dump header = %+v", dump)
	}
	if len(dump.Events) != 1 || dump.Events[0].Kind != "ladder.escalate" {
		t.Fatalf("dump events = %+v", dump.Events)
	}
	if len(dump.Spans) != 1 || dump.Spans[0].Name != "planner.plan" {
		t.Fatalf("dump spans = %+v", dump.Spans)
	}
	found := false
	for _, m := range dump.Metrics {
		if m.Name == "tsplit_planner_plans_total" && m.Int == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("dump metrics missing plans_total: %+v", dump.Metrics)
	}
}

func TestDumperNilPartsAndSinkError(t *testing.T) {
	var nilD *Dumper
	nilD.Trigger("ignored") // must not panic
	if nilD.Triggers() != nil || nilD.Err() != nil {
		t.Fatalf("nil dumper must be inert")
	}

	wantErr := fmt.Errorf("sink broke")
	d := &Dumper{Sink: func(*Dump) error { return wantErr }}
	d.Trigger("first")
	d.Trigger("second")
	if d.Err() != wantErr {
		t.Fatalf("Err = %v, want first sink error retained", d.Err())
	}
	if got := d.Triggers(); len(got) != 2 {
		t.Fatalf("Triggers = %v", got)
	}

	// No sink at all: trigger is recorded, nothing written.
	d2 := &Dumper{}
	d2.Trigger("no sink")
	if d2.Err() != nil || len(d2.Triggers()) != 1 {
		t.Fatalf("sinkless dumper: err=%v triggers=%v", d2.Err(), d2.Triggers())
	}
}

func TestDumpRoundTrip(t *testing.T) {
	dump := &Dump{
		Reason:        "final",
		TriggerSeq:    9,
		DroppedEvents: 3,
		Events:        []Event{{Seq: 6, TimeMicros: 10, Kind: "plan.decision", Msg: "swap t3"}},
		Metrics:       []Metric{{Name: "m", Kind: "counter", Int: 4, Value: 4}},
		Spans:         []*SpanNode{{Name: "root", StartMicros: 1, DurMicros: 2}},
	}
	var buf bytes.Buffer
	if err := WriteDump(&buf, dump); err != nil {
		t.Fatalf("WriteDump: %v", err)
	}
	got, err := ReadDump(&buf)
	if err != nil {
		t.Fatalf("ReadDump: %v", err)
	}
	if got.Reason != dump.Reason || got.TriggerSeq != 9 || got.DroppedEvents != 3 {
		t.Fatalf("round trip header = %+v", got)
	}
	if len(got.Events) != 1 || got.Events[0].Kind != "plan.decision" {
		t.Fatalf("round trip events = %+v", got.Events)
	}
	if len(got.Spans) != 1 || got.Spans[0].DurMicros != 2 {
		t.Fatalf("round trip spans = %+v", got.Spans)
	}
}

func TestReadDumpFileErrors(t *testing.T) {
	if _, err := ReadDumpFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatalf("missing file must error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDumpFile(bad); err == nil {
		t.Fatalf("bad JSON must error")
	}
}
