package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPhaseStats(t *testing.T) {
	spans := []*SpanNode{
		{Name: "planner.plan", StartMicros: 0, DurMicros: 100, Children: []*SpanNode{
			{Name: "planner.fold", StartMicros: 10, DurMicros: 30},
			{Name: "planner.fold", StartMicros: 50, DurMicros: 10},
			{Name: "planner.finalize", StartMicros: 90, DurMicros: 5},
		}},
		{Name: "sim.run", StartMicros: 200, DurMicros: -1, Children: []*SpanNode{
			{Name: "sim.op", StartMicros: 200, DurMicros: 7},
		}},
	}
	stats := phaseStats(spans)
	byName := map[string]PhaseStat{}
	for _, s := range stats {
		byName[s.Name] = s
	}
	fold := byName["planner.fold"]
	if fold.Count != 2 || fold.TotalMicros != 40 || fold.P50Micros != 10 || fold.MaxMicros != 30 {
		t.Fatalf("fold = %+v", fold)
	}
	// Root total counts only ended roots (100); fold share is 40%.
	if fold.Pct != 40 {
		t.Fatalf("fold.Pct = %v", fold.Pct)
	}
	run := byName["sim.run"]
	if run.Count != 1 || run.Open != 1 || run.TotalMicros != 0 {
		t.Fatalf("open root = %+v", run)
	}
	// Ordering: largest total first.
	if stats[0].Name != "planner.plan" || stats[1].Name != "planner.fold" {
		t.Fatalf("order = %v, %v", stats[0].Name, stats[1].Name)
	}
}

func TestDiagnoseFromDump(t *testing.T) {
	reg := NewRegistry()
	reg.Add("tsplit_planner_plans_total", 1)
	reg.Add("tsplit_planner_replans_total", 3, L("mode", "warm"))
	reg.Add("tsplit_planner_replans_total", 1, L("mode", "cold"))
	reg.Add("tsplit_planner_iterations_total", 25)
	reg.Add("tsplit_planner_decisions_replayed_total", 75)
	reg.Add("tsplit_sim_stall_microseconds_total", 900, L("cause", "alloc"))
	reg.Add("tsplit_sim_stall_microseconds_total", 100, L("cause", "input"))

	dump := &Dump{
		Reason:        "escalation",
		DroppedEvents: 2,
		Events: []Event{
			{Seq: 2, Kind: "plan.decision", Msg: "swap t1"},
			{Seq: 3, Kind: "plan.decision", Msg: "split t2"},
			{Seq: 4, Kind: "ladder.escalate", Msg: "OOM at margin 0"},
		},
		Metrics: reg.Snapshot(),
		Spans: []*SpanNode{
			{Name: "planner.plan", StartMicros: 0, DurMicros: 1000},
		},
	}
	diag := Diagnose(dump, nil)
	if diag.Reason != "escalation" || diag.DroppedEvents != 2 {
		t.Fatalf("header = %+v", diag)
	}
	if diag.Replan == nil || diag.Replan.WarmReplans != 3 || diag.Replan.ColdReplans != 1 {
		t.Fatalf("replan = %+v", diag.Replan)
	}
	if diag.Replan.HitRate != 0.75 || diag.Replan.ReplayShare != 0.75 {
		t.Fatalf("rates = %+v", diag.Replan)
	}
	if len(diag.Stalls) != 2 || diag.Stalls[0].Cause != "alloc" || diag.Stalls[0].Pct != 90 {
		t.Fatalf("stalls = %+v", diag.Stalls)
	}
	if len(diag.EventCounts) != 2 || diag.EventCounts[0] != (EventCount{Kind: "ladder.escalate", Count: 1}) {
		t.Fatalf("event counts = %+v", diag.EventCounts)
	}
	if len(diag.LastEvents) != 3 {
		t.Fatalf("last events = %+v", diag.LastEvents)
	}

	out := diag.Render()
	for _, want := range []string{
		"dump reason: escalation",
		"planner.plan",
		"hit rate 75%",
		"replay share 75%",
		"alloc",
		"ladder.escalate",
		"(2 older events overwritten)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}

	var buf bytes.Buffer
	if err := diag.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"hit_rate": 0.75`) {
		t.Fatalf("JSON missing hit_rate:\n%s", buf.String())
	}
}

func TestDiagnoseRegressions(t *testing.T) {
	base := &Dump{
		Metrics: []Metric{
			{Name: "tsplit_sim_stall_microseconds_total", Kind: "counter", Labels: []Label{L("cause", "alloc")}, Int: 100},
			{Name: "tsplit_planner_plans_total", Kind: "counter", Int: 5},
		},
		Spans: []*SpanNode{{Name: "planner.plan", DurMicros: 1000}},
	}
	cur := &Dump{
		Metrics: []Metric{
			{Name: "tsplit_sim_stall_microseconds_total", Kind: "counter", Labels: []Label{L("cause", "alloc")}, Int: 300},
			{Name: "tsplit_planner_plans_total", Kind: "counter", Int: 5},
			{Name: "tsplit_new_metric_total", Kind: "counter", Int: 9}, // no baseline: skipped
		},
		Spans: []*SpanNode{{Name: "planner.plan", DurMicros: 1500}},
	}
	diag := Diagnose(cur, base)
	if len(diag.Regressions) != 2 {
		t.Fatalf("regressions = %+v", diag.Regressions)
	}
	top := diag.Regressions[0]
	if top.Name != "tsplit_sim_stall_microseconds_total{cause=alloc}" || top.Pct != 200 {
		t.Fatalf("top regression = %+v", top)
	}
	if diag.Regressions[1].Name != "phase:planner.plan total_us" || diag.Regressions[1].Pct != 50 {
		t.Fatalf("phase regression = %+v", diag.Regressions[1])
	}
	if !strings.Contains(diag.Render(), "Top regressions vs baseline") {
		t.Fatalf("Render missing regression section")
	}
}

func TestDiagnoseEmptyDump(t *testing.T) {
	diag := Diagnose(&Dump{}, nil)
	if out := diag.Render(); !strings.Contains(out, "nothing to diagnose") {
		t.Fatalf("empty render = %q", out)
	}
}

// TestParsePrometheusRoundTrip feeds WritePrometheus output back
// through ParsePrometheus and checks the snapshot survives: exact
// counters, gauges, and reassembled (de-cumulated) histograms.
func TestParsePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("tsplit_rt_ops_total", "ops")
	r.Add("tsplit_rt_ops_total", 7, L("kind", "swap"))
	r.Add("tsplit_rt_ops_total", 2, L("kind", "re\"comp"))
	r.Set("tsplit_rt_gauge", 1.5)
	r.SetBuckets("tsplit_rt_lat_seconds", []float64{0.1, 1})
	r.Observe("tsplit_rt_lat_seconds", 0.05)
	r.Observe("tsplit_rt_lat_seconds", 0.5)
	r.Observe("tsplit_rt_lat_seconds", 99)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	ms, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatalf("ParsePrometheus: %v\ninput:\n%s", err, buf.String())
	}
	if got := findCounter(ms, "tsplit_rt_ops_total", L("kind", "swap")); got != 7 {
		t.Fatalf("swap counter = %d", got)
	}
	if got := findCounter(ms, "tsplit_rt_ops_total", L("kind", `re"comp`)); got != 2 {
		t.Fatalf("escaped-label counter = %d", got)
	}
	var hist *Metric
	var gauge *Metric
	for i := range ms {
		switch ms[i].Name {
		case "tsplit_rt_lat_seconds":
			hist = &ms[i]
		case "tsplit_rt_gauge":
			gauge = &ms[i]
		}
	}
	if gauge == nil || gauge.Kind != "gauge" || gauge.Value != 1.5 {
		t.Fatalf("gauge = %+v", gauge)
	}
	if hist == nil || hist.Kind != "histogram" {
		t.Fatalf("histogram missing: %+v", ms)
	}
	h := hist.Histogram
	if len(h.Bounds) != 2 || h.Bounds[0] != 0.1 || h.Bounds[1] != 1 {
		t.Fatalf("bounds = %v", h.Bounds)
	}
	if len(h.Counts) != 3 || h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[2] != 1 {
		t.Fatalf("counts = %v (must be de-cumulated)", h.Counts)
	}
	if h.Count != 3 || h.Sum != 99.55 {
		t.Fatalf("count/sum = %d/%v", h.Count, h.Sum)
	}
}

func TestParsePrometheusErrors(t *testing.T) {
	for _, bad := range []string{
		"tsplit_x",            // no value
		"tsplit_x{k=v} 1",     // unquoted label value
		"tsplit_x{k=\"v\" 1",  // no closing brace
		"tsplit_x notanumber", // bad value
	} {
		if _, err := ParsePrometheus(strings.NewReader(bad + "\n")); err == nil {
			t.Fatalf("ParsePrometheus(%q) did not error", bad)
		}
	}
}

func TestParsePrometheusFileAndChromeTraceFile(t *testing.T) {
	dir := t.TempDir()
	mp := filepath.Join(dir, "metrics.prom")
	if err := os.WriteFile(mp, []byte("# TYPE tsplit_x_total counter\ntsplit_x_total 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dump, err := ParsePrometheusFile(mp)
	if err != nil {
		t.Fatal(err)
	}
	if findCounter(dump.Metrics, "tsplit_x_total") != 4 {
		t.Fatalf("metrics dump = %+v", dump.Metrics)
	}

	tp := filepath.Join(dir, "trace.json")
	trace := `{"traceEvents":[` +
		`{"name":"conv1","ph":"X","ts":10,"dur":5,"pid":1,"tid":1},` +
		`{"name":"thread_name","ph":"M","pid":1,"tid":1},` +
		`{"name":"conv1","ph":"X","ts":20,"dur":7,"pid":1,"tid":1}]}`
	if err := os.WriteFile(tp, []byte(trace), 0o644); err != nil {
		t.Fatal(err)
	}
	tdump, err := ParseChromeTraceFile(tp)
	if err != nil {
		t.Fatal(err)
	}
	if len(tdump.Spans) != 2 {
		t.Fatalf("trace spans = %+v", tdump.Spans)
	}
	diag := Diagnose(tdump, nil)
	if len(diag.Phases) != 1 || diag.Phases[0].Name != "conv1" || diag.Phases[0].TotalMicros != 12 {
		t.Fatalf("trace phases = %+v", diag.Phases)
	}

	if _, err := ParsePrometheusFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing metrics file must error")
	}
	if _, err := ParseChromeTraceFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing trace file must error")
	}
	badTrace := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badTrace, []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseChromeTraceFile(badTrace); err == nil {
		t.Fatal("bad trace JSON must error")
	}
}
