package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestPrometheusGolden pins the full text exposition: HELP/TYPE
// headers, label sorting and escaping, exact counter integers, gauge
// float formatting, and cumulative histogram expansion.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("tsplit_test_ops_total", "Operations\nexecuted, with a \\ backslash.")
	r.SetHelp("tsplit_test_latency_seconds", "Latency distribution.")
	r.SetBuckets("tsplit_test_latency_seconds", []float64{0.1, 1})

	r.Add("tsplit_test_ops_total", 3, L("kind", `sw"ap`))
	r.Add("tsplit_test_ops_total", 2, L("kind", "re\ncompute"))
	r.Add("tsplit_test_ops_total", 1, L("kind", `sw"ap`))
	r.Set("tsplit_test_mem_bytes", 1.5e9)
	r.Observe("tsplit_test_latency_seconds", 0.05)
	r.Observe("tsplit_test_latency_seconds", 0.5)
	r.Observe("tsplit_test_latency_seconds", 2.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP tsplit_test_latency_seconds Latency distribution.`,
		`# TYPE tsplit_test_latency_seconds histogram`,
		`tsplit_test_latency_seconds_bucket{le="0.1"} 1`,
		`tsplit_test_latency_seconds_bucket{le="1"} 2`,
		`tsplit_test_latency_seconds_bucket{le="+Inf"} 3`,
		`tsplit_test_latency_seconds_sum 3.05`,
		`tsplit_test_latency_seconds_count 3`,
		`# TYPE tsplit_test_mem_bytes gauge`,
		`tsplit_test_mem_bytes 1.5e+09`,
		`# HELP tsplit_test_ops_total Operations\nexecuted, with a \\ backslash.`,
		`# TYPE tsplit_test_ops_total counter`,
		`tsplit_test_ops_total{kind="re\ncompute"} 2`,
		`tsplit_test_ops_total{kind="sw\"ap"} 4`,
		``,
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestCounterExactness checks int64 semantics survive values float64
// cannot represent exactly.
func TestCounterExactness(t *testing.T) {
	r := NewRegistry()
	big := int64(1)<<53 + 1 // not representable as float64
	r.Add("tsplit_test_big_total", big)
	if got := r.Counter("tsplit_test_big_total"); got != big {
		t.Fatalf("counter %d != %d", got, big)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tsplit_test_big_total 9007199254740993\n") {
		t.Fatalf("exact integer lost in exposition:\n%s", buf.String())
	}
}

// TestJSONExport round-trips the snapshot through encoding/json.
func TestJSONExport(t *testing.T) {
	r := NewRegistry()
	r.Add("tsplit_test_a_total", 7, L("x", "y"))
	r.Set("tsplit_test_b", 2.25)
	r.Observe("tsplit_test_c_seconds", 0.3)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var ms []Metric
	if err := json.Unmarshal(buf.Bytes(), &ms); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(ms) != 3 {
		t.Fatalf("want 3 metrics, got %d", len(ms))
	}
	if ms[0].Name != "tsplit_test_a_total" || ms[0].Int != 7 || ms[0].Labels[0] != L("x", "y") {
		t.Fatalf("counter not preserved: %+v", ms[0])
	}
	if ms[2].Histogram == nil || ms[2].Histogram.Count != 1 {
		t.Fatalf("histogram not preserved: %+v", ms[2])
	}
}

// TestLabelOrderInsensitive checks that label order does not create
// distinct series.
func TestLabelOrderInsensitive(t *testing.T) {
	r := NewRegistry()
	r.Add("tsplit_test_m_total", 1, L("a", "1"), L("b", "2"))
	r.Add("tsplit_test_m_total", 1, L("b", "2"), L("a", "1"))
	if got := r.Counter("tsplit_test_m_total", L("a", "1"), L("b", "2")); got != 2 {
		t.Fatalf("label order split the series: %d", got)
	}
	if len(r.Snapshot()) != 1 {
		t.Fatalf("expected one series, got %d", len(r.Snapshot()))
	}
}

// TestKindMismatchPanics pins the programming-error contract.
func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Add("tsplit_test_k", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Set("tsplit_test_k", 1)
}

// TestConcurrentUpdates hammers one registry from many goroutines —
// counters, gauges, histograms, plus snapshots and expositions racing
// against the writers. Run under -race (make ci does); the final
// counter and histogram totals must be exact.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lab := L("worker", string(rune('a'+w%4)))
			for i := 0; i < perWorker; i++ {
				r.Add("tsplit_test_conc_total", 1)
				r.Add("tsplit_test_conc_total", 1, lab)
				r.Set("tsplit_test_conc_gauge", float64(i))
				r.Observe("tsplit_test_conc_seconds", float64(i)*1e-4)
				if i%100 == 0 {
					_ = r.Snapshot()
					var buf bytes.Buffer
					_ = r.WritePrometheus(&buf)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("tsplit_test_conc_total"); got != workers*perWorker {
		t.Fatalf("lost counter updates: %d != %d", got, workers*perWorker)
	}
	var histTotal int64
	for _, m := range r.Snapshot() {
		if m.Name == "tsplit_test_conc_seconds" {
			histTotal = m.Histogram.Count
		}
	}
	if histTotal != workers*perWorker {
		t.Fatalf("lost histogram observations: %d != %d", histTotal, workers*perWorker)
	}
}
