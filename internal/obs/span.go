package obs

import (
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"time"
)

// Tracer collects a forest of timed spans. It is the tracing
// counterpart of Registry: dependency-free, concurrency-safe, and
// deterministic when driven by a fake Clock. A nil *Tracer is a valid
// no-op — StartSpan on it returns a nil *Span, whose methods are also
// no-ops — so instrumented code carries exactly one nil check per
// span and nothing else (the bench-guard CI step holds the planner's
// nil-tracer path to the recorded allocs/op baseline).
//
// Span timestamps are stored as offsets from the tracer's creation
// instant, so exporting the same run under the same Clock sequence
// yields byte-identical JSON regardless of when (or on what machine)
// it ran.
//
// lint:nilsafe — the no-op contract above is machine-checked: every
// exported method must reach a nil-receiver guard before any
// dereference, directly or through a transitively nil-safe method.
type Tracer struct {
	mu    sync.Mutex
	clock Clock
	t0    time.Time
	roots []*Span // lint:guardedby mu
}

// NewTracer creates a tracer reading timestamps from clock (Wall when
// nil). The creation instant is time zero for every span offset.
func NewTracer(clock Clock) *Tracer {
	if clock == nil {
		clock = Wall
	}
	return &Tracer{clock: clock, t0: clock()}
}

// Span is one timed, named region of work. Spans nest: children
// created through (*Span).StartSpan are exported inside their parent.
// A Span is not safe for concurrent mutation; concurrent subsystems
// (the experiment pool) give each goroutine its own root span.
//
// lint:nilsafe — a nil *Span (from a nil tracer's StartSpan) is a
// no-op; every exported method guards the receiver first.
type Span struct {
	tr       *Tracer
	name     string
	start    time.Duration // offset from tr.t0
	dur      time.Duration // -1 while the span is still open
	attrs    []Label
	children []*Span
}

// StartSpan opens a root span. Nil-safe: a nil tracer returns a nil
// span. Prefer attr-free calls on hot paths (a zero-length variadic
// does not allocate) and attach attrs afterwards with SetAttr.
func (t *Tracer) StartSpan(name string, attrs ...Label) *Span {
	if t == nil {
		return nil
	}
	sp := t.newSpan(name, attrs)
	t.mu.Lock()
	t.roots = append(t.roots, sp)
	t.mu.Unlock()
	return sp
}

// StartSpan opens a child of s. Nil-safe on a nil receiver.
func (s *Span) StartSpan(name string, attrs ...Label) *Span {
	if s == nil {
		return nil
	}
	sp := s.tr.newSpan(name, attrs)
	s.children = append(s.children, sp)
	return sp
}

func (t *Tracer) newSpan(name string, attrs []Label) *Span {
	sp := &Span{tr: t, name: name, start: t.clock().Sub(t.t0), dur: -1}
	if len(attrs) > 0 {
		sp.attrs = append(sp.attrs, attrs...)
	}
	return sp
}

// End closes the span, fixing its duration. Ending twice keeps the
// first duration. Nil-safe.
func (s *Span) End() {
	if s == nil || s.dur >= 0 {
		return
	}
	s.dur = s.tr.clock().Sub(s.tr.t0) - s.start
}

// SetAttr attaches a key=value attribute. Nil-safe, so callers can
// annotate unconditionally after an unguarded StartSpan.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Label{Key: key, Value: value})
}

// SetAttrInt attaches an integer attribute. Nil-safe.
func (s *Span) SetAttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Label{Key: key, Value: strconv.FormatInt(v, 10)})
}

// SpanNode is the exported form of one span. Offsets and durations
// are integer microseconds: coarse enough to be stable across
// marshaling, fine enough for sub-millisecond planner phases.
type SpanNode struct {
	Name        string      `json:"name"`
	StartMicros int64       `json:"start_us"`
	DurMicros   int64       `json:"dur_us"` // -1: span never ended
	Attrs       []Label     `json:"attrs,omitempty"`
	Children    []*SpanNode `json:"children,omitempty"`
}

// Tree snapshots the whole span forest in creation order. Open spans
// export with DurMicros -1 rather than a clock read, so a snapshot
// taken twice without intervening work is identical.
func (t *Tracer) Tree() []*SpanNode {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*SpanNode, len(t.roots))
	for i, sp := range t.roots {
		out[i] = sp.node()
	}
	return out
}

func (s *Span) node() *SpanNode {
	n := &SpanNode{
		Name:        s.name,
		StartMicros: s.start.Microseconds(),
		DurMicros:   -1,
	}
	if s.dur >= 0 {
		n.DurMicros = s.dur.Microseconds()
	}
	if len(s.attrs) > 0 {
		n.Attrs = append([]Label(nil), s.attrs...)
	}
	if len(s.children) > 0 {
		n.Children = make([]*SpanNode, len(s.children))
		for i, c := range s.children {
			n.Children[i] = c.node()
		}
	}
	return n
}

// WriteJSON writes the span forest as indented JSON. Under a fixed
// Clock the output is byte-deterministic: span order is creation
// order, attr order is attachment order, and encoding/json emits
// struct fields in declaration order.
func (t *Tracer) WriteJSON(w io.Writer) error {
	tree := t.Tree()
	if tree == nil {
		tree = []*SpanNode{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tree)
}
