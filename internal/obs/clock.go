package obs

import "time"

// Clock supplies wall-clock readings to the components that time their
// own work: the planner's latency metric and the experiment sweeps'
// per-cell durations. It exists so the clockdet lint rule can ban
// ambient time.Now everywhere else in the module — wall clock must
// never leak into plans or simulated timestamps, which are pure
// functions of (graph, schedule, device, options). Code that needs
// elapsed time receives a Clock through its options; tests substitute
// a fake to make timing-dependent output reproducible.
type Clock func() time.Time

// Wall reads the real wall clock. This file is the module's only
// sanctioned time.Now call site (the clockdet allowlist).
func Wall() time.Time { return time.Now() }
