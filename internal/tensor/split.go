package tensor

import "fmt"

// SplitDim identifies which logical dimension a split targets. The paper
// (Fig. 6) distinguishes splitting in the sample dimension (batch) from
// the parameter/attribute dimension (channels for CNNs, hidden size for
// Transformers). The planner searches over both.
type SplitDim int

const (
	// DimSample splits along the batch axis (axis 0 of activations).
	DimSample SplitDim = iota
	// DimParam splits along the parameter/attribute axis — the output
	// channel axis for convolutions, the hidden axis for dense layers.
	DimParam
)

// String names the split dimension as in the paper's figures.
func (d SplitDim) String() string {
	if d == DimSample {
		return "sample"
	}
	return "param"
}

// Split computes the shapes of the pnum micro-tensors obtained by
// splitting s along axis. Extents that do not divide evenly are
// distributed front-loaded: the first (extent mod pnum) parts get one
// extra element, matching how a contiguous buffer is carved in the
// runtime. It returns an error when the axis is out of range or the
// extent is smaller than pnum (a micro-tensor may not be empty).
func Split(s Shape, axis, pnum int) ([]Shape, error) {
	if pnum < 1 {
		return nil, fmt.Errorf("tensor: split count %d < 1", pnum)
	}
	if axis < 0 || axis >= len(s) {
		return nil, fmt.Errorf("tensor: split axis %d out of range for shape %v", axis, s)
	}
	extent := s[axis]
	if extent < pnum {
		return nil, fmt.Errorf("tensor: cannot split extent %d into %d parts", extent, pnum)
	}
	base, rem := extent/pnum, extent%pnum
	parts := make([]Shape, pnum)
	for i := range parts {
		p := s.Clone()
		p[axis] = base
		if i < rem {
			p[axis]++
		}
		parts[i] = p
	}
	return parts, nil
}

// Merge is the inverse of Split along the same axis: it concatenates the
// part shapes, validating that all non-split extents agree.
func Merge(parts []Shape, axis int) (Shape, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("tensor: merge of zero parts")
	}
	out := parts[0].Clone()
	if axis < 0 || axis >= len(out) {
		return nil, fmt.Errorf("tensor: merge axis %d out of range for shape %v", axis, out)
	}
	for _, p := range parts[1:] {
		if len(p) != len(out) {
			return nil, fmt.Errorf("tensor: merge rank mismatch %v vs %v", p, out)
		}
		for ax := range p {
			if ax == axis {
				continue
			}
			if p[ax] != out[ax] {
				return nil, fmt.Errorf("tensor: merge extent mismatch on axis %d: %v vs %v", ax, p, out)
			}
		}
		out[axis] += p[axis]
	}
	return out, nil
}

// MaxSplit returns the largest legal pnum for splitting s along axis —
// the extent itself — or 0 when axis is out of range.
func MaxSplit(s Shape, axis int) int {
	if axis < 0 || axis >= len(s) {
		return 0
	}
	return s[axis]
}

// LargestPartBytes returns the byte size of the largest micro-tensor of
// a pnum-way split of s along axis. This is the quantity the planner's
// peak-memory model needs: after splitting, at most one micro-tensor of
// the input and one of the output are live simultaneously on device.
func LargestPartBytes(s Shape, axis, pnum int, dt DType) (int64, error) {
	parts, err := Split(s, axis, pnum)
	if err != nil {
		return 0, err
	}
	var max int64
	for _, p := range parts {
		if b := p.Bytes(dt); b > max {
			max = b
		}
	}
	return max, nil
}
