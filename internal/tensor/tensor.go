// Package tensor provides the shape and data-type algebra underlying
// TSPLIT's splittable-tensor (sTensor) abstraction.
//
// A tensor in the dataflow graph is metadata only: a shape, an element
// type, and a semantic kind (parameter, feature map, gradient, ...).
// The split primitive of the paper (Sec. V-A) operates on this metadata:
// splitting a tensor along a dimension yields the shapes of its
// micro-tensors, and merging is the inverse. Real data movement is the
// concern of internal/nn and internal/sim; this package answers the
// purely combinatorial questions (what shapes result from a split, how
// many bytes a micro-tensor occupies, which dimensions are splittable).
package tensor

import (
	"fmt"
	"strings"
)

// DType identifies the element type of a tensor.
type DType int

// Supported element types. Float32 is the training dtype used throughout
// the paper's evaluation; Float16 and Int32 exist for workloads that
// carry embeddings or token ids.
const (
	Float32 DType = iota
	Float16
	Int32
	Int64
)

// Size returns the size of one element in bytes.
func (d DType) Size() int64 {
	switch d {
	case Float32, Int32:
		return 4
	case Float16:
		return 2
	case Int64:
		return 8
	default:
		panic(fmt.Sprintf("tensor: unknown dtype %d", int(d)))
	}
}

// String returns the conventional lower-case name of the dtype.
func (d DType) String() string {
	switch d {
	case Float32:
		return "float32"
	case Float16:
		return "float16"
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	default:
		return fmt.Sprintf("dtype(%d)", int(d))
	}
}

// Shape is the extent of a tensor along each dimension. Dimension 0 is,
// by convention in every model of the zoo, the sample (batch) dimension
// for activations; parameters use their natural layout (e.g. OIHW for
// convolution kernels).
type Shape []int

// NewShape copies dims into a fresh Shape, validating that every extent
// is positive.
func NewShape(dims ...int) Shape {
	s := make(Shape, len(dims))
	for i, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim %d at axis %d", d, i))
		}
		s[i] = d
	}
	return s
}

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s) }

// NumElements returns the total element count, or 0 for a rank-0 shape.
func (s Shape) NumElements() int64 {
	if len(s) == 0 {
		return 0
	}
	n := int64(1)
	for _, d := range s {
		n *= int64(d)
	}
	return n
}

// Bytes returns the storage footprint of the shape in dtype dt.
func (s Shape) Bytes(dt DType) int64 { return s.NumElements() * dt.Size() }

// Clone returns an independent copy of the shape.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// Equal reports whether two shapes have identical rank and extents.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the shape as "[a b c]".
func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprint(d)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Kind is the semantic role of a tensor in DNN training. The memory
// planner treats kinds differently: parameters and their gradients are
// pinned on device for the whole iteration, feature maps are the swap /
// recompute / split candidates (paper Sec. II), and workspaces live only
// for the duration of one operator.
type Kind int

const (
	// FeatureMap is an activation produced in the forward pass and
	// consumed again by the backward pass — the dominant memory class.
	FeatureMap Kind = iota
	// Parameter is a trainable weight, resident for the whole run.
	Parameter
	// Gradient is the gradient of a feature map (backward activation).
	Gradient
	// ParamGrad is the gradient of a parameter, produced in backward
	// and consumed by the optimizer update.
	ParamGrad
	// OptState is optimizer state (momentum, variance) — resident, and
	// the tensor class that ZeRO-Offload moves to the CPU.
	OptState
	// Input is a training batch staged from the host.
	Input
	// Workspace is scratch memory used by a single operator.
	Workspace
	// HostCopy is a handle to bytes parked in host memory by a
	// swap-out; it occupies no device memory. It appears only in
	// augmented graphs (paper Fig. 10).
	HostCopy
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case FeatureMap:
		return "feature"
	case Parameter:
		return "param"
	case Gradient:
		return "grad"
	case ParamGrad:
		return "param-grad"
	case OptState:
		return "opt-state"
	case Input:
		return "input"
	case Workspace:
		return "workspace"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// IsResident reports whether tensors of this kind must stay on device
// for the full iteration under every policy in the paper except the
// offload baselines (ZeRO-Offload, FairScale-Offload), which relax it
// for Parameter/ParamGrad/OptState.
func (k Kind) IsResident() bool {
	switch k {
	case Parameter, OptState:
		return true
	default:
		return false
	}
}

// Evictable reports whether the kind participates in swap / recompute /
// split planning (the paper plans over feature maps; gradients have
// short lifetimes and inputs can be re-staged, so both are also fair
// candidates for swap).
func (k Kind) Evictable() bool {
	switch k {
	case FeatureMap, Input:
		return true
	default:
		return false
	}
}
