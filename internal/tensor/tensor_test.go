package tensor

import (
	"testing"
	"testing/quick"
)

func TestDTypeSizes(t *testing.T) {
	cases := map[DType]int64{Float32: 4, Float16: 2, Int32: 4, Int64: 8}
	for dt, want := range cases {
		if got := dt.Size(); got != want {
			t.Errorf("%v.Size() = %d, want %d", dt, got, want)
		}
	}
}

func TestShapeBasics(t *testing.T) {
	s := NewShape(4, 3, 2)
	if s.Rank() != 3 {
		t.Fatalf("rank = %d", s.Rank())
	}
	if s.NumElements() != 24 {
		t.Fatalf("elements = %d", s.NumElements())
	}
	if s.Bytes(Float32) != 96 {
		t.Fatalf("bytes = %d", s.Bytes(Float32))
	}
	if s.String() != "[4 3 2]" {
		t.Fatalf("string = %q", s.String())
	}
	c := s.Clone()
	c[0] = 9
	if s[0] != 4 {
		t.Fatal("Clone aliases the original")
	}
	if !s.Equal(NewShape(4, 3, 2)) || s.Equal(NewShape(4, 3)) || s.Equal(NewShape(4, 3, 1)) {
		t.Fatal("Equal misbehaves")
	}
}

func TestNewShapeRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive dim")
		}
	}()
	NewShape(4, 0)
}

func TestEmptyShape(t *testing.T) {
	var s Shape
	if s.NumElements() != 0 {
		t.Fatalf("empty shape elements = %d", s.NumElements())
	}
}

func TestKindProperties(t *testing.T) {
	if !Parameter.IsResident() || !OptState.IsResident() {
		t.Error("parameters and optimizer state must be resident")
	}
	if FeatureMap.IsResident() || Gradient.IsResident() {
		t.Error("activations must not be resident")
	}
	if !FeatureMap.Evictable() || !Input.Evictable() {
		t.Error("feature maps and inputs are eviction candidates")
	}
	if Parameter.Evictable() || ParamGrad.Evictable() {
		t.Error("parameters are not eviction candidates")
	}
}

func TestSplitEven(t *testing.T) {
	parts, err := Split(NewShape(8, 3), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("got %d parts", len(parts))
	}
	for _, p := range parts {
		if !p.Equal(NewShape(2, 3)) {
			t.Fatalf("part = %v", p)
		}
	}
}

func TestSplitUneven(t *testing.T) {
	parts, err := Split(NewShape(7, 2), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 2, 2} // front-loaded remainder
	total := 0
	for i, p := range parts {
		if p[0] != want[i] {
			t.Fatalf("part %d extent %d, want %d", i, p[0], want[i])
		}
		total += p[0]
	}
	if total != 7 {
		t.Fatalf("extents sum to %d", total)
	}
}

func TestSplitErrors(t *testing.T) {
	if _, err := Split(NewShape(4), 1, 2); err == nil {
		t.Error("axis out of range should fail")
	}
	if _, err := Split(NewShape(4), 0, 5); err == nil {
		t.Error("pnum > extent should fail")
	}
	if _, err := Split(NewShape(4), 0, 0); err == nil {
		t.Error("pnum 0 should fail")
	}
}

func TestMergeInverseOfSplit(t *testing.T) {
	s := NewShape(10, 4, 6)
	for axis := 0; axis < 3; axis++ {
		for pnum := 1; pnum <= s[axis]; pnum++ {
			parts, err := Split(s, axis, pnum)
			if err != nil {
				t.Fatal(err)
			}
			back, err := Merge(parts, axis)
			if err != nil {
				t.Fatal(err)
			}
			if !back.Equal(s) {
				t.Fatalf("axis %d pnum %d: merge(split) = %v", axis, pnum, back)
			}
		}
	}
}

func TestMergeErrors(t *testing.T) {
	if _, err := Merge(nil, 0); err == nil {
		t.Error("merging nothing should fail")
	}
	if _, err := Merge([]Shape{NewShape(2, 3), NewShape(2, 4)}, 0); err == nil {
		t.Error("mismatched non-merge extents should fail")
	}
	if _, err := Merge([]Shape{NewShape(2, 3), NewShape(2)}, 0); err == nil {
		t.Error("rank mismatch should fail")
	}
}

func TestMaxSplit(t *testing.T) {
	if MaxSplit(NewShape(5, 2), 0) != 5 || MaxSplit(NewShape(5, 2), 1) != 2 {
		t.Error("MaxSplit should return the extent")
	}
	if MaxSplit(NewShape(5), 3) != 0 {
		t.Error("out-of-range axis should return 0")
	}
}

func TestLargestPartBytes(t *testing.T) {
	b, err := LargestPartBytes(NewShape(7, 2), 0, 3, Float32)
	if err != nil {
		t.Fatal(err)
	}
	if b != 3*2*4 { // the front-loaded part has 3 rows
		t.Fatalf("largest part = %d bytes", b)
	}
}

// Property: splitting preserves total element count, for any valid
// (extent, pnum) pair.
func TestSplitPreservesElements(t *testing.T) {
	f := func(extent uint8, pn uint8, other uint8) bool {
		e := int(extent%200) + 1
		p := int(pn)%e + 1
		o := int(other%8) + 1
		s := NewShape(e, o)
		parts, err := Split(s, 0, p)
		if err != nil {
			return false
		}
		var total int64
		for _, part := range parts {
			total += part.NumElements()
		}
		return total == s.NumElements()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge is the left inverse of Split on any axis.
func TestQuickMergeInverse(t *testing.T) {
	f := func(a, b uint8, axis bool, pn uint8) bool {
		d0, d1 := int(a%50)+1, int(b%50)+1
		s := NewShape(d0, d1)
		ax := 0
		if axis {
			ax = 1
		}
		p := int(pn)%s[ax] + 1
		parts, err := Split(s, ax, p)
		if err != nil {
			return false
		}
		back, err := Merge(parts, ax)
		return err == nil && back.Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
