package core

import "sync"

// Candidate scoring fans out across a GOMAXPROCS-sized worker pool.
// Each bottleneck iteration has an indexable task space — one task per
// graph tensor (Step 1: swap/recompute scoring) followed by one per
// schedule position in the split lookahead window (Step 2) — and every
// task writes its result by value into its own slot of a shared
// buffer, so workers never contend. Determinism is load-bearing:
// better()'s relative tie window is not associative, so per-worker
// partial reductions would pick different winners than a serial scan.
// Instead the main goroutine folds the buffer strictly left-to-right
// in task order, which is exactly the serial planner's scan order
// (G.Tensors order, then split positions ascending). The parallel and
// serial paths therefore commit identical decision sequences and
// produce byte-identical plans (TestPlannerSerialParallelEquivalence).

// minParallelTasks keeps tiny scoring rounds on one goroutine; the
// fan-out overhead would dominate below this.
const minParallelTasks = 256

// runScoring scores every candidate for bottleneck i on up to
// `workers` goroutines and returns the fold winner — nil when no task
// produced a viable candidate — plus the number of viable candidates
// (the pool size reported by planner introspection).
func (pl *Planner) runScoring(i, workers int) (*candidate, int) {
	nT := len(pl.G.Tensors)
	nS := 0
	if !pl.Opts.DisableSplit {
		last := i + pl.Opts.SplitLookahead
		if last > len(pl.Sched.Ops)-1 {
			last = len(pl.Sched.Ops) - 1
		}
		if last >= i {
			nS = last - i + 1
		}
	}
	total := nT + nS
	if cap(pl.cands) < total {
		pl.cands = make([]candidate, total)
	}
	cands := pl.cands[:total]

	if workers > total {
		workers = total
	}
	if workers <= 1 || total < minParallelTasks {
		for k := 0; k < total; k++ {
			pl.scoreTask(k, i, nT, &cands[k], pl.walkers[0])
		}
	} else {
		// Freeze the lazily-rebuilt occupancy prefix sums so Stall and
		// FreeTime are read-only for the workers.
		pl.occ.Materialize()
		var wg sync.WaitGroup
		chunk := (total + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > total {
				hi = total
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int, wk *chainWalker) {
				defer wg.Done()
				for k := lo; k < hi; k++ {
					pl.scoreTask(k, i, nT, &cands[k], wk)
				}
			}(lo, hi, pl.walkers[w])
		}
		wg.Wait()
	}

	var best *candidate
	viable := 0
	for k := range cands {
		if c := &cands[k]; c.valid {
			viable++
			if pl.better(c, best) {
				best = c
			}
		}
	}
	return best, viable
}

// scoreTask dispatches task k: tensors first, then the split window.
func (pl *Planner) scoreTask(k, i, nT int, c *candidate, wk *chainWalker) {
	if k < nT {
		pl.scoreEvictInto(pl.G.Tensors[k], i, c, wk)
		return
	}
	pl.scoreSplitInto(i+(k-nT), c, wk)
}
