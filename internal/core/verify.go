package core

import (
	"fmt"
	"sort"

	"tsplit/internal/device"
	"tsplit/internal/graph"
	"tsplit/internal/memorypool"
	"tsplit/internal/tensor"
)

// This file is the static plan-invariant verifier: an independent
// checker that a Plan — whichever policy produced it — respects the
// safety rules every consumer of a plan (the simulator, the augmented
// graph rewrite, a real framework integration) silently assumes. It is
// deliberately decoupled from the planner's own bookkeeping: the
// planner maintains these invariants incrementally for speed, the
// verifier re-derives them from scratch, so a bookkeeping bug in one
// cannot hide in the other.
//
// Invariants checked (names appear in Violation.Invariant):
//
//	capacity            the plan's memory curve stays under the ceiling
//	restore-before-use  no consumer runs while its input is evicted,
//	                    and swap prefetches fit the eviction window
//	split-balance       split decisions are internally consistent and
//	                    micro-restored tensors pair with their split
//	                    consumer in both directions
//	recompute-chain     every recompute decision can actually be
//	                    re-derived: chains bottom out at available
//	                    tensors, without cycles, within the chain cap
//	pool-offsets        the plan's residency spans replay through the
//	                    best-fit pool without overlapping allocations

// Violation is one broken plan invariant.
type Violation struct {
	// Invariant names the broken rule (see the package list above).
	Invariant string `json:"invariant"`
	// Subject is the tensor or op the violation is about.
	Subject string `json:"subject"`
	// Detail explains what was expected and what the plan says.
	Detail string `json:"detail"`
}

// String renders "invariant(subject): detail".
func (v Violation) String() string {
	return fmt.Sprintf("%s(%s): %s", v.Invariant, v.Subject, v.Detail)
}

// Verify checks every plan invariant against the graph and device and
// returns the violations found (nil for a safe plan). The schedule and
// liveness are rebuilt from the graph; use VerifyAt to reuse existing
// ones or to check against a non-device capacity.
func Verify(p *Plan, g *graph.Graph, dev device.Device) []Violation {
	sched, err := graph.BuildSchedule(g)
	if err != nil {
		return []Violation{{Invariant: "recompute-chain", Subject: "schedule", Detail: err.Error()}}
	}
	lv := graph.AnalyzeLiveness(g, sched)
	return VerifyAt(p, g, sched, lv, dev.MemBytes)
}

// VerifyAt is Verify against an existing schedule/liveness pair and an
// explicit capacity ceiling in bytes (0 disables the capacity check —
// useful for plans built for a deliberately infeasible budget).
func VerifyAt(p *Plan, g *graph.Graph, sched *graph.Schedule, lv *graph.Liveness, capacity int64) []Violation {
	v := &verifier{p: p, g: g, sched: sched, lv: lv}
	if v.indicesInRange() {
		// Curve indexes its delta array by the plan's schedule positions;
		// only replay plans whose windows stay on the schedule (the
		// window check below reports the out-of-range entries).
		v.checkCapacity(capacity)
	}
	v.checkWindows()
	v.checkSplitBalance()
	v.checkRecomputeChains()
	v.checkPoolOffsets()
	sort.Slice(v.out, func(i, j int) bool {
		a, b := v.out[i], v.out[j]
		if a.Invariant != b.Invariant {
			return a.Invariant < b.Invariant
		}
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		return a.Detail < b.Detail
	})
	return v.out
}

type verifier struct {
	p     *Plan
	g     *graph.Graph
	sched *graph.Schedule
	lv    *graph.Liveness
	out   []Violation
}

func (v *verifier) addf(invariant, subject, format string, args ...any) {
	v.out = append(v.out, Violation{
		Invariant: invariant, Subject: subject,
		Detail: fmt.Sprintf(format, args...),
	})
}

// tensorIDs returns the plan's decided tensor IDs in ascending order,
// so every check visits the plan deterministically.
func (v *verifier) tensorIDs() []int {
	ids := make([]int, 0, len(v.p.Tensors))
	for id := range v.p.Tensors {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func (v *verifier) splitOpIDs() []int {
	ids := make([]int, 0, len(v.p.Splits))
	for id := range v.p.Splits {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// indicesInRange reports whether every decided schedule position lies
// inside [0, n), which the memory simulation assumes.
func (v *verifier) indicesInRange() bool {
	n := len(v.sched.Ops)
	for _, id := range v.tensorIDs() {
		tp := v.p.Tensors[id]
		if tp.EvictAt >= n || tp.RestoreAt >= n || tp.PrefetchAt >= n {
			return false
		}
	}
	return true
}

// checkCapacity replays the plan through the memory simulation and
// compares the peak against the ceiling (paper Eq. 1's constraint).
func (v *verifier) checkCapacity(capacity int64) {
	if capacity <= 0 {
		return
	}
	ms := NewMemSim(v.g, v.sched, v.lv)
	_, peak, peakIdx := ms.Curve(v.p)
	if peak > capacity {
		v.addf("capacity", v.sched.Ops[peakIdx].Name,
			"plan needs %d bytes at schedule index %d, ceiling is %d (%.2f GiB over)",
			peak, peakIdx, capacity, float64(peak-capacity)/(1<<30))
	}
}

// checkWindows verifies every non-reside decision's schedule window:
// the tensor is evicted no earlier than its production, restored no
// later than its last use, never consumed while absent, and (for swap)
// the prefetch is issued inside the eviction gap.
func (v *verifier) checkWindows() {
	n := len(v.sched.Ops)
	for _, id := range v.tensorIDs() {
		tp := v.p.Tensors[id]
		t := tp.Tensor
		if t == nil {
			v.addf("restore-before-use", fmt.Sprintf("tensor#%d", id), "plan entry has a nil tensor")
			continue
		}
		if tp.Opt == Reside {
			continue
		}
		name := t.Name
		first, last := v.lv.FirstUse[t], v.lv.LastUse[t]
		if tp.EvictAt < 0 || tp.EvictAt >= n {
			v.addf("restore-before-use", name, "EvictAt %d outside schedule [0,%d)", tp.EvictAt, n)
			continue
		}
		if first >= 0 && tp.EvictAt < first {
			v.addf("restore-before-use", name, "evicted at %d before production at %d", tp.EvictAt, first)
		}
		if tp.RestoreAt >= 0 {
			if tp.RestoreAt <= tp.EvictAt {
				v.addf("restore-before-use", name, "RestoreAt %d is not after EvictAt %d", tp.RestoreAt, tp.EvictAt)
			}
			if tp.RestoreAt > last {
				v.addf("restore-before-use", name, "RestoreAt %d is after the last use at %d", tp.RestoreAt, last)
			}
		}
		// No consumer may run inside the eviction gap (EvictAt, RestoreAt):
		// the tensor is on host (swap) or nonexistent (recompute) there.
		gapEnd := tp.RestoreAt
		if gapEnd < 0 {
			gapEnd = n // never restored: nothing may use it after eviction
		}
		for _, c := range t.Consumers {
			u := v.sched.Index[c]
			if u > tp.EvictAt && u < gapEnd {
				v.addf("restore-before-use", name,
					"consumer %s at index %d runs inside the eviction gap (%d, %d)",
					c.Name, u, tp.EvictAt, gapEnd)
			}
		}
		if tp.Opt == Swap && tp.MicroRestore <= 1 && tp.RestoreAt >= 0 {
			if tp.PrefetchAt <= tp.EvictAt || tp.PrefetchAt > tp.RestoreAt {
				v.addf("restore-before-use", name,
					"prefetch at %d outside the eviction window (%d, %d]",
					tp.PrefetchAt, tp.EvictAt, tp.RestoreAt)
			}
		}
	}
}

// checkSplitBalance verifies the two-way pairing between split
// decisions and micro-restored tensors: every OpSplit's MicroIns entry
// must be a swapped input of that op restored in exactly PNum
// micro-tensors at the op's own schedule position, and every tensor
// with MicroRestore > 1 must be claimed by exactly such a split.
func (v *verifier) checkSplitBalance() {
	// Forward direction: split decisions reference coherent tensors.
	claimed := map[int]int{} // tensor ID -> claiming op ID
	for _, opID := range v.splitOpIDs() {
		sp := v.p.Splits[opID]
		op := sp.Op
		if op == nil {
			v.addf("split-balance", fmt.Sprintf("op#%d", opID), "split entry has a nil op")
			continue
		}
		name := op.Name
		if sp.PNum < 2 {
			v.addf("split-balance", name, "p_num %d: a split needs at least 2 parts", sp.PNum)
		}
		if in, out := SplitTensors(op, sp.Dim); in == nil || out == nil {
			v.addf("split-balance", name, "op is not splittable along %s", sp.Dim)
		}
		if sp.In2 != nil && !op.HasInput(sp.In2) {
			v.addf("split-balance", name, "secondary input %s is not an input of the op", sp.In2.Name)
		}
		opIdx := v.sched.Index[op]
		for _, t := range sp.MicroIns {
			if !op.HasInput(t) {
				v.addf("split-balance", name, "micro-restored %s is not an input of the op", t.Name)
				continue
			}
			if prev, dup := claimed[t.ID]; dup {
				v.addf("split-balance", name,
					"micro-restored %s is already claimed by op #%d (one split consumer per tensor)", t.Name, prev)
				continue
			}
			claimed[t.ID] = opID
			tp, ok := v.p.Tensors[t.ID]
			switch {
			case !ok:
				v.addf("split-balance", name, "micro-restored %s has no plan entry", t.Name)
			case tp.Opt != Swap:
				v.addf("split-balance", name, "micro-restored %s is %s, want swap", t.Name, tp.Opt)
			case tp.MicroRestore != sp.PNum:
				v.addf("split-balance", name,
					"micro-restored %s restores in %d parts, split has p_num %d", t.Name, tp.MicroRestore, sp.PNum)
			case tp.RestoreAt != opIdx:
				v.addf("split-balance", name,
					"micro-restored %s restores at %d, split consumer runs at %d", t.Name, tp.RestoreAt, opIdx)
			}
		}
	}
	// Reverse direction: no orphan micro-restore decisions.
	for _, id := range v.tensorIDs() {
		tp := v.p.Tensors[id]
		if tp.MicroRestore <= 1 || tp.Tensor == nil {
			continue
		}
		if _, ok := claimed[id]; !ok {
			v.addf("split-balance", tp.Tensor.Name,
				"MicroRestore %d but no split consumer lists the tensor in MicroIns", tp.MicroRestore)
		}
	}
}

// checkRecomputeChains walks every recompute decision's regeneration
// subgraph: starting from the tensor's producer, each input must be
// available at RestoreAt or itself regenerable. The walk refuses
// cycles (tensor regeneration depending on itself through other
// recompute decisions) and chains longer than the schedule.
func (v *verifier) checkRecomputeChains() {
	onStack := map[int]bool{} // op IDs on the current DFS path
	for _, id := range v.tensorIDs() {
		tp := v.p.Tensors[id]
		if tp.Opt != Recompute || tp.Tensor == nil {
			continue
		}
		count := 0
		// resolved memoizes op IDs already validated at this restore
		// index: regeneration subgraphs are DAGs with heavy sharing
		// (inception cells, residual blocks), and an unmemoized walk
		// revisits the shared prefix once per path — exponentially.
		resolved := map[int]bool{}
		v.walkChain(tp.Tensor, tp.Tensor, tp.RestoreAt, onStack, resolved, &count)
	}
}

// walkChain recursively validates that x can be materialized at
// backward index r while regenerating target. Violations are recorded
// rather than returned so one broken chain reports every defect.
func (v *verifier) walkChain(x, target *graph.Tensor, r int, onStack, resolved map[int]bool, count *int) {
	p := x.Producer
	if p == nil {
		v.addf("recompute-chain", target.Name,
			"chain needs %s, which has no producer and is not available at index %d", x.Name, r)
		return
	}
	if resolved[p.ID] {
		return
	}
	if onStack[p.ID] {
		v.addf("recompute-chain", target.Name,
			"regeneration cycle through op %s (recompute decisions depend on each other)", p.Name)
		return
	}
	*count++
	if *count > len(v.sched.Ops) {
		v.addf("recompute-chain", target.Name, "chain exceeds the schedule length (%d ops)", len(v.sched.Ops))
		return
	}
	onStack[p.ID] = true
	for _, in := range p.Inputs {
		if v.availableAt(in, r) {
			continue
		}
		v.walkChain(in, target, r, onStack, resolved, count)
	}
	delete(onStack, p.ID)
	resolved[p.ID] = true
}

// availableAt reports whether tensor t is *recoverable* at backward
// index r without re-running its producer: on device, on host (swap or
// staged), or permanently resident. This is deliberately looser than
// the planner's cost predicate (availQuery.ok), which also rejects
// recoverable-but-expensive sources — the verifier checks safety, not
// optimality: a chain is only broken when a dependency is irrecoverably
// gone.
func (v *verifier) availableAt(t *graph.Tensor, r int) bool {
	switch t.Kind {
	case tensor.Parameter, tensor.OptState, tensor.Input:
		// Host- or device-resident for the whole iteration (sharded and
		// offloaded variants keep a host master copy to stage from).
		return true
	case tensor.FeatureMap:
		tp, ok := v.p.Tensors[t.ID]
		if !ok || tp.Opt == Reside {
			return v.lv.FirstUse[t] <= r && r <= v.lv.LastUse[t]
		}
		if tp.Opt == Swap {
			// On device until EvictAt, on host after; the host copy is
			// released with the tensor's last use.
			return r <= v.lv.LastUse[t]
		}
		return false // Recompute: regenerate via the caller's recursion
	default:
		return false
	}
}

// checkPoolOffsets replays the plan's device-residency spans through a
// fresh best-fit pool over an unbounded arena — every span allocates at
// its start index and frees after its end — then audits the pool's
// internal structures and independently cross-checks that no two
// blocks overlap while both live. A failure here means the plan's
// alloc/free pattern corrupts the allocator (double free, overlapping
// residency bookkeeping), which the capacity check alone cannot see.
func (v *verifier) checkPoolOffsets() {
	ms := NewMemSim(v.g, v.sched, v.lv)
	n := len(v.sched.Ops)

	type ev struct {
		t     *graph.Tensor
		bytes int64
		a, b  int // inclusive residency interval
	}
	var spans []ev
	var arena int64
	for _, t := range v.g.Tensors {
		for _, iv := range ms.residency(t, v.p) {
			if iv.a > iv.b || iv.a < 0 || iv.b >= n {
				v.addf("pool-offsets", t.Name, "residency span [%d,%d] outside schedule [0,%d)", iv.a, iv.b, n)
				continue
			}
			spans = append(spans, ev{t, iv.bytes, iv.a, iv.b})
			arena += alignUp(iv.bytes)
		}
	}
	if arena == 0 {
		return
	}

	pool := memorypool.New(arena+memorypool.Alignment, memorypool.BestFit)
	type live struct {
		blk memorypool.Block
		ev  ev
	}
	allocAt := make([][]int, n+1) // span indices to allocate entering index i
	freeAt := make([][]int, n+1)  // span indices to free entering index i
	for i, s := range spans {
		allocAt[s.a] = append(allocAt[s.a], i)
		freeAt[s.b+1] = append(freeAt[s.b+1], i)
	}
	blocks := make([]live, len(spans))
	active := map[int]bool{}
	for i := 0; i <= n; i++ {
		for _, si := range freeAt[i] {
			if !active[si] {
				continue
			}
			pool.FreeBlock(blocks[si].blk)
			delete(active, si)
		}
		for _, si := range allocAt[i] {
			blk, err := pool.Alloc(spans[si].bytes)
			if err != nil {
				// The arena covers the sum of all spans, so an OOM here is
				// an allocator-state corruption, not a capacity problem.
				v.addf("pool-offsets", spans[si].t.Name, "replay allocation failed at index %d: %v", i, err)
				continue
			}
			blocks[si] = live{blk, spans[si]}
			active[si] = true
		}
		if err := pool.CheckInvariants(); err != nil {
			v.addf("pool-offsets", v.sched.Ops[min(i, n-1)].Name, "pool corrupt at index %d: %v", i, err)
			return
		}
		// Independent overlap audit over the live set, sorted by offset.
		ids := make([]int, 0, len(active))
		for si := range active {
			ids = append(ids, si)
		}
		sort.Ints(ids)
		sort.SliceStable(ids, func(a, b int) bool { return blocks[ids[a]].blk.Offset < blocks[ids[b]].blk.Offset })
		for k := 1; k < len(ids); k++ {
			prev, cur := blocks[ids[k-1]], blocks[ids[k]]
			if prev.blk.Offset+prev.blk.Size > cur.blk.Offset {
				v.addf("pool-offsets", cur.ev.t.Name,
					"block [%d,%d) overlaps %s's block [%d,%d) at index %d",
					cur.blk.Offset, cur.blk.Offset+cur.blk.Size,
					prev.ev.t.Name, prev.blk.Offset, prev.blk.Offset+prev.blk.Size, i)
			}
		}
	}
}

func alignUp(n int64) int64 {
	if n <= 0 {
		return memorypool.Alignment
	}
	return (n + memorypool.Alignment - 1) &^ (memorypool.Alignment - 1)
}
