package core

import (
	"fmt"

	"tsplit/internal/graph"
	"tsplit/internal/tensor"
)

// SplitTensors identifies the activation input and the output of op
// that a split along dim would carve, or nils when op is not splittable
// along dim. For the sample dimension both must share the batch axis
// (axis 0); for the parameter dimension the "input" side is the weight
// and the carved output axis is the channel/hidden axis.
func SplitTensors(op *graph.Op, dim tensor.SplitDim) (in, out *graph.Tensor) {
	if len(op.Outputs) == 0 {
		return nil, nil
	}
	o := op.Outputs[0]
	kind := op.Kind
	if kind == graph.GradOp && op.FwdOp != nil {
		kind = op.FwdOp.Kind
	}
	switch dim {
	case tensor.DimSample:
		switch kind {
		case graph.Conv2D, graph.MatMul, graph.ReLU, graph.GELU, graph.MaxPool,
			graph.AvgPool, graph.Dropout, graph.LayerNorm, graph.Scale, graph.Embedding,
			graph.Add, graph.BatchNorm, graph.CrossEntropy:
		case graph.Softmax:
			if op.Attrs.Axis == 0 {
				return nil, nil
			}
		default:
			return nil, nil
		}
		if o.Shape.Rank() < 2 {
			return nil, nil
		}
		for _, t := range op.Inputs {
			switch t.Kind {
			case tensor.FeatureMap, tensor.Input, tensor.Gradient:
				if t.Shape.Rank() >= 2 && t.Shape[0] == o.Shape[0] {
					return t, o
				}
			}
		}
		return nil, nil
	case tensor.DimParam:
		switch kind {
		case graph.Conv2D, graph.MatMul:
		default:
			return nil, nil
		}
		// The weight operand is carved along its output axis.
		for _, t := range op.Inputs {
			if t.Kind == tensor.Parameter && t.Shape.Rank() >= 2 {
				return t, o
			}
		}
		return nil, nil
	}
	return nil, nil
}

// effectiveKind resolves a GradOp to the operator kind it
// differentiates.
func effectiveKind(op *graph.Op) graph.OpKind {
	if op.Kind == graph.GradOp && op.FwdOp != nil {
		return op.FwdOp.Kind
	}
	return op.Kind
}

// splitAxis returns the concrete axis of the carved output for dim.
func splitAxis(op *graph.Op, dim tensor.SplitDim) int {
	if dim == tensor.DimSample {
		return 0
	}
	kind := op.Kind
	if kind == graph.GradOp && op.FwdOp != nil {
		kind = op.FwdOp.Kind
	}
	if kind == graph.Conv2D {
		return 1 // NCHW channel axis
	}
	return op.Outputs[0].Shape.Rank() - 1 // hidden axis of matmul
}

// uses returns the schedule indices of t's consumers, ascending.
func uses(t *graph.Tensor, sched *graph.Schedule) []int {
	idx := make([]int, 0, len(t.Consumers))
	for _, c := range t.Consumers {
		idx = append(idx, sched.Index[c])
	}
	for i := 1; i < len(idx); i++ { // insertion sort; consumer lists are short
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

// RecomputeChain returns the forward operators that must re-execute to
// rebuild t, in execution order, walking producers until every leaf
// input satisfies avail. maxLen bounds the chain (beyond it recompute
// is not a sensible candidate and an error is returned).
func RecomputeChain(t *graph.Tensor, avail func(*graph.Tensor) bool, maxLen int) ([]*graph.Op, error) {
	var chain []*graph.Op
	visited := make(map[*graph.Op]bool)
	var walk func(x *graph.Tensor) error
	walk = func(x *graph.Tensor) error {
		p := x.Producer
		if p == nil {
			return fmt.Errorf("core: recompute source %s has no producer and is not available", x.Name)
		}
		if visited[p] {
			return nil
		}
		visited[p] = true
		if len(visited) > maxLen {
			return fmt.Errorf("core: recompute chain for %s exceeds %d ops", t.Name, maxLen)
		}
		for _, in := range p.Inputs {
			if avail(in) {
				continue
			}
			if err := walk(in); err != nil {
				return err
			}
		}
		chain = append(chain, p)
		return nil
	}
	if err := walk(t); err != nil {
		return nil, err
	}
	return chain, nil
}

// chainTransientBytes estimates the extra device memory a
// regeneration of t needs while its chain executes. Under the
// LRU-hybrid runtime (paper Sec. V-D) chain intermediates are shed as
// soon as memory pressure appears, so the irreducible transient is the
// largest single intermediate that must coexist with the target — not
// the full chain replay. The regenerated target itself is excluded
// (the memory simulation already charges it from its restore point).
func chainTransientBytes(chain []*graph.Op, t *graph.Tensor) int64 {
	var max int64
	for _, op := range chain {
		for _, o := range op.Outputs {
			if o == t {
				continue
			}
			if b := o.Bytes(); b > max {
				max = b
			}
		}
	}
	return max
}
