package core

import (
	"testing"

	"tsplit/internal/graph"
	"tsplit/internal/models"
	"tsplit/internal/tensor"
)

// augment plans under pressure and materializes the augmented graph.
func augment(t *testing.T, model string, cfg models.Config, capFrac int) (*testbed, *Plan, *Augmented) {
	t.Helper()
	tb := newTestbed(t, model, cfg)
	plan := tb.plan(t, Options{Capacity: tb.lv.Peak * int64(capFrac) / 100, FragmentationReserve: -1})
	ag, err := Augment(tb.g, tb.sched, tb.lv, plan)
	if err != nil {
		t.Fatal(err)
	}
	return tb, plan, ag
}

func TestAugmentEmptyPlanIsIsomorphic(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 8})
	ag, err := Augment(tb.g, tb.sched, tb.lv, NewPlan("base", tb.dev))
	if err != nil {
		t.Fatal(err)
	}
	if len(ag.G.Ops) != len(tb.g.Ops) {
		t.Fatalf("augmented has %d ops, original %d", len(ag.G.Ops), len(tb.g.Ops))
	}
	if ag.SwapOuts+ag.SwapIns+ag.SplitOps+ag.MergeOps+ag.RecomputeOps != 0 {
		t.Fatal("empty plan inserted memory operators")
	}
}

func TestAugmentedGraphSchedulable(t *testing.T) {
	_, _, ag := augment(t, "vgg16", models.Config{BatchSize: 64}, 60)
	s, err := graph.BuildSchedule(ag.G)
	if err != nil {
		t.Fatalf("augmented graph does not schedule: %v", err)
	}
	if len(s.Ops) != len(ag.G.Ops) {
		t.Fatal("schedule incomplete")
	}
}

func TestAugmentInsertsMatchingSwaps(t *testing.T) {
	_, plan, ag := augment(t, "vgg16", models.Config{BatchSize: 64}, 60)
	c := plan.Counts()
	if c.Swap == 0 {
		t.Skip("plan has no swaps at this scale")
	}
	if ag.SwapOuts == 0 || ag.SwapIns == 0 {
		t.Fatalf("plan swaps %d tensors but rewrite inserted %d outs / %d ins", c.Swap, ag.SwapOuts, ag.SwapIns)
	}
	// Every SwapIn consumes a host-copy handle produced by a SwapOut.
	for _, op := range ag.G.Ops {
		if op.Kind != graph.SwapIn {
			continue
		}
		h := op.Inputs[0]
		if h.Kind != tensor.HostCopy {
			t.Fatalf("swap-in %s consumes %v, want a host copy", op.Name, h.Kind)
		}
		if h.Producer == nil || (h.Producer.Kind != graph.SwapOut && h.Producer.Kind != graph.MergeOp) {
			t.Fatalf("swap-in %s host copy has producer %v", op.Name, h.Producer)
		}
	}
}

func TestAugmentSplitsExpandToMicroOps(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 64})
	// Force a split-bearing plan.
	cap := tb.lv.Resident + tb.lv.Resident/2 + (3 << 30)
	plan, err := NewPlanner(tb.g, tb.sched, tb.lv, tb.prof, tb.dev,
		Options{Capacity: cap, FragmentationReserve: -1}).Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Splits) == 0 {
		t.Skip("no splits planned")
	}
	ag, err := Augment(tb.g, tb.sched, tb.lv, plan)
	if err != nil {
		t.Fatal(err)
	}
	if ag.SplitOps != len(plan.Splits) {
		t.Fatalf("%d split operators for %d split decisions", ag.SplitOps, len(plan.Splits))
	}
	if ag.MergeOps < len(plan.Splits) {
		t.Fatalf("%d merge operators for %d split decisions", ag.MergeOps, len(plan.Splits))
	}
	// Micro-operator multiplicity: each split decision of p_num p adds
	// p micro instances mapped back to the original op.
	counts := map[*graph.Op]int{}
	for _, orig := range ag.OrigOf {
		counts[orig]++
	}
	for _, sp := range plan.Splits {
		if counts[sp.Op] != sp.PNum {
			t.Fatalf("op %s has %d micro instances, want %d", sp.Op.Name, counts[sp.Op], sp.PNum)
		}
	}
	// Micro tensors carry valid sub-shapes.
	for _, op := range ag.G.Ops {
		if op.Kind != graph.SplitOp {
			continue
		}
		shapes := make([]tensor.Shape, len(op.Outputs))
		for i, o := range op.Outputs {
			shapes[i] = o.Shape
		}
		merged, err := tensor.Merge(shapes, op.Attrs.Axis)
		if err != nil {
			t.Fatalf("split %s parts do not merge: %v", op.Name, err)
		}
		if !merged.Equal(op.Inputs[0].Shape) {
			t.Fatalf("split %s parts merge to %v, want %v", op.Name, merged, op.Inputs[0].Shape)
		}
	}
	// The augmented graph still schedules.
	if _, err := graph.BuildSchedule(ag.G); err != nil {
		t.Fatal(err)
	}
}

func TestAugmentRecomputeDuplicatesForward(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 64})
	plan := NewPlan("test", tb.dev)
	// Recompute one mid-network activation explicitly.
	var target *graph.Tensor
	for _, x := range tb.g.Tensors {
		if x.Name == "b3.conv2.relu.y" {
			target = x
		}
	}
	if target == nil {
		t.Fatal("tensor not found")
	}
	plan.Tensors[target.ID] = TensorPlan{Tensor: target, Opt: Recompute}
	FinalizeWindows(tb.g, tb.sched, tb.lv, tb.prof, plan)
	ag, err := Augment(tb.g, tb.sched, tb.lv, plan)
	if err != nil {
		t.Fatal(err)
	}
	if ag.RecomputeOps == 0 {
		t.Fatal("no recompute operators inserted")
	}
	found := false
	for _, op := range ag.G.Ops {
		if op.Kind == graph.Recompute && op.FwdOp != nil && op.FwdOp.Name == "b3.conv2.relu" {
			found = true
		}
	}
	if !found {
		t.Fatal("recompute chain does not re-execute the producer")
	}
	if _, err := graph.BuildSchedule(ag.G); err != nil {
		t.Fatal(err)
	}
}

func TestAugmentBackwardConsumersUseRestoredInstances(t *testing.T) {
	_, plan, ag := augment(t, "vgg16", models.Config{BatchSize: 64}, 60)
	// For every swapped original tensor, no augmented consumer scheduled
	// after the swap-out may read the pre-eviction instance.
	byOrig := map[*graph.Tensor][]*graph.Tensor{}
	for inst, orig := range ag.InstanceOf {
		byOrig[orig] = append(byOrig[orig], inst)
	}
	for _, tp := range plan.Tensors {
		if tp.Opt != Swap || tp.RestoreAt < 0 {
			continue
		}
		if len(byOrig[tp.Tensor]) < 2 {
			t.Fatalf("swapped tensor %s has no restored instance", tp.Tensor.Name)
		}
	}
}
