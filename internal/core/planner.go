package core

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"tsplit/internal/device"
	"tsplit/internal/graph"
	"tsplit/internal/obs"
	"tsplit/internal/profiler"
	"tsplit/internal/tensor"
)

// Options tunes the planner. The zero value is the paper's
// configuration: split enabled, p_num searched over powers of two,
// recompute chains bounded.
type Options struct {
	// Capacity overrides the device memory budget (0 = dev.MemBytes).
	// Experiments use it to emulate memory over-subscription.
	Capacity int64
	// DisableSplit turns off the tensor-splitting strategy — the
	// "TSPLIT w/o Split" ablation of paper Fig. 14(a).
	DisableSplit bool
	// PNums is the split-count search space (default 2,4,8,16,32).
	PNums []int
	// MaxRecomputeChain bounds the forward subgraph a recompute may
	// re-execute (default 24 ops).
	MaxRecomputeChain int
	// DisableEarlyOut turns off the micro-tensor early swap-out
	// refinement (ablation).
	DisableEarlyOut bool
	// MaxIterations bounds planning work (default 20000 decisions).
	MaxIterations int
	// FragmentationReserve is headroom subtracted from the capacity
	// the planner targets, absorbing allocator fragmentation and
	// transient regeneration buffers at run time (default
	// max(256 MiB, 3% of capacity); negative disables).
	FragmentationReserve int64
	// SafetyMargin plans against a budget reduced by this fraction of
	// the capacity (applied before the fragmentation reserve),
	// reserving headroom for a hostile environment — co-located jobs
	// stealing memory mid-iteration. The degradation ladder escalates
	// it on injected OOM. Clamped to [0, 0.9]; zero disables.
	SafetyMargin float64
	// OffloadOptimizer composes TSPLIT's activation planning with
	// CPU-side optimizer state and updates (the configuration used for
	// the PyTorch offload comparison, paper Sec. VI-D).
	OffloadOptimizer bool
	// Serial forces the reference planning path: a full candidate
	// rescan and a full memory-curve rebuild on every iteration. The
	// default path (incremental curve + invalidating candidate index +
	// resumed bottleneck scan) produces byte-identical plans;
	// benchmarks keep the serial path around as the speedup baseline
	// and tests as the equivalence oracle.
	Serial bool

	// --- ablation knobs (DESIGN.md §4) ---

	// PreferLargest replaces the greedy min-ΔT/ΔM selection with a
	// largest-ΔM-first heuristic (ablation 1).
	PreferLargest bool
	// DisableRecompute restricts Step 1 to swapping (ablation 1's
	// swap-only variant).
	DisableRecompute bool
	// SplitLookahead is how many schedule positions past the
	// bottleneck split candidates are considered at (default 8;
	// ablation 3 sets it negative to disable the lookahead).
	SplitLookahead int
	// DisableGenTieBreak turns off the earlier-generated-tensor
	// preference on near-tied ratios (ablation 4).
	DisableGenTieBreak bool

	// Obs receives planner metrics (candidates scored, decisions by
	// kind, chain-refresh savings, plan latency). Nil disables all
	// observation; the nil path adds no allocations to Plan().
	Obs obs.Recorder
	// Clock supplies the wall clock for the plan-latency metric (nil =
	// obs.Wall). It is injectable so the clockdet lint rule can keep
	// time.Now banned from this package: nothing a plan contains may
	// depend on when it was computed.
	Clock obs.Clock
	// CollectReport makes Plan() assemble a PlanReport (per-iteration
	// decision log), retrievable with Planner.Report().
	CollectReport bool
	// Trace receives phase spans: the run root ("planner.plan" or
	// "planner.replan"), the candidate-index build, each iteration's
	// bottleneck search and winner fold, journal replay, and finalize.
	// Nil disables tracing; like Obs, the nil path must add no
	// allocations to Plan() (bench-guard).
	Trace *obs.Tracer
	// Flight receives structured events — plan decisions, failures,
	// replay divergences — on the postmortem ring buffer. Nil disables.
	Flight *obs.Flight

	// defaulted marks an Options value that already went through
	// withDefaults: applying defaults twice must not subtract the
	// FragmentationReserve from Capacity again.
	defaulted bool
}

func (o Options) withDefaults(dev device.Device) Options {
	if o.defaulted {
		return o
	}
	o.defaulted = true
	if o.Capacity == 0 {
		o.Capacity = dev.MemBytes
	}
	if o.SafetyMargin > 0 {
		if o.SafetyMargin > 0.9 {
			o.SafetyMargin = 0.9
		}
		o.Capacity -= int64(float64(o.Capacity) * o.SafetyMargin)
	}
	if o.SafetyMargin < 0 {
		o.SafetyMargin = 0
	}
	if o.FragmentationReserve == 0 {
		o.FragmentationReserve = o.Capacity * 3 / 100
		if o.FragmentationReserve < 256*(1<<20) {
			o.FragmentationReserve = 256 * (1 << 20)
		}
	}
	if o.FragmentationReserve > 0 {
		o.Capacity -= o.FragmentationReserve
	}
	if len(o.PNums) == 0 {
		o.PNums = []int{2, 4, 8, 16, 32}
	}
	if o.MaxRecomputeChain == 0 {
		o.MaxRecomputeChain = 24
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 20000
	}
	if o.SplitLookahead == 0 {
		o.SplitLookahead = 8
	}
	if o.SplitLookahead < 0 {
		o.SplitLookahead = 0
	}
	if o.Clock == nil {
		o.Clock = obs.Wall
	}
	return o
}

// warmCompatible reports whether a completed run journaled under
// prev can seed a warm replay of a run under next: every option that
// shapes scoring or the graph interpretation must be identical. The
// capacity trio (Capacity, SafetyMargin, FragmentationReserve) is
// deliberately exempt — withDefaults folds all three into the final
// Capacity, and capacity changes are exactly what warm replanning is
// for. Obs/Clock/CollectReport/Trace/Flight only shape reporting,
// never the plan, so they are not compared either.
func warmCompatible(prev, next Options) bool {
	if prev.DisableSplit != next.DisableSplit ||
		prev.MaxRecomputeChain != next.MaxRecomputeChain ||
		prev.DisableEarlyOut != next.DisableEarlyOut ||
		prev.MaxIterations != next.MaxIterations ||
		prev.OffloadOptimizer != next.OffloadOptimizer ||
		prev.PreferLargest != next.PreferLargest ||
		prev.DisableRecompute != next.DisableRecompute ||
		prev.SplitLookahead != next.SplitLookahead ||
		prev.DisableGenTieBreak != next.DisableGenTieBreak {
		return false
	}
	if len(prev.PNums) != len(next.PNums) {
		return false
	}
	for i := range prev.PNums {
		if prev.PNums[i] != next.PNums[i] {
			return false
		}
	}
	return true
}

// Planner implements the model-guided planning of paper Algorithm 2:
// simulate the memory requirement along the schedule; at each memory
// bottleneck score every candidate action — swap or recompute of a
// live tensor (Step 1), or a split of the bottleneck operator jointly
// with micro-tensor eviction (Step 2) — by its ΔT/ΔM ratio, commit the
// cheapest (Step 3), and repeat until the whole schedule fits the
// device.
//
// A planner is reusable: every Plan()/Replan() call resets the pooled
// per-run state (occupancy, curve, candidate index, journals) in place,
// so steady-state planning allocates almost nothing (see PlannerPool
// and DESIGN.md §7). A planner is not safe for concurrent use.
type Planner struct {
	G     *graph.Graph
	Sched *graph.Schedule
	Lv    *graph.Liveness
	Prof  *profiler.Profile
	Dev   device.Device
	Opts  Options

	ms        *MemSim
	occ       *profiler.Occupancy
	plan      *Plan
	extraTime float64
	// Unhidden swap-out time per tensor ID so the early-out refinement
	// knows where splitting a producer helps. ID-indexed array plus an
	// append-order ID list (each tensor is planned at most once per
	// run) — no map, no steady-state allocations.
	swapStallOf  []float64
	swapStallIDs []int32

	// --- incremental planning state (see incremental.go, candindex.go) ---

	curve *memCurve
	ct    *chainTracker
	ci    *candIndex
	// incremental is the per-run mode latch (= !Opts.Serial at
	// beginRun); the pooled curve may be stale while a serial run is in
	// flight, so mid-run code must consult this, not Opts.
	incremental bool
	// ID-indexed mirrors of the liveness/schedule maps: the scoring
	// loops run millions of lookups per plan and array indexing is
	// several times cheaper than map access.
	genOf  []int   // Lv.FirstUse by tensor ID
	lastOf []int   // Lv.LastUse by tensor ID
	usesOf [][]int // sorted consumer schedule indices by tensor ID
	opIdx  []int   // schedule position by op ID
	// cands is the serial path's scoring buffer: one slot per task,
	// folded in task-index order.
	cands       []candidate
	walker      *chainWalker
	maxTensorID int
	// touchScratch collects the tensor IDs a chain walk queried — the
	// dependency set the chain tracker and candidate index register.
	touchScratch []int32
	// tpMirror/tpSet mirror plan.Tensors by tensor ID during a run:
	// availability probes and split scoring run hundreds of thousands
	// of entry lookups per plan, and array indexing beats map access
	// severalfold. Every planning-time write must go through
	// putTensorPlan so the mirror never diverges from the map.
	tpMirror []TensorPlan
	tpSet    []bool
	// Fold scratch for the candidate-index scan (candindex.go): the
	// scan writes each priced candidate into foldTmp and keeps the
	// running winners in foldPos/foldBest, so pricing allocates nothing.
	foldTmp, foldPos, foldBest candidate
	// planDelta backing storage, reused across commits (noteChanges
	// consumes the delta before the next commit).
	deltaT1 [1]*graph.Tensor
	deltaO1 [1]*graph.Op
	deltaTN []*graph.Tensor

	// --- warm replanning state (see replan.go) ---

	// jCur records the run in flight; jPrev holds the previous
	// completed run's journal so Replan can replay it while recording
	// anew. beginRun swaps them.
	jCur, jPrev planJournal
	// lastPlan is the plan returned by the last successful run; Replan
	// only warm-starts when handed exactly this plan.
	lastPlan *Plan

	// --- observability state (see report.go) ---

	report *PlanReport
	// Aggregate tallies kept as plain integers so the hot loop never
	// touches the Recorder; they are emitted once at the end of Plan().
	statIters     int64
	statCands     int64
	statRederived int64
	statSkipped   int64
	statRescored  int64
	statReplayed  int64
	// nRecompute counts committed recompute decisions — the number of
	// chains the refresh passes are responsible for.
	nRecompute int
	statStart  time.Time
	// runSpan is the root span of the run in flight; phase spans
	// attach under it (including from candindex.go). Nil whenever
	// Options.Trace is nil — the nil-span no-op path.
	runSpan *obs.Span
}

// NewPlanner assembles a planner for one (graph, schedule, device).
func NewPlanner(g *graph.Graph, sched *graph.Schedule, lv *graph.Liveness, prof *profiler.Profile, dev device.Device, opts Options) *Planner {
	pl := &Planner{
		G: g, Sched: sched, Lv: lv, Prof: prof, Dev: dev,
		Opts: opts.withDefaults(dev),
		ms:   NewMemSim(g, sched, lv),
	}
	pl.initAccel()
	return pl
}

// SetOptions replaces the planner's options for subsequent Plan()
// calls (the PlannerPool hands out recycled planners this way).
func (pl *Planner) SetOptions(opts Options) {
	pl.Opts = opts.withDefaults(pl.Dev)
}

// Reset drops all cross-run state — the warm-replan journal and the
// last plan — so the next Plan() is guaranteed cold. The pooled scratch
// (curve, candidate index, occupancy) is kept for reuse; it is reset in
// place at the top of every run regardless.
func (pl *Planner) Reset() {
	pl.jCur = planJournal{entries: pl.jCur.entries[:0], updates: pl.jCur.updates[:0]}
	pl.jPrev = planJournal{entries: pl.jPrev.entries[:0], updates: pl.jPrev.updates[:0]}
	pl.lastPlan = nil
	pl.report = nil
}

// initAccel precomputes the ID-indexed lookup arrays and the reusable
// chain walker.
func (pl *Planner) initAccel() {
	maxT, maxO := 0, 0
	for _, t := range pl.G.Tensors {
		if t.ID > maxT {
			maxT = t.ID
		}
	}
	for _, op := range pl.G.Ops {
		if op.ID > maxO {
			maxO = op.ID
		}
	}
	pl.maxTensorID = maxT
	pl.genOf = make([]int, maxT+1)
	pl.lastOf = make([]int, maxT+1)
	pl.usesOf = make([][]int, maxT+1)
	for _, t := range pl.G.Tensors {
		pl.genOf[t.ID] = pl.Lv.FirstUse[t]
		pl.lastOf[t.ID] = pl.Lv.LastUse[t]
		pl.usesOf[t.ID] = uses(t, pl.Sched)
	}
	pl.opIdx = make([]int, maxO+1)
	for i, op := range pl.Sched.Ops {
		pl.opIdx[op.ID] = i
	}
	pl.walker = newChainWalker(maxO)
	pl.swapStallOf = make([]float64, maxT+1)
	pl.tpMirror = make([]TensorPlan, maxT+1)
	pl.tpSet = make([]bool, maxT+1)
}

// putTensorPlan commits a tensor's plan entry to both the plan map and
// the planner's ID-indexed mirror.
func (pl *Planner) putTensorPlan(id int, tp TensorPlan) {
	pl.plan.Tensors[id] = tp
	pl.tpMirror[id] = tp
	pl.tpSet[id] = true
}

// tensorPlanByID answers plan.Tensors[id] from the ID-indexed mirror
// — hot-path replacement for the map read (see memCurve.look).
func (pl *Planner) tensorPlanByID(id int) (TensorPlan, bool) {
	if pl.tpSet[id] {
		return pl.tpMirror[id], true
	}
	return TensorPlan{}, false
}

// candidate is one scored planning action, held by value in the
// scoring buffers. The decision payload replaces the old
// apply-closure: committing is a planner method (applyCandidate) that
// also reports which tensors and ops it changed, which the incremental
// curve and chain tracker need.
type candidate struct {
	valid   bool
	isSplit bool
	// ratio is ΔT/ΔM, the greedy key (seconds per byte).
	ratio  float64
	deltaT float64
	deltaM int64
	genIdx int // production index, for the earlier-tensor tie-break

	// pos anchors the decision in the schedule: the bottleneck index
	// for an eviction, the split op's position for a split.
	pos       int
	evictAt   int
	restoreAt int

	// eviction payload
	t          *graph.Tensor
	opt        MemOpt
	transfer   float64
	stallOut   float64
	chainBytes int64

	// split payload
	split    OpSplit
	splitNew bool // the op had no previous split decision
	in       *graph.Tensor
	inOpt    MemOpt
}

// ErrInfeasible is returned when no remaining action can break a
// memory bottleneck — the configuration cannot train (the × entries of
// the paper's Tables IV/V).
var ErrInfeasible = fmt.Errorf("core: no strategy can fit the schedule in device memory")

// Plan runs Algorithm 2 and returns the strategy configuration. On
// failure the partial plan built so far is returned alongside the
// error, for diagnostics.
func (pl *Planner) Plan() (*Plan, error) {
	sp := pl.Opts.Trace.StartSpan("planner.plan")
	pl.runSpan = sp
	pl.beginRun()
	var runErr error
	if pl.incremental {
		runErr = pl.greedyIncremental(0, 0)
	} else {
		runErr = pl.greedySerial()
	}
	plan, err := pl.finishRun(runErr)
	sp.End()
	pl.runSpan = nil
	return plan, err
}

// beginRun resets all per-run state in place: a fresh Plan (the only
// per-run allocation — previously returned plans must stay valid), the
// pooled occupancy/curve/chain-tracker/candidate-index scratch, and the
// journal double-buffer (the previous completed journal moves to jPrev,
// where a warm replay can read it while jCur records the new run).
func (pl *Planner) beginRun() {
	pl.plan = NewPlan("tsplit", pl.Dev)
	if prev := pl.lastPlan; prev != nil {
		// Similar workloads commit similar decision counts: pre-size the
		// maps to the previous run's so steady-state pooled runs skip
		// the incremental-growth rehashes.
		if n := len(prev.Tensors); n > 0 {
			pl.plan.Tensors = make(map[int]TensorPlan, n)
		}
		if n := len(prev.Splits); n > 0 {
			pl.plan.Splits = make(map[int]OpSplit, n)
		}
	}
	if pl.Opts.DisableSplit {
		pl.plan.Name = "tsplit-nosplit"
	}
	if pl.Opts.OffloadOptimizer {
		pl.plan.Name = "tsplit-offload"
		pl.plan.OffloadOptimizer = true
	}
	if pl.occ == nil {
		pl.occ = profiler.NewOccupancy(pl.Prof)
	} else {
		pl.occ.Reset()
	}
	for _, id := range pl.swapStallIDs {
		pl.swapStallOf[id] = 0
	}
	pl.swapStallIDs = pl.swapStallIDs[:0]
	for id := range pl.tpSet {
		pl.tpSet[id] = false
	}
	pl.extraTime = 0
	pl.statIters, pl.statCands, pl.statRederived, pl.statSkipped = 0, 0, 0, 0
	pl.statRescored, pl.statReplayed = 0, 0
	pl.nRecompute = 0
	pl.report = nil
	if pl.Opts.Obs != nil {
		pl.statStart = pl.Opts.Clock()
	}
	if pl.Opts.CollectReport {
		pl.report = &PlanReport{
			Policy: pl.plan.Name, Device: pl.Dev.Name,
			CapacityBytes: pl.Opts.Capacity, SafetyMargin: pl.Opts.SafetyMargin,
		}
	}
	pl.incremental = !pl.Opts.Serial
	pl.jPrev, pl.jCur = pl.jCur, pl.jPrev
	pl.jCur.begin(pl.Opts, pl.incremental)
	if pl.incremental {
		if pl.curve == nil {
			pl.curve = newMemCurve(pl.ms, pl.plan, pl.maxTensorID)
			// Route the curve's plan-entry reads through the tpMirror
			// arrays: same answers as plan.Tensors, no map hashing on
			// the span re-derivation hot path.
			pl.curve.look = pl.tensorPlanByID
			pl.ct = newChainTracker(pl.maxTensorID)
			pl.ci = newCandIndex(pl)
		} else {
			pl.curve.reset(pl.plan)
			pl.ct.reset()
		}
		pl.ci.deactivate()
	}
}

// finishRun completes a run: the early-out refinement, the final peak
// (from the incremental curve when available — the serial reference
// rebuilds from scratch), observation, and the journal/lastPlan
// hand-off that arms the next Replan.
func (pl *Planner) finishRun(err error) (*Plan, error) {
	if err != nil {
		pl.jCur.valid, pl.jCur.completed = false, false
		pl.lastPlan = nil
		return pl.plan, err
	}
	fsp := pl.runSpan.StartSpan("planner.finalize")
	if !pl.Opts.DisableSplit && !pl.Opts.DisableEarlyOut {
		pl.earlyOutPass()
	}
	var peak int64
	if pl.incremental {
		_, peak, _ = pl.curve.scan()
	} else {
		_, peak, _ = pl.ms.Curve(pl.plan)
	}
	fsp.End()
	pl.plan.PredictedPeak = peak
	pl.plan.PredictedTime = pl.Prof.Total() + pl.extraTime
	pl.finishObservation(peak)
	pl.jCur.completed = pl.jCur.valid
	pl.lastPlan = pl.plan
	return pl.plan, nil
}

// greedySerial is the reference greedy loop: full chain refresh, full
// curve rebuild, front-to-back bottleneck scan, and a full candidate
// rescan, every iteration. Byte-identical plans from the incremental
// loop are the correctness bar (TestPlannerSerialParallelEquivalence).
func (pl *Planner) greedySerial() error {
	capB := pl.Opts.Capacity
	for iter := 0; ; iter++ {
		if iter >= pl.Opts.MaxIterations {
			pl.countFailure("nonconverged")
			return fmt.Errorf("core: planning did not converge in %d iterations", iter)
		}
		rederived := pl.refreshChains()
		memAt, peak, _ := pl.ms.Curve(pl.plan)
		pl.statRederived += int64(rederived)
		if skipped := pl.nRecompute - rederived; skipped > 0 {
			pl.statSkipped += int64(skipped)
		}
		if pl.report != nil {
			// The scan that follows a commit reveals its effect: fill
			// the previous decision's PeakAfter now.
			if n := len(pl.report.Decisions); n > 0 {
				pl.report.Decisions[n-1].PeakAfter = peak
			} else {
				pl.report.InitialPeakBytes = peak
			}
		}
		if peak <= capB {
			return nil
		}
		// First bottleneck position (Algorithm 2 walks the schedule).
		bsp := pl.runSpan.StartSpan("planner.bottleneck")
		i := 0
		for ; i < len(memAt); i++ {
			if memAt[i] > capB {
				break
			}
		}
		bsp.End()
		fsp := pl.runSpan.StartSpan("planner.fold")
		best, scored := pl.bestCandidate(i)
		fsp.End()
		pl.statCands += int64(scored)
		if best == nil {
			pl.countFailure("infeasible")
			return fmt.Errorf("%w (bottleneck at op %d %s: need %.1f MiB over capacity)",
				ErrInfeasible, i, pl.Sched.Ops[i], float64(memAt[i]-capB)/(1<<20))
		}
		pl.statIters++
		if pl.report != nil {
			pl.report.Decisions = append(pl.report.Decisions,
				pl.decisionRecord(iter, i, memAt[i]-capB, peak, scored, rederived, best))
		}
		pl.applyCandidate(best)
		pl.recordDecisionEvent(iter, i, best)
		pl.extraTime += best.deltaT
	}
}

// greedyIncremental is the default loop: dirty-set chain refresh, a
// bottleneck scan resumed from min(previous bottleneck, lowest index
// where memory may have increased), and candidate pricing through the
// invalidating index. startIter/prevBtl are zero on a cold Plan();
// warm replay hands over its resume point.
func (pl *Planner) greedyIncremental(startIter, prevBtl int) error {
	capB := pl.Opts.Capacity
	for iter := startIter; ; iter++ {
		if iter >= pl.Opts.MaxIterations {
			pl.countFailure("nonconverged")
			return fmt.Errorf("core: planning did not converge in %d iterations", iter)
		}
		rederived := pl.refreshChainsDirty()
		pl.statRederived += int64(rederived)
		if skipped := pl.nRecompute - rederived; skipped > 0 {
			pl.statSkipped += int64(skipped)
		}
		var peak int64
		if pl.report != nil {
			// Report mode pays for a full curve scan per iteration to
			// record peak trajectories; the no-report hot path does not.
			_, peak, _ = pl.curve.scan()
			if n := len(pl.report.Decisions); n > 0 {
				pl.report.Decisions[n-1].PeakAfter = peak
			} else {
				pl.report.InitialPeakBytes = peak
			}
		}
		bsp := pl.runSpan.StartSpan("planner.bottleneck")
		i, memAtI, found := pl.curve.bottleneck(capB, prevBtl)
		bsp.End()
		if !found {
			return nil
		}
		fsp := pl.runSpan.StartSpan("planner.fold")
		best, scored := pl.bestIncremental(i)
		fsp.End()
		pl.statCands += int64(scored)
		if best == nil {
			pl.countFailure("infeasible")
			return fmt.Errorf("%w (bottleneck at op %d %s: need %.1f MiB over capacity)",
				ErrInfeasible, i, pl.Sched.Ops[i], float64(memAtI-capB)/(1<<20))
		}
		pl.statIters++
		if pl.report != nil {
			pl.report.Decisions = append(pl.report.Decisions,
				pl.decisionRecord(iter, i, memAtI-capB, peak, scored, rederived, best))
		}
		delta := pl.applyCandidate(best)
		pl.jCur.recordDecision(i, best, scored, rederived)
		pl.noteChanges(delta)
		pl.recordDecisionEvent(iter, i, best)
		pl.extraTime += best.deltaT
		prevBtl = i
	}
}

// bestIncremental prices the candidate pool through the index: advance
// the liveness windows to bottleneck i, re-derive only the stale
// cached chains and split configurations, then fold every live
// candidate in exactly the serial scan order (better() is not
// associative, so the order is load-bearing).
func (pl *Planner) bestIncremental(i int) (*candidate, int) {
	pl.ci.ensure(i)
	pl.ci.refreshCandChains()
	return pl.ci.best(i)
}

// Report returns the introspection record of the last Plan() call, or
// nil unless Options.CollectReport was set.
func (pl *Planner) Report() *PlanReport { return pl.report }

// decisionRecord assembles the PlanDecision for a committed candidate.
// PeakAfter is filled by the next iteration's curve scan.
func (pl *Planner) decisionRecord(iter, i int, over, peak int64, scored, rederived int, c *candidate) PlanDecision {
	d := PlanDecision{
		Iter: iter, Bottleneck: i, BottleneckOp: pl.Sched.Ops[i].Name,
		OverBytes: over, PeakBefore: peak,
		Candidates: scored, Kind: decisionKind(c),
		Ratio: c.ratio, DeltaTSeconds: c.deltaT, DeltaMBytes: c.deltaM,
		ChainsRederived: rederived, ChainsTracked: pl.nRecompute,
	}
	if c.isSplit {
		d.Op = c.split.Op.Name
		d.PNum = c.split.PNum
		d.Dim = c.split.Dim.String()
		d.InOpt = c.split.InOpt.String()
		if c.in != nil {
			d.Tensor = c.in.Name
		}
	} else {
		d.Tensor = c.t.Name
	}
	return d
}

// countFailure records a failed Plan() outcome on the Recorder and
// the flight ring.
func (pl *Planner) countFailure(reason string) {
	if rec := pl.Opts.Obs; rec != nil {
		rec.Add("tsplit_planner_failures_total", 1, obs.L("reason", reason))
	}
	pl.Opts.Flight.Record("plan.failure", reason)
}

// recordDecisionEvent posts one committed greedy decision to the
// flight ring. Guarded so the nil-Flight hot path pays only the nil
// check (the variadic attrs would otherwise allocate per iteration).
func (pl *Planner) recordDecisionEvent(iter, i int, c *candidate) {
	fl := pl.Opts.Flight
	if fl == nil {
		return
	}
	subject := ""
	if c.isSplit {
		subject = c.split.Op.Name
	} else if c.t != nil {
		subject = c.t.Name
	}
	fl.Record("plan.decision", subject,
		obs.L("kind", decisionKind(c)),
		obs.L("iter", strconv.Itoa(iter)),
		obs.L("bottleneck", pl.Sched.Ops[i].Name))
}

// finishObservation finalizes the report and emits the aggregated
// planner metrics. All hot-loop tallies are plain integers; this is the
// only place the Recorder is touched on the success path.
func (pl *Planner) finishObservation(finalPeak int64) {
	if pl.report == nil && pl.Opts.Obs == nil {
		return
	}
	counts := pl.plan.Counts()
	if r := pl.report; r != nil {
		r.FinalPeakBytes = finalPeak
		r.PredictedTimeSeconds = pl.plan.PredictedTime
		r.ExtraTimeSeconds = pl.extraTime
		r.CandidatesScored = pl.statCands
		r.ChainsRederived = pl.statRederived
		r.ChainsSkipped = pl.statSkipped
		r.CandidatesRescored = pl.statRescored
		r.DecisionsReplayed = pl.statReplayed
		r.WarmStart = pl.statReplayed > 0
		r.MeanPCIeOccupancy = pl.occ.Mean()
		ids := make([]int, 0, len(pl.plan.Splits))
		for id, sp := range pl.plan.Splits {
			if sp.EarlyOut {
				ids = append(ids, id)
			}
		}
		sort.Ints(ids)
		for _, id := range ids {
			r.EarlyOutSplits = append(r.EarlyOutSplits, pl.plan.Splits[id].Op.Name)
		}
	}
	rec := pl.Opts.Obs
	if rec == nil {
		return
	}
	rec.Add("tsplit_planner_plans_total", 1)
	rec.Add("tsplit_planner_iterations_total", pl.statIters)
	rec.Add("tsplit_planner_candidates_scored_total", pl.statCands)
	rec.Add("tsplit_planner_chains_rederived_total", pl.statRederived)
	rec.Add("tsplit_planner_chains_skipped_total", pl.statSkipped)
	rec.Add("tsplit_planner_candidates_rescored_total", pl.statRescored)
	rec.Add("tsplit_planner_decisions_replayed_total", pl.statReplayed)
	rec.Add("tsplit_planner_decisions_total", int64(counts.Swap), obs.L("kind", "swap"))
	rec.Add("tsplit_planner_decisions_total", int64(counts.Recompute), obs.L("kind", "recompute"))
	rec.Add("tsplit_planner_decisions_total", int64(counts.SplitOps), obs.L("kind", "split"))
	rec.Add("tsplit_planner_planned_bytes_total", counts.SwapBytes, obs.L("kind", "swap"))
	rec.Add("tsplit_planner_planned_bytes_total", counts.RecomputeBytes, obs.L("kind", "recompute"))
	rec.Set("tsplit_planner_predicted_peak_bytes", float64(finalPeak))
	rec.Set("tsplit_planner_predicted_extra_seconds", pl.extraTime)
	rec.Set("tsplit_planner_mean_pcie_occupancy", pl.occ.Mean())
	rec.Observe("tsplit_planner_plan_seconds", pl.Opts.Clock().Sub(pl.statStart).Seconds())
}

// refreshChains recomputes the transient-memory estimate of every
// recompute decision against the *current* plan: a chain recorded
// earlier may have grown because a tensor it sourced from was itself
// evicted by a later decision. This is the serial reference;
// refreshChainsDirty (incremental.go) re-derives only affected chains.
// It returns the number of chains re-derived (here: all of them).
func (pl *Planner) refreshChains() int {
	// Each re-derivation is independent, but walk in tensor-ID order so
	// the reference path touches the plan deterministically (maporder).
	//lint:allow scratchreuse the serial reference path is not pooled
	ids := make([]int, 0, len(pl.plan.Tensors))
	for id := range pl.plan.Tensors {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	n := 0
	for _, id := range ids {
		tp := pl.plan.Tensors[id]
		if tp.Opt != Recompute {
			continue
		}
		n++
		chain, err := pl.walker.walk(tp.Tensor, availQuery{pl, tp.RestoreAt}, len(pl.G.Ops), nil)
		if err != nil {
			continue
		}
		tp.ChainBytes = chainTransientBytes(chain, tp.Tensor)
		pl.putTensorPlan(id, tp)
	}
	return n
}

// better implements the greedy preference: smaller ΔT/ΔM wins, and on
// near-ties the earlier-generated tensor wins (the paper's key
// observation: swapping an earlier-generated tensor starts its
// transfer sooner and holds the reduction longer). The ablation knobs
// switch to largest-ΔM-first or disable the tie-break.
//
// The relative tie window makes better non-associative, so any
// reduction over candidates must fold in the serial scan order (see
// bestCandidate and candIndex.best).
func (pl *Planner) better(a, b *candidate) bool {
	if b == nil {
		return true
	}
	if pl.Opts.PreferLargest {
		if a.deltaM != b.deltaM {
			return a.deltaM > b.deltaM
		}
		return a.genIdx < b.genIdx
	}
	// Ratios are seconds-per-byte (~1e-12 for interesting candidates),
	// so the tie window must be relative, not absolute.
	const tieAbs = 1e-16
	lo, hi := a.ratio, b.ratio
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi-lo > tieAbs && lo < 0.99*hi {
		return a.ratio < b.ratio
	}
	if pl.Opts.DisableGenTieBreak {
		return a.ratio < b.ratio
	}
	return a.genIdx < b.genIdx
}

// bestCandidate is the serial reference scorer: it rescans Step 1
// (swap/recompute of every live tensor) and Step 2 (split of ops in
// the bottleneck's lookahead window) from scratch and returns the
// winner of Step 3 plus the number of viable candidates scored. The
// incremental path prices the same pool through candIndex and must
// fold in this exact task order.
func (pl *Planner) bestCandidate(i int) (*candidate, int) {
	nT := len(pl.G.Tensors)
	nS := 0
	if !pl.Opts.DisableSplit {
		last := i + pl.Opts.SplitLookahead
		if last > len(pl.Sched.Ops)-1 {
			last = len(pl.Sched.Ops) - 1
		}
		if last >= i {
			nS = last - i + 1
		}
	}
	total := nT + nS
	if cap(pl.cands) < total {
		pl.cands = make([]candidate, total)
	}
	cands := pl.cands[:total]
	for k := 0; k < total; k++ {
		if k < nT {
			pl.scoreEvictInto(pl.G.Tensors[k], i, &cands[k], pl.walker)
		} else {
			pl.scoreSplitInto(i+(k-nT), &cands[k], pl.walker)
		}
	}
	var best *candidate
	viable := 0
	for k := range cands {
		if c := &cands[k]; c.valid {
			viable++
			if pl.better(c, best) {
				best = c
			}
		}
	}
	return best, viable
}

// scoreEvictInto scores swap vs recompute for one live tensor at
// bottleneck i (paper Eqs. 2-5) into c, leaving c invalid when t is
// not a candidate.
func (pl *Planner) scoreEvictInto(t *graph.Tensor, i int, c *candidate, wk *chainWalker) {
	c.valid = false
	if !t.Kind.Evictable() {
		return
	}
	if _, planned := pl.plan.Tensors[t.ID]; planned {
		return
	}
	evictAt, restoreAt, ok := pl.evictionWindowFast(t, i)
	if !ok {
		return
	}
	size := t.Bytes()
	transfer := pl.Prof.TransferTime(size)

	// Swap (Eq. 3): unhidden transfer time out (between the tensor's
	// last use and the bottleneck) plus in (between the bottleneck and
	// the restoring consumer).
	stallOut := pl.occ.Stall(transfer, evictAt+1, i-1)
	stallIn := pl.occ.Stall(transfer, i, restoreAt-1)
	swapT := stallOut + stallIn

	// Recompute (Eq. 5): chain cost per backward consumer
	// (memory-centric strategy).
	recompT := math.Inf(1)
	var chainBytes int64
	if t.Kind == tensor.FeatureMap && !pl.Opts.DisableRecompute {
		if chain, err := wk.walk(t, availQuery{pl, restoreAt}, pl.Opts.MaxRecomputeChain, nil); err == nil {
			recompT = pl.chainCostFast(chain) * float64(pl.backwardUsesFast(t, restoreAt))
			chainBytes = chainTransientBytes(chain, t)
		}
	}

	opt, dT := Swap, swapT
	if recompT < swapT {
		opt, dT = Recompute, recompT
	}
	// Tensors whose restoring consumer is splittable can later be
	// streamed back at micro-tensor granularity (their swap-in memory
	// shrinks to size/p), which recompute cannot match: keep them
	// swappable unless recompute is far cheaper.
	if opt == Recompute && swapT <= 4*recompT+1e-6 && pl.microRestorable(t, restoreAt) {
		opt, dT = Swap, swapT
	}
	gen := pl.genOf[t.ID]
	if gen < 0 {
		gen = 0
	}
	*c = candidate{
		valid:      true,
		ratio:      dT / float64(size),
		deltaT:     dT,
		deltaM:     size,
		genIdx:     gen,
		pos:        i,
		evictAt:    evictAt,
		restoreAt:  restoreAt,
		t:          t,
		opt:        opt,
		transfer:   transfer,
		stallOut:   stallOut,
		chainBytes: chainBytes,
	}
}

// applyCandidate commits the winning decision to the plan and returns
// the tensors/ops whose plan entries changed. For a split it first
// re-points c.split.MicroIns at a private copy: scoring buffers (and
// the candidate index's pooled per-position config cache) own the
// original backing array and will reuse it.
func (pl *Planner) applyCandidate(c *candidate) planDelta {
	if c.isSplit {
		return pl.applySplit(c)
	}
	return pl.applyEvict(c)
}

func (pl *Planner) applyEvict(c *candidate) planDelta {
	t := c.t
	tp := TensorPlan{Tensor: t, Opt: c.opt, EvictAt: c.evictAt, RestoreAt: c.restoreAt, PrefetchAt: c.restoreAt}
	if c.opt == Recompute {
		tp.ChainBytes = c.chainBytes
		pl.nRecompute++
	}
	if c.opt == Swap {
		pl.occ.Reserve(c.transfer, c.evictAt+1, c.pos-1)
		start, leftover := pl.occ.ReserveBack(c.transfer, c.pos, c.restoreAt-1)
		if leftover > 0 {
			// The link is saturated: the copy runs just before its
			// deadline (stalling compute for the unhidden part)
			// rather than spreading across the iteration, so the
			// tensor re-occupies memory only near its use.
			start = pl.Prof.WindowStart(c.restoreAt, c.transfer)
			if start < c.pos {
				start = c.pos
			}
		}
		tp.PrefetchAt = start
		pl.swapStallOf[t.ID] = c.stallOut
		pl.swapStallIDs = append(pl.swapStallIDs, int32(t.ID))
	}
	pl.putTensorPlan(t.ID, tp)
	pl.deltaT1[0] = t
	return planDelta{tensors: pl.deltaT1[:1]}
}

func (pl *Planner) applySplit(c *candidate) planDelta {
	op := c.split.Op
	if len(c.split.MicroIns) > 0 {
		c.split.MicroIns = append([]*graph.Tensor(nil), c.split.MicroIns...)
	}
	pl.deltaO1[0] = op
	d := planDelta{ops: pl.deltaO1[:1], tensors: pl.deltaTN[:0]}
	if old, ok := pl.plan.Splits[op.ID]; ok {
		// Replacing the op's split: inputs the new decision no longer
		// micro-restores must not keep a stale MicroRestore (it would
		// break the split-balance invariant and skew the memory curve).
		for _, t := range old.MicroIns {
			kept := false
			for _, nt := range c.split.MicroIns {
				if nt == t {
					kept = true
					break
				}
			}
			if kept {
				continue
			}
			tp := pl.plan.Tensors[t.ID]
			tp.MicroRestore = 0
			pl.putTensorPlan(t.ID, tp)
			d.tensors = append(d.tensors, t)
		}
	}
	pl.plan.Splits[op.ID] = c.split
	for _, t := range c.split.MicroIns {
		tp := pl.plan.Tensors[t.ID]
		tp.MicroRestore = c.split.PNum
		pl.putTensorPlan(t.ID, tp)
		d.tensors = append(d.tensors, t)
	}
	if c.splitNew && c.inOpt != Reside && c.restoreAt >= 0 {
		tp := TensorPlan{Tensor: c.in, Opt: c.inOpt, EvictAt: c.evictAt, RestoreAt: c.restoreAt, PrefetchAt: c.restoreAt}
		if c.inOpt == Recompute {
			pl.nRecompute++
		}
		if c.inOpt == Swap {
			transfer := pl.Prof.TransferTime(c.in.Bytes())
			start, leftover := pl.occ.ReserveBack(transfer, c.pos, c.restoreAt-1)
			if leftover > 0 {
				start = pl.Prof.WindowStart(c.restoreAt, transfer)
				if start < c.pos {
					start = c.pos
				}
			}
			tp.PrefetchAt = start
		}
		pl.putTensorPlan(c.in.ID, tp)
		d.tensors = append(d.tensors, c.in)
	}
	pl.deltaTN = d.tensors[:0]
	return d
}

// microRestorable reports whether t's restoring consumer could stream
// it back in micro-tensors: the consumer is sample-splittable, shares
// the batch axis, and is t's final use.
func (pl *Planner) microRestorable(t *graph.Tensor, restoreAt int) bool {
	if pl.Opts.DisableSplit || pl.lastOf[t.ID] != restoreAt {
		return false
	}
	op := pl.Sched.Ops[restoreAt]
	_, out := SplitTensors(op, tensor.DimSample)
	return out != nil && t.Shape.Rank() >= 1 && out.Shape.Rank() >= 1 && t.Shape[0] == out.Shape[0]
}

// Shared read-only option sets for splitInOpts.
var (
	inOptsReside      = []MemOpt{Reside}
	inOptsRecompute   = []MemOpt{Recompute, Reside}
	inOptsSwapRecRes  = []MemOpt{Swap, Recompute, Reside}
	splitDimsSearched = []tensor.SplitDim{tensor.DimSample, tensor.DimParam}
)

// scoreSplitInto scores splitting the operator at schedule position j
// jointly with a memory option for its input micro-tensors (paper
// Eq. 6), searching p_num and the split dimension, into c. An operator
// that is already split may be upgraded to a larger p_num with the
// same dimension and input option when the bottleneck persists.
func (pl *Planner) scoreSplitInto(j int, c *candidate, wk *chainWalker) {
	c.valid = false
	op := pl.Sched.Ops[j]
	cur, has := pl.plan.Splits[op.ID]
	var best *candidate
	var tmp candidate
	var curOpt [1]MemOpt
	for _, dim := range splitDimsSearched {
		if has && dim != cur.Dim {
			continue
		}
		in, out := SplitTensors(op, dim)
		if in == nil {
			continue
		}
		axis := 0
		if dim == tensor.DimParam {
			axis = 0 // weight's output axis is axis 0 (OIHW) / last (matmul): extent check below
			if op.Kind != graph.Conv2D && in.Shape.Rank() >= 2 {
				axis = in.Shape.Rank() - 1
			}
		}
		maxP := tensor.MaxSplit(in.Shape, axis)
		inOpts := pl.splitInOpts(in, dim, j)
		if has {
			curOpt[0] = cur.InOpt
			inOpts = curOpt[:]
		}
		for _, pnum := range pl.Opts.PNums {
			if pnum < 2 || pnum > maxP || (has && pnum <= cur.PNum) {
				continue
			}
			for _, inOpt := range inOpts {
				if pl.scoreSplitConfigInto(op, j, in, out, dim, pnum, inOpt, has, &cur, &tmp, wk) && pl.better(&tmp, best) {
					*c = tmp
					best = c
				}
			}
		}
	}
}

// carvableSecondInput returns the second activation input of a binary
// operator that can also be carved and freed micro-part by micro-part:
// it must die at the bottleneck, share the batch axis, and be
// unplanned.
func (pl *Planner) carvableSecondInput(op *graph.Op, in, out *graph.Tensor, dim tensor.SplitDim, i int) *graph.Tensor {
	if dim != tensor.DimSample || op.Kind != graph.Add {
		return nil
	}
	for _, t := range op.Inputs {
		if t == in || t.Kind == tensor.Parameter {
			continue
		}
		if t.Shape.Rank() < 1 || out.Shape.Rank() < 1 || t.Shape[0] != out.Shape[0] {
			continue
		}
		if pl.tpSet[t.ID] {
			continue
		}
		if _, restore, _ := pl.evictionWindowAfterFast(t, i); restore == -1 {
			return t
		}
	}
	return nil
}

// splitInOpts returns the feasible micro-tensor memory options for the
// split input: eviction requires that the bottleneck is the input's
// last forward use (later forward consumers would need it back
// immediately) and that it is not already planned.
func (pl *Planner) splitInOpts(in *graph.Tensor, dim tensor.SplitDim, i int) []MemOpt {
	if dim == tensor.DimParam {
		return inOptsReside // the carved operand is the resident weight
	}
	if pl.tpSet[in.ID] {
		return inOptsReside
	}
	for _, c := range in.Consumers {
		if u := pl.opIdx[c.ID]; u > i && c.Phase == graph.Forward {
			return inOptsReside // still needed whole in the forward pass
		}
	}
	if _, restore, _ := pl.evictionWindowAfterFast(in, i); restore == -1 {
		// The input dies at this operator (typical for upstream
		// gradients in the backward pass): its micro-tensors can simply
		// be freed as they are consumed, reusing the space for the
		// output micro-tensors at no eviction cost.
		return inOptsRecompute
	}
	if !in.Kind.Evictable() {
		return inOptsReside
	}
	return inOptsSwapRecRes
}

// scoreSplitConfigInto prices one (op, p_num, dim, inOpt)
// configuration into c, measuring ΔM relative to the op's current
// (possibly already split) footprint. It reports whether the
// configuration is a viable candidate.
func (pl *Planner) scoreSplitConfigInto(op *graph.Op, i int, in, out *graph.Tensor, dim tensor.SplitDim, pnum int, inOpt MemOpt, has bool, cur *OpSplit, c *candidate, wk *chainWalker) bool {
	inB, outB := in.Bytes(), out.Bytes()
	in2 := pl.carvableSecondInput(op, in, out, dim, i)

	newSplit := OpSplit{Op: op, PNum: pnum, Dim: dim, InOpt: inOpt, In2: in2}
	curAdj := op.Workspace
	baseT := pl.Prof.T[i]
	if has {
		curAdj = splitAdjustment(op, *cur)
		_, baseT = pl.Prof.Cost.SplitTimes(op, cur.PNum)
	}

	// Micro-granular swap-in: swapped inputs restored exactly for this
	// operator can be streamed back one micro-tensor at a time, so only
	// size/p re-occupies the device (joint split+swap optimization).
	var microIns []*graph.Tensor
	var microB int64
	if dim == tensor.DimSample {
		for _, t := range op.Inputs {
			tp, planned := pl.plan.Tensors[t.ID]
			if !planned || tp.Opt != Swap || tp.MicroRestore > 1 || tp.RestoreAt != i {
				continue
			}
			if t.Shape.Rank() < 1 || t.Shape[0] != op.Outputs[0].Shape[0] {
				continue
			}
			if pl.lastOf[t.ID] != i {
				continue // another consumer still needs it whole
			}
			//lint:allow scratchreuse the serial reference path is not pooled
			microIns = append(microIns, t)
			microB += t.Bytes()
		}
	}

	newSplit.MicroIns = microIns
	deltaM := curAdj - splitAdjustment(op, newSplit)
	// Micro-restored inputs shrink from full size to size/p on the
	// device (they were previously charged whole from their prefetch).
	deltaM += microB - microB/int64(pnum)
	if deltaM <= 0 {
		return false
	}

	// Time cost (Eq. 6): kernel degradation + merge copy + micro
	// eviction costs.
	_, totalSplit := pl.Prof.Cost.SplitTimes(op, pnum)
	deltaT := totalSplit - baseT
	if deltaT < 0 {
		deltaT = 0
	}
	if effectiveKind(op) == graph.BatchNorm {
		// Micro-tensor batch normalization needs a second pass to
		// finalize the batch statistics before normalizing.
		deltaT += float64(inB) / pl.Dev.MemBandwidth
	}
	if microB > 0 {
		// Streaming restores hide under the micro-operators; the
		// un-hidden remainder stalls.
		transfer := pl.Prof.TransferTime(microB)
		hide := totalSplit * float64(pnum-1) / float64(pnum)
		if stall := transfer - hide; stall > 0 {
			deltaT += stall
		}
	}
	// Merge of the output micro-tensors for the (unsplit) consumer; a
	// sample-axis carve of the input is an in-place view and free.
	if !has {
		deltaT += float64(outB) / pl.Dev.MemBandwidth
		if dim == tensor.DimParam {
			deltaT += float64(inB) / pl.Dev.MemBandwidth // strided weight carve
		}
	}

	evictAt, restoreAt := i, -1
	switch {
	case has:
		// Upgrade: the input's eviction (if any) was priced and
		// committed with the original split decision.
	case inOpt == Swap:
		transfer := pl.Prof.TransferTime(inB)
		_, restoreAt, _ = pl.evictionWindowAfterFast(in, i)
		if restoreAt < 0 {
			return false
		}
		// Micro swap-outs overlap the remaining micro-operators.
		hide := totalSplit * float64(pnum-1) / float64(pnum)
		if stall := transfer - hide; stall > 0 {
			deltaT += stall
		}
		deltaT += pl.occ.Stall(transfer, i+1, restoreAt-1)
	case inOpt == Recompute:
		_, restoreAt, _ = pl.evictionWindowAfterFast(in, i)
		if restoreAt >= 0 {
			chain, err := wk.walk(in, availQuery{pl, restoreAt}, pl.Opts.MaxRecomputeChain, nil)
			if err != nil {
				return false
			}
			deltaT += pl.chainCostFast(chain) * float64(pl.backwardUsesFast(in, restoreAt))
		}
		// restoreAt == -1: the input dies here; micro-tensors are
		// simply freed as consumed, no regeneration ever needed.
	}

	gen := pl.genOf[in.ID]
	if gen < 0 {
		gen = 0
	}
	*c = candidate{
		valid:     true,
		isSplit:   true,
		ratio:     deltaT / float64(deltaM),
		deltaT:    deltaT,
		deltaM:    deltaM,
		genIdx:    gen,
		pos:       i,
		evictAt:   evictAt,
		restoreAt: restoreAt,
		split:     newSplit,
		splitNew:  !has,
		in:        in,
		inOpt:     inOpt,
	}
	return true
}

// --- ID-indexed fast equivalents of the candidates.go helpers ---

// evictionWindowFast is evictionWindow answering from usesOf/genOf.
func (pl *Planner) evictionWindowFast(t *graph.Tensor, i int) (evictAt, restoreAt int, ok bool) {
	first := pl.genOf[t.ID]
	if first >= i { // not yet produced, or produced at the bottleneck
		return 0, 0, false
	}
	evictAt = first
	if evictAt < 0 {
		evictAt = 0
	}
	restoreAt = -1
	for _, u := range pl.usesOf[t.ID] {
		switch {
		case u == i:
			return 0, 0, false // input of the bottleneck op itself
		case u < i:
			if u > evictAt {
				evictAt = u
			}
		case restoreAt == -1:
			restoreAt = u
		}
	}
	if restoreAt == -1 {
		return 0, 0, false // dead after i anyway; eviction frees nothing new
	}
	return evictAt, restoreAt, true
}

// evictionWindowAfterFast is the split-input specialization: evicted
// at i (its consuming op), restored at its next use.
func (pl *Planner) evictionWindowAfterFast(t *graph.Tensor, i int) (evictAt, restoreAt int, ok bool) {
	for _, u := range pl.usesOf[t.ID] {
		if u > i {
			return i, u, true
		}
	}
	return 0, -1, false
}

// backwardUsesFast counts t's consumers at or after restoreAt — under
// the memory-centric recomputation strategy (paper Sec. V-D) each pays
// the chain cost again.
func (pl *Planner) backwardUsesFast(t *graph.Tensor, restoreAt int) int {
	n := 0
	for _, u := range pl.usesOf[t.ID] {
		if u >= restoreAt {
			n++
		}
	}
	if n == 0 {
		n = 1
	}
	return n
}

// chainCostFast sums the profiled forward time of a recompute chain.
func (pl *Planner) chainCostFast(chain []*graph.Op) float64 {
	var s float64
	for _, op := range chain {
		s += pl.Prof.T[pl.opIdx[op.ID]]
	}
	return s
}

// earlyOutPass applies the paper's early-swap mechanism: when a
// swapped tensor's swap-out could not be fully hidden, splitting its
// producer lets the transfer start at micro-tensor granularity —
// during the producer's own execution — recovering up to
// (p-1)/p of the producer's time as additional overlap. Tensors are
// visited in ID order so the floating-point time accumulation is
// deterministic.
func (pl *Planner) earlyOutPass() {
	ids := pl.swapStallIDs
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id32 := range ids {
		id := int(id32)
		stall := pl.swapStallOf[id]
		if stall <= 0 {
			continue
		}
		tp := pl.plan.Tensors[id]
		t := tp.Tensor
		prod := t.Producer
		if prod == nil {
			continue
		}
		if _, already := pl.plan.Splits[prod.ID]; already {
			continue
		}
		in, out := SplitTensors(prod, tensor.DimSample)
		if in == nil || out != t {
			continue
		}
		const pnum = 4
		if tensor.MaxSplit(t.Shape, 0) < pnum {
			continue
		}
		_, totalSplit := pl.Prof.Cost.SplitTimes(prod, pnum)
		pi := pl.opIdx[prod.ID]
		degrade := totalSplit - pl.Prof.T[pi]
		if degrade < 0 {
			degrade = 0
		}
		gain := totalSplit * float64(pnum-1) / float64(pnum)
		if gain > stall {
			gain = stall
		}
		if gain <= degrade {
			continue
		}
		pl.plan.Splits[prod.ID] = OpSplit{Op: prod, PNum: pnum, Dim: tensor.DimSample, InOpt: Reside, EarlyOut: true}
		if pl.incremental {
			// Keep the pooled curve coherent: the final peak comes from
			// curve.scan(), which must see the split's footprint change.
			pl.curve.setAdj(pi, pl.ms.opFootprintAdjustment(prod, pl.plan))
		}
		pl.extraTime -= gain - degrade
	}
}
