package core

import (
	"fmt"
	"math"

	"tsplit/internal/device"
	"tsplit/internal/graph"
	"tsplit/internal/profiler"
	"tsplit/internal/tensor"
)

// Options tunes the planner. The zero value is the paper's
// configuration: split enabled, p_num searched over powers of two,
// recompute chains bounded.
type Options struct {
	// Capacity overrides the device memory budget (0 = dev.MemBytes).
	// Experiments use it to emulate memory over-subscription.
	Capacity int64
	// DisableSplit turns off the tensor-splitting strategy — the
	// "TSPLIT w/o Split" ablation of paper Fig. 14(a).
	DisableSplit bool
	// PNums is the split-count search space (default 2,4,8,16,32).
	PNums []int
	// MaxRecomputeChain bounds the forward subgraph a recompute may
	// re-execute (default 24 ops).
	MaxRecomputeChain int
	// DisableEarlyOut turns off the micro-tensor early swap-out
	// refinement (ablation).
	DisableEarlyOut bool
	// MaxIterations bounds planning work (default 20000 decisions).
	MaxIterations int
	// FragmentationReserve is headroom subtracted from the capacity
	// the planner targets, absorbing allocator fragmentation and
	// transient regeneration buffers at run time (default
	// max(256 MiB, 3% of capacity); negative disables).
	FragmentationReserve int64
	// OffloadOptimizer composes TSPLIT's activation planning with
	// CPU-side optimizer state and updates (the configuration used for
	// the PyTorch offload comparison, paper Sec. VI-D).
	OffloadOptimizer bool

	// --- ablation knobs (DESIGN.md §4) ---

	// PreferLargest replaces the greedy min-ΔT/ΔM selection with a
	// largest-ΔM-first heuristic (ablation 1).
	PreferLargest bool
	// DisableRecompute restricts Step 1 to swapping (ablation 1's
	// swap-only variant).
	DisableRecompute bool
	// SplitLookahead is how many schedule positions past the
	// bottleneck split candidates are considered at (default 8;
	// ablation 3 sets it negative to disable the lookahead).
	SplitLookahead int
	// DisableGenTieBreak turns off the earlier-generated-tensor
	// preference on near-tied ratios (ablation 4).
	DisableGenTieBreak bool
}

func (o Options) withDefaults(dev device.Device) Options {
	if o.Capacity == 0 {
		o.Capacity = dev.MemBytes
	}
	if o.FragmentationReserve == 0 {
		o.FragmentationReserve = o.Capacity * 3 / 100
		if o.FragmentationReserve < 256*(1<<20) {
			o.FragmentationReserve = 256 * (1 << 20)
		}
	}
	if o.FragmentationReserve > 0 {
		o.Capacity -= o.FragmentationReserve
	}
	if len(o.PNums) == 0 {
		o.PNums = []int{2, 4, 8, 16, 32}
	}
	if o.MaxRecomputeChain == 0 {
		o.MaxRecomputeChain = 24
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 20000
	}
	if o.SplitLookahead == 0 {
		o.SplitLookahead = 8
	}
	if o.SplitLookahead < 0 {
		o.SplitLookahead = 0
	}
	return o
}

// Planner implements the model-guided planning of paper Algorithm 2:
// simulate the memory requirement along the schedule; at each memory
// bottleneck score every candidate action — swap or recompute of a
// live tensor (Step 1), or a split of the bottleneck operator jointly
// with micro-tensor eviction (Step 2) — by its ΔT/ΔM ratio, commit the
// cheapest (Step 3), and repeat until the whole schedule fits the
// device.
type Planner struct {
	G     *graph.Graph
	Sched *graph.Schedule
	Lv    *graph.Liveness
	Prof  *profiler.Profile
	Dev   device.Device
	Opts  Options

	ms        *MemSim
	occ       *profiler.Occupancy
	plan      *Plan
	extraTime float64
	// swapStall remembers the unhidden swap-out time per tensor ID so
	// the early-out refinement knows where splitting a producer helps.
	swapStall map[int]float64
}

// NewPlanner assembles a planner for one (graph, schedule, device).
func NewPlanner(g *graph.Graph, sched *graph.Schedule, lv *graph.Liveness, prof *profiler.Profile, dev device.Device, opts Options) *Planner {
	return &Planner{
		G: g, Sched: sched, Lv: lv, Prof: prof, Dev: dev,
		Opts: opts.withDefaults(dev),
		ms:   NewMemSim(g, sched, lv),
	}
}

// candidate is one scored planning action.
type candidate struct {
	// ratio is ΔT/ΔM, the greedy key (seconds per byte).
	ratio   float64
	deltaT  float64
	deltaM  int64
	genIdx  int // production index, for the earlier-tensor tie-break
	apply   func()
	isSplit bool
}

// ErrInfeasible is returned when no remaining action can break a
// memory bottleneck — the configuration cannot train (the × entries of
// the paper's Tables IV/V).
var ErrInfeasible = fmt.Errorf("core: no strategy can fit the schedule in device memory")

// Plan runs Algorithm 2 and returns the strategy configuration. On
// failure the partial plan built so far is returned alongside the
// error, for diagnostics.
func (pl *Planner) Plan() (*Plan, error) {
	pl.plan = NewPlan("tsplit", pl.Dev)
	if pl.Opts.DisableSplit {
		pl.plan.Name = "tsplit-nosplit"
	}
	if pl.Opts.OffloadOptimizer {
		pl.plan.Name = "tsplit-offload"
		pl.plan.OffloadOptimizer = true
	}
	pl.occ = profiler.NewOccupancy(pl.Prof)
	pl.swapStall = make(map[int]float64)
	cap := pl.Opts.Capacity

	for iter := 0; ; iter++ {
		if iter >= pl.Opts.MaxIterations {
			return pl.plan, fmt.Errorf("core: planning did not converge in %d iterations", iter)
		}
		pl.refreshChains()
		memAt, peak, _ := pl.ms.Curve(pl.plan)
		if peak <= cap {
			break
		}
		// First bottleneck position (Algorithm 2 walks the schedule).
		i := 0
		for ; i < len(memAt); i++ {
			if memAt[i] > cap {
				break
			}
		}
		best := pl.bestCandidate(i)
		if best == nil {
			return pl.plan, fmt.Errorf("%w (bottleneck at op %d %s: need %.1f MiB over capacity)",
				ErrInfeasible, i, pl.Sched.Ops[i], float64(memAt[i]-cap)/(1<<20))
		}
		best.apply()
		pl.extraTime += best.deltaT
	}

	if !pl.Opts.DisableSplit && !pl.Opts.DisableEarlyOut {
		pl.earlyOutPass()
	}
	_, peak, _ := pl.ms.Curve(pl.plan)
	pl.plan.PredictedPeak = peak
	pl.plan.PredictedTime = pl.Prof.Total() + pl.extraTime
	return pl.plan, nil
}

// refreshChains recomputes the transient-memory estimate of every
// recompute decision against the *current* plan: a chain recorded
// earlier may have grown because a tensor it sourced from was itself
// evicted by a later decision.
func (pl *Planner) refreshChains() {
	for id, tp := range pl.plan.Tensors {
		if tp.Opt != Recompute {
			continue
		}
		chain, err := RecomputeChain(tp.Tensor, availFn(pl.plan, pl.Lv, tp.RestoreAt), len(pl.G.Ops))
		if err != nil {
			continue
		}
		tp.ChainBytes = chainTransientBytes(chain, tp.Tensor)
		pl.plan.Tensors[id] = tp
	}
}

// better implements the greedy preference: smaller ΔT/ΔM wins, and on
// near-ties the earlier-generated tensor wins (the paper's key
// observation: swapping an earlier-generated tensor starts its
// transfer sooner and holds the reduction longer). The ablation knobs
// switch to largest-ΔM-first or disable the tie-break.
func (pl *Planner) better(a, b *candidate) bool {
	if b == nil {
		return true
	}
	if pl.Opts.PreferLargest {
		if a.deltaM != b.deltaM {
			return a.deltaM > b.deltaM
		}
		return a.genIdx < b.genIdx
	}
	// Ratios are seconds-per-byte (~1e-12 for interesting candidates),
	// so the tie window must be relative, not absolute.
	const tieAbs = 1e-16
	lo, hi := a.ratio, b.ratio
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi-lo > tieAbs && lo < 0.99*hi {
		return a.ratio < b.ratio
	}
	if pl.Opts.DisableGenTieBreak {
		return a.ratio < b.ratio
	}
	return a.genIdx < b.genIdx
}

// bestCandidate scores Step 1 (swap/recompute of live tensors) and
// Step 2 (split of the bottleneck op) and returns the winner of Step 3.
func (pl *Planner) bestCandidate(i int) *candidate {
	var best *candidate
	for _, t := range pl.G.Tensors {
		if c := pl.scoreEvict(t, i); c != nil && pl.better(c, best) {
			best = c
		}
	}
	if !pl.Opts.DisableSplit {
		// The memory rise at i is often caused by prefetches for a
		// consumer a few positions later (its restored saved
		// activations), so splitting any op in a short lookahead window
		// can break the bottleneck at i.
		for j := i; j < len(pl.Sched.Ops) && j <= i+pl.Opts.SplitLookahead; j++ {
			if c := pl.scoreSplit(j); c != nil && pl.better(c, best) {
				best = c
			}
		}
	}
	return best
}

// scoreEvict scores swap vs recompute for one live tensor at
// bottleneck i (paper Eqs. 2-5) and returns the cheaper, or nil when t
// is not a candidate.
func (pl *Planner) scoreEvict(t *graph.Tensor, i int) *candidate {
	if !t.Kind.Evictable() {
		return nil
	}
	if _, planned := pl.plan.Tensors[t.ID]; planned {
		return nil
	}
	evictAt, restoreAt, ok := evictionWindow(t, pl.Sched, pl.Lv, i)
	if !ok {
		return nil
	}
	size := t.Bytes()
	transfer := pl.Prof.TransferTime(size)

	// Swap (Eq. 3): unhidden transfer time out (between the tensor's
	// last use and the bottleneck) plus in (between the bottleneck and
	// the restoring consumer).
	stallOut := pl.occ.Stall(transfer, evictAt+1, i-1)
	stallIn := pl.occ.Stall(transfer, i, restoreAt-1)
	swapT := stallOut + stallIn

	// Recompute (Eq. 5): chain cost per backward consumer
	// (memory-centric strategy).
	recompT := math.Inf(1)
	var chainBytes int64
	if t.Kind == tensor.FeatureMap && !pl.Opts.DisableRecompute {
		if chain, err := RecomputeChain(t, availFn(pl.plan, pl.Lv, restoreAt), pl.Opts.MaxRecomputeChain); err == nil {
			recompT = chainCost(chain, pl.Prof) * float64(backwardUses(t, pl.Sched, restoreAt))
			chainBytes = chainTransientBytes(chain, t)
		}
	}

	opt, dT := Swap, swapT
	if recompT < swapT {
		opt, dT = Recompute, recompT
	}
	// Tensors whose restoring consumer is splittable can later be
	// streamed back at micro-tensor granularity (their swap-in memory
	// shrinks to size/p), which recompute cannot match: keep them
	// swappable unless recompute is far cheaper.
	if opt == Recompute && swapT <= 4*recompT+1e-6 && pl.microRestorable(t, restoreAt) {
		opt, dT = Swap, swapT
	}
	gen := pl.Lv.FirstUse[t]
	if gen < 0 {
		gen = 0
	}
	c := &candidate{
		ratio:  dT / float64(size),
		deltaT: dT,
		deltaM: size,
		genIdx: gen,
	}
	c.apply = func() {
		tp := TensorPlan{Tensor: t, Opt: opt, EvictAt: evictAt, RestoreAt: restoreAt, PrefetchAt: restoreAt}
		if opt == Recompute {
			tp.ChainBytes = chainBytes
		}
		if opt == Swap {
			pl.occ.Reserve(transfer, evictAt+1, i-1)
			start, leftover := pl.occ.ReserveBack(transfer, i, restoreAt-1)
			if leftover > 0 {
				// The link is saturated: the copy runs just before its
				// deadline (stalling compute for the unhidden part)
				// rather than spreading across the iteration, so the
				// tensor re-occupies memory only near its use.
				start = pl.Prof.WindowStart(restoreAt, transfer)
				if start < i {
					start = i
				}
			}
			tp.PrefetchAt = start
			pl.swapStall[t.ID] = stallOut
		}
		pl.plan.Tensors[t.ID] = tp
	}
	return c
}

// microRestorable reports whether t's restoring consumer could stream
// it back in micro-tensors: the consumer is sample-splittable, shares
// the batch axis, and is t's final use.
func (pl *Planner) microRestorable(t *graph.Tensor, restoreAt int) bool {
	if pl.Opts.DisableSplit || pl.Lv.LastUse[t] != restoreAt {
		return false
	}
	op := pl.Sched.Ops[restoreAt]
	_, out := SplitTensors(op, tensor.DimSample)
	return out != nil && t.Shape.Rank() >= 1 && out.Shape.Rank() >= 1 && t.Shape[0] == out.Shape[0]
}

// scoreSplit scores splitting the bottleneck operator jointly with a
// memory option for its input micro-tensors (paper Eq. 6), searching
// p_num and the split dimension. An operator that is already split may
// be upgraded to a larger p_num with the same dimension and input
// option when the bottleneck persists.
func (pl *Planner) scoreSplit(i int) *candidate {
	op := pl.Sched.Ops[i]
	cur, has := pl.plan.Splits[op.ID]
	var best *candidate
	for _, dim := range []tensor.SplitDim{tensor.DimSample, tensor.DimParam} {
		if has && dim != cur.Dim {
			continue
		}
		in, out := SplitTensors(op, dim)
		if in == nil {
			continue
		}
		axis := 0
		if dim == tensor.DimParam {
			axis = 0 // weight's output axis is axis 0 (OIHW) / last (matmul): extent check below
			if op.Kind != graph.Conv2D && in.Shape.Rank() >= 2 {
				axis = in.Shape.Rank() - 1
			}
		}
		maxP := tensor.MaxSplit(in.Shape, axis)
		inOpts := pl.splitInOpts(in, dim, i)
		if has {
			inOpts = []MemOpt{cur.InOpt}
		}
		for _, pnum := range pl.Opts.PNums {
			if pnum < 2 || pnum > maxP || (has && pnum <= cur.PNum) {
				continue
			}
			for _, inOpt := range inOpts {
				if c := pl.scoreSplitConfig(op, i, in, out, dim, pnum, inOpt); c != nil && pl.better(c, best) {
					best = c
				}
			}
		}
	}
	return best
}

// carvableSecondInput returns the second activation input of a binary
// operator that can also be carved and freed micro-part by micro-part:
// it must die at the bottleneck, share the batch axis, and be
// unplanned.
func (pl *Planner) carvableSecondInput(op *graph.Op, in, out *graph.Tensor, dim tensor.SplitDim, i int) *graph.Tensor {
	if dim != tensor.DimSample || op.Kind != graph.Add {
		return nil
	}
	for _, t := range op.Inputs {
		if t == in || t.Kind == tensor.Parameter {
			continue
		}
		if t.Shape.Rank() < 1 || out.Shape.Rank() < 1 || t.Shape[0] != out.Shape[0] {
			continue
		}
		if _, planned := pl.plan.Tensors[t.ID]; planned {
			continue
		}
		if _, restore, _ := evictionWindowAfter(t, pl.Sched, i); restore == -1 {
			return t
		}
	}
	return nil
}

// splitInOpts returns the feasible micro-tensor memory options for the
// split input: eviction requires that the bottleneck is the input's
// last forward use (later forward consumers would need it back
// immediately) and that it is not already planned.
func (pl *Planner) splitInOpts(in *graph.Tensor, dim tensor.SplitDim, i int) []MemOpt {
	if dim == tensor.DimParam {
		return []MemOpt{Reside} // the carved operand is the resident weight
	}
	if _, planned := pl.plan.Tensors[in.ID]; planned {
		return []MemOpt{Reside}
	}
	for _, c := range in.Consumers {
		if u := pl.Sched.Index[c]; u > i && c.Phase == graph.Forward {
			return []MemOpt{Reside} // still needed whole in the forward pass
		}
	}
	if _, restore, _ := evictionWindowAfter(in, pl.Sched, i); restore == -1 {
		// The input dies at this operator (typical for upstream
		// gradients in the backward pass): its micro-tensors can simply
		// be freed as they are consumed, reusing the space for the
		// output micro-tensors at no eviction cost.
		return []MemOpt{Recompute, Reside}
	}
	if !in.Kind.Evictable() {
		return []MemOpt{Reside}
	}
	return []MemOpt{Swap, Recompute, Reside}
}

// scoreSplitConfig prices one (op, p_num, dim, inOpt) configuration,
// measuring ΔM relative to the op's current (possibly already split)
// footprint.
func (pl *Planner) scoreSplitConfig(op *graph.Op, i int, in, out *graph.Tensor, dim tensor.SplitDim, pnum int, inOpt MemOpt) *candidate {
	inB, outB := in.Bytes(), out.Bytes()
	in2 := pl.carvableSecondInput(op, in, out, dim, i)

	newSplit := OpSplit{Op: op, PNum: pnum, Dim: dim, InOpt: inOpt, In2: in2}
	curAdj := op.Workspace
	baseT := pl.Prof.T[i]
	cur, has := pl.plan.Splits[op.ID]
	if has {
		curAdj = splitAdjustment(op, cur)
		_, baseT = pl.Prof.Cost.SplitTimes(op, cur.PNum)
	}

	// Micro-granular swap-in: swapped inputs restored exactly for this
	// operator can be streamed back one micro-tensor at a time, so only
	// size/p re-occupies the device (joint split+swap optimization).
	var microIns []*graph.Tensor
	var microB int64
	if dim == tensor.DimSample {
		for _, t := range op.Inputs {
			tp, planned := pl.plan.Tensors[t.ID]
			if !planned || tp.Opt != Swap || tp.MicroRestore > 1 || tp.RestoreAt != i {
				continue
			}
			if t.Shape.Rank() < 1 || t.Shape[0] != op.Outputs[0].Shape[0] {
				continue
			}
			if pl.Lv.LastUse[t] != i {
				continue // another consumer still needs it whole
			}
			microIns = append(microIns, t)
			microB += t.Bytes()
		}
	}

	newSplit.MicroIns = microIns
	deltaM := curAdj - splitAdjustment(op, newSplit)
	// Micro-restored inputs shrink from full size to size/p on the
	// device (they were previously charged whole from their prefetch).
	deltaM += microB - microB/int64(pnum)
	if deltaM <= 0 {
		return nil
	}

	// Time cost (Eq. 6): kernel degradation + merge copy + micro
	// eviction costs.
	_, totalSplit := pl.Prof.Cost.SplitTimes(op, pnum)
	deltaT := totalSplit - baseT
	if deltaT < 0 {
		deltaT = 0
	}
	if effectiveKind(op) == graph.BatchNorm {
		// Micro-tensor batch normalization needs a second pass to
		// finalize the batch statistics before normalizing.
		deltaT += float64(inB) / pl.Dev.MemBandwidth
	}
	if microB > 0 {
		// Streaming restores hide under the micro-operators; the
		// un-hidden remainder stalls.
		transfer := pl.Prof.TransferTime(microB)
		hide := totalSplit * float64(pnum-1) / float64(pnum)
		if stall := transfer - hide; stall > 0 {
			deltaT += stall
		}
	}
	// Merge of the output micro-tensors for the (unsplit) consumer; a
	// sample-axis carve of the input is an in-place view and free.
	if !has {
		deltaT += float64(outB) / pl.Dev.MemBandwidth
		if dim == tensor.DimParam {
			deltaT += float64(inB) / pl.Dev.MemBandwidth // strided weight carve
		}
	}

	evictAt, restoreAt := i, -1
	switch {
	case has:
		// Upgrade: the input's eviction (if any) was priced and
		// committed with the original split decision.
	case inOpt == Swap:
		transfer := pl.Prof.TransferTime(inB)
		_, restoreAt, _ = evictionWindowAfter(in, pl.Sched, i)
		if restoreAt < 0 {
			return nil
		}
		// Micro swap-outs overlap the remaining micro-operators.
		hide := totalSplit * float64(pnum-1) / float64(pnum)
		if stall := transfer - hide; stall > 0 {
			deltaT += stall
		}
		deltaT += pl.occ.Stall(transfer, i+1, restoreAt-1)
	case inOpt == Recompute:
		_, restoreAt, _ = evictionWindowAfter(in, pl.Sched, i)
		if restoreAt >= 0 {
			chain, err := RecomputeChain(in, availFn(pl.plan, pl.Lv, restoreAt), pl.Opts.MaxRecomputeChain)
			if err != nil {
				return nil
			}
			deltaT += chainCost(chain, pl.Prof) * float64(backwardUses(in, pl.Sched, restoreAt))
		}
		// restoreAt == -1: the input dies here; micro-tensors are
		// simply freed as consumed, no regeneration ever needed.
	}

	gen := pl.Lv.FirstUse[in]
	if gen < 0 {
		gen = 0
	}
	c := &candidate{
		ratio:   deltaT / float64(deltaM),
		deltaT:  deltaT,
		deltaM:  deltaM,
		genIdx:  gen,
		isSplit: true,
	}
	c.apply = func() {
		pl.plan.Splits[op.ID] = newSplit
		for _, t := range microIns {
			tp := pl.plan.Tensors[t.ID]
			tp.MicroRestore = pnum
			pl.plan.Tensors[t.ID] = tp
		}
		if !has && inOpt != Reside && restoreAt >= 0 {
			tp := TensorPlan{Tensor: in, Opt: inOpt, EvictAt: evictAt, RestoreAt: restoreAt, PrefetchAt: restoreAt}
			if inOpt == Swap {
				transfer := pl.Prof.TransferTime(inB)
				start, leftover := pl.occ.ReserveBack(transfer, i, restoreAt-1)
				if leftover > 0 {
					start = pl.Prof.WindowStart(restoreAt, transfer)
					if start < i {
						start = i
					}
				}
				tp.PrefetchAt = start
			}
			pl.plan.Tensors[in.ID] = tp
		}
	}
	return c
}

// evictionWindowAfter is evictionWindow specialized for the split
// input: evicted at i (its consuming op), restored at its next use.
func evictionWindowAfter(t *graph.Tensor, sched *graph.Schedule, i int) (evictAt, restoreAt int, ok bool) {
	restoreAt = -1
	for _, c := range t.Consumers {
		if u := sched.Index[c]; u > i && (restoreAt == -1 || u < restoreAt) {
			restoreAt = u
		}
	}
	if restoreAt == -1 {
		return 0, -1, false
	}
	return i, restoreAt, true
}

// earlyOutPass applies the paper's early-swap mechanism: when a
// swapped tensor's swap-out could not be fully hidden, splitting its
// producer lets the transfer start at micro-tensor granularity —
// during the producer's own execution — recovering up to
// (p-1)/p of the producer's time as additional overlap.
func (pl *Planner) earlyOutPass() {
	for id, stall := range pl.swapStall {
		if stall <= 0 {
			continue
		}
		tp := pl.plan.Tensors[id]
		t := tp.Tensor
		prod := t.Producer
		if prod == nil {
			continue
		}
		if _, already := pl.plan.Splits[prod.ID]; already {
			continue
		}
		in, out := SplitTensors(prod, tensor.DimSample)
		if in == nil || out != t {
			continue
		}
		const pnum = 4
		if tensor.MaxSplit(t.Shape, 0) < pnum {
			continue
		}
		_, totalSplit := pl.Prof.Cost.SplitTimes(prod, pnum)
		pi := pl.Sched.Index[prod]
		degrade := totalSplit - pl.Prof.T[pi]
		if degrade < 0 {
			degrade = 0
		}
		gain := totalSplit * float64(pnum-1) / float64(pnum)
		if gain > stall {
			gain = stall
		}
		if gain <= degrade {
			continue
		}
		pl.plan.Splits[prod.ID] = OpSplit{Op: prod, PNum: pnum, Dim: tensor.DimSample, InOpt: Reside, EarlyOut: true}
		pl.extraTime -= gain - degrade
	}
}
