package core

import (
	"sync"

	"tsplit/internal/device"
	"tsplit/internal/graph"
	"tsplit/internal/profiler"
)

// PlannerPool recycles planners for one (graph, schedule, liveness,
// profile, device) configuration. Constructing a planner allocates the
// per-model arenas — the ID-indexed liveness mirrors, the candidate
// index CSRs, the occupancy block decomposition, the memory curve —
// which dominate a cold Plan()'s allocation count. A recycled planner
// keeps all of them and resets in place at the top of each run, so
// steady-state Plan() calls allocate only the returned Plan itself.
//
// Callers that replan the same workload repeatedly (hyper-parameter
// sweeps, the resilient capacity ladder, benchmark drivers) Get a
// planner per task and Put it back when the plan has been consumed.
// Put severs all cross-run state (journal, last plan), so a pooled
// planner never warm-starts from another borrower's run; warm
// replanning is available to a single borrower that calls Replan
// between Get and Put.
type PlannerPool struct {
	g     *graph.Graph
	sched *graph.Schedule
	lv    *graph.Liveness
	prof  *profiler.Profile
	dev   device.Device

	mu   sync.Mutex
	free []*Planner // lint:guardedby mu
}

// NewPlannerPool creates an empty pool for the configuration. No
// planner is built until the first Get.
func NewPlannerPool(g *graph.Graph, sched *graph.Schedule, lv *graph.Liveness, prof *profiler.Profile, dev device.Device) *PlannerPool {
	return &PlannerPool{g: g, sched: sched, lv: lv, prof: prof, dev: dev}
}

// Get returns a planner with opts applied: a recycled one when the
// free list is non-empty, otherwise a freshly constructed one.
func (pp *PlannerPool) Get(opts Options) *Planner {
	pp.mu.Lock()
	var pl *Planner
	if n := len(pp.free); n > 0 {
		pl = pp.free[n-1]
		pp.free[n-1] = nil
		pp.free = pp.free[:n-1]
	}
	pp.mu.Unlock()
	if pl == nil {
		return NewPlanner(pp.g, pp.sched, pp.lv, pp.prof, pp.dev, opts)
	}
	pl.SetOptions(opts)
	return pl
}

// Put returns a planner to the pool. Planners built for a different
// configuration are dropped rather than pooled — handing them out
// later would plan the wrong model. Put(nil) is a no-op.
func (pp *PlannerPool) Put(pl *Planner) {
	if pl == nil || pl.G != pp.g || pl.Sched != pp.sched || pl.Lv != pp.lv || pl.Prof != pp.prof {
		return
	}
	pl.Reset()
	pp.mu.Lock()
	pp.free = append(pp.free, pl)
	pp.mu.Unlock()
}

// Size reports the current free-list length (for tests and metrics).
func (pp *PlannerPool) Size() int {
	pp.mu.Lock()
	n := len(pp.free)
	pp.mu.Unlock()
	return n
}
