package core

import (
	"sort"

	"tsplit/internal/graph"
	"tsplit/internal/profiler"
)

// FinalizeWindows fills in the eviction/restore/prefetch schedule
// positions for every planned tensor whose producer only chose a
// memory option — the baseline planners (vDNN, Checkpoints,
// SuperNeurons, the offload baselines) decide *what* to evict by
// static rules, and this shared pass derives *when*, using the same
// occupancy simulation as TSPLIT's planner so the comparison is about
// policy, not plumbing.
//
// The eviction window is the largest gap between consecutive uses of
// the tensor in the schedule — for feature maps that is exactly the
// forward-to-backward gap the out-of-core literature exploits.
func FinalizeWindows(g *graph.Graph, sched *graph.Schedule, lv *graph.Liveness, prof *profiler.Profile, plan *Plan) {
	occ := profiler.NewOccupancy(prof)

	ids := make([]int, 0, len(plan.Tensors))
	for id := range plan.Tensors {
		ids = append(ids, id)
	}
	// Process in production order so swap-out bandwidth is booked in
	// the order the runtime will issue the copies. Sort by ID first and
	// keep the production-order sort stable: multi-output ops produce
	// several tensors at the same FirstUse, and an unstable sort over
	// map-ordered input would book their bandwidth in a different order
	// each run.
	sort.Ints(ids)
	sort.SliceStable(ids, func(a, b int) bool {
		ta, tb := plan.Tensors[ids[a]].Tensor, plan.Tensors[ids[b]].Tensor
		return lv.FirstUse[ta] < lv.FirstUse[tb]
	})

	for _, id := range ids {
		tp := plan.Tensors[id]
		t := tp.Tensor
		points := uses(t, sched)
		prod := lv.FirstUse[t]
		if prod < 0 {
			prod = 0
		}
		points = append([]int{prod}, points...)

		evictAt, restoreAt, gap := -1, -1, 0
		for k := 0; k+1 < len(points); k++ {
			if g := points[k+1] - points[k]; g > gap {
				gap = g
				evictAt, restoreAt = points[k], points[k+1]
			}
		}
		if restoreAt == -1 || gap < 2 {
			// No gap worth evicting across: drop the decision.
			delete(plan.Tensors, id)
			continue
		}
		tp.EvictAt = evictAt
		tp.RestoreAt = restoreAt
		tp.PrefetchAt = restoreAt
		if tp.Opt == Swap {
			transfer := prof.TransferTime(t.Bytes())
			occ.Reserve(transfer, evictAt+1, restoreAt-1)
			start, leftover := occ.ReserveBack(transfer, evictAt+1, restoreAt-1)
			if leftover > 0 {
				start = prof.WindowStart(restoreAt, transfer)
				if start <= evictAt {
					start = evictAt + 1
				}
			}
			tp.PrefetchAt = start
		}
		plan.Tensors[id] = tp
	}

	// Derive recompute-chain transients against the finalized plan. The
	// runtime holds a regeneration's intermediates until the whole chain
	// has re-executed, so the memory curve must charge their sum (plus
	// the widest chain workspace) at the restoring consumer — without
	// this the curve under-predicts deep-chain policies (sqrt(N)
	// checkpointing) by the size of a whole segment. Availability is
	// judged at the consumer's schedule position: a chain source is only
	// on device there if it has not been dropped by its own eviction
	// window (recompute decisions) or refcount-freed after its last
	// scheduled use — by late backward, residuals force chains across
	// whole stages. An op's restorations run sequentially and each
	// chain's intermediates are retired before the next starts, so the
	// per-index charge is the maximum over that op's chains, recorded in
	// plan.ChainTransients. (The TSPLIT planner instead maintains
	// per-tensor ChainBytes estimates for the shallow chains it creates.)
	var chainT []int64
	for _, id := range ids {
		tp, ok := plan.Tensors[id]
		if !ok || tp.Opt != Recompute || tp.ChainBytes > 0 {
			continue
		}
		for _, c := range tp.Tensor.Consumers {
			u := sched.Index[c]
			if u < tp.RestoreAt {
				continue
			}
			chain, err := RecomputeChain(tp.Tensor, func(x *graph.Tensor) bool {
				if xp, planned := plan.Tensors[x.ID]; planned && xp.Opt == Recompute {
					return xp.EvictAt >= u
				}
				return lv.LastUse[x] < 0 || lv.LastUse[x] >= u
			}, len(g.Ops))
			if err != nil {
				continue // the verifier reports unrecoverable chains
			}
			var sum, ws int64
			for _, op := range chain {
				if op.Workspace > ws {
					ws = op.Workspace
				}
				for _, o := range op.Outputs {
					if o != tp.Tensor {
						sum += o.Bytes()
					}
				}
			}
			if b := sum + ws; b > 0 {
				if chainT == nil {
					//lint:allow scratchreuse lazy one-shot allocation, taken at most once per finalize
					chainT = make([]int64, len(sched.Ops))
				}
				if b > chainT[u] {
					chainT[u] = b
				}
			}
		}
	}
	plan.ChainTransients = chainT
}
