package core

import (
	"sort"

	"tsplit/internal/graph"
	"tsplit/internal/profiler"
)

// FinalizeWindows fills in the eviction/restore/prefetch schedule
// positions for every planned tensor whose producer only chose a
// memory option — the baseline planners (vDNN, Checkpoints,
// SuperNeurons, the offload baselines) decide *what* to evict by
// static rules, and this shared pass derives *when*, using the same
// occupancy simulation as TSPLIT's planner so the comparison is about
// policy, not plumbing.
//
// The eviction window is the largest gap between consecutive uses of
// the tensor in the schedule — for feature maps that is exactly the
// forward-to-backward gap the out-of-core literature exploits.
func FinalizeWindows(g *graph.Graph, sched *graph.Schedule, lv *graph.Liveness, prof *profiler.Profile, plan *Plan) {
	occ := profiler.NewOccupancy(prof)

	ids := make([]int, 0, len(plan.Tensors))
	for id := range plan.Tensors {
		ids = append(ids, id)
	}
	// Process in production order so swap-out bandwidth is booked in
	// the order the runtime will issue the copies. Sort by ID first and
	// keep the production-order sort stable: multi-output ops produce
	// several tensors at the same FirstUse, and an unstable sort over
	// map-ordered input would book their bandwidth in a different order
	// each run.
	sort.Ints(ids)
	sort.SliceStable(ids, func(a, b int) bool {
		ta, tb := plan.Tensors[ids[a]].Tensor, plan.Tensors[ids[b]].Tensor
		return lv.FirstUse[ta] < lv.FirstUse[tb]
	})

	for _, id := range ids {
		tp := plan.Tensors[id]
		t := tp.Tensor
		points := uses(t, sched)
		prod := lv.FirstUse[t]
		if prod < 0 {
			prod = 0
		}
		points = append([]int{prod}, points...)

		evictAt, restoreAt, gap := -1, -1, 0
		for k := 0; k+1 < len(points); k++ {
			if g := points[k+1] - points[k]; g > gap {
				gap = g
				evictAt, restoreAt = points[k], points[k+1]
			}
		}
		if restoreAt == -1 || gap < 2 {
			// No gap worth evicting across: drop the decision.
			delete(plan.Tensors, id)
			continue
		}
		tp.EvictAt = evictAt
		tp.RestoreAt = restoreAt
		tp.PrefetchAt = restoreAt
		if tp.Opt == Swap {
			transfer := prof.TransferTime(t.Bytes())
			occ.Reserve(transfer, evictAt+1, restoreAt-1)
			start, leftover := occ.ReserveBack(transfer, evictAt+1, restoreAt-1)
			if leftover > 0 {
				start = prof.WindowStart(restoreAt, transfer)
				if start <= evictAt {
					start = evictAt + 1
				}
			}
			tp.PrefetchAt = start
		}
		plan.Tensors[id] = tp
	}
}
