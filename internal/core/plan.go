// Package core implements TSPLIT's contribution: the joint planning of
// tensor splitting with out-of-core memory management (swap and
// recompute). It contains the sTensor configuration model (paper
// Sec. V-A), the analytic cost models for each strategy (Sec. IV-B,
// Eqs. 2-6), the model-guided greedy planner (Sec. IV-C, Algorithm 2),
// the plan-aware memory simulation it iterates over, and the
// augmented-graph rewrite that materializes a plan as an executable
// dataflow graph with split / merge / swap / recompute operators and
// control-flow edges (Sec. V-A, Fig. 10).
package core

import (
	"fmt"
	"sort"
	"strings"

	"tsplit/internal/device"
	"tsplit/internal/graph"
	"tsplit/internal/tensor"
)

// MemOpt is the per-tensor memory option of an sTensor configuration
// (paper Fig. 9: "memory option (reside/swap/recompute)").
type MemOpt int

const (
	// Reside keeps the tensor on device for its whole lifetime.
	Reside MemOpt = iota
	// Swap evicts the tensor to host memory after its last forward use
	// and prefetches it back before its first backward use.
	Swap
	// Recompute drops the tensor after its last forward use and
	// re-executes its producing subgraph in the backward pass.
	Recompute
)

// String names the option as in the paper.
func (m MemOpt) String() string {
	switch m {
	case Reside:
		return "reside"
	case Swap:
		return "swap"
	case Recompute:
		return "recompute"
	default:
		return fmt.Sprintf("memopt(%d)", int(m))
	}
}

// TensorPlan is the planner's decision for one tensor: the sTensor
// config of paper Fig. 9 plus the prefetch position the occupancy
// simulation chose for swap-in.
type TensorPlan struct {
	Tensor *graph.Tensor
	Opt    MemOpt
	// EvictAt is the schedule index after which the tensor leaves the
	// device (its last forward use).
	EvictAt int
	// RestoreAt is the schedule index of the first consumer that needs
	// the tensor back (first backward use).
	RestoreAt int
	// PrefetchAt is the schedule index at which the swap-in should be
	// issued so the transfer hides under computation (swap only).
	PrefetchAt int
	// MicroRestore, when non-zero, restores the tensor in that many
	// micro-tensors streamed one at a time into its (split) consumer,
	// so only size/MicroRestore bytes re-occupy the device — the
	// micro-granular swap-in enabled by the split of the consuming
	// operator (paper Sec. III-A).
	MicroRestore int
	// ChainBytes estimates the transient device memory a regeneration
	// of this tensor needs for chain intermediates (recompute only);
	// the memory simulation charges it at every backward consumer.
	ChainBytes int64
}

// OpSplit is the planner's split decision for one operator: the
// (p_num, dim) of the sTensor config applied to the operator's
// activation input and output, plus the memory option applied
// uniformly to the input micro-tensors ("we make consistent memory
// options for the micro-tensors inside a tensor", Sec. IV-C).
type OpSplit struct {
	Op   *graph.Op
	PNum int
	Dim  tensor.SplitDim
	// InOpt is what happens to each input micro-tensor right after the
	// micro-operator consumes it: Swap streams it to host, Recompute
	// drops it (it will be re-produced for the backward pass), Reside
	// keeps it (split then only pipelines the output).
	InOpt MemOpt
	// EarlyOut streams each output micro-tensor to host as soon as it
	// is produced (the paper's "early swapping of output tensors at
	// micro-tensor granularity"), overlapping PCIe with the remaining
	// micro-operators; the device copy is still freed only after its
	// last forward use.
	EarlyOut bool
	// In2 is a second carved activation input (binary operators such
	// as Add and the gradient-accumulation adds), nil otherwise. It
	// receives the same InOpt treatment as the primary input.
	In2 *graph.Tensor
	// MicroIns are swapped-out inputs of this operator (typically the
	// saved activations of a backward op) that are streamed back in at
	// micro-tensor granularity instead of being restored whole; their
	// TensorPlan carries the matching MicroRestore count.
	MicroIns []*graph.Tensor
}

// Plan is a complete memory-management strategy configuration C of
// paper Eq. 1 for one graph/schedule/device triple.
type Plan struct {
	// Name identifies the policy that produced the plan ("tsplit",
	// "vdnn-all", ...).
	Name string
	// Dev is the device the plan was made for.
	Dev device.Device
	// Tensors maps tensor ID to its non-reside decision. Absent means
	// reside.
	Tensors map[int]TensorPlan
	// Splits maps op ID to its split decision. Absent means unsplit.
	Splits map[int]OpSplit

	// OffloadOptimizer moves optimizer state and the parameter update
	// computation to the CPU (ZeRO-Offload): optimizer state never
	// occupies device memory and parameter gradients stream out as
	// produced.
	OffloadOptimizer bool
	// ShardParams keeps parameters in host memory and stages each
	// layer's parameters in and out around their uses
	// (FairScale-Offload).
	ShardParams bool

	// PredictedTime is the planner's estimate of one iteration in
	// seconds (T + ΔT(C)); zero when the producer does not predict.
	PredictedTime float64
	// PredictedPeak is the planner's estimate of peak device memory.
	PredictedPeak int64

	// ChainTransients, when non-nil, adds per-schedule-index transient
	// memory for recompute-chain regenerations to the memory curve.
	// FinalizeWindows derives it for baseline plans, whose deep chains
	// (sqrt(N) checkpointing) the per-tensor ChainBytes point charges
	// cannot bound without double-counting co-consumed chains: the
	// runtime regenerates an op's inputs sequentially and retires each
	// chain's intermediates before starting the next, so the per-index
	// bound is the maximum — not the sum — over that op's restorations.
	ChainTransients []int64
}

// NewPlan returns an empty (all-reside) plan.
func NewPlan(name string, dev device.Device) *Plan {
	return &Plan{
		Name:    name,
		Dev:     dev,
		Tensors: make(map[int]TensorPlan),
		Splits:  make(map[int]OpSplit),
	}
}

// TensorOpt returns the memory option for t (Reside by default).
func (p *Plan) TensorOpt(t *graph.Tensor) MemOpt {
	if tp, ok := p.Tensors[t.ID]; ok {
		return tp.Opt
	}
	return Reside
}

// SplitFor returns the split decision for op, if any.
func (p *Plan) SplitFor(op *graph.Op) (OpSplit, bool) {
	s, ok := p.Splits[op.ID]
	return s, ok
}

// Counts reports how many tensors use each option and how many ops are
// split — the summary Fig. 14(b) style reports use.
type Counts struct {
	Reside, Swap, Recompute, SplitOps int
	SwapBytes, RecomputeBytes         int64
}

// Counts summarizes the plan.
func (p *Plan) Counts() Counts {
	var c Counts
	//lint:allow maporder integer tallies are commutative; no order-dependent state
	for _, tp := range p.Tensors {
		switch tp.Opt {
		case Swap:
			c.Swap++
			c.SwapBytes += tp.Tensor.Bytes()
		case Recompute:
			c.Recompute++
			c.RecomputeBytes += tp.Tensor.Bytes()
		}
	}
	c.SplitOps = len(p.Splits)
	return c
}

// String renders a human-readable plan summary (full dumps come from
// Describe).
func (p *Plan) String() string {
	c := p.Counts()
	return fmt.Sprintf("plan %s on %s: %d swapped (%.1f MiB), %d recomputed (%.1f MiB), %d split ops",
		p.Name, p.Dev.Name, c.Swap, float64(c.SwapBytes)/(1<<20), c.Recompute, float64(c.RecomputeBytes)/(1<<20), c.SplitOps)
}

// Describe renders the full decision list, ordered by tensor ID, for
// plan inspection tooling (cmd/tsplit-plan).
func (p *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintln(&b, p.String())
	ids := make([]int, 0, len(p.Tensors))
	for id := range p.Tensors {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		tp := p.Tensors[id]
		fmt.Fprintf(&b, "  %-9s %-40s %8.1f MiB evict@%d restore@%d prefetch@%d\n",
			tp.Opt, tp.Tensor.Name, float64(tp.Tensor.Bytes())/(1<<20), tp.EvictAt, tp.RestoreAt, tp.PrefetchAt)
	}
	opIDs := make([]int, 0, len(p.Splits))
	for id := range p.Splits {
		opIDs = append(opIDs, id)
	}
	sort.Ints(opIDs)
	for _, id := range opIDs {
		s := p.Splits[id]
		fmt.Fprintf(&b, "  split     %-40s p_num=%d dim=%s in=%s early-out=%v\n",
			s.Op.Name, s.PNum, s.Dim, s.InOpt, s.EarlyOut)
	}
	return b.String()
}
