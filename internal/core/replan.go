package core

import (
	"strconv"

	"tsplit/internal/obs"
)

// Warm replanning (DESIGN.md §7). A completed incremental run keeps a
// journal: per greedy iteration, the chain-refresh results applied
// before the decision, the bottleneck index, and a copy of the winning
// candidate. Replan replays that journal against a pristine reset
// state under the new capacity, iteration by iteration, as long as the
// replayed state's first-over-capacity index coincides with the
// journaled one — an inductive guarantee that a cold Plan() at the new
// options would have walked the identical prefix:
//
//   - The greedy loop is a pure function of (plan, occupancy, curve)
//     state; capacity enters only through the bottleneck position and
//     the termination test.
//   - If the states are identical entering iteration k and the
//     bottleneck indices coincide, the cold run would refresh the same
//     chains (journaled), score the same pool, and pick the same winner
//     (journaled) — so the states are identical entering k+1.
//
// The replay therefore commits journaled decisions without scoring
// anything. It stops in one of three ways:
//
//   - Exhausted: every journaled decision replayed (typical for a
//     tighter capacity) — the greedy loop resumes live from there.
//   - Diverged: the bottleneck moved (the new capacity surfaced a
//     different position first) — replay stops, every committed chain
//     is conservatively marked dirty (the journal applied values
//     without registering dependency sets), and the live loop resumes
//     at the same iteration. Re-derivation reproduces identical values
//     for untouched chains, so the conservative mark cannot change the
//     plan.
//   - Fits: no position is over the new (looser) capacity — the
//     remaining journaled decisions are unnecessary and are simply not
//     applied. This is the rollback semantic: un-needed decisions were
//     never committed rather than being undone.
//
// Because every replayed prefix is exactly what a cold run would have
// committed, Replan is byte-identical to Plan() at the new options
// (TestReplanMatchesColdPlan pins this across the model zoo).

// chainUpdate is one journaled ChainBytes refresh.
type chainUpdate struct {
	id    int32
	bytes int64
}

// journalEntry is one greedy iteration: the chain updates applied
// before the decision (updates[chainLo:chainHi]), the bottleneck, the
// scoring statistics, and the committed candidate.
type journalEntry struct {
	bottleneck int32
	scored     int32
	rederived  int32
	chainLo    int32
	chainHi    int32
	cand       candidate
}

// planJournal records one incremental run. Two instances live on the
// planner (current/previous); their backing arrays are reused across
// runs.
type planJournal struct {
	// valid: recording (no error so far). completed: the run finished
	// successfully — only then is the journal replayable.
	valid     bool
	completed bool
	opts      Options
	entries   []journalEntry
	updates   []chainUpdate
	// pendingLo marks where the not-yet-sealed chain updates of the
	// current iteration start in updates.
	pendingLo int
}

func (j *planJournal) begin(opts Options, recording bool) {
	j.valid = recording
	j.completed = false
	j.opts = opts
	j.entries = j.entries[:0]
	j.updates = j.updates[:0]
	j.pendingLo = 0
}

func (j *planJournal) recordChainUpdate(id int, bytes int64) {
	if !j.valid {
		return
	}
	j.updates = append(j.updates, chainUpdate{int32(id), bytes})
}

// recordDecision seals the pending chain updates and the committed
// candidate into one entry. Call it after applyCandidate: the commit
// re-points split MicroIns at a private copy, which the journal must
// share (the scoring caches reuse the original backing array).
func (j *planJournal) recordDecision(i int, c *candidate, scored, rederived int) {
	if !j.valid {
		return
	}
	j.entries = append(j.entries, journalEntry{
		bottleneck: int32(i),
		scored:     int32(scored),
		rederived:  int32(rederived),
		chainLo:    int32(j.pendingLo),
		chainHi:    int32(len(j.updates)),
		cand:       *c,
	})
	j.pendingLo = len(j.updates)
}

// Replan produces a plan for the new options, warm-starting from the
// previous run when possible. prev must be the plan returned by this
// planner's last successful Plan()/Replan() call; opts may change the
// capacity trio (Capacity, SafetyMargin, FragmentationReserve) freely.
// Any other change — or a different graph, a serial request, a failed
// previous run — falls back to a cold Plan(). Either way the result is
// byte-identical to a cold Plan() at opts.
func (pl *Planner) Replan(prev *Plan, opts Options) (*Plan, error) {
	opts = opts.withDefaults(pl.Dev)
	warm := prev != nil && prev == pl.lastPlan && !opts.Serial &&
		pl.jCur.completed && warmCompatible(pl.jCur.opts, opts)
	pl.Opts = opts
	if rec := opts.Obs; rec != nil {
		mode := "cold"
		if warm {
			mode = "warm"
		}
		rec.Add("tsplit_planner_replans_total", 1, obs.L("mode", mode))
	}
	if !warm {
		pl.Opts.Flight.Record("replan.cold", "no replayable journal")
		return pl.Plan()
	}
	sp := pl.Opts.Trace.StartSpan("planner.replan")
	pl.runSpan = sp
	pl.beginRun()
	iter, btl, done := pl.replay()
	var runErr error
	if !done {
		runErr = pl.greedyIncremental(iter, btl)
	}
	plan, err := pl.finishRun(runErr)
	sp.End()
	pl.runSpan = nil
	return plan, err
}

// replay re-commits the journaled decision prefix that remains valid
// under the new capacity. It returns the iteration and bottleneck the
// live greedy loop must resume from, or done=true when the schedule
// already fits.
func (pl *Planner) replay() (iter, prevBtl int, done bool) {
	sp := pl.runSpan.StartSpan("planner.replay")
	defer sp.End()
	j := &pl.jPrev
	capB := pl.Opts.Capacity
	for k := range j.entries {
		e := &j.entries[k]
		// Re-apply the journaled chain refresh for this iteration. The
		// values are state-determined, so re-applying equals re-walking.
		for _, u := range j.updates[e.chainLo:e.chainHi] {
			tp := pl.plan.Tensors[int(u.id)]
			tp.ChainBytes = u.bytes
			pl.putTensorPlan(int(u.id), tp)
			pl.curve.update(tp.Tensor)
			pl.jCur.recordChainUpdate(int(u.id), u.bytes)
		}
		pl.statRederived += int64(e.rederived)
		if skipped := pl.nRecompute - int(e.rederived); skipped > 0 {
			pl.statSkipped += int64(skipped)
		}
		var peak int64
		if pl.report != nil {
			_, peak, _ = pl.curve.scan()
			if n := len(pl.report.Decisions); n > 0 {
				pl.report.Decisions[n-1].PeakAfter = peak
			} else {
				pl.report.InitialPeakBytes = peak
			}
		}
		i, memAtI, found := pl.curve.bottleneck(capB, prevBtl)
		if !found {
			// Fits already: the remaining journaled decisions are the
			// rolled-back ones — never committed under the new capacity.
			sp.SetAttr("outcome", "fits")
			sp.SetAttrInt("replayed", int64(k))
			sp.SetAttrInt("rolled_back", int64(len(j.entries)-k))
			return k, prevBtl, true
		}
		if i != int(e.bottleneck) {
			// Divergence: from here on the cold run would score a
			// different pool. Hand over to the live loop with every
			// chain conservatively re-derived (the journal carries no
			// dependency sets).
			sp.SetAttr("outcome", "diverged")
			sp.SetAttrInt("replayed", int64(k))
			if fl := pl.Opts.Flight; fl != nil {
				fl.Record("replan.diverge", "bottleneck moved",
					obs.L("iter", strconv.Itoa(k)),
					obs.L("journaled", strconv.Itoa(int(e.bottleneck))),
					obs.L("actual", strconv.Itoa(i)))
			}
			pl.markAllChainsDirty()
			return k, i, false
		}
		pl.statIters++
		pl.statCands += int64(e.scored)
		pl.statReplayed++
		c := e.cand
		if pl.report != nil {
			pl.report.Decisions = append(pl.report.Decisions,
				pl.decisionRecord(k, i, memAtI-capB, peak, int(e.scored), int(e.rederived), &c))
		}
		delta := pl.applyCandidate(&c)
		pl.jCur.recordDecision(i, &c, int(e.scored), int(e.rederived))
		pl.noteChanges(delta)
		pl.recordDecisionEvent(k, i, &c)
		pl.extraTime += c.deltaT
		prevBtl = i
	}
	// Journal exhausted (typical under a tighter capacity): resume the
	// live greedy loop where the previous run stopped.
	sp.SetAttr("outcome", "exhausted")
	sp.SetAttrInt("replayed", int64(len(j.entries)))
	pl.markAllChainsDirty()
	return len(j.entries), prevBtl, false
}
