package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"tsplit/internal/device"
	"tsplit/internal/graph"
	"tsplit/internal/models"
	"tsplit/internal/profiler"
	"tsplit/internal/tensor"
	"tsplit/internal/workload"
)

// planUnderPressure plans the testbed's model against a budget tight
// enough to force real swap/recompute/split decisions, and returns the
// plan plus the ceiling it was planned for.
func planUnderPressure(t *testing.T, tb *testbed) (*Plan, int64) {
	t.Helper()
	cap := tb.lv.Peak * 6 / 10
	p := tb.plan(t, Options{Capacity: cap})
	return p, cap
}

func mustVerifyClean(t *testing.T, tb *testbed, p *Plan, capacity int64) {
	t.Helper()
	for _, v := range VerifyAt(p, tb.g, tb.sched, tb.lv, capacity) {
		t.Errorf("unexpected violation: %s", v)
	}
}

func TestVerifyPlannerPlanIsClean(t *testing.T) {
	for _, model := range []string{"vgg16", "resnet50"} {
		t.Run(model, func(t *testing.T) {
			tb := newTestbed(t, model, models.Config{BatchSize: 16})
			p, cap := planUnderPressure(t, tb)
			if c := p.Counts(); c.Swap+c.Recompute == 0 {
				t.Fatalf("pressure plan made no decisions; tighten the budget")
			}
			mustVerifyClean(t, tb, p, cap)
		})
	}
}

func TestVerifyBaselinePlansAreClean(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 16})
	// The all-reside plan is trivially safe at unlimited capacity.
	mustVerifyClean(t, tb, NewPlan("base", tb.dev), 0)
	// And FinalizeWindows-produced swap windows must satisfy the same
	// invariants the planner's do.
	p := NewPlan("vdnn-style", tb.dev)
	for _, tn := range tb.g.Tensors {
		if tn.Kind == tensor.FeatureMap && len(tn.Consumers) >= 2 && tn.Bytes() > 1<<20 {
			p.Tensors[tn.ID] = TensorPlan{Tensor: tn, Opt: Swap}
		}
	}
	FinalizeWindows(tb.g, tb.sched, tb.lv, tb.prof, p)
	mustVerifyClean(t, tb, p, 0)
}

// requireViolation asserts that at least one violation of the named
// invariant is reported, and that no *other* invariant fires unless
// allowed — mutations should trip exactly the checks they break.
func requireViolation(t *testing.T, vs []Violation, invariant string, allowOthers ...string) {
	t.Helper()
	found := false
	allowed := map[string]bool{invariant: true}
	for _, a := range allowOthers {
		allowed[a] = true
	}
	for _, v := range vs {
		if v.Invariant == invariant {
			found = true
		}
		if !allowed[v.Invariant] {
			t.Errorf("unexpected %s violation: %s", v.Invariant, v)
		}
	}
	if !found {
		t.Fatalf("expected a %q violation, got %v", invariant, vs)
	}
}

// firstSwap returns the ID of the first whole-restored swap decision.
func firstSwap(p *Plan) (int, bool) {
	best, ok := -1, false
	for id, tp := range p.Tensors {
		if tp.Opt == Swap && tp.MicroRestore <= 1 && tp.RestoreAt >= 0 && (!ok || id < best) {
			best, ok = id, true
		}
	}
	return best, ok
}

func TestVerifyCapacityViolation(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 8})
	ms := NewMemSim(tb.g, tb.sched, tb.lv)
	base := NewPlan("base", tb.dev)
	_, peak, _ := ms.Curve(base)
	requireViolation(t, VerifyAt(base, tb.g, tb.sched, tb.lv, peak-1), "capacity")
	mustVerifyClean(t, tb, base, peak)
}

func TestVerifyRestoreBeforeUseViolation(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 16})
	p, cap := planUnderPressure(t, tb)
	id, ok := firstSwap(p)
	if !ok {
		t.Fatal("pressure plan has no swap decision to mutate")
	}
	tp := p.Tensors[id]
	tp.RestoreAt = tp.EvictAt // restored exactly when evicted: never legal
	p.Tensors[id] = tp
	requireViolation(t, VerifyAt(p, tb.g, tb.sched, tb.lv, cap), "restore-before-use",
		// Collapsing the window can also starve a recompute chain that
		// relied on the tensor being back by its old RestoreAt.
		"recompute-chain")
}

func TestVerifyConsumerInEvictionGap(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 8})
	// Evict a multi-consumer tensor right at production and only restore
	// at its last use: every intermediate consumer sits in the gap.
	var victim *graph.Tensor
	for _, tn := range tb.g.Tensors {
		if tn.Kind != tensor.FeatureMap || tn.Producer == nil {
			continue
		}
		mid := 0
		first, last := tb.lv.FirstUse[tn], tb.lv.LastUse[tn]
		for _, c := range tn.Consumers {
			if u := tb.sched.Index[c]; u > first && u < last {
				mid++
			}
		}
		if mid > 0 {
			victim = tn
			break
		}
	}
	if victim == nil {
		t.Fatal("no tensor with an intermediate consumer")
	}
	p := NewPlan("mutated", tb.dev)
	p.Tensors[victim.ID] = TensorPlan{
		Tensor: victim, Opt: Swap,
		EvictAt:    tb.lv.FirstUse[victim],
		RestoreAt:  tb.lv.LastUse[victim],
		PrefetchAt: tb.lv.LastUse[victim],
	}
	vs := VerifyAt(p, tb.g, tb.sched, tb.lv, 0)
	requireViolation(t, vs, "restore-before-use")
	for _, v := range vs {
		if !strings.Contains(v.Detail, "eviction gap") {
			t.Errorf("want an eviction-gap detail, got %s", v)
		}
	}
}

func TestVerifyPrefetchWindowViolation(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 16})
	p, cap := planUnderPressure(t, tb)
	id, ok := firstSwap(p)
	if !ok {
		t.Fatal("pressure plan has no swap decision to mutate")
	}
	tp := p.Tensors[id]
	tp.PrefetchAt = tp.EvictAt // prefetch issued while still evicting
	p.Tensors[id] = tp
	requireViolation(t, VerifyAt(p, tb.g, tb.sched, tb.lv, cap), "restore-before-use")
}

func TestVerifySplitBalanceViolations(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 16})
	p, cap := planUnderPressure(t, tb)

	t.Run("orphan micro-restore", func(t *testing.T) {
		mut := clonePlan(p)
		id, ok := firstSwap(mut)
		if !ok {
			t.Fatal("no swap decision to mutate")
		}
		tp := mut.Tensors[id]
		tp.MicroRestore = 4 // no split consumer claims it
		mut.Tensors[id] = tp
		requireViolation(t, VerifyAt(mut, tb.g, tb.sched, tb.lv, cap), "split-balance",
			// Fraction-resident accounting shifts the curve too.
			"capacity", "recompute-chain")
	})

	if len(p.Splits) == 0 {
		t.Skip("pressure plan made no split decisions")
	}
	t.Run("degenerate p_num", func(t *testing.T) {
		mut := clonePlan(p)
		opID := -1
		for id := range mut.Splits {
			if opID == -1 || id < opID {
				opID = id
			}
		}
		sp := mut.Splits[opID]
		sp.PNum = 1
		mut.Splits[opID] = sp
		requireViolation(t, VerifyAt(mut, tb.g, tb.sched, tb.lv, cap), "split-balance",
			"capacity")
	})
}

func TestVerifyRecomputeChainViolation(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 8})
	// Mark a graph input as recompute: it has no producer, so the chain
	// cannot bottom out.
	var input *graph.Tensor
	for _, tn := range tb.g.Tensors {
		if tn.Kind == tensor.Input && tn.Producer == nil && len(tn.Consumers) > 0 {
			input = tn
			break
		}
	}
	if input == nil {
		t.Fatal("model has no staged input tensor")
	}
	p := NewPlan("mutated", tb.dev)
	last := tb.lv.LastUse[input]
	p.Tensors[input.ID] = TensorPlan{Tensor: input, Opt: Recompute, EvictAt: 0, RestoreAt: last}
	requireViolation(t, VerifyAt(p, tb.g, tb.sched, tb.lv, 0), "recompute-chain",
		"restore-before-use")
}

func TestVerifyPoolOffsetsViolation(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 16})
	p, cap := planUnderPressure(t, tb)
	id, ok := firstSwap(p)
	if !ok {
		t.Fatal("pressure plan has no swap decision to mutate")
	}
	tp := p.Tensors[id]
	tp.EvictAt = len(tb.sched.Ops) // residency span runs off the schedule
	p.Tensors[id] = tp
	requireViolation(t, VerifyAt(p, tb.g, tb.sched, tb.lv, cap), "pool-offsets",
		"restore-before-use", "capacity", "recompute-chain")
}

// clonePlan copies a plan shallowly but with fresh decision maps, so a
// test can mutate one decision without disturbing the original.
func clonePlan(p *Plan) *Plan {
	c := *p
	c.Tensors = make(map[int]TensorPlan, len(p.Tensors))
	//lint:allow maporder copying map to map; destination order is irrelevant
	for id, tp := range p.Tensors {
		c.Tensors[id] = tp
	}
	c.Splits = make(map[int]OpSplit, len(p.Splits))
	//lint:allow maporder copying map to map; destination order is irrelevant
	for id, sp := range p.Splits {
		c.Splits[id] = sp
	}
	return &c
}

func TestVerifyRecomputeCycleViolation(t *testing.T) {
	// A hand-built cyclic graph (impossible from the model builders,
	// whose graphs are DAGs): a and b each claim the other as producer
	// input, and both are marked recompute. BuildSchedule would reject
	// the cycle, so the schedule and liveness are assembled by hand —
	// the verifier must refuse the chain rather than recurse forever.
	g := &graph.Graph{}
	ta := g.NewTensor("a", tensor.Shape{4, 4}, tensor.Float32, tensor.FeatureMap)
	tb := g.NewTensor("b", tensor.Shape{4, 4}, tensor.Float32, tensor.FeatureMap)
	opA := g.NewOp("makeA", graph.ReLU, graph.Forward, []*graph.Tensor{tb}, []*graph.Tensor{ta}, graph.Attrs{})
	opB := g.NewOp("makeB", graph.ReLU, graph.Forward, []*graph.Tensor{ta}, []*graph.Tensor{tb}, graph.Attrs{})
	sched := &graph.Schedule{
		Ops:   []*graph.Op{opA, opB},
		Index: map[*graph.Op]int{opA: 0, opB: 1},
	}
	lv := &graph.Liveness{
		Sched:    sched,
		FirstUse: map[*graph.Tensor]int{ta: 0, tb: 1},
		LastUse:  map[*graph.Tensor]int{ta: 1, tb: 1},
	}
	p := NewPlan("cyclic", device.TitanRTX)
	p.Tensors[ta.ID] = TensorPlan{Tensor: ta, Opt: Recompute, EvictAt: 0, RestoreAt: 1}
	p.Tensors[tb.ID] = TensorPlan{Tensor: tb, Opt: Recompute, EvictAt: 1, RestoreAt: -1}
	vs := VerifyAt(p, g, sched, lv, 0)
	requireViolation(t, vs, "recompute-chain")
	found := false
	for _, v := range vs {
		if strings.Contains(v.Detail, "cycle") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a cycle detail, got %v", vs)
	}
}

// FuzzVerifyPlan drives the planner over fuzzed (model, batch, budget)
// configurations: every plan the planner emits must verify clean, and
// a deterministic plan mutation must always trip at least one
// violation. The seed corpus runs under plain `go test`.
func FuzzVerifyPlan(f *testing.F) {
	f.Add(uint8(0), uint8(3), uint8(20), uint8(0))
	f.Add(uint8(1), uint8(7), uint8(5), uint8(1))
	f.Add(uint8(0), uint8(15), uint8(40), uint8(2))
	f.Add(uint8(1), uint8(11), uint8(0), uint8(3))
	// Selector 2 routes to the randomized workload generator.
	f.Add(uint8(2), uint8(42), uint8(30), uint8(0))
	f.Add(uint8(2), uint8(111), uint8(55), uint8(2))
	f.Add(uint8(5), uint8(9), uint8(12), uint8(3))
	f.Fuzz(func(t *testing.T, modelSel, batchSel, capSel, mutSel uint8) {
		var tb *testbed
		if int(modelSel)%3 == 2 {
			// Randomly generated DAG: (batchSel, capSel) seed the
			// generator so the fuzzer explores topology space too.
			tb = fuzzRandTestbed(t, uint64(batchSel)<<8|uint64(capSel))
		} else {
			zoo := []string{"vgg16", "resnet50"}
			tb = fuzzTestbed(t, zoo[int(modelSel)%2], 1+int(batchSel)%16)
		}
		// Budget between 40% and 99% of the unmanaged peak above the
		// resident floor: tight enough to force decisions, loose enough
		// to usually be feasible.
		var floor int64
		for _, tn := range tb.g.Tensors {
			if tn.Producer == nil {
				floor += tn.Bytes()
			}
		}
		capacity := floor + (tb.lv.Peak-floor)*int64(40+int(capSel)%60)/100
		opts := Options{Capacity: capacity}
		if int(modelSel)%3 == 2 {
			// Generated graphs are MiB-scale; the default 256 MiB
			// fragmentation reserve would swallow the whole budget.
			opts.FragmentationReserve = -1
		}
		plan, err := NewPlanner(tb.g, tb.sched, tb.lv, tb.prof, tb.dev, opts).Plan()
		if err != nil {
			t.Skip("infeasible budget")
		}
		if vs := VerifyAt(plan, tb.g, tb.sched, tb.lv, capacity); len(vs) != 0 {
			t.Fatalf("planner plan violates its own invariants: %v", vs)
		}

		mut := clonePlan(plan)
		switch mutSel % 4 {
		case 0: // collapse a swap window
			id, ok := firstSwap(mut)
			if !ok {
				t.Skip("no swap decision to mutate")
			}
			tp := mut.Tensors[id]
			tp.RestoreAt = tp.EvictAt
			mut.Tensors[id] = tp
		case 1: // prefetch outside the eviction window
			id, ok := firstSwap(mut)
			if !ok {
				t.Skip("no swap decision to mutate")
			}
			tp := mut.Tensors[id]
			tp.PrefetchAt = tp.EvictAt
			mut.Tensors[id] = tp
		case 2: // shrink the ceiling below the plan's real peak
			ms := NewMemSim(tb.g, tb.sched, tb.lv)
			_, peak, _ := ms.Curve(mut)
			capacity = peak - 1
		case 3: // orphan micro-restore
			id, ok := firstSwap(mut)
			if !ok {
				t.Skip("no swap decision to mutate")
			}
			tp := mut.Tensors[id]
			tp.MicroRestore = 7
			mut.Tensors[id] = tp
		}
		if vs := VerifyAt(mut, tb.g, tb.sched, tb.lv, capacity); len(vs) == 0 {
			t.Fatalf("mutation %d produced no violation", mutSel%4)
		}
	})
}

var (
	fuzzTestbeds = map[string]*testbed{}
	fuzzMu       sync.Mutex
)

// fuzzTestbed caches (model, batch) testbeds across fuzz iterations —
// graph building and profiling dominate otherwise.
func fuzzTestbed(t *testing.T, model string, batch int) *testbed {
	fuzzMu.Lock()
	defer fuzzMu.Unlock()
	key := fmt.Sprintf("%s/%d", model, batch)
	if tb, ok := fuzzTestbeds[key]; ok {
		return tb
	}
	g, err := models.Build(model, models.Config{BatchSize: batch})
	if err != nil {
		t.Fatalf("build %s: %v", key, err)
	}
	sched, err := graph.BuildSchedule(g)
	if err != nil {
		t.Fatalf("schedule %s: %v", key, err)
	}
	lv := graph.AnalyzeLiveness(g, sched)
	tb := &testbed{g: g, sched: sched, lv: lv, prof: profiler.New(device.TitanRTX, sched), dev: device.TitanRTX}
	fuzzTestbeds[key] = tb
	return tb
}

// fuzzRandTestbed caches testbeds for generated graphs by seed.
func fuzzRandTestbed(t *testing.T, seed uint64) *testbed {
	fuzzMu.Lock()
	defer fuzzMu.Unlock()
	key := fmt.Sprintf("rand/%d", seed)
	if tb, ok := fuzzTestbeds[key]; ok {
		return tb
	}
	g := workload.RandGraph(seed)
	sched, err := graph.BuildSchedule(g)
	if err != nil {
		t.Fatalf("schedule %s: %v", key, err)
	}
	lv := graph.AnalyzeLiveness(g, sched)
	tb := &testbed{g: g, sched: sched, lv: lv, prof: profiler.New(device.TitanRTX, sched), dev: device.TitanRTX}
	fuzzTestbeds[key] = tb
	return tb
}

func TestVerifyViolationsSortedAndStringy(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 8})
	ms := NewMemSim(tb.g, tb.sched, tb.lv)
	base := NewPlan("base", tb.dev)
	_, peak, _ := ms.Curve(base)
	vs := VerifyAt(base, tb.g, tb.sched, tb.lv, peak-1)
	if len(vs) == 0 {
		t.Fatal("expected violations")
	}
	for i := 1; i < len(vs); i++ {
		a, b := vs[i-1], vs[i]
		if a.Invariant > b.Invariant || (a.Invariant == b.Invariant && a.Subject > b.Subject) {
			t.Fatalf("violations not sorted: %v before %v", a, b)
		}
	}
	if s := vs[0].String(); !strings.Contains(s, "capacity(") {
		t.Fatalf("String() = %q, want invariant(subject): detail form", s)
	}
}
