package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tsplit/internal/models"
)

func TestExportJSONRoundTrips(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 64})
	plan := tb.plan(t, Options{Capacity: tb.lv.Peak * 60 / 100, FragmentationReserve: -1})
	var buf bytes.Buffer
	if err := ExportJSON(&buf, plan); err != nil {
		t.Fatal(err)
	}
	var back PlanJSON
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if back.Policy != "tsplit" || back.Device != "TITAN RTX" {
		t.Fatalf("header wrong: %+v", back)
	}
	if len(back.Tensors) != len(plan.Tensors) {
		t.Fatalf("serialized %d tensors of %d", len(back.Tensors), len(plan.Tensors))
	}
	for _, tp := range back.Tensors {
		if tp.Opt != "swap" && tp.Opt != "recompute" {
			t.Fatalf("unexpected opt %q", tp.Opt)
		}
		if tp.Bytes <= 0 {
			t.Fatalf("tensor %s has no size", tp.Tensor)
		}
	}
}

func TestExportJSONDeterministic(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 64})
	plan := tb.plan(t, Options{Capacity: tb.lv.Peak * 60 / 100, FragmentationReserve: -1})
	var a, b bytes.Buffer
	if err := ExportJSON(&a, plan); err != nil {
		t.Fatal(err)
	}
	if err := ExportJSON(&b, plan); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("export is not deterministic")
	}
}

func TestAugmentedDOT(t *testing.T) {
	_, _, ag := augment(t, "vgg16", models.Config{BatchSize: 64}, 60)
	var buf bytes.Buffer
	if err := ag.DOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "digraph tsplit {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatal("not a DOT document")
	}
	if !strings.Contains(out, "indianred1") || !strings.Contains(out, "palegreen") {
		t.Fatal("memory operators not rendered")
	}
	if !strings.Contains(out, "style=dashed") {
		t.Fatal("control edges not rendered")
	}
}
