package core

import (
	"testing"

	"tsplit/internal/models"
)

// TestPlannerPoolReuseIdentical checks the pool's core contract: a
// recycled planner produces byte-identical plans to a fresh one, and
// Put severs journal state so a pooled planner never warm-starts from
// another borrower's run.
func TestPlannerPoolReuseIdentical(t *testing.T) {
	tb := newTestbed(t, "resnet50", models.Config{BatchSize: 32})
	_, peak, _ := NewMemSim(tb.g, tb.sched, tb.lv).Curve(NewPlan("none", tb.dev))
	opts := Options{Capacity: peak * 70 / 100, FragmentationReserve: -1}

	pp := NewPlannerPool(tb.g, tb.sched, tb.lv, tb.prof, tb.dev)
	fresh, err := NewPlanner(tb.g, tb.sched, tb.lv, tb.prof, tb.dev, opts).Plan()
	if err != nil {
		t.Fatalf("fresh plan: %v", err)
	}
	want := fresh.Describe()

	var last *Planner
	for round := 0; round < 4; round++ {
		pl := pp.Get(opts)
		if round > 0 && pl != last {
			t.Fatalf("round %d: pool did not recycle the planner", round)
		}
		plan, err := pl.Plan()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got := plan.Describe(); got != want {
			t.Errorf("round %d: pooled plan diverged from fresh plan\n--- pooled ---\n%s--- fresh ---\n%s", round, got, want)
		}
		last = pl
		pp.Put(pl)
		if pp.Size() != 1 {
			t.Fatalf("round %d: pool size %d, want 1", round, pp.Size())
		}
	}

	// Put must sever the journal: a Replan right after Get cannot
	// warm-start from the previous borrower's plan.
	pl := pp.Get(opts)
	plan, err := pl.Replan(fresh, opts)
	if err != nil {
		t.Fatalf("replan after pool cycle: %v", err)
	}
	if got := plan.Describe(); got != want {
		t.Errorf("replan after pool cycle diverged:\n%s", got)
	}
}

// TestPlannerPoolDropsForeign checks that planners built for another
// workload are dropped instead of pooled.
func TestPlannerPoolDropsForeign(t *testing.T) {
	a := newTestbed(t, "vgg16", models.Config{BatchSize: 8})
	b := newTestbed(t, "resnet50", models.Config{BatchSize: 8})
	pp := NewPlannerPool(a.g, a.sched, a.lv, a.prof, a.dev)

	pp.Put(NewPlanner(b.g, b.sched, b.lv, b.prof, b.dev, Options{}))
	if pp.Size() != 0 {
		t.Fatalf("pool accepted a foreign planner (size %d)", pp.Size())
	}
	pp.Put(nil)
	if pp.Size() != 0 {
		t.Fatalf("pool accepted nil (size %d)", pp.Size())
	}
	pp.Put(NewPlanner(a.g, a.sched, a.lv, a.prof, a.dev, Options{}))
	if pp.Size() != 1 {
		t.Fatalf("pool rejected its own planner (size %d)", pp.Size())
	}
}

// TestPlannerPoolSteadyStateAllocs pins the arena-reuse goal: after
// the first run warms the pool, a pooled Plan() call stays under 100
// allocations (the ISSUE budget; the seed planner spent 7,387 on
// BERT-Large).
func TestPlannerPoolSteadyStateAllocs(t *testing.T) {
	tb := newTestbed(t, "bert-large", models.Config{BatchSize: 8})
	_, peak, _ := NewMemSim(tb.g, tb.sched, tb.lv).Curve(NewPlan("none", tb.dev))
	opts := Options{Capacity: peak * 60 / 100, FragmentationReserve: -1}

	pp := NewPlannerPool(tb.g, tb.sched, tb.lv, tb.prof, tb.dev)
	pl := pp.Get(opts)
	if _, err := pl.Plan(); err != nil {
		t.Fatalf("warm-up plan: %v", err)
	}
	pp.Put(pl)

	allocs := testing.AllocsPerRun(10, func() {
		pl := pp.Get(opts)
		if _, err := pl.Plan(); err != nil {
			t.Fatalf("pooled plan: %v", err)
		}
		pp.Put(pl)
	})
	if allocs > 100 {
		t.Errorf("steady-state pooled Plan() allocates %.0f times, want <= 100", allocs)
	}
	t.Logf("steady-state pooled Plan(): %.0f allocs", allocs)
}
