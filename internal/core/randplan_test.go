package core

import (
	"testing"

	"tsplit/internal/device"
	"tsplit/internal/graph"
	"tsplit/internal/profiler"
	"tsplit/internal/workload"
)

// TestPlanRandomGraphsVerifyClean is the planner's property test: over
// 200 randomly generated training graphs (linear/branchy/diamond
// topologies, varied tensor sizes) at a tight budget, every plan the
// planner produces must pass the static invariant verifier with zero
// violations. Infeasible budgets may fail to plan — that is a
// legitimate outcome — but a plan that comes back must be safe.
func TestPlanRandomGraphsVerifyClean(t *testing.T) {
	feasible := 0
	for seed := uint64(0); seed < 200; seed++ {
		g := workload.RandGraph(seed)
		sched, err := graph.BuildSchedule(g)
		if err != nil {
			t.Fatalf("seed %d: schedule: %v", seed, err)
		}
		lv := graph.AnalyzeLiveness(g, sched)
		// Small graphs are parameter-dominated; squeeze the manageable
		// region (activations) rather than the resident floor, which no
		// planning decision can move.
		var floor int64
		for _, tn := range g.Tensors {
			if tn.Producer == nil {
				floor += tn.Bytes()
			}
		}
		budget := floor + (lv.Peak-floor)*65/100
		pl := NewPlanner(g, sched, lv, profiler.New(device.TitanRTX, sched), device.TitanRTX, Options{
			Capacity: budget,
			// These graphs are MiB-scale; the default 256 MiB reserve
			// would swallow the whole budget.
			FragmentationReserve: -1,
		})
		plan, err := pl.Plan()
		if err != nil {
			continue
		}
		feasible++
		for _, v := range VerifyAt(plan, g, sched, lv, budget) {
			t.Errorf("seed %d: %s", seed, v)
		}
	}
	// The property is vacuous if the budget is so tight nothing plans.
	if feasible < 100 {
		t.Fatalf("only %d/200 random graphs were plannable; generator or budget drifted", feasible)
	}
}
