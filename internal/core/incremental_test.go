package core

import (
	"math/rand"
	"reflect"
	"testing"

	"tsplit/internal/graph"
	"tsplit/internal/models"
	"tsplit/internal/tensor"
)

// TestIncrementalCurveMatchesFullRebuild drives a memCurve through a
// long random sequence of eviction, split, and chain-estimate
// decisions and checks after every step that its live delta array
// scans to exactly the curve MemSim.Curve rebuilds from scratch. All
// curve arithmetic is int64, so equality is exact, not approximate.
func TestIncrementalCurveMatchesFullRebuild(t *testing.T) {
	for _, model := range []string{"vgg16", "bert-large"} {
		tb := newTestbed(t, model, models.Config{BatchSize: 8})
		ms := NewMemSim(tb.g, tb.sched, tb.lv)
		plan := NewPlan("prop", tb.dev)
		maxID := 0
		for _, x := range tb.g.Tensors {
			if x.ID > maxID {
				maxID = x.ID
			}
		}
		curve := newMemCurve(ms, plan, maxID)
		rng := rand.New(rand.NewSource(42))

		check := func(step int) {
			t.Helper()
			wantMem, wantPeak, _ := ms.Curve(plan)
			gotMem, gotPeak, _ := curve.scan()
			if gotPeak != wantPeak {
				t.Fatalf("%s step %d: peak %d != full rebuild %d", model, step, gotPeak, wantPeak)
			}
			for i := range wantMem {
				if gotMem[i] != wantMem[i] {
					t.Fatalf("%s step %d: mem[%d] %d != full rebuild %d", model, step, i, gotMem[i], wantMem[i])
				}
			}
		}
		check(-1)

		randomUse := func(x *graph.Tensor) (int, bool) {
			us := uses(x, tb.sched)
			if len(us) == 0 {
				return 0, false
			}
			return us[rng.Intn(len(us))], true
		}
		for step := 0; step < 400; step++ {
			switch rng.Intn(5) {
			case 0, 1: // evict a random unplanned tensor
				x := tb.g.Tensors[rng.Intn(len(tb.g.Tensors))]
				if _, planned := plan.Tensors[x.ID]; planned || !x.Kind.Evictable() {
					continue
				}
				r, ok := randomUse(x)
				if !ok {
					continue
				}
				opt := Swap
				if rng.Intn(2) == 0 {
					opt = Recompute
				}
				tp := TensorPlan{Tensor: x, Opt: opt, EvictAt: tb.lv.FirstUse[x], RestoreAt: r, PrefetchAt: r}
				if opt == Swap && rng.Intn(2) == 0 && r > 0 {
					tp.PrefetchAt = rng.Intn(r)
				}
				if tp.EvictAt < 0 {
					tp.EvictAt = 0
				}
				plan.Tensors[x.ID] = tp
				curve.update(x)
			case 2: // perturb a chain estimate or micro-restore factor
				for id, tp := range plan.Tensors {
					if tp.Opt == Recompute {
						tp.ChainBytes = int64(rng.Intn(1 << 20))
					} else {
						tp.MicroRestore = []int{0, 2, 4}[rng.Intn(3)]
					}
					plan.Tensors[id] = tp
					curve.update(tp.Tensor)
					break
				}
			case 3: // split a random op
				op := tb.sched.Ops[rng.Intn(len(tb.sched.Ops))]
				dim := tensor.DimSample
				if rng.Intn(4) == 0 {
					dim = tensor.DimParam
				}
				if in, out := SplitTensors(op, dim); in == nil || out == nil {
					continue
				}
				plan.Splits[op.ID] = OpSplit{Op: op, PNum: []int{2, 4, 8}[rng.Intn(3)], Dim: dim, InOpt: []MemOpt{Reside, Swap, Recompute}[rng.Intn(3)]}
				curve.setAdj(tb.sched.Index[op], ms.opFootprintAdjustment(op, plan))
			case 4: // revert a random decision
				for id, tp := range plan.Tensors {
					delete(plan.Tensors, id)
					curve.update(tp.Tensor)
					break
				}
			}
			check(step)
		}
	}
}

// TestBottleneckResumeMatchesFullScan pins the resumable
// first-over-capacity search against the oracle: a front-to-back scan
// of the from-scratch curve. The search resumes from
// min(prevBottleneck, minInc) and skips whole blocks via the rawMax
// upper bound; both shortcuts must be invisible — same index, same
// value, same found/not-found — through an arbitrary random decision
// walk, including edits that raise memory at positions the resume
// point has already passed (tracked by minInc) and stale rawMax
// bounds left by subtractions.
func TestBottleneckResumeMatchesFullScan(t *testing.T) {
	for _, model := range []string{"vgg16", "bert-large"} {
		for _, capPct := range []int64{55, 75} {
			tb := newTestbed(t, model, models.Config{BatchSize: 8})
			ms := NewMemSim(tb.g, tb.sched, tb.lv)
			plan := NewPlan("prop", tb.dev)
			maxID := 0
			for _, x := range tb.g.Tensors {
				if x.ID > maxID {
					maxID = x.ID
				}
			}
			curve := newMemCurve(ms, plan, maxID)
			_, basePeak, _ := ms.Curve(plan)
			cap := basePeak * capPct / 100
			rng := rand.New(rand.NewSource(7))

			prevBtl := 0
			check := func(step int) {
				t.Helper()
				mem, _, _ := ms.Curve(plan)
				wantI, wantFound := 0, false
				var wantMem int64
				for u, v := range mem {
					if v > cap {
						wantI, wantMem, wantFound = u, v, true
						break
					}
				}
				gotI, gotMem, gotFound := curve.bottleneck(cap, prevBtl)
				if gotFound != wantFound || gotI != wantI || gotMem != wantMem {
					t.Fatalf("%s cap=%d%% step %d: bottleneck (%d, %d, %v) != full scan (%d, %d, %v)",
						model, capPct, step, gotI, gotMem, gotFound, wantI, wantMem, wantFound)
				}
				if gotFound {
					prevBtl = gotI
				}
			}
			check(-1)

			for step := 0; step < 300; step++ {
				switch rng.Intn(4) {
				case 0, 1: // evict a random unplanned tensor
					x := tb.g.Tensors[rng.Intn(len(tb.g.Tensors))]
					if _, planned := plan.Tensors[x.ID]; planned || !x.Kind.Evictable() {
						continue
					}
					us := uses(x, tb.sched)
					if len(us) == 0 {
						continue
					}
					r := us[rng.Intn(len(us))]
					opt := Swap
					if rng.Intn(2) == 0 {
						opt = Recompute
					}
					tp := TensorPlan{Tensor: x, Opt: opt, EvictAt: tb.lv.FirstUse[x], RestoreAt: r, PrefetchAt: r}
					if tp.EvictAt < 0 {
						tp.EvictAt = 0
					}
					plan.Tensors[x.ID] = tp
					curve.update(x)
				case 2: // split a random op
					op := tb.sched.Ops[rng.Intn(len(tb.sched.Ops))]
					if in, out := SplitTensors(op, tensor.DimSample); in == nil || out == nil {
						continue
					}
					plan.Splits[op.ID] = OpSplit{Op: op, PNum: []int{2, 4}[rng.Intn(2)], Dim: tensor.DimSample, InOpt: Reside}
					curve.setAdj(tb.sched.Index[op], ms.opFootprintAdjustment(op, plan))
				case 3: // revert a random decision (memory increases again)
					for id, tp := range plan.Tensors {
						delete(plan.Tensors, id)
						curve.update(tp.Tensor)
						break
					}
				}
				check(step)
			}
		}
	}
}

// TestOptionsWithDefaultsIdempotent guards the double-application
// hazard: withDefaults used to subtract the FragmentationReserve from
// the capacity on every call, so any path that defaulted an
// already-defaulted Options value silently shrank the budget.
func TestOptionsWithDefaultsIdempotent(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 8})
	once := Options{}.withDefaults(tb.dev)
	twice := once.withDefaults(tb.dev)
	// Func fields (Clock) are never DeepEqual; compare everything else.
	once.Clock, twice.Clock = nil, nil
	if !reflect.DeepEqual(once, twice) {
		t.Fatalf("withDefaults is not idempotent:\nonce:  %+v\ntwice: %+v", once, twice)
	}
	if twice.Capacity != once.Capacity {
		t.Fatalf("capacity shrank on second defaulting: %d -> %d", once.Capacity, twice.Capacity)
	}
	// NewPlanner defaults internally; passing it a pre-defaulted
	// Options (as the experiment drivers do when they share one
	// Options value across retries) must not change the budget.
	pl := NewPlanner(tb.g, tb.sched, tb.lv, tb.prof, tb.dev, once)
	if pl.Opts.Capacity != once.Capacity {
		t.Fatalf("NewPlanner re-applied the fragmentation reserve: %d -> %d", once.Capacity, pl.Opts.Capacity)
	}
}

// TestDirtyChainRefreshMatchesFull plans a real workload on the
// incremental path, then re-derives every recompute chain with the
// serial full refresh and checks no estimate changes — i.e. the dirty
// tracker never skipped a chain whose dependencies had changed.
func TestDirtyChainRefreshMatchesFull(t *testing.T) {
	tb := newTestbed(t, "bert-large", models.Config{BatchSize: 8})
	capacity := tb.lv.Peak * 55 / 100
	pl := NewPlanner(tb.g, tb.sched, tb.lv, tb.prof, tb.dev, Options{Capacity: capacity, FragmentationReserve: -1})
	plan, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	before := make(map[int]int64)
	for id, tp := range plan.Tensors {
		if tp.Opt == Recompute {
			before[id] = tp.ChainBytes
		}
	}
	if len(before) == 0 {
		t.Skip("plan contains no recompute decisions")
	}
	pl.refreshChains()
	for id, want := range before {
		if got := plan.Tensors[id].ChainBytes; got != want {
			t.Errorf("tensor %d: stale chain estimate %d, full refresh gives %d", id, want, got)
		}
	}
}
