package core

import (
	"errors"
	"testing"

	"tsplit/internal/device"
	"tsplit/internal/graph"
	"tsplit/internal/models"
	"tsplit/internal/profiler"
	"tsplit/internal/tensor"
)

// testbed prepares a model for planner tests.
type testbed struct {
	g     *graph.Graph
	sched *graph.Schedule
	lv    *graph.Liveness
	prof  *profiler.Profile
	dev   device.Device
}

func newTestbed(t *testing.T, model string, cfg models.Config) *testbed {
	t.Helper()
	g, err := models.Build(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := graph.BuildSchedule(g)
	if err != nil {
		t.Fatal(err)
	}
	lv := graph.AnalyzeLiveness(g, sched)
	return &testbed{g: g, sched: sched, lv: lv, prof: profiler.New(device.TitanRTX, sched), dev: device.TitanRTX}
}

func (tb *testbed) plan(t *testing.T, opts Options) *Plan {
	t.Helper()
	p, err := NewPlanner(tb.g, tb.sched, tb.lv, tb.prof, tb.dev, opts).Plan()
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	// Every plan any planner test produces must also satisfy the static
	// safety invariants — the verifier is an independent oracle, so a
	// planner bug and a verifier bug cannot cancel out silently.
	ceiling := opts.Capacity
	if ceiling == 0 {
		ceiling = tb.dev.MemBytes
	}
	for _, v := range VerifyAt(p, tb.g, tb.sched, tb.lv, ceiling) {
		t.Errorf("plan invariant: %s", v)
	}
	return p
}

func TestEmptyPlanMatchesLiveness(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 8})
	ms := NewMemSim(tb.g, tb.sched, tb.lv)
	mem, peak, _ := ms.Curve(NewPlan("base", tb.dev))
	if peak != tb.lv.Peak {
		t.Fatalf("empty plan peak %d != liveness peak %d", peak, tb.lv.Peak)
	}
	for i := range mem {
		if mem[i] != tb.lv.MemAt[i] {
			t.Fatalf("mem[%d] mismatch", i)
		}
	}
}

func TestSwapReducesPeak(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 32})
	ms := NewMemSim(tb.g, tb.sched, tb.lv)
	plan := NewPlan("test", tb.dev)
	// Swap the largest feature map.
	var big *graph.Tensor
	for _, x := range tb.g.Tensors {
		if x.Kind == tensor.FeatureMap && (big == nil || x.Bytes() > big.Bytes()) {
			big = x
		}
	}
	plan.Tensors[big.ID] = TensorPlan{Tensor: big, Opt: Swap}
	FinalizeWindows(tb.g, tb.sched, tb.lv, tb.prof, plan)
	_, peak, _ := ms.Curve(plan)
	if peak >= tb.lv.Peak {
		t.Fatalf("swapping the largest tensor did not reduce the peak: %d vs %d", peak, tb.lv.Peak)
	}
}

func TestPlannerNoopWhenItFits(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 8})
	p := tb.plan(t, Options{})
	if len(p.Tensors) != 0 || len(p.Splits) != 0 {
		t.Fatalf("plan should be empty when memory suffices: %v", p)
	}
}

func TestPlannerMeetsCapacity(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 64})
	cap := tb.lv.Peak * 60 / 100
	p := tb.plan(t, Options{Capacity: cap, FragmentationReserve: -1})
	ms := NewMemSim(tb.g, tb.sched, tb.lv)
	if !ms.PeakUnder(p, cap) {
		t.Fatal("planned peak exceeds the capacity constraint")
	}
	if p.PredictedPeak > cap {
		t.Fatal("PredictedPeak exceeds capacity")
	}
	if p.PredictedTime < tb.prof.Total() {
		t.Fatal("predicted time below the ideal time")
	}
}

func TestPlannerInfeasibleTinyCapacity(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 64})
	_, err := NewPlanner(tb.g, tb.sched, tb.lv, tb.prof, tb.dev,
		Options{Capacity: 1 << 20, FragmentationReserve: -1}).Plan()
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("expected ErrInfeasible, got %v", err)
	}
}

func TestPlannerSplitsUnderExtremePressure(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 64})
	// Cap just above the resident set so splitting becomes mandatory.
	cap := tb.lv.Resident + tb.lv.Resident/2 + (3 << 30)
	p, err := NewPlanner(tb.g, tb.sched, tb.lv, tb.prof, tb.dev,
		Options{Capacity: cap, FragmentationReserve: -1}).Plan()
	if err != nil {
		t.Fatalf("plan under %d: %v", cap, err)
	}
	if len(p.Splits) == 0 {
		t.Fatal("extreme pressure should force split decisions")
	}
}

func TestNoSplitAblationUsesNoSplits(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 64})
	cap := tb.lv.Peak * 60 / 100
	p := tb.plan(t, Options{Capacity: cap, DisableSplit: true, FragmentationReserve: -1})
	if len(p.Splits) != 0 {
		t.Fatal("DisableSplit plan contains splits")
	}
	if p.Name != "tsplit-nosplit" {
		t.Fatalf("plan name %q", p.Name)
	}
}

func TestSplitEnablesSmallerCapacityThanNoSplit(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 64})
	// Find a capacity the full planner satisfies but the no-split
	// ablation cannot.
	lo, hi := tb.lv.Resident, tb.lv.Peak
	for i := 0; i < 12; i++ {
		mid := (lo + hi) / 2
		_, err := NewPlanner(tb.g, tb.sched, tb.lv, tb.prof, tb.dev,
			Options{Capacity: mid, DisableSplit: true, FragmentationReserve: -1}).Plan()
		if err != nil {
			lo = mid
		} else {
			hi = mid
		}
	}
	// hi is (roughly) the no-split feasibility frontier; the split
	// planner must go lower.
	_, err := NewPlanner(tb.g, tb.sched, tb.lv, tb.prof, tb.dev,
		Options{Capacity: lo, FragmentationReserve: -1}).Plan()
	if err != nil {
		t.Fatalf("split planner cannot reach the no-split frontier %d: %v", lo, err)
	}
}

func TestPlanDecisionsAreConsistent(t *testing.T) {
	tb := newTestbed(t, "resnet50", models.Config{BatchSize: 48})
	cap := tb.lv.Peak * 55 / 100
	p := tb.plan(t, Options{Capacity: cap, FragmentationReserve: -1})
	for _, tp := range p.Tensors {
		if tp.Opt == Reside {
			continue
		}
		if tp.EvictAt < 0 || tp.EvictAt >= len(tb.sched.Ops) {
			t.Fatalf("%s evict index %d out of range", tp.Tensor.Name, tp.EvictAt)
		}
		if tp.RestoreAt >= 0 && tp.RestoreAt <= tp.EvictAt {
			t.Fatalf("%s restores at %d before eviction at %d", tp.Tensor.Name, tp.RestoreAt, tp.EvictAt)
		}
		if tp.Opt == Swap && tp.RestoreAt >= 0 &&
			(tp.PrefetchAt > tp.RestoreAt || tp.PrefetchAt <= tp.EvictAt && tp.MicroRestore <= 1 && tp.PrefetchAt != tp.EvictAt) {
			if tp.PrefetchAt > tp.RestoreAt {
				t.Fatalf("%s prefetch %d after restore %d", tp.Tensor.Name, tp.PrefetchAt, tp.RestoreAt)
			}
		}
		// Eviction must not orphan a use inside the gap.
		for _, c := range tp.Tensor.Consumers {
			u := tb.sched.Index[c]
			if u > tp.EvictAt && tp.RestoreAt >= 0 && u < tp.RestoreAt {
				t.Fatalf("%s consumer at %d falls inside eviction gap (%d, %d)", tp.Tensor.Name, u, tp.EvictAt, tp.RestoreAt)
			}
		}
	}
	for _, sp := range p.Splits {
		if sp.PNum < 2 {
			t.Fatalf("split of %s with p_num %d", sp.Op.Name, sp.PNum)
		}
		in, out := SplitTensors(sp.Op, sp.Dim)
		if in == nil || out == nil {
			t.Fatalf("split of %s along %v has no carvable tensors", sp.Op.Name, sp.Dim)
		}
	}
}

func TestPlanCountsAndDescribe(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 64})
	p := tb.plan(t, Options{Capacity: tb.lv.Peak * 60 / 100, FragmentationReserve: -1})
	c := p.Counts()
	if c.Swap+c.Recompute != len(p.Tensors) {
		t.Fatalf("counts %+v inconsistent with %d decisions", c, len(p.Tensors))
	}
	if c.SwapBytes <= 0 && c.RecomputeBytes <= 0 {
		t.Fatal("no bytes planned?")
	}
	if p.Describe() == "" || p.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestRecomputeChain(t *testing.T) {
	g := graph.New()
	x := g.Input("x", tensor.NewShape(2, 4), tensor.Float32)
	a := g.ReLU("a", x)
	b := g.ReLU("b", a)
	c := g.ReLU("c", b)
	avail := func(tt *graph.Tensor) bool { return tt == x }
	chain, err := RecomputeChain(c, avail, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 3 {
		t.Fatalf("chain length %d", len(chain))
	}
	if chain[0] != a.Producer || chain[2] != c.Producer {
		t.Fatal("chain out of order")
	}
	// Bounded length.
	if _, err := RecomputeChain(c, avail, 2); err == nil {
		t.Fatal("chain over maxLen should fail")
	}
	// Unavailable source.
	if _, err := RecomputeChain(c, func(*graph.Tensor) bool { return false }, 10); err == nil {
		t.Fatal("unavailable source should fail")
	}
}

func TestSplitTensorsSampleDim(t *testing.T) {
	g := graph.New()
	x := g.Input("x", tensor.NewShape(8, 3, 16, 16), tensor.Float32)
	y := g.Conv2D("c", x, 4, 3, 1, 1)
	in, out := SplitTensors(y.Producer, tensor.DimSample)
	if in != x || out != y {
		t.Fatal("conv sample split should carve x and y")
	}
	// Parameter dim carves the weight.
	win, wout := SplitTensors(y.Producer, tensor.DimParam)
	if win == nil || win.Kind != tensor.Parameter || wout != y {
		t.Fatal("conv param split should carve the weight")
	}
	// BatchNorm is sample-splittable (two-pass stats).
	bn := g.BatchNorm("bn", y)
	if in, _ := SplitTensors(bn.Producer, tensor.DimSample); in != y {
		t.Fatal("batchnorm should be sample-splittable")
	}
	// Concat is not splittable.
	cat := g.Concat("cat", 1, y, y)
	if in, _ := SplitTensors(cat.Producer, tensor.DimSample); in != nil {
		t.Fatal("concat should not be splittable")
	}
}

func TestMergeModeClassification(t *testing.T) {
	g := graph.New()
	x := g.Input("x", tensor.NewShape(8, 4, 8, 8), tensor.Float32)
	y := g.ReLU("r", x) // out size == in size
	op := y.Producer
	if m := MergeModeFor(op, OpSplit{Op: op, PNum: 4, Dim: tensor.DimSample, InOpt: Recompute}); m != MergeCarveInPlace {
		t.Fatalf("same-size discard split should stage in place, got %v", m)
	}
	if m := MergeModeFor(op, OpSplit{Op: op, PNum: 4, Dim: tensor.DimSample, InOpt: Reside, MicroIns: []*graph.Tensor{x}}); m != MergeRestoreInPlace {
		t.Fatalf("micro-restored same-size input should restore-stage, got %v", m)
	}
	if m := MergeModeFor(op, OpSplit{Op: op, PNum: 4, Dim: tensor.DimSample, InOpt: Reside}); m != MergePhysical {
		t.Fatalf("reside split should merge physically, got %v", m)
	}
	if st := RestoreStageTensor(op, OpSplit{Op: op, Dim: tensor.DimSample, MicroIns: []*graph.Tensor{x}}); st != x {
		t.Fatal("RestoreStageTensor should find x")
	}
}

func TestFinalizeWindowsLargestGap(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 8})
	plan := NewPlan("test", tb.dev)
	for _, x := range tb.g.Tensors {
		if x.Kind == tensor.FeatureMap {
			plan.Tensors[x.ID] = TensorPlan{Tensor: x, Opt: Swap}
		}
	}
	FinalizeWindows(tb.g, tb.sched, tb.lv, tb.prof, plan)
	for _, tp := range plan.Tensors {
		if tp.RestoreAt <= tp.EvictAt {
			t.Fatalf("%s: restore %d <= evict %d", tp.Tensor.Name, tp.RestoreAt, tp.EvictAt)
		}
		if tp.PrefetchAt > tp.RestoreAt || tp.PrefetchAt <= tp.EvictAt {
			t.Fatalf("%s: prefetch %d outside (%d, %d]", tp.Tensor.Name, tp.PrefetchAt, tp.EvictAt, tp.RestoreAt)
		}
	}
}

func TestFinalizeWindowsDropsUseless(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 8})
	plan := NewPlan("test", tb.dev)
	// The loss tensor has no gap worth evicting across.
	plan.Tensors[tb.g.Loss.ID] = TensorPlan{Tensor: tb.g.Loss, Opt: Swap}
	FinalizeWindows(tb.g, tb.sched, tb.lv, tb.prof, plan)
	if _, ok := plan.Tensors[tb.g.Loss.ID]; ok {
		t.Fatal("gapless tensor decision should be dropped")
	}
}
