package core

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// PlanDecision is one committed iteration of the greedy planning loop
// (paper Algorithm 2 Step 3) with everything needed to answer "why did
// the planner pick this": the bottleneck it broke, how many candidates
// competed, the winning action and its ΔT/ΔM price, and the memory
// peak before and after the commit.
type PlanDecision struct {
	// Iter is the planning-loop iteration number (0-based).
	Iter int `json:"iter"`
	// Bottleneck is the schedule index of the first op over capacity;
	// BottleneckOp names it and OverBytes is how far over it was.
	Bottleneck   int    `json:"bottleneck"`
	BottleneckOp string `json:"bottleneck_op"`
	OverBytes    int64  `json:"over_bytes"`
	// PeakBefore/PeakAfter bracket the commit: the memory-curve peak
	// seen at this iteration and the peak after the decision applied.
	PeakBefore int64 `json:"peak_before_bytes"`
	PeakAfter  int64 `json:"peak_after_bytes"`
	// Candidates is the number of viable candidates scored (the
	// candidate pool size of Steps 1+2).
	Candidates int `json:"candidates"`
	// Kind is "swap", "recompute" or "split"; Tensor names the evicted
	// tensor (or the split input), Op the split operator.
	Kind   string `json:"kind"`
	Tensor string `json:"tensor,omitempty"`
	Op     string `json:"op,omitempty"`
	PNum   int    `json:"p_num,omitempty"`
	Dim    string `json:"dim,omitempty"`
	InOpt  string `json:"in_opt,omitempty"`
	// Ratio is the winning ΔT/ΔM greedy key (seconds per byte);
	// DeltaTSeconds and DeltaMBytes are its components.
	Ratio         float64 `json:"ratio"`
	DeltaTSeconds float64 `json:"delta_t_seconds"`
	DeltaMBytes   int64   `json:"delta_m_bytes"`
	// ChainsRederived counts the recompute chains whose transient
	// estimate was actually re-derived this iteration (dirty tracking);
	// ChainsTracked is how many recompute decisions the plan held — the
	// difference is the incremental path's saving over a full rebuild.
	ChainsRederived int `json:"chains_rederived"`
	ChainsTracked   int `json:"chains_tracked"`
}

// PlanReport is the structured introspection record of one Plan() run,
// assembled when Options.CollectReport is set and retrieved with
// Planner.Report().
type PlanReport struct {
	// Policy and Device identify the planning configuration.
	Policy string `json:"policy"`
	Device string `json:"device"`
	// CapacityBytes is the effective budget (after the fragmentation
	// reserve); InitialPeakBytes the unplanned curve peak;
	// FinalPeakBytes the planned curve peak.
	CapacityBytes    int64 `json:"capacity_bytes"`
	InitialPeakBytes int64 `json:"initial_peak_bytes"`
	FinalPeakBytes   int64 `json:"final_peak_bytes"`
	// SafetyMargin is the Options.SafetyMargin the plan was built
	// with — the budget fraction reserved for environmental pressure.
	SafetyMargin float64 `json:"safety_margin,omitempty"`
	// Degradations records the graceful-degradation ladder stages that
	// failed before this plan succeeded ("plan margin=0.10: injected
	// OOM", ...). Empty when the first plan ran clean.
	Degradations []string `json:"degradations,omitempty"`
	// PredictedTimeSeconds / ExtraTimeSeconds mirror the plan's cost
	// estimate: profiled iteration time plus the accumulated ΔT.
	PredictedTimeSeconds float64 `json:"predicted_time_seconds"`
	ExtraTimeSeconds     float64 `json:"extra_time_seconds"`
	// CandidatesScored totals the candidate evaluations across all
	// iterations; ChainsRederived/ChainsSkipped total the incremental
	// chain-refresh work and the rebuilds it avoided.
	CandidatesScored int64 `json:"candidates_scored"`
	ChainsRederived  int64 `json:"chains_rederived"`
	ChainsSkipped    int64 `json:"chains_skipped"`
	// CandidatesRescored counts the cache refreshes the invalidating
	// candidate index actually performed (chain re-walks plus split
	// configuration rebuilds) — the work the lazy index could not skip.
	CandidatesRescored int64 `json:"candidates_rescored,omitempty"`
	// DecisionsReplayed counts decisions re-applied from the previous
	// run's journal by a warm Replan; WarmStart marks such runs.
	DecisionsReplayed int64 `json:"decisions_replayed,omitempty"`
	WarmStart         bool  `json:"warm_start,omitempty"`
	// MeanPCIeOccupancy is the time-weighted mean of the planner's
	// final per-op PCIe reservation array (Oc_u, paper Eq. 3).
	MeanPCIeOccupancy float64 `json:"mean_pcie_occupancy"`
	// EarlyOutSplits lists producers split by the early-swap-out
	// refinement pass (outside the greedy loop).
	EarlyOutSplits []string `json:"early_out_splits,omitempty"`
	// Decisions is the per-iteration commit log.
	Decisions []PlanDecision `json:"decisions"`
}

// WriteJSON serializes the report (indented) for --plan-report files
// and framework tooling.
func (r *PlanReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Summary renders a short human-readable digest: totals plus the first
// few decisions.
func (r *PlanReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan report: %s on %s — %d decisions, %.1f→%.1f MiB peak (budget %.1f MiB), +%.3fs predicted overhead\n",
		r.Policy, r.Device, len(r.Decisions),
		float64(r.InitialPeakBytes)/(1<<20), float64(r.FinalPeakBytes)/(1<<20),
		float64(r.CapacityBytes)/(1<<20), r.ExtraTimeSeconds)
	fmt.Fprintf(&b, "  %d candidates scored; chains re-derived %d, skipped %d; mean PCIe occupancy %.1f%%\n",
		r.CandidatesScored, r.ChainsRederived, r.ChainsSkipped, 100*r.MeanPCIeOccupancy)
	for i, d := range r.Decisions {
		if i >= 8 {
			fmt.Fprintf(&b, "  ... %d more decisions\n", len(r.Decisions)-i)
			break
		}
		what := d.Tensor
		if d.Kind == "split" {
			what = fmt.Sprintf("%s p=%d dim=%s in=%s", d.Op, d.PNum, d.Dim, d.InOpt)
		}
		fmt.Fprintf(&b, "  #%-3d @%-4d %-28s %-9s %-44s dM %7.1f MiB  dT %8.3f ms  of %d candidates\n",
			d.Iter, d.Bottleneck, d.BottleneckOp, d.Kind, what,
			float64(d.DeltaMBytes)/(1<<20), d.DeltaTSeconds*1e3, d.Candidates)
	}
	return b.String()
}

// decisionKind names a committed candidate for the report and the
// decisions_total metric label.
func decisionKind(c *candidate) string {
	if c.isSplit {
		return "split"
	}
	if c.opt == Recompute {
		return "recompute"
	}
	return "swap"
}
