package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"tsplit/internal/graph"
)

// PlanJSON is the serialized form of a plan — the artifact a framework
// integration consumes to add the extra split/swap/regenerate
// operators to a PyTorch or TensorFlow program (paper Sec. VI-D:
// "the augmented dataflow graph of TSPLIT can be converted into the
// executable model").
type PlanJSON struct {
	Policy   string           `json:"policy"`
	Device   string           `json:"device"`
	Tensors  []TensorPlanJSON `json:"tensors"`
	Splits   []OpSplitJSON    `json:"splits"`
	Offload  bool             `json:"offload_optimizer,omitempty"`
	Sharded  bool             `json:"shard_params,omitempty"`
	PeakGiB  float64          `json:"predicted_peak_gib,omitempty"`
	TimeSecs float64          `json:"predicted_time_seconds,omitempty"`
}

// TensorPlanJSON serializes one sTensor memory option.
type TensorPlanJSON struct {
	Tensor       string `json:"tensor"`
	Bytes        int64  `json:"bytes"`
	Opt          string `json:"opt"`
	EvictAt      int    `json:"evict_at"`
	PrefetchAt   int    `json:"prefetch_at,omitempty"`
	RestoreAt    int    `json:"restore_at"`
	MicroRestore int    `json:"micro_restore,omitempty"`
}

// OpSplitJSON serializes one operator split configuration.
type OpSplitJSON struct {
	Op       string   `json:"op"`
	PNum     int      `json:"p_num"`
	Dim      string   `json:"dim"`
	InOpt    string   `json:"in_opt"`
	EarlyOut bool     `json:"early_out,omitempty"`
	MicroIns []string `json:"micro_restored_inputs,omitempty"`
}

// ExportJSON writes the plan as indented JSON, deterministically
// ordered by schedule-independent ids.
func ExportJSON(w io.Writer, p *Plan) error {
	out := PlanJSON{
		Policy: p.Name, Device: p.Dev.Name,
		Offload: p.OffloadOptimizer, Sharded: p.ShardParams,
		PeakGiB:  float64(p.PredictedPeak) / (1 << 30),
		TimeSecs: p.PredictedTime,
	}
	ids := make([]int, 0, len(p.Tensors))
	for id := range p.Tensors {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		tp := p.Tensors[id]
		out.Tensors = append(out.Tensors, TensorPlanJSON{
			Tensor: tp.Tensor.Name, Bytes: tp.Tensor.Bytes(),
			Opt: tp.Opt.String(), EvictAt: tp.EvictAt,
			PrefetchAt: tp.PrefetchAt, RestoreAt: tp.RestoreAt,
			MicroRestore: tp.MicroRestore,
		})
	}
	opIDs := make([]int, 0, len(p.Splits))
	for id := range p.Splits {
		opIDs = append(opIDs, id)
	}
	sort.Ints(opIDs)
	for _, id := range opIDs {
		sp := p.Splits[id]
		sj := OpSplitJSON{
			Op: sp.Op.Name, PNum: sp.PNum, Dim: sp.Dim.String(),
			InOpt: sp.InOpt.String(), EarlyOut: sp.EarlyOut,
		}
		for _, t := range sp.MicroIns {
			sj.MicroIns = append(sj.MicroIns, t.Name)
		}
		out.Splits = append(out.Splits, sj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// DOT renders the augmented graph in Graphviz format for inspection of
// the Fig. 10 rewrite: memory operators are colored (swap-out red,
// swap-in green, split/merge blue, recompute orange), control edges
// are dashed.
func (a *Augmented) DOT(w io.Writer) error {
	// Render into a buffer first: strings.Builder writes cannot fail,
	// so the single flush below is the only error site.
	var b strings.Builder
	fmt.Fprintln(&b, "digraph tsplit {\n  rankdir=LR;\n  node [shape=box, fontsize=9];")
	color := func(k graph.OpKind) string {
		switch k {
		case graph.SwapOut:
			return "indianred1"
		case graph.SwapIn:
			return "palegreen"
		case graph.SplitOp, graph.MergeOp:
			return "lightskyblue"
		case graph.Recompute:
			return "orange"
		default:
			return "white"
		}
	}
	for _, op := range a.G.Ops {
		fmt.Fprintf(&b, "  op%d [label=%q, style=filled, fillcolor=%q];\n", op.ID, op.Name, color(op.Kind))
	}
	for _, op := range a.G.Ops {
		seen := map[int]bool{}
		for _, in := range op.Inputs {
			if p := in.Producer; p != nil && !seen[p.ID] {
				seen[p.ID] = true
				fmt.Fprintf(&b, "  op%d -> op%d [label=%q, fontsize=7];\n", p.ID, op.ID, in.Name)
			}
		}
		for _, dep := range op.ControlDeps {
			fmt.Fprintf(&b, "  op%d -> op%d [style=dashed, color=gray];\n", dep.ID, op.ID)
		}
	}
	fmt.Fprintln(&b, "}")
	_, err := io.WriteString(w, b.String())
	return err
}
