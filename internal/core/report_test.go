package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"

	"tsplit/internal/models"
	"tsplit/internal/obs"
)

// TestPlanReportConsistency checks the introspection record against the
// plan it describes and the metrics emitted alongside it.
func TestPlanReportConsistency(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 64})
	capacity := tb.lv.Peak * 55 / 100
	reg := obs.NewRegistry()
	pl := NewPlanner(tb.g, tb.sched, tb.lv, tb.prof, tb.dev,
		Options{Capacity: capacity, FragmentationReserve: -1, CollectReport: true, Obs: reg})
	p, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	r := pl.Report()
	if r == nil {
		t.Fatal("CollectReport set but Report() is nil")
	}
	if len(r.Decisions) == 0 {
		t.Fatal("plan under pressure produced no decisions")
	}
	if r.CapacityBytes != capacity {
		t.Fatalf("capacity %d != %d", r.CapacityBytes, capacity)
	}
	if r.InitialPeakBytes <= capacity {
		t.Fatalf("initial peak %d should exceed capacity %d", r.InitialPeakBytes, capacity)
	}
	if r.FinalPeakBytes > capacity {
		t.Fatalf("final peak %d exceeds capacity %d", r.FinalPeakBytes, capacity)
	}
	if r.FinalPeakBytes != p.PredictedPeak {
		t.Fatalf("report final peak %d != plan predicted peak %d", r.FinalPeakBytes, p.PredictedPeak)
	}
	if r.CandidatesScored <= 0 {
		t.Fatal("no candidates scored recorded")
	}
	kinds := map[string]bool{"swap": true, "recompute": true, "split": true}
	for i, d := range r.Decisions {
		if d.Iter != i {
			t.Fatalf("decision %d has iter %d", i, d.Iter)
		}
		if !kinds[d.Kind] {
			t.Fatalf("decision %d has unknown kind %q", i, d.Kind)
		}
		if d.OverBytes <= 0 || d.PeakBefore <= capacity {
			t.Fatalf("decision %d does not describe a bottleneck: %+v", i, d)
		}
		if d.PeakAfter <= 0 {
			t.Fatalf("decision %d PeakAfter not filled: %+v", i, d)
		}
		if d.Candidates <= 0 || d.DeltaMBytes <= 0 {
			t.Fatalf("decision %d has empty candidate pool or ΔM: %+v", i, d)
		}
		if d.BottleneckOp == "" || d.Tensor == "" && d.Op == "" {
			t.Fatalf("decision %d names nothing: %+v", i, d)
		}
	}
	// The last decision's PeakAfter is the scan that ended the loop.
	if last := r.Decisions[len(r.Decisions)-1]; last.PeakAfter > capacity {
		t.Fatalf("last decision left peak %d over capacity", last.PeakAfter)
	}

	counts := p.Counts()
	if got := reg.Counter("tsplit_planner_plans_total"); got != 1 {
		t.Fatalf("plans_total = %d", got)
	}
	if got := reg.Counter("tsplit_planner_iterations_total"); got != int64(len(r.Decisions)) {
		t.Fatalf("iterations_total %d != %d decisions", got, len(r.Decisions))
	}
	if got := reg.Counter("tsplit_planner_candidates_scored_total"); got != r.CandidatesScored {
		t.Fatalf("candidates_scored_total %d != report %d", got, r.CandidatesScored)
	}
	if got := reg.Counter("tsplit_planner_decisions_total", obs.L("kind", "swap")); got != int64(counts.Swap) {
		t.Fatalf("decisions_total{swap} %d != plan %d", got, counts.Swap)
	}
	if got := reg.Counter("tsplit_planner_decisions_total", obs.L("kind", "split")); got != int64(counts.SplitOps) {
		t.Fatalf("decisions_total{split} %d != plan %d", got, counts.SplitOps)
	}
	if got := reg.Counter("tsplit_planner_planned_bytes_total", obs.L("kind", "swap")); got != counts.SwapBytes {
		t.Fatalf("planned_bytes_total{swap} %d != plan %d", got, counts.SwapBytes)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back PlanReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if len(back.Decisions) != len(r.Decisions) {
		t.Fatalf("round-trip lost decisions: %d != %d", len(back.Decisions), len(r.Decisions))
	}
	if s := r.Summary(); !strings.Contains(s, "plan report") {
		t.Fatalf("summary missing header: %q", s)
	}
}

// TestObservationDoesNotPerturbPlan pins that collecting a report and
// recording metrics changes nothing about the plan itself.
func TestObservationDoesNotPerturbPlan(t *testing.T) {
	tb := newTestbed(t, "resnet50", models.Config{BatchSize: 48})
	capacity := tb.lv.Peak * 55 / 100
	plain := tb.plan(t, Options{Capacity: capacity, FragmentationReserve: -1})
	observed, err := NewPlanner(tb.g, tb.sched, tb.lv, tb.prof, tb.dev,
		Options{Capacity: capacity, FragmentationReserve: -1, CollectReport: true, Obs: obs.NewRegistry()}).Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plain.Describe() != observed.Describe() {
		t.Fatal("observation changed the plan")
	}
	if plain.PredictedTime != observed.PredictedTime || plain.PredictedPeak != observed.PredictedPeak {
		t.Fatal("observation changed the plan's predictions")
	}
}

// TestPlanReportSerialParallelEquivalence extends the plan-equivalence
// guarantee to the decision log: the serial reference and the
// incremental/parallel path must record the same decision sequence.
// Only the chain-refresh accounting may differ (that is the point of
// the incremental path).
func TestPlanReportSerialParallelEquivalence(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 64})
	capacity := tb.lv.Peak * 60 / 100
	reports := make([]*PlanReport, 2)
	for i, serial := range []bool{false, true} {
		pl := NewPlanner(tb.g, tb.sched, tb.lv, tb.prof, tb.dev,
			Options{Capacity: capacity, FragmentationReserve: -1, Serial: serial, CollectReport: true})
		if _, err := pl.Plan(); err != nil {
			t.Fatal(err)
		}
		reports[i] = pl.Report()
	}
	norm := func(r *PlanReport) []PlanDecision {
		ds := append([]PlanDecision(nil), r.Decisions...)
		for i := range ds {
			ds[i].ChainsRederived, ds[i].ChainsTracked = 0, 0
		}
		return ds
	}
	a, _ := json.Marshal(norm(reports[0]))
	b, _ := json.Marshal(norm(reports[1]))
	if !bytes.Equal(a, b) {
		t.Fatalf("decision logs diverge between parallel and serial paths:\n%s\n---\n%s", a, b)
	}
	if reports[1].ChainsSkipped != 0 {
		t.Fatalf("serial path reported %d skipped chains", reports[1].ChainsSkipped)
	}
	if reports[0].ChainsRederived > reports[1].ChainsRederived {
		t.Fatalf("incremental path re-derived more chains (%d) than the full rebuild (%d)",
			reports[0].ChainsRederived, reports[1].ChainsRederived)
	}
}

// TestPlannerFailureMetrics pins the failure counter on the infeasible
// path.
func TestPlannerFailureMetrics(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 64})
	reg := obs.NewRegistry()
	_, err := NewPlanner(tb.g, tb.sched, tb.lv, tb.prof, tb.dev,
		Options{Capacity: 1 << 20, FragmentationReserve: -1, Obs: reg}).Plan()
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("expected ErrInfeasible, got %v", err)
	}
	if got := reg.Counter("tsplit_planner_failures_total", obs.L("reason", "infeasible")); got != 1 {
		t.Fatalf("failures_total{infeasible} = %d", got)
	}
	if got := reg.Counter("tsplit_planner_plans_total"); got != 0 {
		t.Fatalf("failed plan counted as success: %d", got)
	}
}

// TestConcurrentPlansSharedRegistry runs several planners against one
// registry at once — the shape tsplit-bench uses — and checks no
// updates are lost. Run under -race by make ci.
func TestConcurrentPlansSharedRegistry(t *testing.T) {
	tb := newTestbed(t, "vgg16", models.Config{BatchSize: 32})
	capacity := tb.lv.Peak * 60 / 100
	reg := obs.NewRegistry()
	const n = 4
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = NewPlanner(tb.g, tb.sched, tb.lv, tb.prof, tb.dev,
				Options{Capacity: capacity, FragmentationReserve: -1, Obs: reg}).Plan()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("tsplit_planner_plans_total"); got != n {
		t.Fatalf("plans_total = %d, want %d", got, n)
	}
}
