package core

import (
	"fmt"
	"sort"

	"tsplit/internal/graph"
	"tsplit/internal/tensor"
)

// Augmented is the materialized form of a plan (paper Fig. 10): a new
// dataflow graph in which split operators have been expanded into
// micro-operators with split/merge glue, swap decisions appear as
// SwapOut/SwapIn operators over host-copy handles, recompute decisions
// appear as duplicated forward subgraphs, and control-flow edges pin
// the timing the planner chose. The paper converts this graph to
// PyTorch/TensorFlow programs (Sec. VI-D); here it drives plan export
// and inspection, while the discrete-event runtime executes plans
// directly.
type Augmented struct {
	G *graph.Graph
	// OrigOf maps an augmented operator to the original operator it
	// implements (nil for inserted memory operators).
	OrigOf map[*graph.Op]*graph.Op
	// InstanceOf maps an augmented tensor to the original tensor whose
	// value it carries (nil for host handles and micro-tensors).
	InstanceOf map[*graph.Tensor]*graph.Tensor

	// Inserted-operator counts, for reports and tests.
	SwapOuts, SwapIns, SplitOps, MergeOps, RecomputeOps int
}

// rewriter carries the walk state.
type rewriter struct {
	src   *graph.Graph
	sched *graph.Schedule
	lv    *graph.Liveness
	plan  *Plan

	ag  *graph.Graph
	out *Augmented
	// cur maps an original tensor to its current on-device instance
	// (nil = evicted / not yet produced).
	cur map[*graph.Tensor]*graph.Tensor
	// host maps an original tensor to its host-copy handle.
	host map[*graph.Tensor]*graph.Tensor
	// prev is the most recent augmented op (timing anchor).
	prev *graph.Op
	// agenda schedules swap-in insertion at prefetch positions.
	agenda map[int][]*graph.Tensor
	// evictAgenda schedules evictions at their planned positions.
	evictAgenda map[int][]*graph.Tensor
}

// Augment materializes the plan over (g, sched) as an augmented graph.
func Augment(g *graph.Graph, sched *graph.Schedule, lv *graph.Liveness, plan *Plan) (*Augmented, error) {
	rw := &rewriter{
		src: g, sched: sched, lv: lv, plan: plan,
		ag:          graph.New(),
		out:         &Augmented{OrigOf: map[*graph.Op]*graph.Op{}, InstanceOf: map[*graph.Tensor]*graph.Tensor{}},
		cur:         map[*graph.Tensor]*graph.Tensor{},
		host:        map[*graph.Tensor]*graph.Tensor{},
		agenda:      map[int][]*graph.Tensor{},
		evictAgenda: map[int][]*graph.Tensor{},
	}
	rw.out.G = rw.ag

	// Graph sources (params, inputs, optimizer state) exist up front.
	for _, t := range g.Tensors {
		if t.Producer == nil {
			rw.cur[t] = rw.instance(t, t.Name)
		}
	}
	// Tensor-ID order keeps the inserted memory operators (and so the
	// whole augmented graph) deterministic; Plan.Tensors is a map.
	ids := make([]int, 0, len(plan.Tensors))
	for id := range plan.Tensors {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		tp := plan.Tensors[id]
		if tp.Opt == Swap && tp.RestoreAt >= 0 {
			at := tp.PrefetchAt
			if at < 0 || at > tp.RestoreAt {
				at = tp.RestoreAt
			}
			rw.agenda[at] = append(rw.agenda[at], tp.Tensor)
		}
		rw.evictAgenda[tp.EvictAt] = append(rw.evictAgenda[tp.EvictAt], tp.Tensor)
	}

	for i, op := range sched.Ops {
		for _, t := range rw.agenda[i] {
			rw.insertSwapIn(t)
		}
		if sp, ok := plan.SplitFor(op); ok && sp.PNum > 1 {
			if err := rw.expandSplit(op, sp); err != nil {
				return nil, err
			}
		} else {
			if err := rw.cloneOp(op); err != nil {
				return nil, err
			}
		}
		rw.applyEvictions(i)
	}
	return rw.out, nil
}

// instance creates an augmented tensor carrying orig's value.
func (rw *rewriter) instance(orig *graph.Tensor, name string) *graph.Tensor {
	t := rw.ag.NewTensor(name, orig.Shape, orig.DType, orig.Kind)
	rw.out.InstanceOf[t] = orig
	return t
}

// mapInput returns the on-device augmented instance for an original
// input tensor, inserting a late swap-in or a recompute chain when the
// plan evicted it.
func (rw *rewriter) mapInput(t *graph.Tensor) (*graph.Tensor, error) {
	if inst := rw.cur[t]; inst != nil {
		return inst, nil
	}
	tp, ok := rw.plan.Tensors[t.ID]
	if !ok {
		return nil, fmt.Errorf("core: rewrite needs %s but it has no device instance and no plan", t.Name)
	}
	switch tp.Opt {
	case Swap:
		rw.insertSwapIn(t)
		return rw.cur[t], nil
	case Recompute:
		if err := rw.insertRecompute(t); err != nil {
			return nil, err
		}
		return rw.cur[t], nil
	default:
		return nil, fmt.Errorf("core: rewrite cannot restore %s (opt %v)", t.Name, tp.Opt)
	}
}

// insertSwapIn restores t from its host handle.
func (rw *rewriter) insertSwapIn(t *graph.Tensor) {
	if rw.cur[t] != nil {
		return
	}
	h := rw.host[t]
	if h == nil {
		return // never swapped out (e.g. eviction point not reached)
	}
	back := rw.instance(t, t.Name+".back")
	op := rw.ag.NewOp("swapin."+t.Name, graph.SwapIn, graph.Backward, []*graph.Tensor{h}, []*graph.Tensor{back}, graph.Attrs{})
	if rw.prev != nil {
		op.ControlDeps = append(op.ControlDeps, rw.prev)
	}
	rw.cur[t] = back
	rw.prev = op
	rw.out.SwapIns++
}

// insertRecompute duplicates the forward chain regenerating t
// (memory-centric: a fresh chain per restoring consumer).
func (rw *rewriter) insertRecompute(t *graph.Tensor) error {
	avail := func(x *graph.Tensor) bool { return rw.cur[x] != nil || rw.host[x] != nil }
	chain, err := RecomputeChain(t, avail, len(rw.src.Ops))
	if err != nil {
		return fmt.Errorf("core: rewrite: %w", err)
	}
	anchor := rw.prev
	// Fresh instances local to this chain so memory-centric retirement
	// is expressible; sources resolve through cur/host.
	local := map[*graph.Tensor]*graph.Tensor{}
	get := func(x *graph.Tensor) (*graph.Tensor, error) {
		if inst := local[x]; inst != nil {
			return inst, nil
		}
		if inst := rw.cur[x]; inst != nil {
			return inst, nil
		}
		if rw.host[x] != nil {
			rw.insertSwapIn(x)
			return rw.cur[x], nil
		}
		return nil, fmt.Errorf("core: rewrite: recompute source %s unavailable", x.Name)
	}
	for _, c := range chain {
		ins := make([]*graph.Tensor, 0, len(c.Inputs))
		for _, in := range c.Inputs {
			inst, err := get(in)
			if err != nil {
				return err
			}
			ins = append(ins, inst)
		}
		outs := make([]*graph.Tensor, 0, len(c.Outputs))
		for _, o := range c.Outputs {
			inst := rw.instance(o, o.Name+".rc")
			local[o] = inst
			outs = append(outs, inst)
		}
		rop := rw.ag.NewOp("rc."+c.Name, graph.Recompute, graph.Backward, ins, outs, c.Attrs)
		rop.FwdOp = c
		rop.Workspace = c.Workspace
		if anchor != nil {
			rop.ControlDeps = append(rop.ControlDeps, anchor)
			anchor = nil
		}
		rw.prev = rop
		rw.out.RecomputeOps++
	}
	rw.cur[t] = local[t]
	return nil
}

// cloneOp copies an unsplit operator with mapped inputs and fresh
// output instances.
func (rw *rewriter) cloneOp(op *graph.Op) error {
	ins := make([]*graph.Tensor, 0, len(op.Inputs))
	for _, in := range op.Inputs {
		inst, err := rw.mapInput(in)
		if err != nil {
			return err
		}
		ins = append(ins, inst)
	}
	outs := make([]*graph.Tensor, 0, len(op.Outputs))
	for _, o := range op.Outputs {
		inst := rw.instance(o, o.Name)
		rw.cur[o] = inst
		outs = append(outs, inst)
	}
	nop := rw.ag.NewOp(op.Name, op.Kind, op.Phase, ins, outs, op.Attrs)
	nop.FwdOp = op.FwdOp
	nop.Workspace = op.Workspace
	rw.out.OrigOf[nop] = op
	rw.prev = nop
	return nil
}

// applyEvictions inserts swap-outs / drops for tensors whose eviction
// point is schedule index i.
func (rw *rewriter) applyEvictions(i int) {
	for _, in := range rw.evictAgenda[i] {
		tp, ok := rw.plan.Tensors[in.ID]
		if !ok || rw.cur[in] == nil {
			continue
		}
		switch tp.Opt {
		case Swap:
			h := rw.ag.NewTensor(in.Name+".host", in.Shape, in.DType, tensor.HostCopy)
			op := rw.ag.NewOp("swapout."+in.Name, graph.SwapOut, graph.Forward,
				[]*graph.Tensor{rw.cur[in]}, []*graph.Tensor{h}, graph.Attrs{})
			op.ControlDeps = append(op.ControlDeps, rw.prev)
			rw.host[in] = h
			rw.cur[in] = nil
			rw.out.SwapOuts++
		case Recompute:
			rw.cur[in] = nil // dropped; regenerated on demand
		}
	}
}

// expandSplit rewrites one operator into p_num micro-operators with
// split and merge glue (paper Fig. 10).
func (rw *rewriter) expandSplit(op *graph.Op, sp OpSplit) error {
	in, out := SplitTensors(op, sp.Dim)
	if in == nil || out == nil {
		return rw.cloneOp(op)
	}
	axis := splitAxis(op, sp.Dim)
	inInst, err := rw.mapInput(in)
	if err != nil {
		return err
	}
	// Whole (unsplit) operands.
	whole := make(map[*graph.Tensor]*graph.Tensor, len(op.Inputs))
	for _, x := range op.Inputs {
		if x == in {
			continue
		}
		inst, err := rw.mapInput(x)
		if err != nil {
			return err
		}
		whole[x] = inst
	}

	inAxis := 0
	if sp.Dim == tensor.DimParam {
		inAxis = weightSplitAxis(op)
	}
	inShapes, err := tensor.Split(in.Shape, inAxis, sp.PNum)
	if err != nil {
		return rw.cloneOp(op)
	}
	outShapes, err := tensor.Split(out.Shape, axis, sp.PNum)
	if err != nil {
		return rw.cloneOp(op)
	}

	// Split operator carving the input (in place for the sample axis).
	microIns := make([]*graph.Tensor, sp.PNum)
	for k := range microIns {
		microIns[k] = rw.ag.NewTensor(fmt.Sprintf("%s.s%d", in.Name, k), inShapes[k], in.DType, in.Kind)
	}
	sop := rw.ag.NewOp("split."+in.Name, graph.SplitOp, op.Phase, []*graph.Tensor{inInst}, microIns, graph.Attrs{Axis: inAxis})
	sop.ControlDeps = append(sop.ControlDeps, rw.prev)
	rw.prev = sop
	rw.out.SplitOps++

	// Micro-operators. Reduction outputs (those not carved) get
	// per-micro partials merged by sum below.
	microOuts := make([]*graph.Tensor, sp.PNum)
	partials := map[*graph.Tensor][]*graph.Tensor{}
	for k := 0; k < sp.PNum; k++ {
		ins := make([]*graph.Tensor, 0, len(op.Inputs))
		for _, x := range op.Inputs {
			if x == in {
				ins = append(ins, microIns[k])
			} else {
				ins = append(ins, whole[x])
			}
		}
		outs := make([]*graph.Tensor, 0, len(op.Outputs))
		for _, o := range op.Outputs {
			if o == out {
				microOuts[k] = rw.ag.NewTensor(fmt.Sprintf("%s.s%d", o.Name, k), outShapes[k], o.DType, o.Kind)
				outs = append(outs, microOuts[k])
				continue
			}
			p := rw.ag.NewTensor(fmt.Sprintf("%s.p%d", o.Name, k), o.Shape, o.DType, o.Kind)
			partials[o] = append(partials[o], p)
			outs = append(outs, p)
		}
		mop := rw.ag.NewOp(fmt.Sprintf("%s.m%d", op.Name, k), op.Kind, op.Phase, ins, outs, op.Attrs)
		mop.FwdOp = op.FwdOp
		mop.Workspace = op.Workspace / int64(sp.PNum)
		rw.out.OrigOf[mop] = op
		rw.prev = mop

		// Micro-eviction: stream or drop the consumed input part.
		if sp.InOpt == Swap {
			h := rw.ag.NewTensor(fmt.Sprintf("%s.s%d.host", in.Name, k), inShapes[k], in.DType, tensor.HostCopy)
			so := rw.ag.NewOp(fmt.Sprintf("swapout.%s.s%d", in.Name, k), graph.SwapOut, op.Phase,
				[]*graph.Tensor{microIns[k]}, []*graph.Tensor{h}, graph.Attrs{})
			so.ControlDeps = append(so.ControlDeps, mop)
			rw.out.SwapOuts++
		}
		if sp.EarlyOut {
			h := rw.ag.NewTensor(fmt.Sprintf("%s.s%d.host", out.Name, k), outShapes[k], out.DType, tensor.HostCopy)
			so := rw.ag.NewOp(fmt.Sprintf("swapout.%s.s%d", out.Name, k), graph.SwapOut, op.Phase,
				[]*graph.Tensor{microOuts[k]}, []*graph.Tensor{h}, graph.Attrs{})
			so.ControlDeps = append(so.ControlDeps, mop)
			rw.out.SwapOuts++
		}
	}

	// Merge: concatenate the carved outputs; sum-reduce partials.
	outInst := rw.instance(out, out.Name)
	rw.cur[out] = outInst
	mergeOuts := []*graph.Tensor{outInst}
	mergeIns := append([]*graph.Tensor{}, microOuts...)
	for _, o := range op.Outputs {
		if o == out {
			continue
		}
		inst := rw.instance(o, o.Name)
		rw.cur[o] = inst
		mergeOuts = append(mergeOuts, inst)
		mergeIns = append(mergeIns, partials[o]...)
	}
	mg := rw.ag.NewOp("merge."+out.Name, graph.MergeOp, op.Phase, mergeIns, mergeOuts, graph.Attrs{Axis: axis})
	rw.prev = mg
	rw.out.MergeOps++

	// The split input has fully left the device when its micro-parts
	// were evicted.
	if sp.InOpt != Reside {
		if sp.InOpt == Swap {
			h := rw.ag.NewTensor(in.Name+".host", in.Shape, in.DType, tensor.HostCopy)
			rw.host[in] = h
			// Host micro-copies stand in for the merged host image; the
			// handle is produced by a zero-cost merge on the host side.
			hm := rw.ag.NewOp("hostmerge."+in.Name, graph.MergeOp, op.Phase, hostParts(rw.ag, in, sp.PNum), []*graph.Tensor{h}, graph.Attrs{Axis: inAxis})
			hm.ControlDeps = append(hm.ControlDeps, mg)
		}
		rw.cur[in] = nil
	}
	return nil
}

// hostParts finds the micro host handles just inserted for in.
func hostParts(ag *graph.Graph, in *graph.Tensor, pnum int) []*graph.Tensor {
	var parts []*graph.Tensor
	for i := len(ag.Tensors) - 1; i >= 0 && len(parts) < pnum; i-- {
		t := ag.Tensors[i]
		if t.Kind == tensor.HostCopy && t.Producer != nil && t.Producer.Kind == graph.SwapOut &&
			len(t.Name) > len(in.Name) && t.Name[:len(in.Name)] == in.Name {
			parts = append(parts, t)
		}
	}
	// Restore production order.
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return parts
}

// weightSplitAxis is the carved axis of the weight operand for a
// parameter-dimension split.
func weightSplitAxis(op *graph.Op) int {
	kind := op.Kind
	if kind == graph.GradOp && op.FwdOp != nil {
		kind = op.FwdOp.Kind
	}
	if kind == graph.Conv2D {
		return 0 // OIHW output-channel axis
	}
	for _, t := range op.Inputs {
		if t.Kind == tensor.Parameter && t.Shape.Rank() >= 2 {
			return t.Shape.Rank() - 1
		}
	}
	return 0
}
