package core

import (
	"math"

	"tsplit/internal/graph"
	"tsplit/internal/tensor"
)

// candIndex is the invalidating candidate index that replaces the
// per-iteration full rescan of the greedy loop (DESIGN.md §7). The
// serial reference re-prices every tensor and every lookahead position
// from scratch at each bottleneck; the index instead caches everything
// about a candidate that is *not* a function of the PCIe occupancy —
// liveness window, recompute chain, split configurations — and
// re-derives a cached piece only when an event invalidates it:
//
//   - the bottleneck index i crossing a use of a tensor changes that
//     tensor's eviction window (event lists, built once per graph);
//   - a committed plan entry for tensor x invalidates x itself
//     (permanently — the planned set only grows within a run), every
//     cached chain whose derivation queried x's availability (reverse
//     dependency registry), and the split configurations of every
//     position where x is an operator input;
//   - a committed split on op o invalidates position o's configurations.
//
// What remains per iteration is O(1) per live candidate: the occupancy
// stall terms (answered from the occupancy prefix sums) and the fold.
// The fold runs in exactly the serial task order — tensors by
// ascending ID (== G.Tensors order), then lookahead positions
// ascending, each position folding its configurations in generation
// order — because better()'s tie window is not associative and any
// other order could crown a different winner. Byte-identical plans
// against the serial reference are pinned by
// TestPlannerSerialParallelEquivalence.
//
// All state is flat arrays indexed by tensor ID or schedule position;
// steady-state operation allocates nothing.

type candState uint8

const (
	// candNever: the tensor kind is not evictable — never a candidate.
	candNever candState = iota
	// candInvalid: no eviction window at the current bottleneck.
	candInvalid
	// candPlanned: has a plan entry; permanently out for this run.
	candPlanned
	// candValid: priceable at the current bottleneck (in the live list).
	candValid
)

// depRef is one edge of the reverse chain-dependency registry: owner's
// cached chain queried this tensor's availability. A ref is alive only
// while the owner's dependency epoch still matches — re-deriving a
// chain bumps the epoch, killing stale refs in place of eager removal.
type depRef struct {
	owner int32
	epoch int32
}

// splitCfg is one cached viable (p_num, dim, inOpt) configuration of a
// split position. baseT accumulates every ΔT term except the
// occupancy-dependent swap stall, in the serial accumulation order, so
// baseT + stall reproduces the serial float64 bit-for-bit (the stall
// is the last term the serial scorer adds).
type splitCfg struct {
	split     OpSplit // MicroIns aliases the position's pooled buffer
	splitNew  bool
	in        *graph.Tensor
	inOpt     MemOpt
	genIdx    int
	deltaM    int64
	baseT     float64
	swapStall bool // add occ.Stall(swapTr, pos+1, restoreAt-1)
	swapTr    float64
	evictAt   int
	restoreAt int
}

// evictHot is the per-tensor slab the fold reads: static pricing
// inputs (transfer, size, genIdx), the current eviction window, and
// the cached chain verdict. 56 bytes — one line per candidate.
type evictHot struct {
	transfer  float64
	chainCost float64
	sizeF     float64 // float64(size), for the ratio division
	size      int64
	evictAt   int32
	restoreAt int32
	bwdUses   int32
	genIdx    int32
	chainOK   bool
	microOK   bool
}

type candIndex struct {
	pl     *Planner
	nT     int // tensor ID space (maxTensorID+1)
	n      int // schedule length
	active bool
	i      int // bottleneck the window state currently reflects

	// --- per-tensor state ---
	state []candState
	never []bool // kind not evictable (static)
	isFM  []bool // FeatureMap, i.e. recompute-eligible (static)
	// hot packs everything evictKey reads into one cache line per
	// tensor: the fold visits every live candidate every iteration,
	// and scattering these fields across parallel arrays costs a cache
	// miss per array per candidate.
	hot []evictHot
	// chainStale flags a cached chain for refreshCandChains;
	// chainBytes is only read when the winner is materialized.
	chainStale []bool
	chainBytes []int64

	// live lists the candValid tensor IDs, ascending — the fold order.
	live []int32

	// Window-change events: evIDs[evOff[p]:evOff[p+1]] are the tensors
	// whose eviction window changes when the bottleneck crosses
	// position p (built once; positions are uses, uses+1, first+1).
	evOff []int32
	evIDs []int32

	// Reverse chain-dependency registry. Owners are encoded in one
	// epoch space: tensor id for eviction chains, nT+position for split
	// configuration chains.
	depEpoch []int32
	revDep   [][]depRef

	// --- per-position split configuration cache ---
	posBuilt []bool
	posStale []bool // chain dependency changed: rebuild on next touch
	posCfgs  [][]splitCfg
	posMicro [][]*graph.Tensor
	// inPosIdx[inPosOff[id]:inPosOff[id+1]] lists the schedule
	// positions whose cached split configurations read tensor id's plan
	// entry through a static role: the carve input of some dim, or a
	// shape-eligible second input of an Add (static). The remaining
	// dynamic dependency — the micro-restore scan at the tensor's
	// RestoreAt — is invalidated from the entry itself in
	// noteTensorPlanChanged, and chain-walk dependencies are tracked
	// exactly through revDep.
	inPosOff []int32
	inPosIdx []int32
}

func newCandIndex(pl *Planner) *candIndex {
	nT := pl.maxTensorID + 1
	n := len(pl.Sched.Ops)
	ci := &candIndex{
		pl: pl, nT: nT, n: n,
		state:      make([]candState, nT),
		never:      make([]bool, nT),
		isFM:       make([]bool, nT),
		hot:        make([]evictHot, nT),
		chainStale: make([]bool, nT),
		chainBytes: make([]int64, nT),
		depEpoch:   make([]int32, nT+n),
		revDep:     make([][]depRef, nT),
		posBuilt:   make([]bool, n),
		posStale:   make([]bool, n),
		posCfgs:    make([][]splitCfg, n),
		posMicro:   make([][]*graph.Tensor, n),
	}
	for _, t := range pl.G.Tensors {
		ci.never[t.ID] = !t.Kind.Evictable()
		ci.isFM[t.ID] = t.Kind == tensor.FeatureMap
		h := &ci.hot[t.ID]
		h.size = t.Bytes()
		h.sizeF = float64(h.size)
		h.transfer = pl.Prof.TransferTime(h.size)
		g := pl.genOf[t.ID]
		if g < 0 {
			g = 0
		}
		h.genIdx = int32(g)
	}
	ci.buildEvents()
	ci.buildInputPositions()
	return ci
}

// buildEvents assembles the static window-change event lists. A
// tensor's eviction window (evictAt, restoreAt, validity) is a
// function of where the bottleneck i sits relative to its generation
// and its uses, and changes only when i crosses first+1, a use u, or
// u+1 — every other advance leaves the window untouched.
func (ci *candIndex) buildEvents() {
	pl := ci.pl
	counts := make([]int32, ci.n+1)
	addAt := func(p int, f func(p int)) {
		if p >= 1 && p < ci.n {
			f(p)
		}
	}
	count := func(p int) { counts[p]++ }
	for _, t := range pl.G.Tensors {
		if ci.never[t.ID] {
			continue
		}
		addAt(pl.genOf[t.ID]+1, count)
		for _, u := range pl.usesOf[t.ID] {
			addAt(u, count)
			addAt(u+1, count)
		}
	}
	ci.evOff = make([]int32, ci.n+1)
	var total int32
	for p := 0; p < ci.n; p++ {
		ci.evOff[p] = total
		total += counts[p]
	}
	ci.evOff[ci.n] = total
	ci.evIDs = make([]int32, total)
	cursor := make([]int32, ci.n)
	for p := range cursor {
		cursor[p] = ci.evOff[p]
	}
	for _, t := range pl.G.Tensors {
		if ci.never[t.ID] {
			continue
		}
		put := func(p int) {
			ci.evIDs[cursor[p]] = int32(t.ID)
			cursor[p]++
		}
		addAt(pl.genOf[t.ID]+1, put)
		for _, u := range pl.usesOf[t.ID] {
			addAt(u, put)
			addAt(u+1, put)
		}
	}
}

// splitDepIDs invokes emit for every tensor whose plan entry position
// p's configuration derivation reads through a static role: the carve
// input of a searched dim (splitInOpts) or a shape-eligible second
// input of an Add (carvableSecondInput). Duplicate emits across dims
// are fine — invalidation is idempotent.
func splitDepIDs(op *graph.Op, emit func(id int)) {
	for _, dim := range splitDimsSearched {
		in, out := SplitTensors(op, dim)
		if in == nil {
			continue
		}
		emit(in.ID)
		if dim == tensor.DimSample && op.Kind == graph.Add {
			for _, t := range op.Inputs {
				if t == in || t.Kind == tensor.Parameter {
					continue
				}
				if t.Shape.Rank() < 1 || out.Shape.Rank() < 1 || t.Shape[0] != out.Shape[0] {
					continue
				}
				emit(t.ID)
			}
		}
	}
}

// buildInputPositions assembles the static tensor→position CSR used to
// invalidate split caches when a tensor's plan entry changes. Listing
// only the positions that actually read the entry (splitDepIDs) —
// rather than every consumer — keeps commit-time invalidation from
// rebuilding configuration lists whose pricing cannot have moved.
func (ci *candIndex) buildInputPositions() {
	pl := ci.pl
	counts := make([]int32, ci.nT)
	for _, op := range pl.Sched.Ops {
		splitDepIDs(op, func(id int) { counts[id]++ })
	}
	ci.inPosOff = make([]int32, ci.nT+1)
	var total int32
	for id := 0; id < ci.nT; id++ {
		ci.inPosOff[id] = total
		total += counts[id]
	}
	ci.inPosOff[ci.nT] = total
	ci.inPosIdx = make([]int32, total)
	cursor := make([]int32, ci.nT)
	for id := range cursor {
		cursor[id] = ci.inPosOff[id]
	}
	for p, op := range pl.Sched.Ops {
		splitDepIDs(op, func(id int) {
			ci.inPosIdx[cursor[id]] = int32(p)
			cursor[id]++
		})
	}
}

// deactivate puts the index to sleep between runs (and during warm
// replay); the next ensure() rebuilds it against the then-current plan.
func (ci *candIndex) deactivate() { ci.active = false }

// ensure brings the window state to bottleneck i: a full rebuild on
// first use, otherwise only the events between the previous bottleneck
// and i (in either direction — commits can move the bottleneck
// backwards when they grow memory at an earlier position).
func (ci *candIndex) ensure(i int) {
	if !ci.active {
		sp := ci.pl.runSpan.StartSpan("planner.index.build")
		ci.rebuildAll(i)
		sp.End()
		return
	}
	if i == ci.i {
		return
	}
	lo, hi := ci.i, i
	if hi < lo {
		lo, hi = hi, lo
	}
	ci.i = i
	for p := lo + 1; p <= hi; p++ {
		for _, id := range ci.evIDs[ci.evOff[p]:ci.evOff[p+1]] {
			ci.reeval(int(id))
		}
	}
}

// rebuildAll evaluates every tensor's window at bottleneck i from
// scratch and drops all cached split configurations. Runs once per
// Plan() (at the first bottleneck) and once more after a warm replay
// diverges.
func (ci *candIndex) rebuildAll(i int) {
	pl := ci.pl
	ci.i = i
	ci.live = ci.live[:0]
	for id := range ci.state {
		if ci.never[id] {
			ci.state[id] = candNever
		} else {
			ci.state[id] = candInvalid
		}
	}
	//lint:allow maporder flag assignment per key is order-independent
	for id := range pl.plan.Tensors {
		if id < ci.nT {
			ci.state[id] = candPlanned
		}
	}
	for id := range ci.state {
		if ci.state[id] != candInvalid {
			continue
		}
		evictAt, restoreAt, ok := pl.evictionWindowFast(pl.G.Tensors[id], i)
		if !ok {
			continue
		}
		ci.setWindow(id, evictAt, restoreAt)
		ci.state[id] = candValid
		ci.live = append(ci.live, int32(id)) // ID order: fold order
	}
	for p := range ci.posBuilt {
		ci.posBuilt[p] = false
	}
	ci.active = true
}

// setWindow caches a (re)validated window and everything derived from
// restoreAt; the chain cache is marked stale for refreshCandChains.
func (ci *candIndex) setWindow(id, evictAt, restoreAt int) {
	pl := ci.pl
	t := pl.G.Tensors[id]
	h := &ci.hot[id]
	h.evictAt = int32(evictAt)
	h.restoreAt = int32(restoreAt)
	h.bwdUses = int32(pl.backwardUsesFast(t, restoreAt))
	h.microOK = pl.microRestorable(t, restoreAt)
	ci.chainStale[id] = true
}

// reeval re-derives one tensor's window after an event crossed it.
func (ci *candIndex) reeval(id int) {
	st := ci.state[id]
	if st == candNever || st == candPlanned {
		return
	}
	pl := ci.pl
	evictAt, restoreAt, ok := pl.evictionWindowFast(pl.G.Tensors[id], ci.i)
	if !ok {
		if st == candValid {
			ci.liveRemove(int32(id))
			ci.state[id] = candInvalid
		}
		return
	}
	if st == candValid && int(ci.hot[id].restoreAt) == restoreAt {
		// Only the past-side boundary moved: the chain, backward-use
		// count, and micro-restorability all key off restoreAt.
		ci.hot[id].evictAt = int32(evictAt)
		return
	}
	ci.setWindow(id, evictAt, restoreAt)
	if st != candValid {
		ci.state[id] = candValid
		ci.liveInsert(int32(id))
	}
}

func (ci *candIndex) liveInsert(id int32) {
	lo, hi := 0, len(ci.live)
	for lo < hi {
		mid := (lo + hi) / 2
		if ci.live[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	ci.live = append(ci.live, 0)
	copy(ci.live[lo+1:], ci.live[lo:])
	ci.live[lo] = id
}

func (ci *candIndex) liveRemove(id int32) {
	lo, hi := 0, len(ci.live)
	for lo < hi {
		mid := (lo + hi) / 2
		if ci.live[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ci.live) && ci.live[lo] == id {
		ci.live = append(ci.live[:lo], ci.live[lo+1:]...)
	}
}

// noteTensorPlanChanged handles a committed plan entry for tensor id:
// the tensor leaves the candidate pool for good, chains that queried
// its availability go stale, and positions consuming it rebuild their
// split configurations.
func (ci *candIndex) noteTensorPlanChanged(id int) {
	if id >= ci.nT {
		return
	}
	if ci.state[id] == candValid {
		ci.liveRemove(int32(id))
	}
	if ci.state[id] != candNever {
		ci.state[id] = candPlanned
	}
	refs := ci.revDep[id]
	w := 0
	for _, ref := range refs {
		if ci.depEpoch[ref.owner] != ref.epoch {
			continue // stale ref from a superseded derivation
		}
		refs[w] = ref
		w++
		if int(ref.owner) < ci.nT {
			ci.chainStale[ref.owner] = true
		} else {
			ci.posStale[int(ref.owner)-ci.nT] = true
		}
	}
	ci.revDep[id] = refs[:w]
	for k := ci.inPosOff[id]; k < ci.inPosOff[id+1]; k++ {
		ci.posBuilt[ci.inPosIdx[k]] = false
	}
	// The micro-restore scan at the entry's restore position reads it
	// dynamically (buildPos requires RestoreAt == p); the static roles
	// in the CSR cover every other read.
	pl := ci.pl
	if pl.tpSet[id] {
		if r := pl.tpMirror[id].RestoreAt; r >= 0 && r < ci.n {
			ci.posBuilt[r] = false
		}
	}
}

// noteSplitChanged drops the configuration cache of a position whose
// op just gained or upgraded a split decision.
func (ci *candIndex) noteSplitChanged(pos int) {
	ci.posBuilt[pos] = false
}

// registerDeps records the dependency set of a fresh derivation under
// the owner's current epoch. touched may contain duplicates; the
// consecutive-duplicate skip catches most, and survivors only cost a
// little extra sweep work. A full ref list is compacted (dead epochs
// dropped) before growing, bounding growth across pooled runs.
func (ci *candIndex) registerDeps(owner int32, touched []int32) {
	ep := ci.depEpoch[owner]
	for _, dep := range touched {
		refs := ci.revDep[dep]
		if k := len(refs); k > 0 && refs[k-1].owner == owner && refs[k-1].epoch == ep {
			continue
		}
		if len(refs) == cap(refs) {
			w := 0
			for _, r := range refs {
				if ci.depEpoch[r.owner] == r.epoch {
					refs[w] = r
					w++
				}
			}
			refs = refs[:w]
		}
		//lint:allow scratchreuse refs recycles the compacted CSR row above; growth amortizes into the pooled backing array
		ci.revDep[dep] = append(refs, depRef{owner, ep})
	}
}

// refreshCandChains re-walks the stale cached chains of live
// candidates. Chains whose dependency set is untouched since the last
// walk would re-derive identically (the walk is a pure function of the
// plan state it queries), so skipping them cannot diverge from the
// serial rescan, which re-walks every candidate every iteration.
func (ci *candIndex) refreshCandChains() {
	pl := ci.pl
	if pl.Opts.DisableRecompute {
		return
	}
	for _, id32 := range ci.live {
		id := int(id32)
		if !ci.isFM[id] || !ci.chainStale[id] {
			continue
		}
		ci.chainStale[id] = false
		ci.depEpoch[id]++
		pl.statRescored++
		pl.touchScratch = pl.touchScratch[:0]
		t := pl.G.Tensors[id]
		h := &ci.hot[id]
		chain, err := pl.walker.walk(t, availQuery{pl, int(h.restoreAt)}, pl.Opts.MaxRecomputeChain, &pl.touchScratch)
		ci.registerDeps(int32(id), pl.touchScratch)
		if err != nil {
			h.chainOK = false
			continue
		}
		h.chainOK = true
		h.chainCost = pl.chainCostFast(chain)
		ci.chainBytes[id] = chainTransientBytes(chain, t)
	}
}

// candKey is the comparator-relevant projection of a candidate —
// better() reads only ratio, ΔM (PreferLargest) and genIdx, so the
// fold can decide the winner on 24-byte keys and materialize the full
// candidate exactly once per iteration, instead of copying a
// pointer-bearing ~200-byte struct (and paying its GC write barriers)
// per scored candidate.
type candKey struct {
	ratio  float64
	deltaM int64
	genIdx int
}

// betterKey is better() restated over keys: identical comparisons in
// identical order, so the key fold crowns the same winner as the
// serial struct fold.
func (pl *Planner) betterKey(a, b candKey) bool {
	if pl.Opts.PreferLargest {
		if a.deltaM != b.deltaM {
			return a.deltaM > b.deltaM
		}
		return a.genIdx < b.genIdx
	}
	const tieAbs = 1e-16
	lo, hi := a.ratio, b.ratio
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi-lo > tieAbs && lo < 0.99*hi {
		return a.ratio < b.ratio
	}
	if pl.Opts.DisableGenTieBreak {
		return a.ratio < b.ratio
	}
	return a.genIdx < b.genIdx
}

// evictKey prices one live tensor down to its comparator key — the
// same ΔT arithmetic as priceEvict, without assembling the candidate.
// prefI is FreePrefixAt(i-1), hoisted by the caller: the two stall
// windows [evictAt+1, i-1] and [i, restoreAt-1] share the bottleneck
// boundary, so each candidate needs only its own two prefix loads.
// (Both windows are non-degenerate by construction — evictAt < i ≤
// restoreAt < n — and a one-slot-empty window yields an exact 0.0
// difference, so the Stall clamps are not needed here.)
func (ci *candIndex) evictKey(id, i int, prefI float64) candKey {
	pl := ci.pl
	h := &ci.hot[id]
	transfer := h.transfer
	swapT := 0.0
	if rest := transfer - (prefI - pl.occ.FreePrefixAt(int(h.evictAt))); rest > 0 {
		swapT = rest
	}
	if rest := transfer - (pl.occ.FreePrefixAt(int(h.restoreAt)-1) - prefI); rest > 0 {
		swapT += rest
	}
	recompT := math.Inf(1)
	if h.chainOK {
		recompT = h.chainCost * float64(h.bwdUses)
	}
	dT := swapT
	if recompT < swapT {
		dT = recompT
		if swapT <= 4*recompT+1e-6 && h.microOK {
			dT = swapT
		}
	}
	return candKey{ratio: dT / h.sizeF, deltaM: h.size, genIdx: int(h.genIdx)}
}

// splitKey prices one cached configuration down to its comparator key.
func (ci *candIndex) splitKey(cfg *splitCfg, p int) candKey {
	dT := cfg.baseT
	if cfg.swapStall {
		dT += ci.pl.occ.Stall(cfg.swapTr, p+1, cfg.restoreAt-1)
	}
	return candKey{ratio: dT / float64(cfg.deltaM), deltaM: cfg.deltaM, genIdx: cfg.genIdx}
}

// best folds the whole candidate pool in the serial task order and
// returns the winner plus the viable-candidate count. Eviction pricing
// is O(1) per live tensor (occupancy stalls from prefix sums plus the
// cached chain); split positions re-fold their cached configurations,
// rebuilding only the invalidated ones. The fold compares keys only;
// the winning candidate is assembled once at the end (the occupancy is
// not modified during the fold, so re-pricing the winner reproduces
// the keyed ΔT bit-for-bit).
func (ci *candIndex) best(i int) (*candidate, int) {
	pl := ci.pl
	viable := 0
	var bk candKey
	have := false
	winEvict := -1
	winPos, winCfg := -1, -1
	pl.occ.Materialize()
	prefI := pl.occ.FreePrefixAt(i - 1)
	for _, id32 := range ci.live {
		id := int(id32)
		k := ci.evictKey(id, i, prefI)
		viable++
		if !have || pl.betterKey(k, bk) {
			have, bk = true, k
			winEvict, winPos = id, -1
		}
	}
	if !pl.Opts.DisableSplit {
		last := i + pl.Opts.SplitLookahead
		if last > ci.n-1 {
			last = ci.n - 1
		}
		for p := i; p <= last; p++ {
			if !ci.posBuilt[p] || ci.posStale[p] {
				ci.buildPos(p)
			}
			cfgs := ci.posCfgs[p]
			pHave := false
			var pk candKey
			pCfg := -1
			for c := range cfgs {
				k := ci.splitKey(&cfgs[c], p)
				if !pHave || pl.betterKey(k, pk) {
					pHave, pk, pCfg = true, k, c
				}
			}
			if pHave {
				viable++
				if !have || pl.betterKey(pk, bk) {
					have, bk = true, pk
					winEvict, winPos, winCfg = -1, p, pCfg
				}
			}
		}
	}
	if !have {
		return nil, viable
	}
	if winEvict >= 0 {
		ci.priceEvict(winEvict, i, &pl.foldBest)
	} else {
		ci.priceSplit(&ci.posCfgs[winPos][winCfg], winPos, &pl.foldBest)
	}
	return &pl.foldBest, viable
}

// priceEvict prices one live tensor at bottleneck i — the cached
// counterpart of scoreEvictInto, identical arithmetic in identical
// order.
func (ci *candIndex) priceEvict(id, i int, c *candidate) {
	pl := ci.pl
	h := &ci.hot[id]
	evictAt, restoreAt := int(h.evictAt), int(h.restoreAt)
	transfer := h.transfer
	stallOut := pl.occ.Stall(transfer, evictAt+1, i-1)
	stallIn := pl.occ.Stall(transfer, i, restoreAt-1)
	swapT := stallOut + stallIn

	recompT := math.Inf(1)
	var chainBytes int64
	if h.chainOK {
		recompT = h.chainCost * float64(h.bwdUses)
		chainBytes = ci.chainBytes[id]
	}
	opt, dT := Swap, swapT
	if recompT < swapT {
		opt, dT = Recompute, recompT
	}
	if opt == Recompute && swapT <= 4*recompT+1e-6 && h.microOK {
		opt, dT = Swap, swapT
	}
	*c = candidate{
		valid:      true,
		ratio:      dT / h.sizeF,
		deltaT:     dT,
		deltaM:     h.size,
		genIdx:     int(h.genIdx),
		pos:        i,
		evictAt:    evictAt,
		restoreAt:  restoreAt,
		t:          pl.G.Tensors[id],
		opt:        opt,
		transfer:   transfer,
		stallOut:   stallOut,
		chainBytes: chainBytes,
	}
}

// priceSplit finalizes a cached configuration: the occupancy stall of
// a swap inOpt is the only term that changes between iterations, and
// the serial scorer adds it last, so baseT + stall is bit-identical.
func (ci *candIndex) priceSplit(cfg *splitCfg, p int, c *candidate) {
	deltaT := cfg.baseT
	if cfg.swapStall {
		deltaT += ci.pl.occ.Stall(cfg.swapTr, p+1, cfg.restoreAt-1)
	}
	*c = candidate{
		valid:     true,
		isSplit:   true,
		ratio:     deltaT / float64(cfg.deltaM),
		deltaT:    deltaT,
		deltaM:    cfg.deltaM,
		genIdx:    cfg.genIdx,
		pos:       p,
		evictAt:   cfg.evictAt,
		restoreAt: cfg.restoreAt,
		split:     cfg.split,
		splitNew:  cfg.splitNew,
		in:        cfg.in,
		inOpt:     cfg.inOpt,
	}
}

// buildPos rebuilds the viable configuration list of one position —
// the cached counterpart of scoreSplitInto, generating configurations
// in the exact serial order (dims, then p_nums, then inOpts). The
// config and micro-input slices are pooled per position.
func (ci *candIndex) buildPos(p int) {
	pl := ci.pl
	op := pl.Sched.Ops[p]
	ci.depEpoch[ci.nT+p]++ // retire chain deps of the old configs
	cfgs := ci.posCfgs[p][:0]
	micro := ci.posMicro[p][:0]
	cur, has := pl.plan.Splits[op.ID]
	// The current-footprint terms are per-position constants across the
	// whole configuration product; the serial scorer re-derives them per
	// configuration to identical values.
	curAdj := op.Workspace
	curBaseT := pl.Prof.T[p]
	if has {
		curAdj = splitAdjustment(op, cur)
		_, curBaseT = pl.Prof.Cost.SplitTimes(op, cur.PNum)
	}
	var curOpt [1]MemOpt
	for _, dim := range splitDimsSearched {
		if has && dim != cur.Dim {
			continue
		}
		in, out := SplitTensors(op, dim)
		if in == nil {
			continue
		}
		axis := 0
		if dim == tensor.DimParam {
			axis = 0
			if op.Kind != graph.Conv2D && in.Shape.Rank() >= 2 {
				axis = in.Shape.Rank() - 1
			}
		}
		maxP := tensor.MaxSplit(in.Shape, axis)
		inOpts := pl.splitInOpts(in, dim, p)
		if has {
			curOpt[0] = cur.InOpt
			inOpts = curOpt[:]
		}
		// Micro-restorable swapped inputs depend on (op, dim, plan)
		// only — hoisted out of the p_num × inOpt product.
		microStart := len(micro)
		var microB int64
		if dim == tensor.DimSample {
			for _, t := range op.Inputs {
				if !pl.tpSet[t.ID] {
					continue
				}
				tp := &pl.tpMirror[t.ID]
				if tp.Opt != Swap || tp.MicroRestore > 1 || tp.RestoreAt != p {
					continue
				}
				if t.Shape.Rank() < 1 || t.Shape[0] != op.Outputs[0].Shape[0] {
					continue
				}
				if pl.lastOf[t.ID] != p {
					continue
				}
				micro = append(micro, t)
				microB += t.Bytes()
			}
		}
		microIns := micro[microStart:len(micro):len(micro)]
		if len(microIns) == 0 {
			microIns = nil
		}
		for _, pnum := range pl.Opts.PNums {
			if pnum < 2 || pnum > maxP || (has && pnum <= cur.PNum) {
				continue
			}
			for _, inOpt := range inOpts {
				if cfg, ok := ci.buildCfg(op, p, in, out, dim, pnum, inOpt, has, curAdj, curBaseT, microIns, microB); ok {
					cfgs = append(cfgs, cfg)
				}
			}
		}
	}
	ci.posCfgs[p] = cfgs
	ci.posMicro[p] = micro
	ci.posBuilt[p] = true
	ci.posStale[p] = false
}

// buildCfg prices the occupancy-independent part of one configuration
// — the cached counterpart of scoreSplitConfigInto, term for term in
// the same order.
func (ci *candIndex) buildCfg(op *graph.Op, p int, in, out *graph.Tensor, dim tensor.SplitDim, pnum int, inOpt MemOpt, has bool, curAdj int64, baseT float64, microIns []*graph.Tensor, microB int64) (splitCfg, bool) {
	pl := ci.pl
	pl.statRescored++
	inB, outB := in.Bytes(), out.Bytes()
	in2 := pl.carvableSecondInput(op, in, out, dim, p)

	newSplit := OpSplit{Op: op, PNum: pnum, Dim: dim, InOpt: inOpt, In2: in2, MicroIns: microIns}
	deltaM := curAdj - splitAdjustment(op, newSplit)
	deltaM += microB - microB/int64(pnum)
	if deltaM <= 0 {
		return splitCfg{}, false
	}

	_, totalSplit := pl.Prof.Cost.SplitTimes(op, pnum)
	deltaT := totalSplit - baseT
	if deltaT < 0 {
		deltaT = 0
	}
	if effectiveKind(op) == graph.BatchNorm {
		deltaT += float64(inB) / pl.Dev.MemBandwidth
	}
	if microB > 0 {
		transfer := pl.Prof.TransferTime(microB)
		hide := totalSplit * float64(pnum-1) / float64(pnum)
		if stall := transfer - hide; stall > 0 {
			deltaT += stall
		}
	}
	if !has {
		deltaT += float64(outB) / pl.Dev.MemBandwidth
		if dim == tensor.DimParam {
			deltaT += float64(inB) / pl.Dev.MemBandwidth
		}
	}

	evictAt, restoreAt := p, -1
	var swapTr float64
	swapStall := false
	switch {
	case has:
		// Upgrade: the input's eviction was priced with the original
		// split decision.
	case inOpt == Swap:
		transfer := pl.Prof.TransferTime(inB)
		_, restoreAt, _ = pl.evictionWindowAfterFast(in, p)
		if restoreAt < 0 {
			return splitCfg{}, false
		}
		hide := totalSplit * float64(pnum-1) / float64(pnum)
		if stall := transfer - hide; stall > 0 {
			deltaT += stall
		}
		swapTr = transfer
		swapStall = true
	case inOpt == Recompute:
		_, restoreAt, _ = pl.evictionWindowAfterFast(in, p)
		if restoreAt >= 0 {
			pl.touchScratch = pl.touchScratch[:0]
			chain, err := pl.walker.walk(in, availQuery{pl, restoreAt}, pl.Opts.MaxRecomputeChain, &pl.touchScratch)
			// The viability verdict depends on the availability answers
			// queried up to the success or abort point: register them
			// either way so any change rebuilds this position.
			ci.registerDeps(int32(ci.nT+p), pl.touchScratch)
			if err != nil {
				return splitCfg{}, false
			}
			deltaT += pl.chainCostFast(chain) * float64(pl.backwardUsesFast(in, restoreAt))
		}
	}

	gen := pl.genOf[in.ID]
	if gen < 0 {
		gen = 0
	}
	return splitCfg{
		split:     newSplit,
		splitNew:  !has,
		in:        in,
		inOpt:     inOpt,
		genIdx:    gen,
		deltaM:    deltaM,
		baseT:     deltaT,
		swapStall: swapStall,
		swapTr:    swapTr,
		evictAt:   evictAt,
		restoreAt: restoreAt,
	}, true
}
