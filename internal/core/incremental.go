package core

import (
	"fmt"
	"sort"

	"tsplit/internal/graph"
	"tsplit/internal/tensor"
)

// This file holds the planner's incremental machinery: a memory curve
// kept live across greedy iterations (only the tensors and ops touched
// by the committed decision are re-applied, instead of re-walking every
// tensor as MemSim.Curve does), dirty tracking for recompute-chain
// re-derivation, and a reusable chain walker that the scoring worker
// pool can run without per-call allocations. The serial reference path
// (Options.Serial) bypasses all of it and the two paths must produce
// byte-identical plans — see TestPlannerSerialParallelEquivalence and
// TestIncrementalCurveMatchesFullRebuild.

// memCurve maintains MemSim.Curve's diff array incrementally. The
// delta array carries every tensor's residency spans and recompute
// chain-transient charges; adj carries the per-schedule-index op
// footprint adjustment (workspace, or the split footprint delta).
// applied remembers, per tensor ID, the contributions currently folded
// into delta so a plan change can subtract exactly what was added.
type memCurve struct {
	ms   *MemSim
	plan *Plan
	n    int
	// delta[i] accumulates alloc(+)/free(-) transitions at op i.
	delta []int64
	adj   []int64
	memAt []int64
	// applied[id] is the span set currently charged for tensor id.
	applied [][]span
}

// newMemCurve builds the curve for the plan's current state (normally
// the empty plan at the top of Planner.Plan) in one full pass — the
// only full pass the incremental path ever performs.
func newMemCurve(ms *MemSim, p *Plan, maxTensorID int) *memCurve {
	n := len(ms.Sched.Ops)
	c := &memCurve{
		ms: ms, plan: p, n: n,
		delta:   make([]int64, n+1),
		adj:     make([]int64, n),
		memAt:   make([]int64, n),
		applied: make([][]span, maxTensorID+1),
	}
	for i, op := range ms.Sched.Ops {
		c.adj[i] = ms.opFootprintAdjustment(op, p)
	}
	for _, t := range ms.G.Tensors {
		c.add(t)
	}
	return c
}

// contributions returns tensor t's delta-array charges under the
// current plan: its residency spans plus, for a recompute decision
// with a transient estimate, a point charge at every backward consumer
// — exactly the per-tensor body of MemSim.Curve.
func (c *memCurve) contributions(t *graph.Tensor) []span {
	spans := c.ms.residency(t, c.plan)
	if tp, ok := c.plan.Tensors[t.ID]; ok && tp.Opt == Recompute && tp.ChainBytes > 0 {
		for _, cons := range t.Consumers {
			if u := c.ms.Sched.Index[cons]; u >= tp.RestoreAt {
				spans = append(spans, span{u, u, tp.ChainBytes})
			}
		}
	}
	return spans
}

// add folds t's current contributions into the delta array.
func (c *memCurve) add(t *graph.Tensor) {
	spans := c.contributions(t)
	for _, iv := range spans {
		c.delta[iv.a] += iv.bytes
		c.delta[iv.b+1] -= iv.bytes
	}
	c.applied[t.ID] = spans
}

// update re-derives t's contributions after its plan entry changed,
// subtracting the previously applied spans first.
func (c *memCurve) update(t *graph.Tensor) {
	for _, iv := range c.applied[t.ID] {
		c.delta[iv.a] -= iv.bytes
		c.delta[iv.b+1] += iv.bytes
	}
	c.add(t)
}

// setAdj replaces the footprint adjustment of schedule index i (after
// a split decision changed the op's execution footprint).
func (c *memCurve) setAdj(i int, v int64) { c.adj[i] = v }

// scan rebuilds memAt from the live delta array — the prefix-sum half
// of MemSim.Curve, O(schedule length) with no per-tensor work and no
// allocation. The returned slice is owned by the curve and valid until
// the next scan.
func (c *memCurve) scan() (memAt []int64, peak int64, peakIdx int) {
	var run int64
	for i := 0; i < c.n; i++ {
		run += c.delta[i]
		m := run + c.adj[i]
		c.memAt[i] = m
		if m > peak {
			peak = m
			peakIdx = i
		}
	}
	return c.memAt, peak, peakIdx
}

// chainTracker decides which recompute chains must be re-derived after
// a plan change. A chain derivation depends only on the availability
// answers of the tensors it queried; if none of those tensors' plan
// entries changed, re-deriving it would reproduce the same chain. The
// tracker records the queried set per chain owner and marks an owner
// dirty when any dependency (or the owner itself) changes, so
// refreshChainsDirty touches exactly the chains the serial
// refreshChains could have updated.
type chainTracker struct {
	// deps[owner] is the set of tensor IDs whose availability the
	// owner's last chain derivation queried.
	deps  map[int]map[int]struct{}
	dirty map[int]struct{}
}

func newChainTracker() *chainTracker {
	return &chainTracker{
		deps:  make(map[int]map[int]struct{}),
		dirty: make(map[int]struct{}),
	}
}

// markDirty forces re-derivation of owner's chain (used when the owner
// itself gains or changes a recompute decision).
func (ct *chainTracker) markDirty(owner int) { ct.dirty[owner] = struct{}{} }

// noteChanged marks every chain that queried tensor id as dirty.
func (ct *chainTracker) noteChanged(id int) {
	//lint:allow maporder marking members of a set is commutative; no order-dependent state
	for owner, ds := range ct.deps {
		if _, ok := ds[id]; ok {
			ct.dirty[owner] = struct{}{}
		}
	}
}

// drop forgets an owner that no longer holds a recompute decision.
func (ct *chainTracker) drop(owner int) {
	delete(ct.deps, owner)
	delete(ct.dirty, owner)
}

// availQuery is the allocation-free equivalent of availFn: the
// availability predicate for recompute chains under plan p at backward
// index r, answering from the planner's ID-indexed liveness arrays.
type availQuery struct {
	pl *Planner
	r  int
}

func (q availQuery) ok(t *graph.Tensor) bool {
	p := q.pl.plan
	switch t.Kind {
	case tensor.Parameter, tensor.OptState:
		return !p.ShardParams
	case tensor.Input:
		if tp, ok := p.Tensors[t.ID]; ok && tp.Opt != Reside {
			return tp.Opt == Swap && tp.MicroRestore <= 1 && tp.RestoreAt <= q.r
		}
		return true
	case tensor.FeatureMap:
		tp, ok := p.Tensors[t.ID]
		if !ok || tp.Opt == Reside {
			return q.pl.genOf[t.ID] <= q.r && q.r <= q.pl.lastOf[t.ID]
		}
		// A micro-restored tensor only ever returns in fragments
		// streamed into its split consumer; chains may not pull it
		// back whole.
		return tp.Opt == Swap && tp.MicroRestore <= 1 && tp.RestoreAt <= q.r && q.r <= q.pl.lastOf[t.ID]
	default:
		return false
	}
}

// chainWalker is a reusable-scratch implementation of RecomputeChain.
// The visited set is an epoch-stamped array indexed by op ID and the
// chain slice is recycled, so a walk allocates nothing; scoring runs
// hundreds of thousands of walks per plan. Each scoring worker owns
// one walker.
type chainWalker struct {
	seen  []int
	epoch int
	chain []*graph.Op
	count int
}

func newChainWalker(maxOpID int) *chainWalker {
	return &chainWalker{seen: make([]int, maxOpID+1)}
}

// walk mirrors RecomputeChain exactly: producers are walked
// depth-first in input order until every leaf satisfies q, the chain
// is returned in execution order, and exceeding maxLen distinct ops is
// an error. When touched is non-nil, every tensor whose availability
// was queried is recorded in it (the chainTracker dependency set). The
// returned slice is valid until the next walk.
func (w *chainWalker) walk(t *graph.Tensor, q availQuery, maxLen int, touched map[int]struct{}) ([]*graph.Op, error) {
	w.epoch++
	w.chain = w.chain[:0]
	w.count = 0
	if err := w.visit(t, t, q, maxLen, touched); err != nil {
		return nil, err
	}
	return w.chain, nil
}

func (w *chainWalker) visit(x, target *graph.Tensor, q availQuery, maxLen int, touched map[int]struct{}) error {
	p := x.Producer
	if p == nil {
		return fmt.Errorf("core: recompute source %s has no producer and is not available", x.Name)
	}
	if w.seen[p.ID] == w.epoch {
		return nil
	}
	w.seen[p.ID] = w.epoch
	w.count++
	if w.count > maxLen {
		return fmt.Errorf("core: recompute chain for %s exceeds %d ops", target.Name, maxLen)
	}
	for _, in := range p.Inputs {
		if touched != nil {
			touched[in.ID] = struct{}{}
		}
		if q.ok(in) {
			continue
		}
		if err := w.visit(in, target, q, maxLen, touched); err != nil {
			return err
		}
	}
	w.chain = append(w.chain, p)
	return nil
}

// planDelta lists the tensors and ops whose plan entries a committed
// candidate changed — the exact set the incremental structures must
// re-apply.
type planDelta struct {
	tensors []*graph.Tensor
	ops     []*graph.Op
}

// noteChanges propagates a committed decision into the incremental
// state: changed tensors are re-applied to the curve and dirty-checked
// against every recorded chain dependency set, changed ops get their
// footprint adjustment recomputed, and tensors that now hold a
// recompute decision are marked for (re-)derivation so their
// dependency sets register.
func (pl *Planner) noteChanges(d planDelta) {
	for _, t := range d.tensors {
		pl.curve.update(t)
		pl.ct.noteChanged(t.ID)
		if tp, ok := pl.plan.Tensors[t.ID]; ok && tp.Opt == Recompute {
			pl.ct.markDirty(t.ID)
		}
	}
	for _, op := range d.ops {
		pl.curve.setAdj(pl.opIdx[op.ID], pl.ms.opFootprintAdjustment(op, pl.plan))
	}
}

// refreshChainsDirty is the incremental counterpart of refreshChains:
// it re-derives only the chains whose queried dependency set
// intersects the tensors changed since the last iteration. Chains
// whose dependencies are untouched would re-derive identically, so
// skipping them cannot diverge from the serial full refresh. It
// returns the number of chains actually re-derived — planner
// introspection reports it against the tracked-chain count to quantify
// the incremental saving.
func (pl *Planner) refreshChainsDirty() int {
	if len(pl.ct.dirty) == 0 {
		return 0
	}
	if cap(pl.dirtyScratch) < len(pl.ct.dirty) {
		pl.dirtyScratch = make([]int, 0, len(pl.ct.dirty))
	}
	owners := pl.dirtyScratch[:0]
	for id := range pl.ct.dirty {
		owners = append(owners, id)
	}
	// Re-derive in ID order: each walk is independent, but curve.update
	// touches shared state and the obs counters should not depend on
	// which owner a map handed out first.
	sort.Ints(owners)
	rederived := 0
	for _, id := range owners {
		delete(pl.ct.dirty, id)
		tp, ok := pl.plan.Tensors[id]
		if !ok || tp.Opt != Recompute {
			pl.ct.drop(id)
			continue
		}
		rederived++
		touched := make(map[int]struct{}, 16)
		chain, err := pl.walkers[0].walk(tp.Tensor, availQuery{pl, tp.RestoreAt}, len(pl.G.Ops), touched)
		pl.ct.deps[id] = touched
		if err != nil {
			continue // as refreshChains: keep the last estimate
		}
		if nb := chainTransientBytes(chain, tp.Tensor); nb != tp.ChainBytes {
			tp.ChainBytes = nb
			pl.plan.Tensors[id] = tp
			pl.curve.update(tp.Tensor)
		}
	}
	return rederived
}
