package core

import (
	"errors"
	"sort"

	"tsplit/internal/graph"
	"tsplit/internal/tensor"
)

// This file holds the planner's incremental machinery: a memory curve
// kept live across greedy iterations (only the tensors and ops touched
// by the committed decision are re-applied, instead of re-walking every
// tensor as MemSim.Curve does), a resumable first-over-capacity scan,
// dirty tracking for recompute-chain re-derivation, and a reusable
// chain walker that scoring can run without per-call allocations. The
// serial reference path (Options.Serial) bypasses all of it and the two
// paths must produce byte-identical plans — see
// TestPlannerSerialParallelEquivalence and
// TestIncrementalCurveMatchesFullRebuild.
//
// Everything here is pooled: a planner can Reset() and re-Plan()
// without reallocating any of it (see arena lifecycle, DESIGN.md §7).

// curveBlockShift sizes the memory curve's block decomposition (32
// slots): a span update costs O(B + span/B) and the first-over-capacity
// scan skips whole under-capacity blocks in O(1) each. Small blocks
// favor the many short write-through edges over the rarer full scans.
const curveBlockShift = 5

// memCurve maintains MemSim.Curve's M_i array incrementally, block
// decomposed: the true memory at op u is memAt[u] + blockAdd[u>>shift].
// A tensor's residency spans and chain-transient charges are applied as
// range adds — written through at the partial edge blocks, folded into
// blockAdd for fully covered blocks — so a commit costs O(B + span/B)
// instead of an O(n) prefix-sum rebuild, and rawMax (the per-block max
// of memAt, excluding blockAdd) lets the bottleneck search skip whole
// blocks that cannot be over capacity. All arithmetic is int64, so the
// decomposition is exact: regrouping integer additions cannot change
// any value (TestIncrementalCurveMatchesFullRebuild pins this against
// the from-scratch rebuild).
//
// applied remembers, per tensor ID, the spans currently charged so a
// plan change can subtract exactly what was added; adj carries the
// per-schedule-index op footprint adjustment (workspace, or the split
// footprint delta), folded directly into memAt.
type memCurve struct {
	ms   *MemSim
	plan *Plan
	n    int
	// memAt[u] + blockAdd[u>>curveBlockShift] is the memory in use
	// while op u executes.
	memAt    []int64
	blockAdd []int64
	// rawMax[b] is an UPPER BOUND on max(memAt[u]) over block b (the
	// block's true max is bounded by rawMax[b] + blockAdd[b]): additions
	// raise it exactly in O(1), subtractions leave it stale rather than
	// pay an O(B) recompute per span edge. An overestimate only costs
	// the bottleneck search a wasted block walk (it checks exact values
	// inside); it can never hide a bottleneck or inflate the reported
	// peak, because scan() recomputes the bound exactly and the search
	// re-tightens any block it walks in full.
	rawMax []int64
	adj    []int64
	// applied[id] is the span set currently charged for tensor id; its
	// backing array is reused across updates and across Plan() calls.
	applied [][]span

	// Pristine (empty-plan) snapshot for O(n) reset between Plan()
	// calls on a pooled planner.
	memAt0  []int64
	rawMax0 []int64
	adj0    []int64
	// changedIDs lists tensors whose applied spans diverged from the
	// pristine state since the last reset.
	changedIDs  []int32
	changedMark []bool

	// look, when non-nil, answers plan-entry lookups from the owning
	// planner's tpMirror arrays instead of the plan.Tensors map — same
	// answers, no hashing. Standalone curves (tests, cold rebuilds)
	// leave it nil and fall back to the map.
	look func(id int) (TensorPlan, bool)

	// minInc is the lowest index where memory may have *increased*
	// since the last bottleneck search returned — the resume point of
	// the first-over-capacity scan. Decreases (the usual effect of a
	// committed decision) cannot push an earlier position over capacity,
	// so the search may skip everything below min(prevBottleneck,
	// minInc).
	minInc int
}

// newMemCurve builds the curve for the plan's current state (normally
// the empty plan at the top of Planner.Plan) in one full pass — the
// only full pass the incremental path ever performs.
func newMemCurve(ms *MemSim, p *Plan, maxTensorID int) *memCurve {
	n := len(ms.Sched.Ops)
	nBlocks := (n + (1 << curveBlockShift) - 1) >> curveBlockShift
	c := &memCurve{
		ms: ms, plan: p, n: n,
		memAt:       make([]int64, n),
		blockAdd:    make([]int64, nBlocks),
		rawMax:      make([]int64, nBlocks),
		adj:         make([]int64, n),
		applied:     make([][]span, maxTensorID+1),
		changedMark: make([]bool, maxTensorID+1),
	}
	for i, op := range ms.Sched.Ops {
		c.adj[i] = ms.opFootprintAdjustment(op, p)
	}
	delta := make([]int64, n+1)
	for _, t := range ms.G.Tensors {
		spans := c.contributionsInto(t, nil)
		for _, iv := range spans {
			delta[iv.a] += iv.bytes
			delta[iv.b+1] -= iv.bytes
		}
		c.applied[t.ID] = spans
	}
	var run int64
	for u := 0; u < n; u++ {
		run += delta[u]
		c.memAt[u] = run + c.adj[u]
	}
	for b := range c.rawMax {
		c.fixMax(b)
	}
	c.memAt0 = append([]int64(nil), c.memAt...)
	c.rawMax0 = append([]int64(nil), c.rawMax...)
	c.adj0 = append([]int64(nil), c.adj...)
	c.minInc = n + 1
	return c
}

// reset restores the pristine empty-plan state for a new Plan() call:
// the materialized arrays are copied back and only tensors whose
// spans diverged get their applied set recomputed (under the new,
// empty plan) into their existing backing arrays.
func (c *memCurve) reset(p *Plan) {
	c.plan = p
	copy(c.memAt, c.memAt0)
	copy(c.rawMax, c.rawMax0)
	copy(c.adj, c.adj0)
	for b := range c.blockAdd {
		c.blockAdd[b] = 0
	}
	for _, id := range c.changedIDs {
		c.changedMark[id] = false
		t := c.ms.G.Tensors[id]
		c.applied[id] = c.contributionsInto(t, c.applied[id][:0])
	}
	c.changedIDs = c.changedIDs[:0]
	c.minInc = c.n + 1
}

// blockEnd returns the last schedule index block b covers.
func (c *memCurve) blockEnd(b int) int {
	end := (b+1)<<curveBlockShift - 1
	if end >= c.n {
		end = c.n - 1
	}
	return end
}

// fixMax recomputes rawMax[b] exactly.
func (c *memCurve) fixMax(b int) {
	lo, hi := b<<curveBlockShift, c.blockEnd(b)
	m := c.memAt[lo]
	for u := lo + 1; u <= hi; u++ {
		if c.memAt[u] > m {
			m = c.memAt[u]
		}
	}
	c.rawMax[b] = m
}

// writeThrough adds v to memAt over [lo, hi] within block blk,
// maintaining the rawMax upper bound: additions raise it to cover the
// new values; subtractions leave it stale (still an upper bound).
func (c *memCurve) writeThrough(blk, lo, hi int, v int64) {
	if v > 0 {
		m := c.rawMax[blk]
		for u := lo; u <= hi; u++ {
			c.memAt[u] += v
			if c.memAt[u] > m {
				m = c.memAt[u]
			}
		}
		c.rawMax[blk] = m
		return
	}
	for u := lo; u <= hi; u++ {
		c.memAt[u] += v
	}
}

// rangeAdd adds v to the true curve over [a, b]: write-through on the
// partial edge blocks, blockAdd on fully covered ones.
func (c *memCurve) rangeAdd(a, b int, v int64) {
	if v == 0 || a > b {
		return
	}
	if v > 0 && a < c.minInc {
		c.minInc = a
	}
	ba, bb := a>>curveBlockShift, b>>curveBlockShift
	if ba == bb {
		if a == ba<<curveBlockShift && b == c.blockEnd(ba) {
			c.blockAdd[ba] += v
			return
		}
		c.writeThrough(ba, a, b, v)
		return
	}
	if a == ba<<curveBlockShift {
		c.blockAdd[ba] += v
	} else {
		c.writeThrough(ba, a, c.blockEnd(ba), v)
	}
	for blk := ba + 1; blk < bb; blk++ {
		c.blockAdd[blk] += v
	}
	if b == c.blockEnd(bb) {
		c.blockAdd[bb] += v
	} else {
		c.writeThrough(bb, bb<<curveBlockShift, b, v)
	}
}

// contributionsInto appends tensor t's delta-array charges under the
// current plan to buf: its residency spans plus, for a recompute
// decision with a transient estimate, a point charge at every backward
// consumer — exactly the per-tensor body of MemSim.Curve.
func (c *memCurve) contributionsInto(t *graph.Tensor, buf []span) []span {
	buf = c.ms.residencyInto(t, c.plan, c.look, buf)
	var tp TensorPlan
	var ok bool
	if c.look != nil {
		tp, ok = c.look(t.ID)
	} else {
		tp, ok = c.plan.Tensors[t.ID]
	}
	if ok && tp.Opt == Recompute && tp.ChainBytes > 0 {
		for _, cons := range t.Consumers {
			if u := c.ms.opPos[cons.ID]; u >= tp.RestoreAt {
				buf = append(buf, span{u, u, tp.ChainBytes})
			}
		}
	}
	return buf
}

// update re-derives t's contributions after its plan entry changed,
// subtracting the previously applied spans first. The old span set is
// read out before its backing array is reused for the new one.
func (c *memCurve) update(t *graph.Tensor) {
	id := t.ID
	if !c.changedMark[id] {
		c.changedMark[id] = true
		c.changedIDs = append(c.changedIDs, int32(id))
	}
	old := c.applied[id]
	for _, iv := range old {
		c.rangeAdd(iv.a, iv.b, -iv.bytes)
	}
	spans := c.contributionsInto(t, old[:0])
	for _, iv := range spans {
		// rangeAdd tracks minInc: added spans are where memory can
		// increase.
		c.rangeAdd(iv.a, iv.b, iv.bytes)
	}
	c.applied[id] = spans
}

// setAdj replaces the footprint adjustment of schedule index i (after
// a split decision changed the op's execution footprint).
func (c *memCurve) setAdj(i int, v int64) {
	if v == c.adj[i] {
		return
	}
	d := v - c.adj[i]
	c.adj[i] = v
	c.rangeAdd(i, i, d)
}

// scan materializes the curve (blockAdd pushed down into memAt) and
// returns it with its peak. The returned slice is owned by the curve
// and valid until the next mutation.
func (c *memCurve) scan() (memAt []int64, peak int64, peakIdx int) {
	for b := range c.blockAdd {
		if add := c.blockAdd[b]; add != 0 {
			for u, end := b<<curveBlockShift, c.blockEnd(b); u <= end; u++ {
				c.memAt[u] += add
			}
			c.blockAdd[b] = 0
		}
		// rawMax is only an upper bound after subtractions; the peak
		// must be exact, so re-tighten every block here (one O(n) pass,
		// the same cost the materialize itself pays).
		c.fixMax(b)
	}
	peakBlk := 0
	for b, m := range c.rawMax {
		if m > peak {
			peak = m
			peakBlk = b
		}
	}
	for u, end := peakBlk<<curveBlockShift, c.blockEnd(peakBlk); u <= end; u++ {
		if c.memAt[u] == peak {
			peakIdx = u
			break
		}
	}
	c.minInc = c.n + 1
	return c.memAt, peak, peakIdx
}

// bottleneck finds the first schedule index over cap, resuming the
// search from min(prevBtl, minInc): every position below that bound
// was at or under cap when the previous bottleneck was returned and
// cannot have grown since (decreases never create earlier bottlenecks;
// increases are tracked by minInc). Blocks whose true max is at or
// under cap are skipped in O(1) via rawMax + blockAdd, so an iteration
// pays O(n/B) plus one block walk instead of an O(n) rescan. Exactness
// against the full front-to-back scan is pinned by
// TestBottleneckResumeMatchesFullScan.
func (c *memCurve) bottleneck(cap int64, prevBtl int) (i int, memAtI int64, found bool) {
	s := prevBtl
	if c.minInc < s {
		s = c.minInc
	}
	if s < 0 {
		s = 0
	}
	nBlocks := len(c.blockAdd)
	for blk := s >> curveBlockShift; blk < nBlocks; blk++ {
		add := c.blockAdd[blk]
		if c.rawMax[blk]+add <= cap {
			continue
		}
		lo := blk << curveBlockShift
		if lo < s {
			lo = s
			for u, end := lo, c.blockEnd(blk); u <= end; u++ {
				if c.memAt[u]+add > cap {
					c.minInc = c.n + 1
					return u, c.memAt[u] + add, true
				}
			}
			// The block's max sits below s — positions the resume
			// invariant already cleared — so the search continues.
			continue
		}
		// Full-block walk with no hit: every slot was visited, so
		// re-tighten the stale rawMax upper bound for free.
		m := c.memAt[lo]
		for u, end := lo, c.blockEnd(blk); u <= end; u++ {
			if c.memAt[u]+add > cap {
				c.minInc = c.n + 1
				return u, c.memAt[u] + add, true
			}
			if c.memAt[u] > m {
				m = c.memAt[u]
			}
		}
		c.rawMax[blk] = m
	}
	c.minInc = c.n + 1
	return 0, 0, false
}

// chainTracker decides which recompute chains must be re-derived after
// a plan change. A chain derivation depends only on the availability
// answers of the tensors it queried; if none of those tensors' plan
// entries changed, re-deriving it would reproduce the same chain. The
// tracker records the queried set per chain owner and marks an owner
// dirty when any dependency (or the owner itself) changes, so
// refreshChainsDirty touches exactly the chains the serial
// refreshChains could have updated. All state is flat arrays indexed
// by tensor ID — no maps, no steady-state allocations.
type chainTracker struct {
	// owners lists tensor IDs with a registered dependency set.
	owners  []int32
	isOwner []bool
	// depsOf[owner] is the sorted, deduplicated set of tensor IDs whose
	// availability the owner's last chain derivation queried.
	depsOf [][]int32
	dirty  []bool
	// dirtyList holds the marked owners (unordered; refreshChainsDirty
	// sorts before walking).
	dirtyList []int32
}

func newChainTracker(maxTensorID int) *chainTracker {
	return &chainTracker{
		isOwner: make([]bool, maxTensorID+1),
		depsOf:  make([][]int32, maxTensorID+1),
		dirty:   make([]bool, maxTensorID+1),
	}
}

func (ct *chainTracker) reset() {
	for _, id := range ct.owners {
		ct.isOwner[id] = false
		ct.depsOf[id] = ct.depsOf[id][:0]
	}
	ct.owners = ct.owners[:0]
	for _, id := range ct.dirtyList {
		ct.dirty[id] = false
	}
	ct.dirtyList = ct.dirtyList[:0]
}

// markDirty forces re-derivation of owner's chain (used when the owner
// itself gains or changes a recompute decision).
func (ct *chainTracker) markDirty(owner int) {
	if !ct.dirty[owner] {
		ct.dirty[owner] = true
		ct.dirtyList = append(ct.dirtyList, int32(owner))
	}
}

// noteChanged marks every chain that queried tensor id as dirty.
func (ct *chainTracker) noteChanged(id int) {
	for _, owner := range ct.owners {
		if ct.dirty[owner] {
			continue
		}
		ds := ct.depsOf[owner]
		lo, hi := 0, len(ds)
		for lo < hi {
			mid := (lo + hi) / 2
			if int(ds[mid]) < id {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(ds) && int(ds[lo]) == id {
			ct.markDirty(int(owner))
		}
	}
}

// setDeps registers owner's queried set (sorted, deduplicated into the
// owner's pooled backing array).
func (ct *chainTracker) setDeps(owner int, touched []int32) {
	if !ct.isOwner[owner] {
		ct.isOwner[owner] = true
		ct.owners = append(ct.owners, int32(owner))
	}
	ds := ct.depsOf[owner][:0]
	ds = append(ds, touched...)
	sortDedupIDs(&ds)
	ct.depsOf[owner] = ds
}

// drop forgets an owner that no longer holds a recompute decision.
func (ct *chainTracker) drop(owner int) {
	if ct.isOwner[owner] {
		ct.isOwner[owner] = false
		for k, o := range ct.owners {
			if int(o) == owner {
				ct.owners = append(ct.owners[:k], ct.owners[k+1:]...)
				break
			}
		}
		ct.depsOf[owner] = ct.depsOf[owner][:0]
	}
}

// sortDedupIDs sorts ids ascending and removes duplicates in place.
func sortDedupIDs(ids *[]int32) {
	s := *ids
	if len(s) < 2 {
		return
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[w-1] {
			s[w] = s[i]
			w++
		}
	}
	*ids = s[:w]
}

// availQuery is the allocation-free equivalent of availFn: the
// availability predicate for recompute chains under plan p at backward
// index r, answering from the planner's ID-indexed liveness arrays.
type availQuery struct {
	pl *Planner
	r  int
}

func (q availQuery) ok(t *graph.Tensor) bool {
	pl := q.pl
	switch t.Kind {
	case tensor.Parameter, tensor.OptState:
		return !pl.plan.ShardParams
	case tensor.Input:
		if pl.tpSet[t.ID] {
			if tp := &pl.tpMirror[t.ID]; tp.Opt != Reside {
				return tp.Opt == Swap && tp.MicroRestore <= 1 && tp.RestoreAt <= q.r
			}
		}
		return true
	case tensor.FeatureMap:
		if !pl.tpSet[t.ID] || pl.tpMirror[t.ID].Opt == Reside {
			return pl.genOf[t.ID] <= q.r && q.r <= pl.lastOf[t.ID]
		}
		// A micro-restored tensor only ever returns in fragments
		// streamed into its split consumer; chains may not pull it
		// back whole.
		tp := &pl.tpMirror[t.ID]
		return tp.Opt == Swap && tp.MicroRestore <= 1 && tp.RestoreAt <= q.r && q.r <= pl.lastOf[t.ID]
	default:
		return false
	}
}

// Walk failures are sentinel errors: scoring probes thousands of
// infeasible chains per plan and a formatted error per probe would
// dominate the allocation budget. The outcome is only ever used as a
// feasibility verdict, never surfaced to callers.
var (
	errChainNoProducer = errors.New("core: recompute source has no producer and is not available")
	errChainTooLong    = errors.New("core: recompute chain exceeds the op limit")
)

// chainWalker is a reusable-scratch implementation of RecomputeChain.
// The visited set is an epoch-stamped array indexed by op ID and the
// chain slice is recycled, so a walk allocates nothing; scoring runs
// hundreds of thousands of walks per plan.
type chainWalker struct {
	seen  []int
	epoch int
	chain []*graph.Op
	count int
}

func newChainWalker(maxOpID int) *chainWalker {
	return &chainWalker{seen: make([]int, maxOpID+1)}
}

// walk mirrors RecomputeChain exactly: producers are walked
// depth-first in input order until every leaf satisfies q, the chain
// is returned in execution order, and exceeding maxLen distinct ops is
// an error. When touched is non-nil, the ID of every tensor whose
// availability was queried is appended to it (possibly with
// duplicates) — the dependency set of the derivation. The returned
// slice is valid until the next walk.
func (w *chainWalker) walk(t *graph.Tensor, q availQuery, maxLen int, touched *[]int32) ([]*graph.Op, error) {
	w.epoch++
	w.chain = w.chain[:0]
	w.count = 0
	if err := w.visit(t, t, q, maxLen, touched); err != nil {
		return nil, err
	}
	return w.chain, nil
}

func (w *chainWalker) visit(x, target *graph.Tensor, q availQuery, maxLen int, touched *[]int32) error {
	p := x.Producer
	if p == nil {
		return errChainNoProducer
	}
	if w.seen[p.ID] == w.epoch {
		return nil
	}
	w.seen[p.ID] = w.epoch
	w.count++
	if w.count > maxLen {
		return errChainTooLong
	}
	for _, in := range p.Inputs {
		if touched != nil {
			*touched = append(*touched, int32(in.ID))
		}
		if q.ok(in) {
			continue
		}
		if err := w.visit(in, target, q, maxLen, touched); err != nil {
			return err
		}
	}
	w.chain = append(w.chain, p)
	return nil
}

// planDelta lists the tensors and ops whose plan entries a committed
// candidate changed — the exact set the incremental structures must
// re-apply. The backing arrays live on the planner and are reused.
type planDelta struct {
	tensors []*graph.Tensor
	ops     []*graph.Op
}

// noteChanges propagates a committed decision into the incremental
// state: changed tensors are re-applied to the curve and dirty-checked
// against every recorded chain dependency set, changed ops get their
// footprint adjustment recomputed, tensors that now hold a recompute
// decision are marked for (re-)derivation so their dependency sets
// register, and the candidate index drops everything the commit could
// have re-priced.
func (pl *Planner) noteChanges(d planDelta) {
	for _, t := range d.tensors {
		pl.curve.update(t)
		pl.ct.noteChanged(t.ID)
		if pl.tpSet[t.ID] && pl.tpMirror[t.ID].Opt == Recompute {
			pl.ct.markDirty(t.ID)
		}
		if pl.ci != nil && pl.ci.active {
			pl.ci.noteTensorPlanChanged(t.ID)
		}
	}
	for _, op := range d.ops {
		pl.curve.setAdj(pl.opIdx[op.ID], pl.ms.opFootprintAdjustment(op, pl.plan))
		if pl.ci != nil && pl.ci.active {
			pl.ci.noteSplitChanged(pl.opIdx[op.ID])
		}
	}
}

// refreshChainsDirty is the incremental counterpart of refreshChains:
// it re-derives only the chains whose queried dependency set
// intersects the tensors changed since the last iteration. Chains
// whose dependencies are untouched would re-derive identically, so
// skipping them cannot diverge from the serial full refresh. It
// returns the number of chains actually re-derived — planner
// introspection reports it against the tracked-chain count to quantify
// the incremental saving. Every applied ChainBytes change is appended
// to the warm-replan journal so a replay can re-apply the refresh
// without walking (see replan.go).
func (pl *Planner) refreshChainsDirty() int {
	ct := pl.ct
	if len(ct.dirtyList) == 0 {
		return 0
	}
	owners := ct.dirtyList
	// Re-derive in ID order: each walk is independent, but curve.update
	// touches shared state and the obs counters should not depend on
	// mark order.
	sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })
	rederived := 0
	for _, id32 := range owners {
		id := int(id32)
		ct.dirty[id] = false
		if !pl.tpSet[id] || pl.tpMirror[id].Opt != Recompute {
			ct.drop(id)
			continue
		}
		tp := pl.tpMirror[id]
		rederived++
		pl.touchScratch = pl.touchScratch[:0]
		chain, err := pl.walker.walk(tp.Tensor, availQuery{pl, tp.RestoreAt}, len(pl.G.Ops), &pl.touchScratch)
		ct.setDeps(id, pl.touchScratch)
		if err != nil {
			continue // as refreshChains: keep the last estimate
		}
		if nb := chainTransientBytes(chain, tp.Tensor); nb != tp.ChainBytes {
			tp.ChainBytes = nb
			pl.putTensorPlan(id, tp)
			pl.curve.update(tp.Tensor)
			pl.jCur.recordChainUpdate(id, nb)
		}
	}
	ct.dirtyList = ct.dirtyList[:0]
	return rederived
}

// markAllChainsDirty conservatively marks every committed recompute
// decision for re-derivation. The warm-replay path uses it when
// switching from journal replay to live scoring: replay applies
// journaled ChainBytes values without walking, so the dependency sets
// are unknown at the switch point. Re-walking everything re-registers
// them; chains whose state is unchanged re-derive identical values, so
// the conservative mark cannot change the plan.
func (pl *Planner) markAllChainsDirty() {
	//lint:allow maporder marking is order-independent; the dirty list is sorted before processing
	for id, tp := range pl.plan.Tensors {
		if tp.Opt == Recompute {
			pl.ct.markDirty(id)
		}
	}
}
