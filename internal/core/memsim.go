package core

import (
	"tsplit/internal/graph"
	"tsplit/internal/tensor"
)

// MemSim evaluates the per-operation device memory requirement of a
// schedule under a plan — the M_i - ΔM_i(C) term of paper Eq. 1. It is
// the planner's inner feasibility oracle and is also used to produce
// the memory-timeline figures (paper Fig. 2(a), Fig. 4(b)).
type MemSim struct {
	G     *graph.Graph
	Sched *graph.Schedule
	Lv    *graph.Liveness
	// ID-indexed mirrors of Lv.FirstUse/Lv.LastUse/Sched.Index: the
	// residency derivation runs once per tensor per committed decision
	// on the incremental planner's hot path, and the pointer-keyed map
	// lookups dominate it.
	firstOf []int
	lastOf  []int
	opPos   []int
}

// NewMemSim builds the simulator from a graph and its schedule.
func NewMemSim(g *graph.Graph, sched *graph.Schedule, lv *graph.Liveness) *MemSim {
	ms := &MemSim{G: g, Sched: sched, Lv: lv}
	maxT, maxO := 0, 0
	for _, t := range g.Tensors {
		if t.ID > maxT {
			maxT = t.ID
		}
	}
	for _, op := range g.Ops {
		if op.ID > maxO {
			maxO = op.ID
		}
	}
	ms.firstOf = make([]int, maxT+1)
	ms.lastOf = make([]int, maxT+1)
	for _, t := range g.Tensors {
		ms.firstOf[t.ID] = lv.FirstUse[t]
		ms.lastOf[t.ID] = lv.LastUse[t]
	}
	ms.opPos = make([]int, maxO+1)
	//lint:allow maporder — each op writes its own slot; order cannot matter
	for op, i := range sched.Index {
		ms.opPos[op.ID] = i
	}
	return ms
}

// span is one device-residency interval of a tensor with the bytes it
// occupies there (micro-restored tensors occupy a fraction).
type span struct {
	a, b  int
	bytes int64
}

// residency returns the device-residency spans of tensor t under the
// plan. Most tensors have one span; evicted tensors have two (before
// eviction, after restore); sharded parameters have one per consumer.
func (ms *MemSim) residency(t *graph.Tensor, p *Plan) []span {
	return ms.residencyInto(t, p, nil, nil)
}

// residencyInto is residency appending into a caller-owned buffer, so
// the incremental memory curve can re-derive a tensor's spans without
// allocating (see memCurve.contributionsInto). A non-nil look replaces
// the p.Tensors map read with an O(1) array mirror lookup (the
// planner's tpMirror) — it must answer exactly what p.Tensors holds.
func (ms *MemSim) residencyInto(t *graph.Tensor, p *Plan, look func(id int) (TensorPlan, bool), buf []span) []span {
	n := len(ms.Sched.Ops)
	first := ms.firstOf[t.ID]
	last := ms.lastOf[t.ID]
	if first == -1 {
		first = 0
		last = n - 1
	}

	b := t.Bytes()

	// Offload-baseline special cases (ZeRO-Offload, FairScale-Offload).
	switch t.Kind {
	case tensor.OptState:
		if p.OffloadOptimizer {
			return buf // lives in host memory; updates run on CPU
		}
	case tensor.ParamGrad:
		if p.OffloadOptimizer {
			// Streamed to host as soon as produced.
			prod := ms.firstOf[t.ID]
			if prod >= 0 {
				return append(buf, span{prod, prod, b})
			}
			return buf
		}
	case tensor.Parameter:
		if p.ShardParams {
			// Staged in right before each consumer and evicted after.
			base := len(buf)
			for _, c := range t.Consumers {
				i := ms.opPos[c.ID]
				a := i - 1
				if a < 0 {
					a = 0
				}
				if k := len(buf); k > base && buf[k-1].b >= a-1 {
					buf[k-1].b = i
					continue
				}
				buf = append(buf, span{a, i, b})
			}
			return buf
		}
	}

	var tp TensorPlan
	var ok bool
	if look != nil {
		tp, ok = look(t.ID)
	} else {
		tp, ok = p.Tensors[t.ID]
	}
	if !ok || tp.Opt == Reside {
		return append(buf, span{first, last, b})
	}
	// Evicted after EvictAt; back on device from the prefetch (swap) or
	// the restoring consumer (recompute) to the last use.
	buf = append(buf, span{first, tp.EvictAt, b})
	if tp.RestoreAt >= 0 && tp.RestoreAt <= last {
		back := tp.RestoreAt
		if tp.Opt == Swap && tp.PrefetchAt >= 0 && tp.PrefetchAt < back {
			back = tp.PrefetchAt
		}
		if back <= tp.EvictAt {
			back = tp.EvictAt + 1
		}
		restored := b
		if tp.MicroRestore > 1 {
			// Streamed into its split consumer one micro-tensor at a
			// time: only a fraction is ever resident again.
			restored = b / int64(tp.MicroRestore)
			back = tp.RestoreAt // no whole-tensor prefetch window
		}
		if back <= last {
			buf = append(buf, span{back, last, restored})
		}
	}
	return buf
}

// Curve returns the memory requirement at every schedule index under
// the plan, the peak, and its index.
func (ms *MemSim) Curve(p *Plan) (memAt []int64, peak int64, peakIdx int) {
	n := len(ms.Sched.Ops)
	delta := make([]int64, n+1)
	for _, t := range ms.G.Tensors {
		for _, iv := range ms.residency(t, p) {
			delta[iv.a] += iv.bytes
			delta[iv.b+1] -= iv.bytes
		}
		if tp, ok := p.Tensors[t.ID]; ok && tp.Opt == Recompute && tp.ChainBytes > 0 {
			// Each backward consumer re-runs the chain; its transient
			// intermediates occupy the device at that point.
			for _, c := range t.Consumers {
				if u := ms.opPos[c.ID]; u >= tp.RestoreAt {
					delta[u] += tp.ChainBytes
					delta[u+1] -= tp.ChainBytes
				}
			}
		}
	}
	memAt = make([]int64, n)
	var run int64
	for i := 0; i < n; i++ {
		run += delta[i]
		memAt[i] = run + ms.opFootprintAdjustment(ms.Sched.Ops[i], p)
		if p.ChainTransients != nil {
			memAt[i] += p.ChainTransients[i]
		}
		if memAt[i] > peak {
			peak = memAt[i]
			peakIdx = i
		}
	}
	return memAt, peak, peakIdx
}

// opFootprintAdjustment returns the op's own execution footprint on
// top of the interval-based live set: the full workspace when unsplit,
// or the reduced split footprint delta when the op is split.
func (ms *MemSim) opFootprintAdjustment(op *graph.Op, p *Plan) int64 {
	sp, ok := p.Splits[op.ID]
	if !ok {
		return op.Workspace
	}
	return splitAdjustment(op, sp)
}

// splitAdjustment computes the footprint delta of executing op under a
// split configuration, relative to the interval accounting that has
// already charged the full inputs and outputs as live.
//
// The worst micro-step k needs: (p-k+1)/p of the carved input(s) (when
// input micro-tensors are evicted as consumed), k/p of the carved
// output (micro-outputs accumulate until the merge), the full size of
// any reduction outputs (e.g. the weight-gradient accumulator of a
// sample-split convolution backward), and 1/p of the workspace. The
// adjustment is that maximum minus the full charges it replaces.
func splitAdjustment(op *graph.Op, sp OpSplit) int64 {
	in, out := SplitTensors(op, sp.Dim)
	if in == nil || out == nil {
		return op.Workspace
	}
	inB := in.Bytes()
	if sp.In2 != nil {
		inB += sp.In2.Bytes()
	}
	carvedB := out.Bytes()
	pn := int64(sp.PNum)
	ws := op.Workspace / pn
	mode := MergeModeFor(op, sp)
	var peakStep int64
	for k := int64(1); k <= pn; k++ {
		var step int64
		if sp.InOpt != Reside {
			step = inB * (pn - k + 1) / pn
		} else {
			step = inB
		}
		switch mode {
		case MergeRestoreInPlace:
			// The output region doubles as the restore slots: full
			// size from the start, but nothing else.
			step += carvedB
		default:
			step += carvedB * k / pn
			if k == pn && mode == MergePhysical {
				// A physical merge briefly needs the output twice.
				step += carvedB
			}
		}
		if step > peakStep {
			peakStep = step
		}
	}
	return peakStep + ws - inB - carvedB
}

// MergeMode describes how the split runtime reassembles the output
// micro-tensors.
type MergeMode int

const (
	// MergePhysical copies the scattered micro-outputs into a fresh
	// full-size block (transiently 2× output).
	MergePhysical MergeMode = iota
	// MergeCarveInPlace stages each micro-output into the just-freed
	// slot of the carved (discarded) input — paper Fig. 8's memory
	// reuse between inputs and outputs. Requires immediate input frees
	// and output ≤ input.
	MergeCarveInPlace
	// MergeRestoreInPlace streams a same-size micro-restored input
	// through the output region itself: slice k of the saved tensor is
	// staged into slot k, consumed, and overwritten by micro-output k.
	// The classic case is a backward operator whose dX has exactly the
	// shape of its saved X.
	MergeRestoreInPlace
)

// MergeModeFor classifies the split configuration.
func MergeModeFor(op *graph.Op, sp OpSplit) MergeMode {
	in, out := SplitTensors(op, sp.Dim)
	if in == nil || out == nil {
		return MergePhysical
	}
	if sp.InOpt == Recompute && out.Bytes() <= in.Bytes() {
		return MergeCarveInPlace
	}
	for _, t := range sp.MicroIns {
		if t.Bytes() == out.Bytes() {
			return MergeRestoreInPlace
		}
	}
	return MergePhysical
}

// RestoreStageTensor returns the micro-restored input whose slices
// share the output region under MergeRestoreInPlace.
func RestoreStageTensor(op *graph.Op, sp OpSplit) *graph.Tensor {
	_, out := SplitTensors(op, sp.Dim)
	if out == nil {
		return nil
	}
	for _, t := range sp.MicroIns {
		if t.Bytes() == out.Bytes() {
			return t
		}
	}
	return nil
}

// PeakUnder reports whether the plan fits the device capacity at every
// operation (the constraint of paper Eq. 1).
func (ms *MemSim) PeakUnder(p *Plan, capacity int64) bool {
	_, peak, _ := ms.Curve(p)
	return peak <= capacity
}
