// Package workload generates the synthetic training batches the
// evaluation and the real-execution examples consume. The paper trains
// on ImageNet (CNNs) and IWSLT2016 (Transformer); since operator time
// and memory depend on tensor shapes, not values (paper Sec. V-B),
// shape-faithful synthetic batches preserve every behaviour the
// experiments measure, while a small structured-image generator gives
// the real float32 engine something learnable.
package workload

import (
	"fmt"

	"tsplit/internal/graph"
	"tsplit/internal/nn"
)

// Batch is one training step's worth of data for the real engine.
type Batch struct {
	// Inputs maps graph input tensors to their value buffers (integer
	// inputs such as token ids are carried as float32 indices).
	Inputs map[*graph.Tensor]*nn.Buffer
	// Labels are the class ids aligned with the batch rows.
	Labels []int
}

// ImageSource generates ImageNet-shaped image batches: uniform noise
// for shape-only consumers, or structured quadrant images (class k
// lights up quadrant k) that a small classifier can actually learn.
type ImageSource struct {
	Images  *graph.Tensor
	Classes int
	// Structured selects learnable quadrant images (requires even
	// spatial dims and Classes <= 4).
	Structured bool

	rng *nn.RNG
}

// NewImageSource creates a deterministic image batch source for the
// NCHW graph input tensor images.
func NewImageSource(images *graph.Tensor, classes int, structured bool, seed uint64) (*ImageSource, error) {
	if images.Shape.Rank() != 4 {
		return nil, fmt.Errorf("workload: image input must be NCHW, got %v", images.Shape)
	}
	if classes < 2 {
		return nil, fmt.Errorf("workload: need at least 2 classes, got %d", classes)
	}
	if structured && (classes > 4 || images.Shape[2]%2 != 0 || images.Shape[3]%2 != 0) {
		return nil, fmt.Errorf("workload: structured images need <=4 classes and even spatial dims")
	}
	return &ImageSource{Images: images, Classes: classes, Structured: structured, rng: nn.NewRNG(seed)}, nil
}

// Next produces the next batch.
func (s *ImageSource) Next() Batch {
	n := s.Images.Shape[0]
	img := nn.NewBuffer(s.Images.Shape)
	labels := make([]int, n)
	if s.Structured {
		h2, w2 := s.Images.Shape[2]/2, s.Images.Shape[3]/2
		for b := 0; b < n; b++ {
			cls := s.rng.Intn(s.Classes)
			labels[b] = cls
			oh, ow := (cls/2)*h2, (cls%2)*w2
			for c := 0; c < s.Images.Shape[1]; c++ {
				for i := 0; i < h2; i++ {
					for j := 0; j < w2; j++ {
						img.Set(1, b, c, oh+i, ow+j)
					}
				}
			}
		}
	} else {
		nn.FillUniform(img, 1, s.rng)
		for b := 0; b < n; b++ {
			labels[b] = s.rng.Intn(s.Classes)
		}
	}
	return Batch{Inputs: map[*graph.Tensor]*nn.Buffer{s.Images: img}, Labels: labels}
}

// SequenceSource generates IWSLT-shaped token-id batches for the
// Transformer: random ids over the vocabulary with a deterministic
// label per position.
type SequenceSource struct {
	IDs     *graph.Tensor
	Vocab   int
	Classes int

	rng *nn.RNG
}

// NewSequenceSource creates a deterministic sequence batch source for
// the [N, S] token-id input tensor.
func NewSequenceSource(ids *graph.Tensor, vocab, classes int, seed uint64) (*SequenceSource, error) {
	if ids.Shape.Rank() != 2 {
		return nil, fmt.Errorf("workload: sequence input must be [N, S], got %v", ids.Shape)
	}
	if vocab < 2 || classes < 2 {
		return nil, fmt.Errorf("workload: vocab and classes must be >= 2")
	}
	return &SequenceSource{IDs: ids, Vocab: vocab, Classes: classes, rng: nn.NewRNG(seed)}, nil
}

// Next produces the next batch: token ids in [0, vocab) and one label
// per token position.
func (s *SequenceSource) Next() Batch {
	n, l := s.IDs.Shape[0], s.IDs.Shape[1]
	ids := nn.NewBuffer(s.IDs.Shape)
	labels := make([]int, n*l)
	for i := 0; i < n*l; i++ {
		tok := s.rng.Intn(s.Vocab)
		ids.Data[i] = float32(tok)
		labels[i] = tok % s.Classes
	}
	return Batch{Inputs: map[*graph.Tensor]*nn.Buffer{s.IDs: ids}, Labels: labels}
}
