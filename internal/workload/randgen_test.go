package workload

import (
	"fmt"
	"strings"
	"testing"

	"tsplit/internal/graph"
)

// signature fingerprints a generated graph: op names in schedule
// order plus total tensor bytes.
func signature(t *testing.T, g *graph.Graph) string {
	t.Helper()
	sched, err := graph.BuildSchedule(g)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, op := range sched.Ops {
		b.WriteString(op.Name)
		b.WriteByte(';')
	}
	var bytes int64
	for _, tn := range g.Tensors {
		bytes += tn.Bytes()
	}
	fmt.Fprintf(&b, "|%d", bytes)
	return b.String()
}

func TestRandGraphDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		a, b := RandGraph(seed), RandGraph(seed)
		if signature(t, a) != signature(t, b) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

func TestRandGraphWellFormedAndVaried(t *testing.T) {
	var adds, concats, pools int
	sigs := map[string]bool{}
	for seed := uint64(0); seed < 40; seed++ {
		g := RandGraph(seed)
		sched, err := graph.BuildSchedule(g)
		if err != nil {
			t.Fatalf("seed %d: schedule: %v", seed, err)
		}
		lv := graph.AnalyzeLiveness(g, sched)
		if lv.Peak <= 0 {
			t.Fatalf("seed %d: zero peak", seed)
		}
		for _, op := range sched.Ops {
			switch {
			case strings.HasSuffix(op.Name, ".add"):
				adds++
			case strings.HasSuffix(op.Name, ".concat"):
				concats++
			case strings.Contains(op.Name, "pool"):
				pools++
			}
		}
		sigs[signature(t, g)] = true
	}
	if adds == 0 || concats == 0 || pools == 0 {
		t.Fatalf("topology variety missing: adds=%d concats=%d pools=%d", adds, concats, pools)
	}
	if len(sigs) < 35 {
		t.Fatalf("only %d distinct graphs from 40 seeds", len(sigs))
	}
}
