package workload

import (
	"testing"

	"tsplit/internal/graph"
	"tsplit/internal/tensor"
)

func imageInput(t *testing.T, n, c, hw int) *graph.Tensor {
	t.Helper()
	g := graph.New()
	return g.Input("images", tensor.NewShape(n, c, hw, hw), tensor.Float32)
}

func TestStructuredImagesAreClassSeparable(t *testing.T) {
	img := imageInput(t, 8, 1, 16)
	src, err := NewImageSource(img, 4, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := src.Next()
	if len(b.Labels) != 8 {
		t.Fatalf("labels %d", len(b.Labels))
	}
	buf := b.Inputs[img]
	for i, cls := range b.Labels {
		oh, ow := (cls/2)*8, (cls%2)*8
		if buf.At(i, 0, oh, ow) != 1 {
			t.Fatalf("sample %d class %d quadrant not lit", i, cls)
		}
		if buf.At(i, 0, (8+oh)%16, ow) != 0 {
			t.Fatalf("sample %d off-quadrant lit", i)
		}
	}
}

func TestImageSourceDeterministic(t *testing.T) {
	img := imageInput(t, 4, 3, 8)
	a, _ := NewImageSource(img, 4, false, 7)
	b, _ := NewImageSource(img, 4, false, 7)
	ba, bb := a.Next(), b.Next()
	for i := range ba.Labels {
		if ba.Labels[i] != bb.Labels[i] {
			t.Fatal("labels differ across same-seed sources")
		}
	}
	if ba.Inputs[img].Data[5] != bb.Inputs[img].Data[5] {
		t.Fatal("pixels differ across same-seed sources")
	}
}

func TestImageSourceValidation(t *testing.T) {
	g := graph.New()
	bad := g.Input("x", tensor.NewShape(2, 3), tensor.Float32)
	if _, err := NewImageSource(bad, 4, false, 1); err == nil {
		t.Fatal("rank-2 input must fail")
	}
	img := imageInput(t, 2, 1, 9)
	if _, err := NewImageSource(img, 4, true, 1); err == nil {
		t.Fatal("odd spatial dims must fail structured mode")
	}
	if _, err := NewImageSource(imageInput(t, 2, 1, 8), 1, false, 1); err == nil {
		t.Fatal("single class must fail")
	}
}

func TestSequenceSource(t *testing.T) {
	g := graph.New()
	ids := g.Input("ids", tensor.NewShape(2, 5), tensor.Int32)
	src, err := NewSequenceSource(ids, 100, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	b := src.Next()
	if len(b.Labels) != 10 {
		t.Fatalf("labels %d", len(b.Labels))
	}
	buf := b.Inputs[ids]
	for i, v := range buf.Data {
		tok := int(v)
		if tok < 0 || tok >= 100 {
			t.Fatalf("token %d out of vocab", tok)
		}
		if b.Labels[i] != tok%4 {
			t.Fatal("label rule violated")
		}
	}
	if _, err := NewSequenceSource(ids, 1, 4, 3); err == nil {
		t.Fatal("tiny vocab must fail")
	}
}
