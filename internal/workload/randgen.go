package workload

import (
	"fmt"

	"tsplit/internal/graph"
	"tsplit/internal/nn"
	"tsplit/internal/tensor"
)

// RandGraph generates a random but well-formed training graph from a
// seed: a convolutional trunk whose stages are drawn from linear
// (conv/norm/pool), branchy (channel-concat fan-in), and diamond
// (residual add) topologies, with varied batch sizes, spatial extents,
// and channel widths, finished by a dense head with a cross-entropy
// loss and a full backward pass. Same seed, same graph — the
// generator draws only from the deterministic nn.RNG — which makes it
// usable from property tests and fuzz seeds alike.
func RandGraph(seed uint64) *graph.Graph {
	r := nn.NewRNG(seed)
	g := graph.New()

	batch := 2 << r.Intn(3) // 2, 4, 8
	side := []int{8, 12, 16}[r.Intn(3)]
	channels := 1 + r.Intn(4)

	images := g.Input("images", tensor.NewShape(batch, channels, side, side), tensor.Float32)
	labels := g.Input("labels", tensor.NewShape(batch), tensor.Int32)

	x := images
	width := channels
	depth := 4 + r.Intn(10)
	for s := 0; s < depth; s++ {
		nm := func(op string) string { return fmt.Sprintf("s%d.%s", s, op) }
		switch r.Intn(5) {
		case 0: // linear: conv (+ optional norm) + relu
			width = 4 + r.Intn(29)
			x = g.Conv2D(nm("conv"), x, width, 3, 1, 1)
			if r.Intn(2) == 0 {
				x = g.BatchNorm(nm("bn"), x)
			}
			x = g.ReLU(nm("relu"), x)
		case 1: // downsample when the spatial extent allows it
			if side >= 4 && side%2 == 0 {
				if r.Intn(2) == 0 {
					x = g.MaxPool(nm("maxpool"), x, 2, 2, 0)
				} else {
					x = g.AvgPool(nm("avgpool"), x, 2, 2, 0)
				}
				side /= 2
			} else {
				x = g.ReLU(nm("relu"), g.Conv2D(nm("conv"), x, width, 3, 1, 1))
			}
		case 2: // diamond: two conv branches merged by a residual add
			a := g.ReLU(nm("a.relu"), g.Conv2D(nm("a.conv"), x, width, 3, 1, 1))
			b := g.Conv2D(nm("b.conv"), x, width, 3, 1, 1)
			x = g.Add(nm("add"), a, b)
		case 3: // branchy: channel-concat fan-in of uneven branches
			ca, cb := 4+r.Intn(13), 4+r.Intn(13)
			a := g.Conv2D(nm("a.conv"), x, ca, 3, 1, 1)
			b := g.ReLU(nm("b.relu"), g.Conv2D(nm("b.conv"), x, cb, 3, 1, 1))
			x = g.Concat(nm("concat"), 1, a, b)
			width = ca + cb
		default: // regularization
			x = g.Dropout(nm("dropout"), x, 0.9)
		}
	}

	flat := g.Reshape("flat", x, tensor.NewShape(batch, width*side*side))
	h := g.ReLU("fc1.relu", g.Dense("fc1", flat, 16+r.Intn(49)))
	logits := g.Dense("fc2", h, 2+r.Intn(7))
	g.CrossEntropyLoss("loss", logits, labels)
	if err := g.Differentiate(graph.Momentum); err != nil {
		// The builders above only compose shape-compatible stages; a
		// differentiation failure is a generator bug, not bad luck.
		panic(fmt.Sprintf("workload: RandGraph(%d): %v", seed, err))
	}
	return g
}
